//===- examples/compare_optimizers.cpp - Suite-wide comparison --*- C++ -*-===//
//
// Runs every scheme over the full 16-benchmark suite on both machines and
// prints a Figure 16/19/20-style table. Also verifies every generated
// program against the scalar reference.
//
//===----------------------------------------------------------------------===//

#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace slp;

static void runSuite(const MachineModel &Machine) {
  std::printf("\n== %s ==\n", Machine.Name.c_str());
  std::printf("%-11s %8s %8s %8s %14s\n", "benchmark", "Native", "SLP",
              "Global", "Global+Layout");

  PipelineOptions Options;
  Options.Machine = Machine;

  double Sum[4] = {0, 0, 0, 0};
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite) {
    double Impr[4];
    unsigned Col = 0;
    for (OptimizerKind Kind :
         {OptimizerKind::Native, OptimizerKind::LarsenSlp,
          OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
      if (!checkEquivalence(W.TheKernel, R, /*Seed=*/7)) {
        std::fprintf(stderr, "MISCOMPARE: %s / %s\n", W.Name.c_str(),
                     optimizerName(Kind));
        std::exit(1);
      }
      Impr[Col] = 100.0 * R.improvement();
      Sum[Col] += Impr[Col];
      ++Col;
    }
    std::printf("%-11s %7.2f%% %7.2f%% %7.2f%% %13.2f%%\n", W.Name.c_str(),
                Impr[0], Impr[1], Impr[2], Impr[3]);
  }
  std::printf("%-11s %7.2f%% %7.2f%% %7.2f%% %13.2f%%\n", "average",
              Sum[0] / Suite.size(), Sum[1] / Suite.size(),
              Sum[2] / Suite.size(), Sum[3] / Suite.size());
}

int main() {
  runSuite(MachineModel::intelDunnington());
  runSuite(MachineModel::amdPhenomII());
  return 0;
}
