//===- examples/stencil_pipeline.cpp - Layout stage walkthrough -*- C++ -*-===//
//
// Reproduces the paper's Figure 13/14 discussion: a kernel whose packs
// load A[4i] and A[4i+3] — contiguous for no scheme — and how the array
// replication of Section 5.2 turns each pack into one aligned vector load.
// Prints the generated vector instructions before and after layout.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "slp/Pipeline.h"

#include <cstdio>

using namespace slp;

static void describeProgram(const Kernel &K, const VectorProgram &P) {
  unsigned Idx = 0;
  for (const VInst &I : P.Insts) {
    switch (I.Kind) {
    case VInstKind::LoadPack:
      std::printf("  [%2u] vload  %-13s <- <", Idx, packModeName(I.Mode));
      for (unsigned L = 0; L != I.Lanes; ++L)
        std::printf("%s%s", L ? ", " : "",
                    printOperand(K, I.LaneOps[L]).c_str());
      std::printf(">\n");
      break;
    case VInstKind::StorePack:
      std::printf("  [%2u] vstore %-13s -> <", Idx, packModeName(I.Mode));
      for (unsigned L = 0; L != I.Lanes; ++L)
        std::printf("%s%s", L ? ", " : "",
                    printOperand(K, I.LaneOps[L]).c_str());
      std::printf(">\n");
      break;
    case VInstKind::MaskedLoadPack:
      std::printf("  [%2u] vmload %-13s <- <", Idx, packModeName(I.Mode));
      for (unsigned L = 0; L != I.Lanes; ++L)
        std::printf("%s%s", L ? ", " : "",
                    printOperand(K, I.LaneOps[L]).c_str());
      std::printf(">\n");
      break;
    case VInstKind::MaskedStorePack:
      std::printf("  [%2u] vmstore %-12s -> <", Idx, packModeName(I.Mode));
      for (unsigned L = 0; L != I.Lanes; ++L)
        std::printf("%s%s", L ? ", " : "",
                    printOperand(K, I.LaneOps[L]).c_str());
      std::printf(">\n");
      break;
    case VInstKind::Blend:
      std::printf("  [%2u] vblend\n", Idx);
      break;
    case VInstKind::Shuffle:
      std::printf("  [%2u] vshuffle\n", Idx);
      break;
    case VInstKind::VectorOp:
      std::printf("  [%2u] vop %s\n", Idx, opcodeName(I.Op));
      break;
    case VInstKind::ScalarExec:
      std::printf("  [%2u] scalar S%u\n", Idx, I.StmtId);
      break;
    }
    ++Idx;
  }
}

int main() {
  const char *Source = R"(
    kernel figure13 {
      array float A[4200] readonly;
      array float Out[2100];
      loop i = 0 .. 1024 {
        Out[2*i]     = A[4*i] * 0.5 + A[4*i + 3] * 0.25;
        Out[2*i + 1] = A[4*i] * 0.25 - A[4*i + 3] * 0.5;
      }
    }
  )";
  ParseResult Parsed = parseKernel(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.ErrorMessage.c_str());
    return 1;
  }
  Kernel K = std::move(*Parsed.TheKernel);

  PipelineOptions Options;

  PipelineResult NoLayout = runPipeline(K, OptimizerKind::Global, Options);
  std::printf("== Global (no layout optimization): %.2f%% over scalar ==\n",
              100.0 * NoLayout.improvement());
  describeProgram(NoLayout.Final, NoLayout.Program);

  PipelineResult WithLayout =
      runPipeline(K, OptimizerKind::GlobalLayout, Options);
  std::printf("\n== Global+Layout: %.2f%% over scalar, %u pack(s) "
              "replicated, %.0f KB replicas ==\n",
              100.0 * WithLayout.improvement(),
              WithLayout.Layout.ArrayPacksReplicated,
              WithLayout.Layout.ReplicatedBytes / 1024.0);
  describeProgram(WithLayout.Final, WithLayout.Program);

  if (!checkEquivalence(K, NoLayout, 5) ||
      !checkEquivalence(K, WithLayout, 5)) {
    std::fprintf(stderr, "miscompare!\n");
    return 1;
  }
  std::printf("\nBoth programs verified against scalar execution.\n");
  return 0;
}
