//===- examples/custom_kernel.cpp - Builder API round trip ------*- C++ -*-===//
//
// Shows the programmatic route through the library: build a kernel with
// KernelBuilder, inspect its dependences and grouping, execute both the
// scalar and the vectorized version on concrete data, and read results out
// of the environment.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "slp/Grouping.h"
#include "slp/Pipeline.h"

#include <cstdio>

using namespace slp;

int main() {
  // A complex multiply-accumulate over interleaved (re, im) data:
  //   out[2i]   += x[2i]*wr - x[2i+1]*wi
  //   out[2i+1] += x[2i]*wi + x[2i+1]*wr
  KernelBuilder B("cmac");
  SymbolId X = B.array("x", ScalarType::Float32, {520}, /*ReadOnly=*/true);
  SymbolId Out = B.array("out", ScalarType::Float32, {520});
  SymbolId Wr = B.scalar("wr", ScalarType::Float32);
  SymbolId Wi = B.scalar("wi", ScalarType::Float32);
  unsigned I = B.loop("i", 0, 256);
  B.assign(B.arrayRef(Out, {B.idx(I, 2)}),
           B.add(B.load(Out, {B.idx(I, 2)}),
                 B.sub(B.mul(B.load(X, {B.idx(I, 2)}), B.scalarRef(Wr)),
                       B.mul(B.load(X, {B.idx(I, 2, 1)}),
                             B.scalarRef(Wi)))));
  B.assign(B.arrayRef(Out, {B.idx(I, 2, 1)}),
           B.add(B.load(Out, {B.idx(I, 2, 1)}),
                 B.add(B.mul(B.load(X, {B.idx(I, 2)}), B.scalarRef(Wi)),
                       B.mul(B.load(X, {B.idx(I, 2, 1)}),
                             B.scalarRef(Wr)))));
  Kernel K = B.take();
  std::printf("%s\n", printKernel(K).c_str());

  // Inspect what the holistic grouping finds on the unrolled block.
  PipelineOptions Options;
  PipelineResult R = runPipeline(K, OptimizerKind::Global, Options);
  std::printf("unrolled block: %u statements, %u superword statements\n",
              R.Preprocessed.Body.size(), R.TheSchedule.numGroups());
  for (const ScheduleItem &Item : R.TheSchedule.Items) {
    if (!Item.isGroup())
      continue;
    std::printf("  <");
    for (unsigned L = 0; L != Item.width(); ++L)
      std::printf("%sS%u", L ? ", " : "", Item.Lanes[L]);
    std::printf(">\n");
  }

  // Execute both versions on concrete data and compare a few outputs.
  Environment ScalarEnv(K, /*Seed=*/123);
  runKernelScalar(K, ScalarEnv);

  if (!checkEquivalence(K, R, /*Seed=*/123)) {
    std::fprintf(stderr, "vectorized kernel diverged!\n");
    return 1;
  }
  std::printf("first outputs: out[0]=%g out[1]=%g out[2]=%g (verified "
              "against the vector program)\n",
              ScalarEnv.arrayBuffer(Out)[0], ScalarEnv.arrayBuffer(Out)[1],
              ScalarEnv.arrayBuffer(Out)[2]);
  std::printf("predicted improvement on %s: %.2f%%\n",
              Options.Machine.Name.c_str(), 100.0 * R.improvement());
  return 0;
}
