//===- examples/quickstart.cpp - Five-minute tour ----------------*- C++ -*-===//
//
// Parses a small kernel from text, runs the full holistic SLP pipeline on
// it, verifies that the vectorized program computes exactly what the
// scalar kernel computes, and prints the schedule and the predicted
// speedup on the paper's Intel machine.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "slp/Pipeline.h"

#include <cstdio>

using namespace slp;

int main() {
  // The paper's Figure 15(a) example, expressed in the kernel language.
  const char *Source = R"(
    kernel figure15 {
      scalar float a, b, c, d, g, h, q, r;
      array float A[4200] readonly;
      array float B[17000] readonly;
      array float W[8500];
      loop i = 1 .. 4097 {
        a = A[i];
        c = a * B[4*i];
        g = q * B[4*i - 2];
        b = A[i + 1];
        d = b * B[4*i + 4];
        h = r * B[4*i + 2];
        W[2*i] = d + a * c;
        W[2*i + 2] = g + r * h;
      }
    }
  )";

  ParseResult Parsed = parseKernel(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "parse error (line %u): %s\n", Parsed.ErrorLine,
                 Parsed.ErrorMessage.c_str());
    return 1;
  }
  Kernel K = std::move(*Parsed.TheKernel);
  std::printf("== Input kernel ==\n%s\n", printKernel(K).c_str());

  PipelineOptions Options;
  Options.Machine = MachineModel::intelDunnington();

  for (OptimizerKind Kind :
       {OptimizerKind::Native, OptimizerKind::LarsenSlp,
        OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
    PipelineResult R = runPipeline(K, Kind, Options);

    std::string Error;
    bool Ok = checkEquivalence(K, R, /*Seed=*/42, &Error);

    std::printf("%-14s improvement over scalar: %6.2f%%   "
                "superwords: %2u   reuses: %u direct / %u permuted   %s\n",
                optimizerName(Kind), 100.0 * R.improvement(),
                R.TheSchedule.numGroups(), R.Program.Stats.DirectReuses,
                R.Program.Stats.PermutedReuses,
                Ok ? "[results match scalar execution]" : Error.c_str());
    if (!Ok)
      return 1;
  }

  std::printf("\nThe Global scheme groups the statements for superword "
              "reuse and Global+Layout\nadditionally replicates the "
              "read-only strided arrays (Section 5), matching the\n"
              "paper's Figure 15 walk-through.\n");
  return 0;
}
