//===- exec/ExecEngine.h - Optimized/Reference execution engines -*- C++ -*-===//
///
/// \file
/// The compile-once/run-many execution engine behind `--exec-engine=`,
/// mirroring the grouping subsystem's Optimized/Reference split:
///
///  * `ExecEngineKind::Optimized` lowers kernels and vector programs to
///    flat tapes (exec/Tape.h) and executes them out of pooled arenas —
///    strength-reduced addressing, no tree walking, no per-run allocation.
///  * `ExecEngineKind::Reference` delegates every run to the tree-walking
///    interpreters (`runKernelScalar`, `runVectorProgram`), which remain
///    the semantic ground truth.
///  * `ExecEngineKind::Native` lowers to portable C (native/CEmitter.h),
///    compiles it with the host compiler into a content-addressed object
///    cache, and runs the dlopened machine code (native/NativeBackend.h).
///    When no host compiler is available (or a compile fails) it degrades
///    to the Optimized tape with a diagnostic — never an error.
///
/// All engines are bit-identical by contract; the differential test suites
/// (tests/exec/ExecEngineDifferentialTest.cpp,
/// tests/native/NativeBackendTest.cpp) hold them to it. The engine
/// also owns an `EnvironmentPool` so hot callers (the fuzzer, equivalence
/// checking) reset environments in place instead of reconstructing them,
/// and an `ExecCounters` block surfaced through `--stats`.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_EXEC_EXECENGINE_H
#define SLP_EXEC_EXECENGINE_H

#include "exec/Tape.h"

#include <memory>
#include <optional>
#include <string>

namespace slp {

class Statistics;

class NativeObject;

/// Which execution engine runs kernels and vector programs.
enum class ExecEngineKind : uint8_t {
  Optimized, ///< flat-tape compiled execution (the default)
  Reference, ///< tree-walking interpreters (ground truth)
  Native,    ///< host-compiled shared objects (real SIMD wall-clock)
};

/// CLI spelling of \p Kind ("optimized" / "reference" / "native").
const char *execEngineName(ExecEngineKind Kind);

/// Parses a CLI spelling; nullopt when unrecognized.
std::optional<ExecEngineKind> parseExecEngineName(const std::string &Name);

/// Engine used when the caller does not choose one: Optimized, unless the
/// SLP_EXEC_ENGINE environment variable overrides it (exported by CI to
/// run existing equivalence-heavy test shards under either engine).
ExecEngineKind defaultExecEngineKind();

/// A pool of reusable Environments. `acquire` returns an environment
/// freshly seeded for a kernel — bit-identical to `Environment(K, Seed)`
/// — reusing a previously released pool slot when one exists.
///
/// Release is scope-based, not per-object: record `mark()` before a batch
/// of acquires and `releaseTo(Mark)` afterwards. References returned by
/// `acquire` are invalidated by `releaseTo`/`releaseAll`, not by further
/// `acquire` calls.
class EnvironmentPool {
public:
  Environment &acquire(const Kernel &K, uint64_t Seed);

  size_t mark() const { return InUse; }
  void releaseTo(size_t Mark) {
    assert(Mark <= InUse && "releasing environments never acquired");
    InUse = Mark;
  }
  void releaseAll() { InUse = 0; }

  /// Points the pool's reuse/construction telemetry at \p C.
  void setCounters(ExecCounters *C) { Counters = C; }

private:
  std::vector<std::unique_ptr<Environment>> Slots;
  size_t InUse = 0;
  ExecCounters *Counters = nullptr;
};

/// A kernel compiled for repeated scalar execution. Holds a pointer to the
/// kernel, which must outlive the compiled form.
struct CompiledScalarKernel {
  const Kernel *K = nullptr;
  CompiledTape Tape;
  bool UseTape = false;
  /// Under ExecEngineKind::Native: the dlopened object (null when the
  /// lowering fell back; the tape then runs instead).
  std::shared_ptr<const NativeObject> Native;
};

/// A vector program compiled for repeated execution. Kernel and program
/// must outlive the compiled form.
struct CompiledVectorKernel {
  const Kernel *K = nullptr;
  const VectorProgram *Program = nullptr;
  CompiledTape Tape;
  bool UseTape = false;
  /// Under ExecEngineKind::Native: the dlopened object (null when the
  /// lowering fell back; the tape then runs instead).
  std::shared_ptr<const NativeObject> Native;
};

/// One execution engine: a kind, the pooled run-time arena, an
/// environment pool, and counters. Engines are cheap to construct but
/// meant to be long-lived so arenas amortize; they are not thread-safe —
/// use one per thread.
class ExecEngine {
public:
  explicit ExecEngine(ExecEngineKind Kind = defaultExecEngineKind())
      : Kind(Kind) {
    Pool.setCounters(&Counters);
  }

  ExecEngineKind kind() const { return Kind; }

  /// Compiles \p K for scalar execution (a no-op wrapper under Reference).
  CompiledScalarKernel compileScalar(const Kernel &K);

  /// Compiles \p Program over \p K for vector execution.
  CompiledVectorKernel compileVector(const Kernel &K,
                                     const VectorProgram &Program);

  /// Executes a compiled scalar kernel, mutating \p Env.
  ScalarExecStats runScalar(const CompiledScalarKernel &C, Environment &Env);

  /// Executes a compiled vector program, mutating \p Env.
  void runVector(const CompiledVectorKernel &C, Environment &Env);

  /// One-shot convenience: compile + run scalar.
  ScalarExecStats runKernel(const Kernel &K, Environment &Env) {
    CompiledScalarKernel C = compileScalar(K);
    return runScalar(C, Env);
  }

  /// One-shot convenience: compile + run vector.
  void runProgram(const Kernel &K, const VectorProgram &Program,
                  Environment &Env) {
    CompiledVectorKernel C = compileVector(K, Program);
    runVector(C, Env);
  }

  EnvironmentPool &envPool() { return Pool; }
  ExecCounters &counters() { return Counters; }
  const ExecCounters &counters() const { return Counters; }

  /// Under ExecEngineKind::Native: why the most recent lowering fell back
  /// to the tape (empty when every lowering produced native code). Other
  /// kinds always report empty.
  const std::string &nativeDiagnostic() const { return NativeDiag; }

private:
  /// Compiles one emitted TU through the native backend, updating the
  /// native counters and the fallback diagnostic. Null on fallback.
  std::shared_ptr<const NativeObject> lowerNative(const std::string &Source,
                                                  bool ScalarBaseline);

  /// Runs \p Native over \p Env's buffers (binding array base pointers
  /// into the NativeBases scratch).
  void runNative(const NativeObject &Native, const Kernel &K,
                 Environment &Env);

  ExecEngineKind Kind;
  ExecArena Arena;
  EnvironmentPool Pool;
  ExecCounters Counters;
  std::string NativeDiag;
  std::vector<double *> NativeBases;
};

/// Publishes \p C into \p S under "exec."-prefixed counter names
/// (`--stats`).
void reportExecCounters(const ExecCounters &C, Statistics &S);

} // namespace slp

#endif // SLP_EXEC_EXECENGINE_H
