//===- exec/Tape.cpp ------------------------------------------*- C++ -*-===//

#include "exec/Tape.h"

#include "support/Error.h"

#include <cmath>
#include <string>
#include <unordered_map>

using namespace slp;

namespace {

/// Shared lowering state: address-slot interning, the constant pool, and
/// the op stream under construction.
class TapeBuilder {
public:
  explicit TapeBuilder(const Kernel &K) : K(K) {
    T.Depth = static_cast<unsigned>(K.Loops.size());
    T.TotalIterations = K.totalIterations();
    for (const Loop &L : K.Loops)
      T.TripCounts.push_back(L.tripCount());
  }

  /// Interns an address slot for the array operand \p Op: one full affine
  /// flattening at compile time, evaluated at the nest's lower bounds,
  /// plus the per-level odometer carry deltas.
  uint32_t addrSlot(const Operand &Op) {
    assert(Op.isArray() && "address slots are for array references");
    const ArraySymbol &A = K.array(Op.symbol());
    AffineExpr Flat = flattenArrayRef(A, Op.subscripts());
    std::string Key = std::to_string(Op.symbol()) + "|" + Flat.key();
    auto [It, Inserted] =
        SlotOf.try_emplace(Key, static_cast<uint32_t>(T.AddrArray.size()));
    if (!Inserted)
      return It->second;

    unsigned Depth = T.Depth;
    assert(Flat.numDims() <= Depth &&
           "array subscript references a deeper loop than the nest has");
    int64_t Base = Flat.constant();
    for (unsigned D = 0; D != Depth; ++D)
      Base += Flat.coeff(D) * K.Loops[D].Lower;
    T.AddrArray.push_back(Op.symbol());
    T.AddrBase.push_back(Base);
    T.AddrLimit.push_back(A.numElements());
    // Carry into level D: index D steps once while every inner index
    // rewinds from its last value back to its lower bound.
    for (unsigned D = 0; D != Depth; ++D) {
      int64_t Delta = Flat.coeff(D) * K.Loops[D].Step;
      for (unsigned Inner = D + 1; Inner != Depth; ++Inner)
        Delta -= Flat.coeff(Inner) * K.Loops[Inner].Step *
                 (K.Loops[Inner].tripCount() - 1);
      T.AddrCarryDelta.push_back(Delta);
    }
    return It->second;
  }

  uint32_t constSlot(double Value) {
    T.ConstPool.push_back(Value);
    return static_cast<uint32_t>(T.ConstPool.size() - 1);
  }

  void emit(TapeOp Op) { T.Ops.push_back(Op); }

  /// Lowers \p E with an explicit evaluation stack rooted at value slot
  /// \p SP; the result lands in slot SP. Emission order matches the
  /// recursive reference evaluator (left subtree, right subtree, op), so
  /// loads hit memory in the identical order.
  void emitExpr(const Expr &E, unsigned SP) {
    noteValueSlot(SP);
    if (E.isLeaf()) {
      const Operand &Op = E.leaf();
      TapeOp O;
      O.Dst = SP;
      switch (Op.kind()) {
      case Operand::Kind::Constant:
        O.Opc = TapeOpc::Const;
        O.A = constSlot(Op.constantValue());
        break;
      case Operand::Kind::Scalar:
        O.Opc = TapeOpc::LoadScalar;
        O.A = Op.symbol();
        break;
      case Operand::Kind::Array:
        O.Opc = TapeOpc::LoadArray;
        O.A = Op.symbol();
        O.B = addrSlot(Op);
        ++T.ArrayLoadsPerIter;
        break;
      }
      emit(O);
      return;
    }
    emitExpr(E.child(0), SP);
    if (E.numChildren() > 1)
      emitExpr(E.child(1), SP + 1);
    if (E.numChildren() > 2)
      emitExpr(E.child(2), SP + 2);
    TapeOp O;
    O.Dst = SP;
    O.A = SP;
    O.B = SP + 1;
    O.C = SP + 2;
    switch (E.opcode()) {
    case OpCode::Add:
      O.Opc = TapeOpc::Add;
      break;
    case OpCode::Sub:
      O.Opc = TapeOpc::Sub;
      break;
    case OpCode::Mul:
      O.Opc = TapeOpc::Mul;
      break;
    case OpCode::Div:
      O.Opc = TapeOpc::Div;
      break;
    case OpCode::Min:
      O.Opc = TapeOpc::Min;
      break;
    case OpCode::Max:
      O.Opc = TapeOpc::Max;
      break;
    case OpCode::Neg:
      O.Opc = TapeOpc::Neg;
      break;
    case OpCode::Sqrt:
      O.Opc = TapeOpc::Sqrt;
      break;
    case OpCode::Abs:
      O.Opc = TapeOpc::Abs;
      break;
    case OpCode::CmpLT:
      O.Opc = TapeOpc::CmpLT;
      break;
    case OpCode::CmpLE:
      O.Opc = TapeOpc::CmpLE;
      break;
    case OpCode::CmpGT:
      O.Opc = TapeOpc::CmpGT;
      break;
    case OpCode::CmpGE:
      O.Opc = TapeOpc::CmpGE;
      break;
    case OpCode::CmpEQ:
      O.Opc = TapeOpc::CmpEQ;
      break;
    case OpCode::CmpNE:
      O.Opc = TapeOpc::CmpNE;
      break;
    case OpCode::Select:
      O.Opc = TapeOpc::SelectVal;
      break;
    }
    ++T.AluOpsPerIter;
    emit(O);
  }

  /// Lowers one whole statement. Unguarded: rhs into value slot 0, then
  /// the store. Guarded: guard into slot 0 first (the reference evaluates
  /// the guard before the rhs, so loads must hit memory in that order),
  /// rhs into slot 1, then a guarded store reading the guard from slot 0.
  void emitStatement(const Statement &S) {
    bool Guarded = S.hasGuard();
    unsigned ValueSlot = 0;
    if (Guarded) {
      emitExpr(S.guard(), 0);
      ValueSlot = 1;
    }
    emitExpr(S.rhs(), ValueSlot);
    const Operand &Lhs = S.lhs();
    TapeOp O;
    O.Dst = ValueSlot;
    O.C = 0; // guard slot (guarded opcodes only)
    if (Lhs.isScalar()) {
      bool Float = isFloatType(K.scalar(Lhs.symbol()).Ty);
      if (Guarded)
        O.Opc = Float ? TapeOpc::StoreScalarIf : TapeOpc::StoreScalarIntIf;
      else
        O.Opc = Float ? TapeOpc::StoreScalar : TapeOpc::StoreScalarInt;
      O.A = Lhs.symbol();
    } else {
      assert(Lhs.isArray() && "cannot store to a constant");
      bool Float = isFloatType(K.array(Lhs.symbol()).Ty);
      if (Guarded)
        O.Opc = Float ? TapeOpc::StoreArrayIf : TapeOpc::StoreArrayIntIf;
      else
        O.Opc = Float ? TapeOpc::StoreArray : TapeOpc::StoreArrayInt;
      O.A = Lhs.symbol();
      O.B = addrSlot(Lhs);
      // Attempted-store counting: the reference counts a suppressed array
      // store too, keeping the static per-iteration accounting exact.
      ++T.ArrayStoresPerIter;
    }
    emit(O);
  }

  void noteValueSlot(unsigned SP) {
    if (SP + 1 > T.NumValueSlots)
      T.NumValueSlots = SP + 1;
  }

  size_t permStart() const { return T.PermPool.size(); }

  void appendPerm(const std::vector<unsigned> &Perm) {
    T.PermPool.insert(T.PermPool.end(), Perm.begin(), Perm.end());
  }

  CompiledTape take() { return std::move(T); }

  const Kernel &K;

private:
  CompiledTape T;
  std::unordered_map<std::string, uint32_t> SlotOf;
};

/// True when \p LaneOps are the lanes of one contiguous stride-1 run over
/// a single array: lane l's flattened offset equals lane 0's plus l, with
/// identical loop-index coefficients. Such packs execute as one vector
/// memory operation on the tape.
bool isContiguousRun(const Kernel &K, const std::vector<Operand> &LaneOps) {
  if (LaneOps.empty() || !LaneOps[0].isArray())
    return false;
  const ArraySymbol &A = K.array(LaneOps[0].symbol());
  AffineExpr Flat0 = flattenArrayRef(A, LaneOps[0].subscripts());
  for (unsigned L = 1, E = static_cast<unsigned>(LaneOps.size()); L != E;
       ++L) {
    if (!LaneOps[L].isArray() || LaneOps[L].symbol() != LaneOps[0].symbol())
      return false;
    AffineExpr Diff =
        flattenArrayRef(A, LaneOps[L].subscripts()) - Flat0;
    if (!Diff.isConstant() || Diff.constant() != static_cast<int64_t>(L))
      return false;
  }
  return true;
}

} // namespace

CompiledTape slp::compileScalarTape(const Kernel &K) {
  TapeBuilder B(K);
  for (const Statement &S : K.Body)
    B.emitStatement(S);
  return B.take();
}

CompiledTape slp::compileVectorTape(const Kernel &K,
                                    const VectorProgram &Program) {
  TapeBuilder B(K);

  unsigned MaxLanes = 1;
  for (const VInst &I : Program.Insts)
    MaxLanes = std::max(MaxLanes, I.Lanes);

  // Static width of each vector register as the straight-line program
  // executes, mirroring the reference interpreter's resize-on-write
  // semantics so its width assertions hold at compile time instead.
  std::vector<unsigned> Width(Program.NumVRegs, 0);

  for (const VInst &I : Program.Insts) {
    switch (I.Kind) {
    case VInstKind::LoadPack: {
      assert(I.LaneOps.size() == I.Lanes && "lane operand count mismatch");
      if (isContiguousRun(K, I.LaneOps)) {
        TapeOp O;
        O.Opc = TapeOpc::VLoadContig;
        O.Lanes = static_cast<uint16_t>(I.Lanes);
        O.NoAlias = 1;
        O.Dst = I.Dst;
        O.A = I.LaneOps[0].symbol();
        O.B = B.addrSlot(I.LaneOps[0]);
        B.emit(O);
      } else {
        for (unsigned L = 0; L != I.Lanes; ++L) {
          const Operand &Op = I.LaneOps[L];
          TapeOp O;
          O.Lane = static_cast<uint8_t>(L);
          O.Dst = I.Dst;
          switch (Op.kind()) {
          case Operand::Kind::Constant:
            O.Opc = TapeOpc::VInsertConst;
            O.A = B.constSlot(Op.constantValue());
            break;
          case Operand::Kind::Scalar:
            O.Opc = TapeOpc::VInsertScalar;
            O.A = Op.symbol();
            break;
          case Operand::Kind::Array:
            O.Opc = TapeOpc::VInsertArray;
            O.A = Op.symbol();
            O.B = B.addrSlot(Op);
            break;
          }
          B.emit(O);
        }
      }
      Width[I.Dst] = I.Lanes;
      break;
    }
    case VInstKind::StorePack: {
      assert(I.LaneOps.size() == I.Lanes && "lane operand count mismatch");
      assert(Width[I.Src0] == I.Lanes && "register width mismatch");
      bool Contig = isContiguousRun(K, I.LaneOps);
      if (Contig) {
        bool Float = isFloatType(K.array(I.LaneOps[0].symbol()).Ty);
        TapeOp O;
        O.Opc = Float ? TapeOpc::VStoreContig : TapeOpc::VStoreContigInt;
        O.Lanes = static_cast<uint16_t>(I.Lanes);
        O.NoAlias = 1;
        O.Dst = I.Src0;
        O.A = I.LaneOps[0].symbol();
        O.B = B.addrSlot(I.LaneOps[0]);
        B.emit(O);
      } else {
        for (unsigned L = 0; L != I.Lanes; ++L) {
          const Operand &Target = I.LaneOps[L];
          TapeOp O;
          O.Lane = static_cast<uint8_t>(L);
          O.Dst = I.Src0;
          if (Target.isScalar()) {
            bool Float = isFloatType(K.scalar(Target.symbol()).Ty);
            O.Opc = Float ? TapeOpc::VExtractScalar
                          : TapeOpc::VExtractScalarInt;
            O.A = Target.symbol();
          } else {
            assert(Target.isArray() && "cannot store to a constant");
            bool Float = isFloatType(K.array(Target.symbol()).Ty);
            O.Opc =
                Float ? TapeOpc::VExtractArray : TapeOpc::VExtractArrayInt;
            O.A = Target.symbol();
            O.B = B.addrSlot(Target);
          }
          B.emit(O);
        }
      }
      break;
    }
    case VInstKind::Shuffle: {
      assert(I.Perm.size() == I.Lanes && "permutation width mismatch");
      TapeOp O;
      O.Opc = I.Dst == I.Src0 ? TapeOpc::VShuffleInPlace : TapeOpc::VShuffle;
      O.NoAlias = I.Dst != I.Src0;
      O.Lanes = static_cast<uint16_t>(I.Lanes);
      O.Dst = I.Dst;
      O.A = I.Src0;
      O.B = static_cast<uint32_t>(B.permStart());
      for (unsigned P : I.Perm) {
        assert(P < Width[I.Src0] && "shuffle lane out of range");
        (void)P;
      }
      B.appendPerm(I.Perm);
      B.emit(O);
      Width[I.Dst] = I.Lanes;
      break;
    }
    case VInstKind::VectorOp: {
      assert(Width[I.Src0] >= I.Lanes && "source register too narrow");
      TapeOp O;
      O.Lanes = static_cast<uint16_t>(I.Lanes);
      O.Dst = I.Dst;
      O.A = I.Src0;
      if (I.UnaryOp) {
        O.NoAlias = I.Dst != I.Src0;
        switch (I.Op) {
        case OpCode::Neg:
          O.Opc = TapeOpc::VNeg;
          break;
        case OpCode::Sqrt:
          O.Opc = TapeOpc::VSqrt;
          break;
        case OpCode::Abs:
          O.Opc = TapeOpc::VAbs;
          break;
        default:
          slpUnreachable("binary opcode marked unary");
        }
      } else {
        assert(Width[I.Src1] >= I.Lanes && "source register too narrow");
        O.B = I.Src1;
        O.NoAlias = I.Dst != I.Src0 && I.Dst != I.Src1;
        switch (I.Op) {
        case OpCode::Add:
          O.Opc = TapeOpc::VAdd;
          break;
        case OpCode::Sub:
          O.Opc = TapeOpc::VSub;
          break;
        case OpCode::Mul:
          O.Opc = TapeOpc::VMul;
          break;
        case OpCode::Div:
          O.Opc = TapeOpc::VDiv;
          break;
        case OpCode::Min:
          O.Opc = TapeOpc::VMin;
          break;
        case OpCode::Max:
          O.Opc = TapeOpc::VMax;
          break;
        case OpCode::CmpLT:
          O.Opc = TapeOpc::VCmpLT;
          break;
        case OpCode::CmpLE:
          O.Opc = TapeOpc::VCmpLE;
          break;
        case OpCode::CmpGT:
          O.Opc = TapeOpc::VCmpGT;
          break;
        case OpCode::CmpGE:
          O.Opc = TapeOpc::VCmpGE;
          break;
        case OpCode::CmpEQ:
          O.Opc = TapeOpc::VCmpEQ;
          break;
        case OpCode::CmpNE:
          O.Opc = TapeOpc::VCmpNE;
          break;
        default:
          slpUnreachable("unary opcode marked binary");
        }
      }
      B.emit(O);
      Width[I.Dst] = I.Lanes;
      break;
    }
    case VInstKind::ScalarExec:
      B.emitStatement(K.Body.statement(I.StmtId));
      break;
    case VInstKind::MaskedLoadPack: {
      assert(I.LaneOps.size() == I.Lanes && "lane operand count mismatch");
      assert(Width[I.Src1] == I.Lanes && "mask width mismatch");
      // Load every lane as usual, then zero the untaken lanes — exactly
      // the reference interpreter's masked-load semantics.
      if (isContiguousRun(K, I.LaneOps)) {
        TapeOp O;
        O.Opc = TapeOpc::VLoadContig;
        O.Lanes = static_cast<uint16_t>(I.Lanes);
        O.NoAlias = 1;
        O.Dst = I.Dst;
        O.A = I.LaneOps[0].symbol();
        O.B = B.addrSlot(I.LaneOps[0]);
        B.emit(O);
      } else {
        for (unsigned L = 0; L != I.Lanes; ++L) {
          const Operand &Op = I.LaneOps[L];
          assert(Op.isArray() && "masked loads pack array lanes");
          TapeOp O;
          O.Lane = static_cast<uint8_t>(L);
          O.Dst = I.Dst;
          O.Opc = TapeOpc::VInsertArray;
          O.A = Op.symbol();
          O.B = B.addrSlot(Op);
          B.emit(O);
        }
      }
      TapeOp Mask;
      Mask.Opc = TapeOpc::VMaskZero;
      Mask.Lanes = static_cast<uint16_t>(I.Lanes);
      Mask.NoAlias = I.Dst != I.Src1;
      Mask.Dst = I.Dst;
      Mask.A = I.Src1;
      B.emit(Mask);
      Width[I.Dst] = I.Lanes;
      break;
    }
    case VInstKind::MaskedStorePack: {
      assert(I.LaneOps.size() == I.Lanes && "lane operand count mismatch");
      assert(Width[I.Src0] == I.Lanes && "register width mismatch");
      assert(Width[I.Src1] == I.Lanes && "mask width mismatch");
      if (isContiguousRun(K, I.LaneOps)) {
        bool Float = isFloatType(K.array(I.LaneOps[0].symbol()).Ty);
        TapeOp O;
        O.Opc = Float ? TapeOpc::VMStoreContig : TapeOpc::VMStoreContigInt;
        O.Lanes = static_cast<uint16_t>(I.Lanes);
        O.Dst = I.Src0;
        O.A = I.LaneOps[0].symbol();
        O.B = B.addrSlot(I.LaneOps[0]);
        O.C = I.Src1;
        B.emit(O);
      } else {
        for (unsigned L = 0; L != I.Lanes; ++L) {
          const Operand &Target = I.LaneOps[L];
          TapeOp O;
          O.Lane = static_cast<uint8_t>(L);
          O.Dst = I.Src0;
          O.C = I.Src1;
          if (Target.isScalar()) {
            bool Float = isFloatType(K.scalar(Target.symbol()).Ty);
            O.Opc = Float ? TapeOpc::VExtractScalarIf
                          : TapeOpc::VExtractScalarIntIf;
            O.A = Target.symbol();
          } else {
            assert(Target.isArray() && "cannot store to a constant");
            bool Float = isFloatType(K.array(Target.symbol()).Ty);
            O.Opc = Float ? TapeOpc::VExtractArrayIf
                          : TapeOpc::VExtractArrayIntIf;
            O.A = Target.symbol();
            O.B = B.addrSlot(Target);
          }
          B.emit(O);
        }
      }
      break;
    }
    case VInstKind::Blend: {
      assert(Width[I.Src0] >= I.Lanes && "condition register too narrow");
      assert(Width[I.Src1] >= I.Lanes && "source register too narrow");
      assert(Width[I.Src2] >= I.Lanes && "source register too narrow");
      TapeOp O;
      O.Opc = TapeOpc::VBlend;
      O.Lanes = static_cast<uint16_t>(I.Lanes);
      O.NoAlias = I.Dst != I.Src0 && I.Dst != I.Src1 && I.Dst != I.Src2;
      O.Dst = I.Dst;
      O.A = I.Src0;
      O.B = I.Src1;
      O.C = I.Src2;
      B.emit(O);
      Width[I.Dst] = I.Lanes;
      break;
    }
    }
  }

  CompiledTape T = B.take();
  T.NumVRegs = Program.NumVRegs;
  T.VRegStride = MaxLanes;
  return T;
}

namespace {

inline double truncStore(double V) { return std::trunc(V); }

} // namespace

ScalarExecStats slp::runTape(const Kernel &K, const CompiledTape &T,
                             Environment &Env, ExecArena &Arena,
                             ExecCounters *Counters) {
  ScalarExecStats Stats;
  const int64_t Total = T.TotalIterations;
  if (Counters)
    ++Counters->TapeRuns;
  if (Total == 0)
    return Stats;

  // -- bind the arena (grow-only; steady state allocates nothing) --------
  bool Grew = false;
  auto EnsureSize = [&Grew](auto &Vec, size_t N) {
    if (Vec.size() < N) {
      Vec.resize(N);
      Grew = true;
    }
  };
  EnsureSize(Arena.Values, T.NumValueSlots);
  EnsureSize(Arena.VLanes,
             static_cast<size_t>(T.NumVRegs + 1) * T.VRegStride);
  EnsureSize(Arena.Addrs, T.numAddrSlots());
  EnsureSize(Arena.ArrayBases, K.Arrays.size());
  EnsureSize(Arena.OdoPos, T.Depth);

  const unsigned NumSlots = T.numAddrSlots();
  for (unsigned S = 0; S != NumSlots; ++S)
    Arena.Addrs[S] = T.AddrBase[S];
  for (unsigned A = 0, E = static_cast<unsigned>(K.Arrays.size()); A != E;
       ++A)
    Arena.ArrayBases[A] = Env.arrayBuffer(A).data();
  for (unsigned D = 0; D != T.Depth; ++D)
    Arena.OdoPos[D] = 0;

  if (Counters) {
    ++(Grew ? Counters->ArenaGrowths : Counters->ArenaReuses);
    Counters->AddrFullEvals += NumSlots;
  }

  const TapeOp *const Ops = T.Ops.data();
  const size_t NumOps = T.Ops.size();
  double *const V = Arena.Values.data();
  double *const VL = Arena.VLanes.data();
  int64_t *const Addr = Arena.Addrs.data();
  double *const *const Bases = Arena.ArrayBases.data();
  double *const Scalars = Env.scalarData();
  const double *const CP = T.ConstPool.data();
  const unsigned *const PP = T.PermPool.data();
  const size_t Stride = T.VRegStride;
  double *const Scratch = VL + static_cast<size_t>(T.NumVRegs) * Stride;
  int64_t *const Pos = Arena.OdoPos.data();
  const int64_t *const Trips = T.TripCounts.data();
  const int64_t *const Limits = T.AddrLimit.data();
  (void)Limits;

  int64_t Iter = 0;
  while (true) {
    for (size_t I = 0; I != NumOps; ++I) {
      const TapeOp &O = Ops[I];
      switch (O.Opc) {
      case TapeOpc::Const:
        V[O.Dst] = CP[O.A];
        break;
      case TapeOpc::LoadScalar:
        V[O.Dst] = Scalars[O.A];
        break;
      case TapeOpc::LoadArray:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        V[O.Dst] = Bases[O.A][Addr[O.B]];
        break;
      case TapeOpc::Add:
        V[O.Dst] = V[O.A] + V[O.B];
        break;
      case TapeOpc::Sub:
        V[O.Dst] = V[O.A] - V[O.B];
        break;
      case TapeOpc::Mul:
        V[O.Dst] = V[O.A] * V[O.B];
        break;
      case TapeOpc::Div:
        V[O.Dst] = V[O.A] / V[O.B];
        break;
      case TapeOpc::Min:
        V[O.Dst] = std::fmin(V[O.A], V[O.B]);
        break;
      case TapeOpc::Max:
        V[O.Dst] = std::fmax(V[O.A], V[O.B]);
        break;
      case TapeOpc::Neg:
        V[O.Dst] = -V[O.A];
        break;
      case TapeOpc::Sqrt:
        // Matches the interpreters: sqrt of the magnitude stays real.
        V[O.Dst] = std::sqrt(std::fabs(V[O.A]));
        break;
      case TapeOpc::Abs:
        V[O.Dst] = std::fabs(V[O.A]);
        break;
      case TapeOpc::CmpLT:
        V[O.Dst] = V[O.A] < V[O.B] ? 1.0 : 0.0;
        break;
      case TapeOpc::CmpLE:
        V[O.Dst] = V[O.A] <= V[O.B] ? 1.0 : 0.0;
        break;
      case TapeOpc::CmpGT:
        V[O.Dst] = V[O.A] > V[O.B] ? 1.0 : 0.0;
        break;
      case TapeOpc::CmpGE:
        V[O.Dst] = V[O.A] >= V[O.B] ? 1.0 : 0.0;
        break;
      case TapeOpc::CmpEQ:
        V[O.Dst] = V[O.A] == V[O.B] ? 1.0 : 0.0;
        break;
      case TapeOpc::CmpNE:
        V[O.Dst] = V[O.A] != V[O.B] ? 1.0 : 0.0;
        break;
      case TapeOpc::SelectVal:
        V[O.Dst] = V[O.A] != 0.0 ? V[O.B] : V[O.C];
        break;
      case TapeOpc::StoreScalarIf:
        if (V[O.C] != 0.0)
          Scalars[O.A] = V[O.Dst];
        break;
      case TapeOpc::StoreScalarIntIf:
        if (V[O.C] != 0.0)
          Scalars[O.A] = truncStore(V[O.Dst]);
        break;
      case TapeOpc::StoreArrayIf:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        if (V[O.C] != 0.0)
          Bases[O.A][Addr[O.B]] = V[O.Dst];
        break;
      case TapeOpc::StoreArrayIntIf:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        if (V[O.C] != 0.0)
          Bases[O.A][Addr[O.B]] = truncStore(V[O.Dst]);
        break;
      case TapeOpc::StoreScalar:
        Scalars[O.A] = V[O.Dst];
        break;
      case TapeOpc::StoreScalarInt:
        Scalars[O.A] = truncStore(V[O.Dst]);
        break;
      case TapeOpc::StoreArray:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        Bases[O.A][Addr[O.B]] = V[O.Dst];
        break;
      case TapeOpc::StoreArrayInt:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        Bases[O.A][Addr[O.B]] = truncStore(V[O.Dst]);
        break;
      case TapeOpc::VLoadContig: {
        assert(Addr[O.B] >= 0 && Addr[O.B] + O.Lanes <= Limits[O.B] &&
               "vector load out of bounds");
        const double *__restrict Src = Bases[O.A] + Addr[O.B];
        double *__restrict Dst = VL + O.Dst * Stride;
        for (unsigned L = 0; L != O.Lanes; ++L)
          Dst[L] = Src[L];
        break;
      }
      case TapeOpc::VStoreContig: {
        assert(Addr[O.B] >= 0 && Addr[O.B] + O.Lanes <= Limits[O.B] &&
               "vector store out of bounds");
        const double *__restrict Src = VL + O.Dst * Stride;
        double *__restrict Dst = Bases[O.A] + Addr[O.B];
        for (unsigned L = 0; L != O.Lanes; ++L)
          Dst[L] = Src[L];
        break;
      }
      case TapeOpc::VStoreContigInt: {
        assert(Addr[O.B] >= 0 && Addr[O.B] + O.Lanes <= Limits[O.B] &&
               "vector store out of bounds");
        const double *__restrict Src = VL + O.Dst * Stride;
        double *__restrict Dst = Bases[O.A] + Addr[O.B];
        for (unsigned L = 0; L != O.Lanes; ++L)
          Dst[L] = truncStore(Src[L]);
        break;
      }
      case TapeOpc::VInsertConst:
        VL[O.Dst * Stride + O.Lane] = CP[O.A];
        break;
      case TapeOpc::VInsertScalar:
        VL[O.Dst * Stride + O.Lane] = Scalars[O.A];
        break;
      case TapeOpc::VInsertArray:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        VL[O.Dst * Stride + O.Lane] = Bases[O.A][Addr[O.B]];
        break;
      case TapeOpc::VExtractScalar:
        Scalars[O.A] = VL[O.Dst * Stride + O.Lane];
        break;
      case TapeOpc::VExtractScalarInt:
        Scalars[O.A] = truncStore(VL[O.Dst * Stride + O.Lane]);
        break;
      case TapeOpc::VExtractArray:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        Bases[O.A][Addr[O.B]] = VL[O.Dst * Stride + O.Lane];
        break;
      case TapeOpc::VExtractArrayInt:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        Bases[O.A][Addr[O.B]] = truncStore(VL[O.Dst * Stride + O.Lane]);
        break;
      case TapeOpc::VShuffle: {
        const double *__restrict Src = VL + O.A * Stride;
        double *__restrict Dst = VL + O.Dst * Stride;
        const unsigned *__restrict Perm = PP + O.B;
        for (unsigned L = 0; L != O.Lanes; ++L)
          Dst[L] = Src[Perm[L]];
        break;
      }
      case TapeOpc::VShuffleInPlace: {
        double *Reg = VL + O.Dst * Stride;
        const unsigned *Perm = PP + O.B;
        for (unsigned L = 0; L != O.Lanes; ++L)
          Scratch[L] = Reg[L];
        for (unsigned L = 0; L != O.Lanes; ++L)
          Reg[L] = Scratch[Perm[L]];
        break;
      }

#define SLP_VECTOR_BINOP(CASE, EXPR)                                       \
  case TapeOpc::CASE: {                                                    \
    if (O.NoAlias) {                                                       \
      const double *__restrict A = VL + O.A * Stride;                      \
      const double *__restrict B = VL + O.B * Stride;                      \
      double *__restrict D = VL + O.Dst * Stride;                          \
      for (unsigned L = 0; L != O.Lanes; ++L)                              \
        D[L] = EXPR;                                                       \
    } else {                                                               \
      const double *A = VL + O.A * Stride;                                 \
      const double *B = VL + O.B * Stride;                                 \
      double *D = VL + O.Dst * Stride;                                     \
      for (unsigned L = 0; L != O.Lanes; ++L)                              \
        D[L] = EXPR;                                                       \
    }                                                                      \
    break;                                                                 \
  }
        SLP_VECTOR_BINOP(VAdd, A[L] + B[L])
        SLP_VECTOR_BINOP(VSub, A[L] - B[L])
        SLP_VECTOR_BINOP(VMul, A[L] * B[L])
        SLP_VECTOR_BINOP(VDiv, A[L] / B[L])
        SLP_VECTOR_BINOP(VMin, std::fmin(A[L], B[L]))
        SLP_VECTOR_BINOP(VMax, std::fmax(A[L], B[L]))
        SLP_VECTOR_BINOP(VCmpLT, A[L] < B[L] ? 1.0 : 0.0)
        SLP_VECTOR_BINOP(VCmpLE, A[L] <= B[L] ? 1.0 : 0.0)
        SLP_VECTOR_BINOP(VCmpGT, A[L] > B[L] ? 1.0 : 0.0)
        SLP_VECTOR_BINOP(VCmpGE, A[L] >= B[L] ? 1.0 : 0.0)
        SLP_VECTOR_BINOP(VCmpEQ, A[L] == B[L] ? 1.0 : 0.0)
        SLP_VECTOR_BINOP(VCmpNE, A[L] != B[L] ? 1.0 : 0.0)
#undef SLP_VECTOR_BINOP

      case TapeOpc::VBlend: {
        if (O.NoAlias) {
          const double *__restrict Cond = VL + O.A * Stride;
          const double *__restrict A = VL + O.B * Stride;
          const double *__restrict B = VL + O.C * Stride;
          double *__restrict D = VL + O.Dst * Stride;
          for (unsigned L = 0; L != O.Lanes; ++L)
            D[L] = Cond[L] != 0.0 ? A[L] : B[L];
        } else {
          const double *Cond = VL + O.A * Stride;
          const double *A = VL + O.B * Stride;
          const double *B = VL + O.C * Stride;
          double *D = VL + O.Dst * Stride;
          for (unsigned L = 0; L != O.Lanes; ++L)
            D[L] = Cond[L] != 0.0 ? A[L] : B[L];
        }
        break;
      }
      case TapeOpc::VMaskZero: {
        const double *Mask = VL + O.A * Stride;
        double *D = VL + O.Dst * Stride;
        for (unsigned L = 0; L != O.Lanes; ++L)
          D[L] = Mask[L] != 0.0 ? D[L] : 0.0;
        break;
      }
      case TapeOpc::VMStoreContig: {
        assert(Addr[O.B] >= 0 && Addr[O.B] + O.Lanes <= Limits[O.B] &&
               "vector store out of bounds");
        const double *__restrict Src = VL + O.Dst * Stride;
        const double *__restrict Mask = VL + O.C * Stride;
        double *__restrict Dst = Bases[O.A] + Addr[O.B];
        for (unsigned L = 0; L != O.Lanes; ++L)
          if (Mask[L] != 0.0)
            Dst[L] = Src[L];
        break;
      }
      case TapeOpc::VMStoreContigInt: {
        assert(Addr[O.B] >= 0 && Addr[O.B] + O.Lanes <= Limits[O.B] &&
               "vector store out of bounds");
        const double *__restrict Src = VL + O.Dst * Stride;
        const double *__restrict Mask = VL + O.C * Stride;
        double *__restrict Dst = Bases[O.A] + Addr[O.B];
        for (unsigned L = 0; L != O.Lanes; ++L)
          if (Mask[L] != 0.0)
            Dst[L] = truncStore(Src[L]);
        break;
      }
      case TapeOpc::VExtractScalarIf:
        if (VL[O.C * Stride + O.Lane] != 0.0)
          Scalars[O.A] = VL[O.Dst * Stride + O.Lane];
        break;
      case TapeOpc::VExtractScalarIntIf:
        if (VL[O.C * Stride + O.Lane] != 0.0)
          Scalars[O.A] = truncStore(VL[O.Dst * Stride + O.Lane]);
        break;
      case TapeOpc::VExtractArrayIf:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        if (VL[O.C * Stride + O.Lane] != 0.0)
          Bases[O.A][Addr[O.B]] = VL[O.Dst * Stride + O.Lane];
        break;
      case TapeOpc::VExtractArrayIntIf:
        assert(Addr[O.B] >= 0 && Addr[O.B] < Limits[O.B] &&
               "array reference out of bounds");
        if (VL[O.C * Stride + O.Lane] != 0.0)
          Bases[O.A][Addr[O.B]] = truncStore(VL[O.Dst * Stride + O.Lane]);
        break;

#define SLP_VECTOR_UNOP(CASE, EXPR)                                        \
  case TapeOpc::CASE: {                                                    \
    if (O.NoAlias) {                                                       \
      const double *__restrict A = VL + O.A * Stride;                      \
      double *__restrict D = VL + O.Dst * Stride;                          \
      for (unsigned L = 0; L != O.Lanes; ++L)                              \
        D[L] = EXPR;                                                       \
    } else {                                                               \
      const double *A = VL + O.A * Stride;                                 \
      double *D = VL + O.Dst * Stride;                                     \
      for (unsigned L = 0; L != O.Lanes; ++L)                              \
        D[L] = EXPR;                                                       \
    }                                                                      \
    break;                                                                 \
  }
        SLP_VECTOR_UNOP(VNeg, -A[L])
        SLP_VECTOR_UNOP(VSqrt, std::sqrt(std::fabs(A[L])))
        SLP_VECTOR_UNOP(VAbs, std::fabs(A[L]))
#undef SLP_VECTOR_UNOP
      }
    }

    if (++Iter == Total)
      break;

    // Odometer: bump the innermost level; on wrap-around carry outward.
    // Iter < Total guarantees some level still has iterations left, so D
    // never underflows. The single carry level then advances every
    // address slot by one precomputed delta — the strength reduction.
    unsigned D = T.Depth - 1;
    while (++Pos[D] == Trips[D]) {
      Pos[D] = 0;
      --D;
    }
    const int64_t *Delta = T.AddrCarryDelta.data() + D;
    for (unsigned S = 0; S != NumSlots; ++S)
      Addr[S] += Delta[static_cast<size_t>(S) * T.Depth];
  }

  Stats.AluOps = T.AluOpsPerIter * static_cast<uint64_t>(Total);
  Stats.ArrayLoads = T.ArrayLoadsPerIter * static_cast<uint64_t>(Total);
  Stats.ArrayStores = T.ArrayStoresPerIter * static_cast<uint64_t>(Total);
  if (Counters) {
    Counters->TapeOpsExecuted += NumOps * static_cast<uint64_t>(Total);
    Counters->BlockIterations += static_cast<uint64_t>(Total);
    Counters->AddrIncrements +=
        static_cast<uint64_t>(NumSlots) * static_cast<uint64_t>(Total - 1);
  }
  return Stats;
}
