//===- exec/ExecEngine.cpp ------------------------------------*- C++ -*-===//

#include "exec/ExecEngine.h"

#include "native/CEmitter.h"
#include "native/NativeBackend.h"
#include "support/Statistics.h"
#include "vector/VectorInterp.h"

#include <cstdlib>

using namespace slp;

const char *slp::execEngineName(ExecEngineKind Kind) {
  switch (Kind) {
  case ExecEngineKind::Optimized:
    return "optimized";
  case ExecEngineKind::Reference:
    return "reference";
  case ExecEngineKind::Native:
    return "native";
  }
  return "<invalid>";
}

std::optional<ExecEngineKind>
slp::parseExecEngineName(const std::string &Name) {
  if (Name == "optimized")
    return ExecEngineKind::Optimized;
  if (Name == "reference")
    return ExecEngineKind::Reference;
  if (Name == "native")
    return ExecEngineKind::Native;
  return std::nullopt;
}

ExecEngineKind slp::defaultExecEngineKind() {
  if (const char *Env = std::getenv("SLP_EXEC_ENGINE"))
    if (std::optional<ExecEngineKind> Kind = parseExecEngineName(Env))
      return *Kind;
  return ExecEngineKind::Optimized;
}

Environment &EnvironmentPool::acquire(const Kernel &K, uint64_t Seed) {
  if (InUse < Slots.size()) {
    Environment &Env = *Slots[InUse++];
    Env.reset(K, Seed);
    if (Counters)
      ++Counters->EnvReuses;
    return Env;
  }
  Slots.push_back(std::make_unique<Environment>(K, Seed));
  ++InUse;
  if (Counters)
    ++Counters->EnvConstructions;
  return *Slots.back();
}

CompiledScalarKernel ExecEngine::compileScalar(const Kernel &K) {
  CompiledScalarKernel C;
  C.K = &K;
  if (Kind == ExecEngineKind::Optimized || Kind == ExecEngineKind::Native) {
    // Native keeps the tape too: it is the graceful-degradation path and
    // the source of the statically-known ScalarExecStats.
    C.Tape = compileScalarTape(K);
    C.UseTape = true;
    ++Counters.ScalarTapesCompiled;
  }
  if (Kind == ExecEngineKind::Native)
    C.Native = lowerNative(emitScalarKernelC(K), /*ScalarBaseline=*/true);
  return C;
}

CompiledVectorKernel ExecEngine::compileVector(const Kernel &K,
                                               const VectorProgram &Program) {
  CompiledVectorKernel C;
  C.K = &K;
  C.Program = &Program;
  if (Kind == ExecEngineKind::Optimized || Kind == ExecEngineKind::Native) {
    C.Tape = compileVectorTape(K, Program);
    C.UseTape = true;
    ++Counters.VectorTapesCompiled;
  }
  if (Kind == ExecEngineKind::Native)
    C.Native =
        lowerNative(emitVectorProgramC(K, Program), /*ScalarBaseline=*/false);
  return C;
}

std::shared_ptr<const NativeObject>
ExecEngine::lowerNative(const std::string &Source, bool ScalarBaseline) {
  NativeCompileResult R = compileNativeTU(Source, ScalarBaseline);
  if (!R.Object) {
    ++Counters.NativeFallbacks;
    NativeDiag = R.Error;
    return nullptr;
  }
  if (R.MemoryHit)
    ++Counters.NativeMemoryHits;
  if (R.CacheHit)
    ++Counters.NativeCacheHits;
  else
    ++Counters.NativeCompiles;
  return R.Object;
}

void ExecEngine::runNative(const NativeObject &Native, const Kernel &K,
                           Environment &Env) {
  NativeBases.clear();
  for (unsigned A = 0, E = static_cast<unsigned>(K.Arrays.size()); A != E;
       ++A)
    NativeBases.push_back(Env.arrayBuffer(A).data());
  ++Counters.NativeRuns;
  Native.run(Env.scalarData(), NativeBases.data());
}

ScalarExecStats ExecEngine::runScalar(const CompiledScalarKernel &C,
                                      Environment &Env) {
  if (C.Native) {
    runNative(*C.Native, *C.K, Env);
    // The tape's static per-iteration counts reproduce the reference
    // interpreter's ScalarExecStats exactly (suppressed guarded stores
    // included), so native runs report identical stats.
    ScalarExecStats S;
    uint64_t Iters = static_cast<uint64_t>(C.Tape.TotalIterations);
    S.AluOps = C.Tape.AluOpsPerIter * Iters;
    S.ArrayLoads = C.Tape.ArrayLoadsPerIter * Iters;
    S.ArrayStores = C.Tape.ArrayStoresPerIter * Iters;
    return S;
  }
  if (C.UseTape)
    return runTape(*C.K, C.Tape, Env, Arena, &Counters);
  ++Counters.ReferenceRuns;
  return runKernelScalar(*C.K, Env);
}

void ExecEngine::runVector(const CompiledVectorKernel &C, Environment &Env) {
  if (C.Native) {
    runNative(*C.Native, *C.K, Env);
    return;
  }
  if (C.UseTape) {
    runTape(*C.K, C.Tape, Env, Arena, &Counters);
    return;
  }
  ++Counters.ReferenceRuns;
  runVectorProgram(*C.K, *C.Program, Env);
}

void slp::reportExecCounters(const ExecCounters &C, Statistics &S) {
  S.add("exec.scalar-tapes-compiled", C.ScalarTapesCompiled);
  S.add("exec.vector-tapes-compiled", C.VectorTapesCompiled);
  S.add("exec.tape-runs", C.TapeRuns);
  S.add("exec.tape-ops-executed", C.TapeOpsExecuted);
  S.add("exec.block-iterations", C.BlockIterations);
  S.add("exec.addr-full-evals", C.AddrFullEvals);
  S.add("exec.addr-increments", C.AddrIncrements);
  S.add("exec.arena-reuses", C.ArenaReuses);
  S.add("exec.arena-growths", C.ArenaGrowths);
  S.add("exec.env-reuses", C.EnvReuses);
  S.add("exec.env-constructions", C.EnvConstructions);
  S.add("exec.reference-runs", C.ReferenceRuns);
  S.add("exec.native-compiles", C.NativeCompiles);
  S.add("exec.native-cache-hits", C.NativeCacheHits);
  S.add("exec.native-memory-hits", C.NativeMemoryHits);
  S.add("exec.native-fallbacks", C.NativeFallbacks);
  S.add("exec.native-runs", C.NativeRuns);
}
