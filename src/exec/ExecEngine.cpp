//===- exec/ExecEngine.cpp ------------------------------------*- C++ -*-===//

#include "exec/ExecEngine.h"

#include "support/Statistics.h"
#include "vector/VectorInterp.h"

#include <cstdlib>

using namespace slp;

const char *slp::execEngineName(ExecEngineKind Kind) {
  switch (Kind) {
  case ExecEngineKind::Optimized:
    return "optimized";
  case ExecEngineKind::Reference:
    return "reference";
  }
  return "<invalid>";
}

std::optional<ExecEngineKind>
slp::parseExecEngineName(const std::string &Name) {
  if (Name == "optimized")
    return ExecEngineKind::Optimized;
  if (Name == "reference")
    return ExecEngineKind::Reference;
  return std::nullopt;
}

ExecEngineKind slp::defaultExecEngineKind() {
  if (const char *Env = std::getenv("SLP_EXEC_ENGINE"))
    if (std::optional<ExecEngineKind> Kind = parseExecEngineName(Env))
      return *Kind;
  return ExecEngineKind::Optimized;
}

Environment &EnvironmentPool::acquire(const Kernel &K, uint64_t Seed) {
  if (InUse < Slots.size()) {
    Environment &Env = *Slots[InUse++];
    Env.reset(K, Seed);
    if (Counters)
      ++Counters->EnvReuses;
    return Env;
  }
  Slots.push_back(std::make_unique<Environment>(K, Seed));
  ++InUse;
  if (Counters)
    ++Counters->EnvConstructions;
  return *Slots.back();
}

CompiledScalarKernel ExecEngine::compileScalar(const Kernel &K) {
  CompiledScalarKernel C;
  C.K = &K;
  if (Kind == ExecEngineKind::Optimized) {
    C.Tape = compileScalarTape(K);
    C.UseTape = true;
    ++Counters.ScalarTapesCompiled;
  }
  return C;
}

CompiledVectorKernel ExecEngine::compileVector(const Kernel &K,
                                               const VectorProgram &Program) {
  CompiledVectorKernel C;
  C.K = &K;
  C.Program = &Program;
  if (Kind == ExecEngineKind::Optimized) {
    C.Tape = compileVectorTape(K, Program);
    C.UseTape = true;
    ++Counters.VectorTapesCompiled;
  }
  return C;
}

ScalarExecStats ExecEngine::runScalar(const CompiledScalarKernel &C,
                                      Environment &Env) {
  if (C.UseTape)
    return runTape(*C.K, C.Tape, Env, Arena, &Counters);
  ++Counters.ReferenceRuns;
  return runKernelScalar(*C.K, Env);
}

void ExecEngine::runVector(const CompiledVectorKernel &C, Environment &Env) {
  if (C.UseTape) {
    runTape(*C.K, C.Tape, Env, Arena, &Counters);
    return;
  }
  ++Counters.ReferenceRuns;
  runVectorProgram(*C.K, *C.Program, Env);
}

void slp::reportExecCounters(const ExecCounters &C, Statistics &S) {
  S.add("exec.scalar-tapes-compiled", C.ScalarTapesCompiled);
  S.add("exec.vector-tapes-compiled", C.VectorTapesCompiled);
  S.add("exec.tape-runs", C.TapeRuns);
  S.add("exec.tape-ops-executed", C.TapeOpsExecuted);
  S.add("exec.block-iterations", C.BlockIterations);
  S.add("exec.addr-full-evals", C.AddrFullEvals);
  S.add("exec.addr-increments", C.AddrIncrements);
  S.add("exec.arena-reuses", C.ArenaReuses);
  S.add("exec.arena-growths", C.ArenaGrowths);
  S.add("exec.env-reuses", C.EnvReuses);
  S.add("exec.env-constructions", C.EnvConstructions);
  S.add("exec.reference-runs", C.ReferenceRuns);
}
