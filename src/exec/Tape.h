//===- exec/Tape.h - Flat-tape compiled kernel execution --------*- C++ -*-===//
///
/// \file
/// The compiled form behind the optimized execution engine: a kernel (or a
/// vector program) is lowered ONCE into a flat linear tape of fixed-size
/// ops with pre-resolved operand slots, then executed MANY times with no
/// `Expr` tree walking, no `AffineExpr` re-evaluation, and no per-call
/// allocation.
///
/// Three ideas carry the speedup:
///
///  1. **Flat tape.** Every expression node, memory access, and vector
///     instruction becomes one `TapeOp` in a contiguous vector, dispatched
///     by a dense switch — no recursion, no virtual calls, no
///     `std::function`.
///
///  2. **Strength-reduced addressing.** Each distinct affine array
///     reference gets one *address slot*. Its row-major flattened offset
///     is evaluated in full exactly once per kernel run (at the loop
///     nest's lower bounds); afterwards the interpreter's odometer adds a
///     precomputed per-loop-level carry delta to every slot — one integer
///     add per slot per iteration instead of a full `flattenArrayRef` +
///     `AffineExpr::evaluate` per access per iteration.
///
///  3. **Contiguous lane arena.** Vector registers live in one pooled
///     `double` arena with lanes stored contiguously, so lane-wise op
///     bodies compile to tight `__restrict` loops the host compiler
///     auto-vectorizes — the modeled SIMD executes as genuine hardware
///     SIMD.
///
/// Bit-identity with the reference interpreters (`runKernelScalar`,
/// `runVectorProgram`) is a hard invariant: the tape performs exactly the
/// same double-precision operations on the same values in a semantically
/// equivalent order (see tests/exec/ExecEngineDifferentialTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SLP_EXEC_TAPE_H
#define SLP_EXEC_TAPE_H

#include "ir/Interpreter.h"
#include "vector/VectorIR.h"

#include <cstdint>
#include <vector>

namespace slp {

/// Opcode of one tape op. Scalar ops read/write double *value slots*;
/// vector ops read/write lane-contiguous *vector registers*. Memory ops
/// address environments through pre-resolved array ids and address slots.
enum class TapeOpc : uint8_t {
  // -- scalar value ops ---------------------------------------------------
  Const,       ///< V[Dst] = ConstPool[A]
  LoadScalar,  ///< V[Dst] = Scalars[A]
  LoadArray,   ///< V[Dst] = Array[A][Addr[B]]
  Add,         ///< V[Dst] = V[A] + V[B]
  Sub,         ///< V[Dst] = V[A] - V[B]
  Mul,         ///< V[Dst] = V[A] * V[B]
  Div,         ///< V[Dst] = V[A] / V[B]
  Min,         ///< V[Dst] = fmin(V[A], V[B])
  Max,         ///< V[Dst] = fmax(V[A], V[B])
  Neg,         ///< V[Dst] = -V[A]
  Sqrt,        ///< V[Dst] = sqrt(fabs(V[A]))  (the interpreter's contract)
  Abs,         ///< V[Dst] = fabs(V[A])
  CmpLT,       ///< V[Dst] = V[A] < V[B] ? 1.0 : 0.0
  CmpLE,       ///< V[Dst] = V[A] <= V[B] ? 1.0 : 0.0
  CmpGT,       ///< V[Dst] = V[A] > V[B] ? 1.0 : 0.0
  CmpGE,       ///< V[Dst] = V[A] >= V[B] ? 1.0 : 0.0
  CmpEQ,       ///< V[Dst] = V[A] == V[B] ? 1.0 : 0.0
  CmpNE,       ///< V[Dst] = V[A] != V[B] ? 1.0 : 0.0
  SelectVal,   ///< V[Dst] = V[A] != 0 ? V[B] : V[C]
  StoreScalar, ///< Scalars[A] = V[Dst]
  StoreScalarInt, ///< Scalars[A] = trunc(V[Dst])
  StoreArray,     ///< Array[A][Addr[B]] = V[Dst]
  StoreArrayInt,  ///< Array[A][Addr[B]] = trunc(V[Dst])
  // Guarded stores (if-converted statements): the store happens only when
  // the guard value slot C is non-zero. Static store counters still count
  // these as attempted stores, matching the reference interpreter.
  StoreScalarIf,    ///< if (V[C] != 0) Scalars[A] = V[Dst]
  StoreScalarIntIf, ///< if (V[C] != 0) Scalars[A] = trunc(V[Dst])
  StoreArrayIf,     ///< if (V[C] != 0) Array[A][Addr[B]] = V[Dst]
  StoreArrayIntIf,  ///< if (V[C] != 0) Array[A][Addr[B]] = trunc(V[Dst])
  // -- vector ops ---------------------------------------------------------
  VLoadContig,    ///< R[Dst][l] = Array[A][Addr[B] + l], l in [0, Lanes)
  VStoreContig,   ///< Array[A][Addr[B] + l] = R[Dst][l]
  VStoreContigInt, ///< same, truncating toward zero per lane
  VInsertConst,   ///< R[Dst][Lane] = ConstPool[A]
  VInsertScalar,  ///< R[Dst][Lane] = Scalars[A]
  VInsertArray,   ///< R[Dst][Lane] = Array[A][Addr[B]]
  VExtractScalar, ///< Scalars[A] = R[Dst][Lane]
  VExtractScalarInt, ///< Scalars[A] = trunc(R[Dst][Lane])
  VExtractArray,     ///< Array[A][Addr[B]] = R[Dst][Lane]
  VExtractArrayInt,  ///< Array[A][Addr[B]] = trunc(R[Dst][Lane])
  VShuffle,       ///< R[Dst][l] = R[A][PermPool[B + l]] (Dst != A)
  VShuffleInPlace, ///< same with Dst == A (permutes via the scratch reg)
  VAdd,           ///< R[Dst][l] = R[A][l] + R[B][l]
  VSub,
  VMul,
  VDiv,
  VMin,
  VMax,
  VNeg, ///< R[Dst][l] = -R[A][l]
  VSqrt,
  VAbs,
  VCmpLT, ///< R[Dst][l] = R[A][l] < R[B][l] ? 1.0 : 0.0
  VCmpLE,
  VCmpGT,
  VCmpGE,
  VCmpEQ,
  VCmpNE,
  VBlend,    ///< R[Dst][l] = R[A][l] != 0 ? R[B][l] : R[C][l]
  VMaskZero, ///< R[Dst][l] = R[A][l] != 0 ? R[Dst][l] : 0  (masked load)
  // Masked stores: mask register in C; lanes with a zero mask keep their
  // prior memory contents.
  VMStoreContig,      ///< if (R[C][l] != 0) Array[A][Addr[B] + l] = R[Dst][l]
  VMStoreContigInt,   ///< same, truncating toward zero per lane
  VExtractScalarIf,   ///< if (R[C][Lane] != 0) Scalars[A] = R[Dst][Lane]
  VExtractScalarIntIf, ///< same, truncating
  VExtractArrayIf,     ///< if (R[C][Lane] != 0) Array[A][Addr[B]] = R[Dst][Lane]
  VExtractArrayIntIf,  ///< same, truncating
};

/// One fixed-size tape op. Interpretation of the fields depends on the
/// opcode (documented on TapeOpc); unused fields are zero.
struct TapeOp {
  TapeOpc Opc = TapeOpc::Const;
  /// Lane index for VInsert*/VExtract* ops.
  uint8_t Lane = 0;
  /// Set when Dst aliases neither source register, allowing the lane loop
  /// to promise `__restrict` to the host compiler.
  uint8_t NoAlias = 0;
  /// Lane count for vector ops.
  uint16_t Lanes = 1;
  uint32_t Dst = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  /// Guard value slot (scalar *If stores), mask register (masked vector
  /// ops), or third source (SelectVal / VBlend).
  uint32_t C = 0;
};

/// A compiled tape: the op stream for one execution of the innermost
/// block, plus everything needed to run it over a whole loop nest.
struct CompiledTape {
  std::vector<TapeOp> Ops;
  std::vector<double> ConstPool;
  std::vector<unsigned> PermPool; ///< concatenated shuffle permutations

  // Address slots (strength-reduced array addressing).
  /// Array symbol of each slot (for environment binding / bounds checks).
  std::vector<uint32_t> AddrArray;
  /// Flattened element offset of each slot at the nest's lower bounds.
  std::vector<int64_t> AddrBase;
  /// Row-major NumSlots x Depth matrix: the delta added to each slot when
  /// the iteration odometer carries into loop level d (innermost = the
  /// plain per-iteration stride increment).
  std::vector<int64_t> AddrCarryDelta;
  /// Element count of each slot's array (debug bounds assertions).
  std::vector<int64_t> AddrLimit;

  /// Trip count of each loop level, cached so the run loop never touches
  /// the Kernel's Loop objects.
  std::vector<int64_t> TripCounts;

  unsigned Depth = 0;         ///< loop-nest depth the tape was compiled for
  unsigned NumValueSlots = 0; ///< scalar evaluation-stack slots needed
  unsigned NumVRegs = 0;      ///< vector registers (excluding the scratch)
  unsigned VRegStride = 0;    ///< lanes reserved per vector register
  int64_t TotalIterations = 1; ///< block executions (0 for zero-trip nests)

  // Static per-iteration operation counts, used to reproduce the
  // reference interpreter's ScalarExecStats without dynamic counting.
  uint64_t AluOpsPerIter = 0;
  uint64_t ArrayLoadsPerIter = 0;
  uint64_t ArrayStoresPerIter = 0;

  unsigned numAddrSlots() const {
    return static_cast<unsigned>(AddrArray.size());
  }
};

/// Pooled run-time scratch shared by every tape execution of one engine:
/// scalar value slots, the lane-contiguous vector register arena, current
/// address-slot offsets, and per-run array base pointers. Reused across
/// runs so steady-state execution allocates nothing.
struct ExecArena {
  std::vector<double> Values;
  std::vector<double> VLanes;
  std::vector<int64_t> Addrs;
  std::vector<double *> ArrayBases;
  std::vector<int64_t> OdoPos; ///< odometer iteration counters per level
};

/// Execution counters of one engine (`--stats`, slp-fuzz JSON).
struct ExecCounters {
  uint64_t ScalarTapesCompiled = 0;
  uint64_t VectorTapesCompiled = 0;
  uint64_t TapeRuns = 0;          ///< whole-nest tape executions
  uint64_t TapeOpsExecuted = 0;   ///< tape ops dispatched
  uint64_t BlockIterations = 0;   ///< innermost-block executions
  uint64_t AddrFullEvals = 0;     ///< full affine evaluations (run setup)
  uint64_t AddrIncrements = 0;    ///< incremental address updates instead
  uint64_t ArenaReuses = 0;       ///< runs served from pre-sized arenas
  uint64_t ArenaGrowths = 0;      ///< runs that had to grow an arena
  uint64_t EnvReuses = 0;         ///< pooled environments reset in place
  uint64_t EnvConstructions = 0;  ///< environments built from scratch
  uint64_t ReferenceRuns = 0;     ///< executions delegated to the
                                  ///< tree-walking reference interpreters

  // Native-backend telemetry (ExecEngineKind::Native only).
  uint64_t NativeCompiles = 0;    ///< host-compiler invocations
  uint64_t NativeCacheHits = 0;   ///< objects served from the disk cache
  uint64_t NativeMemoryHits = 0;  ///< objects served from the in-process map
  uint64_t NativeFallbacks = 0;   ///< lowerings that fell back to the tape
  uint64_t NativeRuns = 0;        ///< executions through dlopened objects
};

/// Lowers \p K's innermost block (scalar semantics) into a tape.
CompiledTape compileScalarTape(const Kernel &K);

/// Lowers \p Program (lane semantics over \p K's loop nest) into a tape.
CompiledTape compileVectorTape(const Kernel &K, const VectorProgram &Program);

/// Executes \p T over \p K's entire loop nest, mutating \p Env. \p Arena
/// provides pooled scratch; \p Counters (when non-null) accrues execution
/// telemetry. Returns the reference interpreter's dynamic operation
/// counts (zeros for vector tapes, whose stats the caller ignores —
/// matching `runVectorProgram`, which counts nothing).
ScalarExecStats runTape(const Kernel &K, const CompiledTape &T,
                        Environment &Env, ExecArena &Arena,
                        ExecCounters *Counters = nullptr);

} // namespace slp

#endif // SLP_EXEC_TAPE_H
