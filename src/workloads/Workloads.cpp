//===- workloads/Workloads.cpp --------------------------------*- C++ -*-===//
//
// Each generator below mimics the dominant inner-loop pattern of one
// benchmark from the paper's Table 3. The comments state which SLP
// behavior the kernel is designed to exercise; EXPERIMENTS.md records how
// the resulting figures compare against the paper's.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "ir/Builder.h"
#include "support/Error.h"

#include <array>

using namespace slp;

namespace {

using ST = ScalarType;

/// SPEC cactusADM: stencil sweeps with scalar temporaries over a
/// stride-2 grid. Scalar packs benefit from offset assignment and the
/// read-only grid from replication (layout winner).
Workload makeCactusADM() {
  KernelBuilder B("cactusADM");
  SymbolId Ga = B.array("Ga", ST::Float32, {4128}, /*ReadOnly=*/true);
  SymbolId Gb = B.array("Gb", ST::Float32, {4128}, /*ReadOnly=*/true);
  SymbolId U = B.array("U", ST::Float32, {2048});
  SymbolId V = B.array("V", ST::Float32, {2048});
  SymbolId T1 = B.scalar("t1", ST::Float32);
  SymbolId T2 = B.scalar("t2", ST::Float32);
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.scalarOp(T1),
           B.mul(B.load(Ga, {B.idx(I, 2)}), B.load(Ga, {B.idx(I, 2, 1)})));
  B.assign(B.scalarOp(T2),
           B.mul(B.load(Gb, {B.idx(I, 2)}), B.load(Gb, {B.idx(I, 2, 1)})));
  B.assign(B.arrayRef(U, {B.idx(I)}),
           B.add(B.scalarRef(T1), B.mul(B.c(0.5), B.scalarRef(T2))));
  B.assign(B.arrayRef(V, {B.idx(I)}),
           B.sub(B.scalarRef(T1), B.mul(B.c(0.5), B.scalarRef(T2))));
  return Workload{"cactusADM", "Solving the Einstein evolution equations",
                  false, B.take(), {0.03, 0.002}};
}

/// SPEC soplex: pivot-row elimination streams plus a sequential inner
/// reduction nobody can vectorize. Designed so SLP == Native while the
/// holistic scheme still wins via the strided ratio-test statements.
Workload makeSoplex() {
  KernelBuilder B("soplex");
  SymbolId R1 = B.array("R1", ST::Float32, {2048});
  SymbolId R2 = B.array("R2", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId Bv = B.array("Bv", ST::Float32, {2048});
  SymbolId Cv = B.array("Cv", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId Rt = B.array("Rt", ST::Float32, {4128});
  SymbolId Dt = B.array("Dt", ST::Float32, {4128});
  SymbolId P = B.scalar("p", ST::Float32);
  unsigned I = B.loop("i", 0, 2048);
  // Streaming updates: every scheme vectorizes these identically.
  B.assign(B.arrayRef(R1, {B.idx(I)}),
           B.sub(B.load(R1, {B.idx(I)}),
                 B.mul(B.scalarRef(P), B.load(R2, {B.idx(I)}))));
  B.assign(B.arrayRef(Bv, {B.idx(I)}),
           B.sub(B.load(Bv, {B.idx(I)}),
                 B.mul(B.scalarRef(P), B.load(Cv, {B.idx(I)}))));
  // Strided ratio-test bookkeeping: no adjacent seeds for the greedy
  // algorithm's liking, but the leftover pairs it forms miss the
  // cross-statement reuse the global grouping finds.
  B.assign(B.arrayRef(Dt, {B.idx(I, 2)}),
           B.mul(B.load(Rt, {B.idx(I, 2)}), B.scalarRef(P)));
  return Workload{"soplex", "Linear programming solver (simplex algorithm)",
                  false, B.take(), {0.05, 0.003}};
}

/// SPEC lbm: pure streaming lattice updates; all three vectorizers
/// produce the same code (one of the paper's full ties).
Workload makeLbm() {
  KernelBuilder B("lbm");
  SymbolId F = B.array("F", ST::Float32, {1048576}, /*ReadOnly=*/true);
  SymbolId Feq = B.array("Feq", ST::Float32, {1048576}, /*ReadOnly=*/true);
  SymbolId Fn = B.array("Fn", ST::Float32, {1048576});
  SymbolId F2 = B.array("F2", ST::Float32, {1048576}, /*ReadOnly=*/true);
  SymbolId Feq2 = B.array("Feq2", ST::Float32, {1048576}, /*ReadOnly=*/true);
  SymbolId Rho = B.array("Rho", ST::Float32, {1048576});
  unsigned I = B.loop("i", 0, 4096);
  B.assign(B.arrayRef(Fn, {B.idx(I)}),
           B.add(B.mul(B.load(F, {B.idx(I)}), B.c(0.9)),
                 B.mul(B.load(Feq, {B.idx(I)}), B.c(0.1))));
  B.assign(B.arrayRef(Rho, {B.idx(I)}),
           B.add(B.load(F2, {B.idx(I)}), B.load(Feq2, {B.idx(I)})));
  return Workload{"lbm", "Lattice Boltzmann method", false, B.take(),
                  {0.02, 0.002}};
}

/// SPEC milc: the SU(3) multiply pattern of the paper's Figure 15 —
/// adjacent seeds lure the greedy algorithm into groupings with one
/// superword reuse where the global view finds three.
Workload makeMilc() {
  KernelBuilder B("milc");
  SymbolId U = B.array("Umat", ST::Float32, {2080}, /*ReadOnly=*/true);
  SymbolId V = B.array("Vvec", ST::Float32, {8320}, /*ReadOnly=*/true);
  SymbolId W = B.array("Wout", ST::Float32, {4160});
  SymbolId A = B.scalar("a", ST::Float32);
  SymbolId Bs = B.scalar("b", ST::Float32);
  SymbolId C = B.scalar("c", ST::Float32);
  SymbolId D = B.scalar("d", ST::Float32);
  SymbolId G = B.scalar("g", ST::Float32);
  SymbolId H = B.scalar("h", ST::Float32);
  SymbolId Q = B.scalar("q", ST::Float32);
  SymbolId R = B.scalar("r", ST::Float32);
  unsigned I = B.loop("i", 1, 2049);
  B.assign(B.scalarOp(A), B.load(U, {B.idx(I)}));
  B.assign(B.scalarOp(C), B.mul(B.scalarRef(A), B.load(V, {B.idx(I, 4)})));
  B.assign(B.scalarOp(G),
           B.mul(B.scalarRef(Q), B.load(V, {B.idx(I, 4, -2)})));
  B.assign(B.scalarOp(Bs), B.load(U, {B.idx(I, 1, 1)}));
  B.assign(B.scalarOp(D),
           B.mul(B.scalarRef(Bs), B.load(V, {B.idx(I, 4, 4)})));
  B.assign(B.scalarOp(H),
           B.mul(B.scalarRef(R), B.load(V, {B.idx(I, 4, 2)})));
  B.assign(B.arrayRef(W, {B.idx(I, 2)}),
           B.add(B.scalarRef(D), B.mul(B.scalarRef(A), B.scalarRef(C))));
  B.assign(B.arrayRef(W, {B.idx(I, 2, 2)}),
           B.add(B.scalarRef(G), B.mul(B.scalarRef(R), B.scalarRef(H))));
  return Workload{"milc", "Simulations of 3-D SU(3) lattice gauge theory",
                  false, B.take(), {0.03, 0.002}};
}

/// SPEC povray: ray-sphere distance computation with scalar temporaries;
/// the scalar packs' scatter stores make it a scalar-layout winner.
Workload makePovray() {
  KernelBuilder B("povray");
  SymbolId Px = B.array("Px", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId Py = B.array("Py", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId Pz = B.array("Pz", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId Dd = B.array("Dist", ST::Float32, {4128});
  SymbolId Ox = B.scalar("ox", ST::Float32);
  SymbolId Oy = B.scalar("oy", ST::Float32);
  SymbolId Oz = B.scalar("oz", ST::Float32);
  SymbolId Dx = B.scalar("dx", ST::Float32);
  SymbolId Dy = B.scalar("dy", ST::Float32);
  SymbolId Dz = B.scalar("dz", ST::Float32);
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.scalarOp(Dx), B.sub(B.scalarRef(Ox), B.load(Px, {B.idx(I)})));
  B.assign(B.scalarOp(Dy), B.sub(B.scalarRef(Oy), B.load(Py, {B.idx(I)})));
  B.assign(B.scalarOp(Dz), B.sub(B.scalarRef(Oz), B.load(Pz, {B.idx(I)})));
  B.assign(B.arrayRef(Dd, {B.idx(I, 2)}),
           B.add(B.add(B.mul(B.scalarRef(Dx), B.scalarRef(Dx)),
                       B.mul(B.scalarRef(Dy), B.scalarRef(Dy))),
                 B.mul(B.scalarRef(Dz), B.scalarRef(Dz))));
  return Workload{"povray", "Ray-tracing: a rendering technique", false,
                  B.take(), {0.04, 0.003}};
}

/// SPEC gromacs: Lennard-Jones inner loop; the reciprocal makes SIMD
/// division the dominant win, and the scalar temporaries respond to
/// layout.
Workload makeGromacs() {
  KernelBuilder B("gromacs");
  SymbolId X1 = B.array("X1", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId X2 = B.array("X2", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId Y1 = B.array("Y1", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId Y2 = B.array("Y2", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId FX = B.array("FX", ST::Float32, {1024});
  SymbolId FY = B.array("FY", ST::Float32, {1024});
  SymbolId Rx = B.scalar("rx", ST::Float32);
  SymbolId Ry = B.scalar("ry", ST::Float32);
  SymbolId R2 = B.scalar("r2", ST::Float32);
  SymbolId Fs = B.scalar("fs", ST::Float32);
  unsigned I = B.loop("i", 0, 1024);
  B.assign(B.scalarOp(Rx),
           B.sub(B.load(X1, {B.idx(I)}), B.load(X2, {B.idx(I)})));
  B.assign(B.scalarOp(Ry),
           B.sub(B.load(Y1, {B.idx(I)}), B.load(Y2, {B.idx(I)})));
  B.assign(B.scalarOp(R2),
           B.add(B.add(B.mul(B.scalarRef(Rx), B.scalarRef(Rx)),
                       B.mul(B.scalarRef(Ry), B.scalarRef(Ry))),
                 B.c(0.015625)));
  B.assign(B.scalarOp(Fs),
           B.div(B.c(1.0), B.mul(B.scalarRef(R2), B.scalarRef(R2))));
  B.assign(B.arrayRef(FX, {B.idx(I)}),
           B.mul(B.scalarRef(Rx), B.scalarRef(Fs)));
  B.assign(B.arrayRef(FY, {B.idx(I)}),
           B.mul(B.scalarRef(Ry), B.scalarRef(Fs)));
  return Workload{"gromacs", "Performing molecular dynamics", false,
                  B.take(), {0.03, 0.002}};
}

/// SPEC calculix: finite-element blocks read column-major (stride 8);
/// replication of the read-only element matrices is the layout payoff.
Workload makeCalculix() {
  KernelBuilder B("calculix");
  SymbolId Dm = B.array("Dm", ST::Float32, {16416}, /*ReadOnly=*/true);
  SymbolId Em = B.array("Em", ST::Float32, {16416}, /*ReadOnly=*/true);
  SymbolId Oc = B.array("Oc", ST::Float32, {2048});
  SymbolId Pc = B.array("Pc", ST::Float32, {4128});
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.arrayRef(Oc, {B.idx(I)}),
           B.add(B.mul(B.load(Dm, {B.idx(I, 8)}), B.c(1.5)),
                 B.mul(B.load(Em, {B.idx(I, 8)}), B.c(0.25))));
  B.assign(B.arrayRef(Pc, {B.idx(I, 2)}),
           B.sub(B.mul(B.load(Dm, {B.idx(I, 8)}), B.c(0.25)),
                 B.mul(B.load(Em, {B.idx(I, 8)}), B.c(1.5))));
  return Workload{"calculix",
                  "Setting up finite element equations and solving them",
                  false, B.take(), {0.04, 0.003}};
}

/// SPEC dealII: quadrature accumulation — a streaming pair every scheme
/// gets plus a strided pair (shape-function gradients) only the global
/// grouping vectorizes four wide with reuse.
Workload makeDealII() {
  KernelBuilder B("dealII");
  SymbolId W1 = B.array("W1", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId W2 = B.array("W2", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId W3 = B.array("W3", ST::Float32, {4128});
  SymbolId W4 = B.array("W4", ST::Float32, {4128});
  SymbolId Rd = B.array("Rd", ST::Float32, {2048});
  SymbolId Sd = B.array("Sd", ST::Float32, {2048});
  SymbolId Td = B.array("Td", ST::Float32, {4128});
  SymbolId Ud = B.array("Ud", ST::Float32, {4128});
  SymbolId U1 = B.scalar("u1", ST::Float32);
  SymbolId U2 = B.scalar("u2", ST::Float32);
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.scalarOp(U1),
           B.add(B.mul(B.load(W1, {B.idx(I)}), B.c(0.75)),
                 B.mul(B.load(W2, {B.idx(I)}), B.c(0.5))));
  B.assign(B.scalarOp(U2),
           B.add(B.mul(B.load(W1, {B.idx(I)}), B.c(0.5)),
                 B.mul(B.load(W2, {B.idx(I)}), B.c(0.75))));
  B.assign(B.arrayRef(Rd, {B.idx(I)}),
           B.add(B.scalarRef(U1), B.load(W2, {B.idx(I)})));
  B.assign(B.arrayRef(Sd, {B.idx(I)}),
           B.sub(B.scalarRef(U2), B.load(W1, {B.idx(I)})));
  B.assign(B.arrayRef(Td, {B.idx(I, 2)}),
           B.add(B.mul(B.load(W3, {B.idx(I, 2)}), B.c(0.75)),
                 B.mul(B.load(W4, {B.idx(I, 2)}), B.c(0.5))));
  B.assign(B.arrayRef(Ud, {B.idx(I, 2)}),
           B.sub(B.mul(B.load(W3, {B.idx(I, 2)}), B.c(0.5)),
                 B.mul(B.load(W4, {B.idx(I, 2)}), B.c(0.75))));
  return Workload{"dealII", "Object oriented finite element software library",
                  false, B.take(), {0.04, 0.003}};
}

/// SPEC wrf: double-precision stencil (two lanes) plus a strided pair
/// with reuse.
Workload makeWrf() {
  KernelBuilder B("wrf");
  SymbolId Qw = B.array("Qw", ST::Float64, {262144}, /*ReadOnly=*/true);
  SymbolId Rw = B.array("Rw", ST::Float64, {262144}, /*ReadOnly=*/true);
  SymbolId Pw = B.array("Pw", ST::Float64, {262144});
  SymbolId Tw = B.array("Tw", ST::Float64, {4160});
  SymbolId Sw = B.array("Sw", ST::Float64, {4160});
  SymbolId Vw = B.array("Vw", ST::Float64, {4160});
  SymbolId Tmp = B.scalar("tw", ST::Float64);
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.scalarOp(Tmp),
           B.add(B.mul(B.load(Qw, {B.idx(I)}), B.c(0.3)),
                 B.mul(B.load(Qw, {B.idx(I, 1, 1)}), B.c(0.7))));
  B.assign(B.arrayRef(Pw, {B.idx(I)}),
           B.add(B.scalarRef(Tmp), B.load(Rw, {B.idx(I)})));
  B.assign(B.arrayRef(Sw, {B.idx(I, 2)}),
           B.sub(B.mul(B.load(Tw, {B.idx(I, 2)}), B.c(0.3)),
                 B.mul(B.load(Tw, {B.idx(I, 2, 2)}), B.c(0.7))));
  B.assign(B.arrayRef(Vw, {B.idx(I, 2)}),
           B.sub(B.mul(B.load(Tw, {B.idx(I, 2, 2)}), B.c(0.3)),
                 B.mul(B.load(Tw, {B.idx(I, 2)}), B.c(0.7))));
  return Workload{"wrf", "Weather research and forecasting", false, B.take(),
                  {0.05, 0.003}};
}

/// SPEC namd: pairwise electrostatics with two reciprocal terms; division
/// dominates and the scalar temporaries respond to layout modestly.
Workload makeNamd() {
  KernelBuilder B("namd");
  SymbolId XA = B.array("XA", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId XB = B.array("XB", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId YA = B.array("YA", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId YB = B.array("YB", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId QQ = B.array("QQ", ST::Float32, {1024}, /*ReadOnly=*/true);
  SymbolId EN = B.array("EN", ST::Float32, {1024});
  SymbolId Qx = B.scalar("qx", ST::Float32);
  SymbolId Qy = B.scalar("qy", ST::Float32);
  SymbolId Q2 = B.scalar("q2", ST::Float32);
  SymbolId Ei = B.scalar("ei", ST::Float32);
  unsigned I = B.loop("i", 0, 1024);
  B.assign(B.scalarOp(Qx),
           B.sub(B.load(XA, {B.idx(I)}), B.load(XB, {B.idx(I)})));
  B.assign(B.scalarOp(Qy),
           B.sub(B.load(YA, {B.idx(I)}), B.load(YB, {B.idx(I)})));
  B.assign(B.scalarOp(Q2),
           B.add(B.add(B.mul(B.scalarRef(Qx), B.scalarRef(Qx)),
                       B.mul(B.scalarRef(Qy), B.scalarRef(Qy))),
                 B.c(0.5)));
  B.assign(B.scalarOp(Ei),
           B.add(B.div(B.c(1.25), B.scalarRef(Q2)),
                 B.div(B.c(0.5), B.mul(B.scalarRef(Q2), B.scalarRef(Q2)))));
  B.assign(B.arrayRef(EN, {B.idx(I)}),
           B.mul(B.scalarRef(Ei), B.load(QQ, {B.idx(I)})));
  return Workload{"namd", "Simulation of large biomolecular systems", false,
                  B.take(), {0.03, 0.002}};
}

/// NAS ua: unstructured-mesh sweeps over stride-3 degrees of freedom.
/// The mesh arrays cannot be proven read-only (indirect writes elsewhere),
/// so no replication applies; only the global grouping vectorizes it.
Workload makeUa() {
  KernelBuilder B("ua");
  SymbolId Gm = B.array("Gm", ST::Float32, {6240});
  SymbolId Hm = B.array("Hm", ST::Float32, {6240});
  SymbolId Bm = B.array("Bm", ST::Float32, {6240});
  SymbolId Cm = B.array("Cm", ST::Float32, {6240});
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.arrayRef(Bm, {B.idx(I, 3)}),
           B.add(B.mul(B.load(Gm, {B.idx(I, 3)}), B.c(1.25)),
                 B.mul(B.load(Hm, {B.idx(I, 3)}), B.c(0.75))));
  B.assign(B.arrayRef(Cm, {B.idx(I, 3)}),
           B.sub(B.mul(B.load(Gm, {B.idx(I, 3)}), B.c(0.75)),
                 B.mul(B.load(Hm, {B.idx(I, 3)}), B.c(1.25))));
  return Workload{"ua", "Unstructured adaptive 3-D", true, B.take(),
                  {0.06, 0.004}};
}

/// NAS ft: FFT butterfly over interleaved complex data — no adjacent
/// isomorphic pairs at all for the greedy seeds, heavy pack reuse for the
/// global view, and read-only twiddle/input arrays for replication.
Workload makeFt() {
  KernelBuilder B("ft");
  SymbolId X = B.array("Xc", ST::Float32, {8224}, /*ReadOnly=*/true);
  SymbolId Y = B.array("Yc", ST::Float32, {8224}, /*ReadOnly=*/true);
  SymbolId T = B.array("Tc", ST::Float32, {8224});
  SymbolId X2 = B.array("X2", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId Sc = B.array("Sc", ST::Float32, {4096});
  SymbolId Wr = B.scalar("wr", ST::Float32);
  SymbolId Wi = B.scalar("wi", ST::Float32);
  unsigned I = B.loop("i", 0, 4096);
  B.assign(B.arrayRef(T, {B.idx(I, 2)}),
           B.add(B.load(X, {B.idx(I, 2)}),
                 B.sub(B.mul(B.load(Y, {B.idx(I, 2)}), B.scalarRef(Wr)),
                       B.mul(B.load(Y, {B.idx(I, 2, 1)}),
                             B.scalarRef(Wi)))));
  B.assign(B.arrayRef(T, {B.idx(I, 2, 1)}),
           B.add(B.load(X, {B.idx(I, 2, 1)}),
                 B.add(B.mul(B.load(Y, {B.idx(I, 2)}), B.scalarRef(Wi)),
                       B.mul(B.load(Y, {B.idx(I, 2, 1)}),
                             B.scalarRef(Wr)))));
  B.assign(B.arrayRef(Sc, {B.idx(I)}),
           B.mul(B.load(X2, {B.idx(I)}), B.c(0.000244140625)));
  return Workload{"ft", "Fast Fourier transform (FFT)", true, B.take(),
                  {0.02, 0.002}};
}

/// NAS bt: block-tridiagonal fluxes interleaved five wide; the read-only
/// flux array is a replication target.
Workload makeBt() {
  KernelBuilder B("bt");
  SymbolId FL = B.array("FL", ST::Float32, {10400}, /*ReadOnly=*/true);
  SymbolId RH = B.array("RH", ST::Float32, {2048});
  SymbolId AX = B.array("AX", ST::Float32, {4128});
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.arrayRef(RH, {B.idx(I)}),
           B.add(B.load(RH, {B.idx(I)}),
                 B.mul(B.c(0.1), B.load(FL, {B.idx(I, 5)}))));
  B.assign(B.arrayRef(AX, {B.idx(I, 2)}),
           B.add(B.mul(B.load(FL, {B.idx(I, 5)}), B.c(0.6)),
                 B.mul(B.load(FL, {B.idx(I, 5, 1)}), B.c(0.4))));
  return Workload{"bt", "Block tridiagonal", true, B.take(), {0.04, 0.003}};
}

/// NAS sp: scalar-pentadiagonal forward sweeps — pure streaming with
/// shared factor loads; a full three-way tie.
Workload makeSp() {
  KernelBuilder B("sp");
  SymbolId A1 = B.array("A1", ST::Float32, {524288}, /*ReadOnly=*/true);
  SymbolId A2 = B.array("A2", ST::Float32, {524288}, /*ReadOnly=*/true);
  SymbolId A3 = B.array("A3", ST::Float32, {524288}, /*ReadOnly=*/true);
  SymbolId A4 = B.array("A4", ST::Float32, {524288}, /*ReadOnly=*/true);
  SymbolId A5 = B.array("A5", ST::Float32, {524288}, /*ReadOnly=*/true);
  SymbolId Ps = B.array("Ps", ST::Float32, {524288});
  SymbolId Qs = B.array("Qs", ST::Float32, {524288});
  unsigned I = B.loop("i", 0, 2048);
  B.assign(B.arrayRef(Ps, {B.idx(I)}),
           B.add(B.add(B.mul(B.load(A1, {B.idx(I)}), B.c(0.2)),
                       B.mul(B.load(A2, {B.idx(I)}), B.c(0.6))),
                 B.mul(B.load(A3, {B.idx(I)}), B.c(0.2))));
  B.assign(B.arrayRef(Qs, {B.idx(I)}),
           B.sub(B.mul(B.load(A4, {B.idx(I)}), B.c(0.6)),
                 B.mul(B.load(A5, {B.idx(I)}), B.c(0.4))));
  return Workload{"sp", "Scalar pentadiagonal", true, B.take(),
                  {0.03, 0.002}};
}

/// NAS mg: multigrid smoothing stencil — contiguous but mutually offset
/// loads; no reuse for anyone, identical code from all three schemes.
Workload makeMg() {
  KernelBuilder B("mg");
  SymbolId R = B.array("Rg", ST::Float32, {1048576}, /*ReadOnly=*/true);
  SymbolId U = B.array("Ug", ST::Float32, {1048576});
  unsigned I = B.loop("i", 4, 4100);
  B.assign(B.arrayRef(U, {B.idx(I)}),
           B.add(B.add(B.mul(B.load(R, {B.idx(I, 1, -1)}), B.c(0.25)),
                       B.mul(B.load(R, {B.idx(I)}), B.c(0.5))),
                 B.mul(B.load(R, {B.idx(I, 1, 1)}), B.c(0.25))));
  return Workload{"mg", "Multigrid on a 3-D Poisson PDE", true, B.take(),
                  {0.02, 0.001}};
}

/// NAS cg: an axpy stream with a reversed operand (beyond the native
/// vectorizer, fine for SLP) plus strided sparse-ish statements whose
/// arrays cannot be proven read-only (indirect indexing in the real code),
/// so only the global grouping profits from their reuse.
Workload makeCg() {
  KernelBuilder B("cg");
  SymbolId Q = B.array("Qv", ST::Float32, {524288}, /*ReadOnly=*/true);
  SymbolId R = B.array("Rv", ST::Float32, {524288});
  SymbolId W = B.array("Wv", ST::Float32, {524288});
  SymbolId Qs = B.array("Qs", ST::Float32, {8256});
  SymbolId Ys = B.array("Ys", ST::Float32, {8256});
  SymbolId Z = B.array("Zv", ST::Float32, {8256});
  SymbolId V = B.array("Vv", ST::Float32, {8256});
  SymbolId Alpha = B.scalar("alpha", ST::Float32);
  SymbolId Beta = B.scalar("beta", ST::Float32);
  unsigned I = B.loop("i", 0, 4096);
  B.assign(B.arrayRef(W, {B.idx(I)}),
           B.add(B.mul(B.load(Q, {B.idx(I)}), B.scalarRef(Alpha)),
                 B.load(R, {B.idx(I, -1, 4095)})));
  B.assign(B.arrayRef(Z, {B.idx(I, 2)}),
           B.add(B.mul(B.load(Qs, {B.idx(I, 2)}), B.scalarRef(Alpha)),
                 B.mul(B.load(Ys, {B.idx(I, 2)}), B.scalarRef(Beta))));
  B.assign(B.arrayRef(V, {B.idx(I, 2)}),
           B.sub(B.mul(B.load(Qs, {B.idx(I, 2)}), B.scalarRef(Beta)),
                 B.mul(B.load(Ys, {B.idx(I, 2)}), B.scalarRef(Alpha))));
  return Workload{"cg", "Conjugate gradient", true, B.take(), {0.05, 0.003}};
}

/// Conditional copy (branchy memcpy): lanes move only where the mask
/// array is positive. If-converts into one masked load / masked store
/// pair per superword.
Workload makeMemcpyCond() {
  KernelBuilder B("memcpy_cond");
  SymbolId Src = B.array("src", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId Msk = B.array("msk", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId Dst = B.array("dst", ST::Float32, {4096});
  unsigned I = B.loop("i", 0, 4096);
  B.assignIf(B.cmp(OpCode::CmpGT, B.load(Msk, {B.idx(I)}), B.c(0.0)),
             B.arrayRef(Dst, {B.idx(I)}), B.load(Src, {B.idx(I)}));
  return Workload{"memcpy_cond",
                  "Conditional stream copy (predicated memcpy)", false,
                  B.take(), {0.02, 0.002}};
}

/// Masked product accumulation (branchy dot product): each element's
/// partial product lands in the accumulator array only where the weight
/// passes a threshold; the untaken lanes keep their running value.
Workload makeDotprodCond() {
  KernelBuilder B("dotprod_cond");
  SymbolId A = B.array("a", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId Bv = B.array("b", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId W = B.array("w", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId Acc = B.array("acc", ST::Float32, {4096});
  unsigned I = B.loop("i", 0, 4096);
  B.assignIf(B.cmp(OpCode::CmpGE, B.load(W, {B.idx(I)}), B.c(0.5)),
             B.arrayRef(Acc, {B.idx(I)}),
             B.add(B.load(Acc, {B.idx(I)}),
                   B.mul(B.load(A, {B.idx(I)}), B.load(Bv, {B.idx(I)}))));
  return Workload{"dotprod_cond",
                  "Thresholded elementwise product accumulation", false,
                  B.take(), {0.03, 0.002}};
}

/// Sparsity-masked matrix multiply step: a 2-level nest updating a 64x64
/// tile, skipping columns whose mask is zero (the branchy inner loop of a
/// sparse-aware GEMM).
Workload makeMmmCond() {
  KernelBuilder B("mmm_cond");
  SymbolId Am = B.array("Am", ST::Float32, {4096}, /*ReadOnly=*/true);
  SymbolId Bm = B.array("Bm", ST::Float32, {64}, /*ReadOnly=*/true);
  SymbolId Msk = B.array("colmask", ST::Float32, {64}, /*ReadOnly=*/true);
  SymbolId Cm = B.array("Cm", ST::Float32, {4096});
  unsigned I = B.loop("i", 0, 64);
  unsigned J = B.loop("j", 0, 64);
  AffineExpr Flat = B.idx(I, 64) + B.idx(J);
  B.assignIf(B.ne(B.load(Msk, {B.idx(J)}), B.c(0.0)),
             B.arrayRef(Cm, {Flat}),
             B.add(B.load(Cm, {Flat}),
                   B.mul(B.load(Am, {Flat}), B.load(Bm, {B.idx(J)}))));
  return Workload{"mmm_cond",
                  "Column-masked matrix-multiply tile update", false,
                  B.take(), {0.04, 0.003}};
}

/// Strided congruence break: over `i = 0, 3, ..., 21` the write A[2i]
/// and the read A[i+5] would collide only at i == 5, which the step-3
/// lattice never visits. The raw-coefficient GCD test (gcd 1 divides 5)
/// and Banerjee ([-5, 16] spans 0) both say "maybe"; folding the step
/// into the coefficient makes the exact test refute it (3t = 5 has no
/// integer solution), so the pair shows up in `dep.range-disproved`.
Workload makeRangeStride() {
  KernelBuilder B("range_stride");
  SymbolId X = B.array("x", ST::Float32, {64}, /*ReadOnly=*/true);
  SymbolId A = B.array("A", ST::Float32, {64});
  SymbolId Y = B.array("y", ST::Float32, {64});
  unsigned I = B.loop("i", 0, 24, /*Step=*/3);
  B.assign(B.arrayRef(A, {B.idx(I, 2)}),
           B.add(B.load(X, {B.idx(I)}), B.c(1.0)));
  B.assign(B.arrayRef(Y, {B.idx(I)}),
           B.mul(B.load(A, {B.idx(I, 1, 5)}), B.c(2.0)));
  return Workload{"range_stride",
                  "Strided write/read pair disjoint by step congruence",
                  false, B.take(), {0.02, 0.002}};
}

/// Box-infeasible Diophantine line: A[5i+48] vs A[7j] over the 8x8 box
/// collide only where 5i - 7j = -48, whose integer solutions
/// (i, j) = (3 + 7k, 9 + 5k) never land inside i, j in [0, 8). GCD
/// (1 divides 48) and Banerjee ([-1, 83] spans 0) both pass; the exact
/// two-variable test clamps the Bezout line against the box and refutes
/// the pair, so the nest counts toward `dep.range-disproved`.
Workload makeRangeDiophantine() {
  KernelBuilder B("range_diophantine");
  SymbolId X = B.array("x", ST::Float32, {64}, /*ReadOnly=*/true);
  SymbolId A = B.array("A", ST::Float32, {96});
  SymbolId Y = B.array("y", ST::Float32, {64});
  unsigned I = B.loop("i", 0, 8);
  unsigned J = B.loop("j", 0, 8);
  AffineExpr Flat = B.idx(I, 8) + B.idx(J);
  B.assign(B.arrayRef(A, {B.idx(I, 5, 48)}),
           B.add(B.load(X, {Flat}), B.c(1.0)));
  B.assign(B.arrayRef(Y, {Flat}),
           B.mul(B.load(A, {B.idx(J, 7)}), B.c(0.5)));
  return Workload{"range_diophantine",
                  "2-D subscript pair with a box-infeasible solution line",
                  false, B.take(), {0.02, 0.002}};
}

/// Complementary-guard stores: both statements target A[i], but their
/// guards `w[i] < 0.5` / `w[i] >= 0.5` are mutually exclusive (NaN
/// makes both false), and nothing between them writes w. The output
/// dependence the address test must assume is refuted by the guard
/// analysis (`dep.guard-disjoint`). The RHS shapes are deliberately
/// non-isomorphic so the pair is judged on dependence, not packing.
Workload makeRangeGuardDisjoint() {
  KernelBuilder B("range_guard_disjoint");
  SymbolId W = B.array("w", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId X = B.array("x", ST::Float32, {2048}, /*ReadOnly=*/true);
  SymbolId A = B.array("A", ST::Float32, {2048});
  unsigned I = B.loop("i", 0, 2048);
  B.assignIf(B.lt(B.load(W, {B.idx(I)}), B.c(0.5)),
             B.arrayRef(A, {B.idx(I)}),
             B.add(B.load(X, {B.idx(I)}), B.c(1.0)));
  B.assignIf(B.ge(B.load(W, {B.idx(I)}), B.c(0.5)),
             B.arrayRef(A, {B.idx(I)}),
             B.mul(B.load(X, {B.idx(I)}), B.c(2.0)));
  return Workload{"range_guard_disjoint",
                  "Same-address stores under complementary guards", false,
                  B.take(), {0.02, 0.002}};
}

} // namespace

std::vector<Workload> slp::rangeWorkloads() {
  std::vector<Workload> All;
  All.push_back(makeRangeStride());
  All.push_back(makeRangeDiophantine());
  All.push_back(makeRangeGuardDisjoint());
  return All;
}

std::vector<Workload> slp::predicatedWorkloads() {
  std::vector<Workload> All;
  All.push_back(makeMemcpyCond());
  All.push_back(makeDotprodCond());
  All.push_back(makeMmmCond());
  return All;
}

std::vector<Workload> slp::standardWorkloads() {
  std::vector<Workload> All;
  All.push_back(makeCactusADM());
  All.push_back(makeSoplex());
  All.push_back(makeLbm());
  All.push_back(makeMilc());
  All.push_back(makePovray());
  All.push_back(makeGromacs());
  All.push_back(makeCalculix());
  All.push_back(makeDealII());
  All.push_back(makeWrf());
  All.push_back(makeNamd());
  All.push_back(makeUa());
  All.push_back(makeFt());
  All.push_back(makeBt());
  All.push_back(makeSp());
  All.push_back(makeMg());
  All.push_back(makeCg());
  return All;
}

Workload slp::workloadByName(const std::string &Name) {
  for (Workload &W : standardWorkloads())
    if (W.Name == Name)
      return W;
  for (Workload &W : predicatedWorkloads())
    if (W.Name == Name)
      return W;
  for (Workload &W : rangeWorkloads())
    if (W.Name == Name)
      return W;
  reportFatalError("unknown workload: " + Name);
}

Kernel slp::randomKernel(Rng &R, const RandomKernelOptions &Options) {
  KernelBuilder B("random");
  int64_t Trip = Options.TripCount;

  assert((Options.NumLoops == 1 || Options.NumLoops == 2) &&
         "generator supports one- or two-level nests");
  std::vector<SymbolId> Arrays;
  for (unsigned A = 0; A != Options.NumArrays; ++A) {
    // Size for the worst-case subscript sum of coeff*index + const over
    // all nest levels.
    int64_t Size = 3 * Trip * Options.NumLoops + 16;
    ScalarType Ty = ST::Float32;
    if (Options.AllowDoubles && R.nextBelow(4) == 0)
      Ty = ST::Float64;
    else if (Options.AllowInts && R.nextBelow(5) == 0)
      Ty = R.nextBelow(2) == 0 ? ST::Int32 : ST::Int64;
    // Array 0 is always writable so store targets always exist.
    bool ReadOnly = A > 0 && R.nextBelow(3) == 0;
    Arrays.push_back(B.array("arr" + std::to_string(A), Ty, {Size},
                             ReadOnly));
  }
  std::vector<SymbolId> Scalars;
  for (unsigned S = 0; S != Options.NumScalars; ++S)
    Scalars.push_back(B.scalar("s" + std::to_string(S), ST::Float32));

  unsigned I = B.loop("i", 0, Trip);
  unsigned J = Options.NumLoops > 1 ? B.loop("j", 0, Trip) : I;

  auto RandomAffine = [&]() {
    // Innermost index always participates; an outer-index term is mixed
    // in for two-level nests about half the time.
    unsigned Inner = Options.NumLoops > 1 ? J : I;
    int64_t Coeff = R.nextInRange(1, 3);
    int64_t Add = R.nextInRange(0, 4);
    AffineExpr E = B.idx(Inner, Coeff, Add);
    if (Options.NumLoops > 1 && R.nextBelow(2) == 0)
      E = E + B.idx(I, R.nextInRange(1, 3));
    return E;
  };
  auto RandomArrayThatIs = [&](bool Writable) {
    for (unsigned Tries = 0; Tries != 16; ++Tries) {
      SymbolId A = Arrays[R.nextBelow(Arrays.size())];
      if (!Writable || !B.kernel().array(A).ReadOnly)
        return A;
    }
    return Arrays[0]; // array 0 is writable by construction
  };

  std::function<ExprPtr(unsigned)> RandomExpr = [&](unsigned Depth) {
    if (Depth == 0 || R.nextBelow(3) == 0) {
      switch (R.nextBelow(3)) {
      case 0:
        return B.c(static_cast<double>(R.nextInRange(-8, 8)) * 0.5);
      case 1:
        return B.scalarRef(Scalars[R.nextBelow(Scalars.size())]);
      default:
        return B.load(RandomArrayThatIs(false), {RandomAffine()});
      }
    }
    static const OpCode Ops[] = {OpCode::Add, OpCode::Sub, OpCode::Mul,
                                 OpCode::Min, OpCode::Max};
    OpCode Op = Ops[R.nextBelow(5)];
    return Expr::makeBinary(Op, RandomExpr(Depth - 1), RandomExpr(Depth - 1));
  };

  auto RandomGuard = [&]() {
    static const OpCode Cmps[] = {OpCode::CmpLT, OpCode::CmpLE,
                                  OpCode::CmpGT, OpCode::CmpGE,
                                  OpCode::CmpEQ, OpCode::CmpNE};
    return B.cmp(Cmps[R.nextBelow(6)], RandomExpr(0),
                 B.c(static_cast<double>(R.nextInRange(-4, 4)) * 0.5));
  };

  unsigned NumStmts = static_cast<unsigned>(R.nextInRange(
      Options.MinStatements, Options.MaxStatements));
  for (unsigned S = 0; S != NumStmts; ++S) {
    Operand Lhs = R.nextBelow(3) == 0
                      ? B.scalarOp(Scalars[R.nextBelow(Scalars.size())])
                      : B.arrayRef(RandomArrayThatIs(true), {RandomAffine()});
    // Note: the builder asserts lhs is not readonly through our chooser;
    // a readonly lhs would break the replication legality assumptions.
    if (Options.GuardProbability > 0 &&
        R.nextBelow(1000) <
            static_cast<uint64_t>(Options.GuardProbability * 1000))
      B.assignIf(RandomGuard(), std::move(Lhs), RandomExpr(2));
    else
      B.assign(std::move(Lhs), RandomExpr(2));
  }
  return B.take();
}

Kernel slp::syntheticGroupingBlock(const SyntheticBlockOptions &Options) {
  unsigned CS = std::max(2u, Options.ClassSize);
  unsigned RBC = std::max(1u, Options.ReuseBlockClasses);
  unsigned NumClasses = (Options.NumStatements + CS - 1) / CS;
  unsigned NumBlocks = (NumClasses + RBC - 1) / RBC;
  const int64_t Trip = 4;
  const int64_t Elems = static_cast<int64_t>(CS) * Trip;

  KernelBuilder B("grouping_scale_" +
                  std::to_string(Options.NumStatements));
  Rng R(Options.Seed);

  // Per-block operand pools: loads from these give every class of the
  // block identical pack keys (block-wide superword reuse).
  std::vector<std::array<SymbolId, 3>> Pools;
  std::vector<SymbolId> BlockScalars;
  for (unsigned Blk = 0; Blk != NumBlocks; ++Blk) {
    std::array<SymbolId, 3> Pool;
    for (unsigned P = 0; P != 3; ++P)
      Pool[P] = B.array("p" + std::to_string(Blk) + "_" + std::to_string(P),
                        ST::Float32, {Elems}, /*ReadOnly=*/true);
    Pools.push_back(Pool);
    BlockScalars.push_back(
        B.scalar("q" + std::to_string(Blk), ST::Float32));
  }
  std::vector<SymbolId> Outs;
  for (unsigned C = 0; C != NumClasses; ++C)
    Outs.push_back(
        B.array("o" + std::to_string(C), ST::Float32, {Elems}));
  std::vector<char> Chained(NumClasses, 0);
  for (unsigned C = 0; C != NumClasses; ++C)
    Chained[C] = R.nextBelow(1000) <
                 static_cast<uint64_t>(Options.DepFraction * 1000.0);

  unsigned I = B.loop("i", 0, Trip);
  static const OpCode Ops[] = {OpCode::Add, OpCode::Sub, OpCode::Mul,
                               OpCode::Min, OpCode::Max};

  for (unsigned S = 0; S != Options.NumStatements; ++S) {
    unsigned C = S / CS;
    unsigned L = S % CS;
    unsigned Blk = C / RBC;
    // A globally unique expression shape per class (two opcodes x three
    // tail kinds x a depth tier): statements are isomorphic only within
    // their class, so candidates stay linear in NumStatements while pack
    // keys still match across the classes of a block.
    unsigned ShapeId = C % 75;
    unsigned DepthTier = C / 75;
    OpCode Op1 = Ops[ShapeId % 5];
    OpCode Op2 = Ops[(ShapeId / 5) % 5];
    unsigned TailKind = (ShapeId / 25) % 3;

    AffineExpr Idx = B.idx(I, static_cast<int64_t>(CS), L);
    ExprPtr Base = Expr::makeBinary(Op1, B.load(Pools[Blk][0], {Idx}),
                                    B.load(Pools[Blk][1], {Idx}));
    ExprPtr Tail;
    switch (TailKind) {
    case 0:
      Tail = B.load(Pools[Blk][2], {Idx});
      break;
    case 1:
      Tail = B.scalarRef(BlockScalars[Blk]);
      break;
    default:
      Tail = B.c(1.5);
      break;
    }
    ExprPtr Rhs = Expr::makeBinary(Op2, std::move(Base), std::move(Tail));
    for (unsigned D = 0; D != DepthTier; ++D)
      Rhs = B.add(std::move(Rhs), B.load(Pools[Blk][2], {Idx}));
    if (Chained[C]) {
      // Read a neighbor lane's output element (scaled, so the chain tail
      // keeps a shape no unchained class has): lanes L and L+1 become
      // dependent, and candidate pairs overlapping in opposite orders
      // conflict through a dependence cycle.
      unsigned NL = std::min(L + 1, CS - 1);
      Rhs = B.add(std::move(Rhs),
                  B.mul(B.c(0.5), B.load(Outs[C], {B.idx(
                                      I, static_cast<int64_t>(CS), NL)})));
    }
    B.assign(B.arrayRef(Outs[C], {Idx}), std::move(Rhs));
  }
  return B.take();
}
