//===- workloads/Workloads.h - Benchmark kernel generators ------*- C++ -*-===//
///
/// \file
/// Synthetic stand-ins for the paper's benchmark suite (Table 3): ten
/// SPEC2006 floating-point codes and six NAS parallel benchmarks. Each
/// generator produces a kernel mimicking that benchmark's dominant
/// inner-loop pattern — the mix of isomorphic statements, superword reuse,
/// access contiguity, scalar temporaries, and data footprint that drives
/// the relative behavior of the Native / SLP / Global / Global+Layout
/// schemes in Figures 16-21. Absolute performance is not modeled; the
/// figures' *shape* is (see DESIGN.md's substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef SLP_WORKLOADS_WORKLOADS_H
#define SLP_WORKLOADS_WORKLOADS_H

#include "ir/Kernel.h"
#include "machine/Multicore.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace slp {

/// One benchmark of the evaluation suite.
struct Workload {
  std::string Name;
  std::string Description; ///< the Table 3 blurb
  bool IsNas = false;      ///< NAS benchmarks feed Figure 21
  Kernel TheKernel;
  MulticoreParams Multicore; ///< Figure 21 parallelization parameters
};

/// All 16 benchmarks, in Table 3 order (SPEC2006 then NAS).
std::vector<Workload> standardWorkloads();

/// Predicated (branchy) kernels exercising the if-conversion and masked
/// vector paths: conditional copy, masked product accumulation, and a
/// sparsity-masked matrix multiply. Kept separate from the Table 3 suite
/// so the paper-figure benchmarks stay untouched.
std::vector<Workload> predicatedWorkloads();

/// Kernels whose cross-statement array accesses look dependent to the
/// GCD/Banerjee tier but are refuted by the exact range-aware tests:
/// a strided loop whose step breaks a subscript congruence, a 2-D nest
/// with a box-infeasible Diophantine line, and complementary-guard
/// stores to the same address. They exist to demonstrate (and bench)
/// the `dep.range-disproved` / `dep.guard-disjoint` sharpening; kept
/// separate from the Table 3 suite so the paper-figure baselines stay
/// untouched.
std::vector<Workload> rangeWorkloads();

/// Finds a benchmark by its Table 3 name (predicated kernels included);
/// aborts if unknown.
Workload workloadByName(const std::string &Name);

/// Parameters of the random-kernel generator used by property tests.
struct RandomKernelOptions {
  unsigned MinStatements = 2;
  unsigned MaxStatements = 10;
  unsigned NumArrays = 3;
  unsigned NumScalars = 4;
  int64_t TripCount = 16;
  /// Number of nest levels (1 or 2); with 2, subscripts mix both indices.
  unsigned NumLoops = 1;
  bool AllowDoubles = true;
  /// Mix in integer-typed arrays/scalars (exercising the truncating
  /// store semantics).
  bool AllowInts = true;
  /// Probability (0..1) that a generated statement carries a guard
  /// (`if (cmp) lhs = rhs`), exercising if-conversion and masked stores.
  double GuardProbability = 0;
};

/// Generates a random (but always well-formed, in-bounds) kernel. The
/// space deliberately includes dependent statements, strided and
/// overlapping references, scalar temporaries, and repeated operands so
/// that schedule-validity and equivalence properties get exercised hard.
Kernel randomKernel(Rng &R, const RandomKernelOptions &Options);

/// Parameters of the synthetic grouping-scalability generator
/// (bench_grouping_scale and the grouping differential tests).
struct SyntheticBlockOptions {
  /// Total statements in the block (the scaling axis, 64 → 2048).
  unsigned NumStatements = 256;
  /// Statements per isomorphism class. Every class gets a globally unique
  /// expression shape, so candidate groups form only within a class —
  /// candidate count grows linearly with NumStatements, which keeps the
  /// reference engine's dense conflict matrix tractable at 2048.
  unsigned ClassSize = 8;
  /// Classes sharing one operand-array pool. Pool loads give classes of a
  /// block identical pack keys, so auxiliary graphs span the block and
  /// superword reuse crosses class boundaries (the expensive part of the
  /// weight computation) without blowing up the candidate count.
  unsigned ReuseBlockClasses = 4;
  /// Fraction of classes whose statements also read a neighbor lane's
  /// output element, creating intra-class dependences and dependence-cycle
  /// conflicts between overlapping candidates.
  double DepFraction = 0.15;
  /// Seed for the chained-class selection.
  uint64_t Seed = 1;
};

/// Generates a straight-line block stressing statement grouping: many
/// isomorphism classes, block-wide superword reuse, and (per DepFraction)
/// dependence-driven conflicts.
Kernel syntheticGroupingBlock(const SyntheticBlockOptions &Options);

} // namespace slp

#endif // SLP_WORKLOADS_WORKLOADS_H
