//===- slp/SchedulingPass.cpp ---------------------------------*- C++ -*-===//

#include "slp/SchedulingPass.h"

#include "slp/PipelineState.h"
#include "slp/Verifier.h"

using namespace slp;

void SchedulingPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  const Kernel &K = S.ensurePreprocessed();

  if (S.Groups) {
    const DependenceInfo &Deps = S.ensureDeps();
    SchedulingCounters Counters;
    S.TheSchedule = S.Options.Ablation.ReuseAwareScheduling
                        ? scheduleGroups(K, Deps, *S.Groups, &Counters)
                        : scheduleGroupsNaive(K, Deps, *S.Groups);
    S.ScheduleReady = true;
    Ctx.Stats.add("sched_ready_scans", Counters.ReadyScans);
    Ctx.Stats.add("sched_reuse_hits", Counters.ReuseHits);
  } else {
    // Baselines (and hand-built pipelines without a grouping pass): the
    // schedule is already final; fall back to all-scalar when absent.
    S.ensureSchedule();
  }

  assert(verifySchedule(K, S.ensureDeps(), S.TheSchedule,
                        S.Options.Machine.DatapathBits)
             .empty() &&
         "optimizer produced an invalid schedule");

  Ctx.Stats.add("scheduling.superwords-placed", S.TheSchedule.numGroups());
  Ctx.Stats.add("scheduling.scalars-placed",
                S.TheSchedule.Items.size() - S.TheSchedule.numGroups());
}
