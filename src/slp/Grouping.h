//===- slp/Grouping.h - Global reuse-aware statement grouping ---*- C++ -*-===//
///
/// \file
/// The paper's main contribution (Section 4.2): statement grouping driven by
/// a *global* view of superword reuse. Implements the four steps of the
/// basic grouping algorithm of Figure 10 —
///   1. identify candidate groups (isomorphic, dependence-free pairs),
///   2. build the variable-pack conflicting graph,
///   3. build the statement grouping graph, weighting each candidate by its
///      average superword reuse over the whole block (computed on an
///      auxiliary graph after greedy conflict elimination),
///   4. repeatedly pick the max-weight candidate, updating both graphs —
/// plus the iterative re-grouping of Section 4.2.2 that widens groups until
/// the SIMD datapath is filled.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_GROUPING_H
#define SLP_SLP_GROUPING_H

#include "analysis/Dependence.h"
#include "ir/Kernel.h"

#include <cstdint>
#include <vector>

namespace slp {

/// A SIMD group: an unordered set of mutually isomorphic, dependence-free
/// statements destined for one superword statement. Members are kept sorted
/// by original statement index for determinism; lane order is decided later
/// by the scheduler.
struct SimdGroup {
  std::vector<unsigned> Members;

  unsigned size() const { return static_cast<unsigned>(Members.size()); }
};

/// Result of the grouping phase: disjoint groups plus leftover singles.
struct GroupingResult {
  std::vector<SimdGroup> Groups;
  std::vector<unsigned> Singles;
};

/// Which grouping engine runs the Figure 10 algorithm. Optimized and
/// Reference produce bit-identical results (asserted by
/// tests/slp/GroupingDifferentialTest) and differ only in compile time;
/// Exact replaces the greedy per-round selection with a provably optimal
/// one and may therefore pick a different (never lighter) selection.
enum class GroupingImpl : uint8_t {
  /// Bitset conflict rows, memoized item-level dependences, incrementally
  /// maintained candidate weights with dirty-set propagation, and reusable
  /// scratch arenas. The default.
  Optimized,
  /// The direct transcription of Figure 10: dense conflict matrix and a
  /// from-scratch auxiliary graph per live candidate per decision. Kept as
  /// the differential-testing and benchmarking baseline
  /// (`slpc --grouping-impl=reference`).
  Reference,
  /// goSLP-style exact pack selection (see docs/exact-grouping.md): per
  /// widen round, a branch-and-bound search over the Optimized engine's
  /// candidate list and conflict bitsets maximizes the total selection
  /// weight instead of committing candidates greedily. Bounded by
  /// GroupingOptions::ExactNodeBudget; a round that exhausts the budget
  /// falls back to the Optimized greedy selection for that round
  /// (`slpc --grouping-impl=exact --exact-budget=`).
  Exact,
};

const char *groupingImplName(GroupingImpl Impl);

/// Default GroupingOptions::ExactNodeBudget: large enough that the
/// standard 16-workload suite proves per-round optimality, small enough
/// that pathological blocks fall back in well under a second.
constexpr uint64_t DefaultExactNodeBudget = 1u << 20;

/// Per-stage instrumentation of one grouping run, reported through the
/// pass manager's Statistics by GroupingPass (`--stats`).
struct GroupingTelemetry {
  uint64_t Candidates = 0;      ///< candidate groups identified, all rounds
  uint64_t Rounds = 0;          ///< widen rounds actually run
  uint64_t Commits = 0;         ///< candidates committed into groups
  uint64_t AuxNodes = 0;        ///< auxiliary-graph nodes built (Figure 6)
  uint64_t WeightComputes = 0;  ///< full auxiliary-graph weight computations
  uint64_t WeightCacheHits = 0; ///< weights served from the incremental cache
  uint64_t DirtyRecomputes = 0; ///< recomputes forced by dirty-set propagation
  uint64_t ConflictWords = 0;   ///< 64-bit words held by the conflict bitsets
  // --- Exact engine only (see docs/exact-grouping.md) -------------------
  uint64_t ExactNodes = 0;     ///< branch-and-bound decision nodes expanded
  uint64_t ExactPrunes = 0;    ///< subtrees cut by the admissible bound
  uint64_t ExactFallbacks = 0; ///< rounds abandoned to the greedy selection
  /// 1 when every round was solved to proven per-round optimality (no
  /// budget exhaustion), 0 otherwise. Only meaningful for Exact runs.
  uint64_t ExactProvedOptimal = 0;
  /// Total committed selection weight over all rounds: for every round,
  /// the sum over selected candidates of their superword-reuse
  /// contribution plus PackQualityEpsilon times their pack quality. The
  /// same formula is reported for all three engines, so
  /// Exact - Optimized is the heuristic regret tracked by
  /// bench_grouping_scale --regret.
  double SelectionWeight = 0;
};

/// Options controlling grouping.
struct GroupingOptions {
  /// SIMD datapath width in bits (Table 1/2 machines use 128; Figure 18
  /// sweeps up to 1024).
  unsigned DatapathBits = 128;
  /// Seed for the paper's "if two edges have the same weight, we randomly
  /// choose one" tie-break.
  uint64_t TieBreakSeed = 1;
  /// Weight of the packing-cheapness score added to the reuse average so
  /// that, among (nearly) equally reusable candidates, the one with
  /// memory-coherent packs wins. Zero reproduces the paper's reuse-only
  /// weight exactly.
  double PackQualityEpsilon = 0.05;
  /// Use the global superword-reuse average as the candidate weight (the
  /// paper's core idea). Disabled only by the ablation study, which then
  /// groups by packing cheapness alone.
  bool UseReuseWeight = true;
  /// Which engine runs the algorithm.
  GroupingImpl Impl = GroupingImpl::Optimized;
  /// Exact engine only: branch-and-bound decision nodes allowed per widen
  /// round before that round falls back to the Optimized greedy selection
  /// (deterministic — the budget counts nodes, not wall clock). 0 always
  /// falls back, making Exact behave exactly like Optimized.
  uint64_t ExactNodeBudget = DefaultExactNodeBudget;
};

/// Runs the holistic grouping of Section 4.2 on \p K's basic block.
/// \p Telemetry, when non-null, receives per-stage counters.
GroupingResult groupStatementsGlobal(const Kernel &K,
                                     const DependenceInfo &Deps,
                                     const GroupingOptions &Options,
                                     GroupingTelemetry *Telemetry = nullptr);

/// Result of solveFirstRoundExact: the provably max-weight first-round
/// selection, exposed so tests can cross-check the branch-and-bound
/// against brute-force enumeration on small kernels.
struct ExactRoundResult {
  /// Selected candidate pairs as (statement, statement) indices (round one
  /// items are single statements), sorted by first member. Empty when the
  /// budget was exhausted.
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  /// Weight of the selection: sum over the selected candidates' pack-key
  /// occurrences k (taken in order) of 1 for every occurrence whose key
  /// was already present, plus PackQualityEpsilon * PackQuality per
  /// candidate. Meaningless when Exhausted.
  double Weight = 0;
  uint64_t Nodes = 0; ///< decision nodes expanded
  bool Exhausted = false; ///< budget ran out before the proof completed
};

/// Runs only the first grouping round (every statement its own item)
/// under the Exact engine's branch-and-bound with
/// \p Options.ExactNodeBudget. Testing hook for
/// tests/slp/GroupingExactTest.cpp.
ExactRoundResult solveFirstRoundExact(const Kernel &K,
                                      const DependenceInfo &Deps,
                                      const GroupingOptions &Options);

/// One first-round candidate pair as the engines see it, exposed so the
/// brute-force cross-check in tests/slp/GroupingExactTest.cpp can
/// enumerate every conflict-free acyclic selection and recompute its
/// weight independently of the branch-and-bound.
struct FirstRoundCandidate {
  unsigned StmtA = 0, StmtB = 0;
  /// Multiset pack key per non-degenerate operand position, in position
  /// order (the string form of Candidate::PackKeyIds).
  std::vector<std::string> PackKeys;
  double PackQuality = 0;
};

/// Enumerates the candidate pairs of the first grouping round exactly as
/// the engines do (isomorphism, datapath fit, pairwise independence).
/// Testing hook for tests/slp/GroupingExactTest.cpp.
std::vector<FirstRoundCandidate>
enumerateFirstRoundCandidates(const Kernel &K, const DependenceInfo &Deps,
                              const GroupingOptions &Options);

/// Number of lanes a superword of element type \p Ty holds on a
/// \p DatapathBits-wide machine.
inline unsigned lanesFor(ScalarType Ty, unsigned DatapathBits) {
  return DatapathBits / bitSizeOf(Ty);
}

} // namespace slp

#endif // SLP_SLP_GROUPING_H
