//===- slp/Grouping.h - Global reuse-aware statement grouping ---*- C++ -*-===//
///
/// \file
/// The paper's main contribution (Section 4.2): statement grouping driven by
/// a *global* view of superword reuse. Implements the four steps of the
/// basic grouping algorithm of Figure 10 —
///   1. identify candidate groups (isomorphic, dependence-free pairs),
///   2. build the variable-pack conflicting graph,
///   3. build the statement grouping graph, weighting each candidate by its
///      average superword reuse over the whole block (computed on an
///      auxiliary graph after greedy conflict elimination),
///   4. repeatedly pick the max-weight candidate, updating both graphs —
/// plus the iterative re-grouping of Section 4.2.2 that widens groups until
/// the SIMD datapath is filled.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_GROUPING_H
#define SLP_SLP_GROUPING_H

#include "analysis/Dependence.h"
#include "ir/Kernel.h"

#include <cstdint>
#include <vector>

namespace slp {

/// A SIMD group: an unordered set of mutually isomorphic, dependence-free
/// statements destined for one superword statement. Members are kept sorted
/// by original statement index for determinism; lane order is decided later
/// by the scheduler.
struct SimdGroup {
  std::vector<unsigned> Members;

  unsigned size() const { return static_cast<unsigned>(Members.size()); }
};

/// Result of the grouping phase: disjoint groups plus leftover singles.
struct GroupingResult {
  std::vector<SimdGroup> Groups;
  std::vector<unsigned> Singles;
};

/// Options controlling grouping.
struct GroupingOptions {
  /// SIMD datapath width in bits (Table 1/2 machines use 128; Figure 18
  /// sweeps up to 1024).
  unsigned DatapathBits = 128;
  /// Seed for the paper's "if two edges have the same weight, we randomly
  /// choose one" tie-break.
  uint64_t TieBreakSeed = 1;
  /// Weight of the packing-cheapness score added to the reuse average so
  /// that, among (nearly) equally reusable candidates, the one with
  /// memory-coherent packs wins. Zero reproduces the paper's reuse-only
  /// weight exactly.
  double PackQualityEpsilon = 0.05;
  /// Use the global superword-reuse average as the candidate weight (the
  /// paper's core idea). Disabled only by the ablation study, which then
  /// groups by packing cheapness alone.
  bool UseReuseWeight = true;
};

/// Runs the holistic grouping of Section 4.2 on \p K's basic block.
GroupingResult groupStatementsGlobal(const Kernel &K,
                                     const DependenceInfo &Deps,
                                     const GroupingOptions &Options);

/// Number of lanes a superword of element type \p Ty holds on a
/// \p DatapathBits-wide machine.
inline unsigned lanesFor(ScalarType Ty, unsigned DatapathBits) {
  return DatapathBits / bitSizeOf(Ty);
}

} // namespace slp

#endif // SLP_SLP_GROUPING_H
