//===- slp/Grouping.h - Global reuse-aware statement grouping ---*- C++ -*-===//
///
/// \file
/// The paper's main contribution (Section 4.2): statement grouping driven by
/// a *global* view of superword reuse. Implements the four steps of the
/// basic grouping algorithm of Figure 10 —
///   1. identify candidate groups (isomorphic, dependence-free pairs),
///   2. build the variable-pack conflicting graph,
///   3. build the statement grouping graph, weighting each candidate by its
///      average superword reuse over the whole block (computed on an
///      auxiliary graph after greedy conflict elimination),
///   4. repeatedly pick the max-weight candidate, updating both graphs —
/// plus the iterative re-grouping of Section 4.2.2 that widens groups until
/// the SIMD datapath is filled.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_GROUPING_H
#define SLP_SLP_GROUPING_H

#include "analysis/Dependence.h"
#include "ir/Kernel.h"

#include <cstdint>
#include <vector>

namespace slp {

/// A SIMD group: an unordered set of mutually isomorphic, dependence-free
/// statements destined for one superword statement. Members are kept sorted
/// by original statement index for determinism; lane order is decided later
/// by the scheduler.
struct SimdGroup {
  std::vector<unsigned> Members;

  unsigned size() const { return static_cast<unsigned>(Members.size()); }
};

/// Result of the grouping phase: disjoint groups plus leftover singles.
struct GroupingResult {
  std::vector<SimdGroup> Groups;
  std::vector<unsigned> Singles;
};

/// Which grouping engine runs the Figure 10 algorithm. Both produce
/// bit-identical results (asserted by tests/slp/GroupingDifferentialTest);
/// they differ only in compile time.
enum class GroupingImpl : uint8_t {
  /// Bitset conflict rows, memoized item-level dependences, incrementally
  /// maintained candidate weights with dirty-set propagation, and reusable
  /// scratch arenas. The default.
  Optimized,
  /// The direct transcription of Figure 10: dense conflict matrix and a
  /// from-scratch auxiliary graph per live candidate per decision. Kept as
  /// the differential-testing and benchmarking baseline
  /// (`slpc --grouping-impl=reference`).
  Reference,
};

const char *groupingImplName(GroupingImpl Impl);

/// Per-stage instrumentation of one grouping run, reported through the
/// pass manager's Statistics by GroupingPass (`--stats`).
struct GroupingTelemetry {
  uint64_t Candidates = 0;      ///< candidate groups identified, all rounds
  uint64_t Rounds = 0;          ///< widen rounds actually run
  uint64_t Commits = 0;         ///< candidates committed into groups
  uint64_t AuxNodes = 0;        ///< auxiliary-graph nodes built (Figure 6)
  uint64_t WeightComputes = 0;  ///< full auxiliary-graph weight computations
  uint64_t WeightCacheHits = 0; ///< weights served from the incremental cache
  uint64_t DirtyRecomputes = 0; ///< recomputes forced by dirty-set propagation
  uint64_t ConflictWords = 0;   ///< 64-bit words held by the conflict bitsets
};

/// Options controlling grouping.
struct GroupingOptions {
  /// SIMD datapath width in bits (Table 1/2 machines use 128; Figure 18
  /// sweeps up to 1024).
  unsigned DatapathBits = 128;
  /// Seed for the paper's "if two edges have the same weight, we randomly
  /// choose one" tie-break.
  uint64_t TieBreakSeed = 1;
  /// Weight of the packing-cheapness score added to the reuse average so
  /// that, among (nearly) equally reusable candidates, the one with
  /// memory-coherent packs wins. Zero reproduces the paper's reuse-only
  /// weight exactly.
  double PackQualityEpsilon = 0.05;
  /// Use the global superword-reuse average as the candidate weight (the
  /// paper's core idea). Disabled only by the ablation study, which then
  /// groups by packing cheapness alone.
  bool UseReuseWeight = true;
  /// Which engine runs the algorithm (identical results either way).
  GroupingImpl Impl = GroupingImpl::Optimized;
};

/// Runs the holistic grouping of Section 4.2 on \p K's basic block.
/// \p Telemetry, when non-null, receives per-stage counters.
GroupingResult groupStatementsGlobal(const Kernel &K,
                                     const DependenceInfo &Deps,
                                     const GroupingOptions &Options,
                                     GroupingTelemetry *Telemetry = nullptr);

/// Number of lanes a superword of element type \p Ty holds on a
/// \p DatapathBits-wide machine.
inline unsigned lanesFor(ScalarType Ty, unsigned DatapathBits) {
  return DatapathBits / bitSizeOf(Ty);
}

} // namespace slp

#endif // SLP_SLP_GROUPING_H
