//===- slp/GroupingPass.cpp -----------------------------------*- C++ -*-===//

#include "slp/GroupingPass.h"

#include "slp/Baseline.h"
#include "slp/Grouping.h"
#include "slp/PipelineState.h"
#include "support/Error.h"

using namespace slp;

void GroupingPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  const Kernel &K = S.ensurePreprocessed();
  const DependenceInfo &Deps = S.ensureDeps();
  const PipelineOptions &Options = S.Options;

  switch (S.Kind) {
  case OptimizerKind::Scalar:
    S.TheSchedule = scalarSchedule(K);
    S.ScheduleReady = true;
    Ctx.Remarks.note(name(), "scalar baseline, no grouping performed");
    return;
  case OptimizerKind::Native:
    S.TheSchedule =
        nativeVectorizerSchedule(K, Deps, Options.Machine.DatapathBits);
    S.ScheduleReady = true;
    break;
  case OptimizerKind::LarsenSlp:
    S.TheSchedule = larsenSlpSchedule(K, Deps, Options.Machine.DatapathBits);
    S.ScheduleReady = true;
    break;
  case OptimizerKind::Global:
  case OptimizerKind::GlobalLayout: {
    GroupingOptions GO;
    GO.DatapathBits = Options.Machine.DatapathBits;
    GO.TieBreakSeed = Options.TieBreakSeed;
    GO.UseReuseWeight = Options.Ablation.ReuseAwareGrouping;
    GO.Impl = Options.GroupingEngine;
    GO.ExactNodeBudget = Options.ExactBudget;
    if (!Options.Ablation.PackQualityTieBreak)
      GO.PackQualityEpsilon = 0;
    GroupingTelemetry Telemetry;
    S.Groups = groupStatementsGlobal(K, Deps, GO, &Telemetry);
    unsigned Grouped = 0;
    for (const SimdGroup &G : S.Groups->Groups)
      Grouped += G.size();
    Ctx.Stats.add("grouping.packs-formed", S.Groups->Groups.size());
    Ctx.Stats.add("grouping.statements-grouped", Grouped);
    Ctx.Stats.add("grouping.statements-scalar", S.Groups->Singles.size());
    Ctx.Stats.add("grouping.candidates", Telemetry.Candidates);
    Ctx.Stats.add("grouping.rounds", Telemetry.Rounds);
    Ctx.Stats.add("grouping.aux-graph-nodes", Telemetry.AuxNodes);
    Ctx.Stats.add("grouping.weight-computes", Telemetry.WeightComputes);
    Ctx.Stats.add("grouping.weight-cache-hits", Telemetry.WeightCacheHits);
    Ctx.Stats.add("grouping.dirty-recomputes", Telemetry.DirtyRecomputes);
    Ctx.Stats.add("grouping.conflict-words", Telemetry.ConflictWords);
    // Statistics counters are integral; report the (small, fractional)
    // selection weight in milli-units so regret is still visible.
    Ctx.Stats.add("grouping.selection-weight-milli",
                  static_cast<uint64_t>(Telemetry.SelectionWeight * 1000.0 +
                                        0.5));
    if (GO.Impl == GroupingImpl::Exact) {
      Ctx.Stats.add("grouping.exact-nodes", Telemetry.ExactNodes);
      Ctx.Stats.add("grouping.exact-prunes", Telemetry.ExactPrunes);
      Ctx.Stats.add("grouping.exact-fallbacks", Telemetry.ExactFallbacks);
      Ctx.Stats.add("grouping.exact-proved-optimal",
                    Telemetry.ExactProvedOptimal);
    }
    if (S.Groups->Groups.empty())
      Ctx.Remarks.missed(name(),
                         "no isomorphic, dependence-free statement groups "
                         "found; block stays scalar");
    else
      Ctx.Remarks.applied(
          name(), "formed " + std::to_string(S.Groups->Groups.size()) +
                      " group(s) covering " + std::to_string(Grouped) +
                      " of " + std::to_string(K.Body.size()) +
                      " statements");
    return;
  }
  }

  // Baseline vectorizers: the schedule is already final.
  Ctx.Stats.add("grouping.packs-formed", S.TheSchedule.numGroups());
  if (S.TheSchedule.numGroups() == 0)
    Ctx.Remarks.missed(name(), "baseline vectorizer found no packs; block "
                               "stays scalar");
  else
    Ctx.Remarks.applied(name(),
                        "baseline vectorizer formed " +
                            std::to_string(S.TheSchedule.numGroups()) +
                            " pack(s)");
}
