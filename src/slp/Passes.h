//===- slp/Passes.h - Pass registry and pipeline builders -------*- C++ -*-===//
///
/// \file
/// Registry of every KernelPass in the framework, plus builders for the
/// canonical pipelines per OptimizerKind and for hand-written
/// `--passes=<list>` pipelines. `runPassPipeline` is the underlying
/// engine `runPipeline` wraps: it threads one kernel through a
/// PassPipeline and packages the state, statistics, remarks, and per-pass
/// timings into a PipelineResult.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_PASSES_H
#define SLP_SLP_PASSES_H

#include "slp/Pipeline.h"
#include "support/PassManager.h"

#include <memory>
#include <string>
#include <vector>

namespace slp {

/// Creates the pass registered under \p Name ("unroll", "alignment",
/// "grouping", "scheduling", "group-prune", "codegen", "simulate",
/// "layout", "cost-guard", "verify-vector"); null for unknown names.
std::unique_ptr<KernelPass> createKernelPass(const std::string &Name);

/// Every registered pass name, in canonical pipeline order.
std::vector<std::string> allPassNames();

/// The pass names of the canonical pipeline for \p Kind (the layout pass
/// is present only for OptimizerKind::GlobalLayout).
std::vector<std::string> canonicalPassNames(OptimizerKind Kind);

/// Builds the canonical pipeline for \p Kind.
PassPipeline buildCanonicalPipeline(OptimizerKind Kind);

/// Builds a pipeline from explicit pass names. Returns false (and sets
/// \p Error when non-null) on an unknown name; \p Out is then unchanged.
bool buildPipelineFromNames(const std::vector<std::string> &Names,
                            PassPipeline &Out, std::string *Error = nullptr);

/// Runs \p Pipeline over \p Source and packages everything the passes
/// produced. Pass instances are reusable: running the same PassPipeline
/// over many kernels is fine (all per-kernel state lives in the
/// PipelineResult).
PipelineResult runPassPipeline(const Kernel &Source, OptimizerKind Kind,
                               const PipelineOptions &Options,
                               PassPipeline &Pipeline);

} // namespace slp

#endif // SLP_SLP_PASSES_H
