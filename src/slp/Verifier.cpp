//===- slp/Verifier.cpp ---------------------------------------*- C++ -*-===//

#include "slp/Verifier.h"

#include "analysis/Isomorphism.h"

#include <set>

using namespace slp;

std::vector<std::string> slp::verifySchedule(const Kernel &K,
                                             const DependenceInfo &Deps,
                                             const Schedule &S,
                                             unsigned DatapathBits) {
  std::vector<std::string> Issues;
  unsigned NumStmts = K.Body.size();

  // Coverage: each statement scheduled exactly once.
  std::vector<int> ItemOf(NumStmts, -1);
  for (unsigned I = 0, E = static_cast<unsigned>(S.Items.size()); I != E;
       ++I) {
    for (unsigned Stmt : S.Items[I].Lanes) {
      if (Stmt >= NumStmts) {
        Issues.push_back("item " + std::to_string(I) +
                         " references statement " + std::to_string(Stmt) +
                         " outside the block");
        continue;
      }
      if (ItemOf[Stmt] != -1)
        Issues.push_back("statement " + std::to_string(Stmt) +
                         " scheduled more than once");
      ItemOf[Stmt] = static_cast<int>(I);
    }
  }
  for (unsigned Stmt = 0; Stmt != NumStmts; ++Stmt)
    if (ItemOf[Stmt] == -1)
      Issues.push_back("statement " + std::to_string(Stmt) +
                       " missing from the schedule");

  for (unsigned I = 0, E = static_cast<unsigned>(S.Items.size()); I != E;
       ++I) {
    const ScheduleItem &Item = S.Items[I];
    if (!Item.isGroup())
      continue;

    // Constraint 3: isomorphism within the superword statement.
    const Statement &First = K.Body.statement(Item.Lanes.front());
    for (unsigned L = 1; L != Item.width(); ++L)
      if (!areIsomorphic(K, First, K.Body.statement(Item.Lanes[L])))
        Issues.push_back("item " + std::to_string(I) +
                         " groups non-isomorphic statements");

    // Constraint 4: datapath width.
    unsigned Bits =
        Item.width() * bitSizeOf(statementElementType(K, First));
    if (Bits > DatapathBits)
      Issues.push_back("item " + std::to_string(I) + " is " +
                       std::to_string(Bits) + " bits wide, exceeding the " +
                       std::to_string(DatapathBits) + "-bit datapath");

    // Constraint 1: no intra-group dependence.
    for (unsigned A = 0; A != Item.width(); ++A)
      for (unsigned B = A + 1; B != Item.width(); ++B)
        if (!Deps.independent(Item.Lanes[A], Item.Lanes[B]))
          Issues.push_back("item " + std::to_string(I) +
                           " groups dependent statements " +
                           std::to_string(Item.Lanes[A]) + " and " +
                           std::to_string(Item.Lanes[B]));
  }

  // Constraint 2: dependences preserved across items.
  for (const Dep &D : Deps.dependences()) {
    int A = ItemOf[D.Src], B = ItemOf[D.Dst];
    if (A < 0 || B < 0 || A == B)
      continue; // missing statements / intra-group reported above
    if (A > B)
      Issues.push_back("dependence " + std::to_string(D.Src) + " -> " +
                       std::to_string(D.Dst) +
                       " violated by the schedule order");
  }
  return Issues;
}
