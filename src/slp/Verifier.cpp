//===- slp/Verifier.cpp ---------------------------------------*- C++ -*-===//

#include "slp/Verifier.h"

#include "analysis/Isomorphism.h"

using namespace slp;

namespace {

void issue(std::vector<Diagnostic> &Diags, const char *Code,
           std::string Message, DiagLocation Loc) {
  Diagnostic D;
  D.Code = Code;
  D.Severity = DiagSeverity::Error;
  D.Message = std::move(Message);
  D.Loc = Loc;
  Diags.push_back(std::move(D));
}

DiagLocation itemLoc(unsigned Item) {
  DiagLocation Loc;
  Loc.Item = static_cast<int>(Item);
  return Loc;
}

DiagLocation stmtLoc(unsigned Stmt) {
  DiagLocation Loc;
  Loc.Stmt = static_cast<int>(Stmt);
  return Loc;
}

} // namespace

std::vector<Diagnostic> slp::verifyScheduleDiags(const Kernel &K,
                                                 const DependenceInfo &Deps,
                                                 const Schedule &S,
                                                 unsigned DatapathBits) {
  std::vector<Diagnostic> Diags;
  unsigned NumStmts = K.Body.size();

  // Coverage: each statement scheduled exactly once.
  std::vector<int> ItemOf(NumStmts, -1);
  for (unsigned I = 0, E = static_cast<unsigned>(S.Items.size()); I != E;
       ++I) {
    for (unsigned Stmt : S.Items[I].Lanes) {
      if (Stmt >= NumStmts) {
        issue(Diags, "SV03",
              "item " + std::to_string(I) + " references statement " +
                  std::to_string(Stmt) + " outside the block",
              itemLoc(I));
        continue;
      }
      if (ItemOf[Stmt] != -1) {
        DiagLocation Loc = stmtLoc(Stmt);
        Loc.Item = static_cast<int>(I);
        issue(Diags, "SV02",
              "statement " + std::to_string(Stmt) +
                  " scheduled more than once",
              Loc);
      }
      ItemOf[Stmt] = static_cast<int>(I);
    }
  }
  for (unsigned Stmt = 0; Stmt != NumStmts; ++Stmt)
    if (ItemOf[Stmt] == -1)
      issue(Diags, "SV01",
            "statement " + std::to_string(Stmt) +
                " missing from the schedule",
            stmtLoc(Stmt));

  for (unsigned I = 0, E = static_cast<unsigned>(S.Items.size()); I != E;
       ++I) {
    const ScheduleItem &Item = S.Items[I];
    if (!Item.isGroup())
      continue;

    // Constraint 3: isomorphism within the superword statement.
    const Statement &First = K.Body.statement(Item.Lanes.front());
    for (unsigned L = 1; L != Item.width(); ++L)
      if (!areIsomorphic(K, First, K.Body.statement(Item.Lanes[L]))) {
        DiagLocation Loc = itemLoc(I);
        Loc.Lane = static_cast<int>(L);
        issue(Diags, "SV04",
              "item " + std::to_string(I) +
                  " groups non-isomorphic statements",
              Loc);
      }

    // Constraint 4: datapath width.
    unsigned Bits =
        Item.width() * bitSizeOf(statementElementType(K, First));
    if (Bits > DatapathBits)
      issue(Diags, "SV05",
            "item " + std::to_string(I) + " is " + std::to_string(Bits) +
                " bits wide, exceeding the " +
                std::to_string(DatapathBits) + "-bit datapath",
            itemLoc(I));

    // Constraint 1: no intra-group dependence.
    for (unsigned A = 0; A != Item.width(); ++A)
      for (unsigned B = A + 1; B != Item.width(); ++B)
        if (!Deps.independent(Item.Lanes[A], Item.Lanes[B]))
          issue(Diags, "SV06",
                "item " + std::to_string(I) +
                    " groups dependent statements " +
                    std::to_string(Item.Lanes[A]) + " and " +
                    std::to_string(Item.Lanes[B]),
                itemLoc(I));
  }

  // Constraint 2: dependences preserved across items.
  for (const Dep &D : Deps.dependences()) {
    int A = ItemOf[D.Src], B = ItemOf[D.Dst];
    if (A < 0 || B < 0 || A == B)
      continue; // missing statements / intra-group reported above
    if (A > B) {
      DiagLocation Loc = stmtLoc(D.Dst);
      Loc.Item = B;
      issue(Diags, "SV07",
            "dependence " + std::to_string(D.Src) + " -> " +
                std::to_string(D.Dst) + " violated by the schedule order",
            Loc);
    }
  }
  return Diags;
}

std::vector<std::string> slp::verifySchedule(const Kernel &K,
                                             const DependenceInfo &Deps,
                                             const Schedule &S,
                                             unsigned DatapathBits) {
  std::vector<std::string> Issues;
  for (const Diagnostic &D : verifyScheduleDiags(K, Deps, S, DatapathBits))
    Issues.push_back(D.Message);
  return Issues;
}
