//===- slp/Baseline.h - Larsen SLP and native-compiler baselines -*- C++ -*-===//
///
/// \file
/// The two comparison schemes of the paper's evaluation:
///
/// * `larsenSlpSchedule` — the original greedy SLP algorithm of Larsen &
///   Amarasinghe (PLDI 2000), the paper's "SLP" scheme: seed packs from
///   isomorphic statement pairs with adjacent memory accesses, extend them
///   along def-use / use-def chains, combine contiguous packs up to the
///   datapath width, then schedule in original order. Lane orders are fixed
///   when packs are formed (memory-ascending), and packs that create cyclic
///   group dependences are broken apart — both local decisions the holistic
///   framework improves on.
///
/// * `nativeVectorizerSchedule` — the paper's "Native" scheme, modeling the
///   vectorizer of a production compiler of the time: it only packs fully
///   streaming statements (every array position contiguous in order,
///   scalars broadcast, equal constants) and performs no reuse analysis.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_BASELINE_H
#define SLP_SLP_BASELINE_H

#include "slp/Scheduling.h"

namespace slp {

/// Runs the Larsen & Amarasinghe greedy SLP algorithm.
Schedule larsenSlpSchedule(const Kernel &K, const DependenceInfo &Deps,
                           unsigned DatapathBits);

/// Runs the native-compiler-style streaming vectorizer.
Schedule nativeVectorizerSchedule(const Kernel &K, const DependenceInfo &Deps,
                                  unsigned DatapathBits);

} // namespace slp

#endif // SLP_SLP_BASELINE_H
