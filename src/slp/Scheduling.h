//===- slp/Scheduling.h - Superword statement scheduling --------*- C++ -*-===//
///
/// \file
/// The second phase of superword statement generation (paper Section 4.3):
/// choose an execution order for the superword statements (and leftover
/// singles) of a basic block, and fix the lane order of every superword
/// statement. A "live superword set" models the packs most likely resident
/// in vector registers; the ready statement with the most reuses against it
/// is scheduled next, and its lane order is picked among the orders that
/// realize at least one direct reuse so as to minimize register permutation
/// instructions.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_SCHEDULING_H
#define SLP_SLP_SCHEDULING_H

#include "slp/Grouping.h"

namespace slp {

/// One entry of the final schedule: an ordered lane tuple. Size one means
/// the statement executes scalarly.
struct ScheduleItem {
  std::vector<unsigned> Lanes;

  bool isGroup() const { return Lanes.size() > 1; }
  unsigned width() const { return static_cast<unsigned>(Lanes.size()); }
};

/// A complete, valid schedule of a basic block (paper Section 4.1).
struct Schedule {
  std::vector<ScheduleItem> Items;

  unsigned numGroups() const {
    unsigned N = 0;
    for (const ScheduleItem &I : Items)
      N += I.isGroup();
    return N;
  }
};

/// Produces the all-scalar schedule (the identity transformation).
Schedule scalarSchedule(const Kernel &K);

/// Instrumentation of one scheduling run, reported through Statistics by
/// SchedulingPass (`--stats`).
struct SchedulingCounters {
  /// Ready-superword sweeps performed against the live superword set
  /// (one per emitted superword statement).
  uint64_t ReadyScans = 0;
  /// Superword reuses realized by the emitted statements: the live-set
  /// reuse count of the winning node, summed over all picks.
  uint64_t ReuseHits = 0;
};

/// Runs the scheduling phase of Figure 11 on the groups chosen by the
/// grouping phase. \p Counters, when non-null, receives instrumentation.
Schedule scheduleGroups(const Kernel &K, const DependenceInfo &Deps,
                        const GroupingResult &Groups,
                        SchedulingCounters *Counters = nullptr);

/// Ablation-only variant: a plain topological schedule in original
/// statement order with ascending lane orders — no live superword set, no
/// reuse-driven ordering (what Section 4.3 adds over naive emission).
Schedule scheduleGroupsNaive(const Kernel &K, const DependenceInfo &Deps,
                             const GroupingResult &Groups);

} // namespace slp

#endif // SLP_SLP_SCHEDULING_H
