//===- slp/Pack.h - Variable pack identities ---------------------*- C++ -*-===//
///
/// \file
/// A variable pack is the tuple of operands sitting at the same position of
/// the statements grouped into one superword statement (paper Section 4.2).
/// During grouping packs are *unordered* (multisets); during scheduling and
/// code generation they become *ordered* lane tuples. Two packs denote the
/// same superword data when their operand multisets are equal, even if the
/// orders differ — that is the paper's notion of (direct or permuted)
/// superword reuse.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_PACK_H
#define SLP_SLP_PACK_H

#include "ir/Kernel.h"

#include <string>
#include <vector>

namespace slp {

/// Ordered identity: lane order matters (direct reuse requires equality).
std::string orderedPackKey(const std::vector<const Operand *> &Lanes);

/// Unordered identity: the multiset of lane operands (reuse up to a
/// register permutation).
std::string multisetPackKey(const std::vector<const Operand *> &Lanes);

/// The operand positions of a statement group: element [p] holds the
/// operands at position p of every member statement, in member order.
/// Position 0 is the left-hand side. All members must be isomorphic.
std::vector<std::vector<const Operand *>>
positionPacks(const Kernel &K, const std::vector<unsigned> &Members);

/// Multiset keys of every position pack of \p Members (lhs first).
std::vector<std::string> positionPackKeys(const Kernel &K,
                                          const std::vector<unsigned> &Members);

/// True for packs whose "reuse" is meaningless for grouping decisions:
/// all-equal lanes (a broadcast, materialized once regardless of grouping)
/// and all-constant lanes (an immediate). Counting these as superword
/// reuses would spuriously reward grouping unrelated statements that share
/// a loop-invariant operand.
bool isDegeneratePack(const std::vector<const Operand *> &Lanes);

} // namespace slp

#endif // SLP_SLP_PACK_H
