//===- slp/GroupingPass.h - Statement grouping as a pass --------*- C++ -*-===//
///
/// \file
/// The optimizer's grouping phase as a KernelPass. For the holistic
/// schemes (Global / Global+Layout) it runs the paper's reuse-aware global
/// grouping (Section 4.2) and leaves the chosen groups for the scheduling
/// pass. The baseline schemes (Scalar, Native, Larsen-SLP) make their
/// grouping and ordering decisions in one piece, so for them this pass
/// produces the complete schedule directly and the scheduling pass only
/// verifies it.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_GROUPINGPASS_H
#define SLP_SLP_GROUPINGPASS_H

#include "support/PassManager.h"

namespace slp {

class GroupingPass : public KernelPass {
public:
  const char *name() const override { return "grouping"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_SLP_GROUPINGPASS_H
