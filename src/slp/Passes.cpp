//===- slp/Passes.cpp -----------------------------------------*- C++ -*-===//

#include "slp/Passes.h"

#include "analysis/AlignmentPass.h"
#include "analysis/KernelVerifyPass.h"
#include "analysis/VectorVerifyPass.h"
#include "layout/LayoutPass.h"
#include "machine/CostGuardPass.h"
#include "machine/SimulatePass.h"
#include "slp/GroupingPass.h"
#include "slp/PipelineState.h"
#include "slp/SchedulingPass.h"
#include "transform/IfConvertPass.h"
#include "transform/UnrollPass.h"
#include "vector/CodeGenPass.h"

using namespace slp;

std::unique_ptr<KernelPass> slp::createKernelPass(const std::string &Name) {
  if (Name == "verify-kernel")
    return std::make_unique<KernelVerifyPass>();
  if (Name == "if-convert")
    return std::make_unique<IfConvertPass>();
  if (Name == "unroll")
    return std::make_unique<UnrollPass>();
  if (Name == "alignment")
    return std::make_unique<AlignmentPass>();
  if (Name == "grouping")
    return std::make_unique<GroupingPass>();
  if (Name == "scheduling")
    return std::make_unique<SchedulingPass>();
  if (Name == "group-prune")
    return std::make_unique<GroupPrunePass>();
  if (Name == "codegen")
    return std::make_unique<CodeGenPass>();
  if (Name == "simulate")
    return std::make_unique<SimulatePass>();
  if (Name == "layout")
    return std::make_unique<LayoutPass>();
  if (Name == "cost-guard")
    return std::make_unique<CostGuardPass>();
  if (Name == "verify-vector")
    return std::make_unique<VectorVerifyPass>();
  return nullptr;
}

std::vector<std::string> slp::allPassNames() {
  return {"verify-kernel", "if-convert", "unroll",  "alignment",
          "grouping", "scheduling", "group-prune", "codegen", "simulate",
          "layout", "cost-guard", "verify-vector"};
}

std::vector<std::string> slp::canonicalPassNames(OptimizerKind Kind) {
  // Kernel verification runs first, over the untransformed source, so its
  // diagnostics point at the statements the user wrote. Whether it does
  // anything is PipelineOptions::VerifyKernel's call at run time.
  std::vector<std::string> Names = {"verify-kernel", "if-convert", "unroll",
                                    "alignment",   "grouping",    "scheduling",
                                    "group-prune", "codegen",     "simulate"};
  if (Kind == OptimizerKind::GlobalLayout)
    Names.push_back("layout");
  Names.push_back("cost-guard");
  // Translation validation runs last, over the exact program the pipeline
  // hands out (layout and the cost guard both regenerate it). Whether it
  // does anything is PipelineOptions::VerifyVector's call at run time.
  Names.push_back("verify-vector");
  return Names;
}

PassPipeline slp::buildCanonicalPipeline(OptimizerKind Kind) {
  PassPipeline P;
  for (const std::string &Name : canonicalPassNames(Kind))
    P.addPass(createKernelPass(Name));
  return P;
}

bool slp::buildPipelineFromNames(const std::vector<std::string> &Names,
                                 PassPipeline &Out, std::string *Error) {
  PassPipeline P;
  for (const std::string &Name : Names) {
    std::unique_ptr<KernelPass> Pass = createKernelPass(Name);
    if (!Pass) {
      if (Error) {
        *Error = "unknown pass '" + Name + "' (available:";
        for (const std::string &Known : allPassNames())
          *Error += " " + Known;
        *Error += ")";
      }
      return false;
    }
    P.addPass(std::move(Pass));
  }
  Out = std::move(P);
  return true;
}

PipelineResult slp::runPassPipeline(const Kernel &Source, OptimizerKind Kind,
                                    const PipelineOptions &Options,
                                    PassPipeline &Pipeline) {
  PipelineState State(Source, Kind, Options);
  Statistics Stats;
  RemarkStream Remarks;
  Remarks.setSubject(Source.Name);

  PassContext Ctx{State, Stats, Remarks};
  TimingReport Timing;
  Pipeline.run(Ctx, Timing);

  PipelineResult R;
  R.Kind = Kind;
  // Make the result well-formed even for partial hand-built pipelines.
  State.ensurePreprocessed();
  State.ensureSchedule();
  if (!State.ProgramReady)
    State.Final = State.Preprocessed.clone();
  R.Preprocessed = std::move(State.Preprocessed);
  R.Final = std::move(State.Final);
  R.TheSchedule = std::move(State.TheSchedule);
  R.Program = std::move(State.Program);
  R.Layout = std::move(State.Layout);
  R.LayoutApplied = State.LayoutApplied;
  R.TransformationApplied = State.TransformationApplied;
  R.ScalarSim = State.ScalarSim;
  R.VectorSim = State.VectorSim;
  R.Simulated = State.Simulated;
  R.VerifyDiags = std::move(State.VerifyDiags);
  R.Verified = State.Verified;
  R.KernelDiags = std::move(State.KernelDiags);
  R.KernelVerified = State.KernelVerified;
  R.Stats = std::move(Stats);
  R.Remarks = Remarks.take();
  R.PassTimings = std::move(Timing);
  return R;
}
