//===- slp/Baseline.cpp ---------------------------------------*- C++ -*-===//

#include "slp/Baseline.h"

#include "analysis/Isomorphism.h"
#include "ir/Interpreter.h"
#include "slp/Grouping.h"
#include "slp/Pack.h"

#include <algorithm>
#include <map>
#include <set>

using namespace slp;

namespace {

/// Constant address distance between two array operands (flattened), or
/// nullopt when the operands are not same-array refs at constant distance.
std::optional<int64_t> addressDistance(const Kernel &K, const Operand &A,
                                       const Operand &B) {
  if (!A.isArray() || !B.isArray() || A.symbol() != B.symbol())
    return std::nullopt;
  const ArraySymbol &Arr = K.array(A.symbol());
  AffineExpr Diff = flattenArrayRef(Arr, B.subscripts()) -
                    flattenArrayRef(Arr, A.subscripts());
  if (!Diff.isConstant())
    return std::nullopt;
  return Diff.constant();
}

/// True when the operands at position \p Pos of statements \p P then \p Q
/// are adjacent in memory (Q exactly one element past P).
bool adjacentAt(const Kernel &K, unsigned P, unsigned Q, unsigned Pos) {
  std::vector<const Operand *> PP = K.Body.statement(P).operandPositions();
  std::vector<const Operand *> QP = K.Body.statement(Q).operandPositions();
  if (Pos >= PP.size() || Pos >= QP.size())
    return false;
  std::optional<int64_t> D = addressDistance(K, *PP[Pos], *QP[Pos]);
  return D && *D == 1;
}

/// Schedules packed groups by repeatedly emitting the ready node with the
/// smallest original statement id; when a dependence cycle blocks progress
/// the offending pack is dissolved into singles (the behavior the paper
/// attributes to [17]).
Schedule scheduleInOriginalOrder(const Kernel &K, const DependenceInfo &Deps,
                                 std::vector<std::vector<unsigned>> Groups) {
  while (true) {
    // Assemble nodes: groups plus unpacked singles.
    std::vector<std::vector<unsigned>> Nodes = Groups;
    std::vector<bool> Packed(K.Body.size(), false);
    for (const auto &G : Groups)
      for (unsigned S : G)
        Packed[S] = true;
    for (unsigned S = 0, E = K.Body.size(); S != E; ++S)
      if (!Packed[S])
        Nodes.push_back({S});

    unsigned NumNodes = static_cast<unsigned>(Nodes.size());
    std::vector<int> NodeOf(K.Body.size(), -1);
    for (unsigned N = 0; N != NumNodes; ++N)
      for (unsigned S : Nodes[N])
        NodeOf[S] = static_cast<int>(N);

    std::vector<std::set<unsigned>> Succ(NumNodes);
    std::vector<unsigned> InDeg(NumNodes, 0);
    for (const Dep &D : Deps.dependences()) {
      int A = NodeOf[D.Src], B = NodeOf[D.Dst];
      if (A != B && Succ[static_cast<unsigned>(A)]
                        .insert(static_cast<unsigned>(B))
                        .second)
        ++InDeg[static_cast<unsigned>(B)];
    }

    Schedule Out;
    std::vector<bool> Emitted(NumNodes, false);
    unsigned Remaining = NumNodes;
    bool Stuck = false;
    while (Remaining != 0) {
      unsigned Best = NumNodes;
      for (unsigned N = 0; N != NumNodes; ++N) {
        if (Emitted[N] || InDeg[N] != 0)
          continue;
        if (Best == NumNodes || Nodes[N].front() < Nodes[Best].front())
          Best = N;
      }
      if (Best == NumNodes) {
        Stuck = true;
        break;
      }
      Out.Items.push_back(ScheduleItem{Nodes[Best]});
      Emitted[Best] = true;
      --Remaining;
      for (unsigned S : Succ[Best])
        --InDeg[S];
    }
    if (!Stuck)
      return Out;

    // Break the blocked group with the smallest statement id and retry.
    unsigned Victim = static_cast<unsigned>(Groups.size());
    for (unsigned G = 0, E = static_cast<unsigned>(Groups.size()); G != E;
         ++G) {
      int N = NodeOf[Groups[G].front()];
      if (N >= 0 && !Emitted[static_cast<unsigned>(N)] &&
          (Victim == Groups.size() ||
           Groups[G].front() < Groups[Victim].front()))
        Victim = G;
    }
    assert(Victim != Groups.size() &&
           "a stuck schedule must involve at least one group");
    Groups.erase(Groups.begin() + Victim);
  }
}

/// The pack set of the Larsen algorithm: ordered statement tuples, each
/// statement in at most one pack.
class LarsenPacker {
public:
  LarsenPacker(const Kernel &K, const DependenceInfo &Deps,
               unsigned DatapathBits)
      : K(K), Deps(Deps), DatapathBits(DatapathBits),
        InPack(K.Body.size(), false) {}

  std::vector<std::vector<unsigned>> run() {
    seedAdjacentMemoryPairs();
    extendChains();
    pairLeftovers();
    combinePacks();
    return Packs;
  }

private:
  bool packable(unsigned P, unsigned Q) const {
    return P != Q && !InPack[P] && !InPack[Q] &&
           areIsomorphic(K, K.Body.statement(P), K.Body.statement(Q)) &&
           Deps.independent(P, Q);
  }

  void addPack(unsigned P, unsigned Q) {
    Packs.push_back({P, Q});
    InPack[P] = InPack[Q] = true;
  }

  void seedAdjacentMemoryPairs();
  void extendChains();
  void pairLeftovers();
  void combinePacks();

  const Kernel &K;
  const DependenceInfo &Deps;
  unsigned DatapathBits;
  std::vector<std::vector<unsigned>> Packs;
  std::vector<bool> InPack;
};

void LarsenPacker::seedAdjacentMemoryPairs() {
  unsigned N = K.Body.size();
  // Stores first (position 0), then each rhs position: the original
  // algorithm prefers adjacent stores as seeds.
  unsigned MaxPositions = 1;
  for (unsigned S = 0; S != N; ++S)
    MaxPositions = std::max(
        MaxPositions,
        static_cast<unsigned>(K.Body.statement(S).operandPositions().size()));
  for (unsigned Pos = 0; Pos != MaxPositions; ++Pos)
    for (unsigned P = 0; P != N; ++P)
      for (unsigned Q = 0; Q != N; ++Q)
        if (packable(P, Q) && adjacentAt(K, P, Q, Pos))
          addPack(P, Q);
}

void LarsenPacker::extendChains() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate over a snapshot: newly added packs get their turn in the
    // next sweep.
    unsigned Existing = static_cast<unsigned>(Packs.size());
    for (unsigned PI = 0; PI != Existing; ++PI) {
      unsigned P = Packs[PI][0], Q = Packs[PI][1];
      const Statement &SP = K.Body.statement(P);
      const Statement &SQ = K.Body.statement(Q);

      // def-use: pack the statements consuming this pack's results.
      if (SP.lhs().isScalar() && SQ.lhs().isScalar()) {
        SymbolId A = SP.lhs().symbol(), B = SQ.lhs().symbol();
        for (unsigned R = 0, E = K.Body.size(); R != E; ++R) {
          for (unsigned S = 0; S != E; ++S) {
            if (!packable(R, S))
              continue;
            std::vector<const Operand *> RP =
                K.Body.statement(R).operandPositions();
            std::vector<const Operand *> SPo =
                K.Body.statement(S).operandPositions();
            for (unsigned Pos = 1;
                 Pos < RP.size() && Pos < SPo.size(); ++Pos) {
              if (RP[Pos]->isScalar() && SPo[Pos]->isScalar() &&
                  RP[Pos]->symbol() == A && SPo[Pos]->symbol() == B) {
                addPack(R, S);
                Changed = true;
                break;
              }
            }
            if (InPack[R])
              break;
          }
        }
      }

      // use-def: pack the statements producing this pack's scalar inputs.
      std::vector<const Operand *> PPos = SP.operandPositions();
      std::vector<const Operand *> QPos = SQ.operandPositions();
      for (unsigned Pos = 1; Pos < PPos.size(); ++Pos) {
        if (!PPos[Pos]->isScalar() || !QPos[Pos]->isScalar())
          continue;
        SymbolId A = PPos[Pos]->symbol(), B = QPos[Pos]->symbol();
        // Find the nearest preceding definitions.
        int DefA = -1, DefB = -1;
        for (unsigned R = 0; R != P; ++R)
          if (K.Body.statement(R).lhs().isScalar() &&
              K.Body.statement(R).lhs().symbol() == A)
            DefA = static_cast<int>(R);
        for (unsigned R = 0; R != Q; ++R)
          if (K.Body.statement(R).lhs().isScalar() &&
              K.Body.statement(R).lhs().symbol() == B)
            DefB = static_cast<int>(R);
        if (DefA >= 0 && DefB >= 0 &&
            packable(static_cast<unsigned>(DefA),
                     static_cast<unsigned>(DefB))) {
          addPack(static_cast<unsigned>(DefA), static_cast<unsigned>(DefB));
          Changed = true;
        }
      }
    }
  }
}

// After the seed and chain phases, greedily pair the remaining isomorphic
// independent statements in original order. The paper's Figure 15
// walk-through shows the (well-tuned) original algorithm packing such
// leftovers (its <S3,S6> and <S7,S8>); the pairing stays local — first
// match in program order — which is exactly the myopia the holistic
// grouping improves on.
void LarsenPacker::pairLeftovers() {
  unsigned N = K.Body.size();
  for (unsigned P = 0; P != N; ++P) {
    if (InPack[P])
      continue;
    // The original algorithm's per-pack cost estimate rejects packs whose
    // gather overhead exceeds the SIMD arithmetic savings; for a leftover
    // (non-contiguous, chain-free) pair that needs at least two operations
    // per statement.
    if (K.Body.statement(P).rhs().numOps() < 2)
      continue;
    for (unsigned Q = P + 1; Q != N; ++Q) {
      if (packable(P, Q)) {
        addPack(P, Q);
        break;
      }
    }
  }
}

void LarsenPacker::combinePacks() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned A = 0; A != Packs.size() && !Changed; ++A) {
      for (unsigned B = 0; B != Packs.size() && !Changed; ++B) {
        if (A == B)
          continue;
        const Statement &First = K.Body.statement(Packs[A].front());
        unsigned Lanes =
            lanesFor(statementElementType(K, First), DatapathBits);
        if (Packs[A].size() + Packs[B].size() > Lanes)
          continue;
        // Merge when some array position stays contiguous across the seam
        // and all cross-pairs stay independent and isomorphic.
        bool Ok = true;
        for (unsigned P : Packs[A])
          for (unsigned Q : Packs[B])
            if (!Deps.independent(P, Q) ||
                !areIsomorphic(K, K.Body.statement(P), K.Body.statement(Q)))
              Ok = false;
        if (!Ok)
          continue;
        unsigned Tail = Packs[A].back();
        unsigned Head = Packs[B].front();
        std::vector<const Operand *> TP =
            K.Body.statement(Tail).operandPositions();
        bool Contiguous = false;
        for (unsigned Pos = 0; Pos != TP.size(); ++Pos)
          if (adjacentAt(K, Tail, Head, Pos)) {
            Contiguous = true;
            break;
          }
        if (!Contiguous)
          continue;
        Packs[A].insert(Packs[A].end(), Packs[B].begin(), Packs[B].end());
        Packs.erase(Packs.begin() + B);
        Changed = true;
      }
    }
  }
}

} // namespace

Schedule slp::larsenSlpSchedule(const Kernel &K, const DependenceInfo &Deps,
                                unsigned DatapathBits) {
  LarsenPacker Packer(K, Deps, DatapathBits);
  return scheduleInOriginalOrder(K, Deps, Packer.run());
}

Schedule slp::nativeVectorizerSchedule(const Kernel &K,
                                       const DependenceInfo &Deps,
                                       unsigned DatapathBits) {
  unsigned N = K.Body.size();
  std::vector<bool> Taken(N, false);
  std::vector<std::vector<unsigned>> Groups;

  for (unsigned P = 0; P != N; ++P) {
    if (Taken[P])
      continue;
    const Statement &SP = K.Body.statement(P);
    unsigned Lanes = lanesFor(statementElementType(K, SP), DatapathBits);
    std::vector<unsigned> Group{P};
    // Greedily grow a fully streaming group.
    for (unsigned Q = P + 1; Q != N && Group.size() < Lanes; ++Q) {
      if (Taken[Q])
        continue;
      const Statement &SQ = K.Body.statement(Q);
      if (!areIsomorphic(K, SP, SQ))
        continue;
      bool Ok = true;
      for (unsigned M : Group)
        if (!Deps.independent(M, Q))
          Ok = false;
      if (!Ok)
        continue;
      // Every position must stream: arrays advance contiguously from the
      // previous member, scalars are broadcast, constants are equal.
      unsigned Prev = Group.back();
      std::vector<const Operand *> PrevPos =
          K.Body.statement(Prev).operandPositions();
      std::vector<const Operand *> CurPos = SQ.operandPositions();
      for (unsigned Pos = 0; Pos != PrevPos.size() && Ok; ++Pos) {
        const Operand &A = *PrevPos[Pos];
        const Operand &B = *CurPos[Pos];
        if (A.isArray() && B.isArray()) {
          std::optional<int64_t> D = addressDistance(K, A, B);
          Ok = D && *D == 1;
        } else if (A.isScalar() && B.isScalar()) {
          Ok = A.symbol() == B.symbol() && Pos != 0; // broadcast reads only
        } else if (A.isConstant() && B.isConstant()) {
          Ok = A.constantValue() == B.constantValue();
        } else {
          Ok = false;
        }
      }
      if (Ok)
        Group.push_back(Q);
    }
    if (Group.size() >= 2) {
      for (unsigned M : Group)
        Taken[M] = true;
      Groups.push_back(std::move(Group));
    }
  }
  return scheduleInOriginalOrder(K, Deps, std::move(Groups));
}
