//===- slp/Verifier.h - Schedule validity checking --------------*- C++ -*-===//
///
/// \file
/// Checks a schedule against the four validity constraints of paper
/// Section 4.1: (1) no dependence inside any superword statement, (2) the
/// original inter-statement dependences are preserved by the schedule
/// order, (3) grouped statements are isomorphic, and (4) no superword
/// exceeds the datapath width. Also checks that the schedule is a
/// permutation of the block (every statement exactly once).
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_VERIFIER_H
#define SLP_SLP_VERIFIER_H

#include "slp/Scheduling.h"

#include <string>
#include <vector>

namespace slp {

/// Returns human-readable descriptions of every constraint violation in
/// \p S; an empty vector means the schedule is valid.
std::vector<std::string> verifySchedule(const Kernel &K,
                                        const DependenceInfo &Deps,
                                        const Schedule &S,
                                        unsigned DatapathBits);

} // namespace slp

#endif // SLP_SLP_VERIFIER_H
