//===- slp/Verifier.h - Schedule validity checking --------------*- C++ -*-===//
///
/// \file
/// Checks a schedule against the four validity constraints of paper
/// Section 4.1: (1) no dependence inside any superword statement, (2) the
/// original inter-statement dependences are preserved by the schedule
/// order, (3) grouped statements are isomorphic, and (4) no superword
/// exceeds the datapath width. Also checks that the schedule is a
/// permutation of the block (every statement exactly once).
///
/// Violations are structured Diagnostics with stable SV* codes (the full
/// table lives in docs/static-analysis.md):
///
///   SV01  statement missing from the schedule
///   SV02  statement scheduled more than once
///   SV03  item references a statement outside the block
///   SV04  item groups non-isomorphic statements
///   SV05  item exceeds the datapath width
///   SV06  item groups dependent statements
///   SV07  dependence violated by the schedule order
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_VERIFIER_H
#define SLP_SLP_VERIFIER_H

#include "slp/Scheduling.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace slp {

/// Returns a structured diagnostic (severity Error, code SV01-SV07) for
/// every constraint violation in \p S; an empty vector means the schedule
/// is valid.
std::vector<Diagnostic> verifyScheduleDiags(const Kernel &K,
                                            const DependenceInfo &Deps,
                                            const Schedule &S,
                                            unsigned DatapathBits);

/// `verifyScheduleDiags` rendered down to the bare violation messages.
std::vector<std::string> verifySchedule(const Kernel &K,
                                        const DependenceInfo &Deps,
                                        const Schedule &S,
                                        unsigned DatapathBits);

} // namespace slp

#endif // SLP_SLP_VERIFIER_H
