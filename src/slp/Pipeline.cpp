//===- slp/Pipeline.cpp ---------------------------------------*- C++ -*-===//

#include "slp/Pipeline.h"

#include "analysis/Isomorphism.h"
#include "slp/Baseline.h"
#include "slp/Grouping.h"
#include "slp/Verifier.h"
#include "support/Error.h"
#include "transform/Unroll.h"
#include "vector/VectorInterp.h"

#include <map>

using namespace slp;

const char *slp::optimizerName(OptimizerKind Kind) {
  switch (Kind) {
  case OptimizerKind::Scalar:
    return "Scalar";
  case OptimizerKind::Native:
    return "Native";
  case OptimizerKind::LarsenSlp:
    return "SLP";
  case OptimizerKind::Global:
    return "Global";
  case OptimizerKind::GlobalLayout:
    return "Global+Layout";
  }
  return "<invalid>";
}

namespace {

/// Unroll factor targeting full datapath utilization for the block's
/// dominant element type.
unsigned preprocessUnrollFactor(const Kernel &K, unsigned DatapathBits) {
  if (K.Body.empty())
    return 1;
  std::map<ScalarType, unsigned> Votes;
  for (const Statement &S : K.Body)
    ++Votes[statementElementType(K, S)];
  ScalarType Dominant = Votes.begin()->first;
  unsigned BestVotes = 0;
  for (const auto &[Ty, N] : Votes)
    if (N > BestVotes) {
      Dominant = Ty;
      BestVotes = N;
    }
  return chooseUnrollFactor(K, lanesFor(Dominant, DatapathBits));
}

/// The holistic framework's cost model, applied at superword-statement
/// granularity: demote any group whose vectorization makes the block more
/// expensive (packing overheads exceeding the SIMD gains, Section 4.3's
/// closing paragraph). Demotion is greedy-iterative because dropping one
/// group changes the reuse available to the others.
Schedule pruneUnprofitableGroups(const Kernel &K, Schedule S,
                                 const CodeGenOptions &CG,
                                 const ScalarLayout &Layout,
                                 const MachineModel &M) {
  auto CostOf = [&](const Schedule &Sch) {
    VectorProgram P = generateVectorProgram(K, Sch, CG, Layout);
    return costVectorProgram(K, P, M).Cycles;
  };
  auto Demoted = [](const Schedule &In, unsigned Item) {
    Schedule Out;
    for (unsigned I = 0, E = static_cast<unsigned>(In.Items.size()); I != E;
         ++I) {
      if (I != Item) {
        Out.Items.push_back(In.Items[I]);
        continue;
      }
      std::vector<unsigned> Lanes = In.Items[I].Lanes;
      std::sort(Lanes.begin(), Lanes.end());
      for (unsigned S : Lanes)
        Out.Items.push_back(ScheduleItem{{S}});
    }
    return Out;
  };

  double Current = CostOf(S);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I != S.Items.size(); ++I) {
      if (!S.Items[I].isGroup())
        continue;
      Schedule Trial = Demoted(S, I);
      double TrialCost = CostOf(Trial);
      if (TrialCost + 1e-9 < Current) {
        S = std::move(Trial);
        Current = TrialCost;
        Changed = true;
        break; // restart the scan over the new schedule
      }
    }
  }
  return S;
}

Schedule makeSchedule(const Kernel &K, const DependenceInfo &Deps,
                      OptimizerKind Kind, const PipelineOptions &Options) {
  switch (Kind) {
  case OptimizerKind::Scalar:
    return scalarSchedule(K);
  case OptimizerKind::Native:
    return nativeVectorizerSchedule(K, Deps, Options.Machine.DatapathBits);
  case OptimizerKind::LarsenSlp:
    return larsenSlpSchedule(K, Deps, Options.Machine.DatapathBits);
  case OptimizerKind::Global:
  case OptimizerKind::GlobalLayout: {
    GroupingOptions GO;
    GO.DatapathBits = Options.Machine.DatapathBits;
    GO.TieBreakSeed = Options.TieBreakSeed;
    GO.UseReuseWeight = Options.Ablation.ReuseAwareGrouping;
    if (!Options.Ablation.PackQualityTieBreak)
      GO.PackQualityEpsilon = 0;
    GroupingResult Groups = groupStatementsGlobal(K, Deps, GO);
    return Options.Ablation.ReuseAwareScheduling
               ? scheduleGroups(K, Deps, Groups)
               : scheduleGroupsNaive(K, Deps, Groups);
  }
  }
  slpUnreachable("invalid optimizer kind");
}

} // namespace

PipelineResult slp::runPipeline(const Kernel &Source, OptimizerKind Kind,
                                const PipelineOptions &Options) {
  PipelineResult R;
  R.Kind = Kind;

  // Pre-processing: loop unrolling to expose superword parallelism.
  unsigned Factor =
      preprocessUnrollFactor(Source, Options.Machine.DatapathBits);
  R.Preprocessed = unrollInnermost(Source, Factor);

  DependenceInfo Deps(R.Preprocessed);
  R.TheSchedule = makeSchedule(R.Preprocessed, Deps, Kind, Options);
  assert(verifySchedule(R.Preprocessed, Deps, R.TheSchedule,
                        Options.Machine.DatapathBits)
             .empty() &&
         "optimizer produced an invalid schedule");

  CodeGenOptions CG;
  CG.DatapathBits = Options.Machine.DatapathBits;
  CG.NumVectorRegisters = Options.Machine.NumVectorRegisters;
  // Indirect (permuted) superword reuse and the register-file-as-cache
  // treatment of loaded packs are this paper's contribution (with Shin et
  // al.); the Native and original-SLP baselines only forward pack results
  // along def-use chains and otherwise reload (Sections 2 and 4.3).
  bool Holistic = Kind == OptimizerKind::Global ||
                  Kind == OptimizerKind::GlobalLayout;
  CG.EnablePermutedReuse = Holistic && Options.Ablation.PermutedReuse;
  CG.CacheLoadedPacks = Holistic && Options.Ablation.CacheLoadedPacks;

  ScalarLayout DefaultLayout = ScalarLayout::defaultLayout(
      static_cast<unsigned>(R.Preprocessed.Scalars.size()));

  // Per-superword-statement profitability check. Every scheme had one:
  // Larsen's algorithm estimates each pack's savings, and this paper's
  // framework applies its cost model before committing (Section 4.3).
  bool Prune = Options.CostModelGuard &&
               (!Holistic || Options.Ablation.GroupPruning);
  if (Prune && Kind != OptimizerKind::Scalar)
    R.TheSchedule = pruneUnprofitableGroups(
        R.Preprocessed, std::move(R.TheSchedule), CG, DefaultLayout,
        Options.Machine);

  R.Final = R.Preprocessed.clone();
  R.Program =
      generateVectorProgram(R.Preprocessed, R.TheSchedule, CG, DefaultLayout);
  R.ScalarSim = simulateScalarKernel(R.Preprocessed, Options.Machine);
  R.VectorSim =
      simulateVectorKernel(R.Preprocessed, R.Program, Options.Machine);

  if (Kind == OptimizerKind::GlobalLayout) {
    // Try the three layout alternatives the paper describes — none,
    // scalar-only (when replication's cache cost would dominate), and
    // full — and keep the cheapest.
    for (bool WithArrays : {false, true}) {
      LayoutOptions LO;
      LO.DatapathBits = Options.Machine.DatapathBits;
      LO.OptimizeScalars = true;
      LO.OptimizeArrays = WithArrays;
      LayoutResult L =
          optimizeDataLayout(R.Preprocessed, R.TheSchedule, LO);
      VectorProgram P = generateVectorProgram(L.TransformedKernel,
                                              R.TheSchedule, CG, L.Scalars);
      KernelSimResult Sim = simulateVectorKernel(
          L.TransformedKernel, P, Options.Machine, L.ReplicatedBytes);
      if (Sim.Cycles < R.VectorSim.Cycles) {
        R.VectorSim = Sim;
        R.Program = std::move(P);
        R.Final = L.TransformedKernel.clone();
        R.Layout = std::move(L);
        R.LayoutApplied = true;
      }
    }
  }

  R.TransformationApplied = true;
  if (Options.CostModelGuard && R.VectorSim.Cycles >= R.ScalarSim.Cycles) {
    // The transformation would slow this block down: keep the scalar code
    // (Section 4.3, final paragraph).
    R.TheSchedule = scalarSchedule(R.Preprocessed);
    R.Final = R.Preprocessed.clone();
    R.Program = generateVectorProgram(R.Preprocessed, R.TheSchedule, CG,
                                      DefaultLayout);
    R.VectorSim =
        simulateVectorKernel(R.Preprocessed, R.Program, Options.Machine);
    R.LayoutApplied = false;
    R.Layout = LayoutResult();
    R.TransformationApplied = false;
  }
  return R;
}

ModulePipelineResult
slp::runPipelineOverModule(const std::vector<Kernel> &Module,
                           OptimizerKind Kind,
                           const PipelineOptions &Options) {
  ModulePipelineResult M;
  for (const Kernel &K : Module) {
    PipelineResult R = runPipeline(K, Kind, Options);
    M.ScalarCycles += R.ScalarSim.Cycles;
    M.OptimizedCycles += R.VectorSim.Cycles;
    M.PerKernel.push_back(std::move(R));
  }
  return M;
}

bool slp::checkEquivalence(const Kernel &Source, const PipelineResult &R,
                           uint64_t Seed, std::string *Error) {
  // Reference: the original kernel under scalar semantics.
  Environment Reference(Source, Seed);
  runKernelScalar(Source, Reference);

  // Candidate: the final (unrolled and possibly layout-transformed) kernel
  // under the emitted vector program. Build its environment from the
  // *original* kernel so the shared symbols start with identical values,
  // then append unroll-clone scalars and replica arrays.
  Environment Candidate(Source, Seed);
  for (unsigned S = static_cast<unsigned>(Source.Scalars.size()),
                E = static_cast<unsigned>(R.Final.Scalars.size());
       S != E; ++S)
    Candidate.addScalarStorage(0);
  for (unsigned A = static_cast<unsigned>(Source.Arrays.size()),
                E = static_cast<unsigned>(R.Final.Arrays.size());
       A != E; ++A)
    Candidate.addArrayStorage(R.Final.Arrays[A].numElements());
  if (R.LayoutApplied)
    initializeReplicas(R.Final, R.Layout, Candidate);

  runVectorProgram(R.Final, R.Program, Candidate);

  if (Candidate.matches(Reference,
                        static_cast<unsigned>(Source.Scalars.size()),
                        static_cast<unsigned>(Source.Arrays.size())))
    return true;
  if (Error) {
    *Error = "vectorized kernel '" + Source.Name + "' (" +
             optimizerName(R.Kind) +
             ") diverged from the scalar reference";
  }
  return false;
}
