//===- slp/Pipeline.cpp ---------------------------------------*- C++ -*-===//

#include "slp/Pipeline.h"

#include "exec/ExecEngine.h"
#include "ir/Printer.h"
#include "slp/Passes.h"
#include "vector/VectorInterp.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <unordered_map>

using namespace slp;

bool slp::defaultVerifyVector() {
  if (const char *Env = std::getenv("SLP_VERIFY_VECTOR"))
    return *Env != '\0' && std::strcmp(Env, "0") != 0;
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

bool slp::defaultVerifyKernel() {
  if (const char *Env = std::getenv("SLP_VERIFY_KERNEL"))
    return *Env != '\0' && std::strcmp(Env, "0") != 0;
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

const char *slp::optimizerName(OptimizerKind Kind) {
  switch (Kind) {
  case OptimizerKind::Scalar:
    return "Scalar";
  case OptimizerKind::Native:
    return "Native";
  case OptimizerKind::LarsenSlp:
    return "SLP";
  case OptimizerKind::Global:
    return "Global";
  case OptimizerKind::GlobalLayout:
    return "Global+Layout";
  }
  return "<invalid>";
}

PipelineResult slp::runPipeline(const Kernel &Source, OptimizerKind Kind,
                                const PipelineOptions &Options) {
  PassPipeline Pipeline = buildCanonicalPipeline(Kind);
  return runPassPipeline(Source, Kind, Options, Pipeline);
}

namespace {

/// Folds \p R into the module totals. Called in kernel order regardless of
/// which worker produced the result, so the aggregate statistics and
/// timing reports are deterministic.
void accumulate(ModulePipelineResult &M, PipelineResult R) {
  M.ScalarCycles += R.ScalarSim.Cycles;
  M.OptimizedCycles += R.VectorSim.Cycles;
  M.Stats.merge(R.Stats);
  M.PassTimings.merge(R.PassTimings);
  M.PerKernel.push_back(std::move(R));
}

unsigned effectiveThreads(unsigned Requested, size_t NumKernels) {
  unsigned T = Requested;
  if (T == 0) {
    T = std::thread::hardware_concurrency();
    if (T == 0)
      T = 1;
  }
  if (NumKernels < T)
    T = static_cast<unsigned>(NumKernels);
  return T == 0 ? 1 : T;
}

} // namespace

ModulePipelineResult
slp::runPipelineOverModule(const std::vector<Kernel> &Module,
                           OptimizerKind Kind,
                           const PipelineOptions &Options) {
  ModulePipelineResult M;

  // Byte-identical kernels compile once: Canonical[I] names the first
  // kernel with the same canonical printing (which includes the name, so
  // only true duplicates fold), and later occurrences copy its result.
  // The copies still carry per-kernel statistics, so every aggregate is
  // identical to a dedup-free run.
  std::vector<size_t> Canonical(Module.size());
  std::vector<size_t> UniqueIdx;
  UniqueIdx.reserve(Module.size());
  {
    std::unordered_map<std::string, size_t> FirstByText;
    FirstByText.reserve(Module.size());
    for (size_t I = 0; I != Module.size(); ++I) {
      auto [It, Inserted] = FirstByText.emplace(printKernel(Module[I]), I);
      Canonical[I] = It->second;
      if (Inserted)
        UniqueIdx.push_back(I);
    }
  }
  const uint64_t DedupHits = Module.size() - UniqueIdx.size();

  std::vector<PipelineResult> Slots(Module.size());
  unsigned Threads = effectiveThreads(Options.Threads, UniqueIdx.size());

  if (Threads <= 1) {
    // Each worker (and the serial path) builds its own pipeline, so pass
    // objects are never shared across threads.
    PassPipeline Pipeline = buildCanonicalPipeline(Kind);
    for (size_t I : UniqueIdx)
      Slots[I] = runPassPipeline(Module[I], Kind, Options, Pipeline);
  } else {
    // Fan the unique kernels out over a small worker pool. Workers claim
    // indices from a shared counter and write into a pre-sized slot
    // vector, so the result order — and, after the in-order merge below,
    // every aggregate — is identical to the serial run's.
    std::atomic<size_t> Next{0};
    auto Worker = [&] {
      PassPipeline Pipeline = buildCanonicalPipeline(Kind);
      for (size_t J = Next.fetch_add(1, std::memory_order_relaxed);
           J < UniqueIdx.size();
           J = Next.fetch_add(1, std::memory_order_relaxed))
        Slots[UniqueIdx[J]] =
            runPassPipeline(Module[UniqueIdx[J]], Kind, Options, Pipeline);
    };

    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  // Fill the duplicate slots by copy while every original is still
  // intact, then merge in kernel order.
  for (size_t I = 0; I != Module.size(); ++I)
    if (Canonical[I] != I)
      Slots[I] = Slots[Canonical[I]];
  for (PipelineResult &R : Slots)
    accumulate(M, std::move(R));
  M.Stats.set("driver.dedup-hits", DedupHits);
  return M;
}

namespace {

/// One scalar-vs-vector comparison at \p Seed using pre-compiled kernels.
/// Environments come from \p Engine's pool and are released on exit.
bool checkEquivalenceCompiled(const Kernel &Source, const PipelineResult &R,
                              const CompiledScalarKernel &Scalar,
                              const CompiledVectorKernel &Vector,
                              uint64_t Seed, ExecEngine &Engine,
                              std::string *Error) {
  EnvironmentPool &Pool = Engine.envPool();
  size_t Mark = Pool.mark();

  // Reference: the original kernel under scalar semantics.
  Environment &Reference = Pool.acquire(Source, Seed);
  Engine.runScalar(Scalar, Reference);

  // Candidate: the final (unrolled and possibly layout-transformed) kernel
  // under the emitted vector program. Build its environment from the
  // *original* kernel so the shared symbols start with identical values,
  // then append unroll-clone scalars and replica arrays.
  Environment &Candidate = Pool.acquire(Source, Seed);
  for (unsigned S = static_cast<unsigned>(Source.Scalars.size()),
                E = static_cast<unsigned>(R.Final.Scalars.size());
       S != E; ++S)
    Candidate.addScalarStorage(0);
  for (unsigned A = static_cast<unsigned>(Source.Arrays.size()),
                E = static_cast<unsigned>(R.Final.Arrays.size());
       A != E; ++A)
    Candidate.addArrayStorage(R.Final.Arrays[A].numElements());
  if (R.LayoutApplied)
    initializeReplicas(R.Final, R.Layout, Candidate);

  Engine.runVector(Vector, Candidate);

  bool Ok = Candidate.matches(Reference,
                              static_cast<unsigned>(Source.Scalars.size()),
                              static_cast<unsigned>(Source.Arrays.size()));
  Pool.releaseTo(Mark);
  if (!Ok && Error) {
    *Error = "vectorized kernel '" + Source.Name + "' (" +
             optimizerName(R.Kind) +
             ") diverged from the scalar reference";
  }
  return Ok;
}

} // namespace

bool slp::checkEquivalence(const Kernel &Source, const PipelineResult &R,
                           uint64_t Seed, std::string *Error,
                           ExecEngine *Engine) {
  if (Engine)
    return checkEquivalenceAcrossSeeds(Source, R, {Seed}, *Engine, Error);
  ExecEngine Local;
  return checkEquivalenceAcrossSeeds(Source, R, {Seed}, Local, Error);
}

bool slp::checkEquivalenceAcrossSeeds(const Kernel &Source,
                                      const PipelineResult &R,
                                      const std::vector<uint64_t> &Seeds,
                                      ExecEngine &Engine,
                                      std::string *Error) {
  // Compile once; every seed then reruns the same tapes.
  CompiledScalarKernel Scalar = Engine.compileScalar(Source);
  CompiledVectorKernel Vector = Engine.compileVector(R.Final, R.Program);
  for (uint64_t Seed : Seeds)
    if (!checkEquivalenceCompiled(Source, R, Scalar, Vector, Seed, Engine,
                                  Error)) {
      if (Error)
        *Error += " (env seed " + std::to_string(Seed) + ")";
      return false;
    }
  return true;
}
