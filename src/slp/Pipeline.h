//===- slp/Pipeline.h - End-to-end SLP optimization pipelines ---*- C++ -*-===//
///
/// \file
/// The whole framework of the paper's Figure 3: pre-processing (loop
/// unrolling + alignment analysis), one of the optimizers (the holistic
/// two-phase "Global" scheme, the Larsen "SLP" baseline, the "Native"
/// streaming vectorizer, or plain scalar), the optional data layout stage
/// ("Global+Layout"), vector code generation, and the cost model guard
/// that skips the transformation when it would not pay off.
///
/// `runPipeline` is a thin wrapper over the pass-manager subsystem
/// (support/PassManager.h + slp/Passes.h): it builds the canonical
/// PassPipeline for the requested OptimizerKind and runs it, so every
/// result carries per-pass wall-clock timings, named statistic counters,
/// and an optimization-remark stream. `runPipelineOverModule` fans the
/// module's kernels out over a worker pool (`PipelineOptions::Threads`)
/// with deterministic result ordering and a deterministic merge of the
/// per-kernel statistics.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_PIPELINE_H
#define SLP_SLP_PIPELINE_H

#include "exec/ExecEngine.h"
#include "layout/Layout.h"
#include "machine/Simulator.h"
#include "slp/Scheduling.h"
#include "support/Diagnostic.h"
#include "support/PassManager.h"
#include "vector/CodeGen.h"

#include <string>

namespace slp {

/// The schemes compared in the paper's evaluation.
enum class OptimizerKind : uint8_t {
  Scalar,       ///< no SLP optimization (the normalization baseline)
  Native,       ///< native compiler SLP support
  LarsenSlp,    ///< Larsen & Amarasinghe PLDI 2000 ("SLP")
  Global,       ///< this paper's superword statement generation
  GlobalLayout, ///< Global plus the data layout stage ("Global+Layout")
};

/// Returns the scheme name used in the paper's figures.
const char *optimizerName(OptimizerKind Kind);

/// Default for PipelineOptions::VerifyVector: the SLP_VERIFY_VECTOR
/// environment variable when set ("0"/"" disable, anything else enables),
/// otherwise on in debug (!NDEBUG) builds and off in release builds.
bool defaultVerifyVector();

/// Default for PipelineOptions::VerifyKernel: the SLP_VERIFY_KERNEL
/// environment variable when set ("0"/"" disable, anything else enables),
/// otherwise on in debug (!NDEBUG) builds and off in release builds.
bool defaultVerifyKernel();

/// Switches for the ablation study (bench_ablation): each disables one
/// mechanism of the holistic framework while keeping the rest intact.
struct HolisticAblation {
  /// Global reuse-driven grouping weights (Section 4.2).
  bool ReuseAwareGrouping = true;
  /// The epsilon-scale packing-cheapness tie-break in grouping.
  bool PackQualityTieBreak = true;
  /// Reuse-aware scheduling and lane ordering (Section 4.3); when off, a
  /// plain topological schedule with ascending lanes is used.
  bool ReuseAwareScheduling = true;
  /// Indirect (permuted) superword reuse in code generation.
  bool PermutedReuse = true;
  /// Register-file-as-cache treatment of loaded packs.
  bool CacheLoadedPacks = true;
  /// Per-superword-statement cost pruning.
  bool GroupPruning = true;
};

/// Pipeline configuration.
struct PipelineOptions {
  MachineModel Machine = MachineModel::intelDunnington();
  /// Skip the transformation when the cost model predicts a slowdown
  /// (Section 4.3's final paragraph).
  bool CostModelGuard = true;
  uint64_t TieBreakSeed = 1;
  /// Which grouping engine runs Section 4.2 (`slpc --grouping-impl=`).
  /// Optimized and Reference produce bit-identical groupings (Reference
  /// exists for differential testing and compile-time benchmarking);
  /// Exact solves each round's pack selection to proven optimality under
  /// ExactBudget (docs/exact-grouping.md).
  GroupingImpl GroupingEngine = GroupingImpl::Optimized;
  /// Exact engine only (`slpc --exact-budget=`): branch-and-bound nodes
  /// allowed per grouping round before that round falls back to the
  /// Optimized greedy selection. Deterministic; 0 always falls back.
  uint64_t ExactBudget = DefaultExactNodeBudget;
  /// Worker threads used by runPipelineOverModule: 1 runs kernels
  /// serially on the calling thread, N > 1 fans them out over a pool of N
  /// workers, and 0 asks for one worker per hardware thread. Results are
  /// deterministic and identical to the serial ones in every case.
  unsigned Threads = 1;
  /// Run the static translation validator (analysis/VectorVerifier.h) over
  /// the emitted vector program as the pipeline's final stage. Defaults on
  /// in debug builds (and CI, which exports SLP_VERIFY_VECTOR=1); see
  /// defaultVerifyVector().
  bool VerifyVector = defaultVerifyVector();
  /// Run the static kernel verifier (analysis/KernelVerifier.h) over the
  /// *source* kernel as the pipeline's first stage: value-range analysis
  /// proves every array reference in bounds (or reports the offending
  /// iteration interval as an SK* diagnostic). Defaults on in debug
  /// builds; see defaultVerifyKernel().
  bool VerifyKernel = defaultVerifyKernel();
  /// Emit the verifiers' lint tiers (VL*/SK1* warnings) too.
  bool VerifyLint = false;
  /// Promote verifier warnings to errors (`slpc --werror`).
  bool VerifyWerror = false;
  /// Sharpen the dependence analysis with exact iteration-range
  /// feasibility and guard-disjointness tests (`dep.range-disproved`);
  /// off reproduces the base GCD + Banerjee tier alone.
  bool RangeSharpenDeps = true;
  /// Execution engine the caller runs kernels/programs under
  /// (`slpc --exec-engine=`, `SLP_EXEC_ENGINE`). The pipeline itself only
  /// transforms; this names the engine its clients (equivalence checks,
  /// benches, the fuzzer) should construct — note
  /// `ExecEngineKind::Native` (how emitted code *executes*) is unrelated
  /// to `OptimizerKind::Native` (which *optimizer scheme* runs).
  ExecEngineKind Exec = defaultExecEngineKind();
  /// Mechanism switches for Global/GlobalLayout (ablation study only).
  HolisticAblation Ablation;
};

/// Everything the pipeline produced for one kernel.
struct PipelineResult {
  OptimizerKind Kind = OptimizerKind::Scalar;
  /// The kernel after pre-processing (unrolling); schedules index into
  /// this kernel's block.
  Kernel Preprocessed;
  /// The kernel the vector program runs on (differs from Preprocessed
  /// only when the layout stage replicated arrays).
  Kernel Final;
  Schedule TheSchedule;
  VectorProgram Program;
  LayoutResult Layout;       ///< meaningful for GlobalLayout
  bool LayoutApplied = false;
  bool TransformationApplied = false;
  KernelSimResult ScalarSim; ///< scalar execution of Preprocessed
  KernelSimResult VectorSim; ///< the emitted program
  /// False only when a hand-built `--passes=` list omitted the simulate
  /// stage; ScalarSim/VectorSim are then meaningless.
  bool Simulated = false;
  /// Diagnostics from the static translation validator (empty when
  /// `Options.VerifyVector` was off or verification passed clean).
  std::vector<Diagnostic> VerifyDiags;
  /// True when the verifier ran and proved the emitted program implements
  /// the kernel.
  bool Verified = false;
  /// Diagnostics from the static kernel verifier (empty when
  /// `Options.VerifyKernel` was off or the kernel verified clean).
  std::vector<Diagnostic> KernelDiags;
  /// True when the kernel verifier ran and proved every array reference
  /// in bounds with no errors.
  bool KernelVerified = false;

  // Instrumentation collected by the pass manager.
  Statistics Stats;            ///< named counters (packs formed, ...)
  std::vector<Remark> Remarks; ///< why the block was(n't) vectorized
  TimingReport PassTimings;    ///< per-pass wall-clock time

  /// Fractional execution-time reduction over scalar code.
  double improvement() const { return timeReduction(ScalarSim, VectorSim); }
};

/// Runs the full pipeline for \p Kind over \p Source.
PipelineResult runPipeline(const Kernel &Source, OptimizerKind Kind,
                           const PipelineOptions &Options);

/// Executes \p Source with scalar semantics and \p R's program with vector
/// semantics from identical initial environments (seeded by \p Seed), and
/// returns true when all original scalars and arrays match exactly.
/// On mismatch \p Error (when non-null) receives a description.
///
/// Execution goes through \p Engine when provided (reusing its compiled
/// tapes' arena and environment pool); otherwise a transient engine of
/// `defaultExecEngineKind()` is used.
bool checkEquivalence(const Kernel &Source, const PipelineResult &R,
                      uint64_t Seed, std::string *Error = nullptr,
                      ExecEngine *Engine = nullptr);

/// `checkEquivalence` over several environment seeds, compiling the
/// kernel and program once. Returns false on the first mismatching seed
/// (reported through \p Error with the seed value when non-null).
bool checkEquivalenceAcrossSeeds(const Kernel &Source,
                                 const PipelineResult &R,
                                 const std::vector<uint64_t> &Seeds,
                                 ExecEngine &Engine,
                                 std::string *Error = nullptr);

/// Result of optimizing a whole module (the paper's input: a set of basic
/// blocks of a program, processed one by one).
struct ModulePipelineResult {
  std::vector<PipelineResult> PerKernel;
  /// Scalar and optimized cycle totals across all kernels.
  double ScalarCycles = 0;
  double OptimizedCycles = 0;
  /// Per-kernel statistics and pass timings, merged in kernel order (so
  /// the merge is identical no matter how many worker threads ran).
  Statistics Stats;
  TimingReport PassTimings;

  /// Whole-module execution-time reduction (kernels weighted by their
  /// scalar time).
  double improvement() const {
    return ScalarCycles > 0 ? 1.0 - OptimizedCycles / ScalarCycles : 0.0;
  }
};

/// Runs the pipeline over every kernel of a module.
ModulePipelineResult runPipelineOverModule(const std::vector<Kernel> &Module,
                                           OptimizerKind Kind,
                                           const PipelineOptions &Options);

} // namespace slp

#endif // SLP_SLP_PIPELINE_H
