//===- slp/Scheduling.cpp -------------------------------------*- C++ -*-===//

#include "slp/Scheduling.h"

#include "ir/Interpreter.h"
#include "slp/Pack.h"

#include <algorithm>
#include <map>
#include <set>

using namespace slp;

Schedule slp::scalarSchedule(const Kernel &K) {
  Schedule S;
  for (unsigned I = 0, E = K.Body.size(); I != E; ++I)
    S.Items.push_back(ScheduleItem{{I}});
  return S;
}

namespace {

/// A pack in the live superword set: ordered lane keys plus the multiset
/// identity they reduce to.
struct LivePack {
  std::string MultisetKey;
  std::vector<std::string> OrderedKeys;
};

class Scheduler {
public:
  Scheduler(const Kernel &K, const DependenceInfo &Deps,
            const GroupingResult &Groups, SchedulingCounters *Counters)
      : K(K), Deps(Deps), Counters(Counters) {
    for (const SimdGroup &G : Groups.Groups)
      Nodes.push_back(G.Members);
    for (unsigned S : Groups.Singles)
      Nodes.push_back({S});
    buildDependenceGraph();
  }

  Schedule run();

private:
  void buildDependenceGraph();
  void refreshLiveKeys();
  unsigned reuseCount(unsigned Node);
  std::vector<unsigned> chooseLaneOrder(unsigned Node) const;
  void updateLiveSet(const std::vector<unsigned> &Lanes);
  void emit(unsigned Node, Schedule &Out);

  /// Ordered operand keys of position \p P of \p Members under lane order
  /// \p Order.
  static std::vector<std::string>
  orderedKeys(const std::vector<std::vector<const Operand *>> &Packs,
              unsigned P, const std::vector<unsigned> &Order) {
    std::vector<std::string> Keys;
    Keys.reserve(Order.size());
    for (unsigned Lane : Order)
      Keys.push_back(Packs[P][Lane]->key());
    return Keys;
  }

  const Kernel &K;
  const DependenceInfo &Deps;
  SchedulingCounters *Counters;
  std::vector<std::vector<unsigned>> Nodes; // members per node (sorted)
  std::vector<std::set<unsigned>> Succ;
  std::vector<unsigned> InDegree;
  std::vector<LivePack> LiveSet;
  /// Sorted-unique multiset keys of LiveSet, rebuilt once per ready sweep
  /// (scratch reused across sweeps — LiveSet only changes on emit).
  std::vector<std::string> LiveKeyScratch;
  /// Lazily cached positionPackKeys per node: node members never change,
  /// so each node's key strings are built at most once per run.
  std::vector<std::vector<std::string>> NodeKeysCache;
  std::vector<char> NodeKeysValid;
};

void Scheduler::buildDependenceGraph() {
  unsigned NumStmts = Deps.numStatements();
  std::vector<int> NodeOf(NumStmts, -1);
  for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E; ++N)
    for (unsigned S : Nodes[N])
      NodeOf[S] = static_cast<int>(N);

  Succ.assign(Nodes.size(), {});
  InDegree.assign(Nodes.size(), 0);
  for (const Dep &D : Deps.dependences()) {
    int A = NodeOf[D.Src], B = NodeOf[D.Dst];
    assert(A >= 0 && B >= 0 && "statement not assigned to a schedule node");
    if (A == B)
      continue;
    if (Succ[static_cast<unsigned>(A)].insert(static_cast<unsigned>(B))
            .second)
      ++InDegree[static_cast<unsigned>(B)];
  }
}

void Scheduler::refreshLiveKeys() {
  LiveKeyScratch.clear();
  for (const LivePack &L : LiveSet)
    LiveKeyScratch.push_back(L.MultisetKey);
  std::sort(LiveKeyScratch.begin(), LiveKeyScratch.end());
  LiveKeyScratch.erase(
      std::unique(LiveKeyScratch.begin(), LiveKeyScratch.end()),
      LiveKeyScratch.end());
}

unsigned Scheduler::reuseCount(unsigned Node) {
  if (NodeKeysValid.empty()) {
    NodeKeysCache.resize(Nodes.size());
    NodeKeysValid.assign(Nodes.size(), 0);
  }
  if (!NodeKeysValid[Node]) {
    NodeKeysCache[Node] = positionPackKeys(K, Nodes[Node]);
    NodeKeysValid[Node] = 1;
  }
  unsigned Count = 0;
  for (const std::string &Key : NodeKeysCache[Node])
    Count += std::binary_search(LiveKeyScratch.begin(), LiveKeyScratch.end(),
                                Key);
  return Count;
}

std::vector<unsigned> Scheduler::chooseLaneOrder(unsigned Node) const {
  const std::vector<unsigned> &Members = Nodes[Node];
  unsigned W = static_cast<unsigned>(Members.size());
  std::vector<std::vector<const Operand *>> Packs = positionPacks(K, Members);
  unsigned NumPos = static_cast<unsigned>(Packs.size());

  // Candidate lane orders (as permutations of member indices 0..W-1).
  std::set<std::vector<unsigned>> CandidateOrders;
  std::vector<unsigned> Identity(W);
  for (unsigned I = 0; I != W; ++I)
    Identity[I] = I;
  CandidateOrders.insert(Identity);

  // Orders that sort an all-array position by ascending address, making a
  // contiguous block loadable/storable in lane order.
  for (unsigned P = 0; P != NumPos; ++P) {
    bool AllArray = true;
    SymbolId Array = 0;
    for (const Operand *O : Packs[P])
      if (!O->isArray()) {
        AllArray = false;
        break;
      } else {
        Array = O->symbol();
      }
    if (!AllArray)
      continue;
    bool SameArray = std::all_of(
        Packs[P].begin(), Packs[P].end(),
        [Array](const Operand *O) { return O->symbol() == Array; });
    if (!SameArray)
      continue;
    // Relative constant offsets; bail out if any difference is symbolic.
    const ArraySymbol &Arr = K.array(Array);
    AffineExpr Base = flattenArrayRef(Arr, Packs[P][0]->subscripts());
    std::vector<std::pair<int64_t, unsigned>> Offsets;
    bool Constant = true;
    for (unsigned L = 0; L != W; ++L) {
      AffineExpr Diff =
          flattenArrayRef(Arr, Packs[P][L]->subscripts()) - Base;
      if (!Diff.isConstant()) {
        Constant = false;
        break;
      }
      Offsets.emplace_back(Diff.constant(), L);
    }
    if (!Constant)
      continue;
    std::stable_sort(Offsets.begin(), Offsets.end());
    std::vector<unsigned> Order;
    for (auto &[Off, Lane] : Offsets)
      Order.push_back(Lane);
    CandidateOrders.insert(Order);
  }

  // Orders that directly reuse a live pack at some position (Figure 11,
  // line 21: only orders with at least one direct reuse are tested).
  for (const LivePack &L : LiveSet) {
    if (L.OrderedKeys.size() != W)
      continue;
    for (unsigned P = 0; P != NumPos; ++P) {
      if (multisetPackKey(Packs[P]) != L.MultisetKey)
        continue;
      // Greedily align members to the live lanes (duplicates allowed).
      std::vector<unsigned> Order;
      std::vector<bool> Used(W, false);
      bool Ok = true;
      for (unsigned Slot = 0; Slot != W && Ok; ++Slot) {
        Ok = false;
        for (unsigned M = 0; M != W; ++M) {
          if (Used[M])
            continue;
          if (Packs[P][M]->key() == L.OrderedKeys[Slot]) {
            Used[M] = true;
            Order.push_back(M);
            Ok = true;
            break;
          }
        }
      }
      if (Ok)
        CandidateOrders.insert(Order);
    }
  }

  // Evaluate: primary = permutation instructions needed for the live
  // reuses, secondary = number of in-order contiguous array positions
  // (cheaper packing), tertiary = lexicographic for determinism.
  std::map<std::string, const LivePack *> LiveByMultiset;
  for (const LivePack &L : LiveSet)
    LiveByMultiset[L.MultisetKey] = &L;

  const std::vector<unsigned> *Best = nullptr;
  int BestPerms = 0, BestContig = 0;
  for (const std::vector<unsigned> &Order : CandidateOrders) {
    int Perms = 0, Contig = 0;
    for (unsigned P = 0; P != NumPos; ++P) {
      std::string MKey = multisetPackKey(Packs[P]);
      auto It = LiveByMultiset.find(MKey);
      if (It != LiveByMultiset.end()) {
        if (orderedKeys(Packs, P, Order) != It->second->OrderedKeys)
          ++Perms; // reusable, but needs one register permutation
        continue;
      }
      // Not live: count whether this order makes the pack a contiguous
      // ascending block (cheap to pack from memory).
      bool Ascending = true;
      for (unsigned L = 1; L != W && Ascending; ++L) {
        const Operand *Prev = Packs[P][Order[L - 1]];
        const Operand *Cur = Packs[P][Order[L]];
        if (!Prev->isArray() || !Cur->isArray() ||
            Prev->symbol() != Cur->symbol()) {
          Ascending = false;
          break;
        }
        const ArraySymbol &Arr = K.array(Prev->symbol());
        AffineExpr Diff = flattenArrayRef(Arr, Cur->subscripts()) -
                          flattenArrayRef(Arr, Prev->subscripts());
        Ascending = Diff.isConstant() && Diff.constant() == 1;
      }
      if (Ascending)
        ++Contig;
    }
    if (!Best || Perms < BestPerms ||
        (Perms == BestPerms && Contig > BestContig)) {
      Best = &Order;
      BestPerms = Perms;
      BestContig = Contig;
    }
  }
  assert(Best && "at least the identity order must be present");

  std::vector<unsigned> Lanes;
  Lanes.reserve(W);
  for (unsigned M : *Best)
    Lanes.push_back(Members[M]);
  return Lanes;
}

void Scheduler::updateLiveSet(const std::vector<unsigned> &Lanes) {
  std::vector<std::vector<const Operand *>> Packs = positionPacks(K, Lanes);

  // Invalidate packs containing a value overwritten by this statement
  // (the lhs lanes). Key-exact matching is sufficient for the heuristic;
  // the code generator performs conservative alias-based invalidation.
  std::set<std::string> Written;
  for (const Operand *O : Packs[0])
    Written.insert(O->key());
  std::erase_if(LiveSet, [&Written](const LivePack &L) {
    for (const std::string &Key : L.OrderedKeys)
      if (Written.count(Key))
        return true;
    return false;
  });

  for (unsigned P = 0, E = static_cast<unsigned>(Packs.size()); P != E; ++P) {
    LivePack New;
    New.MultisetKey = multisetPackKey(Packs[P]);
    for (const Operand *O : Packs[P])
      New.OrderedKeys.push_back(O->key());
    // Replace any pack accessing the same data (Figure 11, lines 28-32).
    std::erase_if(LiveSet, [&New](const LivePack &L) {
      return L.MultisetKey == New.MultisetKey;
    });
    LiveSet.push_back(std::move(New));
  }
}

void Scheduler::emit(unsigned Node, Schedule &Out) {
  if (Nodes[Node].size() == 1) {
    Out.Items.push_back(ScheduleItem{Nodes[Node]});
    // A scalar write invalidates live packs holding the old value.
    const Statement &S = K.Body.statement(Nodes[Node][0]);
    std::string WrittenKey = S.lhs().key();
    std::erase_if(LiveSet, [&WrittenKey](const LivePack &L) {
      for (const std::string &Key : L.OrderedKeys)
        if (Key == WrittenKey)
          return true;
      return false;
    });
    return;
  }
  std::vector<unsigned> Lanes = chooseLaneOrder(Node);
  updateLiveSet(Lanes);
  Out.Items.push_back(ScheduleItem{std::move(Lanes)});
}

Schedule Scheduler::run() {
  Schedule Out;
  unsigned NumNodes = static_cast<unsigned>(Nodes.size());
  std::vector<bool> Emitted(NumNodes, false);
  std::vector<unsigned> InDeg = InDegree;
  unsigned Remaining = NumNodes;

  auto ReleaseSuccessors = [&](unsigned N) {
    for (unsigned S : Succ[N]) {
      assert(InDeg[S] > 0 && "in-degree bookkeeping broken");
      --InDeg[S];
    }
  };

  while (Remaining != 0) {
    // Emit every ready single first, in original statement order; their
    // placement is refined later by ordinary instruction scheduling and
    // does not affect superword reuse (Section 4.3).
    bool EmittedSingle = true;
    while (EmittedSingle) {
      EmittedSingle = false;
      for (unsigned N = 0; N != NumNodes; ++N) {
        if (Emitted[N] || InDeg[N] != 0 || Nodes[N].size() != 1)
          continue;
        emit(N, Out);
        Emitted[N] = true;
        --Remaining;
        ReleaseSuccessors(N);
        EmittedSingle = true;
      }
    }
    if (Remaining == 0)
      break;

    // Among ready superword statements pick the one with the most reuses
    // against the live superword set (Figure 11, lines 15-18). The live
    // set is frozen during the sweep, so its key index is built once.
    refreshLiveKeys();
    if (Counters)
      ++Counters->ReadyScans;
    unsigned BestNode = NumNodes;
    unsigned BestReuse = 0;
    for (unsigned N = 0; N != NumNodes; ++N) {
      if (Emitted[N] || InDeg[N] != 0 || Nodes[N].size() < 2)
        continue;
      unsigned R = reuseCount(N);
      if (BestNode == NumNodes || R > BestReuse ||
          (R == BestReuse && Nodes[N].front() < Nodes[BestNode].front())) {
        BestNode = N;
        BestReuse = R;
      }
    }
    assert(BestNode != NumNodes &&
           "acyclic grouped dependence graph must always have a ready node");
    if (Counters)
      Counters->ReuseHits += BestReuse;
    emit(BestNode, Out);
    Emitted[BestNode] = true;
    --Remaining;
    ReleaseSuccessors(BestNode);
  }
  return Out;
}

} // namespace

Schedule slp::scheduleGroups(const Kernel &K, const DependenceInfo &Deps,
                             const GroupingResult &Groups,
                             SchedulingCounters *Counters) {
  Scheduler S(K, Deps, Groups, Counters);
  return S.run();
}

Schedule slp::scheduleGroupsNaive(const Kernel &K,
                                  const DependenceInfo &Deps,
                                  const GroupingResult &Groups) {
  // Contract groups, then repeatedly emit the ready node containing the
  // smallest original statement id; lane order is ascending.
  std::vector<std::vector<unsigned>> Nodes;
  for (const SimdGroup &G : Groups.Groups)
    Nodes.push_back(G.Members);
  for (unsigned S : Groups.Singles)
    Nodes.push_back({S});

  unsigned NumStmts = Deps.numStatements();
  std::vector<int> NodeOf(NumStmts, -1);
  for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E; ++N)
    for (unsigned S : Nodes[N])
      NodeOf[S] = static_cast<int>(N);

  std::vector<std::set<unsigned>> Succ(Nodes.size());
  std::vector<unsigned> InDeg(Nodes.size(), 0);
  for (const Dep &D : Deps.dependences()) {
    int A = NodeOf[D.Src], B = NodeOf[D.Dst];
    if (A != B &&
        Succ[static_cast<unsigned>(A)].insert(static_cast<unsigned>(B))
            .second)
      ++InDeg[static_cast<unsigned>(B)];
  }

  Schedule Out;
  std::vector<bool> Emitted(Nodes.size(), false);
  unsigned Remaining = static_cast<unsigned>(Nodes.size());
  while (Remaining != 0) {
    unsigned Best = static_cast<unsigned>(Nodes.size());
    for (unsigned N = 0, E = static_cast<unsigned>(Nodes.size()); N != E;
         ++N) {
      if (Emitted[N] || InDeg[N] != 0)
        continue;
      if (Best == Nodes.size() || Nodes[N].front() < Nodes[Best].front())
        Best = N;
    }
    assert(Best != Nodes.size() &&
           "grouping guarantees an acyclic grouped dependence graph");
    Out.Items.push_back(ScheduleItem{Nodes[Best]});
    Emitted[Best] = true;
    --Remaining;
    for (unsigned S : Succ[Best])
      --InDeg[S];
  }
  (void)K;
  return Out;
}
