//===- slp/Pack.cpp -------------------------------------------*- C++ -*-===//

#include "slp/Pack.h"

#include <algorithm>

using namespace slp;

std::string slp::orderedPackKey(const std::vector<const Operand *> &Lanes) {
  std::string Key;
  for (const Operand *O : Lanes) {
    Key += O->key();
    Key += ';';
  }
  return Key;
}

std::string slp::multisetPackKey(const std::vector<const Operand *> &Lanes) {
  std::vector<std::string> Keys;
  Keys.reserve(Lanes.size());
  for (const Operand *O : Lanes)
    Keys.push_back(O->key());
  std::sort(Keys.begin(), Keys.end());
  std::string Key;
  for (const std::string &K : Keys) {
    Key += K;
    Key += ';';
  }
  return Key;
}

std::vector<std::vector<const Operand *>>
slp::positionPacks(const Kernel &K, const std::vector<unsigned> &Members) {
  assert(!Members.empty() && "group requires members");
  std::vector<std::vector<const Operand *>> Packs;
  for (unsigned M : Members) {
    std::vector<const Operand *> Positions =
        K.Body.statement(M).operandPositions();
    if (Packs.empty())
      Packs.resize(Positions.size());
    assert(Packs.size() == Positions.size() &&
           "grouped statements must be isomorphic");
    for (unsigned P = 0, E = static_cast<unsigned>(Positions.size()); P != E;
         ++P)
      Packs[P].push_back(Positions[P]);
  }
  return Packs;
}

std::vector<std::string>
slp::positionPackKeys(const Kernel &K, const std::vector<unsigned> &Members) {
  std::vector<std::string> Keys;
  for (const auto &Pack : positionPacks(K, Members))
    Keys.push_back(multisetPackKey(Pack));
  return Keys;
}

bool slp::isDegeneratePack(const std::vector<const Operand *> &Lanes) {
  bool AllConst = true;
  bool AllSame = true;
  for (const Operand *O : Lanes) {
    if (!O->isConstant())
      AllConst = false;
    if (!(*O == *Lanes.front()))
      AllSame = false;
  }
  return AllConst || AllSame;
}
