//===- slp/Grouping.cpp ---------------------------------------*- C++ -*-===//
//
// Three engines implement the Figure 10 algorithm:
//
//  * GroupingImpl::Reference is the direct transcription: a dense
//    candidate-pair conflict matrix and a from-scratch auxiliary graph
//    (Figure 6) for every live candidate after every decision. It is
//    retained for differential testing and as the compile-time baseline of
//    bench_grouping_scale, and is O(rounds * decisions * candidates *
//    aux-graph) — roughly O(n^4) on wide blocks.
//
//  * GroupingImpl::Optimized produces bit-identical groupings faster:
//    conflict rows are 64-bit bitsets built from the shared-item inverted
//    index plus a per-round memo of item-pair dependences (each unordered
//    item pair is scanned once, not once per direction per candidate
//    pair); candidate weights are maintained incrementally — the decided-
//    side terms of the reuse average are closed-form counters and the
//    expensive auxiliary-graph term is cached per candidate and
//    recomputed only when a candidate sharing one of its pack keys is
//    committed, pruned, or discarded (dirty-set propagation); all
//    auxiliary-graph state lives in reusable scratch arenas; and the
//    greedy conflict elimination of Figure 7 pops nodes from a lazy
//    max-heap instead of rescanning every node per removal.
//
//  * GroupingImpl::Exact (docs/exact-grouping.md) replaces the greedy
//    per-round selection with a goSLP-style branch-and-bound over the
//    Optimized engine's candidate list and conflict bitsets: it maximizes
//    the *total* selection weight (selectionWeightOf) under a
//    deterministic node budget, falling back to the greedy selection for
//    any round that exhausts it.
//
// The incremental weight uses the identity (all terms integral, so the
// floating-point result is exactly the reference's):
//
//   Reuse(c)        = GlobalDecided + Survivors(c) + TotalKeys(c) - NewKeys(c)
//   NumPackTypes(c) = NumDecidedKeys + NewKeys(c)
//
// where GlobalDecided = sum over decided pack keys k of (DecidedCount[k]-1),
// NumDecidedKeys = number of distinct decided keys, TotalKeys(c) =
// |c.PackKeyIds|, NewKeys(c) = c's distinct keys not yet decided, and
// Survivors(c) = auxiliary-graph nodes surviving greedy elimination.
// Survivors(c) depends only on the alive-set of candidates sharing a pack
// key with c (the conflict structure is fixed within a round), which is
// exactly the dirty-set invariant.
//
//===----------------------------------------------------------------------===//

#include "slp/Grouping.h"

#include "analysis/Alignment.h"
#include "analysis/Isomorphism.h"
#include "ir/Interpreter.h"
#include "slp/Pack.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace slp;

const char *slp::groupingImplName(GroupingImpl Impl) {
  switch (Impl) {
  case GroupingImpl::Optimized:
    return "optimized";
  case GroupingImpl::Reference:
    return "reference";
  case GroupingImpl::Exact:
    return "exact";
  }
  return "<invalid>";
}

namespace {

/// An item of one grouping round: a single statement in round one, a
/// previously decided group in later rounds.
struct Item {
  std::vector<unsigned> Stmts; // sorted original statement ids
};

/// A candidate group: the union of two items.
struct Candidate {
  unsigned ItemA;
  unsigned ItemB;
  std::vector<unsigned> Stmts;  // merged, sorted
  /// Interned multiset key per non-degenerate operand position
  /// (broadcasts and constants contribute no meaningful reuse; see
  /// isDegeneratePack). Interning keeps the weight computation integer-
  /// only, which matters at wide datapaths where blocks have hundreds of
  /// statements.
  std::vector<unsigned> PackKeyIds;
  /// Cheapness of materializing this candidate's packs (secondary weight).
  double PackQuality = 0;
  bool Alive = true;
};

/// Scores how cheaply the packs of \p Stmts can be brought into vector
/// registers if no reuse materializes: 1 when every position is a
/// contiguous block (in some lane order), a broadcast, or constants; 0
/// when every position needs an element-wise gather. The paper's weight is
/// reuse only; this score is used as an epsilon-scale tie-break so that
/// among equally reusable groupings the memory-coherent one wins (goal 3
/// of Section 3).
double packQualityOf(const Kernel &K,
                     const std::vector<std::vector<const Operand *>> &Packs) {
  if (Packs.empty())
    return 0;
  double Total = 0;
  for (const auto &Pack : Packs) {
    if (isDegeneratePack(Pack)) {
      Total += 1.0;
      continue;
    }
    bool AllArray = true;
    for (const Operand *O : Pack)
      if (!O->isArray())
        AllArray = false;
    if (!AllArray)
      continue; // mixed or scalar pack: gather unless layout helps later
    SymbolId Array = Pack.front()->symbol();
    bool SameArray = true;
    for (const Operand *O : Pack)
      if (O->symbol() != Array)
        SameArray = false;
    if (!SameArray)
      continue;
    // Constant pairwise offsets forming a consecutive run => one vector
    // load in some lane order.
    const ArraySymbol &Arr = K.array(Array);
    AffineExpr Base = flattenArrayRef(Arr, Pack.front()->subscripts());
    std::vector<int64_t> Offs;
    bool Constant = true;
    for (const Operand *O : Pack) {
      AffineExpr Diff = flattenArrayRef(Arr, O->subscripts()) - Base;
      if (!Diff.isConstant()) {
        Constant = false;
        break;
      }
      Offs.push_back(Diff.constant());
    }
    if (!Constant)
      continue;
    std::sort(Offs.begin(), Offs.end());
    bool Consecutive = true;
    for (unsigned I = 1; I != Offs.size(); ++I)
      if (Offs[I] != Offs[I - 1] + 1)
        Consecutive = false;
    Total += Consecutive ? 1.0 : 0.25; // constant-strided beats irregular
  }
  return Total / static_cast<double>(Packs.size());
}

/// Step 1 of Figure 10, shared by both engines so the candidate list (and
/// the pack-key interning order) is identical by construction. The
/// isomorphism and independence predicates are pluggable: the reference
/// engine re-evaluates them from scratch, the optimized engine serves them
/// from caches.
template <typename IsoFn, typename IndepFn>
void identifyCandidateGroups(const Kernel &K, const GroupingOptions &Options,
                             const std::vector<Item> &Items, IsoFn &&Isomorphic,
                             IndepFn &&Independent,
                             std::map<std::string, unsigned> &KeyIds,
                             std::vector<Candidate> &Candidates) {
  unsigned N = static_cast<unsigned>(Items.size());
  for (unsigned A = 0; A != N; ++A) {
    for (unsigned B = A + 1; B != N; ++B) {
      if (!Isomorphic(A, B))
        continue;
      // Constraint 4: the merged group must fit the datapath.
      const Statement &SA = K.Body.statement(Items[A].Stmts.front());
      unsigned Lanes =
          lanesFor(statementElementType(K, SA), Options.DatapathBits);
      if (Items[A].Stmts.size() + Items[B].Stmts.size() > Lanes)
        continue;
      // Constraint 1: no dependence between any two member statements.
      if (!Independent(A, B))
        continue;
      Candidate C;
      C.ItemA = A;
      C.ItemB = B;
      C.Stmts = Items[A].Stmts;
      C.Stmts.insert(C.Stmts.end(), Items[B].Stmts.begin(),
                     Items[B].Stmts.end());
      std::sort(C.Stmts.begin(), C.Stmts.end());
      std::vector<std::vector<const Operand *>> Packs =
          positionPacks(K, C.Stmts);
      for (const auto &Pack : Packs) {
        if (isDegeneratePack(Pack))
          continue;
        auto [It, Inserted] = KeyIds.try_emplace(
            multisetPackKey(Pack),
            static_cast<unsigned>(KeyIds.size()));
        C.PackKeyIds.push_back(It->second);
      }
      C.PackQuality = packQualityOf(K, Packs);
      Candidates.push_back(std::move(C));
    }
  }
}

/// Would accepting candidate \p C keep the grouped dependence graph
/// acyclic? Contracts each decided group (and C) to one node; singles stay
/// single. The schedule of Section 4.3 exists iff the contracted graph is
/// a DAG. Shared by both engines.
bool keepsGroupedDepsAcyclic(const DependenceInfo &Deps,
                             const std::vector<Item> &Items,
                             const std::vector<bool> &ItemTaken,
                             const std::vector<Candidate> &Candidates,
                             const std::vector<unsigned> &DecidedCandidates,
                             const Candidate &C) {
  unsigned NumStmts = Deps.numStatements();
  std::vector<int> NodeOf(NumStmts, -1);
  std::vector<std::vector<unsigned>> NodeStmts;
  auto AddGroup = [&](const std::vector<unsigned> &Stmts) {
    int Node = static_cast<int>(NodeStmts.size());
    NodeStmts.push_back(Stmts);
    for (unsigned S : Stmts)
      NodeOf[S] = Node;
  };
  for (unsigned DC : DecidedCandidates)
    AddGroup(Candidates[DC].Stmts);
  AddGroup(C.Stmts);
  // Items not yet merged this round may themselves be groups from earlier
  // rounds; keep them contracted as well.
  for (unsigned I = 0, E = static_cast<unsigned>(Items.size()); I != E; ++I) {
    if (ItemTaken[I])
      continue;
    if (NodeOf[Items[I].Stmts.front()] >= 0)
      continue; // part of C
    AddGroup(Items[I].Stmts);
  }

  unsigned NumNodes = static_cast<unsigned>(NodeStmts.size());
  std::vector<std::set<unsigned>> Succ(NumNodes);
  for (const Dep &D : Deps.dependences()) {
    int A = NodeOf[D.Src], B = NodeOf[D.Dst];
    if (A >= 0 && B >= 0 && A != B)
      Succ[static_cast<unsigned>(A)].insert(static_cast<unsigned>(B));
  }

  // Kahn's algorithm.
  std::vector<unsigned> InDegree(NumNodes, 0);
  for (unsigned N = 0; N != NumNodes; ++N)
    for (unsigned S : Succ[N])
      ++InDegree[S];
  std::vector<unsigned> Work;
  for (unsigned N = 0; N != NumNodes; ++N)
    if (InDegree[N] == 0)
      Work.push_back(N);
  unsigned Visited = 0;
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    ++Visited;
    for (unsigned S : Succ[N])
      if (--InDegree[S] == 0)
        Work.push_back(S);
  }
  return Visited == NumNodes;
}

/// Total weight of a committed selection, the quantity the Exact engine
/// maximizes per round and the common currency of the heuristic-regret
/// table (bench_grouping_scale --regret): each pack-key occurrence of a
/// selected candidate contributes 1 when its key was already present
/// (i.e. the total superword reuse the selection creates, the sum the
/// paper's per-decision weight averages), plus the epsilon-scaled pack
/// quality of every selected candidate. Reported identically for all
/// three engines via GroupingTelemetry::SelectionWeight.
double selectionWeightOf(const GroupingOptions &Options,
                         const std::vector<Candidate> &Candidates,
                         const std::vector<unsigned> &Selected,
                         size_t NumKeys) {
  std::vector<unsigned> Count(NumKeys, 0);
  double W = 0;
  for (unsigned CI : Selected) {
    const Candidate &C = Candidates[CI];
    if (Options.UseReuseWeight)
      for (unsigned Key : C.PackKeyIds)
        if (Count[Key]++ > 0)
          W += 1.0;
    W += Options.PackQualityEpsilon * C.PackQuality;
  }
  return W;
}

/// What one exact round produced (file-local; the public testing hook
/// repackages this as ExactRoundResult).
struct ExactOutcome {
  std::vector<std::pair<unsigned, unsigned>> Merges; // item-index pairs
  double Weight = 0;
  bool Exhausted = false;
};

//===----------------------------------------------------------------------===//
// Reference engine (the paper's transcription, kept as the baseline)
//===----------------------------------------------------------------------===//

/// One round of the basic grouping algorithm over a set of items.
class GroupingRound {
public:
  GroupingRound(const Kernel &K, const DependenceInfo &Deps,
                const GroupingOptions &Options, std::vector<Item> Items,
                GroupingTelemetry *T)
      : K(K), Deps(Deps), Options(Options), Items(std::move(Items)),
        TieBreaker(Options.TieBreakSeed), T(T) {}

  /// Runs steps 1-4 of Figure 10; returns the decided merges as item-index
  /// pairs in decision order.
  std::vector<std::pair<unsigned, unsigned>> run();

private:
  void identifyCandidates();                     // step 1
  bool conflict(const Candidate &A, const Candidate &B) const; // step 2
  void buildConflictMatrix();
  bool conflictIdx(unsigned A, unsigned B) const {
    return Conflicts[A * Candidates.size() + B] != 0;
  }
  double weightOf(unsigned CandIdx) const;       // step 3

  bool dependsOn(const std::vector<unsigned> &From,
                 const std::vector<unsigned> &To) const;

  const Kernel &K;
  const DependenceInfo &Deps;
  const GroupingOptions &Options;
  std::vector<Item> Items;
  std::vector<Candidate> Candidates;
  std::map<std::string, unsigned> KeyIds; // pack-key interning table
  /// For each interned key, the (candidate, position) pack nodes bearing
  /// it — the variable-pack conflicting graph in inverted-index form, so
  /// the auxiliary-graph construction touches only matching nodes.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> KeyPostings;
  std::vector<char> Conflicts; // dense candidate-pair conflict matrix
  std::vector<unsigned> DecidedCandidates;
  std::vector<bool> ItemTaken;
  mutable Rng TieBreaker;
  GroupingTelemetry *T;
};

bool GroupingRound::dependsOn(const std::vector<unsigned> &From,
                              const std::vector<unsigned> &To) const {
  for (unsigned S : From)
    for (unsigned T : To)
      if (S < T && Deps.depends(S, T))
        return true;
  return false;
}

void GroupingRound::identifyCandidates() {
  identifyCandidateGroups(
      K, Options, Items,
      [this](unsigned A, unsigned B) {
        return areIsomorphic(K, K.Body.statement(Items[A].Stmts.front()),
                             K.Body.statement(Items[B].Stmts.front()));
      },
      [this](unsigned A, unsigned B) {
        for (unsigned P : Items[A].Stmts)
          for (unsigned Q : Items[B].Stmts)
            if (!Deps.independent(P, Q))
              return false;
        return true;
      },
      KeyIds, Candidates);
}

bool GroupingRound::conflict(const Candidate &A, const Candidate &B) const {
  // Shared item (hence shared statements).
  if (A.ItemA == B.ItemA || A.ItemA == B.ItemB || A.ItemB == B.ItemA ||
      A.ItemB == B.ItemB)
    return true;
  // Dependence cycle between the two would-be groups.
  return dependsOn(A.Stmts, B.Stmts) && dependsOn(B.Stmts, A.Stmts);
}

void GroupingRound::buildConflictMatrix() {
  KeyPostings.assign(KeyIds.size(), {});
  for (unsigned CI = 0, CE = static_cast<unsigned>(Candidates.size());
       CI != CE; ++CI) {
    const std::vector<unsigned> &Keys = Candidates[CI].PackKeyIds;
    for (unsigned P = 0, PE = static_cast<unsigned>(Keys.size()); P != PE;
         ++P)
      KeyPostings[Keys[P]].push_back({CI, P});
  }
  unsigned NC = static_cast<unsigned>(Candidates.size());
  Conflicts.assign(static_cast<size_t>(NC) * NC, 0);
  for (unsigned A = 0; A != NC; ++A) {
    for (unsigned B = A + 1; B != NC; ++B) {
      if (conflict(Candidates[A], Candidates[B])) {
        Conflicts[A * NC + B] = 1;
        Conflicts[B * NC + A] = 1;
      }
    }
  }
}

double GroupingRound::weightOf(unsigned CandIdx) const {
  const Candidate &Cand = Candidates[CandIdx];
  if (T)
    ++T->WeightComputes;

  // Auxiliary graph (Figure 6): every pack node of a live, non-conflicting
  // candidate whose content matches one of Cand's packs. A node is the pair
  // (candidate index, position index).
  struct AgNode {
    unsigned Cand;
    unsigned Pos;
  };
  std::vector<AgNode> Nodes;
  std::vector<char> KeySeen(KeyIds.size(), 0);
  for (unsigned Key : Cand.PackKeyIds) {
    if (KeySeen[Key])
      continue; // duplicate position content: postings already swept
    KeySeen[Key] = 1;
    for (auto [CI, P] : KeyPostings[Key]) {
      if (CI == CandIdx || !Candidates[CI].Alive)
        continue;
      if (conflictIdx(CI, CandIdx))
        continue;
      Nodes.push_back(AgNode{CI, P});
    }
  }

  // Edges mirror the variable-pack conflicting graph restricted to the
  // extracted nodes: packs of conflicting candidates cannot coexist.
  unsigned NN = static_cast<unsigned>(Nodes.size());
  if (T)
    T->AuxNodes += NN;
  std::vector<std::vector<unsigned>> Adj(NN);
  std::vector<unsigned> Degree(NN, 0);
  for (unsigned I = 0; I != NN; ++I) {
    for (unsigned J = I + 1; J != NN; ++J) {
      if (Nodes[I].Cand == Nodes[J].Cand)
        continue;
      if (conflictIdx(Nodes[I].Cand, Nodes[J].Cand)) {
        Adj[I].push_back(J);
        Adj[J].push_back(I);
        ++Degree[I];
        ++Degree[J];
      }
    }
  }

  // Greedy conflict elimination (Figure 7): repeatedly drop the node with
  // the highest remaining degree until the graph is edgeless.
  std::vector<bool> Removed(NN, false);
  while (true) {
    unsigned Best = NN;
    unsigned BestDegree = 0;
    for (unsigned I = 0; I != NN; ++I)
      if (!Removed[I] && Degree[I] > BestDegree) {
        Best = I;
        BestDegree = Degree[I];
      }
    if (Best == NN)
      break; // no edges remain
    Removed[Best] = true;
    for (unsigned J : Adj[Best])
      if (!Removed[J]) {
        assert(Degree[J] > 0 && "degree bookkeeping broken");
        --Degree[J];
      }
    Degree[Best] = 0;
  }

  // Average reuse over the pack types of the decided groups plus this
  // candidate (Figure 10, lines 32-38).
  std::vector<unsigned> Count(KeyIds.size(), 0);
  std::vector<unsigned> Touched;
  auto Bump = [&Count, &Touched](unsigned Key) {
    if (Count[Key]++ == 0)
      Touched.push_back(Key);
  };
  for (unsigned Key : Cand.PackKeyIds)
    Bump(Key);
  for (unsigned DC : DecidedCandidates)
    for (unsigned Key : Candidates[DC].PackKeyIds)
      Bump(Key);
  unsigned NumPackTypes = static_cast<unsigned>(Touched.size());
  for (unsigned I = 0; I != NN; ++I) {
    if (Removed[I])
      continue;
    unsigned Key = Candidates[Nodes[I].Cand].PackKeyIds[Nodes[I].Pos];
    if (Count[Key] > 0)
      ++Count[Key];
  }
  double Reuse = 0;
  for (unsigned Key : Touched)
    Reuse += static_cast<double>(Count[Key] - 1);
  double Avg = NumPackTypes == 0
                   ? 0
                   : Reuse / static_cast<double>(NumPackTypes);
  if (!Options.UseReuseWeight)
    Avg = 0; // ablation: grouping driven by packing cheapness alone
  // Secondary criterion: among (nearly) equally reusable candidates,
  // prefer the one whose packs are cheap to materialize.
  return Avg + Options.PackQualityEpsilon * Cand.PackQuality;
}

std::vector<std::pair<unsigned, unsigned>> GroupingRound::run() {
  identifyCandidates();
  if (T)
    T->Candidates += Candidates.size();
  buildConflictMatrix();
  ItemTaken.assign(Items.size(), false);

  std::vector<std::pair<unsigned, unsigned>> Merges;
  while (true) {
    // Recompute the weights of all live candidates (Figure 10 recalculates
    // retained edge weights after every decision).
    double BestWeight = -1;
    std::vector<unsigned> BestSet;
    for (unsigned CI = 0, CE = static_cast<unsigned>(Candidates.size());
         CI != CE; ++CI) {
      if (!Candidates[CI].Alive)
        continue;
      double W = weightOf(CI);
      if (W > BestWeight + 1e-12) {
        BestWeight = W;
        BestSet.assign(1, CI);
      } else if (W >= BestWeight - 1e-12) {
        BestSet.push_back(CI);
      }
    }
    if (BestSet.empty())
      break;
    unsigned Chosen =
        BestSet[BestSet.size() == 1
                    ? 0
                    : static_cast<size_t>(TieBreaker.nextBelow(
                          BestSet.size()))];

    if (!keepsGroupedDepsAcyclic(Deps, Items, ItemTaken, Candidates,
                                 DecidedCandidates, Candidates[Chosen])) {
      // Accepting this group would make the grouped dependence graph
      // cyclic; it can never be scheduled, so discard it.
      Candidates[Chosen].Alive = false;
      continue;
    }

    // Commit the decision and prune conflicting candidates from both
    // graphs (Figures 8 and 9).
    DecidedCandidates.push_back(Chosen);
    Candidates[Chosen].Alive = false;
    ItemTaken[Candidates[Chosen].ItemA] = true;
    ItemTaken[Candidates[Chosen].ItemB] = true;
    Merges.emplace_back(Candidates[Chosen].ItemA, Candidates[Chosen].ItemB);
    if (T)
      ++T->Commits;
    for (unsigned CI = 0, CE = static_cast<unsigned>(Candidates.size());
         CI != CE; ++CI) {
      if (Candidates[CI].Alive && conflictIdx(CI, Chosen))
        Candidates[CI].Alive = false;
    }
  }
  if (T)
    T->SelectionWeight +=
        selectionWeightOf(Options, Candidates, DecidedCandidates,
                          KeyIds.size());
  return Merges;
}

//===----------------------------------------------------------------------===//
// Optimized engine
//===----------------------------------------------------------------------===//

/// State that outlives one round: the statement-pair isomorphism memo
/// (statement shapes never change across the widen rounds of Section
/// 4.2.2, so classifying them once covers every round) and the scratch
/// arenas reused by every auxiliary-graph computation.
struct GroupingScratch {
  explicit GroupingScratch(unsigned NumStmts) : NumStmts(NumStmts) {}

  unsigned NumStmts;

  /// Lazy memo of areIsomorphic over ordered statement pairs:
  /// 0 = unknown, 1 = no, 2 = yes.
  std::vector<uint8_t> IsoState;

  bool isomorphic(const Kernel &K, unsigned SA, unsigned SB) {
    if (IsoState.empty())
      IsoState.assign(static_cast<size_t>(NumStmts) * NumStmts, 0);
    uint8_t &State = IsoState[static_cast<size_t>(SA) * NumStmts + SB];
    if (State == 0)
      State = areIsomorphic(K, K.Body.statement(SA), K.Body.statement(SB))
                  ? 2
                  : 1;
    return State == 2;
  }

  // --- auxiliary-graph arenas (hot: one use per weight recompute) -------
  std::vector<unsigned> NodeCand;             ///< node -> candidate index
  std::vector<std::vector<unsigned>> Adj;     ///< adjacency, cleared per use
  std::vector<unsigned> Degree;
  std::vector<char> Removed;
  std::vector<std::pair<unsigned, unsigned>> Heap; ///< (degree, node)
  std::vector<unsigned> KeyStamp;             ///< epoch-based key dedup
  unsigned KeyEpoch = 0;

  // --- per-round buffers (sized once per round, reused across rounds) ---
  std::vector<char> ItemFwd;                  ///< item-pair dependence memo
  std::vector<std::vector<unsigned>> ItemCands; ///< item -> candidates
  std::vector<uint64_t> ConflictRows;         ///< bitset rows, NC x RowWords
  std::vector<uint64_t> OutRow, InRow;        ///< scratch candidate bitsets
};

class OptimizedRound {
public:
  OptimizedRound(const Kernel &K, const DependenceInfo &Deps,
                 const GroupingOptions &Options,
                 const std::vector<Item> &Items, GroupingScratch &Scratch,
                 GroupingTelemetry *T)
      : K(K), Deps(Deps), Options(Options), Items(Items), Scratch(Scratch),
        TieBreaker(Options.TieBreakSeed), T(T) {}

  std::vector<std::pair<unsigned, unsigned>> run() {
    prepare();
    return runGreedy();
  }

  /// Exact per-round selection: branch-and-bound over this engine's
  /// candidate list and conflict bitsets, maximizing the total selection
  /// weight (selectionWeightOf). Consumes no RNG and leaves the greedy
  /// state untouched, so runGreedyFallback() after an exhausted search is
  /// bit-identical to a plain run().
  ExactOutcome runExact(uint64_t NodeBudget);

  /// The greedy selection on the already-prepared round; only valid after
  /// runExact() returned with Exhausted set.
  std::vector<std::pair<unsigned, unsigned>> runGreedyFallback() {
    assert(Prepared && "fallback without a prepared round");
    return runGreedy();
  }

private:
  void prepare();
  std::vector<std::pair<unsigned, unsigned>> runGreedy();
  void buildItemDependences();
  void identifyCandidates();
  void buildConflictBitsets();
  unsigned computeSurvivors(unsigned CandIdx);
  double weightOf(unsigned CandIdx);
  void markDirtySharers(unsigned CandIdx);

  bool itemDependsOn(unsigned I, unsigned J) const {
    return Scratch.ItemFwd[static_cast<size_t>(I) * Items.size() + J] != 0;
  }
  bool conflictBit(unsigned A, unsigned B) const {
    return (Scratch.ConflictRows[static_cast<size_t>(A) * RowWords +
                                 (B >> 6)] >>
            (B & 63)) &
           1;
  }

  const Kernel &K;
  const DependenceInfo &Deps;
  const GroupingOptions &Options;
  const std::vector<Item> &Items;
  GroupingScratch &Scratch;
  std::vector<Candidate> Candidates;
  std::map<std::string, unsigned> KeyIds;
  std::vector<std::vector<std::pair<unsigned, unsigned>>> KeyPostings;
  /// Sorted distinct pack keys per candidate (for the NewKeys term and the
  /// dirty-sharer sweeps).
  std::vector<std::vector<unsigned>> DistinctKeys;
  size_t RowWords = 0;

  // Incremental weight state.
  std::vector<char> SurvValid;     ///< is Survivors[c] current?
  std::vector<char> EverComputed;  ///< telemetry: initial vs dirty recompute
  std::vector<unsigned> Survivors; ///< cached aux-graph survivor counts
  std::vector<unsigned> DecidedCount; ///< per-key decided multiplicity
  uint64_t GlobalDecided = 0;      ///< sum over decided keys of (count - 1)
  uint64_t NumDecidedKeys = 0;     ///< distinct decided keys

  std::vector<unsigned> DecidedCandidates;
  std::vector<bool> ItemTaken;
  Rng TieBreaker;
  GroupingTelemetry *T;
  bool Prepared = false;

  // Branch-and-bound state (runExact / bbDfs). The search never mutates
  // the greedy state above: availability lives in the Avail bitset, not
  // the Alive flags, and all weight accounting is local to these members.
  void bbDfs(unsigned Pos);
  bool bbAvail(unsigned C) const {
    return (Avail[C >> 6] >> (C & 63)) & 1;
  }
  void bbMask(unsigned C) { Avail[C >> 6] &= ~(uint64_t(1) << (C & 63)); }
  void bbUnmask(unsigned C) { Avail[C >> 6] |= uint64_t(1) << (C & 63); }
  std::vector<double> Ub;        ///< per-candidate admissible bound
  std::vector<unsigned> Order;   ///< candidates by descending bound
  std::vector<uint64_t> Avail;   ///< candidates still selectable
  std::vector<unsigned> KeyCount;///< pack-key occurrences in SelStack
  std::vector<unsigned> SelStack, BestSel;
  std::vector<bool> BBItemTaken;
  std::vector<unsigned> MaskedStack; ///< undo log of bbMask'd candidates
  double CurW = 0, BestW = 0, AvailUb = 0;
  uint64_t BBNodes = 0, BBBudget = 0;
  bool BBExhausted = false;

  // Allocation-free equivalent of keepsGroupedDepsAcyclic for the search
  // hot path: same contracted-graph predicate over SelStack + C + untaken
  // items, but with reused arenas and Kahn over a CSR adjacency (parallel
  // edges need no dedup). One call per include attempt, so its constant
  // factor bounds the whole search.
  bool bbKeepsAcyclic(const Candidate &C);
  std::vector<int> BBNodeOf;
  std::vector<std::pair<unsigned, unsigned>> BBEdges;
  std::vector<unsigned> BBInDeg, BBOfs, BBAdj, BBWork;
};

void OptimizedRound::buildItemDependences() {
  // Memoized dependence "cache": every unordered item pair is scanned over
  // its statement pairs exactly once per round, recording both directions.
  // The reference engine instead rescans statements twice (once per
  // direction) inside conflict() for every candidate pair.
  unsigned NI = static_cast<unsigned>(Items.size());
  Scratch.ItemFwd.assign(static_cast<size_t>(NI) * NI, 0);
  for (unsigned I = 0; I != NI; ++I) {
    for (unsigned J = I + 1; J != NI; ++J) {
      bool Fwd = false, Bwd = false;
      for (unsigned S : Items[I].Stmts) {
        for (unsigned Q : Items[J].Stmts) {
          if (S < Q) {
            if (!Fwd && Deps.depends(S, Q))
              Fwd = true;
          } else if (!Bwd && Deps.depends(Q, S)) {
            Bwd = true;
          }
        }
        if (Fwd && Bwd)
          break;
      }
      Scratch.ItemFwd[static_cast<size_t>(I) * NI + J] = Fwd;
      Scratch.ItemFwd[static_cast<size_t>(J) * NI + I] = Bwd;
    }
  }
}

void OptimizedRound::identifyCandidates() {
  identifyCandidateGroups(
      K, Options, Items,
      [this](unsigned A, unsigned B) {
        return Scratch.isomorphic(K, Items[A].Stmts.front(),
                                  Items[B].Stmts.front());
      },
      [this](unsigned A, unsigned B) {
        // All member statements are pairwise independent iff there is no
        // dependence between the items in either direction.
        return !itemDependsOn(A, B) && !itemDependsOn(B, A);
      },
      KeyIds, Candidates);
}

void OptimizedRound::buildConflictBitsets() {
  unsigned NC = static_cast<unsigned>(Candidates.size());
  unsigned NI = static_cast<unsigned>(Items.size());

  KeyPostings.assign(KeyIds.size(), {});
  Scratch.ItemCands.assign(NI, {});
  DistinctKeys.assign(NC, {});
  for (unsigned CI = 0; CI != NC; ++CI) {
    const std::vector<unsigned> &Keys = Candidates[CI].PackKeyIds;
    for (unsigned P = 0, PE = static_cast<unsigned>(Keys.size()); P != PE;
         ++P)
      KeyPostings[Keys[P]].push_back({CI, P});
    DistinctKeys[CI] = Keys;
    std::sort(DistinctKeys[CI].begin(), DistinctKeys[CI].end());
    DistinctKeys[CI].erase(
        std::unique(DistinctKeys[CI].begin(), DistinctKeys[CI].end()),
        DistinctKeys[CI].end());
    Scratch.ItemCands[Candidates[CI].ItemA].push_back(CI);
    Scratch.ItemCands[Candidates[CI].ItemB].push_back(CI);
  }

  RowWords = (NC + 63) / 64;
  Scratch.ConflictRows.assign(static_cast<size_t>(NC) * RowWords, 0);
  if (T)
    T->ConflictWords += static_cast<size_t>(NC) * RowWords;
  auto SetConflict = [this](unsigned A, unsigned B) {
    Scratch.ConflictRows[static_cast<size_t>(A) * RowWords + (B >> 6)] |=
        uint64_t(1) << (B & 63);
    Scratch.ConflictRows[static_cast<size_t>(B) * RowWords + (A >> 6)] |=
        uint64_t(1) << (A & 63);
  };

  // Shared-item conflicts via the inverted index: all candidates touching
  // one item are mutually conflicting.
  for (unsigned I = 0; I != NI; ++I) {
    const std::vector<unsigned> &Cands = Scratch.ItemCands[I];
    for (unsigned X = 0, E = static_cast<unsigned>(Cands.size()); X != E;
         ++X)
      for (unsigned Y = X + 1; Y != E; ++Y)
        SetConflict(Cands[X], Cands[Y]);
  }

  // Dependence-cycle conflicts: candidates A and B conflict when each
  // would-be group depends on the other. Per candidate, expand the item-
  // level dependence rows into candidate bitsets and AND them wordwise.
  Scratch.OutRow.resize(RowWords);
  Scratch.InRow.resize(RowWords);
  for (unsigned A = 0; A != NC; ++A) {
    const Candidate &CA = Candidates[A];
    std::fill(Scratch.OutRow.begin(), Scratch.OutRow.end(), 0);
    std::fill(Scratch.InRow.begin(), Scratch.InRow.end(), 0);
    bool AnyOut = false, AnyIn = false;
    for (unsigned J = 0; J != NI; ++J) {
      if (itemDependsOn(CA.ItemA, J) || itemDependsOn(CA.ItemB, J)) {
        for (unsigned B : Scratch.ItemCands[J])
          Scratch.OutRow[B >> 6] |= uint64_t(1) << (B & 63);
        AnyOut = true;
      }
      if (itemDependsOn(J, CA.ItemA) || itemDependsOn(J, CA.ItemB)) {
        for (unsigned B : Scratch.ItemCands[J])
          Scratch.InRow[B >> 6] |= uint64_t(1) << (B & 63);
        AnyIn = true;
      }
    }
    if (!AnyOut || !AnyIn)
      continue;
    uint64_t *Row = &Scratch.ConflictRows[static_cast<size_t>(A) * RowWords];
    for (size_t W = 0; W != RowWords; ++W) {
      uint64_t Cyc = Scratch.OutRow[W] & Scratch.InRow[W];
      if (!Cyc)
        continue;
      Row[W] |= Cyc;
      // Mirror into the other rows so every row stays complete.
      uint64_t Bits = Cyc;
      while (Bits) {
        unsigned B = static_cast<unsigned>(W * 64) +
                     static_cast<unsigned>(__builtin_ctzll(Bits));
        Bits &= Bits - 1;
        Scratch.ConflictRows[static_cast<size_t>(B) * RowWords + (A >> 6)] |=
            uint64_t(1) << (A & 63);
      }
    }
  }
}

unsigned OptimizedRound::computeSurvivors(unsigned CandIdx) {
  // Auxiliary graph (Figure 6) over the scratch arenas. Node order matches
  // the reference exactly (keys in PackKeyIds order, postings in candidate
  // order), because the greedy elimination breaks degree ties by node
  // index.
  std::vector<unsigned> &NodeCand = Scratch.NodeCand;
  NodeCand.clear();
  if (Scratch.KeyStamp.size() < KeyIds.size())
    Scratch.KeyStamp.resize(KeyIds.size(), 0);
  unsigned Epoch = ++Scratch.KeyEpoch;
  for (unsigned Key : Candidates[CandIdx].PackKeyIds) {
    if (Scratch.KeyStamp[Key] == Epoch)
      continue; // duplicate position content: postings already swept
    Scratch.KeyStamp[Key] = Epoch;
    for (auto [CI, P] : KeyPostings[Key]) {
      (void)P; // survivor counting only needs the candidate
      if (CI == CandIdx || !Candidates[CI].Alive)
        continue;
      if (conflictBit(CI, CandIdx))
        continue;
      NodeCand.push_back(CI);
    }
  }

  unsigned NN = static_cast<unsigned>(NodeCand.size());
  if (T)
    T->AuxNodes += NN;
  if (NN == 0)
    return 0;
  if (Scratch.Adj.size() < NN)
    Scratch.Adj.resize(NN);
  Scratch.Degree.assign(NN, 0);
  for (unsigned I = 0; I != NN; ++I)
    Scratch.Adj[I].clear();
  bool AnyEdge = false;
  for (unsigned I = 0; I != NN; ++I) {
    for (unsigned J = I + 1; J != NN; ++J) {
      if (NodeCand[I] == NodeCand[J])
        continue;
      if (conflictBit(NodeCand[I], NodeCand[J])) {
        Scratch.Adj[I].push_back(J);
        Scratch.Adj[J].push_back(I);
        ++Scratch.Degree[I];
        ++Scratch.Degree[J];
        AnyEdge = true;
      }
    }
  }
  if (!AnyEdge)
    return NN; // edgeless: everything survives

  // Greedy conflict elimination (Figure 7) driven by a lazy max-heap:
  // entries are (degree, node) snapshots ordered by degree descending then
  // node index ascending — the reference's "lowest index among the
  // max-degree nodes" rule. Stale snapshots (node removed or degree moved
  // on) are skipped on pop; each decrement pushes a fresh snapshot, so the
  // top valid entry is always the current maximum.
  auto HeapLess = [](const std::pair<unsigned, unsigned> &A,
                     const std::pair<unsigned, unsigned> &B) {
    if (A.first != B.first)
      return A.first < B.first;
    return A.second > B.second;
  };
  std::vector<std::pair<unsigned, unsigned>> &Heap = Scratch.Heap;
  Heap.clear();
  for (unsigned I = 0; I != NN; ++I)
    if (Scratch.Degree[I] > 0)
      Heap.push_back({Scratch.Degree[I], I});
  std::make_heap(Heap.begin(), Heap.end(), HeapLess);
  Scratch.Removed.assign(NN, 0);
  unsigned Alive = NN;
  while (!Heap.empty()) {
    std::pop_heap(Heap.begin(), Heap.end(), HeapLess);
    auto [D, I] = Heap.back();
    Heap.pop_back();
    if (Scratch.Removed[I] || Scratch.Degree[I] != D)
      continue; // stale snapshot
    Scratch.Removed[I] = 1;
    --Alive;
    for (unsigned J : Scratch.Adj[I]) {
      if (Scratch.Removed[J])
        continue;
      assert(Scratch.Degree[J] > 0 && "degree bookkeeping broken");
      unsigned ND = --Scratch.Degree[J];
      if (ND > 0) {
        Heap.push_back({ND, J});
        std::push_heap(Heap.begin(), Heap.end(), HeapLess);
      }
    }
    Scratch.Degree[I] = 0;
  }
  return Alive;
}

double OptimizedRound::weightOf(unsigned CandIdx) {
  const Candidate &Cand = Candidates[CandIdx];
  double Avg = 0;
  if (Options.UseReuseWeight) {
    if (!SurvValid[CandIdx]) {
      Survivors[CandIdx] = computeSurvivors(CandIdx);
      SurvValid[CandIdx] = 1;
      if (T) {
        ++T->WeightComputes;
        if (EverComputed[CandIdx])
          ++T->DirtyRecomputes;
        EverComputed[CandIdx] = 1;
      }
    } else if (T) {
      ++T->WeightCacheHits;
    }
    // Reuse(c) = GlobalDecided + Survivors(c) + TotalKeys(c) - NewKeys(c),
    // averaged over NumDecidedKeys + NewKeys(c) pack types (see the file
    // header). All terms are integers, so this equals the reference's
    // accumulation bit for bit.
    uint64_t NewKeys = 0;
    for (unsigned Key : DistinctKeys[CandIdx])
      if (DecidedCount[Key] == 0)
        ++NewKeys;
    uint64_t Reuse =
        GlobalDecided + Survivors[CandIdx] + Cand.PackKeyIds.size() - NewKeys;
    uint64_t NumPackTypes = NumDecidedKeys + NewKeys;
    Avg = NumPackTypes == 0
              ? 0
              : static_cast<double>(Reuse) / static_cast<double>(NumPackTypes);
  }
  return Avg + Options.PackQualityEpsilon * Cand.PackQuality;
}

void OptimizedRound::markDirtySharers(unsigned CandIdx) {
  // Candidates whose auxiliary graph can contain a node of CandIdx are
  // exactly those sharing a pack key with it; their cached survivor counts
  // are now stale.
  for (unsigned Key : DistinctKeys[CandIdx])
    for (auto [CI, P] : KeyPostings[Key]) {
      (void)P;
      if (Candidates[CI].Alive)
        SurvValid[CI] = 0;
    }
}

void OptimizedRound::prepare() {
  if (Prepared)
    return;
  Prepared = true;
  buildItemDependences();
  identifyCandidates();
  if (T)
    T->Candidates += Candidates.size();
  buildConflictBitsets();
}

std::vector<std::pair<unsigned, unsigned>> OptimizedRound::runGreedy() {
  ItemTaken.assign(Items.size(), false);

  unsigned NC = static_cast<unsigned>(Candidates.size());
  SurvValid.assign(NC, 0);
  EverComputed.assign(NC, 0);
  Survivors.assign(NC, 0);
  DecidedCount.assign(KeyIds.size(), 0);

  std::vector<std::pair<unsigned, unsigned>> Merges;
  std::vector<unsigned> BestSet;
  while (true) {
    // Same selection sweep as the reference, but weights are served from
    // the incremental cache: only candidates dirtied by the previous
    // decision rebuild their auxiliary graph.
    double BestWeight = -1;
    BestSet.clear();
    for (unsigned CI = 0; CI != NC; ++CI) {
      if (!Candidates[CI].Alive)
        continue;
      double W = weightOf(CI);
      if (W > BestWeight + 1e-12) {
        BestWeight = W;
        BestSet.assign(1, CI);
      } else if (W >= BestWeight - 1e-12) {
        BestSet.push_back(CI);
      }
    }
    if (BestSet.empty())
      break;
    unsigned Chosen =
        BestSet[BestSet.size() == 1
                    ? 0
                    : static_cast<size_t>(TieBreaker.nextBelow(
                          BestSet.size()))];

    if (!keepsGroupedDepsAcyclic(Deps, Items, ItemTaken, Candidates,
                                 DecidedCandidates, Candidates[Chosen])) {
      // Accepting this group would make the grouped dependence graph
      // cyclic; it can never be scheduled, so discard it.
      Candidates[Chosen].Alive = false;
      markDirtySharers(Chosen);
      continue;
    }

    // Commit the decision and prune conflicting candidates (Figures 8/9).
    DecidedCandidates.push_back(Chosen);
    Candidates[Chosen].Alive = false;
    ItemTaken[Candidates[Chosen].ItemA] = true;
    ItemTaken[Candidates[Chosen].ItemB] = true;
    Merges.emplace_back(Candidates[Chosen].ItemA, Candidates[Chosen].ItemB);
    if (T)
      ++T->Commits;

    // Fold Chosen's pack keys into the decided-side closed-form counters.
    for (unsigned Key : Candidates[Chosen].PackKeyIds) {
      if (DecidedCount[Key]++ == 0)
        ++NumDecidedKeys;
      else
        ++GlobalDecided;
    }

    // Word-parallel prune: walk the set bits of Chosen's conflict row.
    const uint64_t *Row =
        &Scratch.ConflictRows[static_cast<size_t>(Chosen) * RowWords];
    for (size_t W = 0; W != RowWords; ++W) {
      uint64_t Bits = Row[W];
      while (Bits) {
        unsigned CI = static_cast<unsigned>(W * 64) +
                      static_cast<unsigned>(__builtin_ctzll(Bits));
        Bits &= Bits - 1;
        if (Candidates[CI].Alive) {
          Candidates[CI].Alive = false;
          markDirtySharers(CI);
        }
      }
    }
    markDirtySharers(Chosen);
  }
  if (T)
    T->SelectionWeight +=
        selectionWeightOf(Options, Candidates, DecidedCandidates,
                          KeyIds.size());
  return Merges;
}

/// Hard cap on the candidate count the branch-and-bound will attempt: the
/// DFS recurses one frame per candidate, and blocks this wide exhaust any
/// sane node budget anyway, so treat them as an immediate fallback rather
/// than risking deep recursion.
constexpr unsigned MaxExactCandidates = 4096;

ExactOutcome OptimizedRound::runExact(uint64_t NodeBudget) {
  prepare();
  ExactOutcome O;
  unsigned NC = static_cast<unsigned>(Candidates.size());
  if (NC == 0)
    return O; // nothing to decide: the empty selection is trivially optimal
  if (NodeBudget == 0 || NC > MaxExactCandidates) {
    O.Exhausted = true;
    return O;
  }

  // Admissible per-candidate bound: including c can add at most one reuse
  // per pack-key occurrence (an occurrence scores iff its key is already
  // present), and an occurrence whose key appears exactly once across
  // *all* candidates can never score (nothing else could have brought the
  // key in), plus the epsilon-scaled quality. Searching candidates in
  // descending bound order makes the suffix bound CurW + AvailUb tight
  // early.
  Ub.assign(NC, 0);
  for (unsigned C = 0; C != NC; ++C) {
    if (Options.UseReuseWeight)
      for (unsigned Key : Candidates[C].PackKeyIds)
        if (KeyPostings[Key].size() >= 2)
          Ub[C] += 1.0;
    Ub[C] += Options.PackQualityEpsilon * Candidates[C].PackQuality;
  }
  Order.resize(NC);
  for (unsigned C = 0; C != NC; ++C)
    Order[C] = C;
  std::sort(Order.begin(), Order.end(), [this](unsigned A, unsigned B) {
    if (Ub[A] != Ub[B])
      return Ub[A] > Ub[B];
    return A < B;
  });

  Avail.assign(RowWords, ~uint64_t(0));
  if (NC & 63)
    Avail[RowWords - 1] = (uint64_t(1) << (NC & 63)) - 1;
  AvailUb = 0;
  for (unsigned C = 0; C != NC; ++C)
    AvailUb += Ub[C];
  KeyCount.assign(KeyIds.size(), 0);
  SelStack.clear();
  BestSel.clear();
  BBItemTaken.assign(Items.size(), false);
  MaskedStack.clear();
  CurW = 0;
  BestW = -1; // the empty selection (weight 0) always beats this
  BBNodes = 0;
  BBBudget = NodeBudget;
  BBExhausted = false;

  bbDfs(0);

  if (T)
    T->ExactNodes += BBNodes;
  if (BBExhausted) {
    O.Exhausted = true;
    return O;
  }

  // Canonical order: ascending candidate index (deterministic, and stable
  // under any DFS exploration order).
  std::sort(BestSel.begin(), BestSel.end());
  O.Weight = BestW < 0 ? 0 : BestW;
  for (unsigned C : BestSel)
    O.Merges.emplace_back(Candidates[C].ItemA, Candidates[C].ItemB);
  if (T) {
    T->Commits += BestSel.size();
    T->SelectionWeight += O.Weight;
  }
  return O;
}

bool OptimizedRound::bbKeepsAcyclic(const Candidate &C) {
  if (Deps.dependences().empty())
    return true; // no edges, trivially a DAG
  unsigned NumStmts = Deps.numStatements();
  BBNodeOf.assign(NumStmts, -1);
  unsigned NumNodes = 0;
  auto AddGroup = [&](const std::vector<unsigned> &Stmts) {
    for (unsigned S : Stmts)
      BBNodeOf[S] = static_cast<int>(NumNodes);
    ++NumNodes;
  };
  for (unsigned DC : SelStack)
    AddGroup(Candidates[DC].Stmts);
  AddGroup(C.Stmts);
  for (unsigned I = 0, E = static_cast<unsigned>(Items.size()); I != E; ++I) {
    if (BBItemTaken[I])
      continue;
    if (BBNodeOf[Items[I].Stmts.front()] >= 0)
      continue; // part of C
    AddGroup(Items[I].Stmts);
  }

  BBEdges.clear();
  BBInDeg.assign(NumNodes, 0);
  for (const Dep &D : Deps.dependences()) {
    int A = BBNodeOf[D.Src], B = BBNodeOf[D.Dst];
    if (A != B) {
      BBEdges.emplace_back(static_cast<unsigned>(A),
                           static_cast<unsigned>(B));
      ++BBInDeg[static_cast<unsigned>(B)];
    }
  }

  // CSR successor lists via counting sort on the source node.
  BBOfs.assign(NumNodes + 1, 0);
  for (const auto &E : BBEdges)
    ++BBOfs[E.first + 1];
  for (unsigned N = 0; N != NumNodes; ++N)
    BBOfs[N + 1] += BBOfs[N];
  BBAdj.resize(BBEdges.size());
  {
    BBWork.assign(BBOfs.begin(), BBOfs.end() - 1);
    for (const auto &E : BBEdges)
      BBAdj[BBWork[E.first]++] = E.second;
  }

  // Kahn's algorithm.
  BBWork.clear();
  for (unsigned N = 0; N != NumNodes; ++N)
    if (BBInDeg[N] == 0)
      BBWork.push_back(N);
  unsigned Visited = 0;
  while (!BBWork.empty()) {
    unsigned N = BBWork.back();
    BBWork.pop_back();
    ++Visited;
    for (unsigned I = BBOfs[N]; I != BBOfs[N + 1]; ++I)
      if (--BBInDeg[BBAdj[I]] == 0)
        BBWork.push_back(BBAdj[I]);
  }
  return Visited == NumNodes;
}

void OptimizedRound::bbDfs(unsigned Pos) {
  if (BBExhausted)
    return;
  unsigned NC = static_cast<unsigned>(Candidates.size());
  while (Pos != NC && !bbAvail(Order[Pos]))
    ++Pos;
  if (Pos == NC) {
    // Leaf: a maximal selection. Strict improvement keeps the first (in
    // DFS order) of equally heavy optima, so results are deterministic.
    if (CurW > BestW + 1e-12) {
      BestW = CurW;
      BestSel = SelStack;
    }
    return;
  }
  if (BBNodes >= BBBudget) {
    BBExhausted = true;
    return;
  }
  ++BBNodes;
  // Admissible suffix bound: no completion of this prefix can beat the
  // incumbent. (<= : an equal-weight completion would not replace it.)
  if (CurW + AvailUb <= BestW + 1e-12) {
    if (T)
      ++T->ExactPrunes;
    return;
  }

  unsigned C = Order[Pos];
  const Candidate &Cand = Candidates[C];

  // Include branch. Feasibility of a selection is order-independent, and
  // contracted-graph acyclicity is monotone downward over selections built
  // from candidates with mutually independent items (un-contracting the
  // two halves of such a candidate cannot create a cycle, since any cycle
  // through both halves survives the contraction and a direct edge
  // between them would contradict their independence) — so checking it
  // incrementally on every include prunes no feasible completion.
  if (bbKeepsAcyclic(Cand)) {
    double SavedW = CurW, SavedUb = AvailUb;
    size_t MaskMark = MaskedStack.size();
    double Delta = Options.PackQualityEpsilon * Cand.PackQuality;
    if (Options.UseReuseWeight)
      for (unsigned Key : Cand.PackKeyIds)
        if (KeyCount[Key]++ > 0)
          Delta += 1.0;
    bbMask(C);
    AvailUb -= Ub[C];
    MaskedStack.push_back(C);
    const uint64_t *Row =
        &Scratch.ConflictRows[static_cast<size_t>(C) * RowWords];
    for (size_t W = 0; W != RowWords; ++W) {
      uint64_t Kill = Avail[W] & Row[W];
      while (Kill) {
        unsigned B = static_cast<unsigned>(W * 64) +
                     static_cast<unsigned>(__builtin_ctzll(Kill));
        Kill &= Kill - 1;
        bbMask(B);
        AvailUb -= Ub[B];
        MaskedStack.push_back(B);
      }
    }
    BBItemTaken[Cand.ItemA] = BBItemTaken[Cand.ItemB] = true;
    SelStack.push_back(C);
    CurW += Delta;

    bbDfs(Pos + 1);

    SelStack.pop_back();
    BBItemTaken[Cand.ItemA] = BBItemTaken[Cand.ItemB] = false;
    while (MaskedStack.size() > MaskMark) {
      bbUnmask(MaskedStack.back());
      MaskedStack.pop_back();
    }
    if (Options.UseReuseWeight)
      for (unsigned Key : Cand.PackKeyIds)
        --KeyCount[Key];
    CurW = SavedW; // exact restore, no floating-point drift
    AvailUb = SavedUb;
    if (BBExhausted)
      return;
  }

  // Exclude branch.
  double SavedUb = AvailUb;
  bbMask(C);
  AvailUb -= Ub[C];
  bbDfs(Pos + 1);
  bbUnmask(C);
  AvailUb = SavedUb;
}

/// True when some pair of items could still form a candidate on size
/// grounds. When every item is within MinSize of overflowing its lane
/// budget, no candidate can exist and a grouping round would only rebuild
/// state to decide nothing — the widen loop skips it (the "hoist candidate
/// regeneration" fast path; the skipped round consumes no RNG, so results
/// are unchanged).
bool anyPairCanMerge(const Kernel &K, const GroupingOptions &Options,
                     const std::vector<Item> &Items) {
  size_t MinSize = SIZE_MAX;
  for (const Item &I : Items)
    MinSize = std::min(MinSize, I.Stmts.size());
  for (const Item &I : Items) {
    const Statement &S = K.Body.statement(I.Stmts.front());
    unsigned Lanes =
        lanesFor(statementElementType(K, S), Options.DatapathBits);
    if (I.Stmts.size() + MinSize <= Lanes)
      return true;
  }
  return false;
}

} // namespace

GroupingResult slp::groupStatementsGlobal(const Kernel &K,
                                          const DependenceInfo &Deps,
                                          const GroupingOptions &Options,
                                          GroupingTelemetry *Telemetry) {
  // Round one: every statement is its own item.
  std::vector<Item> Items;
  for (unsigned S = 0, E = K.Body.size(); S != E; ++S)
    Items.push_back(Item{{S}});

  GroupingScratch Scratch(K.Body.size());

  // Iterative grouping (Section 4.2.2): merge until a fixpoint.
  while (true) {
    if (Items.size() < 2 || !anyPairCanMerge(K, Options, Items))
      break; // no candidate could exist; skip the no-op round entirely
    if (Telemetry)
      ++Telemetry->Rounds;
    std::vector<std::pair<unsigned, unsigned>> Merges;
    if (Options.Impl == GroupingImpl::Reference) {
      GroupingRound Round(K, Deps, Options, Items, Telemetry);
      Merges = Round.run();
    } else if (Options.Impl == GroupingImpl::Exact) {
      OptimizedRound Round(K, Deps, Options, Items, Scratch, Telemetry);
      ExactOutcome O = Round.runExact(Options.ExactNodeBudget);
      if (O.Exhausted) {
        // Budget ran out: this round falls back to the greedy selection on
        // the same prepared candidates/conflicts. The search consumed no
        // RNG and touched no greedy state, so the fallback is
        // bit-identical to a plain Optimized round.
        if (Telemetry)
          ++Telemetry->ExactFallbacks;
        Merges = Round.runGreedyFallback();
      } else {
        Merges = std::move(O.Merges);
      }
    } else {
      OptimizedRound Round(K, Deps, Options, Items, Scratch, Telemetry);
      Merges = Round.run();
    }
    if (Merges.empty())
      break;
    std::vector<bool> Consumed(Items.size(), false);
    std::vector<Item> Next;
    for (auto [A, B] : Merges) {
      Item Merged;
      Merged.Stmts = Items[A].Stmts;
      Merged.Stmts.insert(Merged.Stmts.end(), Items[B].Stmts.begin(),
                          Items[B].Stmts.end());
      std::sort(Merged.Stmts.begin(), Merged.Stmts.end());
      Next.push_back(std::move(Merged));
      Consumed[A] = Consumed[B] = true;
    }
    for (unsigned I = 0, E = static_cast<unsigned>(Items.size()); I != E; ++I)
      if (!Consumed[I])
        Next.push_back(std::move(Items[I]));
    Items = std::move(Next);
  }

  if (Telemetry && Options.Impl == GroupingImpl::Exact)
    Telemetry->ExactProvedOptimal = Telemetry->ExactFallbacks == 0 ? 1 : 0;

  GroupingResult Result;
  for (Item &I : Items) {
    if (I.Stmts.size() >= 2)
      Result.Groups.push_back(SimdGroup{std::move(I.Stmts)});
    else
      Result.Singles.push_back(I.Stmts.front());
  }
  std::sort(Result.Singles.begin(), Result.Singles.end());
  std::sort(Result.Groups.begin(), Result.Groups.end(),
            [](const SimdGroup &A, const SimdGroup &B) {
              return A.Members.front() < B.Members.front();
            });
  return Result;
}

ExactRoundResult slp::solveFirstRoundExact(const Kernel &K,
                                           const DependenceInfo &Deps,
                                           const GroupingOptions &Options) {
  std::vector<Item> Items;
  for (unsigned S = 0, E = K.Body.size(); S != E; ++S)
    Items.push_back(Item{{S}});
  GroupingScratch Scratch(K.Body.size());
  GroupingTelemetry T;
  OptimizedRound Round(K, Deps, Options, Items, Scratch, &T);
  ExactOutcome O = Round.runExact(Options.ExactNodeBudget);
  ExactRoundResult R;
  R.Weight = O.Weight;
  R.Nodes = T.ExactNodes;
  R.Exhausted = O.Exhausted;
  // Round-one item indices are statement indices.
  R.Pairs = std::move(O.Merges);
  return R;
}

std::vector<FirstRoundCandidate>
slp::enumerateFirstRoundCandidates(const Kernel &K,
                                   const DependenceInfo &Deps,
                                   const GroupingOptions &Options) {
  std::vector<Item> Items;
  for (unsigned S = 0, E = K.Body.size(); S != E; ++S)
    Items.push_back(Item{{S}});
  GroupingScratch Scratch(K.Body.size());
  std::map<std::string, unsigned> KeyIds;
  std::vector<Candidate> Candidates;
  identifyCandidateGroups(
      K, Options, Items,
      [&](unsigned A, unsigned B) { return Scratch.isomorphic(K, A, B); },
      [&](unsigned A, unsigned B) { return Deps.independent(A, B); },
      KeyIds, Candidates);
  std::vector<std::string> KeyNames(KeyIds.size());
  for (const auto &[Str, Id] : KeyIds)
    KeyNames[Id] = Str;
  std::vector<FirstRoundCandidate> Out;
  Out.reserve(Candidates.size());
  for (const Candidate &C : Candidates) {
    FirstRoundCandidate F;
    // Round-one items are singleton statements.
    F.StmtA = Items[C.ItemA].Stmts.front();
    F.StmtB = Items[C.ItemB].Stmts.front();
    for (unsigned Key : C.PackKeyIds)
      F.PackKeys.push_back(KeyNames[Key]);
    F.PackQuality = C.PackQuality;
    Out.push_back(std::move(F));
  }
  return Out;
}
