//===- slp/Grouping.cpp ---------------------------------------*- C++ -*-===//

#include "slp/Grouping.h"

#include "analysis/Alignment.h"
#include "analysis/Isomorphism.h"
#include "ir/Interpreter.h"
#include "slp/Pack.h"
#include "support/Rng.h"

#include <algorithm>
#include <map>
#include <set>

using namespace slp;

namespace {

/// An item of one grouping round: a single statement in round one, a
/// previously decided group in later rounds.
struct Item {
  std::vector<unsigned> Stmts; // sorted original statement ids
};

/// A candidate group: the union of two items.
struct Candidate {
  unsigned ItemA;
  unsigned ItemB;
  std::vector<unsigned> Stmts;  // merged, sorted
  /// Interned multiset key per non-degenerate operand position
  /// (broadcasts and constants contribute no meaningful reuse; see
  /// isDegeneratePack). Interning keeps the weight computation integer-
  /// only, which matters at wide datapaths where blocks have hundreds of
  /// statements.
  std::vector<unsigned> PackKeyIds;
  /// Cheapness of materializing this candidate's packs (secondary weight).
  double PackQuality = 0;
  bool Alive = true;
};

/// Scores how cheaply the packs of \p Stmts can be brought into vector
/// registers if no reuse materializes: 1 when every position is a
/// contiguous block (in some lane order), a broadcast, or constants; 0
/// when every position needs an element-wise gather. The paper's weight is
/// reuse only; this score is used as an epsilon-scale tie-break so that
/// among equally reusable groupings the memory-coherent one wins (goal 3
/// of Section 3).
double packQualityOf(const Kernel &K,
                     const std::vector<std::vector<const Operand *>> &Packs) {
  if (Packs.empty())
    return 0;
  double Total = 0;
  for (const auto &Pack : Packs) {
    if (isDegeneratePack(Pack)) {
      Total += 1.0;
      continue;
    }
    bool AllArray = true;
    for (const Operand *O : Pack)
      if (!O->isArray())
        AllArray = false;
    if (!AllArray)
      continue; // mixed or scalar pack: gather unless layout helps later
    SymbolId Array = Pack.front()->symbol();
    bool SameArray = true;
    for (const Operand *O : Pack)
      if (O->symbol() != Array)
        SameArray = false;
    if (!SameArray)
      continue;
    // Constant pairwise offsets forming a consecutive run => one vector
    // load in some lane order.
    const ArraySymbol &Arr = K.array(Array);
    AffineExpr Base = flattenArrayRef(Arr, Pack.front()->subscripts());
    std::vector<int64_t> Offs;
    bool Constant = true;
    for (const Operand *O : Pack) {
      AffineExpr Diff = flattenArrayRef(Arr, O->subscripts()) - Base;
      if (!Diff.isConstant()) {
        Constant = false;
        break;
      }
      Offs.push_back(Diff.constant());
    }
    if (!Constant)
      continue;
    std::sort(Offs.begin(), Offs.end());
    bool Consecutive = true;
    for (unsigned I = 1; I != Offs.size(); ++I)
      if (Offs[I] != Offs[I - 1] + 1)
        Consecutive = false;
    Total += Consecutive ? 1.0 : 0.25; // constant-strided beats irregular
  }
  return Total / static_cast<double>(Packs.size());
}

/// One round of the basic grouping algorithm over a set of items.
class GroupingRound {
public:
  GroupingRound(const Kernel &K, const DependenceInfo &Deps,
                const GroupingOptions &Options, std::vector<Item> Items)
      : K(K), Deps(Deps), Options(Options), Items(std::move(Items)),
        TieBreaker(Options.TieBreakSeed) {}

  /// Runs steps 1-4 of Figure 10; returns the decided merges as item-index
  /// pairs in decision order.
  std::vector<std::pair<unsigned, unsigned>> run();

private:
  void identifyCandidates();                     // step 1
  bool conflict(const Candidate &A, const Candidate &B) const; // step 2
  void buildConflictMatrix();
  bool conflictIdx(unsigned A, unsigned B) const {
    return Conflicts[A * Candidates.size() + B] != 0;
  }
  double weightOf(unsigned CandIdx) const;       // step 3
  bool keepsDependencesAcyclic(const Candidate &C) const;

  bool dependsOn(const std::vector<unsigned> &From,
                 const std::vector<unsigned> &To) const;

  const Kernel &K;
  const DependenceInfo &Deps;
  const GroupingOptions &Options;
  std::vector<Item> Items;
  std::vector<Candidate> Candidates;
  std::map<std::string, unsigned> KeyIds; // pack-key interning table
  /// For each interned key, the (candidate, position) pack nodes bearing
  /// it — the variable-pack conflicting graph in inverted-index form, so
  /// the auxiliary-graph construction touches only matching nodes.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> KeyPostings;
  std::vector<char> Conflicts; // dense candidate-pair conflict matrix
  std::vector<unsigned> DecidedCandidates;
  std::vector<bool> ItemTaken;
  mutable Rng TieBreaker;
};

bool GroupingRound::dependsOn(const std::vector<unsigned> &From,
                              const std::vector<unsigned> &To) const {
  for (unsigned S : From)
    for (unsigned T : To)
      if (S < T && Deps.depends(S, T))
        return true;
  return false;
}

void GroupingRound::identifyCandidates() {
  unsigned N = static_cast<unsigned>(Items.size());
  for (unsigned A = 0; A != N; ++A) {
    for (unsigned B = A + 1; B != N; ++B) {
      const Statement &SA = K.Body.statement(Items[A].Stmts.front());
      const Statement &SB = K.Body.statement(Items[B].Stmts.front());
      if (!areIsomorphic(K, SA, SB))
        continue;
      // Constraint 4: the merged group must fit the datapath.
      unsigned Lanes =
          lanesFor(statementElementType(K, SA), Options.DatapathBits);
      if (Items[A].Stmts.size() + Items[B].Stmts.size() > Lanes)
        continue;
      // Constraint 1: no dependence between any two member statements.
      bool Independent = true;
      for (unsigned P : Items[A].Stmts) {
        for (unsigned Q : Items[B].Stmts)
          if (!Deps.independent(P, Q)) {
            Independent = false;
            break;
          }
        if (!Independent)
          break;
      }
      if (!Independent)
        continue;
      Candidate C;
      C.ItemA = A;
      C.ItemB = B;
      C.Stmts = Items[A].Stmts;
      C.Stmts.insert(C.Stmts.end(), Items[B].Stmts.begin(),
                     Items[B].Stmts.end());
      std::sort(C.Stmts.begin(), C.Stmts.end());
      std::vector<std::vector<const Operand *>> Packs =
          positionPacks(K, C.Stmts);
      for (const auto &Pack : Packs) {
        if (isDegeneratePack(Pack))
          continue;
        auto [It, Inserted] = KeyIds.try_emplace(
            multisetPackKey(Pack),
            static_cast<unsigned>(KeyIds.size()));
        C.PackKeyIds.push_back(It->second);
      }
      C.PackQuality = packQualityOf(K, Packs);
      Candidates.push_back(std::move(C));
    }
  }
}

bool GroupingRound::conflict(const Candidate &A, const Candidate &B) const {
  // Shared item (hence shared statements).
  if (A.ItemA == B.ItemA || A.ItemA == B.ItemB || A.ItemB == B.ItemA ||
      A.ItemB == B.ItemB)
    return true;
  // Dependence cycle between the two would-be groups.
  return dependsOn(A.Stmts, B.Stmts) && dependsOn(B.Stmts, A.Stmts);
}

void GroupingRound::buildConflictMatrix() {
  KeyPostings.assign(KeyIds.size(), {});
  for (unsigned CI = 0, CE = static_cast<unsigned>(Candidates.size());
       CI != CE; ++CI) {
    const std::vector<unsigned> &Keys = Candidates[CI].PackKeyIds;
    for (unsigned P = 0, PE = static_cast<unsigned>(Keys.size()); P != PE;
         ++P)
      KeyPostings[Keys[P]].push_back({CI, P});
  }
  unsigned NC = static_cast<unsigned>(Candidates.size());
  Conflicts.assign(static_cast<size_t>(NC) * NC, 0);
  for (unsigned A = 0; A != NC; ++A) {
    for (unsigned B = A + 1; B != NC; ++B) {
      if (conflict(Candidates[A], Candidates[B])) {
        Conflicts[A * NC + B] = 1;
        Conflicts[B * NC + A] = 1;
      }
    }
  }
}

double GroupingRound::weightOf(unsigned CandIdx) const {
  const Candidate &Cand = Candidates[CandIdx];

  // Auxiliary graph (Figure 6): every pack node of a live, non-conflicting
  // candidate whose content matches one of Cand's packs. A node is the pair
  // (candidate index, position index).
  struct AgNode {
    unsigned Cand;
    unsigned Pos;
  };
  std::vector<AgNode> Nodes;
  std::vector<char> KeySeen(KeyIds.size(), 0);
  for (unsigned Key : Cand.PackKeyIds) {
    if (KeySeen[Key])
      continue; // duplicate position content: postings already swept
    KeySeen[Key] = 1;
    for (auto [CI, P] : KeyPostings[Key]) {
      if (CI == CandIdx || !Candidates[CI].Alive)
        continue;
      if (conflictIdx(CI, CandIdx))
        continue;
      Nodes.push_back(AgNode{CI, P});
    }
  }

  // Edges mirror the variable-pack conflicting graph restricted to the
  // extracted nodes: packs of conflicting candidates cannot coexist.
  unsigned NN = static_cast<unsigned>(Nodes.size());
  std::vector<std::vector<unsigned>> Adj(NN);
  std::vector<unsigned> Degree(NN, 0);
  for (unsigned I = 0; I != NN; ++I) {
    for (unsigned J = I + 1; J != NN; ++J) {
      if (Nodes[I].Cand == Nodes[J].Cand)
        continue;
      if (conflictIdx(Nodes[I].Cand, Nodes[J].Cand)) {
        Adj[I].push_back(J);
        Adj[J].push_back(I);
        ++Degree[I];
        ++Degree[J];
      }
    }
  }

  // Greedy conflict elimination (Figure 7): repeatedly drop the node with
  // the highest remaining degree until the graph is edgeless.
  std::vector<bool> Removed(NN, false);
  while (true) {
    unsigned Best = NN;
    unsigned BestDegree = 0;
    for (unsigned I = 0; I != NN; ++I)
      if (!Removed[I] && Degree[I] > BestDegree) {
        Best = I;
        BestDegree = Degree[I];
      }
    if (Best == NN)
      break; // no edges remain
    Removed[Best] = true;
    for (unsigned J : Adj[Best])
      if (!Removed[J]) {
        assert(Degree[J] > 0 && "degree bookkeeping broken");
        --Degree[J];
      }
    Degree[Best] = 0;
  }

  // Average reuse over the pack types of the decided groups plus this
  // candidate (Figure 10, lines 32-38).
  std::vector<unsigned> Count(KeyIds.size(), 0);
  std::vector<unsigned> Touched;
  auto Bump = [&Count, &Touched](unsigned Key) {
    if (Count[Key]++ == 0)
      Touched.push_back(Key);
  };
  for (unsigned Key : Cand.PackKeyIds)
    Bump(Key);
  for (unsigned DC : DecidedCandidates)
    for (unsigned Key : Candidates[DC].PackKeyIds)
      Bump(Key);
  unsigned NumPackTypes = static_cast<unsigned>(Touched.size());
  for (unsigned I = 0; I != NN; ++I) {
    if (Removed[I])
      continue;
    unsigned Key = Candidates[Nodes[I].Cand].PackKeyIds[Nodes[I].Pos];
    if (Count[Key] > 0)
      ++Count[Key];
  }
  double Reuse = 0;
  for (unsigned Key : Touched)
    Reuse += static_cast<double>(Count[Key] - 1);
  double Avg = NumPackTypes == 0
                   ? 0
                   : Reuse / static_cast<double>(NumPackTypes);
  if (!Options.UseReuseWeight)
    Avg = 0; // ablation: grouping driven by packing cheapness alone
  // Secondary criterion: among (nearly) equally reusable candidates,
  // prefer the one whose packs are cheap to materialize.
  return Avg + Options.PackQualityEpsilon * Cand.PackQuality;
}

bool GroupingRound::keepsDependencesAcyclic(const Candidate &C) const {
  // Contract each decided group (and C) to one node; singles stay single.
  // The schedule of Section 4.3 exists iff this contracted graph is a DAG.
  unsigned NumStmts = Deps.numStatements();
  std::vector<int> NodeOf(NumStmts, -1);
  std::vector<std::vector<unsigned>> NodeStmts;
  auto AddGroup = [&](const std::vector<unsigned> &Stmts) {
    int Node = static_cast<int>(NodeStmts.size());
    NodeStmts.push_back(Stmts);
    for (unsigned S : Stmts)
      NodeOf[S] = Node;
  };
  for (unsigned DC : DecidedCandidates)
    AddGroup(Candidates[DC].Stmts);
  AddGroup(C.Stmts);
  // Items not yet merged this round may themselves be groups from earlier
  // rounds; keep them contracted as well.
  for (unsigned I = 0, E = static_cast<unsigned>(Items.size()); I != E; ++I) {
    if (ItemTaken[I])
      continue;
    if (NodeOf[Items[I].Stmts.front()] >= 0)
      continue; // part of C
    AddGroup(Items[I].Stmts);
  }

  unsigned NumNodes = static_cast<unsigned>(NodeStmts.size());
  std::vector<std::set<unsigned>> Succ(NumNodes);
  for (const Dep &D : Deps.dependences()) {
    int A = NodeOf[D.Src], B = NodeOf[D.Dst];
    if (A >= 0 && B >= 0 && A != B)
      Succ[static_cast<unsigned>(A)].insert(static_cast<unsigned>(B));
  }

  // Kahn's algorithm.
  std::vector<unsigned> InDegree(NumNodes, 0);
  for (unsigned N = 0; N != NumNodes; ++N)
    for (unsigned S : Succ[N])
      ++InDegree[S];
  std::vector<unsigned> Work;
  for (unsigned N = 0; N != NumNodes; ++N)
    if (InDegree[N] == 0)
      Work.push_back(N);
  unsigned Visited = 0;
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    ++Visited;
    for (unsigned S : Succ[N])
      if (--InDegree[S] == 0)
        Work.push_back(S);
  }
  return Visited == NumNodes;
}

std::vector<std::pair<unsigned, unsigned>> GroupingRound::run() {
  identifyCandidates();
  buildConflictMatrix();
  ItemTaken.assign(Items.size(), false);

  std::vector<std::pair<unsigned, unsigned>> Merges;
  while (true) {
    // Recompute the weights of all live candidates (Figure 10 recalculates
    // retained edge weights after every decision).
    double BestWeight = -1;
    std::vector<unsigned> BestSet;
    for (unsigned CI = 0, CE = static_cast<unsigned>(Candidates.size());
         CI != CE; ++CI) {
      if (!Candidates[CI].Alive)
        continue;
      double W = weightOf(CI);
      if (W > BestWeight + 1e-12) {
        BestWeight = W;
        BestSet.assign(1, CI);
      } else if (W >= BestWeight - 1e-12) {
        BestSet.push_back(CI);
      }
    }
    if (BestSet.empty())
      break;
    unsigned Chosen =
        BestSet[BestSet.size() == 1
                    ? 0
                    : static_cast<size_t>(TieBreaker.nextBelow(
                          BestSet.size()))];

    if (!keepsDependencesAcyclic(Candidates[Chosen])) {
      // Accepting this group would make the grouped dependence graph
      // cyclic; it can never be scheduled, so discard it.
      Candidates[Chosen].Alive = false;
      continue;
    }

    // Commit the decision and prune conflicting candidates from both
    // graphs (Figures 8 and 9).
    DecidedCandidates.push_back(Chosen);
    Candidates[Chosen].Alive = false;
    ItemTaken[Candidates[Chosen].ItemA] = true;
    ItemTaken[Candidates[Chosen].ItemB] = true;
    Merges.emplace_back(Candidates[Chosen].ItemA, Candidates[Chosen].ItemB);
    for (unsigned CI = 0, CE = static_cast<unsigned>(Candidates.size());
         CI != CE; ++CI) {
      if (Candidates[CI].Alive && conflictIdx(CI, Chosen))
        Candidates[CI].Alive = false;
    }
  }
  return Merges;
}

} // namespace

GroupingResult slp::groupStatementsGlobal(const Kernel &K,
                                          const DependenceInfo &Deps,
                                          const GroupingOptions &Options) {
  // Round one: every statement is its own item.
  std::vector<Item> Items;
  for (unsigned S = 0, E = K.Body.size(); S != E; ++S)
    Items.push_back(Item{{S}});

  // Iterative grouping (Section 4.2.2): merge until a fixpoint.
  while (true) {
    GroupingRound Round(K, Deps, Options, Items);
    std::vector<std::pair<unsigned, unsigned>> Merges = Round.run();
    if (Merges.empty())
      break;
    std::vector<bool> Consumed(Items.size(), false);
    std::vector<Item> Next;
    for (auto [A, B] : Merges) {
      Item Merged;
      Merged.Stmts = Items[A].Stmts;
      Merged.Stmts.insert(Merged.Stmts.end(), Items[B].Stmts.begin(),
                          Items[B].Stmts.end());
      std::sort(Merged.Stmts.begin(), Merged.Stmts.end());
      Next.push_back(std::move(Merged));
      Consumed[A] = Consumed[B] = true;
    }
    for (unsigned I = 0, E = static_cast<unsigned>(Items.size()); I != E; ++I)
      if (!Consumed[I])
        Next.push_back(std::move(Items[I]));
    Items = std::move(Next);
  }

  GroupingResult Result;
  for (Item &I : Items) {
    if (I.Stmts.size() >= 2)
      Result.Groups.push_back(SimdGroup{std::move(I.Stmts)});
    else
      Result.Singles.push_back(I.Stmts.front());
  }
  std::sort(Result.Singles.begin(), Result.Singles.end());
  std::sort(Result.Groups.begin(), Result.Groups.end(),
            [](const SimdGroup &A, const SimdGroup &B) {
              return A.Members.front() < B.Members.front();
            });
  return Result;
}
