//===- slp/SchedulingPass.h - Superword scheduling as a pass ----*- C++ -*-===//
///
/// \file
/// The optimizer's scheduling phase as a KernelPass: orders the superword
/// statements chosen by the grouping pass and fixes every group's lane
/// order (paper Section 4.3, reuse-aware unless ablated). For the baseline
/// schemes the grouping pass already produced a complete schedule; this
/// pass then only validates it. Every schedule leaving this pass is
/// checked against the Section 4.1 validity constraints in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_SCHEDULINGPASS_H
#define SLP_SLP_SCHEDULINGPASS_H

#include "support/PassManager.h"

namespace slp {

class SchedulingPass : public KernelPass {
public:
  const char *name() const override { return "scheduling"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_SLP_SCHEDULINGPASS_H
