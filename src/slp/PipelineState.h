//===- slp/PipelineState.h - Mutable state threaded through passes -*- C++ -*-===//
///
/// \file
/// The concrete pipeline state behind the support layer's opaque
/// `PipelineState` forward declaration: everything the Figure 3 stages
/// produce and consume for one kernel — the unrolled kernel, dependence
/// info, grouping, schedule, generated vector program, layout decision and
/// simulation results. Each KernelPass reads and writes exactly the fields
/// its stage owns; `ensure*` helpers let a hand-built `--passes=` list omit
/// a stage and still leave downstream passes well-defined.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SLP_PIPELINESTATE_H
#define SLP_SLP_PIPELINESTATE_H

#include "slp/Pipeline.h"

#include <optional>

namespace slp {

struct PipelineState {
  PipelineState(const Kernel &Src, OptimizerKind K,
                const PipelineOptions &O)
      : Source(Src), Kind(K), Options(O) {
    CG.DatapathBits = Options.Machine.DatapathBits;
    CG.NumVectorRegisters = Options.Machine.NumVectorRegisters;
    // Indirect (permuted) superword reuse and the register-file-as-cache
    // treatment of loaded packs are this paper's contribution (with Shin
    // et al.); the Native and original-SLP baselines only forward pack
    // results along def-use chains and otherwise reload (Sections 2, 4.3).
    CG.EnablePermutedReuse = isHolistic() && Options.Ablation.PermutedReuse;
    CG.CacheLoadedPacks = isHolistic() && Options.Ablation.CacheLoadedPacks;
  }

  PipelineState(const PipelineState &) = delete;
  PipelineState &operator=(const PipelineState &) = delete;

  // --- fixed inputs ------------------------------------------------------
  const Kernel &Source;
  OptimizerKind Kind;
  const PipelineOptions &Options;
  /// Code-generation parameters derived from Kind + Options.
  CodeGenOptions CG;

  // --- produced by IfConvertPass -----------------------------------------
  /// Source kernel with constant guards folded; the unroll stage consumes
  /// this when IfConvertReady is set and the raw Source otherwise.
  Kernel IfConverted;
  bool IfConvertReady = false;

  // --- produced by UnrollPass --------------------------------------------
  Kernel Preprocessed;
  bool PreprocessedReady = false;
  unsigned UnrollFactor = 1;

  // --- produced by AlignmentPass -----------------------------------------
  std::optional<DependenceInfo> Deps;

  // --- produced by GroupingPass ------------------------------------------
  /// Holistic grouping result (Global / GlobalLayout only; the baseline
  /// algorithms produce their schedule directly).
  std::optional<GroupingResult> Groups;

  // --- produced by GroupingPass / SchedulingPass -------------------------
  Schedule TheSchedule;
  bool ScheduleReady = false;

  // --- produced by CodeGenPass -------------------------------------------
  /// The kernel the vector program runs on (differs from Preprocessed only
  /// when the layout stage replicated arrays).
  Kernel Final;
  VectorProgram Program;
  bool ProgramReady = false;
  bool TransformationApplied = false;

  // --- produced by SimulatePass ------------------------------------------
  KernelSimResult ScalarSim;
  KernelSimResult VectorSim;
  bool Simulated = false;

  // --- produced by LayoutPass --------------------------------------------
  LayoutResult Layout;
  bool LayoutApplied = false;

  // --- produced by VectorVerifyPass --------------------------------------
  /// Structured diagnostics from the static translation validator (empty
  /// when the verifier was off, the program is all-scalar, or verification
  /// passed clean).
  std::vector<Diagnostic> VerifyDiags;
  /// True when the verifier ran and proved the program correct.
  bool Verified = false;

  // --- produced by KernelVerifyPass --------------------------------------
  /// Structured diagnostics from the static kernel verifier (empty when
  /// the verifier was off or the kernel verified clean).
  std::vector<Diagnostic> KernelDiags;
  /// True when the kernel verifier ran and proved every array reference
  /// in bounds with no errors.
  bool KernelVerified = false;

  /// True for the paper's own schemes (as opposed to the baselines).
  bool isHolistic() const {
    return Kind == OptimizerKind::Global || Kind == OptimizerKind::GlobalLayout;
  }

  /// The default (unoptimized) scalar placement for the preprocessed
  /// kernel, shared by pruning, code generation and the cost guard.
  ScalarLayout defaultScalarLayout() const {
    return ScalarLayout::defaultLayout(
        static_cast<unsigned>(Preprocessed.Scalars.size()));
  }

  /// Preprocessed kernel, falling back to an unmodified copy of the source
  /// when no unroll pass ran.
  Kernel &ensurePreprocessed() {
    if (!PreprocessedReady) {
      Preprocessed = Source.clone();
      PreprocessedReady = true;
    }
    return Preprocessed;
  }

  /// Dependence info over the preprocessed kernel, computed on demand when
  /// no alignment pass ran. (Callers must link the analysis library.)
  DependenceInfo &ensureDeps() {
    ensurePreprocessed();
    if (!Deps)
      Deps.emplace(Preprocessed, Options.RangeSharpenDeps);
    return *Deps;
  }

  /// Schedule, falling back to the all-scalar schedule when no grouping or
  /// scheduling pass ran. (Callers must link the slp core library.)
  Schedule &ensureSchedule() {
    if (!ScheduleReady) {
      TheSchedule = scalarSchedule(ensurePreprocessed());
      ScheduleReady = true;
    }
    return TheSchedule;
  }
};

} // namespace slp

#endif // SLP_SLP_PIPELINESTATE_H
