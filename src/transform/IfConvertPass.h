//===- transform/IfConvertPass.h - Guard canonicalization pass --*- C++ -*-===//
///
/// \file
/// If-conversion as a KernelPass. Runs before the unroll stage so that the
/// entire SLP pipeline only ever sees canonical predicated straight-line
/// code: constant guards are folded, data-dependent guards are kept and
/// become per-lane masks during vector code generation.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_TRANSFORM_IFCONVERTPASS_H
#define SLP_TRANSFORM_IFCONVERTPASS_H

#include "support/PassManager.h"

namespace slp {

class IfConvertPass : public KernelPass {
public:
  const char *name() const override { return "if-convert"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_TRANSFORM_IFCONVERTPASS_H
