//===- transform/IfConvertPass.cpp ----------------------------*- C++ -*-===//

#include "transform/IfConvertPass.h"

#include "slp/PipelineState.h"
#include "transform/IfConvert.h"

using namespace slp;

void IfConvertPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  IfConvertStats Stats;
  S.IfConverted = ifConvertKernel(S.Source, &Stats);
  S.IfConvertReady = true;

  Ctx.Stats.set("if-convert.guarded-statements", Stats.GuardedStatements);
  Ctx.Stats.set("if-convert.folded-true", Stats.FoldedTrue);
  Ctx.Stats.set("if-convert.folded-false", Stats.FoldedFalse);
  if (Stats.FoldedTrue + Stats.FoldedFalse > 0)
    Ctx.Remarks.applied(name(),
                        "folded " + std::to_string(Stats.FoldedTrue) +
                            " constant-true and " +
                            std::to_string(Stats.FoldedFalse) +
                            " constant-false guard(s)");
  else if (Stats.GuardedStatements > 0)
    Ctx.Remarks.note(name(), std::to_string(Stats.GuardedStatements) +
                                 " statement(s) carry data-dependent guards");
  else
    Ctx.Remarks.note(name(), "no guarded statements");
}
