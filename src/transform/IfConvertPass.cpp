//===- transform/IfConvertPass.cpp ----------------------------*- C++ -*-===//

#include "transform/IfConvertPass.h"

#include "analysis/ValueRange.h"
#include "slp/PipelineState.h"
#include "transform/IfConvert.h"

using namespace slp;

void IfConvertPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  IfConvertStats Stats;
  ValueRangeInfo Ranges = computeValueRanges(S.Source);
  S.IfConverted = ifConvertKernel(S.Source, &Stats, &Ranges);
  S.IfConvertReady = true;

  Ctx.Stats.set("if-convert.guarded-statements", Stats.GuardedStatements);
  Ctx.Stats.set("if-convert.folded-true", Stats.FoldedTrue);
  Ctx.Stats.set("if-convert.folded-false", Stats.FoldedFalse);
  if (Stats.FoldedRangeTrue)
    Ctx.Stats.set("if-convert.folded-range-true", Stats.FoldedRangeTrue);
  if (Stats.FoldedRangeFalse)
    Ctx.Stats.set("if-convert.folded-range-false", Stats.FoldedRangeFalse);
  unsigned True = Stats.FoldedTrue + Stats.FoldedRangeTrue;
  unsigned False = Stats.FoldedFalse + Stats.FoldedRangeFalse;
  if (True + False > 0)
    Ctx.Remarks.applied(name(),
                        "folded " + std::to_string(True) +
                            " always-true and " + std::to_string(False) +
                            " never-true guard(s)");
  else if (Stats.GuardedStatements > 0)
    Ctx.Remarks.note(name(), std::to_string(Stats.GuardedStatements) +
                                 " statement(s) carry data-dependent guards");
  else
    Ctx.Remarks.note(name(), "no guarded statements");
}
