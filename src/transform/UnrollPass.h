//===- transform/UnrollPass.h - Pre-processing unroll as a pass -*- C++ -*-===//
///
/// \file
/// The pipeline's pre-processing stage (paper Section 3) as a KernelPass:
/// picks the unroll factor that fills the SIMD datapath for the block's
/// dominant element type and unrolls the innermost loop.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_TRANSFORM_UNROLLPASS_H
#define SLP_TRANSFORM_UNROLLPASS_H

#include "support/PassManager.h"

namespace slp {

class UnrollPass : public KernelPass {
public:
  const char *name() const override { return "unroll"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_TRANSFORM_UNROLLPASS_H
