//===- transform/Unroll.cpp -----------------------------------*- C++ -*-===//

#include "transform/Unroll.h"

#include <map>

using namespace slp;

unsigned slp::chooseUnrollFactor(const Kernel &K, unsigned Desired) {
  if (K.Loops.empty() || Desired <= 1)
    return 1;
  int64_t Trip = K.Loops.back().tripCount();
  if (Trip <= 0)
    return 1;
  for (unsigned F = Desired; F > 1; --F)
    if (Trip % F == 0)
      return F;
  return 1;
}

namespace {

/// Identifies the scalars that are safe to expand: their first access in
/// the body is a definition, so each unroll instance computes a private
/// value.
std::vector<bool> findExpandableScalars(const Kernel &K) {
  std::vector<bool> Expandable(K.Scalars.size(), false);
  std::vector<bool> Accessed(K.Scalars.size(), false);
  for (const Statement &S : K.Body) {
    // Uses come first within a statement: `a = a + 1` reads the old value.
    // Guard reads count as uses too.
    S.forEachUse([&](const Operand &O) {
      if (O.isScalar())
        Accessed[O.symbol()] = true;
    });
    const Operand &Lhs = S.lhs();
    if (Lhs.isScalar() && !Accessed[Lhs.symbol()]) {
      // A guarded definition is conditional: when the guard is false the
      // scalar keeps its live-in value, so per-instance clones (which
      // start uninitialized) would change semantics. Leave it unexpanded.
      if (!S.hasGuard())
        Expandable[Lhs.symbol()] = true;
      Accessed[Lhs.symbol()] = true;
    }
  }
  return Expandable;
}

} // namespace

Kernel slp::unrollInnermost(const Kernel &K, unsigned Factor) {
  if (Factor <= 1 || K.Loops.empty())
    return K.clone();

  unsigned Depth = static_cast<unsigned>(K.Loops.size()) - 1;
  const Loop &Inner = K.Loops[Depth];
  assert(Inner.tripCount() % Factor == 0 &&
         "unroll factor must divide the trip count");

  Kernel Out;
  Out.Name = K.Name;
  Out.Scalars = K.Scalars;
  Out.Arrays = K.Arrays;
  Out.Loops = K.Loops;
  Out.Loops[Depth].Step = Inner.Step * Factor;

  std::vector<bool> Expandable = findExpandableScalars(K);

  // Clones[S][Instance] is the symbol standing in for scalar S in unroll
  // instance Instance. The final instance keeps the original symbol so the
  // loop's live-out scalar values stay in place.
  std::map<std::pair<SymbolId, unsigned>, SymbolId> Clones;
  auto InstanceSymbol = [&](SymbolId S, unsigned Instance) -> SymbolId {
    if (!Expandable[S] || Instance == Factor - 1)
      return S;
    auto Key = std::make_pair(S, Instance);
    auto It = Clones.find(Key);
    if (It != Clones.end())
      return It->second;
    SymbolId Clone = Out.addScalar(K.Scalars[S].Name + ".u" +
                                       std::to_string(Instance),
                                   K.Scalars[S].Ty);
    Clones[Key] = Clone;
    return Clone;
  };

  for (unsigned Instance = 0; Instance != Factor; ++Instance) {
    int64_t Shift = static_cast<int64_t>(Instance) * Inner.Step;
    for (const Statement &S : K.Body) {
      Statement Copy = S;
      auto Rewrite = [&](Operand &O) {
        if (O.isScalar()) {
          O = Operand::makeScalar(InstanceSymbol(O.symbol(), Instance));
          return;
        }
        if (O.isArray()) {
          for (AffineExpr &Sub : O.subscripts())
            Sub = Sub.shiftedIndex(Depth, Shift);
        }
      };
      Rewrite(Copy.lhs());
      Copy.forEachUseMut(Rewrite);
      Out.Body.append(std::move(Copy));
    }
  }
  return Out;
}
