//===- transform/IfConvert.h - Guard canonicalization -----------*- C++ -*-===//
///
/// \file
/// If-conversion for the kernel language. The parser already lowers
/// `if (c) { ... }` blocks to per-statement guards, so structurally every
/// kernel is straight-line by the time it reaches the pipeline; this stage
/// canonicalizes those guards so the SLP stages see the simplest possible
/// predicated form:
///
///  - a guard that is a literal non-zero constant is dropped (the store is
///    unconditional),
///  - a statement whose guard is a literal zero is deleted (the store can
///    never happen; its RHS has no side effects),
///  - `if (a) if-composed guards` produced by mutation (guard of the form
///    `g * 1.0` etc.) are left alone — only whole-guard constants fold,
///  - when the caller supplies a value-range analysis result
///    (analysis/ValueRange.h), guards *proven* always-true or always-false
///    by intervals fold the same way: an interval excluding 0.0 means the
///    store is unconditional (NaN guards are taken, so MayNaN does not
///    block this fold), and the exact interval [0, 0] with no NaN means
///    the statement is dead. Literal constants keep folding through the
///    structural rule above even without range info.
///
/// Everything downstream (grouping, scheduling, codegen, the verifier)
/// then only ever sees guards that are genuinely data-dependent.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_TRANSFORM_IFCONVERT_H
#define SLP_TRANSFORM_IFCONVERT_H

#include "ir/Kernel.h"

namespace slp {

struct ValueRangeInfo;

/// Counters reported by ifConvertKernel.
struct IfConvertStats {
  /// Statements that still carry a (data-dependent) guard afterwards.
  unsigned GuardedStatements = 0;
  /// Guards folded away because they were constant-true.
  unsigned FoldedTrue = 0;
  /// Statements deleted because their guard was constant-false.
  unsigned FoldedFalse = 0;
  /// Guards folded away because value ranges prove them always taken.
  unsigned FoldedRangeTrue = 0;
  /// Statements deleted because value ranges prove their guard never
  /// taken.
  unsigned FoldedRangeFalse = 0;
};

/// Returns a copy of \p K with constant guards folded as described above.
/// When \p Ranges (computed over \p K) is provided, guards proven
/// always/never taken by interval analysis fold too.
Kernel ifConvertKernel(const Kernel &K, IfConvertStats *Stats = nullptr,
                       const ValueRangeInfo *Ranges = nullptr);

} // namespace slp

#endif // SLP_TRANSFORM_IFCONVERT_H
