//===- transform/Unroll.h - Loop unrolling pre-processing -------*- C++ -*-===//
///
/// \file
/// The framework's pre-processing stage (paper Section 3): unrolls the
/// innermost loop to replicate the body statements and expose isomorphic
/// statement instances that can fill the SIMD datapath.
///
/// Scalars whose first access inside the body is a definition are renamed
/// per unroll instance (scalar expansion) so the instances do not carry
/// false dependences; the final instance keeps the original name so that
/// live-out values land in the original symbol.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_TRANSFORM_UNROLL_H
#define SLP_TRANSFORM_UNROLL_H

#include "ir/Kernel.h"

namespace slp {

/// Returns the largest unroll factor <= \p Desired that evenly divides the
/// innermost loop's trip count (1 when the kernel has no loops or the trip
/// count is zero).
unsigned chooseUnrollFactor(const Kernel &K, unsigned Desired);

/// Unrolls the innermost loop of \p K by \p Factor, which must divide its
/// trip count. Factor 1 returns a plain copy.
Kernel unrollInnermost(const Kernel &K, unsigned Factor);

} // namespace slp

#endif // SLP_TRANSFORM_UNROLL_H
