//===- transform/UnrollPass.cpp -------------------------------*- C++ -*-===//

#include "transform/UnrollPass.h"

#include "analysis/Isomorphism.h"
#include "slp/Grouping.h"
#include "slp/PipelineState.h"
#include "transform/Unroll.h"

#include <map>

using namespace slp;

namespace {

/// Unroll factor targeting full datapath utilization for the block's
/// dominant element type.
unsigned preprocessUnrollFactor(const Kernel &K, unsigned DatapathBits) {
  if (K.Body.empty())
    return 1;
  std::map<ScalarType, unsigned> Votes;
  for (const Statement &S : K.Body)
    ++Votes[statementElementType(K, S)];
  ScalarType Dominant = Votes.begin()->first;
  unsigned BestVotes = 0;
  for (const auto &[Ty, N] : Votes)
    if (N > BestVotes) {
      Dominant = Ty;
      BestVotes = N;
    }
  return chooseUnrollFactor(K, lanesFor(Dominant, DatapathBits));
}

} // namespace

void UnrollPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  const Kernel &In = S.IfConvertReady ? S.IfConverted : S.Source;
  unsigned Factor =
      preprocessUnrollFactor(In, S.Options.Machine.DatapathBits);
  S.Preprocessed = unrollInnermost(In, Factor);
  S.PreprocessedReady = true;
  S.UnrollFactor = Factor;
  // The unrolled kernel invalidates every downstream analysis product.
  S.Deps.reset();

  Ctx.Stats.set("unroll.factor", Factor);
  Ctx.Stats.set("unroll.block-statements", S.Preprocessed.Body.size());
  if (Factor > 1)
    Ctx.Remarks.applied(name(), "unrolled innermost loop by " +
                                    std::to_string(Factor) + " (" +
                                    std::to_string(S.Preprocessed.Body.size()) +
                                    " statements in block)");
  else
    Ctx.Remarks.note(name(),
                     "no unrolling (no loop, zero trip count, or datapath "
                     "already filled)");
}
