//===- transform/IfConvert.cpp --------------------------------*- C++ -*-===//

#include "transform/IfConvert.h"

#include "analysis/ValueRange.h"

using namespace slp;

namespace {

/// Classifies a guard expression structurally: +1 constant-true,
/// 0 constant-false, -1 data-dependent.
int classifyGuard(const Expr &G) {
  if (!G.isLeaf())
    return -1;
  const Operand &O = G.leaf();
  if (!O.isConstant())
    return -1;
  return O.constantValue() != 0.0 ? 1 : 0;
}

/// Classifies a data-dependent guard by its interval: +1 provably never
/// exactly 0.0 (NaN guards are taken, so MayNaN does not block the fold),
/// 0 provably always exactly 0.0, -1 unknown.
int classifyGuardInterval(const ValueInterval &G) {
  if (G.Lo > 0.0 || G.Hi < 0.0)
    return 1;
  if (G.Lo == 0.0 && G.Hi == 0.0 && !G.MayNaN)
    return 0;
  return -1;
}

} // namespace

Kernel slp::ifConvertKernel(const Kernel &K, IfConvertStats *Stats,
                            const ValueRangeInfo *Ranges) {
  Kernel Out;
  Out.Name = K.Name;
  Out.Scalars = K.Scalars;
  Out.Arrays = K.Arrays;
  Out.Loops = K.Loops;
  for (unsigned I = 0, E = K.Body.size(); I != E; ++I) {
    const Statement &S = K.Body.statement(I);
    if (!S.hasGuard()) {
      Out.Body.append(S);
      continue;
    }
    int Verdict = classifyGuard(S.guard());
    bool ByRange = false;
    if (Verdict < 0 && Ranges && I < Ranges->Stmts.size()) {
      // Guards composed purely of literal constants (`if (1.0 < 0.5)`)
      // are deliberately NOT folded even though ranges decide them: they
      // are how all-lanes-false/true masked stores stay reachable for the
      // differential suites. Range folding only applies to guards that
      // read at least one scalar or array value.
      bool ReadsValues = false;
      S.guard().forEachLeaf([&ReadsValues](const Operand &O) {
        if (!O.isConstant())
          ReadsValues = true;
      });
      if (ReadsValues) {
        Verdict = classifyGuardInterval(Ranges->Stmts[I].Guard);
        ByRange = Verdict >= 0;
      }
    }
    switch (Verdict) {
    case 1: // always taken: the store is unconditional.
      Out.Body.append(Statement(S.lhs(), S.rhs().clone()));
      if (Stats)
        ++(ByRange ? Stats->FoldedRangeTrue : Stats->FoldedTrue);
      break;
    case 0: // never taken: the store never happens; RHS is pure.
      if (Stats)
        ++(ByRange ? Stats->FoldedRangeFalse : Stats->FoldedFalse);
      break;
    default:
      Out.Body.append(S);
      if (Stats)
        ++Stats->GuardedStatements;
      break;
    }
  }
  return Out;
}
