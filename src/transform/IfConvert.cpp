//===- transform/IfConvert.cpp --------------------------------*- C++ -*-===//

#include "transform/IfConvert.h"

using namespace slp;

namespace {

/// Classifies a guard expression: +1 constant-true, 0 constant-false,
/// -1 data-dependent.
int classifyGuard(const Expr &G) {
  if (!G.isLeaf())
    return -1;
  const Operand &O = G.leaf();
  if (!O.isConstant())
    return -1;
  return O.constantValue() != 0.0 ? 1 : 0;
}

} // namespace

Kernel slp::ifConvertKernel(const Kernel &K, IfConvertStats *Stats) {
  Kernel Out;
  Out.Name = K.Name;
  Out.Scalars = K.Scalars;
  Out.Arrays = K.Arrays;
  Out.Loops = K.Loops;
  for (const Statement &S : K.Body) {
    if (!S.hasGuard()) {
      Out.Body.append(S);
      continue;
    }
    switch (classifyGuard(S.guard())) {
    case 1: // constant-true: the store is unconditional.
      Out.Body.append(Statement(S.lhs(), S.rhs().clone()));
      if (Stats)
        ++Stats->FoldedTrue;
      break;
    case 0: // constant-false: the store never happens; RHS is pure.
      if (Stats)
        ++Stats->FoldedFalse;
      break;
    default:
      Out.Body.append(S);
      if (Stats)
        ++Stats->GuardedStatements;
      break;
    }
  }
  return Out;
}
