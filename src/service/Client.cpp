//===- service/Client.cpp -------------------------------------*- C++ -*-===//

#include "service/Client.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slp;

namespace {

/// `host:port` when the suffix after the last colon is a valid port and
/// the prefix is non-empty; Unix socket path otherwise (covers absolute
/// and relative paths, which may themselves contain no colon in
/// practice).
bool splitTcpSpec(const std::string &Spec, std::string &Host, int &Port) {
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 ||
      Colon + 1 >= Spec.size())
    return false;
  const std::string PortText = Spec.substr(Colon + 1);
  char *End = nullptr;
  long P = std::strtol(PortText.c_str(), &End, 10);
  if (End == PortText.c_str() || *End != '\0' || P <= 0 || P > 65535)
    return false;
  Host = Spec.substr(0, Colon);
  Port = static_cast<int>(P);
  return true;
}

int connectUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket failed: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = "connect('" + Path + "') failed: " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectTcp(const std::string &Host, int Port, std::string *Err) {
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  const std::string Resolved =
      Host == "localhost" ? std::string("127.0.0.1") : Host;
  if (::inet_pton(AF_INET, Resolved.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "cannot parse host '" + Host +
             "' (numeric IPv4 or 'localhost' only)";
    return -1;
  }
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket failed: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = "connect(" + Host + ":" + std::to_string(Port) +
             ") failed: " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

std::optional<ServiceClient> ServiceClient::connect(const std::string &Spec,
                                                    std::string *Err) {
  std::string Host;
  int Port = 0;
  int Fd = splitTcpSpec(Spec, Host, Port) ? connectTcp(Host, Port, Err)
                                          : connectUnix(Spec, Err);
  if (Fd < 0)
    return std::nullopt;
  return ServiceClient(Fd);
}

ServiceClient &ServiceClient::operator=(ServiceClient &&Other) noexcept {
  if (this != &Other) {
    if (Fd >= 0)
      ::close(Fd);
    Fd = Other.Fd;
    Other.Fd = -1;
  }
  return *this;
}

ServiceClient::~ServiceClient() {
  if (Fd >= 0)
    ::close(Fd);
}

bool ServiceClient::roundTrip(const ServiceRequest &Request,
                              ServiceReply &Reply, std::string *Err) {
  if (Fd < 0) {
    if (Err)
      *Err = "not connected";
    return false;
  }
  if (!writeFrame(Fd, serializeRequest(Request), Err))
    return false;
  std::string Payload;
  if (!readFrame(Fd, Payload, Err)) {
    if (Err && Err->empty())
      *Err = "server closed the connection";
    return false;
  }
  return parseReply(Payload, Reply, Err);
}

bool ServiceClient::ping(std::string *Err) {
  ServiceRequest R;
  R.Type = ServiceRequestType::Ping;
  ServiceReply Reply;
  return roundTrip(R, Reply, Err) && Reply.Ok;
}

bool ServiceClient::shutdownServer(std::string *Err) {
  ServiceRequest R;
  R.Type = ServiceRequestType::Shutdown;
  ServiceReply Reply;
  return roundTrip(R, Reply, Err) && Reply.Ok;
}
