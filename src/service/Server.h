//===- service/Server.h - The slpd compilation service ----------*- C++ -*-===//
///
/// \file
/// The long-running side of compilation-as-a-service: `ServiceServer`
/// listens on a Unix-domain socket (optionally a localhost TCP port too),
/// accepts framed requests (service/Protocol.h), shards each compile
/// batch across a worker pool — the same claim-an-index discipline as the
/// parallel module driver — and memoizes every per-kernel artifact in a
/// two-tier content-addressed ArtifactCache. `tools/slpd.cpp` is a thin
/// flag-parsing wrapper; benches and tests embed the server in-process.
///
/// `compileServiceArtifact` is the single compile entry point: the server
/// workers, the load benchmark's bit-identity oracle, and the cache-key
/// tests all produce artifacts through it, so "served from cache" and
/// "compiled directly" are byte-comparable by construction.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SERVICE_SERVER_H
#define SLP_SERVICE_SERVER_H

#include "service/ArtifactCache.h"
#include "service/Protocol.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace slp {

/// Compiles \p KernelText under \p Options and returns the serialized
/// artifact: parse, run the pipeline, optionally run the execution-based
/// equivalence check, serialize. Deterministic in its inputs. Returns
/// false (with \p Err) only on a parse failure.
bool compileServiceArtifact(const std::string &KernelText,
                            const ServiceOptions &Options,
                            std::string &ArtifactOut, std::string *Err);

struct ServerConfig {
  /// Path of the Unix-domain listening socket (always on; unlinked and
  /// rebound at start, removed at stop).
  std::string SocketPath;
  /// Localhost TCP port to listen on additionally; -1 disables.
  int TcpPort = -1;
  /// Worker threads a compile batch fans out over (0 = one per hardware
  /// thread). Mirrors PipelineOptions::Threads semantics.
  unsigned Threads = 0;
  ArtifactCacheConfig Cache;
};

/// Daemon-lifetime counters, appended to every reply as `server.*`.
struct ServerCounters {
  uint64_t Requests = 0;
  uint64_t Kernels = 0;
  uint64_t Connections = 0;
  uint64_t ProtocolErrors = 0;
  /// Kernels the static bounds verifier rejected before compilation (the
  /// daemon never spends pipeline or native-compile time on a kernel it
  /// cannot prove in bounds).
  uint64_t PrecheckRejects = 0;
};

class ServiceServer {
public:
  explicit ServiceServer(ServerConfig Config);
  ~ServiceServer();

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Binds the listeners and spawns the accept threads. False (with
  /// \p Err) when a socket cannot be set up.
  bool start(std::string *Err);

  /// Blocks until a Shutdown request arrives or stop() is called.
  /// \p ExternalStop (optional) is polled so a signal handler's atomic
  /// store also ends the wait.
  void wait(const std::atomic<bool> *ExternalStop = nullptr);

  /// Stops accepting, unblocks in-flight connections, joins every thread,
  /// and removes the socket file. Idempotent.
  void stop();

  /// Handles one already-parsed request (exposed so tests can drive the
  /// dispatch logic without a socket).
  ServiceReply handle(const ServiceRequest &Request);

  const ArtifactCache &cache() const { return Cache; }
  ServerCounters counters() const;
  const ServerConfig &config() const { return Config; }

private:
  void acceptLoop(int ListenFd);
  void serveConnection(int Fd);
  ServiceReply handleCompile(const ServiceRequest &Request);
  void appendCounters(ServiceReply &Reply) const;

  ServerConfig Config;
  ArtifactCache Cache;

  int UnixFd = -1;
  int TcpFd = -1;
  std::atomic<bool> ShuttingDown{false};
  std::atomic<bool> Started{false};

  mutable std::mutex StateMutex;
  std::condition_variable StateCv;
  std::vector<std::thread> AcceptThreads;
  std::vector<std::thread> ConnThreads;
  std::unordered_map<uint64_t, int> LiveConnFds;
  uint64_t NextConnId = 0;
  ServerCounters Counters;
};

} // namespace slp

#endif // SLP_SERVICE_SERVER_H
