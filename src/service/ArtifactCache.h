//===- service/ArtifactCache.h - Content-addressed result cache -*- C++ -*-===//
///
/// \file
/// The compilation service's memoization layer: a two-tier,
/// content-addressed cache of serialized compile artifacts keyed by the
/// exact (pipeline version, canonical options, kernel text) material from
/// Protocol.h.
///
///  * **Memory tier** — an LRU with byte and entry budgets, keyed by the
///    full material string (exact, collision-free).
///  * **Disk tier** — one file per artifact under a cache directory, named
///    by the FNV-1a hash of the material, written with the same
///    tmp-name+rename discipline as the native backend's object cache so
///    concurrent writers and crashes never publish a torn file. Each file
///    stores the full key material and is validated on load (a hash
///    collision or corrupt file degrades to a recompile, never a wrong
///    result). A daemon restarted over the same directory serves its
///    prior working set warm.
///  * **Singleflight** — concurrent requests for the same uncached key
///    wait on one in-flight compute instead of compiling redundantly; the
///    waiters report `CacheStatus::Coalesced`.
///
/// Thread-safe; the compute callback runs outside the cache lock.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SERVICE_ARTIFACTCACHE_H
#define SLP_SERVICE_ARTIFACTCACHE_H

#include "service/Protocol.h"

#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace slp {

struct ArtifactCacheConfig {
  /// Directory of the persistent tier; empty disables it (memory only).
  std::string DiskDir;
  /// Memory-tier budgets: artifact bytes and entry count. Eviction is
  /// strict LRU; a single artifact larger than the byte budget is still
  /// admitted (alone) so oversized results remain servable.
  size_t MaxMemoryBytes = 64u << 20;
  size_t MaxMemoryEntries = 4096;
};

/// Monotonic telemetry (also surfaced over the wire as `cache.*`).
struct ArtifactCacheCounters {
  uint64_t MemoryHits = 0;
  uint64_t DiskHits = 0;
  uint64_t Misses = 0;         ///< computes actually run
  uint64_t Coalesced = 0;      ///< waits on an identical in-flight compute
  uint64_t Evictions = 0;
  uint64_t DiskLoadErrors = 0; ///< corrupt/mismatched files skipped
  uint64_t MemoryBytes = 0;    ///< current memory-tier payload bytes
  uint64_t MemoryEntries = 0;
};

class ArtifactCache {
public:
  explicit ArtifactCache(ArtifactCacheConfig Config);

  /// Returns the artifact for \p KeyMaterial, serving from memory, then
  /// disk, then running \p Compute (at most once across all concurrent
  /// callers of the same key). \p Status reports which tier answered.
  std::string getOrCompute(const std::string &KeyMaterial,
                           const std::function<std::string()> &Compute,
                           CacheStatus &Status);

  /// Probe without computing (tests, tooling): memory then disk.
  std::optional<std::string> lookup(const std::string &KeyMaterial,
                                    CacheStatus &Status);

  ArtifactCacheCounters counters() const;

  const ArtifactCacheConfig &config() const { return Config; }

  /// Path the disk tier uses for \p KeyMaterial under \p Dir (exposed for
  /// tests that corrupt or inspect files).
  static std::string diskPathFor(const std::string &Dir,
                                 const std::string &KeyMaterial);

private:
  struct Entry {
    std::string Material;
    std::string Artifact;
  };
  struct InFlight {
    std::mutex M;
    std::condition_variable Cv;
    bool Done = false;
    std::string Artifact;
  };

  /// Inserts into the memory LRU and evicts past the budgets. Lock held.
  void insertLocked(const std::string &Material, const std::string &Artifact);
  /// Memory probe; promotes on hit. Lock held.
  std::optional<std::string> memoryLookupLocked(const std::string &Material);

  std::optional<std::string> diskLookup(const std::string &Material);
  void diskStore(const std::string &Material, const std::string &Artifact);

  ArtifactCacheConfig Config;
  mutable std::mutex M;
  std::list<Entry> Lru; ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> InFlightMap;
  ArtifactCacheCounters Counters;
};

} // namespace slp

#endif // SLP_SERVICE_ARTIFACTCACHE_H
