//===- service/Client.h - slpd client connection ----------------*- C++ -*-===//
///
/// \file
/// The thin-client side of the compilation service: connect to a running
/// `slpd` (Unix-domain socket path, or `host:port` for a TCP daemon),
/// send framed requests, parse framed replies. `slpc --server=<spec>`
/// builds on this with transparent local fallback — a daemon that is
/// down, unreachable, or protocol-incompatible degrades to an ordinary
/// in-process compile, never an error.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SERVICE_CLIENT_H
#define SLP_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <optional>
#include <string>

namespace slp {

class ServiceClient {
public:
  /// Connects to the daemon at \p Spec: a `host:port` spec (last colon,
  /// numeric port) dials TCP, anything else is a Unix socket path.
  /// Nullopt (with \p Err) when the connection cannot be established.
  static std::optional<ServiceClient> connect(const std::string &Spec,
                                              std::string *Err);

  ServiceClient(ServiceClient &&Other) noexcept : Fd(Other.Fd) {
    Other.Fd = -1;
  }
  ServiceClient &operator=(ServiceClient &&Other) noexcept;
  ServiceClient(const ServiceClient &) = delete;
  ServiceClient &operator=(const ServiceClient &) = delete;
  ~ServiceClient();

  /// Sends \p Request and reads the matching reply. False (with \p Err)
  /// on any socket or protocol failure — the caller should fall back to
  /// local compilation.
  bool roundTrip(const ServiceRequest &Request, ServiceReply &Reply,
                 std::string *Err);

  /// Convenience wrappers for the control request types.
  bool ping(std::string *Err);
  bool shutdownServer(std::string *Err);

private:
  explicit ServiceClient(int Fd) : Fd(Fd) {}
  int Fd = -1;
};

} // namespace slp

#endif // SLP_SERVICE_CLIENT_H
