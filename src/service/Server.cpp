//===- service/Server.cpp -------------------------------------*- C++ -*-===//

#include "service/Server.h"

#include "analysis/KernelVerifier.h"
#include "exec/ExecEngine.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <chrono>
#include <cstring>
#include <filesystem>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace slp;

bool slp::compileServiceArtifact(const std::string &KernelText,
                                 const ServiceOptions &Options,
                                 std::string &ArtifactOut, std::string *Err) {
  ParseResult Parsed = parseKernel(KernelText);
  if (!Parsed.succeeded()) {
    if (Err)
      *Err = "line " + std::to_string(Parsed.ErrorLine) + ": " +
             Parsed.ErrorMessage;
    return false;
  }
  const Kernel &K = *Parsed.TheKernel;
  PipelineResult R = runPipeline(K, Options.Kind, Options.toPipelineOptions());
  bool EquivChecked = false, EquivOk = false;
  if (Options.Equivalence && R.Simulated) {
    ExecEngine Engine(Options.Exec);
    EquivChecked = true;
    EquivOk = checkEquivalence(K, R, /*Seed=*/0xC0FFEE, nullptr, &Engine);
  }
  ArtifactOut = serializeArtifact(makeArtifact(K, R, EquivChecked, EquivOk));
  return true;
}

ServiceServer::ServiceServer(ServerConfig ConfigIn)
    : Config(std::move(ConfigIn)), Cache(Config.Cache) {}

ServiceServer::~ServiceServer() { stop(); }

namespace {

unsigned effectiveWorkers(unsigned Requested, size_t NumKernels) {
  unsigned T = Requested;
  if (T == 0) {
    T = std::thread::hardware_concurrency();
    if (T == 0)
      T = 1;
  }
  if (NumKernels < T)
    T = static_cast<unsigned>(NumKernels);
  return T == 0 ? 1 : T;
}

bool listenOn(int Fd, std::string *Err) {
  if (::listen(Fd, /*backlog=*/64) != 0) {
    if (Err)
      *Err = std::string("listen failed: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  return true;
}

} // namespace

bool ServiceServer::start(std::string *Err) {
  if (Started.load()) {
    if (Err)
      *Err = "server already started";
    return false;
  }
  if (Config.SocketPath.empty()) {
    if (Err)
      *Err = "no socket path configured";
    return false;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Config.SocketPath;
    return false;
  }
  std::strncpy(Addr.sun_path, Config.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);

  UnixFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (UnixFd < 0) {
    if (Err)
      *Err = std::string("socket failed: ") + std::strerror(errno);
    return false;
  }
  // A previous daemon's socket file would make bind fail; a live daemon
  // is indistinguishable from a stale file here, so the operator contract
  // is one daemon per socket path (slpd --stop shuts the old one down).
  ::unlink(Config.SocketPath.c_str());
  if (::bind(UnixFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    if (Err)
      *Err = "bind('" + Config.SocketPath +
             "') failed: " + std::strerror(errno);
    ::close(UnixFd);
    UnixFd = -1;
    return false;
  }
  if (!listenOn(UnixFd, Err)) {
    UnixFd = -1;
    return false;
  }

  if (Config.TcpPort >= 0) {
    TcpFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (TcpFd < 0) {
      if (Err)
        *Err = std::string("tcp socket failed: ") + std::strerror(errno);
      stop();
      return false;
    }
    int One = 1;
    ::setsockopt(TcpFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in TcpAddr{};
    TcpAddr.sin_family = AF_INET;
    TcpAddr.sin_port = htons(static_cast<uint16_t>(Config.TcpPort));
    TcpAddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // localhost only
    if (::bind(TcpFd, reinterpret_cast<sockaddr *>(&TcpAddr),
               sizeof(TcpAddr)) != 0) {
      if (Err)
        *Err = "tcp bind(127.0.0.1:" + std::to_string(Config.TcpPort) +
               ") failed: " + std::strerror(errno);
      stop();
      return false;
    }
    if (!listenOn(TcpFd, Err)) {
      TcpFd = -1;
      stop();
      return false;
    }
  }

  Started.store(true);
  ShuttingDown.store(false);
  AcceptThreads.emplace_back([this] { acceptLoop(UnixFd); });
  if (TcpFd >= 0)
    AcceptThreads.emplace_back([this] { acceptLoop(TcpFd); });
  return true;
}

void ServiceServer::acceptLoop(int ListenFd) {
  while (!ShuttingDown.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listener closed by stop()
    }
    std::lock_guard<std::mutex> Lock(StateMutex);
    if (ShuttingDown.load()) {
      ::close(Fd);
      break;
    }
    ++Counters.Connections;
    uint64_t Id = NextConnId++;
    LiveConnFds.emplace(Id, Fd);
    ConnThreads.emplace_back([this, Fd, Id] {
      serveConnection(Fd);
      // Deregister before closing: stop() may shutdown() any fd still in
      // the map, which must never be a recycled descriptor.
      {
        std::lock_guard<std::mutex> Inner(StateMutex);
        LiveConnFds.erase(Id);
      }
      ::close(Fd);
    });
  }
}

void ServiceServer::serveConnection(int Fd) {
  std::string Payload, Err;
  while (!ShuttingDown.load()) {
    if (!readFrame(Fd, Payload, &Err))
      break; // clean EOF or error either way ends the connection
    ServiceRequest Request;
    ServiceReply Reply;
    if (!parseRequest(Payload, Request, &Err)) {
      {
        std::lock_guard<std::mutex> Lock(StateMutex);
        ++Counters.ProtocolErrors;
      }
      Reply.Ok = false;
      Reply.Error = "malformed request: " + Err;
    } else {
      Reply = handle(Request);
    }
    bool Written = writeFrame(Fd, serializeReply(Reply), &Err);
    // Signal shutdown only after the reply frame is on the wire, so the
    // requesting client reads a clean acknowledgement instead of a
    // connection torn down mid-frame by stop().
    if (Request.Type == ServiceRequestType::Shutdown) {
      ShuttingDown.store(true);
      StateCv.notify_all();
      break;
    }
    if (!Written)
      break;
  }
}

ServiceReply ServiceServer::handle(const ServiceRequest &Request) {
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    ++Counters.Requests;
    Counters.Kernels += Request.Kernels.size();
  }
  ServiceReply Reply;
  switch (Request.Type) {
  case ServiceRequestType::Ping:
  case ServiceRequestType::Stats:
    Reply.Ok = true;
    break;
  case ServiceRequestType::Shutdown:
    // The connection loop signals ShuttingDown after the acknowledgement
    // is written (see serveConnection); handle() only forms the reply.
    Reply.Ok = true;
    break;
  case ServiceRequestType::Compile:
    Reply = handleCompile(Request);
    break;
  }
  appendCounters(Reply);
  return Reply;
}

ServiceReply ServiceServer::handleCompile(const ServiceRequest &Request) {
  ServiceReply Reply;
  const size_t N = Request.Kernels.size();
  std::vector<ServiceResult> Slots(N);
  std::vector<std::string> Errors(N);
  std::atomic<size_t> Next{0};
  std::atomic<bool> AnyError{false};
  std::atomic<uint64_t> Rejected{0};

  // Same sharding discipline as runPipelineOverModule: workers claim
  // kernel indices and write into pre-sized slots, so result order is
  // deterministic no matter how the pool interleaves.
  auto Worker = [&] {
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      ParseResult Parsed = parseKernel(Request.Kernels[I]);
      if (!Parsed.succeeded()) {
        Errors[I] = "kernel " + std::to_string(I) + ": line " +
                    std::to_string(Parsed.ErrorLine) + ": " +
                    Parsed.ErrorMessage;
        AnyError.store(true);
        continue;
      }
      // Precheck: never spend pipeline or native-compile time on a
      // kernel the bounds verifier cannot prove safe. The reject is
      // unconditional (not a ServiceOption) so it never enters the
      // cache key — unsafe kernels simply have no artifact.
      KernelVerifyResult Verified = verifyKernel(*Parsed.TheKernel);
      if (Verified.hasErrors()) {
        Errors[I] = "kernel " + std::to_string(I) +
                    ": rejected by kernel verifier:\n" +
                    renderDiagnostics(Verified.Diags);
        AnyError.store(true);
        Rejected.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Key on the canonical printing, not the received bytes: modules
      // differing only in whitespace or comments share artifacts.
      std::string Canonical = printKernel(*Parsed.TheKernel);
      std::string Material = artifactKeyMaterial(Canonical, Request.Options);
      Slots[I].Artifact = Cache.getOrCompute(
          Material,
          [&]() {
            std::string Artifact, Err;
            // Parse of a canonical printing cannot fail (round-trip
            // contract); compile from it so cache peers are bit-equal.
            compileServiceArtifact(Canonical, Request.Options, Artifact,
                                   &Err);
            return Artifact;
          },
          Slots[I].Status);
    }
  };

  unsigned Threads = effectiveWorkers(Config.Threads, N);
  if (Threads <= 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Threads);
    for (unsigned T = 0; T != Threads; ++T)
      Pool.emplace_back(Worker);
    for (std::thread &T : Pool)
      T.join();
  }

  if (uint64_t R = Rejected.load()) {
    std::lock_guard<std::mutex> Lock(StateMutex);
    Counters.PrecheckRejects += R;
  }

  if (AnyError.load()) {
    Reply.Ok = false;
    for (const std::string &E : Errors)
      if (!E.empty()) {
        Reply.Error = E; // first failing kernel names the request error
        break;
      }
    return Reply;
  }

  Reply.Ok = true;
  Reply.Results = std::move(Slots);
  // Per-request tallies (what `slpc --stats` reports as service.*).
  uint64_t Mem = 0, Disk = 0, Coal = 0, Miss = 0;
  for (const ServiceResult &R : Reply.Results)
    switch (R.Status) {
    case CacheStatus::MemoryHit:
      ++Mem;
      break;
    case CacheStatus::DiskHit:
      ++Disk;
      break;
    case CacheStatus::Coalesced:
      ++Coal;
      break;
    case CacheStatus::Miss:
      ++Miss;
      break;
    }
  Reply.Counters.emplace_back("service.kernels", N);
  Reply.Counters.emplace_back("service.hits", Mem + Disk + Coal);
  Reply.Counters.emplace_back("service.hits-memory", Mem);
  Reply.Counters.emplace_back("service.hits-disk", Disk);
  Reply.Counters.emplace_back("service.coalesced", Coal);
  Reply.Counters.emplace_back("service.misses", Miss);
  return Reply;
}

void ServiceServer::appendCounters(ServiceReply &Reply) const {
  ArtifactCacheCounters C = Cache.counters();
  Reply.Counters.emplace_back("cache.memory-hits", C.MemoryHits);
  Reply.Counters.emplace_back("cache.disk-hits", C.DiskHits);
  Reply.Counters.emplace_back("cache.misses", C.Misses);
  Reply.Counters.emplace_back("cache.coalesced", C.Coalesced);
  Reply.Counters.emplace_back("cache.evictions", C.Evictions);
  Reply.Counters.emplace_back("cache.disk-load-errors", C.DiskLoadErrors);
  Reply.Counters.emplace_back("cache.memory-bytes", C.MemoryBytes);
  Reply.Counters.emplace_back("cache.memory-entries", C.MemoryEntries);
  std::lock_guard<std::mutex> Lock(StateMutex);
  Reply.Counters.emplace_back("server.requests", Counters.Requests);
  Reply.Counters.emplace_back("server.kernels", Counters.Kernels);
  Reply.Counters.emplace_back("server.connections", Counters.Connections);
  Reply.Counters.emplace_back("server.protocol-errors",
                              Counters.ProtocolErrors);
  Reply.Counters.emplace_back("server.precheck-rejects",
                              Counters.PrecheckRejects);
}

void ServiceServer::wait(const std::atomic<bool> *ExternalStop) {
  std::unique_lock<std::mutex> Lock(StateMutex);
  // Polling keeps the external flag a plain atomic, which a signal
  // handler may set without async-signal-safety concerns.
  while (!ShuttingDown.load() && !(ExternalStop && ExternalStop->load()))
    StateCv.wait_for(Lock, std::chrono::milliseconds(200));
}

void ServiceServer::stop() {
  if (!Started.exchange(false))
    return;
  ShuttingDown.store(true);
  StateCv.notify_all();
  // Closing the listeners unblocks accept(); shutting down live
  // connections unblocks their recv().
  if (UnixFd >= 0) {
    ::shutdown(UnixFd, SHUT_RDWR);
    ::close(UnixFd);
    UnixFd = -1;
  }
  if (TcpFd >= 0) {
    ::shutdown(TcpFd, SHUT_RDWR);
    ::close(TcpFd);
    TcpFd = -1;
  }
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    for (const auto &Conn : LiveConnFds)
      ::shutdown(Conn.second, SHUT_RDWR);
  }
  for (std::thread &T : AcceptThreads)
    T.join();
  AcceptThreads.clear();
  // Connection threads may still be appending to ConnThreads via the
  // accept loop; with accepts joined, the vector is stable now.
  std::vector<std::thread> Conns;
  {
    std::lock_guard<std::mutex> Lock(StateMutex);
    Conns.swap(ConnThreads);
  }
  for (std::thread &T : Conns)
    T.join();
  if (!Config.SocketPath.empty())
    ::unlink(Config.SocketPath.c_str());
}

ServerCounters ServiceServer::counters() const {
  std::lock_guard<std::mutex> Lock(StateMutex);
  return Counters;
}
