//===- service/ArtifactCache.cpp ------------------------------*- C++ -*-===//

#include "service/ArtifactCache.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace slp;

namespace fs = std::filesystem;

ArtifactCache::ArtifactCache(ArtifactCacheConfig Config)
    : Config(std::move(Config)) {}

std::string ArtifactCache::diskPathFor(const std::string &Dir,
                                       const std::string &KeyMaterial) {
  return (fs::path(Dir) / ("slpd_" + hex64(fnv1a64(KeyMaterial)) + ".art"))
      .string();
}

std::optional<std::string>
ArtifactCache::memoryLookupLocked(const std::string &Material) {
  auto It = Index.find(Material);
  if (It == Index.end())
    return std::nullopt;
  Lru.splice(Lru.begin(), Lru, It->second); // promote to most-recent
  return It->second->Artifact;
}

void ArtifactCache::insertLocked(const std::string &Material,
                                 const std::string &Artifact) {
  if (Index.count(Material))
    return; // racing loader already inserted it
  Lru.push_front(Entry{Material, Artifact});
  Index.emplace(Material, Lru.begin());
  Counters.MemoryBytes += Artifact.size();
  Counters.MemoryEntries = Lru.size();
  // Evict strictly-LRU entries past either budget, but never the entry
  // just inserted: an oversized artifact lives alone rather than being
  // unservable.
  while (Lru.size() > 1 && (Counters.MemoryBytes > Config.MaxMemoryBytes ||
                            Lru.size() > Config.MaxMemoryEntries)) {
    Entry &Victim = Lru.back();
    Counters.MemoryBytes -= Victim.Artifact.size();
    Index.erase(Victim.Material);
    Lru.pop_back();
    ++Counters.Evictions;
  }
  Counters.MemoryEntries = Lru.size();
}

namespace {

/// Disk layout: header line, then the length-prefixed key material and
/// artifact. Anything that does not parse back (torn write survivor,
/// truncation, hash collision) reads as a miss.
constexpr const char *DiskHeader = "slpd-art-file-v1";

bool readBlobAt(std::ifstream &In, const std::string &Key,
                std::string &Out) {
  std::string Line;
  if (!std::getline(In, Line))
    return false;
  const std::string Prefix = Key + "-bytes=";
  if (Line.rfind(Prefix, 0) != 0)
    return false;
  char *End = nullptr;
  unsigned long long N = std::strtoull(Line.c_str() + Prefix.size(), &End, 10);
  if (*End != '\0')
    return false;
  Out.resize(N);
  if (N && !In.read(Out.data(), static_cast<std::streamsize>(N)))
    return false;
  return In.get() == '\n';
}

} // namespace

std::optional<std::string>
ArtifactCache::diskLookup(const std::string &Material) {
  if (Config.DiskDir.empty())
    return std::nullopt;
  fs::path Path = diskPathFor(Config.DiskDir, Material);
  std::error_code Ec;
  if (!fs::exists(Path, Ec) || Ec)
    return std::nullopt;
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::string Line, StoredMaterial, Artifact;
  bool Ok = std::getline(In, Line) && Line == DiskHeader &&
            readBlobAt(In, "material", StoredMaterial) &&
            StoredMaterial == Material &&
            readBlobAt(In, "artifact", Artifact);
  if (!Ok) {
    // Corrupt or colliding file: drop it so the recompile can republish.
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.DiskLoadErrors;
    In.close();
    fs::remove(Path, Ec);
    return std::nullopt;
  }
  return Artifact;
}

void ArtifactCache::diskStore(const std::string &Material,
                              const std::string &Artifact) {
  if (Config.DiskDir.empty())
    return;
  std::error_code Ec;
  fs::create_directories(Config.DiskDir, Ec);
  if (Ec)
    return; // persistence is best-effort; memory tier still serves
  fs::path Path = diskPathFor(Config.DiskDir, Material);
  fs::path Tmp = Path;
  Tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return;
    Out << DiskHeader << '\n';
    Out << "material-bytes=" << Material.size() << '\n'
        << Material << '\n';
    Out << "artifact-bytes=" << Artifact.size() << '\n'
        << Artifact << '\n';
    if (!Out.flush())
      return;
  }
  fs::rename(Tmp, Path, Ec);
  if (Ec)
    fs::remove(Tmp, Ec);
}

std::optional<std::string>
ArtifactCache::lookup(const std::string &KeyMaterial, CacheStatus &Status) {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (auto Hit = memoryLookupLocked(KeyMaterial)) {
      ++Counters.MemoryHits;
      Status = CacheStatus::MemoryHit;
      return Hit;
    }
  }
  if (auto Hit = diskLookup(KeyMaterial)) {
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.DiskHits;
    insertLocked(KeyMaterial, *Hit);
    Status = CacheStatus::DiskHit;
    return Hit;
  }
  Status = CacheStatus::Miss;
  return std::nullopt;
}

std::string
ArtifactCache::getOrCompute(const std::string &KeyMaterial,
                            const std::function<std::string()> &Compute,
                            CacheStatus &Status) {
  std::shared_ptr<InFlight> Flight;
  bool Leader = false;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (auto Hit = memoryLookupLocked(KeyMaterial)) {
      ++Counters.MemoryHits;
      Status = CacheStatus::MemoryHit;
      return *Hit;
    }
    auto It = InFlightMap.find(KeyMaterial);
    if (It != InFlightMap.end()) {
      Flight = It->second;
    } else {
      Flight = std::make_shared<InFlight>();
      InFlightMap.emplace(KeyMaterial, Flight);
      Leader = true;
    }
  }

  if (!Leader) {
    // Identical compile already running: wait for its result instead of
    // burning a redundant pipeline run.
    std::unique_lock<std::mutex> FlightLock(Flight->M);
    Flight->Cv.wait(FlightLock, [&] { return Flight->Done; });
    std::lock_guard<std::mutex> Lock(M);
    ++Counters.Coalesced;
    Status = CacheStatus::Coalesced;
    return Flight->Artifact;
  }

  // Leader: probe the disk tier, then compute. Both happen outside the
  // cache lock so unrelated keys keep flowing.
  std::string Artifact;
  bool FromDisk = false;
  if (auto Hit = diskLookup(KeyMaterial)) {
    Artifact = std::move(*Hit);
    FromDisk = true;
  } else {
    Artifact = Compute();
    diskStore(KeyMaterial, Artifact);
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    if (FromDisk) {
      ++Counters.DiskHits;
      Status = CacheStatus::DiskHit;
    } else {
      ++Counters.Misses;
      Status = CacheStatus::Miss;
    }
    insertLocked(KeyMaterial, Artifact);
    InFlightMap.erase(KeyMaterial);
  }
  {
    std::lock_guard<std::mutex> FlightLock(Flight->M);
    Flight->Artifact = Artifact;
    Flight->Done = true;
  }
  Flight->Cv.notify_all();
  return Artifact;
}

ArtifactCacheCounters ArtifactCache::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters;
}
