//===- service/Protocol.h - slpd wire protocol and artifacts ----*- C++ -*-===//
///
/// \file
/// The compilation service's wire protocol (docs/service.md): a client
/// sends batches of kernel texts plus a canonicalized option block to a
/// long-running `slpd` daemon, which answers with per-kernel *artifacts* —
/// the serialized outcome of one pipeline run (vector program text,
/// schedule, predicted cycles, diagnostics, verification flags).
///
/// Three layers live here:
///
///  * **Framing** — every message is one length-prefixed frame
///    (`"SLPF"` magic + little-endian uint32 payload size) so requests and
///    responses of any size travel over a stream socket without ambiguity.
///  * **Payloads** — requests, replies, options, and artifacts serialize
///    to a line-oriented `key=value` text with length-prefixed blobs
///    (`key-bytes=N` followed by exactly N raw bytes). Doubles are
///    rendered as hexfloats so parsing round-trips bit-exactly.
///  * **Cache keys** — `artifactKeyMaterial` concatenates the pipeline
///    version, the canonical option block, and the kernel text; its
///    FNV-1a hash names on-disk cache files, while the full material is
///    the exact (collision-free) in-memory key and is stored inside every
///    disk artifact for validation on load.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SERVICE_PROTOCOL_H
#define SLP_SERVICE_PROTOCOL_H

#include "slp/Pipeline.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace slp {

/// Version tag baked into every cache key. Bump whenever the pipeline's
/// output for an identical (kernel, options) pair can change — stale
/// artifacts from an older pipeline then miss instead of serving wrong
/// results.
inline constexpr const char *ServicePipelineVersion = "slp-pipeline-v10";

/// Frame magic ("SLPF") + maximum payload a peer may send. The cap bounds
/// allocation on malformed or hostile input.
inline constexpr uint32_t ServiceFrameMagic = 0x46504C53u; // "SLPF" LE
inline constexpr uint32_t ServiceMaxFrameBytes = 256u << 20;

/// FNV-1a 64-bit over \p Data, continuing from \p H (offset basis by
/// default). The same function the native backend uses for its object
/// cache, exposed here so every content-addressed tier hashes alike.
uint64_t fnv1a64(const std::string &Data,
                 uint64_t H = 1469598103934665603ULL);

/// Lower-case 16-digit hex rendering of \p H (cache file stems).
std::string hex64(uint64_t H);

/// The two machine models a service request may name. Requests carry the
/// model by name + datapath override (never raw cost tables), which keeps
/// the canonical option block — and therefore the cache key — small and
/// total.
enum class ServiceMachine : uint8_t { Intel, Amd };

/// Options a compile request carries. A deliberate subset of
/// PipelineOptions: every field here either changes the emitted artifact
/// or selects the engine that verifies it, and every field is part of the
/// cache key (conservative: fields with bit-identical engine contracts,
/// like the grouping implementation, still key separately).
struct ServiceOptions {
  OptimizerKind Kind = OptimizerKind::GlobalLayout;
  ServiceMachine Machine = ServiceMachine::Intel;
  /// Datapath width override; 0 keeps the named machine's default.
  unsigned Bits = 0;
  GroupingImpl GroupingEngine = GroupingImpl::Optimized;
  uint64_t ExactBudget = DefaultExactNodeBudget;
  /// Engine the server runs the execution-based equivalence check under.
  ExecEngineKind Exec = ExecEngineKind::Optimized;
  bool VerifyVector = false;
  bool VerifyLint = false;
  bool VerifyWerror = false;
  /// Run the execution-based equivalence check after compiling (cold path
  /// only; hits reuse the recorded outcome).
  bool Equivalence = true;

  /// The canonical text block: one `key=value` line per field in a fixed
  /// order, starting with the pipeline version. Equal blocks == equal
  /// compile behavior; the block is both the wire encoding and the option
  /// component of the cache key.
  std::string canonical() const;

  /// Expands into the PipelineOptions the server compiles under.
  PipelineOptions toPipelineOptions() const;
};

/// Parses a canonical option block; nullopt (with \p Err) on unknown
/// keys/values or missing version line.
std::optional<ServiceOptions> parseServiceOptions(const std::string &Text,
                                                  std::string *Err);

/// Exact cache key material for (kernel text, options): pipeline version
/// and option block followed by the kernel text. Collision-free by
/// construction (it embeds, not hashes, both components).
std::string artifactKeyMaterial(const std::string &KernelText,
                                const ServiceOptions &Options);

/// How a per-kernel result was produced.
enum class CacheStatus : uint8_t {
  Miss,      ///< compiled by this request
  MemoryHit, ///< served from the in-memory LRU
  DiskHit,   ///< served from the persistent tier (and promoted)
  Coalesced, ///< waited on an identical in-flight compile
};

const char *cacheStatusName(CacheStatus S);
std::optional<CacheStatus> parseCacheStatusName(const std::string &Name);

/// The serialized outcome of one pipeline run — what the cache stores and
/// the wire carries. Texts are the canonical printer renderings, so byte
/// equality of two artifacts is result equality.
struct ServiceArtifact {
  std::string KernelName;
  std::string Optimizer; ///< optimizerName() spelling
  bool Transformed = false;
  bool LayoutApplied = false;
  bool Simulated = false;
  bool Verified = false;     ///< static validator proved the program
  bool EquivChecked = false; ///< execution-based equivalence ran
  bool EquivOk = false;
  unsigned Groups = 0; ///< superword statements in the schedule
  double ScalarCycles = 0;
  double VectorCycles = 0;
  unsigned LayoutScalarPacks = 0; ///< scalar packs the layout pass placed
  unsigned LayoutArrayPacks = 0;  ///< array packs it replicated
  double LayoutReplicatedBytes = 0;
  std::vector<std::string> Diags; ///< rendered verifier diagnostics
  std::string PreprocessedText;   ///< printKernel after unrolling
  std::string FinalText;          ///< printKernel of the layout result
  std::string ScheduleText;       ///< renderSchedule()
  std::string ProgramText;        ///< printVectorProgram

  double improvement() const {
    return ScalarCycles > 0 ? 1.0 - VectorCycles / ScalarCycles : 0.0;
  }
};

/// Renders the schedule the way `slpc --dump-schedule` prints it (shared
/// so server artifacts and local dumps are byte-identical).
std::string renderSchedule(const Schedule &S);

/// Builds the artifact for \p R (compiled from \p Source).
ServiceArtifact makeArtifact(const Kernel &Source, const PipelineResult &R,
                             bool EquivChecked, bool EquivOk);

std::string serializeArtifact(const ServiceArtifact &A);
bool parseArtifact(const std::string &Text, ServiceArtifact &A,
                   std::string *Err);

/// Request types. Compile is the workhorse; Ping answers readiness
/// probes; Stats returns the server counter snapshot; Shutdown asks the
/// daemon to stop accepting and exit its wait loop.
enum class ServiceRequestType : uint8_t { Compile, Ping, Stats, Shutdown };

struct ServiceRequest {
  ServiceRequestType Type = ServiceRequestType::Compile;
  ServiceOptions Options;
  std::vector<std::string> Kernels; ///< kernel-language texts
};

std::string serializeRequest(const ServiceRequest &R);
bool parseRequest(const std::string &Text, ServiceRequest &R,
                  std::string *Err);

/// One per-kernel reply entry: how it was served plus the raw artifact
/// bytes (parse with parseArtifact on demand).
struct ServiceResult {
  CacheStatus Status = CacheStatus::Miss;
  std::string Artifact;
};

struct ServiceReply {
  bool Ok = false;
  std::string Error;
  std::vector<ServiceResult> Results;
  /// Server-side counters (name -> value), both the per-request tallies
  /// (`service.hits`, ...) and the daemon-lifetime cache totals.
  std::vector<std::pair<std::string, uint64_t>> Counters;

  uint64_t counter(const std::string &Name) const {
    for (const auto &C : Counters)
      if (C.first == Name)
        return C.second;
    return 0;
  }
};

std::string serializeReply(const ServiceReply &R);
bool parseReply(const std::string &Text, ServiceReply &R, std::string *Err);

/// Writes one frame (magic + LE length + \p Payload) to \p Fd, retrying
/// short writes. False (with \p Err) on any socket error.
bool writeFrame(int Fd, const std::string &Payload, std::string *Err);

/// Reads one frame from \p Fd into \p Payload. False on EOF before a
/// header (clean close — \p Err left empty), malformed magic, oversized
/// length, or a truncated payload (\p Err set).
bool readFrame(int Fd, std::string &Payload, std::string *Err);

} // namespace slp

#endif // SLP_SERVICE_PROTOCOL_H
