//===- service/Protocol.cpp -----------------------------------*- C++ -*-===//

#include "service/Protocol.h"

#include "ir/Printer.h"
#include "vector/VectorPrinter.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

using namespace slp;

uint64_t slp::fnv1a64(const std::string &Data, uint64_t H) {
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string slp::hex64(uint64_t H) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

namespace {

const char *machineName(ServiceMachine M) {
  return M == ServiceMachine::Intel ? "intel" : "amd";
}

const char *optimizerCliName(OptimizerKind K) {
  switch (K) {
  case OptimizerKind::Scalar:
    return "scalar";
  case OptimizerKind::Native:
    return "native";
  case OptimizerKind::LarsenSlp:
    return "slp";
  case OptimizerKind::Global:
    return "global";
  case OptimizerKind::GlobalLayout:
    return "global+layout";
  }
  return "<invalid>";
}

std::optional<OptimizerKind> parseOptimizerCliName(const std::string &V) {
  if (V == "scalar")
    return OptimizerKind::Scalar;
  if (V == "native")
    return OptimizerKind::Native;
  if (V == "slp")
    return OptimizerKind::LarsenSlp;
  if (V == "global")
    return OptimizerKind::Global;
  if (V == "global+layout")
    return OptimizerKind::GlobalLayout;
  return std::nullopt;
}

std::string hexDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

void appendLine(std::string &Out, const std::string &Key,
                const std::string &Value) {
  Out += Key;
  Out += '=';
  Out += Value;
  Out += '\n';
}

void appendU64(std::string &Out, const std::string &Key, uint64_t Value) {
  appendLine(Out, Key, std::to_string(Value));
}

void appendFlag(std::string &Out, const std::string &Key, bool Value) {
  appendLine(Out, Key, Value ? "1" : "0");
}

/// Length-prefixed blob: `key-bytes=N\n` + N raw bytes + `\n`.
void appendBlob(std::string &Out, const std::string &Key,
                const std::string &Data) {
  appendU64(Out, Key + "-bytes", Data.size());
  Out += Data;
  Out += '\n';
}

/// Sequential reader over the line/blob serialization. Every accessor
/// returns false after setting the error, so parsers read as straight
/// `if (!C.xxx) return false;` chains.
struct Cursor {
  const std::string &S;
  size_t Pos = 0;
  std::string *Err;

  Cursor(const std::string &S, std::string *Err) : S(S), Err(Err) {}

  bool fail(const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  }

  bool line(std::string &Out) {
    if (Pos >= S.size())
      return fail("unexpected end of payload");
    size_t Nl = S.find('\n', Pos);
    if (Nl == std::string::npos)
      return fail("unterminated line");
    Out.assign(S, Pos, Nl - Pos);
    Pos = Nl + 1;
    return true;
  }

  /// `key=value` with exactly \p Key.
  bool keyed(const std::string &Key, std::string &Value) {
    std::string L;
    if (!line(L))
      return false;
    if (L.rfind(Key + "=", 0) != 0)
      return fail("expected '" + Key + "=', got '" + L + "'");
    Value = L.substr(Key.size() + 1);
    return true;
  }

  bool u64(const std::string &Key, uint64_t &Value) {
    std::string V;
    if (!keyed(Key, V))
      return false;
    char *End = nullptr;
    errno = 0;
    Value = std::strtoull(V.c_str(), &End, 10);
    if (End == V.c_str() || *End != '\0' || errno == ERANGE)
      return fail("'" + Key + "' is not an integer: '" + V + "'");
    return true;
  }

  bool flag(const std::string &Key, bool &Value) {
    std::string V;
    if (!keyed(Key, V))
      return false;
    if (V != "0" && V != "1")
      return fail("'" + Key + "' is not a flag: '" + V + "'");
    Value = V == "1";
    return true;
  }

  bool real(const std::string &Key, double &Value) {
    std::string V;
    if (!keyed(Key, V))
      return false;
    char *End = nullptr;
    Value = std::strtod(V.c_str(), &End);
    if (End == V.c_str() || *End != '\0')
      return fail("'" + Key + "' is not a number: '" + V + "'");
    return true;
  }

  bool blob(const std::string &Key, std::string &Data) {
    uint64_t N = 0;
    if (!u64(Key + "-bytes", N))
      return false;
    if (N > ServiceMaxFrameBytes)
      return fail("'" + Key + "' blob too large");
    if (Pos + N + 1 > S.size())
      return fail("'" + Key + "' blob truncated");
    Data.assign(S, Pos, N);
    Pos += N;
    if (S[Pos] != '\n')
      return fail("'" + Key + "' blob missing terminator");
    ++Pos;
    return true;
  }

  bool done() const { return Pos == S.size(); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Options
//===----------------------------------------------------------------------===//

std::string ServiceOptions::canonical() const {
  std::string Out;
  Out += "slpd-options-v1\n";
  appendLine(Out, "pipeline-version", ServicePipelineVersion);
  appendLine(Out, "opt", optimizerCliName(Kind));
  appendLine(Out, "machine", machineName(Machine));
  appendU64(Out, "bits", Bits);
  appendLine(Out, "grouping-impl", groupingImplName(GroupingEngine));
  appendU64(Out, "exact-budget", ExactBudget);
  appendLine(Out, "exec-engine", execEngineName(Exec));
  appendFlag(Out, "verify-vector", VerifyVector);
  appendFlag(Out, "verify-lint", VerifyLint);
  appendFlag(Out, "werror", VerifyWerror);
  appendFlag(Out, "equivalence", Equivalence);
  return Out;
}

PipelineOptions ServiceOptions::toPipelineOptions() const {
  PipelineOptions P;
  P.Machine = Machine == ServiceMachine::Intel
                  ? MachineModel::intelDunnington()
                  : MachineModel::amdPhenomII();
  if (Bits)
    P.Machine.DatapathBits = Bits;
  P.GroupingEngine = GroupingEngine;
  P.ExactBudget = ExactBudget;
  P.Exec = Exec;
  P.VerifyVector = VerifyVector;
  P.VerifyLint = VerifyLint;
  P.VerifyWerror = VerifyWerror;
  // The server shards at kernel granularity; each kernel compiles on one
  // worker, so the intra-pipeline driver stays serial.
  P.Threads = 1;
  return P;
}

std::optional<ServiceOptions>
slp::parseServiceOptions(const std::string &Text, std::string *Err) {
  Cursor C(Text, Err);
  std::string L;
  if (!C.line(L))
    return std::nullopt;
  if (L != "slpd-options-v1") {
    C.fail("unknown option block '" + L + "'");
    return std::nullopt;
  }
  ServiceOptions O;
  std::string V;
  if (!C.keyed("pipeline-version", V))
    return std::nullopt;
  if (V != ServicePipelineVersion) {
    C.fail("pipeline version mismatch: client '" + V + "', server '" +
           ServicePipelineVersion + "'");
    return std::nullopt;
  }
  if (!C.keyed("opt", V))
    return std::nullopt;
  if (auto K = parseOptimizerCliName(V))
    O.Kind = *K;
  else {
    C.fail("unknown optimizer '" + V + "'");
    return std::nullopt;
  }
  if (!C.keyed("machine", V))
    return std::nullopt;
  if (V == "intel")
    O.Machine = ServiceMachine::Intel;
  else if (V == "amd")
    O.Machine = ServiceMachine::Amd;
  else {
    C.fail("unknown machine '" + V + "'");
    return std::nullopt;
  }
  uint64_t Bits = 0;
  if (!C.u64("bits", Bits))
    return std::nullopt;
  O.Bits = static_cast<unsigned>(Bits);
  if (!C.keyed("grouping-impl", V))
    return std::nullopt;
  if (V == groupingImplName(GroupingImpl::Optimized))
    O.GroupingEngine = GroupingImpl::Optimized;
  else if (V == groupingImplName(GroupingImpl::Reference))
    O.GroupingEngine = GroupingImpl::Reference;
  else if (V == groupingImplName(GroupingImpl::Exact))
    O.GroupingEngine = GroupingImpl::Exact;
  else {
    C.fail("unknown grouping engine '" + V + "'");
    return std::nullopt;
  }
  if (!C.u64("exact-budget", O.ExactBudget))
    return std::nullopt;
  if (!C.keyed("exec-engine", V))
    return std::nullopt;
  if (auto E = parseExecEngineName(V))
    O.Exec = *E;
  else {
    C.fail("unknown exec engine '" + V + "'");
    return std::nullopt;
  }
  if (!C.flag("verify-vector", O.VerifyVector) ||
      !C.flag("verify-lint", O.VerifyLint) ||
      !C.flag("werror", O.VerifyWerror) ||
      !C.flag("equivalence", O.Equivalence))
    return std::nullopt;
  return O;
}

std::string slp::artifactKeyMaterial(const std::string &KernelText,
                                     const ServiceOptions &Options) {
  // canonical() embeds the pipeline version; the '\0' separator keeps
  // (options, kernel) splits unambiguous.
  std::string M = Options.canonical();
  M += '\0';
  M += KernelText;
  return M;
}

//===----------------------------------------------------------------------===//
// Artifacts
//===----------------------------------------------------------------------===//

const char *slp::cacheStatusName(CacheStatus S) {
  switch (S) {
  case CacheStatus::Miss:
    return "miss";
  case CacheStatus::MemoryHit:
    return "hit-mem";
  case CacheStatus::DiskHit:
    return "hit-disk";
  case CacheStatus::Coalesced:
    return "coalesced";
  }
  return "<invalid>";
}

std::optional<CacheStatus>
slp::parseCacheStatusName(const std::string &Name) {
  if (Name == "miss")
    return CacheStatus::Miss;
  if (Name == "hit-mem")
    return CacheStatus::MemoryHit;
  if (Name == "hit-disk")
    return CacheStatus::DiskHit;
  if (Name == "coalesced")
    return CacheStatus::Coalesced;
  return std::nullopt;
}

std::string slp::renderSchedule(const Schedule &S) {
  std::string Out;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf),
                "== schedule (%u superword statement(s)) ==\n",
                S.numGroups());
  Out += Buf;
  for (const ScheduleItem &Item : S.Items) {
    Out += "  ";
    Out += Item.isGroup() ? "superword <" : "scalar    <";
    for (unsigned L = 0; L != Item.width(); ++L) {
      if (L)
        Out += ", ";
      std::snprintf(Buf, sizeof(Buf), "S%u", Item.Lanes[L]);
      Out += Buf;
    }
    Out += ">\n";
  }
  return Out;
}

ServiceArtifact slp::makeArtifact(const Kernel &Source,
                                  const PipelineResult &R, bool EquivChecked,
                                  bool EquivOk) {
  (void)Source;
  ServiceArtifact A;
  A.KernelName = Source.Name;
  A.Optimizer = optimizerName(R.Kind);
  A.Transformed = R.TransformationApplied;
  A.LayoutApplied = R.LayoutApplied;
  A.Simulated = R.Simulated;
  A.Verified = R.Verified;
  A.EquivChecked = EquivChecked;
  A.EquivOk = EquivOk;
  A.Groups = R.TheSchedule.numGroups();
  A.ScalarCycles = R.ScalarSim.Cycles;
  A.VectorCycles = R.VectorSim.Cycles;
  A.LayoutScalarPacks = R.Layout.ScalarPacksPlaced;
  A.LayoutArrayPacks = R.Layout.ArrayPacksReplicated;
  A.LayoutReplicatedBytes = R.Layout.ReplicatedBytes;
  for (const Diagnostic &D : R.VerifyDiags)
    A.Diags.push_back(D.render());
  A.PreprocessedText = printKernel(R.Preprocessed);
  A.FinalText = printKernel(R.Final);
  A.ScheduleText = renderSchedule(R.TheSchedule);
  A.ProgramText = printVectorProgram(R.Final, R.Program);
  return A;
}

std::string slp::serializeArtifact(const ServiceArtifact &A) {
  std::string Out;
  Out += "slpd-artifact-v1\n";
  appendLine(Out, "name", A.KernelName);
  appendLine(Out, "optimizer", A.Optimizer);
  appendFlag(Out, "transformed", A.Transformed);
  appendFlag(Out, "layout-applied", A.LayoutApplied);
  appendFlag(Out, "simulated", A.Simulated);
  appendFlag(Out, "verified", A.Verified);
  appendFlag(Out, "equiv-checked", A.EquivChecked);
  appendFlag(Out, "equiv-ok", A.EquivOk);
  appendU64(Out, "groups", A.Groups);
  appendLine(Out, "scalar-cycles", hexDouble(A.ScalarCycles));
  appendLine(Out, "vector-cycles", hexDouble(A.VectorCycles));
  appendU64(Out, "layout-scalar-packs", A.LayoutScalarPacks);
  appendU64(Out, "layout-array-packs", A.LayoutArrayPacks);
  appendLine(Out, "layout-replicated-bytes",
             hexDouble(A.LayoutReplicatedBytes));
  appendU64(Out, "diag-count", A.Diags.size());
  for (const std::string &D : A.Diags)
    appendBlob(Out, "diag", D);
  appendBlob(Out, "preprocessed", A.PreprocessedText);
  appendBlob(Out, "final", A.FinalText);
  appendBlob(Out, "schedule", A.ScheduleText);
  appendBlob(Out, "program", A.ProgramText);
  return Out;
}

bool slp::parseArtifact(const std::string &Text, ServiceArtifact &A,
                        std::string *Err) {
  Cursor C(Text, Err);
  std::string L;
  if (!C.line(L))
    return false;
  if (L != "slpd-artifact-v1")
    return C.fail("unknown artifact header '" + L + "'");
  uint64_t Groups = 0, ScalarPacks = 0, ArrayPacks = 0, DiagCount = 0;
  if (!C.keyed("name", A.KernelName) ||
      !C.keyed("optimizer", A.Optimizer) ||
      !C.flag("transformed", A.Transformed) ||
      !C.flag("layout-applied", A.LayoutApplied) ||
      !C.flag("simulated", A.Simulated) ||
      !C.flag("verified", A.Verified) ||
      !C.flag("equiv-checked", A.EquivChecked) ||
      !C.flag("equiv-ok", A.EquivOk) || !C.u64("groups", Groups) ||
      !C.real("scalar-cycles", A.ScalarCycles) ||
      !C.real("vector-cycles", A.VectorCycles) ||
      !C.u64("layout-scalar-packs", ScalarPacks) ||
      !C.u64("layout-array-packs", ArrayPacks) ||
      !C.real("layout-replicated-bytes", A.LayoutReplicatedBytes) ||
      !C.u64("diag-count", DiagCount))
    return false;
  A.Groups = static_cast<unsigned>(Groups);
  A.LayoutScalarPacks = static_cast<unsigned>(ScalarPacks);
  A.LayoutArrayPacks = static_cast<unsigned>(ArrayPacks);
  A.Diags.clear();
  for (uint64_t I = 0; I != DiagCount; ++I) {
    std::string D;
    if (!C.blob("diag", D))
      return false;
    A.Diags.push_back(std::move(D));
  }
  return C.blob("preprocessed", A.PreprocessedText) &&
         C.blob("final", A.FinalText) &&
         C.blob("schedule", A.ScheduleText) &&
         C.blob("program", A.ProgramText);
}

//===----------------------------------------------------------------------===//
// Requests and replies
//===----------------------------------------------------------------------===//

namespace {

const char *requestTypeName(ServiceRequestType T) {
  switch (T) {
  case ServiceRequestType::Compile:
    return "compile";
  case ServiceRequestType::Ping:
    return "ping";
  case ServiceRequestType::Stats:
    return "stats";
  case ServiceRequestType::Shutdown:
    return "shutdown";
  }
  return "<invalid>";
}

std::optional<ServiceRequestType> parseRequestTypeName(const std::string &V) {
  if (V == "compile")
    return ServiceRequestType::Compile;
  if (V == "ping")
    return ServiceRequestType::Ping;
  if (V == "stats")
    return ServiceRequestType::Stats;
  if (V == "shutdown")
    return ServiceRequestType::Shutdown;
  return std::nullopt;
}

} // namespace

std::string slp::serializeRequest(const ServiceRequest &R) {
  std::string Out;
  Out += "slpd-request-v1\n";
  appendLine(Out, "type", requestTypeName(R.Type));
  appendBlob(Out, "options", R.Options.canonical());
  appendU64(Out, "kernel-count", R.Kernels.size());
  for (const std::string &K : R.Kernels)
    appendBlob(Out, "kernel", K);
  return Out;
}

bool slp::parseRequest(const std::string &Text, ServiceRequest &R,
                       std::string *Err) {
  Cursor C(Text, Err);
  std::string L;
  if (!C.line(L))
    return false;
  if (L != "slpd-request-v1")
    return C.fail("unknown request header '" + L + "'");
  std::string V;
  if (!C.keyed("type", V))
    return false;
  if (auto T = parseRequestTypeName(V))
    R.Type = *T;
  else
    return C.fail("unknown request type '" + V + "'");
  std::string OptionsText;
  if (!C.blob("options", OptionsText))
    return false;
  if (auto O = parseServiceOptions(OptionsText, Err))
    R.Options = *O;
  else
    return false;
  uint64_t Count = 0;
  if (!C.u64("kernel-count", Count))
    return false;
  R.Kernels.clear();
  for (uint64_t I = 0; I != Count; ++I) {
    std::string K;
    if (!C.blob("kernel", K))
      return false;
    R.Kernels.push_back(std::move(K));
  }
  return true;
}

std::string slp::serializeReply(const ServiceReply &R) {
  std::string Out;
  Out += "slpd-reply-v1\n";
  appendLine(Out, "status", R.Ok ? "ok" : "error");
  if (!R.Ok)
    appendBlob(Out, "error", R.Error);
  appendU64(Out, "result-count", R.Results.size());
  for (const ServiceResult &Res : R.Results) {
    appendLine(Out, "cache", cacheStatusName(Res.Status));
    appendBlob(Out, "artifact", Res.Artifact);
  }
  appendU64(Out, "counter-count", R.Counters.size());
  for (const auto &C : R.Counters)
    appendLine(Out, "counter", C.first + ":" + std::to_string(C.second));
  return Out;
}

bool slp::parseReply(const std::string &Text, ServiceReply &R,
                     std::string *Err) {
  Cursor C(Text, Err);
  std::string L;
  if (!C.line(L))
    return false;
  if (L != "slpd-reply-v1")
    return C.fail("unknown reply header '" + L + "'");
  std::string V;
  if (!C.keyed("status", V))
    return false;
  R.Ok = V == "ok";
  if (!R.Ok) {
    if (V != "error")
      return C.fail("unknown reply status '" + V + "'");
    if (!C.blob("error", R.Error))
      return false;
  }
  uint64_t Count = 0;
  if (!C.u64("result-count", Count))
    return false;
  R.Results.clear();
  for (uint64_t I = 0; I != Count; ++I) {
    ServiceResult Res;
    if (!C.keyed("cache", V))
      return false;
    if (auto S = parseCacheStatusName(V))
      Res.Status = *S;
    else
      return C.fail("unknown cache status '" + V + "'");
    if (!C.blob("artifact", Res.Artifact))
      return false;
    R.Results.push_back(std::move(Res));
  }
  if (!C.u64("counter-count", Count))
    return false;
  R.Counters.clear();
  for (uint64_t I = 0; I != Count; ++I) {
    if (!C.keyed("counter", V))
      return false;
    size_t Colon = V.rfind(':');
    if (Colon == std::string::npos)
      return C.fail("malformed counter '" + V + "'");
    char *End = nullptr;
    uint64_t Value = std::strtoull(V.c_str() + Colon + 1, &End, 10);
    if (*End != '\0')
      return C.fail("malformed counter value '" + V + "'");
    R.Counters.emplace_back(V.substr(0, Colon), Value);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

namespace {

bool sendAll(int Fd, const void *Data, size_t Size, std::string *Err) {
  const char *P = static_cast<const char *>(Data);
  while (Size) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as an
    // error return, not a SIGPIPE kill of the daemon.
    ssize_t N = ::send(Fd, P, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = std::string("send failed: ") + std::strerror(errno);
      return false;
    }
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// Reads exactly \p Size bytes; \p AtEof reports a clean EOF before the
/// first byte.
bool recvAll(int Fd, void *Data, size_t Size, bool &AtEof,
             std::string *Err) {
  AtEof = false;
  char *P = static_cast<char *>(Data);
  size_t Got = 0;
  while (Got < Size) {
    ssize_t N = ::recv(Fd, P + Got, Size - Got, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = std::string("recv failed: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      if (Got == 0)
        AtEof = true;
      else if (Err)
        *Err = "connection closed mid-frame";
      return false;
    }
    Got += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

bool slp::writeFrame(int Fd, const std::string &Payload, std::string *Err) {
  if (Payload.size() > ServiceMaxFrameBytes) {
    if (Err)
      *Err = "frame payload too large";
    return false;
  }
  unsigned char Header[8];
  uint32_t Magic = ServiceFrameMagic;
  uint32_t Size = static_cast<uint32_t>(Payload.size());
  for (int I = 0; I != 4; ++I) {
    Header[I] = static_cast<unsigned char>(Magic >> (8 * I));
    Header[4 + I] = static_cast<unsigned char>(Size >> (8 * I));
  }
  return sendAll(Fd, Header, sizeof(Header), Err) &&
         sendAll(Fd, Payload.data(), Payload.size(), Err);
}

bool slp::readFrame(int Fd, std::string &Payload, std::string *Err) {
  if (Err)
    Err->clear();
  unsigned char Header[8];
  bool AtEof = false;
  if (!recvAll(Fd, Header, sizeof(Header), AtEof, Err))
    return false; // clean EOF leaves *Err empty
  uint32_t Magic = 0, Size = 0;
  for (int I = 0; I != 4; ++I) {
    Magic |= static_cast<uint32_t>(Header[I]) << (8 * I);
    Size |= static_cast<uint32_t>(Header[4 + I]) << (8 * I);
  }
  if (Magic != ServiceFrameMagic) {
    if (Err)
      *Err = "bad frame magic (not an slpd peer?)";
    return false;
  }
  if (Size > ServiceMaxFrameBytes) {
    if (Err)
      *Err = "frame too large";
    return false;
  }
  Payload.resize(Size);
  if (Size == 0)
    return true;
  if (!recvAll(Fd, Payload.data(), Size, AtEof, Err)) {
    if (AtEof && Err)
      *Err = "connection closed mid-frame";
    return false;
  }
  return true;
}
