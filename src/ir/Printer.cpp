//===- ir/Printer.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Printer.h"

#include "support/Error.h"

#include <cmath>
#include <cstdio>

using namespace slp;

static std::string formatConstant(double V) {
  if (V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.1f", V);
    return Buf;
  }
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

std::string slp::printOperand(const Kernel &K, const Operand &Op) {
  switch (Op.kind()) {
  case Operand::Kind::Constant:
    return formatConstant(Op.constantValue());
  case Operand::Kind::Scalar:
    return K.scalar(Op.symbol()).Name;
  case Operand::Kind::Array: {
    std::string Out = K.array(Op.symbol()).Name;
    std::vector<std::string> Names = K.indexNames();
    for (const AffineExpr &S : Op.subscripts())
      Out += "[" + S.toString(Names) + "]";
    return Out;
  }
  }
  slpUnreachable("invalid operand kind");
}

/// Operator precedence for parenthesization: higher binds tighter.
static int precedenceOf(OpCode Op) {
  if (isCompareOp(Op))
    return 1;
  switch (Op) {
  case OpCode::Add:
  case OpCode::Sub:
    return 2;
  case OpCode::Mul:
  case OpCode::Div:
    return 3;
  default:
    return 4; // function-call syntax; never needs parens
  }
}

static std::string printExprPrec(const Kernel &K, const Expr &E,
                                 int ParentPrec) {
  if (E.isLeaf())
    return printOperand(K, E.leaf());

  OpCode Op = E.opcode();
  if (Op == OpCode::Min || Op == OpCode::Max) {
    return std::string(opcodeName(Op)) + "(" +
           printExprPrec(K, E.child(0), 0) + ", " +
           printExprPrec(K, E.child(1), 0) + ")";
  }
  if (Op == OpCode::Select) {
    return "select(" + printExprPrec(K, E.child(0), 0) + ", " +
           printExprPrec(K, E.child(1), 0) + ", " +
           printExprPrec(K, E.child(2), 0) + ")";
  }
  if (Op == OpCode::Sqrt || Op == OpCode::Abs) {
    return std::string(opcodeName(Op)) + "(" +
           printExprPrec(K, E.child(0), 0) + ")";
  }
  if (Op == OpCode::Neg)
    return "-" + printExprPrec(K, E.child(0), 4);

  int Prec = precedenceOf(Op);
  // Comparisons are non-associative in the grammar, so a comparison child
  // of a comparison always prints parenthesized (Prec+1 on both sides).
  int ChildPrec = isCompareOp(Op) ? Prec + 1 : Prec;
  std::string Out = printExprPrec(K, E.child(0), ChildPrec) + " " +
                    opcodeName(Op) + " " +
                    printExprPrec(K, E.child(1), Prec + 1);
  if (Prec < ParentPrec)
    return "(" + Out + ")";
  return Out;
}

std::string slp::printExpr(const Kernel &K, const Expr &E) {
  return printExprPrec(K, E, 0);
}

std::string slp::printStatement(const Kernel &K, const Statement &S) {
  std::string Out;
  if (S.hasGuard())
    Out += "if (" + printExpr(K, S.guard()) + ") ";
  Out += printOperand(K, S.lhs()) + " = " + printExpr(K, S.rhs()) + ";";
  return Out;
}

std::string slp::printKernel(const Kernel &K) {
  std::string Out = "kernel " + K.Name + " {\n";
  for (const ScalarSymbol &S : K.Scalars)
    Out += "  scalar " + std::string(typeName(S.Ty)) + " " + S.Name + ";\n";
  for (const ArraySymbol &A : K.Arrays) {
    Out += "  array " + std::string(typeName(A.Ty)) + " " + A.Name;
    for (int64_t D : A.DimSizes)
      Out += "[" + std::to_string(D) + "]";
    if (A.ReadOnly)
      Out += " readonly";
    Out += ";\n";
  }
  std::string Indent = "  ";
  for (const Loop &L : K.Loops) {
    Out += Indent + "loop " + L.IndexName + " = " + std::to_string(L.Lower) +
           " .. " + std::to_string(L.Upper);
    if (L.Step != 1)
      Out += " step " + std::to_string(L.Step);
    Out += " {\n";
    Indent += "  ";
  }
  for (const Statement &S : K.Body)
    Out += Indent + printStatement(K, S) + "\n";
  for (unsigned D = static_cast<unsigned>(K.Loops.size()); D != 0; --D) {
    Indent.resize(Indent.size() - 2);
    Out += Indent + "}\n";
  }
  Out += "}\n";
  return Out;
}
