//===- ir/Type.h - Scalar element types -------------------------*- C++ -*-===//
///
/// \file
/// Scalar element types for kernel values. The SIMD lane count of a machine
/// is its datapath width divided by the element size, so types directly
/// determine how many statements fit in one superword statement.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_TYPE_H
#define SLP_IR_TYPE_H

#include <cstdint>

namespace slp {

/// Element type of a scalar or array value.
enum class ScalarType : uint8_t {
  Int32,
  Int64,
  Float32,
  Float64,
};

/// Returns the size in bytes of \p Ty.
inline unsigned byteSizeOf(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Int32:
  case ScalarType::Float32:
    return 4;
  case ScalarType::Int64:
  case ScalarType::Float64:
    return 8;
  }
  return 0;
}

/// Returns the size in bits of \p Ty.
inline unsigned bitSizeOf(ScalarType Ty) { return byteSizeOf(Ty) * 8; }

/// Returns the keyword used for \p Ty in the textual kernel language.
inline const char *typeName(ScalarType Ty) {
  switch (Ty) {
  case ScalarType::Int32:
    return "int";
  case ScalarType::Int64:
    return "long";
  case ScalarType::Float32:
    return "float";
  case ScalarType::Float64:
    return "double";
  }
  return "<invalid>";
}

/// Returns true for the two floating-point element types.
inline bool isFloatType(ScalarType Ty) {
  return Ty == ScalarType::Float32 || Ty == ScalarType::Float64;
}

} // namespace slp

#endif // SLP_IR_TYPE_H
