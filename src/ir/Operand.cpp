//===- ir/Operand.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Operand.h"

using namespace slp;

bool Operand::operator==(const Operand &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Constant:
    return ConstVal == Other.ConstVal;
  case Kind::Scalar:
    return Sym == Other.Sym;
  case Kind::Array:
    return Sym == Other.Sym && Subscripts == Other.Subscripts;
  }
  return false;
}

std::string Operand::key() const {
  switch (TheKind) {
  case Kind::Constant:
    return "c:" + std::to_string(ConstVal);
  case Kind::Scalar:
    return "s:" + std::to_string(Sym);
  case Kind::Array: {
    std::string K = "a:" + std::to_string(Sym);
    for (const AffineExpr &S : Subscripts)
      K += "[" + S.key() + "]";
    return K;
  }
  }
  return "<invalid>";
}
