//===- ir/Parser.h - Textual kernel language parser --------------*- C++ -*-===//
///
/// \file
/// Parser for the textual kernel language, e.g.:
/// \code
///   kernel example {
///     scalar float a;
///     array float A[256];
///     array float B[1024] readonly;
///     loop i = 0 .. 64 {
///       a = B[4*i] * 2.0;
///       A[2*i] = a + B[4*i + 2];
///     }
///   }
/// \endcode
/// Declarations come first, then an optional perfect loop nest, then the
/// innermost basic block of assignment statements. Subscripts must be affine
/// in the loop indices.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_PARSER_H
#define SLP_IR_PARSER_H

#include "ir/Kernel.h"

#include <optional>
#include <string>
#include <vector>

namespace slp {

/// Result of parsing: either a kernel, or a diagnostic with 1-based line
/// information.
struct ParseResult {
  std::optional<Kernel> TheKernel;
  std::string ErrorMessage;
  unsigned ErrorLine = 0;

  bool succeeded() const { return TheKernel.has_value(); }
};

/// Parses \p Source as one kernel definition.
ParseResult parseKernel(const std::string &Source);

/// Result of parsing a module (a sequence of kernel definitions — the
/// paper's "set of basic blocks of a program").
struct ModuleParseResult {
  std::vector<Kernel> Kernels;
  std::string ErrorMessage;
  unsigned ErrorLine = 0;

  bool succeeded() const { return ErrorMessage.empty(); }
};

/// Parses \p Source as one or more kernel definitions.
ModuleParseResult parseModule(const std::string &Source);

} // namespace slp

#endif // SLP_IR_PARSER_H
