//===- ir/Parser.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Parser.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace slp;

namespace {

enum class TokKind {
  Ident,
  Number,
  Punct, // single-char punctuation or ".." / "=" etc.
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  double NumValue = 0;
  bool IsInteger = false;
  unsigned Line = 1;
};

/// Hand-written lexer for the kernel language.
class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) { advance(); }

  const Token &current() const { return Cur; }

  void advance() {
    skipWhitespaceAndComments();
    Cur.Line = Line;
    if (Pos >= Src.size()) {
      Cur.Kind = TokKind::End;
      Cur.Text.clear();
      return;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Cur.Kind = TokKind::Ident;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      bool SawDot = false, SawExp = false;
      while (Pos < Src.size()) {
        char D = Src[Pos];
        if (std::isdigit(static_cast<unsigned char>(D))) {
          ++Pos;
          continue;
        }
        // Treat '.' as part of the number only if not the ".." range
        // operator and only once.
        if (D == '.' && !SawDot && !SawExp &&
            !(Pos + 1 < Src.size() && Src[Pos + 1] == '.')) {
          SawDot = true;
          ++Pos;
          continue;
        }
        if ((D == 'e' || D == 'E') && !SawExp && Pos + 1 < Src.size() &&
            (std::isdigit(static_cast<unsigned char>(Src[Pos + 1])) ||
             Src[Pos + 1] == '-' || Src[Pos + 1] == '+')) {
          SawExp = true;
          Pos += 2;
          continue;
        }
        break;
      }
      Cur.Kind = TokKind::Number;
      Cur.Text = Src.substr(Start, Pos - Start);
      Cur.NumValue = std::strtod(Cur.Text.c_str(), nullptr);
      Cur.IsInteger = !SawDot && !SawExp;
      return;
    }
    if (C == '.' && Pos + 1 < Src.size() && Src[Pos + 1] == '.') {
      Cur.Kind = TokKind::Punct;
      Cur.Text = "..";
      Pos += 2;
      return;
    }
    // Two-character comparison operators (the lone '=' stays assignment).
    if ((C == '<' || C == '>' || C == '=' || C == '!') &&
        Pos + 1 < Src.size() && Src[Pos + 1] == '=') {
      Cur.Kind = TokKind::Punct;
      Cur.Text = std::string(1, C) + "=";
      Pos += 2;
      return;
    }
    Cur.Kind = TokKind::Punct;
    Cur.Text = std::string(1, C);
    ++Pos;
  }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Src.size() && Src[Pos + 1] == '/') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  unsigned Line = 1;
  Token Cur;
};

/// Recursive-descent parser producing a Kernel.
class Parser {
public:
  explicit Parser(const std::string &Source) : Lex(Source) {}

  ParseResult run() {
    parseKernelDef();
    if (!Failed && Lex.current().Kind != TokKind::End)
      error("trailing input after kernel definition");
    ParseResult R;
    if (Failed) {
      R.ErrorMessage = Message;
      R.ErrorLine = ErrLine;
    } else {
      R.TheKernel = std::move(K);
    }
    return R;
  }

  ModuleParseResult runModule() {
    ModuleParseResult R;
    while (!Failed && Lex.current().Kind != TokKind::End) {
      K = Kernel();
      LoopDepths.clear();
      ExprDepth = 0;
      parseKernelDef();
      if (!Failed)
        R.Kernels.push_back(std::move(K));
    }
    if (Failed) {
      R.ErrorMessage = Message;
      R.ErrorLine = ErrLine;
    } else if (R.Kernels.empty()) {
      R.ErrorMessage = "no kernel definitions found";
      R.ErrorLine = 1;
    }
    return R;
  }

private:
  Lexer Lex;
  Kernel K;
  bool Failed = false;
  std::string Message;
  unsigned ErrLine = 0;
  std::map<std::string, unsigned> LoopDepths;
  /// Current expression nesting depth (parens / unary-minus chains).
  unsigned ExprDepth = 0;
  static constexpr unsigned MaxExprDepth = 64;

  void error(const std::string &Msg) {
    if (Failed)
      return;
    Failed = true;
    Message = Msg;
    ErrLine = Lex.current().Line;
  }

  const Token &tok() const { return Lex.current(); }

  bool isIdent(const char *Text) const {
    return tok().Kind == TokKind::Ident && tok().Text == Text;
  }

  bool isPunct(const char *Text) const {
    return tok().Kind == TokKind::Punct && tok().Text == Text;
  }

  void expectPunct(const char *Text) {
    if (!isPunct(Text)) {
      error(std::string("expected '") + Text + "', found '" + tok().Text +
            "'");
      return;
    }
    Lex.advance();
  }

  void expectIdent(const char *Text) {
    if (!isIdent(Text)) {
      error(std::string("expected '") + Text + "', found '" + tok().Text +
            "'");
      return;
    }
    Lex.advance();
  }

  std::string parseIdentifier() {
    if (tok().Kind != TokKind::Ident) {
      error("expected identifier, found '" + tok().Text + "'");
      return "";
    }
    std::string Name = tok().Text;
    Lex.advance();
    return Name;
  }

  int64_t parseInteger() {
    bool Negative = false;
    if (isPunct("-")) {
      Negative = true;
      Lex.advance();
    }
    int64_t V = parseIntegerNoSign();
    return Negative ? -V : V;
  }

  std::optional<ScalarType> parseType() {
    if (isIdent("float")) {
      Lex.advance();
      return ScalarType::Float32;
    }
    if (isIdent("double")) {
      Lex.advance();
      return ScalarType::Float64;
    }
    if (isIdent("int")) {
      Lex.advance();
      return ScalarType::Int32;
    }
    if (isIdent("long")) {
      Lex.advance();
      return ScalarType::Int64;
    }
    error("expected element type, found '" + tok().Text + "'");
    return std::nullopt;
  }

  void parseKernelDef() {
    expectIdent("kernel");
    K.Name = parseIdentifier();
    expectPunct("{");
    // Declarations.
    while (!Failed && (isIdent("scalar") || isIdent("array")))
      parseDeclaration();
    // Loop nest.
    unsigned OpenLoops = 0;
    while (!Failed && isIdent("loop")) {
      parseLoopHeader();
      ++OpenLoops;
    }
    // Statements.
    while (!Failed && !isPunct("}") && tok().Kind != TokKind::End)
      parseStatement();
    // Closing braces for loops, then the kernel.
    for (unsigned I = 0; I != OpenLoops && !Failed; ++I)
      expectPunct("}");
    expectPunct("}");
  }

  void parseDeclaration() {
    bool IsScalar = isIdent("scalar");
    Lex.advance();
    std::optional<ScalarType> Ty = parseType();
    if (!Ty)
      return;
    std::string Name = parseIdentifier();
    if (Failed)
      return;
    if (K.findScalar(Name) || K.findArray(Name)) {
      error("duplicate symbol '" + Name + "'");
      return;
    }
    if (IsScalar) {
      K.addScalar(Name, *Ty);
      // Allow `scalar float a, b, c;`.
      while (!Failed && isPunct(",")) {
        Lex.advance();
        std::string Extra = parseIdentifier();
        if (Failed)
          return;
        if (K.findScalar(Extra) || K.findArray(Extra)) {
          error("duplicate symbol '" + Extra + "'");
          return;
        }
        K.addScalar(Extra, *Ty);
      }
      expectPunct(";");
      return;
    }
    std::vector<int64_t> Dims;
    int64_t TotalElements = 1;
    while (!Failed && isPunct("[")) {
      Lex.advance();
      int64_t Dim = parseInteger();
      if (!Failed && Dim <= 0) {
        error("array '" + Name + "' dimension must be positive");
        return;
      }
      // Cap the total allocation so a hostile declaration cannot overflow
      // the element-count product or exhaust memory at environment setup.
      if (!Failed && (Dim > (int64_t{1} << 40) / TotalElements)) {
        error("array '" + Name + "' too large");
        return;
      }
      TotalElements *= Dim;
      Dims.push_back(Dim);
      expectPunct("]");
    }
    if (Failed)
      return;
    if (Dims.empty()) {
      error("array '" + Name + "' requires at least one dimension");
      return;
    }
    bool ReadOnly = false;
    if (isIdent("readonly")) {
      ReadOnly = true;
      Lex.advance();
    }
    expectPunct(";");
    if (!Failed)
      K.addArray(Name, *Ty, std::move(Dims), ReadOnly);
  }

  void parseLoopHeader() {
    expectIdent("loop");
    std::string Index = parseIdentifier();
    if (Failed)
      return;
    if (LoopDepths.count(Index)) {
      error("duplicate loop index '" + Index + "'");
      return;
    }
    expectPunct("=");
    int64_t Lower = parseInteger();
    expectPunct("..");
    int64_t Upper = parseInteger();
    int64_t Step = 1;
    if (isIdent("step")) {
      Lex.advance();
      Step = parseInteger();
      if (!Failed && Step <= 0) {
        error("loop step must be positive");
        return;
      }
    }
    expectPunct("{");
    if (Failed)
      return;
    LoopDepths[Index] = static_cast<unsigned>(K.Loops.size());
    K.Loops.push_back(Loop{Index, Lower, Upper, Step});
  }

  void parseStatement() {
    if (isIdent("if")) {
      parseIfStatement();
      return;
    }
    parseSimpleStatement(nullptr);
  }

  /// if := 'if' '(' expr ')' (simpleStmt | '{' simpleStmt+ '}')
  /// Every statement under the guard gets its own clone of the condition
  /// (the block form is sugar for repeating the guard).
  void parseIfStatement() {
    expectIdent("if");
    expectPunct("(");
    ExprPtr Cond = parseExpr();
    expectPunct(")");
    if (Failed)
      return;
    if (isPunct("{")) {
      Lex.advance();
      unsigned Count = 0;
      while (!Failed && !isPunct("}") && tok().Kind != TokKind::End) {
        if (isIdent("if")) {
          error("nested 'if' is not supported; compose the condition with "
                "'*' instead");
          return;
        }
        parseSimpleStatement(&Cond);
        ++Count;
      }
      expectPunct("}");
      if (!Failed && Count == 0)
        error("empty 'if' block");
      return;
    }
    if (isIdent("if")) {
      error("nested 'if' is not supported; compose the condition with '*' "
            "instead");
      return;
    }
    parseSimpleStatement(&Cond);
  }

  void parseSimpleStatement(const ExprPtr *Guard) {
    Operand Lhs = parseLvalue();
    if (Failed)
      return;
    expectPunct("=");
    ExprPtr Rhs = parseExpr();
    expectPunct(";");
    if (!Failed)
      K.Body.append(Statement(std::move(Lhs), std::move(Rhs),
                              Guard ? (*Guard)->clone() : nullptr));
  }

  Operand parseLvalue() {
    std::string Name = parseIdentifier();
    if (Failed)
      return Operand();
    if (std::optional<SymbolId> S = K.findScalar(Name))
      return Operand::makeScalar(*S);
    std::optional<SymbolId> A = K.findArray(Name);
    if (!A) {
      error("unknown symbol '" + Name + "'");
      return Operand();
    }
    std::vector<AffineExpr> Subs = parseSubscripts(*A);
    return Operand::makeArray(*A, std::move(Subs));
  }

  std::vector<AffineExpr> parseSubscripts(SymbolId Array) {
    std::vector<AffineExpr> Subs;
    while (!Failed && isPunct("[")) {
      Lex.advance();
      Subs.push_back(parseAffine());
      expectPunct("]");
    }
    if (!Failed && Subs.size() != K.array(Array).DimSizes.size())
      error("subscript count does not match dimensionality of array '" +
            K.array(Array).Name + "'");
    return Subs;
  }

  /// affine := term (('+'|'-') term)*
  /// term   := INT ('*' IDENT)? | IDENT ('*' INT)?
  AffineExpr parseAffine() {
    AffineExpr Result = parseAffineTerm(/*Negate=*/false);
    while (!Failed && (isPunct("+") || isPunct("-"))) {
      bool Neg = isPunct("-");
      Lex.advance();
      Result = Result + parseAffineTerm(Neg);
    }
    return Result;
  }

  AffineExpr parseAffineTerm(bool Negate) {
    int64_t Sign = Negate ? -1 : 1;
    if (isPunct("-")) {
      Lex.advance();
      Sign = -Sign;
    }
    if (tok().Kind == TokKind::Number) {
      int64_t C = parseIntegerNoSign();
      if (Failed)
        return AffineExpr();
      if (isPunct("*")) {
        Lex.advance();
        std::string Index = parseIdentifier();
        if (Failed)
          return AffineExpr();
        auto It = LoopDepths.find(Index);
        if (It == LoopDepths.end()) {
          error("unknown loop index '" + Index + "' in subscript");
          return AffineExpr();
        }
        return AffineExpr::term(It->second, Sign * C);
      }
      return AffineExpr(Sign * C);
    }
    std::string Index = parseIdentifier();
    if (Failed)
      return AffineExpr();
    auto It = LoopDepths.find(Index);
    if (It == LoopDepths.end()) {
      error("unknown loop index '" + Index + "' in subscript");
      return AffineExpr();
    }
    int64_t Coeff = 1;
    if (isPunct("*")) {
      Lex.advance();
      Coeff = parseIntegerNoSign();
    }
    return AffineExpr::term(It->second, Sign * Coeff);
  }

  int64_t parseIntegerNoSign() {
    if (tok().Kind != TokKind::Number || !tok().IsInteger) {
      error("expected integer, found '" + tok().Text + "'");
      return 0;
    }
    // The lexer stores numbers as doubles; above 2^53 the value is no
    // longer exactly representable and the conversion to int64_t would be
    // lossy (and UB past 2^63), so reject oversized literals outright.
    if (tok().NumValue > 9007199254740992.0) {
      error("integer literal '" + tok().Text + "' too large");
      return 0;
    }
    int64_t V = static_cast<int64_t>(tok().NumValue);
    Lex.advance();
    return V;
  }

  /// expr := addExpr (cmpOp addExpr)?   -- comparisons do not associate
  ExprPtr parseExpr() {
    // Parenthesized and unary-minus nesting recurse through here; bound
    // the depth so deeply nested input fails cleanly instead of
    // overflowing the stack.
    if (++ExprDepth > MaxExprDepth) {
      error("expression nested too deeply");
      --ExprDepth;
      return Expr::makeLeaf(Operand::makeConstant(0));
    }
    // The depth stays elevated across the operator parsing: operands in
    // RHS position nest inside this call and must count against the guard.
    ExprPtr Lhs = parseAddExpr();
    if (!Failed) {
      std::optional<OpCode> Cmp;
      if (isPunct("<"))
        Cmp = OpCode::CmpLT;
      else if (isPunct("<="))
        Cmp = OpCode::CmpLE;
      else if (isPunct(">"))
        Cmp = OpCode::CmpGT;
      else if (isPunct(">="))
        Cmp = OpCode::CmpGE;
      else if (isPunct("=="))
        Cmp = OpCode::CmpEQ;
      else if (isPunct("!="))
        Cmp = OpCode::CmpNE;
      if (Cmp) {
        Lex.advance();
        ExprPtr Rhs = parseAddExpr();
        if (!Failed) {
          Lhs = Expr::makeBinary(*Cmp, std::move(Lhs), std::move(Rhs));
          // Comparisons are non-associative: `a < b < c` is rejected
          // (parenthesize to compare against a comparison's 0/1 result).
          if (isPunct("<") || isPunct("<=") || isPunct(">") ||
              isPunct(">=") || isPunct("==") || isPunct("!="))
            error("comparisons do not chain; parenthesize the left "
                  "comparison");
        }
      }
    }
    --ExprDepth;
    if (Failed)
      return Expr::makeLeaf(Operand::makeConstant(0));
    return Lhs;
  }

  /// addExpr := mulExpr (('+'|'-') mulExpr)*
  ExprPtr parseAddExpr() {
    ExprPtr Lhs = parseMulExpr();
    while (!Failed && (isPunct("+") || isPunct("-"))) {
      OpCode Op = isPunct("+") ? OpCode::Add : OpCode::Sub;
      Lex.advance();
      ExprPtr Rhs = parseMulExpr();
      if (Failed)
        break;
      Lhs = Expr::makeBinary(Op, std::move(Lhs), std::move(Rhs));
    }
    if (Failed)
      return Expr::makeLeaf(Operand::makeConstant(0));
    return Lhs;
  }

  /// mulExpr := unary (('*'|'/') unary)*
  ExprPtr parseMulExpr() {
    ExprPtr Lhs = parseUnary();
    while (!Failed && (isPunct("*") || isPunct("/"))) {
      OpCode Op = isPunct("*") ? OpCode::Mul : OpCode::Div;
      Lex.advance();
      ExprPtr Rhs = parseUnary();
      if (Failed)
        return Expr::makeLeaf(Operand::makeConstant(0));
      Lhs = Expr::makeBinary(Op, std::move(Lhs), std::move(Rhs));
    }
    return Lhs;
  }

  ExprPtr parseUnary() {
    if (isPunct("-")) {
      Lex.advance();
      // Fold a minus directly applied to a literal into a negative
      // constant so that printing round-trips structurally.
      if (tok().Kind == TokKind::Number) {
        double V = tok().NumValue;
        Lex.advance();
        return Expr::makeLeaf(Operand::makeConstant(-V));
      }
      // Chains of unary minus recurse without passing through parseExpr;
      // bound them with the same depth counter.
      if (++ExprDepth > MaxExprDepth) {
        error("expression nested too deeply");
        --ExprDepth;
        return Expr::makeLeaf(Operand::makeConstant(0));
      }
      ExprPtr E = Expr::makeUnary(OpCode::Neg, parseUnary());
      --ExprDepth;
      return E;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (Failed)
      return Expr::makeLeaf(Operand::makeConstant(0));
    if (isPunct("(")) {
      Lex.advance();
      ExprPtr E = parseExpr();
      expectPunct(")");
      return E;
    }
    if (tok().Kind == TokKind::Number) {
      double V = tok().NumValue;
      Lex.advance();
      return Expr::makeLeaf(Operand::makeConstant(V));
    }
    if (isIdent("min") || isIdent("max")) {
      OpCode Op = isIdent("min") ? OpCode::Min : OpCode::Max;
      Lex.advance();
      expectPunct("(");
      ExprPtr L = parseExpr();
      expectPunct(",");
      ExprPtr R = parseExpr();
      expectPunct(")");
      if (Failed)
        return Expr::makeLeaf(Operand::makeConstant(0));
      return Expr::makeBinary(Op, std::move(L), std::move(R));
    }
    if (isIdent("select")) {
      Lex.advance();
      expectPunct("(");
      ExprPtr Cond = parseExpr();
      expectPunct(",");
      ExprPtr A = parseExpr();
      expectPunct(",");
      ExprPtr B = parseExpr();
      expectPunct(")");
      if (Failed)
        return Expr::makeLeaf(Operand::makeConstant(0));
      return Expr::makeSelect(std::move(Cond), std::move(A), std::move(B));
    }
    if (isIdent("sqrt") || isIdent("abs")) {
      OpCode Op = isIdent("sqrt") ? OpCode::Sqrt : OpCode::Abs;
      Lex.advance();
      expectPunct("(");
      ExprPtr E = parseExpr();
      expectPunct(")");
      if (Failed)
        return Expr::makeLeaf(Operand::makeConstant(0));
      return Expr::makeUnary(Op, std::move(E));
    }
    std::string Name = parseIdentifier();
    if (Failed)
      return Expr::makeLeaf(Operand::makeConstant(0));
    if (std::optional<SymbolId> S = K.findScalar(Name))
      return Expr::makeLeaf(Operand::makeScalar(*S));
    if (std::optional<SymbolId> A = K.findArray(Name)) {
      std::vector<AffineExpr> Subs = parseSubscripts(*A);
      return Expr::makeLeaf(Operand::makeArray(*A, std::move(Subs)));
    }
    error("unknown symbol '" + Name + "'");
    return Expr::makeLeaf(Operand::makeConstant(0));
  }
};

} // namespace

ParseResult slp::parseKernel(const std::string &Source) {
  Parser P(Source);
  return P.run();
}

ModuleParseResult slp::parseModule(const std::string &Source) {
  Parser P(Source);
  return P.runModule();
}
