//===- ir/AffineExpr.h - Affine functions of loop indices -------*- C++ -*-===//
///
/// \file
/// An affine expression c0 + c1*i1 + ... + cn*in over the enclosing loop
/// indices. Array subscripts in kernels are affine, which is what enables
/// both the dependence tests (analysis) and the polyhedral-style data layout
/// transformation of Section 5 of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_AFFINEEXPR_H
#define SLP_IR_AFFINEEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace slp {

/// An affine function of a kernel's loop indices.
///
/// Coefficients are indexed by loop depth (0 = outermost). The coefficient
/// vector may be shorter than the number of enclosing loops; missing
/// coefficients are zero.
class AffineExpr {
public:
  AffineExpr() = default;

  /// Creates the constant function \p C.
  explicit AffineExpr(int64_t C) : Constant(C) {}

  /// Creates \p Coeff * i_Depth + \p C.
  static AffineExpr term(unsigned Depth, int64_t Coeff, int64_t C = 0);

  /// Returns the coefficient of the loop index at \p Depth.
  int64_t coeff(unsigned Depth) const {
    return Depth < Coeffs.size() ? Coeffs[Depth] : 0;
  }

  /// Sets the coefficient of the loop index at \p Depth.
  void setCoeff(unsigned Depth, int64_t Value);

  int64_t constant() const { return Constant; }
  void setConstant(int64_t C) { Constant = C; }

  /// Number of loop depths with an explicitly stored coefficient.
  unsigned numDims() const { return static_cast<unsigned>(Coeffs.size()); }

  /// Returns true if every coefficient is zero.
  bool isConstant() const;

  /// Evaluates the function at the iteration vector \p Indices
  /// (Indices[d] is the value of the loop index at depth d).
  int64_t evaluate(const std::vector<int64_t> &Indices) const;

  AffineExpr operator+(const AffineExpr &Other) const;
  AffineExpr operator-(const AffineExpr &Other) const;
  AffineExpr scaled(int64_t Factor) const;

  /// Returns this expression with i_Depth replaced by i_Depth + Delta;
  /// used by the loop unroller.
  AffineExpr shiftedIndex(unsigned Depth, int64_t Delta) const;

  /// Returns this expression with i_Depth replaced by Coeff*i_Depth + Add;
  /// used when re-normalizing unrolled loops.
  AffineExpr substitutedIndex(unsigned Depth, int64_t Coeff,
                              int64_t Add) const;

  bool operator==(const AffineExpr &Other) const;
  bool operator!=(const AffineExpr &Other) const { return !(*this == Other); }

  /// Renders the expression using \p IndexNames for the loop indices,
  /// e.g. "4*i + 3".
  std::string toString(const std::vector<std::string> &IndexNames) const;

  /// Stable key for hashing/identity comparisons.
  std::string key() const;

private:
  void trim();

  std::vector<int64_t> Coeffs;
  int64_t Constant = 0;
};

} // namespace slp

#endif // SLP_IR_AFFINEEXPR_H
