//===- ir/Expr.cpp --------------------------------------------*- C++ -*-===//

#include "ir/Expr.h"

#include "support/Error.h"

using namespace slp;

const char *slp::opcodeName(OpCode Op) {
  switch (Op) {
  case OpCode::Add:
    return "+";
  case OpCode::Sub:
    return "-";
  case OpCode::Mul:
    return "*";
  case OpCode::Div:
    return "/";
  case OpCode::Min:
    return "min";
  case OpCode::Max:
    return "max";
  case OpCode::Neg:
    return "neg";
  case OpCode::Sqrt:
    return "sqrt";
  case OpCode::Abs:
    return "abs";
  case OpCode::CmpLT:
    return "<";
  case OpCode::CmpLE:
    return "<=";
  case OpCode::CmpGT:
    return ">";
  case OpCode::CmpGE:
    return ">=";
  case OpCode::CmpEQ:
    return "==";
  case OpCode::CmpNE:
    return "!=";
  case OpCode::Select:
    return "select";
  }
  return "<invalid>";
}

OpCode slp::negatedCompare(OpCode Op) {
  switch (Op) {
  case OpCode::CmpLT:
    return OpCode::CmpGE;
  case OpCode::CmpLE:
    return OpCode::CmpGT;
  case OpCode::CmpGT:
    return OpCode::CmpLE;
  case OpCode::CmpGE:
    return OpCode::CmpLT;
  case OpCode::CmpEQ:
    return OpCode::CmpNE;
  case OpCode::CmpNE:
    return OpCode::CmpEQ;
  default:
    slpUnreachable("negatedCompare of a non-comparison opcode");
  }
}

ExprPtr Expr::makeLeaf(Operand Op) {
  auto E = std::unique_ptr<Expr>(new Expr());
  E->Leaf = std::move(Op);
  return E;
}

ExprPtr Expr::makeUnary(OpCode Op, ExprPtr Child) {
  assert(isUnaryOp(Op) && "binary opcode passed to makeUnary");
  auto E = std::unique_ptr<Expr>(new Expr());
  E->Op = Op;
  E->Children.push_back(std::move(Child));
  return E;
}

ExprPtr Expr::makeBinary(OpCode Op, ExprPtr Lhs, ExprPtr Rhs) {
  assert(!isUnaryOp(Op) && !isTernaryOp(Op) &&
         "non-binary opcode passed to makeBinary");
  auto E = std::unique_ptr<Expr>(new Expr());
  E->Op = Op;
  E->Children.push_back(std::move(Lhs));
  E->Children.push_back(std::move(Rhs));
  return E;
}

ExprPtr Expr::makeTernary(OpCode Op, ExprPtr C0, ExprPtr C1, ExprPtr C2) {
  assert(isTernaryOp(Op) && "non-ternary opcode passed to makeTernary");
  auto E = std::unique_ptr<Expr>(new Expr());
  E->Op = Op;
  E->Children.push_back(std::move(C0));
  E->Children.push_back(std::move(C1));
  E->Children.push_back(std::move(C2));
  return E;
}

ExprPtr Expr::clone() const {
  if (isLeaf())
    return makeLeaf(Leaf);
  auto E = std::unique_ptr<Expr>(new Expr());
  E->Op = Op;
  for (const auto &C : Children)
    E->Children.push_back(C->clone());
  return E;
}

void Expr::forEachLeaf(const std::function<void(const Operand &)> &Fn) const {
  if (isLeaf()) {
    Fn(Leaf);
    return;
  }
  for (const auto &C : Children)
    C->forEachLeaf(Fn);
}

void Expr::forEachLeafMut(const std::function<void(Operand &)> &Fn) {
  if (isLeaf()) {
    Fn(Leaf);
    return;
  }
  for (const auto &C : Children)
    C->forEachLeafMut(Fn);
}

std::vector<const Operand *> Expr::leaves() const {
  std::vector<const Operand *> Result;
  forEachLeaf([&Result](const Operand &O) { Result.push_back(&O); });
  return Result;
}

unsigned Expr::numOps() const {
  if (isLeaf())
    return 0;
  unsigned N = 1;
  for (const auto &C : Children)
    N += C->numOps();
  return N;
}

std::string Expr::shapeSignature() const {
  if (isLeaf()) {
    switch (Leaf.kind()) {
    case Operand::Kind::Constant:
      return "K";
    case Operand::Kind::Scalar:
      return "S";
    case Operand::Kind::Array:
      return "A";
    }
    slpUnreachable("invalid operand kind");
  }
  std::string Sig = "(";
  Sig += opcodeName(Op);
  for (const auto &C : Children) {
    Sig += " ";
    Sig += C->shapeSignature();
  }
  Sig += ")";
  return Sig;
}

bool Expr::equals(const Expr &Other) const {
  if (isLeaf() != Other.isLeaf())
    return false;
  if (isLeaf())
    return Leaf == Other.Leaf;
  if (Op != Other.Op || Children.size() != Other.Children.size())
    return false;
  for (unsigned I = 0, E = numChildren(); I != E; ++I)
    if (!Children[I]->equals(*Other.Children[I]))
      return false;
  return true;
}
