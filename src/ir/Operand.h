//===- ir/Operand.h - Statement operands ------------------------*- C++ -*-===//
///
/// \file
/// Leaf operands of kernel statements: literal constants, scalar variables,
/// and affine array references. Operands are the unit that statement
/// grouping packs into superwords, so their identity (operator==, key())
/// defines when two packs access "the same data" for reuse purposes.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_OPERAND_H
#define SLP_IR_OPERAND_H

#include "ir/AffineExpr.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace slp {

/// Index of a scalar or array symbol within its kernel's symbol table.
using SymbolId = uint32_t;

/// A leaf operand: constant, scalar variable, or affine array reference.
class Operand {
public:
  enum class Kind : uint8_t { Constant, Scalar, Array };

  Operand() : TheKind(Kind::Constant), ConstVal(0) {}

  static Operand makeConstant(double Value) {
    Operand O;
    O.TheKind = Kind::Constant;
    O.ConstVal = Value;
    return O;
  }

  static Operand makeScalar(SymbolId Sym) {
    Operand O;
    O.TheKind = Kind::Scalar;
    O.Sym = Sym;
    return O;
  }

  static Operand makeArray(SymbolId Array, std::vector<AffineExpr> Subs) {
    Operand O;
    O.TheKind = Kind::Array;
    O.Sym = Array;
    O.Subscripts = std::move(Subs);
    return O;
  }

  Kind kind() const { return TheKind; }
  bool isConstant() const { return TheKind == Kind::Constant; }
  bool isScalar() const { return TheKind == Kind::Scalar; }
  bool isArray() const { return TheKind == Kind::Array; }

  double constantValue() const {
    assert(isConstant() && "not a constant");
    return ConstVal;
  }

  SymbolId symbol() const {
    assert(!isConstant() && "constants have no symbol");
    return Sym;
  }

  const std::vector<AffineExpr> &subscripts() const {
    assert(isArray() && "only array refs have subscripts");
    return Subscripts;
  }

  std::vector<AffineExpr> &subscripts() {
    assert(isArray() && "only array refs have subscripts");
    return Subscripts;
  }

  /// True when two operands denote the same value source: identical
  /// constants, the same scalar, or the same array with identical affine
  /// subscripts.
  bool operator==(const Operand &Other) const;
  bool operator!=(const Operand &Other) const { return !(*this == Other); }

  /// Stable identity key, usable as a hash-map key.
  std::string key() const;

private:
  Kind TheKind;
  double ConstVal = 0;
  SymbolId Sym = 0;
  std::vector<AffineExpr> Subscripts;
};

} // namespace slp

#endif // SLP_IR_OPERAND_H
