//===- ir/Interpreter.h - Reference scalar execution -------------*- C++ -*-===//
///
/// \file
/// Executes a kernel with original (scalar) semantics over a concrete
/// Environment. This is the reference against which every vectorized
/// program is checked for bit-identical results.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_INTERPRETER_H
#define SLP_IR_INTERPRETER_H

#include "ir/Kernel.h"

#include <cstdint>
#include <vector>

namespace slp {

/// Row-major flattening of an array reference: a single affine function of
/// the loop indices giving the element offset within the array's buffer.
AffineExpr flattenArrayRef(const ArraySymbol &A,
                           const std::vector<AffineExpr> &Subs);

/// Concrete values for a kernel's scalars and arrays. All values are stored
/// as doubles; both the scalar and the vector interpreter perform identical
/// double arithmetic per lane, so equality checks are exact.
class Environment {
public:
  /// Creates an environment sized for \p K with deterministic pseudo-random
  /// contents derived from \p Seed.
  Environment(const Kernel &K, uint64_t Seed);

  /// Re-seeds this environment for \p K, producing contents bit-identical
  /// to a freshly constructed `Environment(K, Seed)` while reusing the
  /// existing buffers' capacity. This is what makes environment pooling
  /// (exec/ExecEngine.h) observationally equivalent to reconstruction.
  void reset(const Kernel &K, uint64_t Seed);

  double scalarValue(SymbolId Id) const { return ScalarVals[Id]; }
  void setScalarValue(SymbolId Id, double V) { ScalarVals[Id] = V; }

  const std::vector<double> &arrayBuffer(SymbolId Id) const {
    return ArrayBufs[Id];
  }
  std::vector<double> &arrayBuffer(SymbolId Id) { return ArrayBufs[Id]; }

  /// Raw pointer to the scalar value array (the compiled execution
  /// engine's pre-resolved scalar slots). Invalidated by
  /// addScalarStorage/reset.
  double *scalarData() { return ScalarVals.data(); }

  unsigned numScalars() const {
    return static_cast<unsigned>(ScalarVals.size());
  }
  unsigned numArrays() const { return static_cast<unsigned>(ArrayBufs.size()); }

  /// Appends storage for an array added after construction (layout
  /// replicas), zero-initialized.
  void addArrayStorage(int64_t NumElements);

  /// Appends storage for a scalar added after construction (unroll
  /// clones), initialized to \p Value.
  void addScalarStorage(double Value = 0) { ScalarVals.push_back(Value); }

  /// True when the first \p NumScalars scalars and first \p NumArrays
  /// arrays match \p Other exactly. Pass the counts of the *original*
  /// kernel to ignore replicated arrays added by the layout stage.
  bool matches(const Environment &Other, unsigned NumScalars,
               unsigned NumArrays) const;

private:
  std::vector<double> ScalarVals;
  std::vector<std::vector<double>> ArrayBufs;
};

/// Dynamic operation counts of one scalar-kernel execution, used as the
/// baseline of the paper's dynamic-instruction figures.
struct ScalarExecStats {
  uint64_t AluOps = 0;
  uint64_t ArrayLoads = 0;
  uint64_t ArrayStores = 0;

  uint64_t totalInstructions() const {
    return AluOps + ArrayLoads + ArrayStores;
  }
};

/// Executes \p K with scalar semantics, mutating \p Env.
ScalarExecStats runKernelScalar(const Kernel &K, Environment &Env);

/// Invokes \p Fn once per iteration of \p K's loop nest with the iteration
/// vector (outermost first). An empty nest yields one call with an empty
/// vector.
void forEachIteration(const Kernel &K,
                      const std::function<void(const std::vector<int64_t> &)>
                          &Fn);

/// Evaluates \p Op at iteration \p Indices. \p Stats, when non-null,
/// accrues the memory operations performed.
double evalOperandValue(const Kernel &K, Environment &Env, const Operand &Op,
                        const std::vector<int64_t> &Indices,
                        ScalarExecStats *Stats = nullptr);

/// Evaluates the expression \p E at iteration \p Indices.
double evalExprValue(const Kernel &K, Environment &Env, const Expr &E,
                     const std::vector<int64_t> &Indices,
                     ScalarExecStats *Stats = nullptr);

/// Executes one statement with scalar semantics at iteration \p Indices.
void execStatementScalar(const Kernel &K, Environment &Env,
                         const Statement &S,
                         const std::vector<int64_t> &Indices,
                         ScalarExecStats *Stats = nullptr);

/// Stores \p Value into the location denoted by the scalar-or-array
/// operand \p Target.
void storeToOperand(const Kernel &K, Environment &Env, const Operand &Target,
                    double Value, const std::vector<int64_t> &Indices,
                    ScalarExecStats *Stats = nullptr);

/// Evaluates the affine subscripts of the array operand \p Op at iteration
/// \p Indices and returns the flattened element offset (asserting bounds).
int64_t evalArrayOffset(const Kernel &K, const Operand &Op,
                        const std::vector<int64_t> &Indices);

} // namespace slp

#endif // SLP_IR_INTERPRETER_H
