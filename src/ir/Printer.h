//===- ir/Printer.h - Textual rendering of kernels --------------*- C++ -*-===//
///
/// \file
/// Renders kernels, statements, and expressions in the textual kernel
/// language accepted by the parser (round-trippable).
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_PRINTER_H
#define SLP_IR_PRINTER_H

#include "ir/Kernel.h"

#include <string>

namespace slp {

/// Renders \p Op in the context of \p K (names resolved from its symbol
/// tables).
std::string printOperand(const Kernel &K, const Operand &Op);

/// Renders the expression \p E.
std::string printExpr(const Kernel &K, const Expr &E);

/// Renders the statement \p S as `lhs = rhs;`.
std::string printStatement(const Kernel &K, const Statement &S);

/// Renders the whole kernel in parseable form.
std::string printKernel(const Kernel &K);

} // namespace slp

#endif // SLP_IR_PRINTER_H
