//===- ir/Expr.h - Expression trees ------------------------------*- C++ -*-===//
///
/// \file
/// Right-hand-side expression trees of kernel statements. Two statements are
/// isomorphic (groupable into a superword statement) when their trees have
/// the same shape, the same operation at every interior node, and leaves of
/// matching kind/type at every position — exactly the paper's Section 4.1
/// constraint 3.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_EXPR_H
#define SLP_IR_EXPR_H

#include "ir/Operand.h"

#include <functional>
#include <memory>
#include <vector>

namespace slp {

/// Operation performed by an interior expression node.
enum class OpCode : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Min,
  Max,
  Neg,  // unary
  Sqrt, // unary
  Abs,  // unary
  // Comparisons produce 1.0 (true) or 0.0 (false); they are the building
  // blocks of statement guards and select conditions.
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  CmpEQ,
  CmpNE,
  Select, // ternary: Select(cond, a, b) = cond != 0 ? a : b
};

/// Returns true for single-operand opcodes.
inline bool isUnaryOp(OpCode Op) {
  return Op == OpCode::Neg || Op == OpCode::Sqrt || Op == OpCode::Abs;
}

/// Returns true for the comparison opcodes (result is always 0.0/1.0).
inline bool isCompareOp(OpCode Op) {
  return Op == OpCode::CmpLT || Op == OpCode::CmpLE || Op == OpCode::CmpGT ||
         Op == OpCode::CmpGE || Op == OpCode::CmpEQ || Op == OpCode::CmpNE;
}

/// Returns true for three-operand opcodes (only Select today).
inline bool isTernaryOp(OpCode Op) { return Op == OpCode::Select; }

/// The comparison testing the opposite outcome (CmpLT <-> CmpGE, ...).
/// Asserts on non-comparison opcodes.
OpCode negatedCompare(OpCode Op);

/// Returns the spelling of \p Op in the textual kernel language.
const char *opcodeName(OpCode Op);

/// An expression tree node: either a leaf wrapping an Operand, or an
/// interior node with an OpCode and one or two children.
class Expr {
public:
  /// Creates a leaf node.
  static std::unique_ptr<Expr> makeLeaf(Operand Op);

  /// Creates a unary interior node.
  static std::unique_ptr<Expr> makeUnary(OpCode Op,
                                         std::unique_ptr<Expr> Child);

  /// Creates a binary interior node.
  static std::unique_ptr<Expr> makeBinary(OpCode Op,
                                          std::unique_ptr<Expr> Lhs,
                                          std::unique_ptr<Expr> Rhs);

  /// Creates a ternary interior node (only Select today).
  static std::unique_ptr<Expr> makeTernary(OpCode Op,
                                           std::unique_ptr<Expr> C0,
                                           std::unique_ptr<Expr> C1,
                                           std::unique_ptr<Expr> C2);

  /// Creates Select(Cond, A, B): lane-wise Cond != 0 ? A : B.
  static std::unique_ptr<Expr> makeSelect(std::unique_ptr<Expr> Cond,
                                          std::unique_ptr<Expr> A,
                                          std::unique_ptr<Expr> B) {
    return makeTernary(OpCode::Select, std::move(Cond), std::move(A),
                       std::move(B));
  }

  bool isLeaf() const { return Children.empty(); }

  const Operand &leaf() const {
    assert(isLeaf() && "not a leaf");
    return Leaf;
  }

  Operand &leaf() {
    assert(isLeaf() && "not a leaf");
    return Leaf;
  }

  OpCode opcode() const {
    assert(!isLeaf() && "leaves have no opcode");
    return Op;
  }

  unsigned numChildren() const {
    return static_cast<unsigned>(Children.size());
  }

  const Expr &child(unsigned I) const {
    assert(I < Children.size() && "child index out of range");
    return *Children[I];
  }

  Expr &child(unsigned I) {
    assert(I < Children.size() && "child index out of range");
    return *Children[I];
  }

  /// Deep copy.
  std::unique_ptr<Expr> clone() const;

  /// Invokes \p Fn on every leaf operand in pre-order. The visit order
  /// defines the "operand positions" used when forming variable packs.
  void forEachLeaf(const std::function<void(const Operand &)> &Fn) const;

  /// Mutable variant of forEachLeaf, used by the layout rewriter.
  void forEachLeafMut(const std::function<void(Operand &)> &Fn);

  /// Returns all leaf operands in pre-order.
  std::vector<const Operand *> leaves() const;

  /// Number of interior (operation) nodes; the per-lane ALU work.
  unsigned numOps() const;

  /// A string describing only the tree shape and opcodes plus the *kind*
  /// of each leaf; equal signatures are a prerequisite of isomorphism.
  std::string shapeSignature() const;

  /// Structural equality including leaf operand identity.
  bool equals(const Expr &Other) const;

private:
  Expr() = default;

  Operand Leaf;
  OpCode Op = OpCode::Add;
  std::vector<std::unique_ptr<Expr>> Children;
};

using ExprPtr = std::unique_ptr<Expr>;

} // namespace slp

#endif // SLP_IR_EXPR_H
