//===- ir/AffineExpr.cpp --------------------------------------*- C++ -*-===//

#include "ir/AffineExpr.h"

#include <algorithm>
#include <cassert>

using namespace slp;

AffineExpr AffineExpr::term(unsigned Depth, int64_t Coeff, int64_t C) {
  AffineExpr E(C);
  E.setCoeff(Depth, Coeff);
  return E;
}

void AffineExpr::setCoeff(unsigned Depth, int64_t Value) {
  if (Depth >= Coeffs.size())
    Coeffs.resize(Depth + 1, 0);
  Coeffs[Depth] = Value;
  trim();
}

bool AffineExpr::isConstant() const {
  return std::all_of(Coeffs.begin(), Coeffs.end(),
                     [](int64_t C) { return C == 0; });
}

int64_t AffineExpr::evaluate(const std::vector<int64_t> &Indices) const {
  int64_t Result = Constant;
  for (unsigned D = 0, E = numDims(); D != E; ++D) {
    if (Coeffs[D] == 0)
      continue;
    assert(D < Indices.size() && "iteration vector too short");
    Result += Coeffs[D] * Indices[D];
  }
  return Result;
}

AffineExpr AffineExpr::operator+(const AffineExpr &Other) const {
  AffineExpr Result(Constant + Other.Constant);
  unsigned Dims = std::max(numDims(), Other.numDims());
  for (unsigned D = 0; D != Dims; ++D) {
    int64_t C = coeff(D) + Other.coeff(D);
    if (C != 0)
      Result.setCoeff(D, C);
  }
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &Other) const {
  return *this + Other.scaled(-1);
}

AffineExpr AffineExpr::scaled(int64_t Factor) const {
  AffineExpr Result(Constant * Factor);
  for (unsigned D = 0, E = numDims(); D != E; ++D)
    if (Coeffs[D] != 0)
      Result.setCoeff(D, Coeffs[D] * Factor);
  return Result;
}

AffineExpr AffineExpr::shiftedIndex(unsigned Depth, int64_t Delta) const {
  AffineExpr Result = *this;
  Result.Constant += coeff(Depth) * Delta;
  return Result;
}

AffineExpr AffineExpr::substitutedIndex(unsigned Depth, int64_t Coeff,
                                        int64_t Add) const {
  AffineExpr Result = *this;
  int64_t Old = coeff(Depth);
  Result.Constant += Old * Add;
  if (Old != 0 || Depth < Result.Coeffs.size())
    Result.setCoeff(Depth, Old * Coeff);
  return Result;
}

bool AffineExpr::operator==(const AffineExpr &Other) const {
  if (Constant != Other.Constant)
    return false;
  unsigned Dims = std::max(numDims(), Other.numDims());
  for (unsigned D = 0; D != Dims; ++D)
    if (coeff(D) != Other.coeff(D))
      return false;
  return true;
}

std::string
AffineExpr::toString(const std::vector<std::string> &IndexNames) const {
  std::string Out;
  for (unsigned D = 0, E = numDims(); D != E; ++D) {
    int64_t C = Coeffs[D];
    if (C == 0)
      continue;
    std::string Name =
        D < IndexNames.size() ? IndexNames[D] : "i" + std::to_string(D);
    if (!Out.empty())
      Out += C > 0 ? " + " : " - ";
    else if (C < 0)
      Out += "-";
    int64_t A = C > 0 ? C : -C;
    if (A != 1)
      Out += std::to_string(A) + "*";
    Out += Name;
  }
  if (Out.empty())
    return std::to_string(Constant);
  if (Constant > 0)
    Out += " + " + std::to_string(Constant);
  else if (Constant < 0)
    Out += " - " + std::to_string(-Constant);
  return Out;
}

std::string AffineExpr::key() const {
  std::string K = "c" + std::to_string(Constant);
  for (unsigned D = 0, E = numDims(); D != E; ++D)
    if (Coeffs[D] != 0)
      K += "|d" + std::to_string(D) + ":" + std::to_string(Coeffs[D]);
  return K;
}

void AffineExpr::trim() {
  while (!Coeffs.empty() && Coeffs.back() == 0)
    Coeffs.pop_back();
}
