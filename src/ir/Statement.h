//===- ir/Statement.h - Assignment statements -------------------*- C++ -*-===//
///
/// \file
/// A kernel statement `lhs = rhs-expression`. Statements are the unit the
/// SLP optimizers group into superword statements.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_STATEMENT_H
#define SLP_IR_STATEMENT_H

#include "ir/Expr.h"

namespace slp {

/// An assignment statement. The left-hand side is a scalar or array
/// operand (never a constant); the right-hand side is an expression tree.
class Statement {
public:
  Statement(Operand Lhs, ExprPtr Rhs) : Lhs(std::move(Lhs)),
                                        Rhs(std::move(Rhs)) {
    assert(!this->Lhs.isConstant() && "cannot assign to a constant");
    assert(this->Rhs && "statement requires a right-hand side");
  }

  Statement(const Statement &Other)
      : Lhs(Other.Lhs), Rhs(Other.Rhs->clone()) {}

  Statement &operator=(const Statement &Other) {
    if (this != &Other) {
      Lhs = Other.Lhs;
      Rhs = Other.Rhs->clone();
    }
    return *this;
  }

  Statement(Statement &&) = default;
  Statement &operator=(Statement &&) = default;

  const Operand &lhs() const { return Lhs; }
  Operand &lhs() { return Lhs; }

  const Expr &rhs() const { return *Rhs; }
  Expr &rhs() { return *Rhs; }

  /// The operand positions of this statement: the left-hand side followed
  /// by every right-hand-side leaf in pre-order. Position indices returned
  /// here define the variable packs formed when statements are grouped.
  std::vector<const Operand *> operandPositions() const;

  /// Isomorphism signature: lhs kind + rhs shape. Two statements with equal
  /// signatures perform the same operations in the same order on operands
  /// of the same kinds (paper Section 4.1, constraint 3).
  std::string isomorphismSignature() const;

private:
  Operand Lhs;
  ExprPtr Rhs;
};

} // namespace slp

#endif // SLP_IR_STATEMENT_H
