//===- ir/Statement.h - Assignment statements -------------------*- C++ -*-===//
///
/// \file
/// A kernel statement `lhs = rhs-expression`, optionally predicated by a
/// guard expression (`if (guard) lhs = rhs;`). Statements are the unit the
/// SLP optimizers group into superword statements; a guarded statement
/// always evaluates its right-hand side (if-converted semantics) but only
/// commits the store when the guard is non-zero.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_STATEMENT_H
#define SLP_IR_STATEMENT_H

#include "ir/Expr.h"

namespace slp {

/// An assignment statement. The left-hand side is a scalar or array
/// operand (never a constant); the right-hand side is an expression tree.
/// An optional guard predicates the store.
class Statement {
public:
  Statement(Operand Lhs, ExprPtr Rhs, ExprPtr Guard = nullptr)
      : Lhs(std::move(Lhs)), Rhs(std::move(Rhs)), Guard(std::move(Guard)) {
    assert(!this->Lhs.isConstant() && "cannot assign to a constant");
    assert(this->Rhs && "statement requires a right-hand side");
  }

  Statement(const Statement &Other)
      : Lhs(Other.Lhs), Rhs(Other.Rhs->clone()),
        Guard(Other.Guard ? Other.Guard->clone() : nullptr) {}

  Statement &operator=(const Statement &Other) {
    if (this != &Other) {
      Lhs = Other.Lhs;
      Rhs = Other.Rhs->clone();
      Guard = Other.Guard ? Other.Guard->clone() : nullptr;
    }
    return *this;
  }

  Statement(Statement &&) = default;
  Statement &operator=(Statement &&) = default;

  const Operand &lhs() const { return Lhs; }
  Operand &lhs() { return Lhs; }

  const Expr &rhs() const { return *Rhs; }
  Expr &rhs() { return *Rhs; }

  bool hasGuard() const { return Guard != nullptr; }

  const Expr &guard() const {
    assert(Guard && "statement is unguarded");
    return *Guard;
  }

  Expr &guard() {
    assert(Guard && "statement is unguarded");
    return *Guard;
  }

  /// Installs (or, with nullptr, removes) the guard.
  void setGuard(ExprPtr G) { Guard = std::move(G); }

  /// Deep copy of the guard (nullptr when unguarded).
  ExprPtr cloneGuard() const { return Guard ? Guard->clone() : nullptr; }

  /// Invokes \p Fn on every operand this statement reads: the rhs leaves
  /// in pre-order, then the guard leaves in pre-order.
  void forEachUse(const std::function<void(const Operand &)> &Fn) const {
    Rhs->forEachLeaf(Fn);
    if (Guard)
      Guard->forEachLeaf(Fn);
  }

  /// Mutable variant of forEachUse.
  void forEachUseMut(const std::function<void(Operand &)> &Fn) {
    Rhs->forEachLeafMut(Fn);
    if (Guard)
      Guard->forEachLeafMut(Fn);
  }

  /// The operand positions of this statement: the left-hand side, every
  /// right-hand-side leaf in pre-order, then every guard leaf in pre-order.
  /// Position indices returned here define the variable packs formed when
  /// statements are grouped — guard leaves participating makes the mask a
  /// variable pack like any other.
  std::vector<const Operand *> operandPositions() const;

  /// Isomorphism signature: lhs kind + rhs shape + guard shape. Two
  /// statements with equal signatures perform the same operations in the
  /// same order on operands of the same kinds (paper Section 4.1,
  /// constraint 3); including the guard shape keeps differently-predicated
  /// statements out of one superword statement.
  std::string isomorphismSignature() const;

private:
  Operand Lhs;
  ExprPtr Rhs;
  ExprPtr Guard; ///< nullptr when unguarded
};

} // namespace slp

#endif // SLP_IR_STATEMENT_H
