//===- ir/Kernel.cpp ------------------------------------------*- C++ -*-===//

#include "ir/Kernel.h"

#include "support/Error.h"

using namespace slp;

SymbolId Kernel::addScalar(const std::string &Name, ScalarType Ty) {
  assert(!findScalar(Name) && "duplicate scalar name");
  Scalars.push_back(ScalarSymbol{Name, Ty});
  return static_cast<SymbolId>(Scalars.size() - 1);
}

SymbolId Kernel::addArray(const std::string &Name, ScalarType Ty,
                          std::vector<int64_t> DimSizes, bool ReadOnly) {
  assert(!findArray(Name) && "duplicate array name");
  assert(!DimSizes.empty() && "array requires at least one dimension");
  Arrays.push_back(ArraySymbol{Name, Ty, std::move(DimSizes), ReadOnly});
  return static_cast<SymbolId>(Arrays.size() - 1);
}

std::optional<SymbolId> Kernel::findScalar(const std::string &Name) const {
  for (unsigned I = 0, E = static_cast<unsigned>(Scalars.size()); I != E; ++I)
    if (Scalars[I].Name == Name)
      return I;
  return std::nullopt;
}

std::optional<SymbolId> Kernel::findArray(const std::string &Name) const {
  for (unsigned I = 0, E = static_cast<unsigned>(Arrays.size()); I != E; ++I)
    if (Arrays[I].Name == Name)
      return I;
  return std::nullopt;
}

ScalarType Kernel::operandType(const Operand &Op) const {
  switch (Op.kind()) {
  case Operand::Kind::Constant:
    return ScalarType::Float64;
  case Operand::Kind::Scalar:
    return scalar(Op.symbol()).Ty;
  case Operand::Kind::Array:
    return array(Op.symbol()).Ty;
  }
  slpUnreachable("invalid operand kind");
}

std::vector<std::string> Kernel::indexNames() const {
  std::vector<std::string> Names;
  Names.reserve(Loops.size());
  for (const Loop &L : Loops)
    Names.push_back(L.IndexName);
  return Names;
}

int64_t Kernel::totalIterations() const {
  int64_t Total = 1;
  for (const Loop &L : Loops)
    Total *= L.tripCount();
  return Total;
}

Kernel Kernel::clone() const {
  Kernel K;
  K.Name = Name;
  K.Scalars = Scalars;
  K.Arrays = Arrays;
  K.Loops = Loops;
  for (const Statement &S : Body)
    K.Body.append(S);
  return K;
}
