//===- ir/Builder.h - Programmatic kernel construction ----------*- C++ -*-===//
///
/// \file
/// A fluent helper for building kernels in C++ (the alternative to the
/// textual parser). Used heavily by the workload generators and tests.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_BUILDER_H
#define SLP_IR_BUILDER_H

#include "ir/Kernel.h"

namespace slp {

/// Builds a Kernel incrementally. Typical use:
/// \code
///   KernelBuilder B("saxpy");
///   SymbolId X = B.array("X", ScalarType::Float32, {1024});
///   SymbolId Y = B.array("Y", ScalarType::Float32, {1024}, /*ReadOnly=*/true);
///   SymbolId A = B.scalar("a", ScalarType::Float32);
///   unsigned I = B.loop("i", 0, 1024);
///   B.assign(B.arrayRef(X, {B.idx(I)}),
///            B.add(B.mul(B.scalarRef(A), B.load(Y, {B.idx(I)})),
///                  B.load(X, {B.idx(I)})));
///   Kernel K = B.take();
/// \endcode
class KernelBuilder {
public:
  explicit KernelBuilder(std::string Name) { K.Name = std::move(Name); }

  SymbolId scalar(const std::string &Name, ScalarType Ty) {
    return K.addScalar(Name, Ty);
  }

  SymbolId array(const std::string &Name, ScalarType Ty,
                 std::vector<int64_t> Dims, bool ReadOnly = false) {
    return K.addArray(Name, Ty, std::move(Dims), ReadOnly);
  }

  /// Appends a loop to the nest (must be called outermost-first); returns
  /// its depth for use with idx().
  unsigned loop(const std::string &IndexName, int64_t Lower, int64_t Upper,
                int64_t Step = 1);

  /// Affine expression Coeff * i_Depth + Add.
  AffineExpr idx(unsigned Depth, int64_t Coeff = 1, int64_t Add = 0) const {
    return AffineExpr::term(Depth, Coeff, Add);
  }

  /// Affine constant.
  AffineExpr aff(int64_t C) const { return AffineExpr(C); }

  // -- Operand factories ---------------------------------------------------
  Operand arrayRef(SymbolId Array, std::vector<AffineExpr> Subs) const {
    return Operand::makeArray(Array, std::move(Subs));
  }
  Operand scalarOp(SymbolId S) const { return Operand::makeScalar(S); }

  // -- Expression factories --------------------------------------------------
  ExprPtr c(double Value) const {
    return Expr::makeLeaf(Operand::makeConstant(Value));
  }
  ExprPtr scalarRef(SymbolId S) const {
    return Expr::makeLeaf(Operand::makeScalar(S));
  }
  ExprPtr load(SymbolId Array, std::vector<AffineExpr> Subs) const {
    return Expr::makeLeaf(Operand::makeArray(Array, std::move(Subs)));
  }
  ExprPtr add(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::Add, std::move(L), std::move(R));
  }
  ExprPtr sub(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::Sub, std::move(L), std::move(R));
  }
  ExprPtr mul(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::Mul, std::move(L), std::move(R));
  }
  ExprPtr div(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::Div, std::move(L), std::move(R));
  }
  ExprPtr min(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::Min, std::move(L), std::move(R));
  }
  ExprPtr max(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::Max, std::move(L), std::move(R));
  }
  ExprPtr neg(ExprPtr E) const {
    return Expr::makeUnary(OpCode::Neg, std::move(E));
  }
  ExprPtr sqrt(ExprPtr E) const {
    return Expr::makeUnary(OpCode::Sqrt, std::move(E));
  }
  ExprPtr cmp(OpCode Op, ExprPtr L, ExprPtr R) const {
    assert(isCompareOp(Op) && "cmp requires a comparison opcode");
    return Expr::makeBinary(Op, std::move(L), std::move(R));
  }
  ExprPtr lt(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::CmpLT, std::move(L), std::move(R));
  }
  ExprPtr ge(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::CmpGE, std::move(L), std::move(R));
  }
  ExprPtr ne(ExprPtr L, ExprPtr R) const {
    return Expr::makeBinary(OpCode::CmpNE, std::move(L), std::move(R));
  }
  ExprPtr select(ExprPtr Cond, ExprPtr A, ExprPtr B) const {
    return Expr::makeSelect(std::move(Cond), std::move(A), std::move(B));
  }

  /// Appends the statement `Lhs = Rhs` to the kernel body.
  void assign(Operand Lhs, ExprPtr Rhs) {
    K.Body.append(Statement(std::move(Lhs), std::move(Rhs)));
  }

  /// Appends the guarded statement `if (Guard) Lhs = Rhs;`.
  void assignIf(ExprPtr Guard, Operand Lhs, ExprPtr Rhs) {
    K.Body.append(
        Statement(std::move(Lhs), std::move(Rhs), std::move(Guard)));
  }

  const Kernel &kernel() const { return K; }

  /// Finalizes and returns the kernel.
  Kernel take() { return std::move(K); }

private:
  Kernel K;
};

} // namespace slp

#endif // SLP_IR_BUILDER_H
