//===- ir/Builder.cpp -----------------------------------------*- C++ -*-===//

#include "ir/Builder.h"

using namespace slp;

unsigned KernelBuilder::loop(const std::string &IndexName, int64_t Lower,
                             int64_t Upper, int64_t Step) {
  assert(K.Body.empty() &&
         "loops must be declared before statements are appended");
  K.Loops.push_back(Loop{IndexName, Lower, Upper, Step});
  return static_cast<unsigned>(K.Loops.size() - 1);
}
