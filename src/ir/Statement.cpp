//===- ir/Statement.cpp ---------------------------------------*- C++ -*-===//

#include "ir/Statement.h"

using namespace slp;

std::vector<const Operand *> Statement::operandPositions() const {
  std::vector<const Operand *> Result;
  Result.push_back(&Lhs);
  forEachUse([&Result](const Operand &O) { Result.push_back(&O); });
  return Result;
}

std::string Statement::isomorphismSignature() const {
  std::string Sig = Lhs.isScalar() ? "S=" : "A=";
  Sig += Rhs->shapeSignature();
  if (Guard) {
    Sig += "|G=";
    Sig += Guard->shapeSignature();
  }
  return Sig;
}
