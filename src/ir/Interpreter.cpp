//===- ir/Interpreter.cpp -------------------------------------*- C++ -*-===//

#include "ir/Interpreter.h"

#include "support/Error.h"
#include "support/Rng.h"

#include <cmath>

using namespace slp;

AffineExpr slp::flattenArrayRef(const ArraySymbol &A,
                                const std::vector<AffineExpr> &Subs) {
  assert(Subs.size() == A.DimSizes.size() &&
         "subscript count must match array rank");
  AffineExpr Flat(0);
  for (unsigned D = 0, E = static_cast<unsigned>(Subs.size()); D != E; ++D) {
    int64_t Stride = 1;
    for (unsigned Inner = D + 1; Inner != E; ++Inner)
      Stride *= A.DimSizes[Inner];
    Flat = Flat + Subs[D].scaled(Stride);
  }
  return Flat;
}

Environment::Environment(const Kernel &K, uint64_t Seed) { reset(K, Seed); }

void Environment::reset(const Kernel &K, uint64_t Seed) {
  Rng R(Seed);
  // Integer-typed locations start with integral contents; float-typed
  // locations get exact quarter values so all arithmetic stays exact.
  // Stream consumption order (scalars, then each array in full) is part
  // of the contract: pooled resets must replay the constructor exactly.
  auto Fill = [&R](ScalarType Ty) {
    double V = static_cast<double>(R.nextInRange(-64, 64));
    return isFloatType(Ty) ? V * 0.25 : V;
  };
  ScalarVals.resize(K.Scalars.size());
  for (unsigned S = 0, E = static_cast<unsigned>(K.Scalars.size()); S != E;
       ++S)
    ScalarVals[S] = Fill(K.Scalars[S].Ty);
  ArrayBufs.resize(K.Arrays.size());
  for (unsigned A = 0, E = static_cast<unsigned>(K.Arrays.size()); A != E;
       ++A) {
    ArrayBufs[A].resize(static_cast<size_t>(K.Arrays[A].numElements()));
    for (double &V : ArrayBufs[A])
      V = Fill(K.Arrays[A].Ty);
  }
}

void Environment::addArrayStorage(int64_t NumElements) {
  ArrayBufs.emplace_back(static_cast<size_t>(NumElements), 0.0);
}

/// Equality up to NaN: two locations agree when they hold equal values or
/// are both NaN. A plain `!=` would flag every NaN-producing kernel (e.g.
/// Inf - Inf after overflow) as a divergence even when scalar and vector
/// execution computed the identical result.
static bool sameValue(double A, double B) {
  return A == B || (std::isnan(A) && std::isnan(B));
}

bool Environment::matches(const Environment &Other, unsigned NumScalars,
                          unsigned NumArrays) const {
  assert(NumScalars <= ScalarVals.size() &&
         NumScalars <= Other.ScalarVals.size() && "scalar count out of range");
  assert(NumArrays <= ArrayBufs.size() &&
         NumArrays <= Other.ArrayBufs.size() && "array count out of range");
  for (unsigned I = 0; I != NumScalars; ++I)
    if (!sameValue(ScalarVals[I], Other.ScalarVals[I]))
      return false;
  for (unsigned A = 0; A != NumArrays; ++A) {
    if (ArrayBufs[A].size() != Other.ArrayBufs[A].size())
      return false;
    for (size_t I = 0, E = ArrayBufs[A].size(); I != E; ++I)
      if (!sameValue(ArrayBufs[A][I], Other.ArrayBufs[A][I]))
        return false;
  }
  return true;
}

int64_t slp::evalArrayOffset(const Kernel &K, const Operand &Op,
                             const std::vector<int64_t> &Indices) {
  assert(Op.isArray() && "expected an array operand");
  const ArraySymbol &A = K.array(Op.symbol());
  int64_t Offset = flattenArrayRef(A, Op.subscripts()).evaluate(Indices);
  assert(Offset >= 0 && Offset < A.numElements() &&
         "array reference out of bounds");
  return Offset;
}

double slp::evalOperandValue(const Kernel &K, Environment &Env,
                             const Operand &Op,
                             const std::vector<int64_t> &Indices,
                             ScalarExecStats *Stats) {
  switch (Op.kind()) {
  case Operand::Kind::Constant:
    return Op.constantValue();
  case Operand::Kind::Scalar:
    return Env.scalarValue(Op.symbol());
  case Operand::Kind::Array: {
    if (Stats)
      ++Stats->ArrayLoads;
    int64_t Offset = evalArrayOffset(K, Op, Indices);
    return Env.arrayBuffer(Op.symbol())[static_cast<size_t>(Offset)];
  }
  }
  slpUnreachable("invalid operand kind");
}

double slp::evalExprValue(const Kernel &K, Environment &Env, const Expr &E,
                          const std::vector<int64_t> &Indices,
                          ScalarExecStats *Stats) {
  if (E.isLeaf())
    return evalOperandValue(K, Env, E.leaf(), Indices, Stats);
  if (Stats)
    ++Stats->AluOps;
  switch (E.opcode()) {
  case OpCode::Add:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) +
           evalExprValue(K, Env, E.child(1), Indices, Stats);
  case OpCode::Sub:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) -
           evalExprValue(K, Env, E.child(1), Indices, Stats);
  case OpCode::Mul:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) *
           evalExprValue(K, Env, E.child(1), Indices, Stats);
  case OpCode::Div:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) /
           evalExprValue(K, Env, E.child(1), Indices, Stats);
  case OpCode::Min:
    return std::fmin(evalExprValue(K, Env, E.child(0), Indices, Stats),
                     evalExprValue(K, Env, E.child(1), Indices, Stats));
  case OpCode::Max:
    return std::fmax(evalExprValue(K, Env, E.child(0), Indices, Stats),
                     evalExprValue(K, Env, E.child(1), Indices, Stats));
  case OpCode::Neg:
    return -evalExprValue(K, Env, E.child(0), Indices, Stats);
  case OpCode::Sqrt:
    // Inputs are random; take sqrt of the magnitude so results stay real.
    return std::sqrt(
        std::fabs(evalExprValue(K, Env, E.child(0), Indices, Stats)));
  case OpCode::Abs:
    return std::fabs(evalExprValue(K, Env, E.child(0), Indices, Stats));
  case OpCode::CmpLT:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) <
                   evalExprValue(K, Env, E.child(1), Indices, Stats)
               ? 1.0
               : 0.0;
  case OpCode::CmpLE:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) <=
                   evalExprValue(K, Env, E.child(1), Indices, Stats)
               ? 1.0
               : 0.0;
  case OpCode::CmpGT:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) >
                   evalExprValue(K, Env, E.child(1), Indices, Stats)
               ? 1.0
               : 0.0;
  case OpCode::CmpGE:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) >=
                   evalExprValue(K, Env, E.child(1), Indices, Stats)
               ? 1.0
               : 0.0;
  case OpCode::CmpEQ:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) ==
                   evalExprValue(K, Env, E.child(1), Indices, Stats)
               ? 1.0
               : 0.0;
  case OpCode::CmpNE:
    return evalExprValue(K, Env, E.child(0), Indices, Stats) !=
                   evalExprValue(K, Env, E.child(1), Indices, Stats)
               ? 1.0
               : 0.0;
  case OpCode::Select: {
    // If-converted semantics: both arms are evaluated (so both engines
    // and the vector lowering perform identical work), the untaken value
    // is discarded.
    double Cond = evalExprValue(K, Env, E.child(0), Indices, Stats);
    double A = evalExprValue(K, Env, E.child(1), Indices, Stats);
    double B = evalExprValue(K, Env, E.child(2), Indices, Stats);
    return Cond != 0.0 ? A : B;
  }
  }
  slpUnreachable("invalid opcode");
}

/// Integer-typed locations truncate toward zero on store, mirroring a
/// float-to-int conversion at the assignment; float locations store the
/// value unchanged. Both the scalar and the vector interpreter store
/// through here, so the semantics stay identical on both paths.
static double convertForStore(ScalarType Ty, double Value) {
  if (isFloatType(Ty))
    return Value;
  return std::trunc(Value);
}

void slp::storeToOperand(const Kernel &K, Environment &Env,
                         const Operand &Target, double Value,
                         const std::vector<int64_t> &Indices,
                         ScalarExecStats *Stats) {
  if (Target.isScalar()) {
    Env.setScalarValue(Target.symbol(),
                       convertForStore(K.scalar(Target.symbol()).Ty, Value));
    return;
  }
  assert(Target.isArray() && "cannot store to a constant");
  if (Stats)
    ++Stats->ArrayStores;
  int64_t Offset = evalArrayOffset(K, Target, Indices);
  Env.arrayBuffer(Target.symbol())[static_cast<size_t>(Offset)] =
      convertForStore(K.array(Target.symbol()).Ty, Value);
}

void slp::execStatementScalar(const Kernel &K, Environment &Env,
                              const Statement &S,
                              const std::vector<int64_t> &Indices,
                              ScalarExecStats *Stats) {
  // If-converted semantics: the guard and the right-hand side are always
  // evaluated; a false guard only suppresses the store. Store counters
  // count *attempted* stores so that the compiled engines' static per-
  // iteration accounting (which cannot see data-dependent masks) agrees
  // with the reference on every kernel.
  bool Taken = true;
  if (S.hasGuard())
    Taken = evalExprValue(K, Env, S.guard(), Indices, Stats) != 0.0;
  double Value = evalExprValue(K, Env, S.rhs(), Indices, Stats);
  if (Taken) {
    storeToOperand(K, Env, S.lhs(), Value, Indices, Stats);
  } else if (Stats && S.lhs().isArray()) {
    ++Stats->ArrayStores;
  }
}

void slp::forEachIteration(
    const Kernel &K,
    const std::function<void(const std::vector<int64_t> &)> &Fn) {
  std::vector<int64_t> Indices(K.Loops.size(), 0);
  if (K.Loops.empty()) {
    Fn(Indices);
    return;
  }
  for (const Loop &L : K.Loops)
    if (L.tripCount() == 0)
      return;

  unsigned Depth = static_cast<unsigned>(K.Loops.size());
  for (unsigned D = 0; D != Depth; ++D)
    Indices[D] = K.Loops[D].Lower;

  while (true) {
    Fn(Indices);
    // Odometer increment: bump the innermost index, carrying outward.
    unsigned D = Depth - 1;
    Indices[D] += K.Loops[D].Step;
    while (Indices[D] >= K.Loops[D].Upper) {
      if (D == 0)
        return;
      Indices[D] = K.Loops[D].Lower;
      --D;
      Indices[D] += K.Loops[D].Step;
    }
  }
}

ScalarExecStats slp::runKernelScalar(const Kernel &K, Environment &Env) {
  ScalarExecStats Stats;
  forEachIteration(K, [&](const std::vector<int64_t> &Indices) {
    for (const Statement &S : K.Body)
      execStatementScalar(K, Env, S, Indices, &Stats);
  });
  return Stats;
}
