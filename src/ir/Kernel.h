//===- ir/Kernel.h - Kernels, loops, and basic blocks -----------*- C++ -*-===//
///
/// \file
/// A Kernel is the unit of input to the SLP framework: a (possibly empty)
/// perfect loop nest whose innermost body is a basic block of assignment
/// statements, together with the scalar and array symbols those statements
/// reference. The pre-processing stage unrolls the innermost loop to expose
/// superword parallelism; the optimizers then work on the basic block.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_IR_KERNEL_H
#define SLP_IR_KERNEL_H

#include "ir/Statement.h"
#include "ir/Type.h"

#include <optional>
#include <string>
#include <vector>

namespace slp {

/// A scalar variable. Scalars are memory-resident named values (like file
/// scope or spilled locals in the paper's examples) so that the scalar
/// data layout optimization of Section 5.1 has addresses to assign.
struct ScalarSymbol {
  std::string Name;
  ScalarType Ty = ScalarType::Float32;
};

/// An array variable with row-major layout.
struct ArraySymbol {
  std::string Name;
  ScalarType Ty = ScalarType::Float32;
  std::vector<int64_t> DimSizes;
  /// Read-only arrays are eligible for the replication-based layout
  /// transformation (Section 5.2's second constraint).
  bool ReadOnly = false;

  /// Total number of elements.
  int64_t numElements() const {
    int64_t N = 1;
    for (int64_t D : DimSizes)
      N *= D;
    return N;
  }
};

/// One loop of a kernel's nest. Iterates Index = Lower; Index < Upper;
/// Index += Step.
struct Loop {
  std::string IndexName;
  int64_t Lower = 0;
  int64_t Upper = 0;
  int64_t Step = 1;

  /// Number of iterations executed.
  int64_t tripCount() const {
    if (Upper <= Lower || Step <= 0)
      return 0;
    return (Upper - Lower + Step - 1) / Step;
  }
};

/// A straight-line sequence of statements.
class BasicBlock {
public:
  BasicBlock() = default;

  unsigned size() const { return static_cast<unsigned>(Statements.size()); }
  bool empty() const { return Statements.empty(); }

  const Statement &statement(unsigned I) const {
    assert(I < Statements.size() && "statement index out of range");
    return Statements[I];
  }

  Statement &statement(unsigned I) {
    assert(I < Statements.size() && "statement index out of range");
    return Statements[I];
  }

  void append(Statement S) { Statements.push_back(std::move(S)); }

  auto begin() const { return Statements.begin(); }
  auto end() const { return Statements.end(); }
  auto begin() { return Statements.begin(); }
  auto end() { return Statements.end(); }

private:
  std::vector<Statement> Statements;
};

/// A kernel: symbols + loop nest + innermost basic block.
class Kernel {
public:
  std::string Name;
  std::vector<ScalarSymbol> Scalars;
  std::vector<ArraySymbol> Arrays;
  /// Loop nest from outermost (depth 0) to innermost.
  std::vector<Loop> Loops;
  BasicBlock Body;

  /// Registers a scalar and returns its id. Fails (asserts) on duplicates.
  SymbolId addScalar(const std::string &Name, ScalarType Ty);

  /// Registers an array and returns its id.
  SymbolId addArray(const std::string &Name, ScalarType Ty,
                    std::vector<int64_t> DimSizes, bool ReadOnly = false);

  const ScalarSymbol &scalar(SymbolId Id) const {
    assert(Id < Scalars.size() && "scalar id out of range");
    return Scalars[Id];
  }

  const ArraySymbol &array(SymbolId Id) const {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }

  ArraySymbol &array(SymbolId Id) {
    assert(Id < Arrays.size() && "array id out of range");
    return Arrays[Id];
  }

  std::optional<SymbolId> findScalar(const std::string &Name) const;
  std::optional<SymbolId> findArray(const std::string &Name) const;

  /// Element type of \p Op (constants default to the type of their
  /// context and report Float64 here).
  ScalarType operandType(const Operand &Op) const;

  /// Names of the loop indices, outermost first (for printing affine
  /// expressions).
  std::vector<std::string> indexNames() const;

  /// Total number of innermost-block executions (product of trip counts).
  int64_t totalIterations() const;

  /// Deep copy.
  Kernel clone() const;
};

} // namespace slp

#endif // SLP_IR_KERNEL_H
