//===- analysis/Dataflow.cpp ----------------------------------*- C++ -*-===//

#include "analysis/Dataflow.h"

using namespace slp;

DataflowResult slp::solveBlockDataflow(const Kernel &K,
                                       const DataflowProblem &Problem,
                                       unsigned WidenAfterSweeps,
                                       unsigned MaxSweeps) {
  const unsigned N = K.Body.size();
  DataflowResult R;
  R.StmtIn.resize(N);

  // The block re-executes (so the back edge carries state) whenever the
  // nest runs it more than once. totalIterations() == 0 (zero-trip) or 1
  // makes the block straight-line.
  const bool BackEdge = K.totalIterations() > 1;

  std::unique_ptr<AbstractState> HeaderIn = Problem.boundaryState();

  // One sweep: propagate HeaderIn through the block, recording the state
  // before each statement, and return the block-exit state.
  auto Sweep = [&](bool Record) {
    std::unique_ptr<AbstractState> Cur = HeaderIn->clone();
    for (unsigned I = 0; I != N; ++I) {
      if (Record)
        R.StmtIn[I] = Cur->clone();
      Problem.transferStatement(I, *Cur);
    }
    return Cur;
  };

  // Chaotic iteration degenerates to repeated sweeps on this flow graph
  // (one loop header, sequential interior edges): the only join point is
  // the header, where the boundary state meets the back edge. Iterate
  // until the header state stabilizes, widening once the problem has had
  // WidenAfterSweeps rounds to converge on its own.
  for (unsigned Round = 0; Round != MaxSweeps; ++Round) {
    ++R.Sweeps;
    std::unique_ptr<AbstractState> Exit = Sweep(/*Record=*/false);
    if (!BackEdge) {
      R.Converged = true;
      break;
    }
    std::unique_ptr<AbstractState> Prev = HeaderIn->clone();
    bool Changed = HeaderIn->joinWith(*Exit);
    if (!Changed) {
      R.Converged = true;
      break;
    }
    if (Round + 1 >= WidenAfterSweeps) {
      HeaderIn->widenAgainst(*Prev);
      R.Widened = true;
    }
  }
  // A non-converged result (MaxSweeps exhausted; possible only with a
  // broken widening operator) is reported through R.Converged rather than
  // aborting — clients degrade to their top state.

  // Final recording sweep from the stable header state.
  R.BlockOut = Sweep(/*Record=*/true);
  return R;
}
