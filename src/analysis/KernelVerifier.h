//===- analysis/KernelVerifier.h - Static kernel bounds verifier -*- C++ -*-===//
///
/// \file
/// The value-range analysis' bug-finding consumer: a static verifier of
/// the *kernel itself* (the vector IR has its own validator in
/// analysis/VectorVerifier.h). Its core job is the bounds theorem the
/// rest of the toolchain silently assumes: every array reference's
/// flattened offset stays within [0, numElements) for every iteration of
/// the loop nest — the same contract `evalArrayOffset` asserts
/// dynamically and the native backend compiles without checks. Affine
/// subscripts over compile-time loop bounds make the proof exact: the
/// verifier either proves a reference in bounds or reports the exact
/// offending iteration interval.
///
/// Diagnostics go through the PR-5 DiagnosticEngine under the `SK` code
/// namespace (docs/kernel-analysis.md has the table):
///
///   SK01 error    out-of-bounds array load (RHS, guard or select arm —
///                 always evaluated, so always an error)
///   SK02 error    out-of-bounds unguarded array store
///   SK03 error    out-of-bounds guarded array store (the store may be
///                 dynamically suppressed, but the IR bounds contract
///                 covers every reference)
///   SK04 error    reference cannot be bounded (offset fold overflows
///                 int64, or a subscript names a depth outside the nest)
///   SK05 error    malformed reference (subscript arity mismatch)
///   SK10 warning  dead scalar store (overwritten in the same iteration
///                 by an unguarded store with no intervening read)
///   SK11 warning  unused scalar symbol (declared, never referenced)
///   SK12 warning  guard proven always taken by value ranges
///   SK13 warning  guard proven never taken by value ranges
///   SK14 warning  loop nest never executes (zero trip count)
///
/// Errors are exact for affine references (no false positives on kernels
/// whose references fit int64 folding); the SK1x lint tier runs only when
/// requested. A separate entry point, `checkRangeSoundness`, is the
/// fuzzer's oracle: it executes the kernel with scalar semantics and
/// asserts every dynamically observed value lies inside its predicted
/// static range.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_KERNELVERIFIER_H
#define SLP_ANALYSIS_KERNELVERIFIER_H

#include "analysis/ValueRange.h"
#include "support/Diagnostic.h"

#include <optional>

namespace slp {

struct KernelVerifyOptions {
  /// Emit the SK1x lint tier (dead stores, unused scalars, constant
  /// guards) next to the bounds errors.
  bool Lints = false;
  /// Promote lint warnings to errors (`--werror`).
  bool WarningsAsErrors = false;
};

struct KernelVerifyResult {
  std::vector<Diagnostic> Diags;
  /// True when every array reference was proven in bounds (no SK0x
  /// errors; lint warnings do not affect this).
  bool BoundsProven = true;
  /// Array references examined (telemetry).
  unsigned RefsChecked = 0;

  bool hasErrors() const {
    return countDiagnostics(Diags, DiagSeverity::Error) != 0;
  }
};

/// Statically verifies \p K: bounds-checks every array reference and,
/// when requested, runs the range-driven lint tier.
KernelVerifyResult verifyKernel(const Kernel &K,
                                const KernelVerifyOptions &Options = {});

/// The fuzzer's range-soundness oracle: runs \p K once with scalar
/// semantics from the environment seeded by \p Seed and checks every
/// observed scalar value, guard value, RHS value, committed store and
/// array offset against its predicted static range. Returns a
/// description of the first violation, or nullopt when every observation
/// was inside its range. Kernels that fail the bounds verifier or whose
/// nest never executes are skipped (nullopt, \p Skipped set when
/// non-null): there is nothing sound to observe.
std::optional<std::string> checkRangeSoundness(const Kernel &K,
                                               uint64_t Seed,
                                               bool *Skipped = nullptr);

} // namespace slp

#endif // SLP_ANALYSIS_KERNELVERIFIER_H
