//===- analysis/VectorVerifier.h - Vector IR translation validation -*- C++ -*-===//
///
/// \file
/// Static translation validation of an emitted vector program against the
/// scalar semantics of the kernel it was generated for. The verifier
/// abstractly interprets the VectorIR instruction stream with symbolic
/// per-lane provenance terms (analysis/LaneDataflow.h) and proves, for one
/// symbolic execution of the block (hence for every iteration of the loop
/// nest):
///
///  * every vector store lane writes exactly the value the matching block
///    statement's right-hand side computes, to exactly the location its
///    left-hand side denotes (VV03/VV04);
///  * the statements executed (by store lanes and ScalarExec instructions)
///    are a bijection onto the block (VV01/VV02);
///  * the order of writes preserves the scalar dependence graph, reusing
///    the GCD/Banerjee machinery of analysis/Dependence.h (VV05/VV09);
///  * no vector register is read before it is defined, redefined while
///    live, or used with inconsistent lane widths (VV06/VV07/VV08/VV11);
///  * predicated (if-converted) statements store through a mask whose
///    per-lane term equals the statement's guard — a mask of the wrong
///    width is VV12, an unguarded store of a guarded statement (or a
///    masked store under the wrong mask) is VV13.
///
/// A lint tier (VL01-VL04 warnings) flags code that is correct but
/// wasteful: dead pack lanes, permutes composing to the identity,
/// unaligned/gathered memory packs the layout stage could fix, and scalar
/// execution reloading values still live in a superword register.
///
/// The full diagnostic code table lives in docs/static-analysis.md.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_VECTORVERIFIER_H
#define SLP_ANALYSIS_VECTORVERIFIER_H

#include "support/Diagnostic.h"
#include "vector/VectorIR.h"

namespace slp {

struct VectorVerifyOptions {
  /// Emit the lint tier (VL* warnings) in addition to correctness errors.
  bool Lint = true;
  /// Promote warnings to errors (`--werror`).
  bool WarningsAsErrors = false;
  /// Cap on emitted diagnostics; a closing note reports suppression.
  /// Severity counters below stay exact regardless.
  unsigned MaxDiagnostics = 64;
};

/// Outcome of one verification: diagnostics plus the counters surfaced as
/// `verify.*` statistics.
struct VectorVerifyResult {
  std::vector<Diagnostic> Diags;
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned StoreLanesChecked = 0;
  unsigned ScalarStmtsChecked = 0;
  unsigned TermsInterned = 0;
  unsigned LocationsTracked = 0;

  /// True when the program provably implements the kernel (no errors;
  /// warnings do not affect validity).
  bool ok() const { return Errors == 0; }

  /// Rendered first error ("" when ok).
  std::string firstError() const;
};

/// Statically verifies \p Program against the scalar semantics of
/// \p Final (the kernel the program runs on — after unrolling, and after
/// layout rewriting when the layout stage fired). Dependences are
/// recomputed over \p Final internally.
VectorVerifyResult verifyVectorProgram(const Kernel &Final,
                                       const VectorProgram &Program,
                                       const VectorVerifyOptions &Options = {});

} // namespace slp

#endif // SLP_ANALYSIS_VECTORVERIFIER_H
