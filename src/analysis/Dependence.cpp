//===- analysis/Dependence.cpp --------------------------------*- C++ -*-===//

#include "analysis/Dependence.h"

#include "ir/Interpreter.h"

#include <numeric>

using namespace slp;

namespace {

/// Overflow-checked signed-64-bit helpers for the Banerjee bounds fold.
/// Each returns false on overflow, in which case the caller must degrade
/// to the conservative may-be-zero answer rather than reason from a
/// wrapped value.
bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

bool checkedNeg(int64_t A, int64_t &Out) {
  return !__builtin_sub_overflow(int64_t{0}, A, &Out);
}

} // namespace

/// Banerjee-style feasibility of `Diff(i) == 0` over the rectangular
/// iteration domain of \p K. Returns true when a zero is possible
/// (may-alias) and false when provably impossible.
bool slp::affineMayBeZero(const Kernel &K, const AffineExpr &Diff) {
  if (Diff.isConstant())
    return Diff.constant() == 0;

  // GCD test: c + sum a_d * i_d == 0 requires gcd(a_d) | c.
  // std::gcd(INT64_MIN, x) overflows when negating; route coefficients
  // through a checked negation and stay conservative when one is INT64_MIN.
  int64_t Gcd = 0;
  bool GcdValid = true;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D) {
    int64_t C = Diff.coeff(D);
    int64_t Mag;
    if (C >= 0)
      Mag = C;
    else if (!checkedNeg(C, Mag)) {
      GcdValid = false;
      break;
    }
    Gcd = std::gcd(Gcd, Mag);
  }
  if (GcdValid && Gcd != 0 && Diff.constant() % Gcd != 0)
    return false;

  // Bounds test: the variable part must be able to reach -c. Every step of
  // the fold is overflow-checked; a single overflow makes the bounds
  // unusable, so the test degrades to "may be zero".
  int64_t Min = 0, Max = 0;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D) {
    int64_t C = Diff.coeff(D);
    if (C == 0)
      continue;
    if (D >= K.Loops.size())
      return true; // unknown index range; stay conservative
    const Loop &L = K.Loops[D];
    if (L.tripCount() == 0)
      return false;
    int64_t Lo = L.Lower;
    int64_t Extent, Hi;
    if (!checkedMul(L.tripCount() - 1, L.Step, Extent) ||
        !checkedAdd(L.Lower, Extent, Hi))
      return true;
    int64_t TermLo, TermHi;
    if (!checkedMul(C, Lo, TermLo) || !checkedMul(C, Hi, TermHi))
      return true;
    if (C < 0)
      std::swap(TermLo, TermHi);
    if (!checkedAdd(Min, TermLo, Min) || !checkedAdd(Max, TermHi, Max))
      return true;
  }
  int64_t Target;
  if (!checkedNeg(Diff.constant(), Target))
    return true;
  return Target >= Min && Target <= Max;
}

bool DependenceInfo::mayAlias(const Kernel &K, const Operand &A,
                              const Operand &B) {
  if (A.isConstant() || B.isConstant())
    return false;
  if (A.kind() != B.kind())
    return false;
  if (A.isScalar())
    return A.symbol() == B.symbol();
  if (A.symbol() != B.symbol())
    return false;
  const ArraySymbol &Arr = K.array(A.symbol());
  AffineExpr Diff = flattenArrayRef(Arr, A.subscripts()) -
                    flattenArrayRef(Arr, B.subscripts());
  return affineMayBeZero(K, Diff);
}

DependenceInfo::DependenceInfo(const Kernel &K) {
  N = K.Body.size();
  Matrix.assign(static_cast<size_t>(N) * N, 0);

  // Cache each statement's def and uses.
  std::vector<const Operand *> Defs(N);
  std::vector<std::vector<const Operand *>> Uses(N);
  for (unsigned I = 0; I != N; ++I) {
    const Statement &S = K.Body.statement(I);
    Defs[I] = &S.lhs();
    // Guard reads count as uses; guarded defs stay unconditional defs
    // (conservative but safe for ordering).
    S.forEachUse([&Uses, I](const Operand &O) { Uses[I].push_back(&O); });
  }

  for (unsigned P = 0; P != N; ++P) {
    for (unsigned Q = P + 1; Q != N; ++Q) {
      bool Flow = false, Anti = false, Output = false;
      for (const Operand *U : Uses[Q])
        if (mayAlias(K, *Defs[P], *U)) {
          Flow = true;
          break;
        }
      for (const Operand *U : Uses[P])
        if (mayAlias(K, *U, *Defs[Q])) {
          Anti = true;
          break;
        }
      Output = mayAlias(K, *Defs[P], *Defs[Q]);
      if (Flow)
        Edges.push_back(Dep{P, Q, DepKind::Flow});
      if (Anti)
        Edges.push_back(Dep{P, Q, DepKind::Anti});
      if (Output)
        Edges.push_back(Dep{P, Q, DepKind::Output});
      if (Flow || Anti || Output)
        Matrix[P * N + Q] = 1;
    }
  }
}
