//===- analysis/Dependence.cpp --------------------------------*- C++ -*-===//

#include "analysis/Dependence.h"

#include "ir/Interpreter.h"

#include <cstdlib>
#include <numeric>

using namespace slp;

namespace {

/// Overflow-checked signed-64-bit helpers for the Banerjee bounds fold.
/// Each returns false on overflow, in which case the caller must degrade
/// to the conservative may-be-zero answer rather than reason from a
/// wrapped value.
bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

bool checkedNeg(int64_t A, int64_t &Out) {
  return !__builtin_sub_overflow(int64_t{0}, A, &Out);
}

/// Floor/ceil division for the 128-bit Bezout-line arithmetic of the
/// two-variable exact test. \p B must be nonzero.
__int128 floorDiv128(__int128 A, __int128 B) {
  __int128 Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) != (B < 0)))
    --Q;
  return Q;
}

__int128 ceilDiv128(__int128 A, __int128 B) {
  __int128 Q = A / B, R = A % B;
  if (R != 0 && ((R < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Extended Euclid over nonnegative inputs: returns g = gcd(A, B) and
/// Bezout coefficients with A*X + B*Y == g. The coefficients are bounded
/// by B/g and A/g, so int64 arithmetic cannot overflow.
int64_t extendedGcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  int64_t OldR = A, R = B;
  int64_t OldX = 1, CurX = 0;
  int64_t OldY = 0, CurY = 1;
  while (R != 0) {
    int64_t Q = OldR / R;
    int64_t T = OldR - Q * R;
    OldR = R;
    R = T;
    T = OldX - Q * CurX;
    OldX = CurX;
    CurX = T;
    T = OldY - Q * CurY;
    OldY = CurY;
    CurY = T;
  }
  X = OldX;
  Y = OldY;
  return OldR;
}

/// Intersects `Lo <= Base + Coef * k <= Hi` (all 128-bit, Coef != 0) into
/// the running k-interval [KLo, KHi]. Returns false when the intersection
/// is empty.
bool clampSolutionLine(__int128 Base, int64_t Coef, __int128 Lo, __int128 Hi,
                       __int128 &KLo, __int128 &KHi) {
  __int128 A, B;
  if (Coef > 0) {
    A = ceilDiv128(Lo - Base, Coef);
    B = floorDiv128(Hi - Base, Coef);
  } else {
    A = ceilDiv128(Hi - Base, Coef);
    B = floorDiv128(Lo - Base, Coef);
  }
  KLo = std::max(KLo, A);
  KHi = std::min(KHi, B);
  return KLo <= KHi;
}

} // namespace

/// Banerjee-style feasibility of `Diff(i) == 0` over the rectangular
/// iteration domain of \p K. Returns true when a zero is possible
/// (may-alias) and false when provably impossible.
bool slp::affineMayBeZero(const Kernel &K, const AffineExpr &Diff) {
  if (Diff.isConstant())
    return Diff.constant() == 0;

  // GCD test: c + sum a_d * i_d == 0 requires gcd(a_d) | c.
  // std::gcd(INT64_MIN, x) overflows when negating; route coefficients
  // through a checked negation and stay conservative when one is INT64_MIN.
  int64_t Gcd = 0;
  bool GcdValid = true;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D) {
    int64_t C = Diff.coeff(D);
    int64_t Mag;
    if (C >= 0)
      Mag = C;
    else if (!checkedNeg(C, Mag)) {
      GcdValid = false;
      break;
    }
    Gcd = std::gcd(Gcd, Mag);
  }
  if (GcdValid && Gcd != 0 && Diff.constant() % Gcd != 0)
    return false;

  // Bounds test: the variable part must be able to reach -c. Every step of
  // the fold is overflow-checked; a single overflow makes the bounds
  // unusable, so the test degrades to "may be zero".
  int64_t Min = 0, Max = 0;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D) {
    int64_t C = Diff.coeff(D);
    if (C == 0)
      continue;
    if (D >= K.Loops.size())
      return true; // unknown index range; stay conservative
    const Loop &L = K.Loops[D];
    if (L.tripCount() == 0)
      return false;
    int64_t Lo = L.Lower;
    int64_t Extent, Hi;
    if (!checkedMul(L.tripCount() - 1, L.Step, Extent) ||
        !checkedAdd(L.Lower, Extent, Hi))
      return true;
    int64_t TermLo, TermHi;
    if (!checkedMul(C, Lo, TermLo) || !checkedMul(C, Hi, TermHi))
      return true;
    if (C < 0)
      std::swap(TermLo, TermHi);
    if (!checkedAdd(Min, TermLo, Min) || !checkedAdd(Max, TermHi, Max))
      return true;
  }
  int64_t Target;
  if (!checkedNeg(Diff.constant(), Target))
    return true;
  return Target >= Min && Target <= Max;
}

bool slp::affineFeasibleZero(const Kernel &K, const AffineExpr &Diff) {
  // A zero-trip nest executes nothing: no difference is ever evaluated,
  // constant or not (the nest is perfect, so one empty loop empties it).
  for (const Loop &L : K.Loops)
    if (L.tripCount() == 0)
      return false;
  if (Diff.isConstant())
    return Diff.constant() == 0;

  // Normalize every active dimension into its trip space: substituting
  // i_d = Lower_d + Step_d * t_d (t_d in [0, trip_d)) folds the loop's
  // lower bound into the constant and its step into the coefficient. This
  // is where the sharpening over the base tier comes from: the GCD test
  // sees the raw subscript coefficients, while divisibility really acts on
  // coefficient * step.
  int64_t Const = Diff.constant();
  struct Term {
    int64_t Coef; // normalized coefficient (nonzero)
    int64_t Trip; // t ranges over [0, Trip)
  };
  Term Terms[2];
  unsigned NumTerms = 0;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D) {
    int64_t C = Diff.coeff(D);
    if (C == 0)
      continue;
    if (D >= K.Loops.size())
      return true; // unknown index range; stay conservative
    const Loop &L = K.Loops[D];
    int64_t Trip = L.tripCount();
    if (Trip == 0)
      return false; // empty domain: the difference is never evaluated
    int64_t Base, Coef;
    if (!checkedMul(C, L.Lower, Base) || !checkedAdd(Const, Base, Const) ||
        !checkedMul(C, L.Step, Coef))
      return true;
    if (Coef == 0)
      continue; // zero step: the index is constant, already folded
    if (NumTerms == 2)
      return true; // three or more active dims: out of scope
    Terms[NumTerms++] = Term{Coef, Trip};
  }

  int64_t Target;
  if (!checkedNeg(Const, Target))
    return true;
  if (NumTerms == 0)
    return Target == 0;

  if (NumTerms == 1) {
    // Coef * t == Target with t in [0, Trip).
    int64_t Coef = Terms[0].Coef;
    if (Target % Coef != 0)
      return false;
    int64_t T = Target / Coef;
    return T >= 0 && T < Terms[0].Trip;
  }

  // A * x + B * y == Target with x in [0, TripX) and y in [0, TripY).
  // Solve the Bezout line in 128-bit arithmetic and intersect its
  // parameter with both box constraints.
  int64_t A = Terms[0].Coef, B = Terms[1].Coef;
  int64_t TripX = Terms[0].Trip, TripY = Terms[1].Trip;
  if (A == INT64_MIN || B == INT64_MIN)
    return true; // |INT64_MIN| is not representable; stay conservative
  int64_t X0, Y0;
  int64_t G = extendedGcd(std::abs(A), std::abs(B), X0, Y0);
  if (Target % G != 0)
    return false;
  if (A < 0)
    X0 = -X0;
  if (B < 0)
    Y0 = -Y0;
  // One solution of A*x + B*y == Target; the general solution walks the
  // line with parameter k. The products fit 128 bits (both factors are
  // 64-bit) and the line stride divides the 64-bit coefficients.
  __int128 Scale = Target / G;
  __int128 BaseX = static_cast<__int128>(X0) * Scale;
  __int128 BaseY = static_cast<__int128>(Y0) * Scale;
  int64_t StrideX = B / G;
  int64_t StrideY = -(A / G);
  // The base point is bounded by 2^126, so any parameter value that lands
  // in the box is bounded by 2^126 / |stride| + trip; a +-2^126 window
  // contains every candidate without overflowing the 128-bit divisions.
  const __int128 Big = static_cast<__int128>(1) << 126;
  __int128 KLo = -Big, KHi = Big;
  return clampSolutionLine(BaseX, StrideX, 0, TripX - 1, KLo, KHi) &&
         clampSolutionLine(BaseY, StrideY, 0, TripY - 1, KLo, KHi);
}

bool DependenceInfo::mayAlias(const Kernel &K, const Operand &A,
                              const Operand &B) {
  if (A.isConstant() || B.isConstant())
    return false;
  if (A.kind() != B.kind())
    return false;
  if (A.isScalar())
    return A.symbol() == B.symbol();
  if (A.symbol() != B.symbol())
    return false;
  const ArraySymbol &Arr = K.array(A.symbol());
  AffineExpr Diff = flattenArrayRef(Arr, A.subscripts()) -
                    flattenArrayRef(Arr, B.subscripts());
  return affineMayBeZero(K, Diff);
}

namespace {

/// True when \p Def may write one of the leaf operands of \p Guard.
bool mayClobberGuard(const Kernel &K, const Operand &Def, const Expr &Guard) {
  bool Clobbered = false;
  Guard.forEachLeaf([&](const Operand &O) {
    if (DependenceInfo::mayAlias(K, Def, O))
      Clobbered = true;
  });
  return Clobbered;
}

/// True when the guards of \p SP and \p SQ can never both be taken in the
/// same iteration, assuming their shared operands hold the same values at
/// both evaluation points (the caller checks for intervening clobbers).
/// Two patterns are recognized: a comparison and its negation over
/// structurally identical children, and equality of the same expression
/// against two distinct constants. Both remain exclusive under NaN
/// operands: a NaN makes every ordered comparison false, so at most one
/// guard of a complementary pair is taken (possibly neither).
bool guardsMutuallyExclusive(const Statement &SP, const Statement &SQ) {
  if (!SP.hasGuard() || !SQ.hasGuard())
    return false;
  const Expr &GP = SP.guard();
  const Expr &GQ = SQ.guard();
  if (GP.isLeaf() || GQ.isLeaf())
    return false;
  if (!isCompareOp(GP.opcode()) || !isCompareOp(GQ.opcode()))
    return false;
  if (negatedCompare(GP.opcode()) == GQ.opcode() &&
      GP.child(0).equals(GQ.child(0)) && GP.child(1).equals(GQ.child(1)))
    return true;
  if (GP.opcode() == OpCode::CmpEQ && GQ.opcode() == OpCode::CmpEQ &&
      GP.child(0).equals(GQ.child(0)) && GP.child(1).isLeaf() &&
      GQ.child(1).isLeaf() && GP.child(1).leaf().isConstant() &&
      GQ.child(1).leaf().isConstant() &&
      GP.child(1).leaf().constantValue() !=
          GQ.child(1).leaf().constantValue())
    return true;
  return false;
}

} // namespace

bool DependenceInfo::aliasSharpened(const Kernel &K, const Operand &A,
                                    const Operand &B) {
  if (!mayAlias(K, A, B))
    return false;
  if (!Sharpen || !A.isArray())
    return true; // scalar/scalar same-symbol aliasing is already exact
  const ArraySymbol &Arr = K.array(A.symbol());
  AffineExpr Diff = flattenArrayRef(Arr, A.subscripts()) -
                    flattenArrayRef(Arr, B.subscripts());
  if (Diff.isConstant())
    return true; // the base tier is exact on constant differences
  if (affineFeasibleZero(K, Diff))
    return true;
  ++RangeDisproved;
  return false;
}

DependenceInfo::DependenceInfo(const Kernel &K, bool SharpenWithRanges)
    : Sharpen(SharpenWithRanges) {
  N = K.Body.size();
  Matrix.assign(static_cast<size_t>(N) * N, 0);

  // Cache each statement's def and uses.
  std::vector<const Operand *> Defs(N);
  std::vector<std::vector<const Operand *>> Uses(N);
  for (unsigned I = 0; I != N; ++I) {
    const Statement &S = K.Body.statement(I);
    Defs[I] = &S.lhs();
    // Guard reads count as uses; guarded defs stay unconditional defs
    // (conservative but safe for ordering).
    S.forEachUse([&Uses, I](const Operand &O) { Uses[I].push_back(&O); });
  }

  for (unsigned P = 0; P != N; ++P) {
    for (unsigned Q = P + 1; Q != N; ++Q) {
      bool Flow = false, Anti = false, Output = false;
      for (const Operand *U : Uses[Q])
        if (aliasSharpened(K, *Defs[P], *U)) {
          Flow = true;
          break;
        }
      for (const Operand *U : Uses[P])
        if (aliasSharpened(K, *U, *Defs[Q])) {
          Anti = true;
          break;
        }
      Output = aliasSharpened(K, *Defs[P], *Defs[Q]);
      if (Output && Sharpen) {
        // Stores predicated by provably disjoint guards commit at most one
        // value per iteration, so their relative order is irrelevant. The
        // exclusivity argument needs both guards to read the same values:
        // no statement from P up to (but excluding) Q may write a guard
        // operand — including P itself, whose own store could feed Q's
        // guard.
        const Statement &SP = K.Body.statement(P);
        const Statement &SQ = K.Body.statement(Q);
        if (guardsMutuallyExclusive(SP, SQ)) {
          bool Clobbered = false;
          for (unsigned I = P; I != Q && !Clobbered; ++I)
            Clobbered =
                mayClobberGuard(K, K.Body.statement(I).lhs(), SQ.guard());
          if (!Clobbered) {
            Output = false;
            ++GuardDisjoint;
          }
        }
      }
      if (Flow)
        Edges.push_back(Dep{P, Q, DepKind::Flow});
      if (Anti)
        Edges.push_back(Dep{P, Q, DepKind::Anti});
      if (Output)
        Edges.push_back(Dep{P, Q, DepKind::Output});
      if (Flow || Anti || Output)
        Matrix[P * N + Q] = 1;
    }
  }
}
