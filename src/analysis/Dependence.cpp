//===- analysis/Dependence.cpp --------------------------------*- C++ -*-===//

#include "analysis/Dependence.h"

#include "ir/Interpreter.h"

#include <numeric>

using namespace slp;

/// Banerjee-style feasibility of `Diff(i) == 0` over the rectangular
/// iteration domain of \p K. Returns true when a zero is possible
/// (may-alias) and false when provably impossible.
static bool affineCanBeZero(const Kernel &K, const AffineExpr &Diff) {
  if (Diff.isConstant())
    return Diff.constant() == 0;

  // GCD test: c + sum a_d * i_d == 0 requires gcd(a_d) | c.
  int64_t Gcd = 0;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D)
    Gcd = std::gcd(Gcd, Diff.coeff(D));
  if (Gcd != 0 && Diff.constant() % Gcd != 0)
    return false;

  // Bounds test: the variable part must be able to reach -c.
  int64_t Min = 0, Max = 0;
  for (unsigned D = 0, E = Diff.numDims(); D != E; ++D) {
    int64_t C = Diff.coeff(D);
    if (C == 0)
      continue;
    if (D >= K.Loops.size())
      return true; // unknown index range; stay conservative
    const Loop &L = K.Loops[D];
    if (L.tripCount() == 0)
      return false;
    int64_t Lo = L.Lower;
    int64_t Hi = L.Lower + (L.tripCount() - 1) * L.Step;
    if (C > 0) {
      Min += C * Lo;
      Max += C * Hi;
    } else {
      Min += C * Hi;
      Max += C * Lo;
    }
  }
  int64_t Target = -Diff.constant();
  return Target >= Min && Target <= Max;
}

bool DependenceInfo::mayAlias(const Kernel &K, const Operand &A,
                              const Operand &B) {
  if (A.isConstant() || B.isConstant())
    return false;
  if (A.kind() != B.kind())
    return false;
  if (A.isScalar())
    return A.symbol() == B.symbol();
  if (A.symbol() != B.symbol())
    return false;
  const ArraySymbol &Arr = K.array(A.symbol());
  AffineExpr Diff = flattenArrayRef(Arr, A.subscripts()) -
                    flattenArrayRef(Arr, B.subscripts());
  return affineCanBeZero(K, Diff);
}

DependenceInfo::DependenceInfo(const Kernel &K) {
  N = K.Body.size();
  Matrix.assign(static_cast<size_t>(N) * N, 0);

  // Cache each statement's def and uses.
  std::vector<const Operand *> Defs(N);
  std::vector<std::vector<const Operand *>> Uses(N);
  for (unsigned I = 0; I != N; ++I) {
    const Statement &S = K.Body.statement(I);
    Defs[I] = &S.lhs();
    S.rhs().forEachLeaf(
        [&Uses, I](const Operand &O) { Uses[I].push_back(&O); });
  }

  for (unsigned P = 0; P != N; ++P) {
    for (unsigned Q = P + 1; Q != N; ++Q) {
      bool Flow = false, Anti = false, Output = false;
      for (const Operand *U : Uses[Q])
        if (mayAlias(K, *Defs[P], *U)) {
          Flow = true;
          break;
        }
      for (const Operand *U : Uses[P])
        if (mayAlias(K, *U, *Defs[Q])) {
          Anti = true;
          break;
        }
      Output = mayAlias(K, *Defs[P], *Defs[Q]);
      if (Flow)
        Edges.push_back(Dep{P, Q, DepKind::Flow});
      if (Anti)
        Edges.push_back(Dep{P, Q, DepKind::Anti});
      if (Output)
        Edges.push_back(Dep{P, Q, DepKind::Output});
      if (Flow || Anti || Output)
        Matrix[P * N + Q] = 1;
    }
  }
}
