//===- analysis/Alignment.h - Pack contiguity and alignment -----*- C++ -*-===//
///
/// \file
/// Static classification of how an *ordered* operand pack can be brought
/// into a vector register: one aligned contiguous load, one unaligned
/// contiguous load, a contiguous load plus a permutation (reversed or
/// otherwise permuted contiguous block), or an element-wise gather. This is
/// the "alignment analysis" of the paper's pre-processing stage, consumed
/// by the vector code generator and the cost model.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_ALIGNMENT_H
#define SLP_ANALYSIS_ALIGNMENT_H

#include "ir/Kernel.h"

#include <vector>

namespace slp {

/// How an ordered pack of operands maps onto memory.
enum class PackShape : uint8_t {
  /// All lanes are literal constants; materialized with no memory access.
  AllConstant,
  /// One contiguous block, in lane order, provably vector-aligned.
  ContiguousAligned,
  /// One contiguous block in lane order, alignment unknown or misaligned.
  ContiguousUnaligned,
  /// The lanes cover one contiguous block but in permuted order
  /// (e.g. reversed); loadable with one (unaligned) load + one shuffle.
  PermutedContiguous,
  /// Unrelated locations; requires an element-by-element gather/scatter.
  Gather,
};

/// Classifies the ordered array-reference pack \p Lanes (size >= 2; all
/// operands must be array references). \p Lanes.size() elements of the
/// pack's element type form one vector register.
PackShape classifyArrayPack(const Kernel &K,
                            const std::vector<const Operand *> &Lanes);

/// True when the flattened affine address of \p Ref is a multiple of
/// \p LaneCount elements for every iteration (coefficients and constant all
/// divisible by LaneCount).
bool isAlignedRef(const Kernel &K, const Operand &Ref, unsigned LaneCount);

} // namespace slp

#endif // SLP_ANALYSIS_ALIGNMENT_H
