//===- analysis/VectorVerifyPass.cpp --------------------------*- C++ -*-===//

#include "analysis/VectorVerifyPass.h"

#include "analysis/VectorVerifier.h"
#include "slp/PipelineState.h"

using namespace slp;

void VectorVerifyPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  S.VerifyDiags.clear();
  S.Verified = false;
  if (!S.Options.VerifyVector || !S.ProgramReady)
    return;

  VectorVerifyOptions VO;
  VO.Lint = S.Options.VerifyLint;
  VO.WarningsAsErrors = S.Options.VerifyWerror;
  VectorVerifyResult R = verifyVectorProgram(S.Final, S.Program, VO);

  S.VerifyDiags = std::move(R.Diags);
  S.Verified = R.ok();

  Ctx.Stats.add("verify.programs");
  Ctx.Stats.add("verify.insts", S.Program.Insts.size());
  Ctx.Stats.add("verify.store-lanes", R.StoreLanesChecked);
  Ctx.Stats.add("verify.terms", R.TermsInterned);
  if (R.Errors)
    Ctx.Stats.add("verify.errors", R.Errors);
  if (R.Warnings)
    Ctx.Stats.add("verify.warnings", R.Warnings);

  if (!R.ok())
    Ctx.Remarks.missed(name(),
                       "vector program failed translation validation: " +
                           R.firstError());
}
