//===- analysis/LaneDataflow.h - Symbolic lane provenance -------*- C++ -*-===//
///
/// \file
/// The abstract domain of the vector translation validator
/// (analysis/VectorVerifier.h): hash-consed symbolic terms describing what
/// value a lane holds, interned memory locations (scalar symbols and
/// flattened affine array elements), and version tokens describing what a
/// location contains at a point of a symbolic execution.
///
/// The provenance lattice per lane is, from bottom to top:
///
///   Const(c)           a literal constant
///   Initial(loc)       the pre-block content of a memory location
///   Stmt terms         the (untruncated) right-hand side of a block
///                      statement, as Apply/Trunc trees over the above
///   Ambig(loc, ...)    a read whose producing write is ambiguous
///                      (may-aliasing writes intervened) — the top element,
///                      comparable only against the identically ambiguous
///                      read of the other execution
///
/// Terms are hash-consed, so abstract-value equality is integer identity.
/// Two symbolic executions (the scalar reference and the vector program)
/// that resolve reads through identical version tokens build identical
/// term ids for identical dynamic values; see docs/static-analysis.md for
/// the soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_LANEDATAFLOW_H
#define SLP_ANALYSIS_LANEDATAFLOW_H

#include "ir/Expr.h"
#include "ir/Kernel.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace slp {

/// Interned id of a memory location (scalar symbol or array element).
using LocId = uint32_t;

/// Interned id of a symbolic term. Equality of ids is equality of terms.
using TermId = uint32_t;

constexpr TermId InvalidTerm = ~0u;

/// How two interned locations may overlap.
enum class LocAlias : uint8_t {
  None, ///< provably distinct in every iteration
  May,  ///< may coincide in some iteration (Banerjee/GCD could not refute)
  Must, ///< the same location in every iteration (identical id)
};

/// Interns the memory locations a kernel's block touches. Array references
/// are keyed by their row-major flattened affine offset, so syntactically
/// different subscripts denoting the same element share one id, and id
/// equality is must-alias. May-alias between distinct ids is decided by
/// the dependence machinery (affineMayBeZero) and cached pairwise.
class LocationTable {
public:
  explicit LocationTable(const Kernel &K) : K(K) {}

  /// Interns the scalar/array operand \p Op (asserts on constants).
  LocId intern(const Operand &Op);

  /// Aliasing relation between two interned locations.
  LocAlias alias(LocId A, LocId B);

  bool isScalarLoc(LocId L) const { return Locs[L].IsScalar; }
  SymbolId locSymbol(LocId L) const { return Locs[L].Sym; }

  /// Element type stored at the location (drives store truncation).
  ScalarType locType(LocId L) const;

  /// "g" or "A[4*i + 1]" for diagnostics.
  std::string locName(LocId L) const;

  unsigned size() const { return static_cast<unsigned>(Locs.size()); }

private:
  struct Loc {
    bool IsScalar = false;
    SymbolId Sym = 0;
    AffineExpr Offset; ///< flattened element offset (arrays only)
  };

  const Kernel &K;
  std::vector<Loc> Locs;
  std::unordered_map<std::string, LocId> Interned;
  std::unordered_map<uint64_t, LocAlias> AliasCache;
};

/// What a location contains at a point of a symbolic execution: the last
/// must-write (a block statement id, or Initial for the pre-block
/// content) plus every may-aliasing write since. Tokens are comparable
/// across the scalar-reference and vector executions: equal tokens over
/// the same location imply equal dynamic contents, provided the writes
/// they name stored the statements' intended values and every pair of
/// may-aliasing writes executed in the same relative order (both checked
/// separately by the verifier).
struct VersionToken {
  static constexpr int Initial = -1;
  /// Statement id of the last must-write. Ids <= -2 are synthetic writer
  /// ids minted during error recovery; they compare equal to nothing the
  /// reference execution produces.
  int Def = Initial;
  std::vector<int> MayWriters; ///< sorted, deduplicated writer ids

  bool operator==(const VersionToken &O) const {
    return Def == O.Def && MayWriters == O.MayWriters;
  }
};

/// Hash-consed symbolic term table.
class TermTable {
public:
  enum class Kind : uint8_t {
    Const,   ///< literal constant (Payload = bit pattern)
    Initial, ///< pre-block content of location Loc
    Trunc,   ///< integer store/load truncation of Child[0]
    Apply,   ///< OpCode Op over Child terms
    Guarded, ///< conditional store obligation: value Child[1] under
             ///< predicate Child[0] (if-converted statements)
    Ambig,   ///< ambiguous read: location Loc, token (Def, MayWriters)
    Clobber, ///< unique unknown introduced by an already-diagnosed error
  };

  struct Term {
    Kind TheKind = Kind::Const;
    OpCode Op = OpCode::Add;
    uint64_t Payload = 0; ///< Const: value bits; Clobber: unique id
    LocId Loc = 0;
    int Def = VersionToken::Initial; ///< Ambig only
    std::vector<int> MayWriters;     ///< Ambig only
    std::vector<TermId> Children;
  };

  TermId makeConst(double Value);
  TermId makeInitial(LocId Loc);
  TermId makeTrunc(TermId Child);
  TermId makeApply(OpCode Op, const std::vector<TermId> &Children);
  /// The store obligation of a guarded statement: \p Value is written only
  /// where \p Pred is non-zero.
  TermId makeGuarded(TermId Pred, TermId Value);
  /// An ambiguous read of \p Loc under \p Token (non-empty MayWriters).
  TermId makeAmbig(LocId Loc, const VersionToken &Token);
  /// A fresh term equal to nothing else (error recovery).
  TermId makeClobber();

  const Term &term(TermId Id) const { return Terms[Id]; }
  unsigned size() const { return static_cast<unsigned>(Terms.size()); }

  /// Debug rendering ("trunc(add(init(A[i]), const(1)))").
  std::string str(TermId Id, const LocationTable &Locs) const;

private:
  TermId intern(Term T, std::string Key);

  std::vector<Term> Terms;
  std::unordered_map<std::string, TermId> Interned;
  uint64_t NextClobber = 0;
};

/// A chronological write log over interned locations; one per symbolic
/// execution. Version tokens are derived by scanning the log backwards, so
/// locations first mentioned late still observe earlier may-aliasing
/// writes.
class WriteLog {
public:
  /// Records that writer \p Stmt (a statement id, or a synthetic negative
  /// id minted during error recovery) wrote location \p Loc. A
  /// \p Conditional write (a guarded statement's store) may or may not
  /// happen at run time: it never becomes a token's must-write Def — a
  /// later read observes it only as a may-writer, with the preceding
  /// unconditional write still visible underneath.
  void recordWrite(LocId Loc, int Stmt, bool Conditional = false) {
    Writes.push_back({Loc, Stmt, Conditional});
  }

  /// The version token an immediate read of \p Loc would observe.
  VersionToken tokenFor(LocId Loc, LocationTable &Locs) const;

  unsigned size() const { return static_cast<unsigned>(Writes.size()); }

private:
  struct Write {
    LocId Loc;
    int Stmt;
    bool Conditional;
  };
  std::vector<Write> Writes;
};

} // namespace slp

#endif // SLP_ANALYSIS_LANEDATAFLOW_H
