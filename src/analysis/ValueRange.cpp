//===- analysis/ValueRange.cpp --------------------------------*- C++ -*-===//

#include "analysis/ValueRange.h"

#include "analysis/Dataflow.h"
#include "ir/Statement.h"
#include "support/Error.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace slp;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Bounds must never be NaN (NaN-ness lives in the MayNaN bit); a fold
/// that produced NaN bounds (inf - inf, 0 * inf, ...) degrades to the
/// widest interval with the NaN bit set.
ValueInterval degradeNaNBounds(double Lo, double Hi, bool MayNaN) {
  if (std::isnan(Lo) || std::isnan(Hi))
    return ValueInterval::top();
  ValueInterval R;
  R.Lo = Lo;
  R.Hi = Hi;
  R.MayNaN = MayNaN;
  return R;
}

bool checkedAdd(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool checkedMul(int64_t A, int64_t B, int64_t &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

} // namespace

ValueInterval ValueInterval::exact(double V) {
  if (std::isnan(V))
    return top();
  ValueInterval R;
  R.Lo = R.Hi = V;
  R.MayNaN = false;
  return R;
}

ValueInterval ValueInterval::range(double Lo, double Hi, bool MayNaN) {
  return degradeNaNBounds(Lo, Hi, MayNaN);
}

bool ValueInterval::isTop() const {
  return Lo == -Inf && Hi == Inf && MayNaN;
}

bool ValueInterval::contains(double V) const {
  if (std::isnan(V))
    return MayNaN;
  return V >= Lo && V <= Hi;
}

bool ValueInterval::joinWith(const ValueInterval &Other) {
  bool Changed = false;
  if (Other.Lo < Lo) {
    Lo = Other.Lo;
    Changed = true;
  }
  if (Other.Hi > Hi) {
    Hi = Other.Hi;
    Changed = true;
  }
  if (Other.MayNaN && !MayNaN) {
    MayNaN = true;
    Changed = true;
  }
  return Changed;
}

void ValueInterval::widenAgainst(const ValueInterval &Previous) {
  if (Lo < Previous.Lo)
    Lo = -Inf;
  if (Hi > Previous.Hi)
    Hi = Inf;
}

bool ValueInterval::operator==(const ValueInterval &Other) const {
  return Lo == Other.Lo && Hi == Other.Hi && MayNaN == Other.MayNaN;
}

std::string ValueInterval::str() const {
  std::ostringstream OS;
  OS << "[" << Lo << ", " << Hi << "]";
  if (MayNaN)
    OS << " nan?";
  return OS.str();
}

ValueInterval slp::applyUnaryOp(OpCode Op, const ValueInterval &A) {
  switch (Op) {
  case OpCode::Neg:
    return degradeNaNBounds(-A.Hi, -A.Lo, A.MayNaN);
  case OpCode::Sqrt: {
    // Interpreter semantics: sqrt(fabs(x)), so the result is >= 0 for
    // every non-NaN input.
    double MaxMag = std::max(std::fabs(A.Lo), std::fabs(A.Hi));
    double MinMag = 0;
    if (A.Lo > 0 || A.Hi < 0)
      MinMag = std::min(std::fabs(A.Lo), std::fabs(A.Hi));
    return degradeNaNBounds(std::sqrt(MinMag), std::sqrt(MaxMag), A.MayNaN);
  }
  case OpCode::Abs: {
    double MaxMag = std::max(std::fabs(A.Lo), std::fabs(A.Hi));
    double MinMag = 0;
    if (A.Lo > 0 || A.Hi < 0)
      MinMag = std::min(std::fabs(A.Lo), std::fabs(A.Hi));
    return degradeNaNBounds(MinMag, MaxMag, A.MayNaN);
  }
  default:
    slpUnreachable("not a unary opcode");
  }
}

namespace {

/// [min, max] over the four products of the interval corners; any NaN
/// corner (0 * inf) degrades to top.
ValueInterval mulIntervals(const ValueInterval &A, const ValueInterval &B) {
  double C[4] = {A.Lo * B.Lo, A.Lo * B.Hi, A.Hi * B.Lo, A.Hi * B.Hi};
  double Lo = C[0], Hi = C[0];
  for (double V : C) {
    if (std::isnan(V))
      return ValueInterval::top();
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  // 0 * inf is NaN even when neither lands on a corner product: a
  // zero-spanning interval times an unbounded one can pair them in the
  // interior.
  bool ZeroTimesInf =
      (A.Lo <= 0 && A.Hi >= 0 && (std::isinf(B.Lo) || std::isinf(B.Hi))) ||
      (B.Lo <= 0 && B.Hi >= 0 && (std::isinf(A.Lo) || std::isinf(A.Hi)));
  return ValueInterval::range(Lo, Hi,
                              A.MayNaN || B.MayNaN || ZeroTimesInf);
}

ValueInterval divIntervals(const ValueInterval &A, const ValueInterval &B) {
  // A denominator interval admitting zero can produce +-inf (x/0) and
  // NaN (0/0): no useful bounds survive.
  if (B.Lo <= 0 && B.Hi >= 0)
    return ValueInterval::top();
  double C[4] = {A.Lo / B.Lo, A.Lo / B.Hi, A.Hi / B.Lo, A.Hi / B.Hi};
  double Lo = C[0], Hi = C[0];
  for (double V : C) {
    if (std::isnan(V)) // inf / inf
      return ValueInterval::top();
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  return ValueInterval::range(Lo, Hi, A.MayNaN || B.MayNaN);
}

/// fmin/fmax return the non-NaN operand when exactly one side is NaN, so
/// a MayNaN side contributes the *other* side's full range to the result
/// and the result is NaN only when both sides may be.
ValueInterval minIntervals(const ValueInterval &A, const ValueInterval &B) {
  double Lo = std::min(A.Lo, B.Lo);
  double Hi = std::min(A.Hi, B.Hi);
  if (A.MayNaN)
    Hi = std::max(Hi, B.Hi);
  if (B.MayNaN)
    Hi = std::max(Hi, A.Hi);
  return ValueInterval::range(Lo, Hi, A.MayNaN && B.MayNaN);
}

ValueInterval maxIntervals(const ValueInterval &A, const ValueInterval &B) {
  double Lo = std::max(A.Lo, B.Lo);
  double Hi = std::max(A.Hi, B.Hi);
  if (A.MayNaN)
    Lo = std::min(Lo, B.Lo);
  if (B.MayNaN)
    Lo = std::min(Lo, A.Lo);
  return ValueInterval::range(Lo, Hi, A.MayNaN && B.MayNaN);
}

/// Comparison transfer. The result is always exactly 0.0 or 1.0 (never
/// NaN); NaN *operands* make every comparison false except CmpNE, which
/// they make true.
ValueInterval cmpIntervals(OpCode Op, const ValueInterval &A,
                           const ValueInterval &B) {
  const bool NoNaN = !A.MayNaN && !B.MayNaN;
  const bool Disjoint = A.Hi < B.Lo || A.Lo > B.Hi;
  const bool SamePoint =
      A.Lo == A.Hi && B.Lo == B.Hi && A.Lo == B.Lo && NoNaN;
  bool AlwaysTrue = false, AlwaysFalse = false;
  switch (Op) {
  case OpCode::CmpLT:
    AlwaysTrue = NoNaN && A.Hi < B.Lo;
    AlwaysFalse = A.Lo >= B.Hi; // NaN operands also compare false
    break;
  case OpCode::CmpLE:
    AlwaysTrue = NoNaN && A.Hi <= B.Lo;
    AlwaysFalse = A.Lo > B.Hi;
    break;
  case OpCode::CmpGT:
    AlwaysTrue = NoNaN && A.Lo > B.Hi;
    AlwaysFalse = A.Hi <= B.Lo;
    break;
  case OpCode::CmpGE:
    AlwaysTrue = NoNaN && A.Lo >= B.Hi;
    AlwaysFalse = A.Hi < B.Lo;
    break;
  case OpCode::CmpEQ:
    AlwaysTrue = SamePoint;
    AlwaysFalse = Disjoint; // NaN == x is false anyway
    break;
  case OpCode::CmpNE:
    AlwaysTrue = Disjoint; // NaN != x is true anyway
    AlwaysFalse = SamePoint;
    break;
  default:
    slpUnreachable("not a comparison opcode");
  }
  if (AlwaysTrue)
    return ValueInterval::exact(1.0);
  if (AlwaysFalse)
    return ValueInterval::exact(0.0);
  return ValueInterval::range(0.0, 1.0);
}

} // namespace

ValueInterval slp::applyBinaryOp(OpCode Op, const ValueInterval &A,
                                 const ValueInterval &B) {
  if (isCompareOp(Op))
    return cmpIntervals(Op, A, B);
  switch (Op) {
  case OpCode::Add:
    // The extreme sums are corner sums, but NaN comes from the *mixed*
    // corners (+inf + -inf), which the bounds arithmetic never touches.
    return degradeNaNBounds(A.Lo + B.Lo, A.Hi + B.Hi,
                            A.MayNaN || B.MayNaN ||
                                (A.Hi == Inf && B.Lo == -Inf) ||
                                (A.Lo == -Inf && B.Hi == Inf));
  case OpCode::Sub:
    return degradeNaNBounds(A.Lo - B.Hi, A.Hi - B.Lo,
                            A.MayNaN || B.MayNaN ||
                                (A.Hi == Inf && B.Hi == Inf) ||
                                (A.Lo == -Inf && B.Lo == -Inf));
  case OpCode::Mul:
    return mulIntervals(A, B);
  case OpCode::Div:
    return divIntervals(A, B);
  case OpCode::Min:
    return minIntervals(A, B);
  case OpCode::Max:
    return maxIntervals(A, B);
  default:
    slpUnreachable("not a binary opcode");
  }
}

ValueInterval slp::applySelect(const ValueInterval &C, const ValueInterval &A,
                               const ValueInterval &B) {
  // Select takes A unless the condition is exactly 0.0; NaN conditions
  // compare != 0 and take A as well.
  const bool CanBeZero = C.Lo <= 0 && C.Hi >= 0;
  const bool AlwaysZero = C.Lo == 0 && C.Hi == 0 && !C.MayNaN;
  if (AlwaysZero)
    return B;
  if (!CanBeZero)
    return A;
  ValueInterval R = A;
  R.joinWith(B);
  return R;
}

ValueInterval slp::applyStoreConversion(ScalarType Ty,
                                        const ValueInterval &V) {
  if (isFloatType(Ty))
    return V;
  // trunc() is monotone, so the truncated interval is the truncation of
  // the bounds; NaN truncates to NaN and keeps the may-bit.
  return ValueInterval::range(std::trunc(V.Lo), std::trunc(V.Hi), V.MayNaN);
}

bool slp::loopIndexBounds(const Kernel &K, unsigned Depth, int64_t &Lo,
                          int64_t &Hi) {
  if (Depth >= K.Loops.size())
    return false;
  const Loop &L = K.Loops[Depth];
  int64_t Trip = L.tripCount();
  if (Trip == 0)
    return false;
  int64_t Extent;
  if (!checkedMul(Trip - 1, L.Step, Extent) ||
      !checkedAdd(L.Lower, Extent, Hi))
    return false;
  Lo = L.Lower;
  return true;
}

OffsetInterval slp::affineRangeOverDomain(const Kernel &K,
                                          const AffineExpr &E) {
  OffsetInterval R;
  int64_t Min = E.constant(), Max = E.constant();
  for (unsigned D = 0, End = E.numDims(); D != End; ++D) {
    int64_t C = E.coeff(D);
    if (C == 0)
      continue;
    if (D >= K.Loops.size())
      return R; // references an index outside the nest
    int64_t Lo, Hi;
    if (!loopIndexBounds(K, D, Lo, Hi))
      return R; // zero-trip: the expression is never evaluated
    int64_t TermLo, TermHi;
    if (!checkedMul(C, Lo, TermLo) || !checkedMul(C, Hi, TermHi))
      return R;
    if (C < 0)
      std::swap(TermLo, TermHi);
    if (!checkedAdd(Min, TermLo, Min) || !checkedAdd(Max, TermHi, Max))
      return R;
  }
  R.Lo = Min;
  R.Hi = Max;
  R.Known = true;
  return R;
}

ValueInterval slp::evalExprInterval(const Kernel &K, const Expr &E,
                                    const std::vector<ValueInterval> &Scalars) {
  if (E.isLeaf()) {
    const Operand &Op = E.leaf();
    switch (Op.kind()) {
    case Operand::Kind::Constant:
      return ValueInterval::exact(Op.constantValue());
    case Operand::Kind::Scalar:
      return Scalars[Op.symbol()];
    case Operand::Kind::Array:
      return ValueInterval::top(); // array contents are not tracked
    }
    slpUnreachable("invalid operand kind");
  }
  OpCode Op = E.opcode();
  if (isUnaryOp(Op))
    return applyUnaryOp(Op, evalExprInterval(K, E.child(0), Scalars));
  if (isTernaryOp(Op))
    return applySelect(evalExprInterval(K, E.child(0), Scalars),
                       evalExprInterval(K, E.child(1), Scalars),
                       evalExprInterval(K, E.child(2), Scalars));
  return applyBinaryOp(Op, evalExprInterval(K, E.child(0), Scalars),
                       evalExprInterval(K, E.child(1), Scalars));
}

GuardVerdict slp::classifyGuardByRange(
    const Kernel &K, const Expr &Guard,
    const std::vector<ValueInterval> &Scalars) {
  ValueInterval G = evalExprInterval(K, Guard, Scalars);
  // Taken means != 0.0; NaN is taken.
  if (G.Lo > 0 || G.Hi < 0)
    return GuardVerdict::AlwaysTaken;
  if (G.Lo == 0 && G.Hi == 0 && !G.MayNaN)
    return GuardVerdict::NeverTaken;
  return GuardVerdict::Unknown;
}

namespace {

/// Narrows \p Scalars under "the guard evaluated true": when one side of
/// a comparison guard is a plain scalar leaf, the other side's interval
/// bounds it along the taken path (and every ordered comparison rules
/// NaN out). CmpNE learns nothing (NaN != x is true).
void refineScalarsByGuard(const Kernel &K, const Expr &Guard,
                          std::vector<ValueInterval> &Scalars) {
  if (Guard.isLeaf() || !isCompareOp(Guard.opcode()))
    return;
  OpCode Op = Guard.opcode();
  const Expr &L = Guard.child(0);
  const Expr &R = Guard.child(1);

  auto Narrow = [&](const Expr &Side, OpCode SideOp, const Expr &Other) {
    if (!Side.isLeaf() || !Side.leaf().isScalar())
      return;
    ValueInterval Bound = evalExprInterval(K, Other, Scalars);
    ValueInterval &Cur = Scalars[Side.leaf().symbol()];
    switch (SideOp) {
    case OpCode::CmpLT:
    case OpCode::CmpLE:
      Cur.Hi = std::min(Cur.Hi, Bound.Hi);
      Cur.MayNaN = false;
      break;
    case OpCode::CmpGT:
    case OpCode::CmpGE:
      Cur.Lo = std::max(Cur.Lo, Bound.Lo);
      Cur.MayNaN = false;
      break;
    case OpCode::CmpEQ:
      Cur.Lo = std::max(Cur.Lo, Bound.Lo);
      Cur.Hi = std::min(Cur.Hi, Bound.Hi);
      Cur.MayNaN = false;
      break;
    case OpCode::CmpNE:
      break;
    default:
      break;
    }
  };

  // `x < e` bounds x above; `e < x` bounds x below (the mirrored opcode).
  auto Mirror = [](OpCode O) {
    switch (O) {
    case OpCode::CmpLT:
      return OpCode::CmpGT;
    case OpCode::CmpLE:
      return OpCode::CmpGE;
    case OpCode::CmpGT:
      return OpCode::CmpLT;
    case OpCode::CmpGE:
      return OpCode::CmpLE;
    default:
      return O;
    }
  };
  Narrow(L, Op, R);
  Narrow(R, Mirror(Op), L);
}

/// The lattice element: one interval per scalar symbol.
class ScalarRangeState : public AbstractState {
public:
  explicit ScalarRangeState(size_t NumScalars)
      : Scalars(NumScalars, ValueInterval::top()) {}

  std::unique_ptr<AbstractState> clone() const override {
    return std::make_unique<ScalarRangeState>(*this);
  }

  bool joinWith(const AbstractState &Other) override {
    const auto &O = static_cast<const ScalarRangeState &>(Other);
    bool Changed = false;
    for (size_t I = 0; I != Scalars.size(); ++I)
      Changed |= Scalars[I].joinWith(O.Scalars[I]);
    return Changed;
  }

  void widenAgainst(const AbstractState &Previous) override {
    const auto &P = static_cast<const ScalarRangeState &>(Previous);
    for (size_t I = 0; I != Scalars.size(); ++I)
      Scalars[I].widenAgainst(P.Scalars[I]);
  }

  bool equals(const AbstractState &Other) const override {
    const auto &O = static_cast<const ScalarRangeState &>(Other);
    return Scalars == O.Scalars;
  }

  std::vector<ValueInterval> Scalars;
};

/// The dataflow problem: interval transfer of each statement.
class ScalarRangeProblem : public DataflowProblem {
public:
  explicit ScalarRangeProblem(const Kernel &K) : K(K) {}

  std::unique_ptr<AbstractState> boundaryState() const override {
    // Kernel inputs (initial scalar values) are unknown.
    return std::make_unique<ScalarRangeState>(K.Scalars.size());
  }

  void transferStatement(unsigned StmtIdx,
                         AbstractState &State) const override {
    auto &S = static_cast<ScalarRangeState &>(State);
    transfer(K.Body.statement(StmtIdx), S.Scalars, nullptr);
  }

  /// Shared by the solver transfer and the final recording sweep: applies
  /// \p Stmt to \p Scalars, optionally reporting the per-statement ranges.
  void transfer(const Statement &Stmt, std::vector<ValueInterval> &Scalars,
                StatementRanges *Out) const {
    ValueInterval Guard = ValueInterval::exact(1.0);
    GuardVerdict Verdict = GuardVerdict::AlwaysTaken;
    if (Stmt.hasGuard()) {
      Guard = evalExprInterval(K, Stmt.guard(), Scalars);
      Verdict = classifyGuardByRange(K, Stmt.guard(), Scalars);
    }
    ValueInterval Rhs = evalExprInterval(K, Stmt.rhs(), Scalars);

    // The committed value benefits from the guard's taken-path narrowing
    // and undergoes the destination's store conversion.
    ValueInterval Stored = Rhs;
    if (Stmt.hasGuard()) {
      std::vector<ValueInterval> Refined = Scalars;
      refineScalarsByGuard(K, Stmt.guard(), Refined);
      Stored = evalExprInterval(K, Stmt.rhs(), Refined);
    }
    ScalarType DestTy = Stmt.lhs().isScalar()
                            ? K.scalar(Stmt.lhs().symbol()).Ty
                            : K.array(Stmt.lhs().symbol()).Ty;
    Stored = applyStoreConversion(DestTy, Stored);

    if (Out) {
      Out->Guard = Guard;
      Out->Rhs = Rhs;
      Out->Stored = Stored;
    }

    if (Stmt.lhs().isScalar()) {
      ValueInterval &Dest = Scalars[Stmt.lhs().symbol()];
      switch (Verdict) {
      case GuardVerdict::AlwaysTaken:
        Dest = Stored; // strong update
        break;
      case GuardVerdict::NeverTaken:
        break; // the store never commits
      case GuardVerdict::Unknown:
        Dest.joinWith(Stored); // maybe-store
        break;
      }
    }
  }

private:
  const Kernel &K;
};

} // namespace

ValueRangeInfo slp::computeValueRanges(const Kernel &K) {
  ValueRangeInfo Info;
  const unsigned N = K.Body.size();
  const size_t NumScalars = K.Scalars.size();
  Info.ScalarIn.assign(N, std::vector<ValueInterval>(NumScalars,
                                                     ValueInterval::top()));
  Info.ScalarExit.assign(NumScalars, ValueInterval::top());
  Info.Stmts.assign(N, StatementRanges());

  ScalarRangeProblem Problem(K);
  DataflowResult R = solveBlockDataflow(K, Problem);
  Info.Sweeps = R.Sweeps;
  Info.Widened = R.Widened;
  if (!R.Converged) {
    // Defensive: without a fixpoint every range stays top (sound).
    for (StatementRanges &S : Info.Stmts)
      S.Guard = ValueInterval::top();
    return Info;
  }

  for (unsigned I = 0; I != N; ++I) {
    auto &In = static_cast<const ScalarRangeState &>(*R.StmtIn[I]);
    Info.ScalarIn[I] = In.Scalars;
    std::vector<ValueInterval> Scratch = In.Scalars;
    Problem.transfer(K.Body.statement(I), Scratch, &Info.Stmts[I]);
  }
  auto &Exit = static_cast<const ScalarRangeState &>(*R.BlockOut);
  Info.ScalarExit = Exit.Scalars;
  return Info;
}
