//===- analysis/Dataflow.h - Monotone dataflow framework --------*- C++ -*-===//
///
/// \file
/// A generic monotone dataflow framework over the kernel IR. The kernel
/// language has no control-flow graph — a kernel is one straight-line
/// basic block executed once per iteration of a rectangular loop nest —
/// so the flow graph every analysis runs on is fixed: a virtual entry
/// edge into the first statement, sequential edges between statements,
/// and one back edge from the end of the block to its start that models
/// re-execution on the next loop iteration.
///
/// An analysis supplies a `DataflowProblem`: a lattice of abstract states
/// (`AbstractState`: clone / join / widen / equality) plus a transfer
/// function per statement. `solveBlockDataflow` iterates transfer sweeps
/// to a fixpoint with a worklist, applying the problem's widening
/// operator at the loop header once the state is still changing after
/// `WidenAfterSweeps` rounds, which guarantees termination on lattices of
/// unbounded height (interval analysis is the canonical client, see
/// analysis/ValueRange.h). docs/kernel-analysis.md describes the design.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_DATAFLOW_H
#define SLP_ANALYSIS_DATAFLOW_H

#include "ir/Kernel.h"

#include <memory>
#include <vector>

namespace slp {

/// One element of a dataflow lattice. Implementations are value-like
/// objects holding whatever the analysis tracks (e.g. one interval per
/// scalar symbol); the solver manipulates them only through this
/// interface.
class AbstractState {
public:
  virtual ~AbstractState() = default;

  /// Deep copy.
  virtual std::unique_ptr<AbstractState> clone() const = 0;

  /// Joins \p Other into this state (lattice least upper bound). Returns
  /// true when this state changed. \p Other is guaranteed to come from
  /// the same DataflowProblem.
  virtual bool joinWith(const AbstractState &Other) = 0;

  /// Widens this state against \p Previous, its value at the same program
  /// point one solver round earlier: any part still growing must jump to
  /// a value it can no longer grow past (intervals jump to +-infinity).
  /// Called only at the loop header and only after the problem's
  /// widening threshold, so analyses keep full precision on kernels that
  /// stabilize quickly.
  virtual void widenAgainst(const AbstractState &Previous) = 0;

  /// Lattice equality (the solver's convergence test).
  virtual bool equals(const AbstractState &Other) const = 0;
};

/// One dataflow analysis: the lattice boundary value plus the per-
/// statement transfer function.
class DataflowProblem {
public:
  virtual ~DataflowProblem() = default;

  /// The state on entry to the block before the first iteration (for a
  /// forward analysis over kernel inputs: everything unknown).
  virtual std::unique_ptr<AbstractState> boundaryState() const = 0;

  /// Applies statement \p StmtIdx's effect to \p State in place. Must be
  /// monotone: a larger input state may only produce a larger output.
  virtual void transferStatement(unsigned StmtIdx,
                                 AbstractState &State) const = 0;
};

/// Everything the solver produced. `StmtIn[I]` over-approximates every
/// machine state observable immediately before statement `I` executes, in
/// any iteration of the loop nest; `BlockOut` over-approximates the state
/// after the block (end of any iteration, including the last).
struct DataflowResult {
  std::vector<std::unique_ptr<AbstractState>> StmtIn;
  std::unique_ptr<AbstractState> BlockOut;
  /// Solver telemetry: full sweeps run, whether widening ever fired, and
  /// whether a true fixpoint was reached (always true in practice; false
  /// only if MaxSweeps stopped a non-converging problem, in which case
  /// the result is NOT a sound fixpoint and callers must discard it).
  unsigned Sweeps = 0;
  bool Widened = false;
  bool Converged = false;
};

/// Solves \p Problem over \p K's basic block. The back edge is included
/// whenever the nest can execute the block more than once; a zero-trip
/// nest still yields states (the boundary propagated through one sweep)
/// so clients need not special-case it.
DataflowResult solveBlockDataflow(const Kernel &K,
                                  const DataflowProblem &Problem,
                                  unsigned WidenAfterSweeps = 3,
                                  unsigned MaxSweeps = 64);

} // namespace slp

#endif // SLP_ANALYSIS_DATAFLOW_H
