//===- analysis/ValueRange.h - Interval value-range analysis ----*- C++ -*-===//
///
/// \file
/// The first instance of the monotone framework (analysis/Dataflow.h): an
/// interval analysis over the kernel's values. Three kinds of ranges are
/// computed:
///
///  * **Index ranges** — exact: loop induction variables range over their
///    compile-time bounds, so any affine function of them (subscripts,
///    flattened offsets) has an exactly computable min/max over the
///    rectangular domain (`affineRangeOverDomain`), degraded only when
///    the fold would overflow signed 64-bit arithmetic.
///  * **Scalar ranges** — a fixpoint: one `ValueInterval` per scalar
///    symbol, transferred through literals and the arithmetic opcodes
///    and joined across loop iterations with widening (accumulators go
///    to +-infinity rather than iterating trip-count times).
///  * **Guard refinement** — the value a guarded statement *stores* is
///    computed under the guard's taken-path narrowing (`if (x < 4.0)
///    y = x` stores at most 4.0), while its always-evaluated RHS keeps
///    the unrefined range, mirroring the IR's if-converted semantics.
///
/// Every interval is a sound over-approximation of the dynamic values the
/// scalar interpreter can observe (checked by the fuzzer's range-
/// soundness oracle, analysis/KernelVerifier.h). NaN is tracked as a
/// separate may-bit: `contains(v)` for NaN `v` is `MayNaN`, and the
/// bounds only constrain non-NaN values.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_VALUERANGE_H
#define SLP_ANALYSIS_VALUERANGE_H

#include "ir/Kernel.h"

#include <limits>
#include <string>
#include <vector>

namespace slp {

/// A closed interval of doubles with a may-be-NaN bit. Top is
/// [-inf, +inf] with MayNaN set; there is no explicit bottom (callers
/// never propagate states for unreachable code — a zero-trip nest simply
/// skips the checks).
struct ValueInterval {
  double Lo = -std::numeric_limits<double>::infinity();
  double Hi = std::numeric_limits<double>::infinity();
  bool MayNaN = true;

  static ValueInterval top() { return ValueInterval(); }
  static ValueInterval exact(double V);
  static ValueInterval range(double Lo, double Hi, bool MayNaN = false);

  bool isTop() const;
  /// Does the interval admit \p V? NaN values test the MayNaN bit; the
  /// bounds are closed.
  bool contains(double V) const;

  /// Least upper bound; returns true when this interval changed.
  bool joinWith(const ValueInterval &Other);
  /// Standard interval widening: a bound that grew past \p Previous jumps
  /// to the corresponding infinity.
  void widenAgainst(const ValueInterval &Previous);

  bool operator==(const ValueInterval &Other) const;
  bool operator!=(const ValueInterval &Other) const {
    return !(*this == Other);
  }

  /// "[lo, hi]" or "[lo, hi] nan?" rendering for diagnostics and tests.
  std::string str() const;
};

/// Interval transfer of one unary opcode (Neg/Sqrt/Abs), with the
/// interpreter's semantics (Sqrt takes sqrt(fabs(x))).
ValueInterval applyUnaryOp(OpCode Op, const ValueInterval &A);

/// Interval transfer of one binary opcode, including the comparisons
/// (whose result is within [0, 1] and never NaN).
ValueInterval applyBinaryOp(OpCode Op, const ValueInterval &A,
                            const ValueInterval &B);

/// Interval transfer of Select(C, A, B): picks A when C cannot be zero
/// (NaN conditions take A too), B when C is exactly zero, the hull
/// otherwise.
ValueInterval applySelect(const ValueInterval &C, const ValueInterval &A,
                          const ValueInterval &B);

/// The store conversion (ir/Interpreter.cpp convertForStore): integer-
/// typed locations truncate toward zero, float-typed store unchanged.
ValueInterval applyStoreConversion(ScalarType Ty, const ValueInterval &V);

/// Exact min/max of an affine expression over the iteration domain.
/// Known=false when a coefficient references a depth outside the nest or
/// the fold overflows int64 (callers degrade to "cannot prove").
struct OffsetInterval {
  int64_t Lo = 0;
  int64_t Hi = 0;
  bool Known = false;

  bool contains(int64_t V) const { return Known && V >= Lo && V <= Hi; }
};

OffsetInterval affineRangeOverDomain(const Kernel &K, const AffineExpr &E);

/// Inclusive value range of loop-depth \p Depth's induction variable;
/// false when the loop never executes.
bool loopIndexBounds(const Kernel &K, unsigned Depth, int64_t &Lo,
                     int64_t &Hi);

/// Per-statement ranges (indexed like the kernel body).
struct StatementRanges {
  /// The guard's value (exact(1) for unguarded statements).
  ValueInterval Guard = ValueInterval::exact(1.0);
  /// The always-evaluated RHS value.
  ValueInterval Rhs;
  /// The value actually committed by the store: RHS re-evaluated under
  /// the guard's taken-path refinement, then store-converted for the
  /// destination's scalar type.
  ValueInterval Stored;
};

/// The whole analysis result.
struct ValueRangeInfo {
  /// ScalarIn[S][Id]: interval of scalar Id immediately before statement
  /// S executes, valid for every iteration of the nest.
  std::vector<std::vector<ValueInterval>> ScalarIn;
  /// Scalar intervals after the block (any iteration's end, including the
  /// last — i.e. valid for the kernel's final scalar values).
  std::vector<ValueInterval> ScalarExit;
  std::vector<StatementRanges> Stmts;
  /// Solver telemetry (analysis/Dataflow.h).
  unsigned Sweeps = 0;
  bool Widened = false;

  const ValueInterval &scalarBefore(unsigned Stmt, SymbolId Scalar) const {
    return ScalarIn[Stmt][Scalar];
  }
};

/// Runs the interval analysis over \p K.
ValueRangeInfo computeValueRanges(const Kernel &K);

/// Evaluates \p E over intervals, reading scalar symbols from
/// \p Scalars (array loads are unknown: top).
ValueInterval evalExprInterval(const Kernel &K, const Expr &E,
                               const std::vector<ValueInterval> &Scalars);

/// What interval analysis can prove about a guard at a program point.
/// AlwaysTaken means the guard can never evaluate to exactly 0.0 (NaN
/// guards are taken: the interpreter tests `!= 0.0`); NeverTaken means it
/// is provably always 0.0.
enum class GuardVerdict : uint8_t { Unknown, AlwaysTaken, NeverTaken };

GuardVerdict classifyGuardByRange(const Kernel &K, const Expr &Guard,
                                  const std::vector<ValueInterval> &Scalars);

} // namespace slp

#endif // SLP_ANALYSIS_VALUERANGE_H
