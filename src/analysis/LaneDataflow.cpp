//===- analysis/LaneDataflow.cpp ------------------------------*- C++ -*-===//

#include "analysis/LaneDataflow.h"

#include "analysis/Dependence.h"
#include "ir/Interpreter.h"
#include "support/Error.h"

#include <algorithm>
#include <cstring>

using namespace slp;

//===----------------------------------------------------------------------===//
// LocationTable
//===----------------------------------------------------------------------===//

LocId LocationTable::intern(const Operand &Op) {
  assert(!Op.isConstant() && "constants are not memory locations");
  Loc L;
  std::string Key;
  if (Op.isScalar()) {
    L.IsScalar = true;
    L.Sym = Op.symbol();
    Key = 's';
    Key += std::to_string(Op.symbol());
  } else {
    L.IsScalar = false;
    L.Sym = Op.symbol();
    L.Offset = flattenArrayRef(K.array(Op.symbol()), Op.subscripts());
    Key = 'a';
    Key += std::to_string(Op.symbol());
    Key += ':';
    Key += L.Offset.key();
  }
  auto [It, Inserted] =
      Interned.emplace(std::move(Key), static_cast<LocId>(Locs.size()));
  if (Inserted)
    Locs.push_back(std::move(L));
  return It->second;
}

LocAlias LocationTable::alias(LocId A, LocId B) {
  if (A == B)
    return LocAlias::Must;
  const Loc &LA = Locs[A];
  const Loc &LB = Locs[B];
  if (LA.IsScalar != LB.IsScalar || LA.Sym != LB.Sym)
    return LocAlias::None;
  if (LA.IsScalar)
    return LocAlias::None; // same symbol would have interned to one id
  uint64_t CacheKey = (static_cast<uint64_t>(std::min(A, B)) << 32) |
                      std::max(A, B);
  auto It = AliasCache.find(CacheKey);
  if (It != AliasCache.end())
    return It->second;
  // Distinct flattened offsets of one array: can they coincide in some
  // iteration? Offsets of interned locations are modest (they came from a
  // real kernel's flattening), so the subtraction itself is safe; the
  // feasibility tests use checked arithmetic internally. The exact
  // `affineFeasibleZero` tier must run here too: the pipeline reorders
  // stores based on the range-sharpened dependence analysis, so a coarser
  // alias oracle in the verifier would reject those legal reorderings.
  AffineExpr Diff = LA.Offset - LB.Offset;
  LocAlias Result = affineMayBeZero(K, Diff) && affineFeasibleZero(K, Diff)
                        ? LocAlias::May
                        : LocAlias::None;
  AliasCache.emplace(CacheKey, Result);
  return Result;
}

ScalarType LocationTable::locType(LocId L) const {
  const Loc &TheLoc = Locs[L];
  return TheLoc.IsScalar ? K.scalar(TheLoc.Sym).Ty : K.array(TheLoc.Sym).Ty;
}

std::string LocationTable::locName(LocId L) const {
  const Loc &TheLoc = Locs[L];
  if (TheLoc.IsScalar)
    return K.scalar(TheLoc.Sym).Name;
  return K.array(TheLoc.Sym).Name + "[" +
         TheLoc.Offset.toString(K.indexNames()) + "]";
}

//===----------------------------------------------------------------------===//
// TermTable
//===----------------------------------------------------------------------===//

TermId TermTable::intern(Term T, std::string Key) {
  auto [It, Inserted] =
      Interned.emplace(std::move(Key), static_cast<TermId>(Terms.size()));
  if (Inserted)
    Terms.push_back(std::move(T));
  return It->second;
}

TermId TermTable::makeConst(double Value) {
  Term T;
  T.TheKind = Kind::Const;
  std::memcpy(&T.Payload, &Value, sizeof(Value));
  std::string Key{'c'};
  Key += std::to_string(T.Payload);
  return intern(std::move(T), std::move(Key));
}

TermId TermTable::makeInitial(LocId Loc) {
  Term T;
  T.TheKind = Kind::Initial;
  T.Loc = Loc;
  std::string Key{'i'};
  Key += std::to_string(Loc);
  return intern(std::move(T), std::move(Key));
}

TermId TermTable::makeTrunc(TermId Child) {
  // trunc is idempotent; keep terms canonical so a double truncation
  // (store then reload through an integer location) compares equal.
  if (term(Child).TheKind == Kind::Trunc)
    return Child;
  Term T;
  T.TheKind = Kind::Trunc;
  T.Children = {Child};
  std::string Key{'t'};
  Key += std::to_string(Child);
  return intern(std::move(T), std::move(Key));
}

TermId TermTable::makeApply(OpCode Op, const std::vector<TermId> &Children) {
  Term T;
  T.TheKind = Kind::Apply;
  T.Op = Op;
  T.Children = Children;
  std::string Key{'o'};
  Key += std::to_string(static_cast<int>(Op));
  for (TermId C : Children) {
    Key += ',';
    Key += std::to_string(C);
  }
  return intern(std::move(T), std::move(Key));
}

TermId TermTable::makeGuarded(TermId Pred, TermId Value) {
  Term T;
  T.TheKind = Kind::Guarded;
  T.Children = {Pred, Value};
  std::string Key{'g'};
  Key += std::to_string(Pred);
  Key += ',';
  Key += std::to_string(Value);
  return intern(std::move(T), std::move(Key));
}

TermId TermTable::makeAmbig(LocId Loc, const VersionToken &Token) {
  Term T;
  T.TheKind = Kind::Ambig;
  T.Loc = Loc;
  T.Def = Token.Def;
  T.MayWriters = Token.MayWriters;
  std::string Key{'m'};
  Key += std::to_string(Loc);
  Key += ':';
  Key += std::to_string(Token.Def);
  for (int W : Token.MayWriters) {
    Key += ',';
    Key += std::to_string(W);
  }
  return intern(std::move(T), std::move(Key));
}

TermId TermTable::makeClobber() {
  Term T;
  T.TheKind = Kind::Clobber;
  T.Payload = NextClobber++;
  std::string Key{'x'};
  Key += std::to_string(T.Payload);
  return intern(std::move(T), std::move(Key));
}

std::string TermTable::str(TermId Id, const LocationTable &Locs) const {
  if (Id == InvalidTerm)
    return "<undef>";
  const Term &T = term(Id);
  switch (T.TheKind) {
  case Kind::Const: {
    double Value;
    std::memcpy(&Value, &T.Payload, sizeof(Value));
    return "const(" + std::to_string(Value) + ")";
  }
  case Kind::Initial:
    return "init(" + Locs.locName(T.Loc) + ")";
  case Kind::Trunc:
    return "trunc(" + str(T.Children[0], Locs) + ")";
  case Kind::Apply: {
    std::string Out = opcodeName(T.Op);
    Out += '(';
    for (unsigned I = 0; I != T.Children.size(); ++I) {
      if (I)
        Out += ", ";
      Out += str(T.Children[I], Locs);
    }
    Out += ')';
    return Out;
  }
  case Kind::Guarded:
    return "guard(" + str(T.Children[0], Locs) + ", " +
           str(T.Children[1], Locs) + ")";
  case Kind::Ambig: {
    std::string Out = "ambig(" + Locs.locName(T.Loc) +
                      ", def=" + std::to_string(T.Def) + ", may={";
    for (unsigned I = 0; I != T.MayWriters.size(); ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(T.MayWriters[I]);
    }
    Out += "})";
    return Out;
  }
  case Kind::Clobber:
    return "clobber#" + std::to_string(T.Payload);
  }
  slpUnreachable("invalid term kind");
}

//===----------------------------------------------------------------------===//
// WriteLog
//===----------------------------------------------------------------------===//

VersionToken WriteLog::tokenFor(LocId Loc, LocationTable &Locs) const {
  VersionToken Token;
  // Scan backwards to the most recent must-write; everything after it that
  // may alias contributes ambiguity.
  for (unsigned I = static_cast<unsigned>(Writes.size()); I != 0;) {
    --I;
    const Write &W = Writes[I];
    LocAlias A = Locs.alias(Loc, W.Loc);
    // A conditional (guarded) write may not happen at run time, so even a
    // must-aliasing one cannot serve as the defining write: it joins the
    // may-writer set and the scan continues to the unconditional write (or
    // the initial content) still visible underneath.
    if (A == LocAlias::Must && !W.Conditional) {
      Token.Def = W.Stmt;
      break;
    }
    if (A != LocAlias::None)
      Token.MayWriters.push_back(W.Stmt);
  }
  std::sort(Token.MayWriters.begin(), Token.MayWriters.end());
  Token.MayWriters.erase(
      std::unique(Token.MayWriters.begin(), Token.MayWriters.end()),
      Token.MayWriters.end());
  return Token;
}
