//===- analysis/VectorVerifier.cpp ----------------------------*- C++ -*-===//

#include "analysis/VectorVerifier.h"

#include "analysis/Dependence.h"
#include "analysis/LaneDataflow.h"

#include <algorithm>
#include <optional>

using namespace slp;

namespace {

/// One verification run: the reference symbolic execution of the kernel's
/// block followed by the abstract interpretation of the vector program.
class Verifier {
public:
  Verifier(const Kernel &K, const VectorProgram &P,
           const VectorVerifyOptions &Options)
      : K(K), P(P), Options(Options), Locs(K), Deps(K),
        NumStmts(K.Body.size()) {}

  VectorVerifyResult run();

private:
  // --- diagnostics -------------------------------------------------------
  void diag(const char *Code, DiagSeverity Severity, std::string Message,
            DiagLocation Loc = {});
  void error(const char *Code, std::string Message, DiagLocation Loc = {}) {
    diag(Code, DiagSeverity::Error, std::move(Message), Loc);
  }
  void lint(const char *Code, std::string Message, DiagLocation Loc = {}) {
    if (Options.Lint)
      diag(Code, DiagSeverity::Warning, std::move(Message), Loc);
  }

  // --- symbolic machinery ------------------------------------------------
  /// The term an immediate read of \p Loc observes under \p Log.
  TermId resolveRead(const WriteLog &Log, LocId Loc);
  /// Symbolic value of expression \p E with reads resolved through \p Log.
  TermId buildExprTerm(const Expr &E, const WriteLog &Log);
  /// Runs the scalar reference: statement order, recording RefTerm/LhsLoc.
  void runReference();

  // --- vector abstract interpretation ------------------------------------
  void computeLastUses();
  const std::vector<TermId> *useReg(unsigned Reg, unsigned Inst);
  void defReg(unsigned Reg, std::vector<TermId> Lanes, unsigned Inst);
  void execLoadPack(const VInst &I, unsigned Inst);
  void execStorePack(const VInst &I, unsigned Inst);
  void execMaskedLoadPack(const VInst &I, unsigned Inst);
  void execMaskedStorePack(const VInst &I, unsigned Inst);
  void execBlend(const VInst &I, unsigned Inst);
  void execShuffle(const VInst &I, unsigned Inst);
  void execVectorOp(const VInst &I, unsigned Inst);
  void execScalarExec(const VInst &I, unsigned Inst);
  /// Marks statement \p Stmt as executed by instruction \p Inst and logs
  /// its write.
  void commitStatement(unsigned Stmt, unsigned Inst);
  void checkDependenceOrder();
  void lintDeadLanes();
  void lintScalarReload(const VInst &I, unsigned Inst);

  std::string describeTerm(TermId T) const { return Terms.str(T, Locs); }

  const Kernel &K;
  const VectorProgram &P;
  const VectorVerifyOptions &Options;
  LocationTable Locs;
  DependenceInfo Deps;
  TermTable Terms;
  unsigned NumStmts;

  VectorVerifyResult Result;
  bool SuppressionNoted = false;

  // Reference-execution products.
  std::vector<TermId> RefTerm; ///< untruncated RHS term per statement
  /// Guard term per statement (InvalidTerm for unguarded statements).
  std::vector<TermId> GuardTerm;
  /// Store obligation per statement: Guarded(guard, rhs) for predicated
  /// statements, the plain RHS term otherwise. This is what a store lane
  /// must prove it writes.
  std::vector<TermId> StoredTerm;
  std::vector<LocId> LhsLoc; ///< interned lhs location per statement

  // Vector-execution state.
  WriteLog VLog;
  std::vector<int> ExecInst; ///< instruction that executed stmt, -1 = none
  std::vector<std::optional<std::vector<TermId>>> Regs;
  std::vector<int> LastUse; ///< last instruction reading each vreg, -1 none
  /// Defining shuffle per vreg (src reg + perm) for the
  /// permutes-compose-to-identity lint; cleared on any other def.
  struct ShuffleDef {
    unsigned Src;
    std::vector<unsigned> Perm;
  };
  std::vector<std::optional<ShuffleDef>> ShuffleDefs;
  int NextSynthetic = -2; ///< writer ids for error recovery
};

void Verifier::diag(const char *Code, DiagSeverity Severity,
                    std::string Message, DiagLocation Loc) {
  if (Options.WarningsAsErrors && Severity == DiagSeverity::Warning)
    Severity = DiagSeverity::Error;
  if (Severity == DiagSeverity::Error)
    ++Result.Errors;
  else if (Severity == DiagSeverity::Warning)
    ++Result.Warnings;
  if (Result.Diags.size() >= Options.MaxDiagnostics) {
    if (!SuppressionNoted) {
      SuppressionNoted = true;
      Diagnostic Note;
      Note.Code = "VV00";
      Note.Severity = DiagSeverity::Note;
      Note.Message = "further diagnostics suppressed (limit " +
                     std::to_string(Options.MaxDiagnostics) +
                     " reached); severity counters remain exact";
      Result.Diags.push_back(std::move(Note));
    }
    return;
  }
  Diagnostic D;
  D.Code = Code;
  D.Severity = Severity;
  D.Message = std::move(Message);
  D.Loc = Loc;
  Result.Diags.push_back(std::move(D));
}

TermId Verifier::resolveRead(const WriteLog &Log, LocId Loc) {
  VersionToken Token = Log.tokenFor(Loc, Locs);
  if (Token.MayWriters.empty() && Token.Def == VersionToken::Initial)
    return Terms.makeInitial(Loc);
  if (Token.MayWriters.empty() && Token.Def >= 0) {
    TermId Value = RefTerm[Token.Def];
    // Integer-typed locations truncate on store, so a reload observes the
    // truncated value (ir/Interpreter storeToOperand semantics).
    return isFloatType(Locs.locType(Loc)) ? Value : Terms.makeTrunc(Value);
  }
  // Ambiguous (may-aliasing writes intervened) or synthetic writer from
  // error recovery: the token itself is the abstract value.
  return Terms.makeAmbig(Loc, Token);
}

TermId Verifier::buildExprTerm(const Expr &E, const WriteLog &Log) {
  if (E.isLeaf()) {
    const Operand &Op = E.leaf();
    if (Op.isConstant())
      return Terms.makeConst(Op.constantValue());
    return resolveRead(Log, Locs.intern(Op));
  }
  std::vector<TermId> Children;
  Children.reserve(E.numChildren());
  for (unsigned C = 0; C != E.numChildren(); ++C)
    Children.push_back(buildExprTerm(E.child(C), Log));
  return Terms.makeApply(E.opcode(), Children);
}

void Verifier::runReference() {
  RefTerm.resize(NumStmts, InvalidTerm);
  GuardTerm.resize(NumStmts, InvalidTerm);
  StoredTerm.resize(NumStmts, InvalidTerm);
  LhsLoc.resize(NumStmts, 0);
  WriteLog RLog;
  for (unsigned S = 0; S != NumStmts; ++S) {
    const Statement &Stmt = K.Body.statement(S);
    // If-converted semantics: the guard is evaluated first, the rhs always.
    if (Stmt.hasGuard())
      GuardTerm[S] = buildExprTerm(Stmt.guard(), RLog);
    RefTerm[S] = buildExprTerm(Stmt.rhs(), RLog);
    StoredTerm[S] = Stmt.hasGuard()
                        ? Terms.makeGuarded(GuardTerm[S], RefTerm[S])
                        : RefTerm[S];
    LhsLoc[S] = Locs.intern(Stmt.lhs());
    // A guarded statement's store is conditional: later reads see it only
    // as a may-writer (mirrored by the vector log in commitStatement).
    RLog.recordWrite(LhsLoc[S], static_cast<int>(S), Stmt.hasGuard());
  }
}

void Verifier::computeLastUses() {
  LastUse.assign(P.NumVRegs, -1);
  auto Use = [this](unsigned Reg, unsigned Inst) {
    if (Reg < LastUse.size())
      LastUse[Reg] = static_cast<int>(Inst);
  };
  for (unsigned I = 0; I != P.Insts.size(); ++I) {
    const VInst &Inst = P.Insts[I];
    switch (Inst.Kind) {
    case VInstKind::StorePack:
    case VInstKind::Shuffle:
      Use(Inst.Src0, I);
      break;
    case VInstKind::MaskedStorePack:
      Use(Inst.Src0, I);
      Use(Inst.Src1, I); // mask
      break;
    case VInstKind::MaskedLoadPack:
      Use(Inst.Src1, I); // mask
      break;
    case VInstKind::Blend:
      Use(Inst.Src0, I);
      Use(Inst.Src1, I);
      Use(Inst.Src2, I);
      break;
    case VInstKind::VectorOp:
      Use(Inst.Src0, I);
      if (!Inst.UnaryOp)
        Use(Inst.Src1, I);
      break;
    case VInstKind::LoadPack:
    case VInstKind::ScalarExec:
      break;
    }
  }
}

const std::vector<TermId> *Verifier::useReg(unsigned Reg, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(Reg);
  if (Reg >= Regs.size()) {
    error("VV10",
          "instruction reads vreg " + std::to_string(Reg) +
              " outside the program's register space (" +
              std::to_string(P.NumVRegs) + " vregs)",
          Loc);
    return nullptr;
  }
  if (!Regs[Reg]) {
    error("VV06",
          "vreg " + std::to_string(Reg) + " is read before any definition",
          Loc);
    return nullptr;
  }
  return &*Regs[Reg];
}

void Verifier::defReg(unsigned Reg, std::vector<TermId> Lanes,
                      unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(Reg);
  if (Reg >= Regs.size()) {
    error("VV10",
          "instruction defines vreg " + std::to_string(Reg) +
              " outside the program's register space (" +
              std::to_string(P.NumVRegs) + " vregs)",
          Loc);
    return;
  }
  if (Regs[Reg] && Reg < LastUse.size() &&
      LastUse[Reg] > static_cast<int>(Inst))
    error("VV11",
          "vreg " + std::to_string(Reg) +
              " is redefined while still live (next read at inst " +
              std::to_string(LastUse[Reg]) + ")",
          Loc);
  Regs[Reg] = std::move(Lanes);
  if (Reg < ShuffleDefs.size())
    ShuffleDefs[Reg].reset();
}

void Verifier::execLoadPack(const VInst &I, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(I.Dst);
  if (I.LaneOps.size() != I.Lanes) {
    error("VV07",
          "load pack declares " + std::to_string(I.Lanes) +
              " lane(s) but carries " + std::to_string(I.LaneOps.size()) +
              " operand(s)",
          Loc);
    defReg(I.Dst, std::vector<TermId>(I.Lanes, Terms.makeClobber()), Inst);
    return;
  }
  std::vector<TermId> Lanes;
  Lanes.reserve(I.LaneOps.size());
  for (const Operand &Op : I.LaneOps) {
    if (Op.isConstant())
      Lanes.push_back(Terms.makeConst(Op.constantValue()));
    else
      Lanes.push_back(resolveRead(VLog, Locs.intern(Op)));
  }
  if (I.Mode == PackMode::ContiguousUnaligned ||
      I.Mode == PackMode::PermutedContiguous)
    lint("VL03",
         "unaligned contiguous load pack; the data layout stage could "
         "replicate the array into an aligned copy",
         Loc);
  else if (I.Mode == PackMode::GatherScalar) {
    bool AllScalars = true;
    for (const Operand &Op : I.LaneOps)
      AllScalars &= Op.isScalar();
    if (AllScalars && I.LaneOps.size() > 1)
      lint("VL03",
           "element-wise gather of scalar variables; the data layout "
           "stage could place them contiguously",
           Loc);
  }
  defReg(I.Dst, std::move(Lanes), Inst);
}

void Verifier::execShuffle(const VInst &I, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(I.Dst);
  const std::vector<TermId> *Src = useReg(I.Src0, Inst);
  if (I.Perm.size() != I.Lanes)
    error("VV07",
          "shuffle declares " + std::to_string(I.Lanes) +
              " lane(s) but its permutation has " +
              std::to_string(I.Perm.size()) + " entr(ies)",
          Loc);
  std::vector<TermId> Lanes(I.Lanes, InvalidTerm);
  for (unsigned L = 0; L != I.Lanes; ++L) {
    unsigned From = L < I.Perm.size() ? I.Perm[L] : ~0u;
    if (!Src || From >= Src->size()) {
      if (Src && L < I.Perm.size()) {
        DiagLocation LaneLoc = Loc;
        LaneLoc.Lane = static_cast<int>(L);
        error("VV08",
              "shuffle lane selects source lane " + std::to_string(From) +
                  " of a " + std::to_string(Src->size()) +
                  "-lane register",
              LaneLoc);
      }
      Lanes[L] = Terms.makeClobber();
      continue;
    }
    Lanes[L] = (*Src)[From];
  }

  // Lint tier: identity permutes and adjacent permutes composing to the
  // identity are wasted work (the source register could be used as-is).
  if (Src && I.Perm.size() == I.Lanes && Src->size() == I.Lanes) {
    bool Identity = true;
    for (unsigned L = 0; L != I.Lanes; ++L)
      Identity &= I.Perm[L] == L;
    if (Identity)
      lint("VL02",
           "shuffle applies the identity permutation of vreg " +
               std::to_string(I.Src0),
           Loc);
    else if (I.Src0 < ShuffleDefs.size() && ShuffleDefs[I.Src0] &&
             ShuffleDefs[I.Src0]->Perm.size() == I.Lanes) {
      bool ComposesToId = true;
      for (unsigned L = 0; L != I.Lanes; ++L) {
        unsigned Through = ShuffleDefs[I.Src0]->Perm[I.Perm[L]];
        ComposesToId &= Through == L;
      }
      if (ComposesToId)
        lint("VL02",
             "shuffle composes with the shuffle defining vreg " +
                 std::to_string(I.Src0) +
                 " to the identity permutation of vreg " +
                 std::to_string(ShuffleDefs[I.Src0]->Src),
             Loc);
    }
  }

  defReg(I.Dst, std::move(Lanes), Inst);
  if (I.Dst < ShuffleDefs.size() && Src)
    ShuffleDefs[I.Dst] = ShuffleDef{I.Src0, I.Perm};
}

void Verifier::execVectorOp(const VInst &I, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(I.Dst);
  const std::vector<TermId> *A = useReg(I.Src0, Inst);
  const std::vector<TermId> *B = I.UnaryOp ? nullptr : useReg(I.Src1, Inst);
  if (A && A->size() != I.Lanes) {
    error("VV07",
          "vector op declares " + std::to_string(I.Lanes) +
              " lane(s) but vreg " + std::to_string(I.Src0) + " holds " +
              std::to_string(A->size()),
          Loc);
    A = nullptr;
  }
  if (!I.UnaryOp && B && B->size() != I.Lanes) {
    error("VV07",
          "vector op declares " + std::to_string(I.Lanes) +
              " lane(s) but vreg " + std::to_string(I.Src1) + " holds " +
              std::to_string(B->size()),
          Loc);
    B = nullptr;
  }
  std::vector<TermId> Lanes(I.Lanes, InvalidTerm);
  for (unsigned L = 0; L != I.Lanes; ++L) {
    if (!A || (!I.UnaryOp && !B)) {
      Lanes[L] = Terms.makeClobber();
      continue;
    }
    if (I.UnaryOp)
      Lanes[L] = Terms.makeApply(I.Op, {(*A)[L]});
    else
      Lanes[L] = Terms.makeApply(I.Op, {(*A)[L], (*B)[L]});
  }
  defReg(I.Dst, std::move(Lanes), Inst);
}

void Verifier::commitStatement(unsigned Stmt, unsigned Inst) {
  ExecInst[Stmt] = static_cast<int>(Inst);
  VLog.recordWrite(LhsLoc[Stmt], static_cast<int>(Stmt),
                   K.Body.statement(Stmt).hasGuard());
}

void Verifier::lintScalarReload(const VInst &I, unsigned Inst) {
  if (!Options.Lint)
    return;
  bool Reported = false;
  // Walk every use — guard leaves included — so a reload feeding only the
  // predicate is linted the same as one feeding the rhs.
  K.Body.statement(I.StmtId).forEachUse([&](const Operand &Op) {
    if (Reported || Op.isConstant())
      return;
    TermId Value = resolveRead(VLog, Locs.intern(Op));
    for (unsigned R = 0; R != Regs.size() && !Reported; ++R) {
      if (!Regs[R])
        continue;
      for (unsigned L = 0; L != Regs[R]->size(); ++L) {
        if ((*Regs[R])[L] != Value)
          continue;
        DiagLocation Loc;
        Loc.Inst = static_cast<int>(Inst);
        Loc.Stmt = static_cast<int>(I.StmtId);
        Loc.VReg = static_cast<int>(R);
        Loc.Lane = static_cast<int>(L);
        lint("VL04",
             "scalar execution reloads a value still live in a superword "
             "register",
             Loc);
        Reported = true;
        break;
      }
    }
  });
}

void Verifier::execScalarExec(const VInst &I, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.Stmt = static_cast<int>(I.StmtId);
  if (I.StmtId >= NumStmts) {
    error("VV10",
          "scalar-exec references statement " + std::to_string(I.StmtId) +
              " outside the block",
          Loc);
    return;
  }
  ++Result.ScalarStmtsChecked;
  if (ExecInst[I.StmtId] != -1) {
    error("VV02",
          "statement " + std::to_string(I.StmtId) +
              " is executed more than once (previously by inst " +
              std::to_string(ExecInst[I.StmtId]) + ")",
          Loc);
    // Error recovery: the duplicate write gets a synthetic writer id so
    // downstream reads become ambiguous instead of silently matching.
    VLog.recordWrite(LhsLoc[I.StmtId], NextSynthetic--);
    return;
  }
  lintScalarReload(I, Inst);
  const Statement &Stmt = K.Body.statement(I.StmtId);
  if (Stmt.hasGuard()) {
    TermId Guard = buildExprTerm(Stmt.guard(), VLog);
    if (Guard != GuardTerm[I.StmtId])
      error("VV13",
            "scalar execution of guarded statement " +
                std::to_string(I.StmtId) + " evaluates predicate " +
                describeTerm(Guard) + " but the statement's guard is " +
                describeTerm(GuardTerm[I.StmtId]),
            Loc);
  }
  TermId Value = buildExprTerm(Stmt.rhs(), VLog);
  if (Value != RefTerm[I.StmtId])
    error("VV04",
          "scalar execution of statement " + std::to_string(I.StmtId) +
              " computes " + describeTerm(Value) +
              " but the kernel's statement computes " +
              describeTerm(RefTerm[I.StmtId]),
          Loc);
  // Continue with the intended value: the mismatch is already diagnosed.
  commitStatement(I.StmtId, Inst);
}

void Verifier::execStorePack(const VInst &I, unsigned Inst) {
  DiagLocation InstLoc;
  InstLoc.Inst = static_cast<int>(Inst);
  const std::vector<TermId> *Src = useReg(I.Src0, Inst);
  if (I.LaneOps.size() != I.Lanes)
    error("VV07",
          "store pack declares " + std::to_string(I.Lanes) +
              " lane(s) but carries " + std::to_string(I.LaneOps.size()) +
              " operand(s)",
          InstLoc);
  if (Src && Src->size() != I.Lanes) {
    error("VV07",
          "store pack declares " + std::to_string(I.Lanes) +
              " lane(s) but vreg " + std::to_string(I.Src0) + " holds " +
              std::to_string(Src->size()),
          InstLoc);
    Src = nullptr;
  }
  if (I.Mode == PackMode::ContiguousUnaligned ||
      I.Mode == PackMode::PermutedContiguous)
    lint("VL03",
         "unaligned contiguous store pack; the data layout stage could "
         "replicate the array into an aligned copy",
         InstLoc);

  std::vector<int> Matched(I.LaneOps.size(), -1);
  for (unsigned L = 0; L != I.LaneOps.size(); ++L) {
    DiagLocation Loc = InstLoc;
    Loc.Lane = static_cast<int>(L);
    const Operand &Op = I.LaneOps[L];
    if (Op.isConstant()) {
      error("VV10", "store lane targets a constant operand", Loc);
      continue;
    }
    ++Result.StoreLanesChecked;
    LocId Target = Locs.intern(Op);
    TermId Value = Src && L < Src->size() ? (*Src)[L] : Terms.makeClobber();

    // Match the lane to a block statement: same target location, same
    // (untruncated) store obligation, not yet executed. Matching against
    // StoredTerm (not RefTerm) means a guarded statement — whose
    // obligation is Guarded(guard, rhs) — can never be discharged by an
    // unconditional store lane. The code generator's claimed statement
    // ids serve as a hint; the earliest unexecuted candidate is the
    // fallback, so hand-built programs verify too.
    auto Matches = [&](unsigned S) {
      return ExecInst[S] == -1 && LhsLoc[S] == Target &&
             StoredTerm[S] == Value;
    };
    int Match = -1;
    if (I.StmtIds.size() == I.LaneOps.size() && I.StmtIds[L] < NumStmts &&
        Matches(I.StmtIds[L]))
      Match = static_cast<int>(I.StmtIds[L]);
    for (unsigned S = 0; Match < 0 && S != NumStmts; ++S)
      if (Matches(S))
        Match = static_cast<int>(S);

    if (Match < 0) {
      // Distinguish the failure shape for the diagnostic.
      int PendingSameLoc = -1, ExecutedSameLoc = -1, GuardedValueMatch = -1;
      for (unsigned S = 0; S != NumStmts; ++S) {
        if (LhsLoc[S] != Target)
          continue;
        if (ExecInst[S] == -1 && PendingSameLoc < 0)
          PendingSameLoc = static_cast<int>(S);
        if (ExecInst[S] == -1 && GuardedValueMatch < 0 &&
            K.Body.statement(S).hasGuard() && RefTerm[S] == Value)
          GuardedValueMatch = static_cast<int>(S);
        if (ExecInst[S] != -1 && ExecutedSameLoc < 0)
          ExecutedSameLoc = static_cast<int>(S);
      }
      if (GuardedValueMatch >= 0) {
        Loc.Stmt = GuardedValueMatch;
        error("VV13",
              "store lane writes " + Locs.locName(Target) +
                  " unconditionally, but statement " +
                  std::to_string(GuardedValueMatch) +
                  " is guarded by " + describeTerm(GuardTerm[GuardedValueMatch]) +
                  " and must store through a matching mask",
              Loc);
      } else if (PendingSameLoc >= 0) {
        Loc.Stmt = PendingSameLoc;
        error("VV04",
              "store lane writes " + describeTerm(Value) + " to " +
                  Locs.locName(Target) + " but statement " +
                  std::to_string(PendingSameLoc) + " would store " +
                  describeTerm(StoredTerm[PendingSameLoc]),
              Loc);
      } else if (ExecutedSameLoc >= 0) {
        Loc.Stmt = ExecutedSameLoc;
        error("VV02",
              "store lane rewrites " + Locs.locName(Target) +
                  ", already written for statement " +
                  std::to_string(ExecutedSameLoc),
              Loc);
      } else {
        error("VV03",
              "store lane writes " + Locs.locName(Target) +
                  ", which no block statement writes",
              Loc);
      }
      VLog.recordWrite(Target, NextSynthetic--);
      continue;
    }
    Matched[L] = Match;
    commitStatement(static_cast<unsigned>(Match), Inst);
  }

  // Lanes of one store pack write simultaneously: the matched statements
  // must be pairwise independent (paper Section 4.1, constraint 1).
  for (unsigned A = 0; A != Matched.size(); ++A)
    for (unsigned B = A + 1; B != Matched.size(); ++B) {
      if (Matched[A] < 0 || Matched[B] < 0 || Matched[A] == Matched[B])
        continue;
      if (!Deps.independent(static_cast<unsigned>(Matched[A]),
                            static_cast<unsigned>(Matched[B]))) {
        DiagLocation Loc = InstLoc;
        Loc.Lane = static_cast<int>(B);
        error("VV09",
              "store pack packs dependent statements " +
                  std::to_string(Matched[A]) + " and " +
                  std::to_string(Matched[B]) + " into one superword",
              Loc);
      }
    }
}

void Verifier::execMaskedLoadPack(const VInst &I, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(I.Dst);
  const std::vector<TermId> *Mask = useReg(I.Src1, Inst);
  if (Mask && Mask->size() != I.Lanes) {
    error("VV12",
          "masked load declares " + std::to_string(I.Lanes) +
              " lane(s) but its mask vreg " + std::to_string(I.Src1) +
              " holds " + std::to_string(Mask->size()),
          Loc);
    Mask = nullptr;
  }
  if (I.LaneOps.size() != I.Lanes) {
    error("VV07",
          "masked load pack declares " + std::to_string(I.Lanes) +
              " lane(s) but carries " + std::to_string(I.LaneOps.size()) +
              " operand(s)",
          Loc);
    defReg(I.Dst, std::vector<TermId>(I.Lanes, Terms.makeClobber()), Inst);
    return;
  }
  // Lane semantics: mask != 0 ? memory : 0.0. The lane term is the Select
  // over the mask lane — execMaskedStorePack strips it back off when the
  // value flows to a store under the same mask.
  TermId Zero = Terms.makeConst(0.0);
  std::vector<TermId> Lanes;
  Lanes.reserve(I.LaneOps.size());
  for (unsigned L = 0; L != I.LaneOps.size(); ++L) {
    const Operand &Op = I.LaneOps[L];
    TermId Mem = Op.isConstant() ? Terms.makeConst(Op.constantValue())
                                 : resolveRead(VLog, Locs.intern(Op));
    TermId MaskLane = Mask ? (*Mask)[L] : Terms.makeClobber();
    Lanes.push_back(Terms.makeApply(OpCode::Select, {MaskLane, Mem, Zero}));
  }
  if (I.Mode == PackMode::ContiguousUnaligned ||
      I.Mode == PackMode::PermutedContiguous)
    lint("VL03",
         "unaligned contiguous load pack; the data layout stage could "
         "replicate the array into an aligned copy",
         Loc);
  defReg(I.Dst, std::move(Lanes), Inst);
}

void Verifier::execBlend(const VInst &I, unsigned Inst) {
  DiagLocation Loc;
  Loc.Inst = static_cast<int>(Inst);
  Loc.VReg = static_cast<int>(I.Dst);
  const std::vector<TermId> *C = useReg(I.Src0, Inst);
  const std::vector<TermId> *A = useReg(I.Src1, Inst);
  const std::vector<TermId> *B = useReg(I.Src2, Inst);
  auto CheckWidth = [&](const std::vector<TermId> *&Reg, unsigned Num) {
    if (Reg && Reg->size() != I.Lanes) {
      error("VV07",
            "blend declares " + std::to_string(I.Lanes) +
                " lane(s) but vreg " + std::to_string(Num) + " holds " +
                std::to_string(Reg->size()),
            Loc);
      Reg = nullptr;
    }
  };
  CheckWidth(C, I.Src0);
  CheckWidth(A, I.Src1);
  CheckWidth(B, I.Src2);
  std::vector<TermId> Lanes(I.Lanes, InvalidTerm);
  for (unsigned L = 0; L != I.Lanes; ++L) {
    if (!C || !A || !B) {
      Lanes[L] = Terms.makeClobber();
      continue;
    }
    Lanes[L] =
        Terms.makeApply(OpCode::Select, {(*C)[L], (*A)[L], (*B)[L]});
  }
  defReg(I.Dst, std::move(Lanes), Inst);
}

void Verifier::execMaskedStorePack(const VInst &I, unsigned Inst) {
  DiagLocation InstLoc;
  InstLoc.Inst = static_cast<int>(Inst);
  const std::vector<TermId> *Src = useReg(I.Src0, Inst);
  const std::vector<TermId> *Mask = useReg(I.Src1, Inst);
  if (I.LaneOps.size() != I.Lanes)
    error("VV07",
          "masked store pack declares " + std::to_string(I.Lanes) +
              " lane(s) but carries " + std::to_string(I.LaneOps.size()) +
              " operand(s)",
          InstLoc);
  if (Src && Src->size() != I.Lanes) {
    error("VV07",
          "masked store pack declares " + std::to_string(I.Lanes) +
              " lane(s) but vreg " + std::to_string(I.Src0) + " holds " +
              std::to_string(Src->size()),
          InstLoc);
    Src = nullptr;
  }
  if (Mask && Mask->size() != I.Lanes) {
    error("VV12",
          "masked store declares " + std::to_string(I.Lanes) +
              " lane(s) but its mask vreg " + std::to_string(I.Src1) +
              " holds " + std::to_string(Mask->size()),
          InstLoc);
    Mask = nullptr;
  }
  if (I.Mode == PackMode::ContiguousUnaligned ||
      I.Mode == PackMode::PermutedContiguous)
    lint("VL03",
         "unaligned contiguous store pack; the data layout stage could "
         "replicate the array into an aligned copy",
         InstLoc);

  std::vector<int> Matched(I.LaneOps.size(), -1);
  for (unsigned L = 0; L != I.LaneOps.size(); ++L) {
    DiagLocation Loc = InstLoc;
    Loc.Lane = static_cast<int>(L);
    const Operand &Op = I.LaneOps[L];
    if (Op.isConstant()) {
      error("VV10", "masked store lane targets a constant operand", Loc);
      continue;
    }
    ++Result.StoreLanesChecked;
    LocId Target = Locs.intern(Op);
    TermId Value = Src && L < Src->size() ? (*Src)[L] : Terms.makeClobber();
    TermId MaskLane =
        Mask && L < Mask->size() ? (*Mask)[L] : Terms.makeClobber();

    // The lane discharges a guarded statement whose guard term equals the
    // mask lane and whose rhs term equals the stored value. The stored
    // value may carry Select(mask, x, 0) wrappers introduced by masked
    // loads / blends under the SAME mask: wherever the mask is non-zero —
    // the only lanes this store writes — Select(mask, x, y) equals x, so
    // each wrapper is peeled and the match retried.
    int Match = -1;
    TermId Cur = Value;
    for (;;) {
      TermId Obligation = Terms.makeGuarded(MaskLane, Cur);
      auto Matches = [&](unsigned S) {
        return ExecInst[S] == -1 && LhsLoc[S] == Target &&
               StoredTerm[S] == Obligation;
      };
      if (I.StmtIds.size() == I.LaneOps.size() && I.StmtIds[L] < NumStmts &&
          Matches(I.StmtIds[L]))
        Match = static_cast<int>(I.StmtIds[L]);
      for (unsigned S = 0; Match < 0 && S != NumStmts; ++S)
        if (Matches(S))
          Match = static_cast<int>(S);
      if (Match >= 0)
        break;
      const TermTable::Term &T = Terms.term(Cur);
      if (T.TheKind == TermTable::Kind::Apply && T.Op == OpCode::Select &&
          T.Children.size() == 3 && T.Children[0] == MaskLane)
        Cur = T.Children[1];
      else
        break;
    }

    if (Match < 0) {
      // Distinguish the failure shape for the diagnostic.
      int PendingSameLoc = -1, ExecutedSameLoc = -1;
      int UnguardedValueMatch = -1, WrongMask = -1;
      for (unsigned S = 0; S != NumStmts; ++S) {
        if (LhsLoc[S] != Target)
          continue;
        if (ExecInst[S] == -1) {
          if (PendingSameLoc < 0)
            PendingSameLoc = static_cast<int>(S);
          const Statement &Stmt = K.Body.statement(S);
          if (RefTerm[S] == Cur) {
            if (!Stmt.hasGuard() && UnguardedValueMatch < 0)
              UnguardedValueMatch = static_cast<int>(S);
            if (Stmt.hasGuard() && GuardTerm[S] != MaskLane && WrongMask < 0)
              WrongMask = static_cast<int>(S);
          }
        } else if (ExecutedSameLoc < 0) {
          ExecutedSameLoc = static_cast<int>(S);
        }
      }
      if (UnguardedValueMatch >= 0) {
        Loc.Stmt = UnguardedValueMatch;
        error("VV13",
              "masked store lane writes " + Locs.locName(Target) +
                  " under mask " + describeTerm(MaskLane) +
                  ", but statement " + std::to_string(UnguardedValueMatch) +
                  " has no guard and must store unconditionally",
              Loc);
      } else if (WrongMask >= 0) {
        Loc.Stmt = WrongMask;
        error("VV13",
              "masked store lane writes " + Locs.locName(Target) +
                  " under mask " + describeTerm(MaskLane) +
                  ", but statement " + std::to_string(WrongMask) +
                  " is guarded by " + describeTerm(GuardTerm[WrongMask]),
              Loc);
      } else if (PendingSameLoc >= 0) {
        Loc.Stmt = PendingSameLoc;
        error("VV04",
              "masked store lane writes " + describeTerm(Cur) + " to " +
                  Locs.locName(Target) + " but statement " +
                  std::to_string(PendingSameLoc) + " would store " +
                  describeTerm(StoredTerm[PendingSameLoc]),
              Loc);
      } else if (ExecutedSameLoc >= 0) {
        Loc.Stmt = ExecutedSameLoc;
        error("VV02",
              "masked store lane rewrites " + Locs.locName(Target) +
                  ", already written for statement " +
                  std::to_string(ExecutedSameLoc),
              Loc);
      } else {
        error("VV03",
              "masked store lane writes " + Locs.locName(Target) +
                  ", which no block statement writes",
              Loc);
      }
      VLog.recordWrite(Target, NextSynthetic--);
      continue;
    }
    Matched[L] = Match;
    commitStatement(static_cast<unsigned>(Match), Inst);
  }

  // Lanes of one masked store pack write simultaneously: the matched
  // statements must be pairwise independent, as for unmasked packs.
  for (unsigned A = 0; A != Matched.size(); ++A)
    for (unsigned B = A + 1; B != Matched.size(); ++B) {
      if (Matched[A] < 0 || Matched[B] < 0 || Matched[A] == Matched[B])
        continue;
      if (!Deps.independent(static_cast<unsigned>(Matched[A]),
                            static_cast<unsigned>(Matched[B]))) {
        DiagLocation Loc = InstLoc;
        Loc.Lane = static_cast<int>(B);
        error("VV09",
              "masked store pack packs dependent statements " +
                  std::to_string(Matched[A]) + " and " +
                  std::to_string(Matched[B]) + " into one superword",
              Loc);
      }
    }
}

void Verifier::checkDependenceOrder() {
  for (const Dep &D : Deps.dependences()) {
    int A = ExecInst[D.Src], B = ExecInst[D.Dst];
    if (A < 0 || B < 0 || A == B)
      continue; // missing statements / same-pack pairs reported elsewhere
    if (A > B) {
      DiagLocation Loc;
      Loc.Inst = A;
      error("VV05",
            "dependence " + std::to_string(D.Src) + " -> " +
                std::to_string(D.Dst) +
                " is violated by the write order (inst " +
                std::to_string(A) + " after inst " + std::to_string(B) +
                ")",
            Loc);
    }
  }
}

void Verifier::lintDeadLanes() {
  if (!Options.Lint)
    return;
  // Backward lane liveness seeded by store packs; a materialized load lane
  // that never reaches any store did useless memory work.
  std::vector<std::vector<bool>> Live(P.NumVRegs);
  auto MarkLive = [&](unsigned Reg, unsigned Lane) {
    if (Reg >= Live.size())
      return;
    if (Live[Reg].size() <= Lane)
      Live[Reg].resize(Lane + 1, false);
    Live[Reg][Lane] = true;
  };
  auto IsLive = [&](unsigned Reg, unsigned Lane) {
    return Reg < Live.size() && Lane < Live[Reg].size() && Live[Reg][Lane];
  };
  for (unsigned Idx = static_cast<unsigned>(P.Insts.size()); Idx != 0;) {
    --Idx;
    const VInst &I = P.Insts[Idx];
    switch (I.Kind) {
    case VInstKind::StorePack:
      for (unsigned L = 0; L != I.Lanes; ++L)
        MarkLive(I.Src0, L);
      break;
    case VInstKind::MaskedStorePack:
      for (unsigned L = 0; L != I.Lanes; ++L) {
        MarkLive(I.Src0, L);
        MarkLive(I.Src1, L); // the mask decides the lane's fate
      }
      break;
    case VInstKind::Blend: {
      std::vector<bool> Out =
          I.Dst < Live.size() ? Live[I.Dst] : std::vector<bool>();
      if (I.Dst < Live.size())
        Live[I.Dst].clear();
      for (unsigned L = 0; L != Out.size(); ++L) {
        if (!Out[L])
          continue;
        MarkLive(I.Src0, L);
        MarkLive(I.Src1, L);
        MarkLive(I.Src2, L);
      }
      break;
    }
    case VInstKind::VectorOp: {
      std::vector<bool> Out =
          I.Dst < Live.size() ? Live[I.Dst] : std::vector<bool>();
      if (I.Dst < Live.size())
        Live[I.Dst].clear();
      for (unsigned L = 0; L != Out.size(); ++L) {
        if (!Out[L])
          continue;
        MarkLive(I.Src0, L);
        if (!I.UnaryOp)
          MarkLive(I.Src1, L);
      }
      break;
    }
    case VInstKind::Shuffle: {
      std::vector<bool> Out =
          I.Dst < Live.size() ? Live[I.Dst] : std::vector<bool>();
      if (I.Dst < Live.size())
        Live[I.Dst].clear();
      for (unsigned L = 0; L != Out.size() && L < I.Perm.size(); ++L)
        if (Out[L])
          MarkLive(I.Src0, I.Perm[L]);
      break;
    }
    case VInstKind::MaskedLoadPack:
    case VInstKind::LoadPack: {
      for (unsigned L = 0; L != I.Lanes; ++L) {
        if (IsLive(I.Dst, L)) {
          if (I.Kind == VInstKind::MaskedLoadPack)
            MarkLive(I.Src1, L); // live lane keeps its mask lane live
          continue;
        }
        DiagLocation Loc;
        Loc.Inst = static_cast<int>(Idx);
        Loc.VReg = static_cast<int>(I.Dst);
        Loc.Lane = static_cast<int>(L);
        lint("VL01",
             "pack lane is loaded but never reaches a store (dead lane)",
             Loc);
      }
      if (I.Dst < Live.size())
        Live[I.Dst].clear();
      break;
    }
    case VInstKind::ScalarExec:
      break;
    }
  }
}

VectorVerifyResult Verifier::run() {
  runReference();

  Regs.assign(P.NumVRegs, std::nullopt);
  ShuffleDefs.assign(P.NumVRegs, std::nullopt);
  ExecInst.assign(NumStmts, -1);
  computeLastUses();

  for (unsigned Idx = 0; Idx != P.Insts.size(); ++Idx) {
    const VInst &I = P.Insts[Idx];
    switch (I.Kind) {
    case VInstKind::LoadPack:
      execLoadPack(I, Idx);
      break;
    case VInstKind::StorePack:
      execStorePack(I, Idx);
      break;
    case VInstKind::MaskedLoadPack:
      execMaskedLoadPack(I, Idx);
      break;
    case VInstKind::MaskedStorePack:
      execMaskedStorePack(I, Idx);
      break;
    case VInstKind::Blend:
      execBlend(I, Idx);
      break;
    case VInstKind::Shuffle:
      execShuffle(I, Idx);
      break;
    case VInstKind::VectorOp:
      execVectorOp(I, Idx);
      break;
    case VInstKind::ScalarExec:
      execScalarExec(I, Idx);
      break;
    }
  }

  for (unsigned S = 0; S != NumStmts; ++S)
    if (ExecInst[S] == -1) {
      DiagLocation Loc;
      Loc.Stmt = static_cast<int>(S);
      error("VV01",
            "statement " + std::to_string(S) +
                " is never executed by the vector program",
            Loc);
    }

  checkDependenceOrder();
  lintDeadLanes();

  Result.TermsInterned = Terms.size();
  Result.LocationsTracked = Locs.size();
  return std::move(Result);
}

} // namespace

std::string VectorVerifyResult::firstError() const {
  for (const Diagnostic &D : Diags)
    if (D.Severity == DiagSeverity::Error)
      return D.render();
  return Errors ? "error diagnostics suppressed by the cap" : "";
}

VectorVerifyResult slp::verifyVectorProgram(const Kernel &Final,
                                            const VectorProgram &Program,
                                            const VectorVerifyOptions &Options) {
  Verifier V(Final, Program, Options);
  return V.run();
}
