//===- analysis/AlignmentPass.h - Pre-processing analyses as a pass -*- C++ -*-===//
///
/// \file
/// The analysis half of the pipeline's pre-processing: builds the
/// intra-block dependence information every later stage consumes and
/// reports the block's dependence density and alignment-relevant shape.
/// (The per-pack contiguity classification itself is demand-driven —
/// `classifyArrayPack` is called by the code generator and cost model on
/// the packs that actually form.)
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_ALIGNMENTPASS_H
#define SLP_ANALYSIS_ALIGNMENTPASS_H

#include "support/PassManager.h"

namespace slp {

class AlignmentPass : public KernelPass {
public:
  const char *name() const override { return "alignment"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_ANALYSIS_ALIGNMENTPASS_H
