//===- analysis/VectorVerifyPass.h - Translation validation pass -*- C++ -*-===//
///
/// \file
/// The pipeline's final stage: runs the static translation validator
/// (analysis/VectorVerifier.h) over the vector program the earlier stages
/// emitted, against the kernel it runs on (`State.Final`). Gated by
/// `PipelineOptions::VerifyVector`; diagnostics land in
/// `State.VerifyDiags` and surface as `verify.*` statistics, a remark on
/// failure, and `PipelineResult::VerifyDiags` for front ends
/// (`slpc --verify-vector`) and the fuzzer's third oracle.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_VECTORVERIFYPASS_H
#define SLP_ANALYSIS_VECTORVERIFYPASS_H

#include "support/PassManager.h"

namespace slp {

class VectorVerifyPass : public KernelPass {
public:
  const char *name() const override { return "verify-vector"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_ANALYSIS_VECTORVERIFYPASS_H
