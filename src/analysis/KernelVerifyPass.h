//===- analysis/KernelVerifyPass.h - Static kernel verification -*- C++ -*-===//
///
/// \file
/// The pipeline's first stage when enabled: runs the static bounds
/// verifier (analysis/KernelVerifier.h) over the *source* kernel, before
/// any transformation, so diagnostics point at the statements the user
/// wrote. Gated by `PipelineOptions::VerifyKernel`; diagnostics land in
/// `State.KernelDiags` and surface as `verify-kernel.*` statistics, a
/// remark on failure, and `PipelineResult::KernelDiags` for front ends
/// (`slpc --verify-kernel`) and the daemon's compile precheck.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_KERNELVERIFYPASS_H
#define SLP_ANALYSIS_KERNELVERIFYPASS_H

#include "support/PassManager.h"

namespace slp {

class KernelVerifyPass : public KernelPass {
public:
  const char *name() const override { return "verify-kernel"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_ANALYSIS_KERNELVERIFYPASS_H
