//===- analysis/KernelVerifyPass.cpp --------------------------*- C++ -*-===//

#include "analysis/KernelVerifyPass.h"

#include "analysis/KernelVerifier.h"
#include "slp/PipelineState.h"
#include "support/Diagnostic.h"

using namespace slp;

void KernelVerifyPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  S.KernelDiags.clear();
  S.KernelVerified = false;
  if (!S.Options.VerifyKernel)
    return;

  KernelVerifyOptions VO;
  VO.Lints = S.Options.VerifyLint;
  VO.WarningsAsErrors = S.Options.VerifyWerror;
  KernelVerifyResult R = verifyKernel(S.Source, VO);

  unsigned Errors = countDiagnostics(R.Diags, DiagSeverity::Error);
  unsigned Warnings = countDiagnostics(R.Diags, DiagSeverity::Warning);
  S.KernelDiags = std::move(R.Diags);
  S.KernelVerified = R.BoundsProven && Errors == 0;

  Ctx.Stats.add("verify-kernel.kernels");
  Ctx.Stats.add("verify-kernel.refs-checked", R.RefsChecked);
  if (Errors)
    Ctx.Stats.add("verify-kernel.errors", Errors);
  if (Warnings)
    Ctx.Stats.add("verify-kernel.warnings", Warnings);

  if (!S.KernelVerified)
    Ctx.Remarks.missed(name(),
                       "kernel failed static verification: " +
                           (S.KernelDiags.empty()
                                ? std::string("unknown")
                                : S.KernelDiags.front().render()));
}
