//===- analysis/Isomorphism.h - Statement isomorphism test ------*- C++ -*-===//
///
/// \file
/// Two statements are isomorphic when they contain the same operations in
/// the same order and the operands in corresponding positions have the same
/// data type (paper Section 2 / Section 4.1 constraint 3). Isomorphism is
/// the precondition for grouping statements into one superword statement.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_ISOMORPHISM_H
#define SLP_ANALYSIS_ISOMORPHISM_H

#include "ir/Kernel.h"

namespace slp {

/// Returns true when \p A and \p B may be executed as two lanes of one
/// SIMD instruction: equal expression shape/opcodes, equal leaf kinds, and
/// equal element types at every operand position (including the lhs).
bool areIsomorphic(const Kernel &K, const Statement &A, const Statement &B);

/// Element type of a statement's superword lane (the type of its lhs).
ScalarType statementElementType(const Kernel &K, const Statement &S);

} // namespace slp

#endif // SLP_ANALYSIS_ISOMORPHISM_H
