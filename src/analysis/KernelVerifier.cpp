//===- analysis/KernelVerifier.cpp ----------------------------*- C++ -*-===//

#include "analysis/KernelVerifier.h"

#include "ir/Interpreter.h"
#include "ir/Statement.h"

#include <cmath>
#include <sstream>

using namespace slp;

namespace {

/// Index value of loop \p D after \p T steps.
int64_t indexAt(const Loop &L, int64_t T) { return L.Lower + T * L.Step; }

/// Renders "i = 4" / "(i = 4, j = 0)" for an index assignment.
std::string renderPoint(const Kernel &K,
                        const std::vector<std::pair<unsigned, int64_t>> &P) {
  std::ostringstream OS;
  if (P.size() > 1)
    OS << "(";
  for (size_t I = 0; I != P.size(); ++I) {
    if (I)
      OS << ", ";
    OS << K.Loops[P[I].first].IndexName << " = " << P[I].second;
  }
  if (P.size() > 1)
    OS << ")";
  return OS.str();
}

/// Describes where a bounds violation happens. For a single active loop
/// index the violating iterations form a contiguous interval (the offset
/// is monotone in the index), reported exactly; with several active
/// indices the corner achieving the extreme offset is reported as a
/// witness.
std::string describeOffenders(const Kernel &K, const AffineExpr &Flat,
                              int64_t NumElements, bool LowSide) {
  std::vector<unsigned> Active;
  for (unsigned D = 0; D != Flat.numDims() && D < K.Loops.size(); ++D)
    if (Flat.coeff(D) != 0)
      Active.push_back(D);

  if (Active.empty())
    return "every iteration";

  if (Active.size() == 1) {
    unsigned D = Active.front();
    const Loop &L = K.Loops[D];
    int64_t Trip = L.tripCount();
    auto Offset = [&](int64_t T) {
      return Flat.coeff(D) * indexAt(L, T) + Flat.constant();
    };
    auto Violates = [&](int64_t T) {
      int64_t V = Offset(T);
      return LowSide ? V < 0 : V >= NumElements;
    };
    // The offset is monotone in T, so the violating set is a prefix or a
    // suffix; binary-search the boundary.
    bool FirstViolates = Violates(0);
    int64_t Lo = 0, Hi = Trip - 1;
    while (Lo < Hi) {
      int64_t Mid = Lo + (Hi - Lo) / 2;
      // Find the last T with the same verdict as T=0.
      if (Violates(Mid) == FirstViolates)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    int64_t Boundary = Violates(Lo) == FirstViolates ? Trip : Lo;
    int64_t FromT = FirstViolates ? 0 : Boundary;
    int64_t ToT = FirstViolates ? Boundary - 1 : Trip - 1;
    std::ostringstream OS;
    OS << "offending iterations: " << L.IndexName << " in ["
       << indexAt(L, FromT) << ", " << indexAt(L, ToT) << "]";
    return OS.str();
  }

  // Multi-index excursion: name the extreme corner as a witness.
  std::vector<std::pair<unsigned, int64_t>> Corner;
  int64_t Offset = Flat.constant();
  for (unsigned D : Active) {
    const Loop &L = K.Loops[D];
    int64_t LoIdx = L.Lower;
    int64_t HiIdx = indexAt(L, L.tripCount() - 1);
    bool TakeHi = (Flat.coeff(D) > 0) != LowSide;
    int64_t Idx = TakeHi ? HiIdx : LoIdx;
    Corner.emplace_back(D, Idx);
    Offset += Flat.coeff(D) * Idx;
  }
  std::ostringstream OS;
  OS << "e.g. at " << renderPoint(K, Corner) << ", offset " << Offset;
  return OS.str();
}

class KernelVerifier {
public:
  KernelVerifier(const Kernel &K, const KernelVerifyOptions &Options)
      : K(K), Options(Options) {
    Engine.setWarningsAsErrors(Options.WarningsAsErrors);
  }

  KernelVerifyResult run() {
    bool ZeroTrip = false;
    for (const Loop &L : K.Loops)
      ZeroTrip |= L.tripCount() == 0;

    if (ZeroTrip) {
      if (Options.Lints)
        Engine.report("SK14", DiagSeverity::Warning,
                      "loop nest never executes (zero trip count); array "
                      "references are unreachable");
    } else {
      for (unsigned I = 0; I != K.Body.size(); ++I)
        checkStatementBounds(I);
    }

    if (Options.Lints)
      runLints();

    KernelVerifyResult R;
    R.BoundsProven = BoundsProven;
    R.RefsChecked = RefsChecked;
    R.Diags = Engine.take();
    return R;
  }

private:
  void checkStatementBounds(unsigned StmtId) {
    const Statement &S = K.Body.statement(StmtId);
    if (S.lhs().isArray()) {
      const char *Code = S.hasGuard() ? "SK03" : "SK02";
      const char *What = S.hasGuard() ? "guarded store to" : "store to";
      checkRef(StmtId, S.lhs(), Code, What);
    }
    S.forEachUse([&](const Operand &Op) {
      if (Op.isArray())
        checkRef(StmtId, Op, "SK01", "load from");
    });
  }

  void checkRef(unsigned StmtId, const Operand &Op, const char *Code,
                const char *What) {
    ++RefsChecked;
    const ArraySymbol &A = K.array(Op.symbol());
    if (Op.subscripts().size() != A.DimSizes.size()) {
      error("SK05", StmtId,
            "reference to '" + A.Name + "' has " +
                std::to_string(Op.subscripts().size()) +
                " subscripts, array has rank " +
                std::to_string(A.DimSizes.size()));
      return;
    }
    for (const AffineExpr &Sub : Op.subscripts())
      if (Sub.numDims() > K.Loops.size()) {
        error("SK04", StmtId,
              "subscript of '" + A.Name +
                  "' references a loop depth outside the nest");
        return;
      }
    AffineExpr Flat = flattenArrayRef(A, Op.subscripts());
    OffsetInterval Range = affineRangeOverDomain(K, Flat);
    if (!Range.Known) {
      error("SK04", StmtId,
            "cannot bound " + std::string(What) + " '" + A.Name +
                "': offset fold overflows 64-bit arithmetic");
      return;
    }
    int64_t N = A.numElements();
    if (Range.Lo >= 0 && Range.Hi < N)
      return; // proven in bounds
    bool LowSide = Range.Lo < 0;
    std::ostringstream OS;
    OS << "out-of-bounds " << What << " '" << A.Name << "': offset range ["
       << Range.Lo << ", " << Range.Hi << "] outside [0, " << N << ") ("
       << describeOffenders(K, Flat, N, LowSide) << ")";
    error(Code, StmtId, OS.str());
  }

  void runLints() {
    lintUnusedScalars();
    lintDeadScalarStores();
    lintConstantGuards();
  }

  void lintUnusedScalars() {
    std::vector<bool> Referenced(K.Scalars.size(), false);
    for (const Statement &S : K.Body) {
      if (S.lhs().isScalar())
        Referenced[S.lhs().symbol()] = true;
      S.forEachUse([&](const Operand &Op) {
        if (Op.isScalar())
          Referenced[Op.symbol()] = true;
      });
    }
    for (SymbolId Id = 0; Id != K.Scalars.size(); ++Id)
      if (!Referenced[Id])
        Engine.report("SK11", DiagSeverity::Warning,
                      "scalar '" + K.Scalars[Id].Name +
                          "' is never referenced");
  }

  /// A scalar store is dead when a later statement of the same iteration
  /// overwrites the scalar unconditionally and nothing in between (or
  /// the overwriting statement itself) reads it. Scalars persist across
  /// iterations, so a store that survives to the end of the block is
  /// always observable (by the next iteration or the kernel's consumer)
  /// and never flagged.
  void lintDeadScalarStores() {
    const unsigned N = K.Body.size();
    for (unsigned I = 0; I != N; ++I) {
      const Statement &SI = K.Body.statement(I);
      if (!SI.lhs().isScalar())
        continue;
      SymbolId Id = SI.lhs().symbol();
      for (unsigned J = I + 1; J != N; ++J) {
        const Statement &SJ = K.Body.statement(J);
        bool Reads = false;
        SJ.forEachUse([&](const Operand &Op) {
          Reads |= Op.isScalar() && Op.symbol() == Id;
        });
        if (Reads)
          break;
        if (SJ.lhs().isScalar() && SJ.lhs().symbol() == Id) {
          if (SJ.hasGuard())
            break; // overwrite may not happen; the store stays live
          Engine
              .report("SK10", DiagSeverity::Warning,
                      "dead store to scalar '" + K.Scalars[Id].Name +
                          "': overwritten by statement " +
                          std::to_string(J) + " with no intervening read")
              .Loc.Stmt = static_cast<int>(I);
          break;
        }
      }
    }
  }

  void lintConstantGuards() {
    ValueRangeInfo Ranges = computeValueRanges(K);
    for (unsigned I = 0; I != K.Body.size(); ++I) {
      const Statement &S = K.Body.statement(I);
      if (!S.hasGuard())
        continue;
      GuardVerdict V =
          classifyGuardByRange(K, S.guard(), Ranges.ScalarIn[I]);
      if (V == GuardVerdict::AlwaysTaken)
        Engine
            .report("SK12", DiagSeverity::Warning,
                    "guard is provably always taken (value range " +
                        Ranges.Stmts[I].Guard.str() + ")")
            .Loc.Stmt = static_cast<int>(I);
      else if (V == GuardVerdict::NeverTaken)
        Engine
            .report("SK13", DiagSeverity::Warning,
                    "guard is provably never taken; the store is dead")
            .Loc.Stmt = static_cast<int>(I);
    }
  }

  void error(const char *Code, unsigned StmtId, const std::string &Msg) {
    BoundsProven = false;
    Engine.report(Code, DiagSeverity::Error, Msg).Loc.Stmt =
        static_cast<int>(StmtId);
  }

  const Kernel &K;
  const KernelVerifyOptions &Options;
  DiagnosticEngine Engine;
  bool BoundsProven = true;
  unsigned RefsChecked = 0;
};

} // namespace

KernelVerifyResult slp::verifyKernel(const Kernel &K,
                                     const KernelVerifyOptions &Options) {
  return KernelVerifier(K, Options).run();
}

namespace {

/// The interpreter's store conversion (ir/Interpreter.cpp): int-typed
/// locations truncate toward zero.
double storeConvert(ScalarType Ty, double V) {
  return isFloatType(Ty) ? V : std::trunc(V);
}

} // namespace

std::optional<std::string> slp::checkRangeSoundness(const Kernel &K,
                                                    uint64_t Seed,
                                                    bool *Skipped) {
  if (Skipped)
    *Skipped = true;
  if (verifyKernel(K).hasErrors())
    return std::nullopt; // cannot execute an out-of-bounds kernel
  for (const Loop &L : K.Loops)
    if (L.tripCount() == 0)
      return std::nullopt; // the block never runs; nothing to observe
  if (Skipped)
    *Skipped = false;

  ValueRangeInfo Info = computeValueRanges(K);
  Environment Env(K, Seed);
  std::optional<std::string> Violation;

  auto Report = [&](unsigned Stmt, const std::string &What, double V,
                    const ValueInterval &Range) {
    if (Violation)
      return;
    std::ostringstream OS;
    OS << "range-soundness violation at statement " << Stmt << ": " << What
       << " value " << V << " outside predicted " << Range.str();
    Violation = OS.str();
  };

  forEachIteration(K, [&](const std::vector<int64_t> &Indices) {
    if (Violation)
      return;
    for (unsigned I = 0; I != K.Body.size(); ++I) {
      const Statement &S = K.Body.statement(I);

      // Scalar environment against the statement's entry state.
      for (SymbolId Id = 0; Id != K.Scalars.size(); ++Id)
        if (!Info.ScalarIn[I][Id].contains(Env.scalarValue(Id)))
          Report(I, "scalar '" + K.Scalars[Id].Name + "'",
                 Env.scalarValue(Id), Info.ScalarIn[I][Id]);

      // Array offsets against their exact affine ranges.
      auto CheckOffset = [&](const Operand &Op) {
        if (!Op.isArray())
          return;
        AffineExpr Flat =
            flattenArrayRef(K.array(Op.symbol()), Op.subscripts());
        OffsetInterval Range = affineRangeOverDomain(K, Flat);
        int64_t Offset = Flat.evaluate(Indices);
        if (Range.Known && !Range.contains(Offset) && !Violation) {
          std::ostringstream OS;
          OS << "range-soundness violation at statement " << I
             << ": offset " << Offset << " of '"
             << K.array(Op.symbol()).Name << "' outside predicted ["
             << Range.Lo << ", " << Range.Hi << "]";
          Violation = OS.str();
        }
      };
      CheckOffset(S.lhs());
      S.forEachUse(CheckOffset);

      // Guard, RHS and committed-store values; then execute the
      // statement with the interpreter's exact semantics.
      bool Taken = true;
      if (S.hasGuard()) {
        double G = evalExprValue(K, Env, S.guard(), Indices);
        if (!Info.Stmts[I].Guard.contains(G))
          Report(I, "guard", G, Info.Stmts[I].Guard);
        Taken = G != 0.0;
      }
      double Value = evalExprValue(K, Env, S.rhs(), Indices);
      if (!Info.Stmts[I].Rhs.contains(Value))
        Report(I, "rhs", Value, Info.Stmts[I].Rhs);
      if (Taken) {
        ScalarType DestTy = S.lhs().isScalar()
                                ? K.scalar(S.lhs().symbol()).Ty
                                : K.array(S.lhs().symbol()).Ty;
        double Stored = storeConvert(DestTy, Value);
        if (!Info.Stmts[I].Stored.contains(Stored))
          Report(I, "stored", Stored, Info.Stmts[I].Stored);
        storeToOperand(K, Env, S.lhs(), Value, Indices);
      }
      if (Violation)
        return;
    }
  });

  if (!Violation)
    for (SymbolId Id = 0; Id != K.Scalars.size(); ++Id)
      if (!Info.ScalarExit[Id].contains(Env.scalarValue(Id)))
        Report(K.Body.size(), "exit scalar '" + K.Scalars[Id].Name + "'",
               Env.scalarValue(Id), Info.ScalarExit[Id]);

  return Violation;
}
