//===- analysis/AlignmentPass.cpp -----------------------------*- C++ -*-===//

#include "analysis/AlignmentPass.h"

#include "analysis/Dependence.h"
#include "slp/PipelineState.h"

using namespace slp;

void AlignmentPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  S.ensurePreprocessed();
  S.Deps.emplace(S.Preprocessed, S.Options.RangeSharpenDeps);

  Ctx.Stats.set("alignment.dependence-edges", S.Deps->dependences().size());
  if (S.Deps->rangeDisprovedCount())
    Ctx.Stats.set("dep.range-disproved", S.Deps->rangeDisprovedCount());
  if (S.Deps->guardDisjointCount())
    Ctx.Stats.set("dep.guard-disjoint", S.Deps->guardDisjointCount());
  if (S.Preprocessed.Body.empty())
    Ctx.Remarks.note(name(), "empty block, nothing to analyze");
}
