//===- analysis/AlignmentPass.cpp -----------------------------*- C++ -*-===//

#include "analysis/AlignmentPass.h"

#include "analysis/Dependence.h"
#include "slp/PipelineState.h"

using namespace slp;

void AlignmentPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  S.ensurePreprocessed();
  S.Deps.emplace(S.Preprocessed);

  Ctx.Stats.set("alignment.dependence-edges", S.Deps->dependences().size());
  if (S.Preprocessed.Body.empty())
    Ctx.Remarks.note(name(), "empty block, nothing to analyze");
}
