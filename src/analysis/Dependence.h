//===- analysis/Dependence.h - Intra-block dependence analysis --*- C++ -*-===//
///
/// \file
/// Computes the data dependences between the statements of a kernel's basic
/// block *within one execution of the block* (one iteration of the loop
/// nest). These are the dependences that constrain SLP grouping and
/// scheduling (paper Section 4.1, constraints 1 and 2); loop-carried
/// dependences do not constrain reordering within the block and are ignored.
///
/// Array aliasing uses the affine difference of the flattened subscripts:
/// equal functions must alias, a nonzero constant difference cannot alias,
/// and the general case falls back to a GCD + Banerjee-bounds test over the
/// rectangular iteration domain (conservatively answering may-alias).
///
/// On top of that base tier, the constructor optionally runs a
/// *range-sharpened* tier (`SharpenWithRanges`, on by default in the
/// pipeline): an exact Diophantine feasibility test over the normalized
/// iteration space (`affineFeasibleZero`) that refutes may-alias answers
/// the GCD and Banerjee tests are too coarse for — non-unit loop steps
/// folded into the coefficients, and two-variable problems whose Bezout
/// line misses the iteration box. A second sharpening refutes *output*
/// dependences between stores predicated by provably disjoint guards.
/// Refutation counts are exposed as `rangeDisprovedCount()` /
/// `guardDisjointCount()` and surface as `dep.range-disproved` /
/// `dep.guard-disjoint` pipeline statistics.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_ANALYSIS_DEPENDENCE_H
#define SLP_ANALYSIS_DEPENDENCE_H

#include "ir/Kernel.h"

#include <vector>

namespace slp {

/// May the affine expression \p Diff evaluate to zero somewhere in the
/// rectangular iteration domain of \p K? Runs a GCD divisibility test and
/// Banerjee-style bounds over each loop's range; answers true (may be
/// zero) whenever neither test can refute feasibility. All internal
/// arithmetic is overflow-checked: any signed-64-bit overflow while
/// folding coefficients against loop bounds degrades the answer to the
/// conservative `true` instead of wrapping into a wrong refutation.
bool affineMayBeZero(const Kernel &K, const AffineExpr &Diff);

/// Exact feasibility of `Diff(i) == 0` over the iteration domain of \p K
/// for problems with at most two active dimensions. Each active index is
/// normalized to its trip space (i_d = Lower_d + Step_d * t_d with
/// t_d in [0, trip_d)), which folds non-unit steps into the coefficients;
/// one-variable problems reduce to a divisibility-plus-range check and
/// two-variable problems are solved with the extended Euclidean algorithm
/// in 128-bit intermediates. Strictly stronger than `affineMayBeZero`
/// where it applies; three or more active dimensions and any int64
/// overflow degrade to the conservative `true`.
bool affineFeasibleZero(const Kernel &K, const AffineExpr &Diff);

/// Classic dependence kinds between an earlier and a later statement.
enum class DepKind : uint8_t { Flow, Anti, Output };

/// A dependence edge from statement \p Src to statement \p Dst
/// (Src executes before Dst in the original order).
struct Dep {
  unsigned Src;
  unsigned Dst;
  DepKind Kind;
};

/// Whole-block dependence information.
class DependenceInfo {
public:
  /// Builds the dependence graph of \p K. When \p SharpenWithRanges is
  /// set, may-alias answers the base GCD/Banerjee tier cannot refute are
  /// retried with the exact `affineFeasibleZero` test, and output
  /// dependences between provably guard-disjoint stores are dropped.
  explicit DependenceInfo(const Kernel &K, bool SharpenWithRanges = true);

  unsigned numStatements() const { return N; }

  /// True when there is any dependence from \p Earlier to \p Later
  /// (requires Earlier < Later).
  bool depends(unsigned Earlier, unsigned Later) const {
    assert(Earlier < Later && Later < N && "bad statement pair");
    return Matrix[Earlier * N + Later];
  }

  /// True when \p P and \p Q are dependence-free in both directions, i.e.
  /// they may be placed in the same superword statement.
  bool independent(unsigned P, unsigned Q) const {
    if (P == Q)
      return false;
    if (P > Q)
      std::swap(P, Q);
    return !depends(P, Q);
  }

  /// All dependence edges, in (Src, Dst) lexicographic order.
  const std::vector<Dep> &dependences() const { return Edges; }

  /// May the two operands denote the same memory location in some single
  /// iteration of \p K's loop nest? Scalars alias by symbol identity;
  /// constants never alias.
  static bool mayAlias(const Kernel &K, const Operand &A, const Operand &B);

  /// Number of operand pairs where the base tier answered may-alias but
  /// the exact range test proved the subscripts never coincide.
  unsigned rangeDisprovedCount() const { return RangeDisproved; }

  /// Number of output dependences dropped because the two stores are
  /// predicated by provably disjoint guards.
  unsigned guardDisjointCount() const { return GuardDisjoint; }

private:
  /// `mayAlias` plus the range-sharpened tier (when enabled); bumps
  /// `RangeDisproved` on each sharpened refutation.
  bool aliasSharpened(const Kernel &K, const Operand &A, const Operand &B);

  unsigned N;
  bool Sharpen;
  unsigned RangeDisproved = 0;
  unsigned GuardDisjoint = 0;
  std::vector<char> Matrix; // row-major [earlier][later]
  std::vector<Dep> Edges;
};

} // namespace slp

#endif // SLP_ANALYSIS_DEPENDENCE_H
