//===- analysis/Alignment.cpp ---------------------------------*- C++ -*-===//

#include "analysis/Alignment.h"

#include "ir/Interpreter.h"

#include <algorithm>

using namespace slp;

bool slp::isAlignedRef(const Kernel &K, const Operand &Ref,
                       unsigned LaneCount) {
  assert(Ref.isArray() && "alignment is a property of array references");
  AffineExpr Flat =
      flattenArrayRef(K.array(Ref.symbol()), Ref.subscripts());
  int64_t N = static_cast<int64_t>(LaneCount);
  // A loop index at depth D takes the values Lower + k*Step, so the flat
  // address is aligned for every iteration iff the address at the first
  // iteration is aligned and every per-iteration increment preserves it.
  int64_t FirstIter = Flat.constant();
  for (unsigned D = 0, E = Flat.numDims(); D != E; ++D) {
    int64_t Coeff = Flat.coeff(D);
    if (Coeff == 0)
      continue;
    if (D >= K.Loops.size())
      return false; // unknown index: stay conservative
    FirstIter += Coeff * K.Loops[D].Lower;
    if ((Coeff * K.Loops[D].Step) % N != 0)
      return false;
  }
  return FirstIter % N == 0;
}

PackShape
slp::classifyArrayPack(const Kernel &K,
                       const std::vector<const Operand *> &Lanes) {
  assert(Lanes.size() >= 2 && "pack requires at least two lanes");

  bool AllConst = std::all_of(Lanes.begin(), Lanes.end(),
                              [](const Operand *O) { return O->isConstant(); });
  if (AllConst)
    return PackShape::AllConstant;

  // Any non-array lane (scalar variables, or a mix) cannot be a single
  // memory block unless the layout stage assigned addresses; the code
  // generator consults the layout plan for that case separately.
  for (const Operand *O : Lanes)
    if (!O->isArray())
      return PackShape::Gather;

  SymbolId Array = Lanes[0]->symbol();
  for (const Operand *O : Lanes)
    if (O->symbol() != Array)
      return PackShape::Gather;

  const ArraySymbol &Arr = K.array(Array);
  std::vector<AffineExpr> Flats;
  Flats.reserve(Lanes.size());
  for (const Operand *O : Lanes)
    Flats.push_back(flattenArrayRef(Arr, O->subscripts()));

  // In-order contiguity: each lane is exactly one element past the previous.
  bool InOrder = true;
  for (unsigned I = 1, E = static_cast<unsigned>(Flats.size()); I != E; ++I) {
    AffineExpr Diff = Flats[I] - Flats[I - 1];
    if (!Diff.isConstant() || Diff.constant() != 1) {
      InOrder = false;
      break;
    }
  }
  if (InOrder) {
    return isAlignedRef(K, *Lanes[0], static_cast<unsigned>(Lanes.size()))
               ? PackShape::ContiguousAligned
               : PackShape::ContiguousUnaligned;
  }

  // Permuted contiguity: the lane offsets relative to the minimum form a
  // permutation of {0 .. N-1} (all differences constant).
  std::vector<int64_t> Offsets;
  for (unsigned I = 0, E = static_cast<unsigned>(Flats.size()); I != E; ++I) {
    AffineExpr Diff = Flats[I] - Flats[0];
    if (!Diff.isConstant())
      return PackShape::Gather;
    Offsets.push_back(Diff.constant());
  }
  int64_t MinOff = *std::min_element(Offsets.begin(), Offsets.end());
  std::vector<bool> Seen(Lanes.size(), false);
  for (int64_t O : Offsets) {
    int64_t Rel = O - MinOff;
    if (Rel < 0 || Rel >= static_cast<int64_t>(Lanes.size()) ||
        Seen[static_cast<size_t>(Rel)])
      return PackShape::Gather;
    Seen[static_cast<size_t>(Rel)] = true;
  }
  return PackShape::PermutedContiguous;
}
