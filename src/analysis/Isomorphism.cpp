//===- analysis/Isomorphism.cpp -------------------------------*- C++ -*-===//

#include "analysis/Isomorphism.h"

using namespace slp;

ScalarType slp::statementElementType(const Kernel &K, const Statement &S) {
  return K.operandType(S.lhs());
}

bool slp::areIsomorphic(const Kernel &K, const Statement &A,
                        const Statement &B) {
  if (A.isomorphismSignature() != B.isomorphismSignature())
    return false;
  // Signatures agree, so the statements have identical tree shapes and the
  // operand position lists line up pairwise. Check element types.
  std::vector<const Operand *> APos = A.operandPositions();
  std::vector<const Operand *> BPos = B.operandPositions();
  assert(APos.size() == BPos.size() &&
         "equal signatures imply equal position counts");
  for (unsigned I = 0, E = static_cast<unsigned>(APos.size()); I != E; ++I) {
    const Operand &AO = *APos[I];
    const Operand &BO = *BPos[I];
    if (AO.isConstant())
      continue; // constants adapt to the lane type
    if (K.operandType(AO) != K.operandType(BO))
      return false;
  }
  return true;
}
