//===- native/NativeBackend.h - Host-compiled shared objects ----*- C++ -*-===//
///
/// \file
/// Turns the C emitted by native/CEmitter.h into callable machine code:
/// write the translation unit to a content-addressed cache, invoke the
/// host C compiler (gcc/clang/cc) to produce a shared object, `dlopen` it,
/// and resolve the `slp_native_entry` symbol. Everything is cached at two
/// levels so repeated lowerings of identical kernels are warm:
///
///  * an on-disk object cache keyed by FNV-1a of (emitted C + compiler
///    flags + compiler path) — `$SLP_NATIVE_CACHE_DIR` or a per-user
///    directory under the system temp dir; `<hash>.c` sits next to
///    `<hash>.so` for post-mortem inspection, and objects are built under
///    a temporary name then renamed so concurrent producers are safe;
///  * an in-process handle map, so one process never re-dlopens (or
///    re-hashes a compile of) the same object twice.
///
/// Every failure path (no host compiler, compile error, corrupt cached
/// object) reports through NativeCompileResult::Error and never throws or
/// aborts — the execution engine falls back to its tape. A cached `.so`
/// that fails to dlopen/dlsym is deleted and rebuilt once.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_NATIVE_NATIVEBACKEND_H
#define SLP_NATIVE_NATIVEBACKEND_H

#include <memory>
#include <string>

namespace slp {

/// A loaded shared object holding one emitted translation unit. Closes the
/// dlopen handle on destruction; hold it through shared_ptr so compiled
/// kernels can share one object.
class NativeObject {
public:
  /// The emitted entry: scalar slots + one base pointer per array symbol.
  using EntryFn = void (*)(double *, double *const *);

  NativeObject(void *Handle, EntryFn Entry, std::string ObjectPath)
      : Handle(Handle), Entry(Entry), ObjectPath(std::move(ObjectPath)) {}
  ~NativeObject();
  NativeObject(const NativeObject &) = delete;
  NativeObject &operator=(const NativeObject &) = delete;

  void run(double *Scalars, double *const *ArrayBases) const {
    Entry(Scalars, ArrayBases);
  }

  const std::string &objectPath() const { return ObjectPath; }

private:
  void *Handle = nullptr;
  EntryFn Entry = nullptr;
  std::string ObjectPath;
};

/// Outcome of one lowering. Exactly one of Object/Error is meaningful.
struct NativeCompileResult {
  std::shared_ptr<const NativeObject> Object;
  /// Served from the on-disk cache: no host-compiler invocation happened.
  bool CacheHit = false;
  /// Served from the in-process map: no dlopen either.
  bool MemoryHit = false;
  /// Why Object is null (empty on success).
  std::string Error;
};

/// The host C compiler the backend invokes: `$SLP_NATIVE_CC` when set
/// (re-read on every call, so tests can point it at a nonexistent binary),
/// otherwise the first of cc/gcc/clang found on PATH (memoized). Empty
/// when none is available.
std::string nativeHostCompiler();

/// True when a host compiler is available; otherwise fills \p Why with a
/// one-line explanation suitable for skip-log lines.
bool nativeBackendAvailable(std::string *Why = nullptr);

/// The object cache directory: `$SLP_NATIVE_CACHE_DIR` when set, else
/// `<system-temp>/slp-native-cache`. Created on demand by compileNativeTU.
std::string nativeCacheDir();

/// Compiles \p Source into a loaded shared object. \p ScalarBaseline
/// selects the baseline flag set (host auto-vectorization disabled so the
/// "scalar" side of measured speedups is honestly scalar); flags are part
/// of the cache key. `$SLP_NATIVE_CFLAGS` appends extra flags to either
/// set.
NativeCompileResult compileNativeTU(const std::string &Source,
                                    bool ScalarBaseline);

/// Drops the in-process handle map so tests can force disk-cache paths
/// (warm-hit and corruption recovery) deterministically.
void nativeClearMemoryCacheForTesting();

} // namespace slp

#endif // SLP_NATIVE_NATIVEBACKEND_H
