//===- native/CEmitter.h - Kernel/VectorProgram to portable C ---*- C++ -*-===//
///
/// \file
/// Lowers kernels and vector programs to portable C translation units that
/// the native backend (native/NativeBackend.h) hands to the host compiler.
/// Two entry points, one per engine path:
///
///  * `emitScalarKernelC` renders a kernel with original scalar semantics —
///    the honest baseline (its TU is compiled with auto-vectorization off).
///  * `emitVectorProgramC` renders an emitted VectorProgram using GCC/Clang
///    vector extensions: full-width packs become real vector loads/stores
///    and vector arithmetic, everything else (partial widths, compares,
///    min/max/sqrt/abs, shuffles, masked loads/stores, blends, gathers)
///    becomes constant-bound lane assignments the host compiler folds.
///
/// The emitted C is bit-identical to the interpreters by construction: all
/// values are doubles, `sqrt` lowers to `sqrt(fabs(x))`, integer-typed
/// stores truncate with `trunc`, comparisons produce 1.0/0.0, guards are
/// evaluated before (and independently of) the right-hand side, and masked
/// stores preserve prior memory on zero-mask lanes. Floating-point
/// contraction is disabled by the backend's flags, not here. Constants are
/// rendered as hexfloat literals so no value is perturbed by decimal
/// round-tripping. See docs/native-backend.md for the full contract.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_NATIVE_CEMITTER_H
#define SLP_NATIVE_CEMITTER_H

#include "ir/Kernel.h"
#include "vector/VectorIR.h"

#include <string>

namespace slp {

/// The exported symbol every emitted translation unit defines:
/// `void slp_native_entry(double *restrict s, double *const *restrict a)`
/// where `s` is the kernel's scalar slot array and `a[k]` the base pointer
/// of array symbol k.
inline constexpr const char *NativeEntrySymbol = "slp_native_entry";

/// Renders \p K as a C translation unit executing the kernel with scalar
/// semantics over its whole loop nest.
std::string emitScalarKernelC(const Kernel &K);

/// Renders \p Program (emitted over \p K, the pipeline's Final kernel) as
/// a C translation unit executing the program once per iteration of the
/// nest, with vector registers lowered to GCC/Clang vector extensions.
std::string emitVectorProgramC(const Kernel &K, const VectorProgram &Program);

} // namespace slp

#endif // SLP_NATIVE_CEMITTER_H
