//===- native/NativeBackend.cpp -------------------------------*- C++ -*-===//

#include "native/NativeBackend.h"

#include "native/CEmitter.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unistd.h>
#include <unordered_map>

#include <dlfcn.h>

using namespace slp;

namespace fs = std::filesystem;

NativeObject::~NativeObject() {
  if (Handle)
    dlclose(Handle);
}

namespace {

/// True when \p Path names an executable file.
bool isExecutable(const std::string &Path) {
  return !Path.empty() && ::access(Path.c_str(), X_OK) == 0 &&
         fs::is_regular_file(fs::path(Path));
}

/// Resolves \p Name against PATH; empty when not found.
std::string findOnPath(const std::string &Name) {
  if (Name.find('/') != std::string::npos)
    return isExecutable(Name) ? Name : std::string();
  const char *Path = std::getenv("PATH");
  if (!Path)
    return {};
  std::istringstream In(Path);
  std::string Dir;
  while (std::getline(In, Dir, ':')) {
    if (Dir.empty())
      continue;
    std::string Candidate = Dir + "/" + Name;
    if (isExecutable(Candidate))
      return Candidate;
  }
  return {};
}

/// The PATH-discovered default compiler (no $SLP_NATIVE_CC override),
/// memoized: PATH does not change under us, but the env override might.
const std::string &defaultCompiler() {
  static const std::string Found = [] {
    for (const char *Name : {"cc", "gcc", "clang"}) {
      std::string Resolved = findOnPath(Name);
      if (!Resolved.empty())
        return Resolved;
    }
    return std::string();
  }();
  return Found;
}

/// FNV-1a 64-bit over \p Data, continuing from \p H.
uint64_t fnv1a(const std::string &Data, uint64_t H) {
  for (unsigned char C : Data) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  return H;
}

std::string hex64(uint64_t H) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

/// The flag set for one TU kind. The scalar baseline disables the host
/// auto-vectorizers (clang accepts the GCC spellings as aliases) so the
/// measured scalar-vs-vector speedup is not diluted by the host compiler
/// vectorizing the baseline itself. -ffp-contract=off keeps a*b+c from
/// fusing into FMA (bit-identity with the interpreters); -fno-math-errno
/// lets sqrt/fabs/trunc/fmin/fmax inline to instructions.
std::string compileFlags(bool ScalarBaseline) {
  std::string Flags =
      "-O3 -fPIC -shared -std=gnu11 -ffp-contract=off -fno-math-errno";
  if (ScalarBaseline)
    Flags += " -fno-tree-vectorize -fno-tree-slp-vectorize";
  if (const char *Extra = std::getenv("SLP_NATIVE_CFLAGS"))
    if (*Extra) {
      Flags += ' ';
      Flags += Extra;
    }
  return Flags;
}

/// Suffix for temp files that is unique per producer, not just per
/// process: concurrent lowerings on different threads of one process must
/// never share a temp path, or a racing compiler run can tear the object
/// another thread is about to publish.
std::string uniqueTmpSuffix() {
  static std::atomic<uint64_t> Counter{0};
  return ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
}

/// Writes \p Data to \p Path atomically (temp + rename).
bool writeFileAtomic(const fs::path &Path, const std::string &Data) {
  fs::path Tmp = Path;
  Tmp += uniqueTmpSuffix();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out << Data;
    if (!Out.flush())
      return false;
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec)
    fs::remove(Tmp, Ec);
  return !Ec || fs::exists(Path);
}

/// First ~400 bytes of the compiler's captured output, for diagnostics.
std::string logExcerpt(const fs::path &LogPath) {
  std::ifstream In(LogPath, std::ios::binary);
  if (!In)
    return {};
  std::string Buf(400, '\0');
  In.read(Buf.data(), static_cast<std::streamsize>(Buf.size()));
  Buf.resize(static_cast<size_t>(In.gcount()));
  while (!Buf.empty() && (Buf.back() == '\n' || Buf.back() == '\0'))
    Buf.pop_back();
  return Buf;
}

/// dlopens \p SoPath and resolves the entry; null + \p Error on failure.
std::shared_ptr<const NativeObject> loadObject(const std::string &SoPath,
                                               std::string &Error) {
  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *Why = dlerror();
    Error = "dlopen('" + SoPath + "') failed: " + (Why ? Why : "unknown");
    return nullptr;
  }
  void *Sym = dlsym(Handle, NativeEntrySymbol);
  if (!Sym) {
    const char *Why = dlerror();
    Error = "dlsym('" + std::string(NativeEntrySymbol) +
            "') failed: " + (Why ? Why : "unknown");
    dlclose(Handle);
    return nullptr;
  }
  return std::make_shared<NativeObject>(
      Handle, reinterpret_cast<NativeObject::EntryFn>(Sym), SoPath);
}

std::mutex MemoryCacheMutex;
std::unordered_map<std::string, std::shared_ptr<const NativeObject>>
    &memoryCache() {
  static std::unordered_map<std::string, std::shared_ptr<const NativeObject>>
      Cache;
  return Cache;
}

} // namespace

std::string slp::nativeHostCompiler() {
  if (const char *Env = std::getenv("SLP_NATIVE_CC"))
    if (*Env)
      return Env;
  return defaultCompiler();
}

bool slp::nativeBackendAvailable(std::string *Why) {
  if (const char *Env = std::getenv("SLP_NATIVE_CC")) {
    if (*Env) {
      std::string Resolved = findOnPath(Env);
      if (!Resolved.empty())
        return true;
      if (Why)
        *Why = "SLP_NATIVE_CC='" + std::string(Env) +
               "' is not an executable host compiler";
      return false;
    }
  }
  if (!defaultCompiler().empty())
    return true;
  if (Why)
    *Why = "no host C compiler (cc/gcc/clang) found on PATH";
  return false;
}

std::string slp::nativeCacheDir() {
  if (const char *Env = std::getenv("SLP_NATIVE_CACHE_DIR"))
    if (*Env)
      return Env;
  std::error_code Ec;
  fs::path Tmp = fs::temp_directory_path(Ec);
  if (Ec)
    Tmp = "/tmp";
  return (Tmp / "slp-native-cache").string();
}

NativeCompileResult slp::compileNativeTU(const std::string &Source,
                                         bool ScalarBaseline) {
  NativeCompileResult R;
  std::string Why;
  if (!nativeBackendAvailable(&Why)) {
    R.Error = Why;
    return R;
  }
  std::string Compiler = nativeHostCompiler();
  std::string CompilerPath = findOnPath(Compiler);
  std::string Flags = compileFlags(ScalarBaseline);

  uint64_t H = 1469598103934665603ULL;
  H = fnv1a(Source, H);
  H = fnv1a(Flags, H);
  H = fnv1a(CompilerPath, H);
  std::string Stem = "slp_" + hex64(H);

  std::string Dir = nativeCacheDir();
  std::string Key = Dir + "/" + Stem;
  {
    std::lock_guard<std::mutex> Lock(MemoryCacheMutex);
    auto It = memoryCache().find(Key);
    if (It != memoryCache().end()) {
      R.Object = It->second;
      R.CacheHit = true;
      R.MemoryHit = true;
      return R;
    }
  }

  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    R.Error = "cannot create cache dir '" + Dir + "': " + Ec.message();
    return R;
  }
  fs::path SrcPath = fs::path(Dir) / (Stem + ".c");
  fs::path SoPath = fs::path(Dir) / (Stem + ".so");
  fs::path LogPath = fs::path(Dir) / (Stem + ".log");

  // Warm disk hit: load the cached object without invoking the compiler.
  // A corrupt cached object (truncated, overwritten) is deleted and falls
  // through to a fresh compile.
  if (fs::exists(SoPath, Ec) && !Ec) {
    std::string LoadError;
    if (std::shared_ptr<const NativeObject> Obj =
            loadObject(SoPath.string(), LoadError)) {
      R.Object = std::move(Obj);
      R.CacheHit = true;
      std::lock_guard<std::mutex> Lock(MemoryCacheMutex);
      memoryCache().emplace(Key, R.Object);
      return R;
    }
    fs::remove(SoPath, Ec);
  }

  if (!writeFileAtomic(SrcPath, Source)) {
    R.Error = "cannot write '" + SrcPath.string() + "'";
    return R;
  }
  fs::path SoTmp = SoPath;
  SoTmp += uniqueTmpSuffix();
  std::string Cmd = "'" + CompilerPath + "' " + Flags + " -o '" +
                    SoTmp.string() + "' '" + SrcPath.string() + "' -lm > '" +
                    LogPath.string() + "' 2>&1";
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    fs::remove(SoTmp, Ec);
    R.Error = "host compiler failed (status " + std::to_string(Rc) + "): " +
              logExcerpt(LogPath);
    return R;
  }
  fs::rename(SoTmp, SoPath, Ec);
  if (Ec && !fs::exists(SoPath)) {
    R.Error = "cannot move object into cache: " + Ec.message();
    return R;
  }

  std::string LoadError;
  R.Object = loadObject(SoPath.string(), LoadError);
  if (!R.Object) {
    R.Error = LoadError;
    return R;
  }
  std::lock_guard<std::mutex> Lock(MemoryCacheMutex);
  memoryCache().emplace(Key, R.Object);
  return R;
}

void slp::nativeClearMemoryCacheForTesting() {
  std::lock_guard<std::mutex> Lock(MemoryCacheMutex);
  memoryCache().clear();
}
