//===- native/CEmitter.cpp ------------------------------------*- C++ -*-===//

#include "native/CEmitter.h"

#include "ir/Interpreter.h"
#include "ir/Type.h"

#include <cassert>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace slp;

namespace {

/// Renders \p V exactly: hexfloat for finite values (no decimal
/// round-tripping), explicit expressions for infinities and NaN so the TU
/// stays portable C without compiler-specific builtins.
std::string fmtDouble(double V) {
  if (std::isnan(V))
    return "(0.0/0.0)";
  if (std::isinf(V))
    return V > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

/// Renders an affine expression over the emitted loop variables i0..iN.
std::string affineC(const AffineExpr &E) {
  std::ostringstream Out;
  Out << "(" << E.constant() << "LL";
  for (unsigned D = 0; D != E.numDims(); ++D)
    if (int64_t C = E.coeff(D))
      Out << " + " << C << "LL*i" << D;
  Out << ")";
  return Out.str();
}

/// The flattened element offset of the array reference \p Op.
std::string arrayAddrC(const Kernel &K, const Operand &Op) {
  return affineC(flattenArrayRef(K.array(Op.symbol()), Op.subscripts()));
}

/// An rvalue reading the location (or constant) \p Op denotes.
std::string operandC(const Kernel &K, const Operand &Op) {
  switch (Op.kind()) {
  case Operand::Kind::Constant:
    return fmtDouble(Op.constantValue());
  case Operand::Kind::Scalar:
    return "s[" + std::to_string(Op.symbol()) + "]";
  case Operand::Kind::Array:
    return "a" + std::to_string(Op.symbol()) + "[" + arrayAddrC(K, Op) + "]";
  }
  return "";
}

/// An lvalue for the scalar-or-array store target \p Op.
std::string lvalueC(const Kernel &K, const Operand &Op) {
  assert(!Op.isConstant() && "cannot store to a constant");
  return operandC(K, Op);
}

/// True when stores to \p Op must truncate (integer-typed target).
bool isIntTarget(const Kernel &K, const Operand &Op) {
  ScalarType Ty =
      Op.isArray() ? K.array(Op.symbol()).Ty : K.scalar(Op.symbol()).Ty;
  return !isFloatType(Ty);
}

/// Renders the expression tree \p E as one C expression. Every leaf is a
/// pure load, so C's unspecified evaluation order cannot change values.
std::string exprC(const Kernel &K, const Expr &E) {
  if (E.isLeaf())
    return operandC(K, E.leaf());
  const OpCode Op = E.opcode();
  if (isUnaryOp(Op)) {
    std::string A = exprC(K, E.child(0));
    switch (Op) {
    case OpCode::Neg:
      return "(-" + A + ")";
    case OpCode::Sqrt:
      return "sqrt(fabs(" + A + "))";
    case OpCode::Abs:
      return "fabs(" + A + ")";
    default:
      break;
    }
  }
  if (isTernaryOp(Op)) {
    std::string C = exprC(K, E.child(0));
    std::string A = exprC(K, E.child(1));
    std::string B = exprC(K, E.child(2));
    return "((" + C + ") != 0.0 ? " + A + " : " + B + ")";
  }
  std::string A = exprC(K, E.child(0));
  std::string B = exprC(K, E.child(1));
  switch (Op) {
  case OpCode::Add:
    return "(" + A + " + " + B + ")";
  case OpCode::Sub:
    return "(" + A + " - " + B + ")";
  case OpCode::Mul:
    return "(" + A + " * " + B + ")";
  case OpCode::Div:
    return "(" + A + " / " + B + ")";
  case OpCode::Min:
    return "fmin(" + A + ", " + B + ")";
  case OpCode::Max:
    return "fmax(" + A + ", " + B + ")";
  case OpCode::CmpLT:
    return "((" + A + " < " + B + ") ? 1.0 : 0.0)";
  case OpCode::CmpLE:
    return "((" + A + " <= " + B + ") ? 1.0 : 0.0)";
  case OpCode::CmpGT:
    return "((" + A + " > " + B + ") ? 1.0 : 0.0)";
  case OpCode::CmpGE:
    return "((" + A + " >= " + B + ") ? 1.0 : 0.0)";
  case OpCode::CmpEQ:
    return "((" + A + " == " + B + ") ? 1.0 : 0.0)";
  case OpCode::CmpNE:
    return "((" + A + " != " + B + ") ? 1.0 : 0.0)";
  default:
    assert(false && "unhandled opcode");
  }
  return "";
}

/// Emits one statement with if-converted scalar semantics: the guard is
/// evaluated first, the right-hand side unconditionally, and a false guard
/// suppresses only the store — matching the interpreters and the tapes.
void emitStatement(std::ostringstream &Out, const Kernel &K,
                   const Statement &S, const std::string &Indent,
                   unsigned &Tmp) {
  unsigned Id = Tmp++;
  Out << Indent << "{\n";
  if (S.hasGuard())
    Out << Indent << "  const double g" << Id << " = "
        << exprC(K, S.guard()) << ";\n";
  Out << Indent << "  const double v" << Id << " = " << exprC(K, S.rhs())
      << ";\n";
  std::string Value = "v" + std::to_string(Id);
  if (isIntTarget(K, S.lhs()))
    Value = "trunc(" + Value + ")";
  Out << Indent << "  ";
  if (S.hasGuard())
    Out << "if (g" << Id << " != 0.0) ";
  Out << lvalueC(K, S.lhs()) << " = " << Value << ";\n";
  Out << Indent << "}\n";
}

/// Emits the TU prologue: headers and the entry function opening, with one
/// restrict-qualified local pointer per array symbol (Environment buffers
/// are always distinct allocations, so restrict is sound).
void emitPrologue(std::ostringstream &Out, const Kernel &K,
                  const char *What) {
  Out << "/* " << What << " for kernel '" << K.Name
      << "' — generated by the SLP native backend. Do not edit; see\n"
         "   docs/native-backend.md for the semantics contract. */\n"
         "#include <math.h>\n"
         "#include <stdint.h>\n\n";
}

void emitEntryOpen(std::ostringstream &Out, const Kernel &K) {
  Out << "void " << NativeEntrySymbol
      << "(double *restrict s, double *const *restrict a) {\n"
         "  (void)s;\n"
         "  (void)a;\n";
  for (unsigned A = 0; A != K.Arrays.size(); ++A) {
    if (K.array(A).ReadOnly)
      Out << "  const double *restrict a" << A << " = a[" << A << "];\n";
    else
      Out << "  double *restrict a" << A << " = a[" << A << "];\n";
    Out << "  (void)a" << A << ";\n";
  }
}

/// Opens the kernel's loop nest (depth-indexed variables i0..iN) and
/// returns the body indentation. Zero-trip nests emit no loops at all —
/// C's `for` would mishandle Step <= 0.
std::string emitLoopsOpen(std::ostringstream &Out, const Kernel &K) {
  std::string Indent = "  ";
  for (unsigned D = 0; D != K.Loops.size(); ++D) {
    const Loop &L = K.Loops[D];
    Out << Indent << "for (int64_t i" << D << " = " << L.Lower << "; i" << D
        << " < " << L.Upper << "; i" << D << " += " << L.Step << ") {\n";
    Indent += "  ";
  }
  return Indent;
}

void emitLoopsClose(std::ostringstream &Out, const Kernel &K) {
  for (unsigned D = static_cast<unsigned>(K.Loops.size()); D != 0; --D)
    Out << std::string(2 * D, ' ') << "}\n";
}

/// True when the pack lanes read/write adjacent elements of one array in
/// lane order (lane l's flattened offset is lane 0's plus l) — the same
/// check the tape compiler uses for its VLoadContig/VStoreContig forms.
bool isContiguousLaneRun(const Kernel &K,
                         const std::vector<Operand> &LaneOps) {
  if (LaneOps.empty() || !LaneOps[0].isArray())
    return false;
  SymbolId Sym = LaneOps[0].symbol();
  AffineExpr Base = flattenArrayRef(K.array(Sym), LaneOps[0].subscripts());
  for (unsigned L = 1; L != LaneOps.size(); ++L) {
    if (!LaneOps[L].isArray() || LaneOps[L].symbol() != Sym)
      return false;
    AffineExpr Diff =
        flattenArrayRef(K.array(Sym), LaneOps[L].subscripts()) - Base;
    if (!Diff.isConstant() || Diff.constant() != static_cast<int64_t>(L))
      return false;
  }
  return true;
}

unsigned nextPow2(unsigned N) {
  unsigned P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

/// Vector register spelling.
std::string reg(unsigned R) { return "r" + std::to_string(R); }

std::string lane(unsigned R, unsigned L) {
  return reg(R) + "[" + std::to_string(L) + "]";
}

/// Emits one vector instruction. \p VS is the (power-of-two) C vector
/// width; full-width contiguous packs and full-width arithmetic lower to
/// single vector operations, everything else to constant-index lane
/// assignments (lane-wise forms never cross lanes, so destination/source
/// aliasing is safe; only Shuffle needs a temporary).
void emitVInst(std::ostringstream &Out, const Kernel &K, const VInst &I,
               const std::string &Indent, unsigned VS, unsigned &Tmp) {
  switch (I.Kind) {
  case VInstKind::ScalarExec:
    emitStatement(Out, K, K.Body.statement(I.StmtId), Indent, Tmp);
    return;
  case VInstKind::LoadPack:
    if (I.Lanes == VS && isContiguousLaneRun(K, I.LaneOps)) {
      Out << Indent << reg(I.Dst) << " = *(const slp_vecu *)&a"
          << I.LaneOps[0].symbol() << "[" << arrayAddrC(K, I.LaneOps[0])
          << "];\n";
      return;
    }
    for (unsigned L = 0; L != I.Lanes; ++L)
      Out << Indent << lane(I.Dst, L) << " = " << operandC(K, I.LaneOps[L])
          << ";\n";
    return;
  case VInstKind::StorePack: {
    bool AllFloat = true;
    for (const Operand &Op : I.LaneOps)
      AllFloat &= !isIntTarget(K, Op);
    if (I.Lanes == VS && AllFloat && isContiguousLaneRun(K, I.LaneOps)) {
      Out << Indent << "*(slp_vecu *)&a" << I.LaneOps[0].symbol() << "["
          << arrayAddrC(K, I.LaneOps[0]) << "] = " << reg(I.Src0) << ";\n";
      return;
    }
    for (unsigned L = 0; L != I.Lanes; ++L) {
      std::string V = lane(I.Src0, L);
      if (isIntTarget(K, I.LaneOps[L]))
        V = "trunc(" + V + ")";
      Out << Indent << lvalueC(K, I.LaneOps[L]) << " = " << V << ";\n";
    }
    return;
  }
  case VInstKind::Shuffle: {
    unsigned T = Tmp++;
    Out << Indent << "{ const slp_vec t" << T << " = " << reg(I.Src0)
        << ";";
    for (unsigned L = 0; L != I.Lanes; ++L)
      Out << " " << lane(I.Dst, L) << " = t" << T << "[" << I.Perm[L]
          << "];";
    Out << " }\n";
    return;
  }
  case VInstKind::VectorOp:
    if (I.UnaryOp) {
      switch (I.Op) {
      case OpCode::Neg:
        if (I.Lanes == VS) {
          Out << Indent << reg(I.Dst) << " = -" << reg(I.Src0) << ";\n";
        } else {
          for (unsigned L = 0; L != I.Lanes; ++L)
            Out << Indent << lane(I.Dst, L) << " = -" << lane(I.Src0, L)
                << ";\n";
        }
        return;
      case OpCode::Sqrt:
        for (unsigned L = 0; L != I.Lanes; ++L)
          Out << Indent << lane(I.Dst, L) << " = sqrt(fabs("
              << lane(I.Src0, L) << "));\n";
        return;
      case OpCode::Abs:
        for (unsigned L = 0; L != I.Lanes; ++L)
          Out << Indent << lane(I.Dst, L) << " = fabs(" << lane(I.Src0, L)
              << ");\n";
        return;
      default:
        assert(false && "unhandled unary vector opcode");
        return;
      }
    }
    switch (I.Op) {
    case OpCode::Add:
    case OpCode::Sub:
    case OpCode::Mul:
    case OpCode::Div: {
      const char *Sym = I.Op == OpCode::Add   ? "+"
                        : I.Op == OpCode::Sub ? "-"
                        : I.Op == OpCode::Mul ? "*"
                                              : "/";
      if (I.Lanes == VS) {
        Out << Indent << reg(I.Dst) << " = " << reg(I.Src0) << " " << Sym
            << " " << reg(I.Src1) << ";\n";
      } else {
        for (unsigned L = 0; L != I.Lanes; ++L)
          Out << Indent << lane(I.Dst, L) << " = " << lane(I.Src0, L) << " "
              << Sym << " " << lane(I.Src1, L) << ";\n";
      }
      return;
    }
    case OpCode::Min:
    case OpCode::Max: {
      const char *Fn = I.Op == OpCode::Min ? "fmin" : "fmax";
      for (unsigned L = 0; L != I.Lanes; ++L)
        Out << Indent << lane(I.Dst, L) << " = " << Fn << "("
            << lane(I.Src0, L) << ", " << lane(I.Src1, L) << ");\n";
      return;
    }
    case OpCode::CmpLT:
    case OpCode::CmpLE:
    case OpCode::CmpGT:
    case OpCode::CmpGE:
    case OpCode::CmpEQ:
    case OpCode::CmpNE: {
      const char *Sym = I.Op == OpCode::CmpLT   ? "<"
                        : I.Op == OpCode::CmpLE ? "<="
                        : I.Op == OpCode::CmpGT ? ">"
                        : I.Op == OpCode::CmpGE ? ">="
                        : I.Op == OpCode::CmpEQ ? "=="
                                                : "!=";
      for (unsigned L = 0; L != I.Lanes; ++L)
        Out << Indent << lane(I.Dst, L) << " = (" << lane(I.Src0, L) << " "
            << Sym << " " << lane(I.Src1, L) << ") ? 1.0 : 0.0;\n";
      return;
    }
    default:
      assert(false && "unhandled binary vector opcode");
      return;
    }
  case VInstKind::MaskedLoadPack:
    // Tape semantics load every lane then zero the untaken ones; all
    // addresses are in bounds by construction, so the value-identical
    // per-lane select is safe even if the untaken load is elided.
    for (unsigned L = 0; L != I.Lanes; ++L)
      Out << Indent << lane(I.Dst, L) << " = (" << lane(I.Src1, L)
          << " != 0.0) ? " << operandC(K, I.LaneOps[L]) << " : 0.0;\n";
    return;
  case VInstKind::MaskedStorePack:
    // Zero-mask lanes keep their prior memory contents.
    for (unsigned L = 0; L != I.Lanes; ++L) {
      std::string V = lane(I.Src0, L);
      if (isIntTarget(K, I.LaneOps[L]))
        V = "trunc(" + V + ")";
      Out << Indent << "if (" << lane(I.Src1, L) << " != 0.0) "
          << lvalueC(K, I.LaneOps[L]) << " = " << V << ";\n";
    }
    return;
  case VInstKind::Blend:
    for (unsigned L = 0; L != I.Lanes; ++L)
      Out << Indent << lane(I.Dst, L) << " = (" << lane(I.Src0, L)
          << " != 0.0) ? " << lane(I.Src1, L) << " : " << lane(I.Src2, L)
          << ";\n";
    return;
  }
}

} // namespace

std::string slp::emitScalarKernelC(const Kernel &K) {
  std::ostringstream Out;
  emitPrologue(Out, K, "Scalar baseline");
  emitEntryOpen(Out, K);
  if (K.totalIterations() > 0) {
    std::string Indent = emitLoopsOpen(Out, K);
    unsigned Tmp = 0;
    for (const Statement &S : K.Body)
      emitStatement(Out, K, S, Indent, Tmp);
    emitLoopsClose(Out, K);
  } else {
    Out << "  /* zero-trip loop nest: no iterations */\n";
  }
  Out << "}\n";
  return Out.str();
}

std::string slp::emitVectorProgramC(const Kernel &K,
                                    const VectorProgram &Program) {
  // The C vector width: the widest pack rounded up to a power of two
  // (vector_size demands one). Narrower packs use lane assignments within
  // the same register type.
  unsigned MaxLanes = 2;
  for (const VInst &I : Program.Insts)
    if (I.Kind != VInstKind::ScalarExec && I.Lanes > MaxLanes)
      MaxLanes = I.Lanes;
  const unsigned VS = nextPow2(MaxLanes);

  std::ostringstream Out;
  emitPrologue(Out, K, "Vector program");
  if (Program.NumVRegs > 0)
    Out << "typedef double slp_vec __attribute__((vector_size(" << VS * 8
        << ")));\n"
           "typedef double slp_vecu __attribute__((vector_size("
        << VS * 8
        << "), aligned(8), may_alias));\n\n";
  emitEntryOpen(Out, K);
  if (K.totalIterations() > 0) {
    std::string Indent = emitLoopsOpen(Out, K);
    // Registers are per-block-execution (the static verifier proves no
    // read-before-def within one execution), so they live inside the
    // innermost body; {0} keeps unused tail lanes deterministic.
    for (unsigned R = 0; R != Program.NumVRegs; ++R)
      Out << Indent << "slp_vec " << reg(R) << " = {0}; (void)" << reg(R)
          << ";\n";
    unsigned Tmp = 0;
    for (const VInst &I : Program.Insts)
      emitVInst(Out, K, I, Indent, VS, Tmp);
    emitLoopsClose(Out, K);
  } else {
    Out << "  /* zero-trip loop nest: no iterations */\n";
  }
  Out << "}\n";
  return Out.str();
}
