//===- experiments/Experiments.cpp ----------------------------*- C++ -*-===//

#include "experiments/Experiments.h"

#include <algorithm>

using namespace slp;

namespace {

unsigned vectorizedStatements(const Schedule &S) {
  unsigned N = 0;
  for (const ScheduleItem &I : S.Items)
    if (I.isGroup())
      N += I.width();
  return N;
}

double averageOf(const std::vector<BenchmarkRow> &Rows,
                 double BenchmarkRow::*Field) {
  double Sum = 0;
  for (const BenchmarkRow &R : Rows)
    Sum += R.*Field;
  return Rows.empty() ? 0 : Sum / static_cast<double>(Rows.size());
}

} // namespace

double SuiteEvaluation::averageNative() const {
  return averageOf(Rows, &BenchmarkRow::Native);
}
double SuiteEvaluation::averageSlp() const {
  return averageOf(Rows, &BenchmarkRow::Slp);
}
double SuiteEvaluation::averageGlobal() const {
  return averageOf(Rows, &BenchmarkRow::Global);
}
double SuiteEvaluation::averageGlobalLayout() const {
  return averageOf(Rows, &BenchmarkRow::GlobalLayout);
}

unsigned SuiteEvaluation::countGlobalEqualsSlp(double Tol) const {
  unsigned N = 0;
  for (const BenchmarkRow &R : Rows)
    N += std::abs(R.Global - R.Slp) <= Tol;
  return N;
}

unsigned SuiteEvaluation::countSlpEqualsNative(double Tol) const {
  unsigned N = 0;
  for (const BenchmarkRow &R : Rows)
    N += std::abs(R.Slp - R.Native) <= Tol;
  return N;
}

unsigned SuiteEvaluation::countLayoutHelped(double Tol) const {
  unsigned N = 0;
  for (const BenchmarkRow &R : Rows)
    N += R.layoutHelped(Tol);
  return N;
}

double SuiteEvaluation::maxGlobalLayoutOverSlp(std::string *Which) const {
  double Max = 0;
  for (const BenchmarkRow &R : Rows) {
    double Gap = R.GlobalLayout - R.Slp;
    if (Gap > Max) {
      Max = Gap;
      if (Which)
        *Which = R.Name;
    }
  }
  return Max;
}

SuiteEvaluation slp::evaluateSuite(const MachineModel &Machine) {
  SuiteEvaluation E;
  E.Machine = Machine;
  PipelineOptions Options;
  Options.Machine = Machine;

  for (const Workload &W : standardWorkloads()) {
    BenchmarkRow Row;
    Row.Name = W.Name;
    Row.IsNas = W.IsNas;
    Row.Multicore = W.Multicore;

    PipelineResult Native =
        runPipeline(W.TheKernel, OptimizerKind::Native, Options);
    PipelineResult Slp =
        runPipeline(W.TheKernel, OptimizerKind::LarsenSlp, Options);
    PipelineResult Global =
        runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    PipelineResult Layout =
        runPipeline(W.TheKernel, OptimizerKind::GlobalLayout, Options);

    Row.Native = Native.improvement();
    Row.Slp = Slp.improvement();
    Row.Global = Global.improvement();
    Row.GlobalLayout = Layout.improvement();
    Row.ScalarSim = Global.ScalarSim;
    Row.SlpSim = Slp.VectorSim;
    Row.GlobalSim = Global.VectorSim;
    Row.GlobalLayoutSim = Layout.VectorSim;
    Row.SlpVectorizedStmts = vectorizedStatements(Slp.TheSchedule);
    Row.GlobalVectorizedStmts = vectorizedStatements(Global.TheSchedule);
    E.Rows.push_back(std::move(Row));
  }
  return E;
}

double slp::instructionElimination(unsigned DatapathBits) {
  PipelineOptions Options;
  Options.Machine = MachineModel::hypothetical(DatapathBits);
  double Sum = 0;
  std::vector<Workload> Suite = standardWorkloads();
  for (const Workload &W : Suite) {
    PipelineResult R =
        runPipeline(W.TheKernel, OptimizerKind::Global, Options);
    Sum += 1.0 - static_cast<double>(R.VectorSim.totalInstrs()) /
                     static_cast<double>(R.ScalarSim.totalInstrs());
  }
  return Sum / static_cast<double>(Suite.size());
}

std::vector<MulticoreRow>
slp::evaluateMulticore(OptimizerKind Kind, const MachineModel &Machine,
                       const std::vector<unsigned> &CoreCounts) {
  PipelineOptions Options;
  Options.Machine = Machine;
  std::vector<MulticoreRow> Rows;
  for (const Workload &W : standardWorkloads()) {
    if (!W.IsNas)
      continue;
    PipelineResult R = runPipeline(W.TheKernel, Kind, Options);
    MulticoreRow Row;
    Row.Name = W.Name;
    for (unsigned Cores : CoreCounts)
      Row.ReductionByCoreCount.push_back(multicoreTimeReduction(
          R.ScalarSim, R.VectorSim, Machine, Cores, W.Multicore));
    Rows.push_back(std::move(Row));
  }
  return Rows;
}
