//===- experiments/Experiments.h - Evaluation-section harness ---*- C++ -*-===//
///
/// \file
/// Programmatic versions of the paper's evaluation artifacts: run the four
/// schemes over the 16-benchmark suite on a machine model and expose the
/// quantities each figure plots. The bench/ binaries print these tables;
/// tests/experiments asserts their *shape* (who wins, tie counts, rough
/// magnitudes) so the reproduction cannot silently drift.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_EXPERIMENTS_EXPERIMENTS_H
#define SLP_EXPERIMENTS_EXPERIMENTS_H

#include "machine/Multicore.h"
#include "slp/Pipeline.h"
#include "workloads/Workloads.h"

#include <string>
#include <vector>

namespace slp {

/// One benchmark's results under every scheme.
struct BenchmarkRow {
  std::string Name;
  bool IsNas = false;
  MulticoreParams Multicore;

  /// Fractional execution-time reductions over scalar (Figures 16/19/20).
  double Native = 0;
  double Slp = 0;
  double Global = 0;
  double GlobalLayout = 0;

  /// Simulation results for the instruction-count figures.
  KernelSimResult ScalarSim;
  KernelSimResult SlpSim;
  KernelSimResult GlobalSim;
  KernelSimResult GlobalLayoutSim;

  /// Statements covered by superword statements under each scheme.
  unsigned SlpVectorizedStmts = 0;
  unsigned GlobalVectorizedStmts = 0;

  bool layoutHelped(double Tol = 5e-4) const {
    return GlobalLayout > Global + Tol;
  }
};

/// The whole suite on one machine.
struct SuiteEvaluation {
  MachineModel Machine;
  std::vector<BenchmarkRow> Rows;

  double averageNative() const;
  double averageSlp() const;
  double averageGlobal() const;
  double averageGlobalLayout() const;

  /// Benchmarks where Global and SLP produce (essentially) the same
  /// result — the paper reports three.
  unsigned countGlobalEqualsSlp(double Tol = 5e-4) const;
  /// Benchmarks where SLP and Native coincide — the paper reports four.
  unsigned countSlpEqualsNative(double Tol = 5e-4) const;
  /// Benchmarks the layout stage improves — the paper reports seven.
  unsigned countLayoutHelped(double Tol = 5e-4) const;
  /// The largest improvement of Global+Layout over SLP (paper: ~15.2%).
  /// \p Which (when non-null) receives the benchmark name.
  double maxGlobalLayoutOverSlp(std::string *Which = nullptr) const;
};

/// Runs all four schemes over the standard suite on \p Machine.
SuiteEvaluation evaluateSuite(const MachineModel &Machine);

/// Figure 18's quantity: suite-average fraction of the scalar code's
/// dynamic instructions that Global eliminates at the given datapath
/// width.
double instructionElimination(unsigned DatapathBits);

/// One NAS benchmark's Figure 21 series.
struct MulticoreRow {
  std::string Name;
  std::vector<double> ReductionByCoreCount;
};

/// Figure 21: per-NAS-benchmark execution-time reductions for each core
/// count in \p CoreCounts, scheme \p Kind, on \p Machine.
std::vector<MulticoreRow>
evaluateMulticore(OptimizerKind Kind, const MachineModel &Machine,
                  const std::vector<unsigned> &CoreCounts);

} // namespace slp

#endif // SLP_EXPERIMENTS_EXPERIMENTS_H
