//===- layout/Layout.h - Data layout optimization ----------------*- C++ -*-===//
///
/// \file
/// The second stage of the framework (paper Section 5): re-organize data in
/// memory so that the *mandatory* packing/unpacking operations left after
/// superword statement generation become cheap vector memory operations.
///
/// * Scalar superwords (Section 5.1): an offset-assignment-style pass gives
///   the most frequently packed scalars consecutive, vector-aligned memory
///   slots, in pack-lane order; conflicting packs are skipped in frequency
///   order.
///
/// * Array-reference superwords (Section 5.2): read-only, intra-array,
///   affine reference packs are redirected to a freshly replicated array B
///   in which the pack's lanes are interleaved contiguously — the general
///   strided mapping/replication of the paper's Equations 4-8, realized via
///   iteration-space linearization so it applies uniformly to any affine
///   loop nest. Each original reference is rewritten at most once.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_LAYOUT_LAYOUT_H
#define SLP_LAYOUT_LAYOUT_H

#include "ir/Interpreter.h"
#include "slp/Scheduling.h"
#include "vector/CodeGen.h"

namespace slp {

/// Describes how one replica array is filled from its source before the
/// kernel runs: for every iteration of the loop nest and every lane p,
/// B[DestFlat[p](i)] = A[SourceFlat[p](i)].
struct ReplicationRule {
  SymbolId DestArray;
  SymbolId SourceArray;
  std::vector<AffineExpr> SourceFlat;
  std::vector<AffineExpr> DestFlat;
};

/// Result of the data layout stage.
struct LayoutResult {
  /// Kernel with references redirected to replica arrays (equal to the
  /// input kernel when no array pack qualified).
  Kernel TransformedKernel;
  /// Optimized scalar slot assignment.
  ScalarLayout Scalars;
  std::vector<ReplicationRule> Replications;
  unsigned ScalarPacksPlaced = 0;
  unsigned ArrayPacksReplicated = 0;
  /// Extra data footprint created by replication.
  double ReplicatedBytes = 0;
};

/// Options for the layout stage.
struct LayoutOptions {
  unsigned DatapathBits = 128;
  bool OptimizeScalars = true;
  bool OptimizeArrays = true;
};

/// Runs the layout stage for the superword statements of \p S over \p K
/// (the kernel the schedule was computed for).
LayoutResult optimizeDataLayout(const Kernel &K, const Schedule &S,
                                const LayoutOptions &Options);

/// Fills every replica array buffer in \p Env according to
/// \p R.Replications (run once before executing the transformed kernel —
/// the paper's replication happens at data-allocation time).
void initializeReplicas(const Kernel &TransformedKernel,
                        const LayoutResult &R, Environment &Env);

} // namespace slp

#endif // SLP_LAYOUT_LAYOUT_H
