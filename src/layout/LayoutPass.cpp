//===- layout/LayoutPass.cpp ----------------------------------*- C++ -*-===//

#include "layout/LayoutPass.h"

#include "layout/Layout.h"
#include "machine/SimulatePass.h"
#include "machine/Simulator.h"
#include "slp/PipelineState.h"
#include "vector/CodeGen.h"

using namespace slp;

void LayoutPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  ensureSimulated(S); // the "no layout" baseline to beat

  // Try the three layout alternatives the paper describes — none,
  // scalar-only (when replication's cache cost would dominate), and
  // full — and keep the cheapest.
  for (bool WithArrays : {false, true}) {
    LayoutOptions LO;
    LO.DatapathBits = S.Options.Machine.DatapathBits;
    LO.OptimizeScalars = true;
    LO.OptimizeArrays = WithArrays;
    LayoutResult L = optimizeDataLayout(S.Preprocessed, S.TheSchedule, LO);
    VectorProgram P = generateVectorProgram(L.TransformedKernel,
                                            S.TheSchedule, S.CG, L.Scalars);
    KernelSimResult Sim = simulateVectorKernel(
        L.TransformedKernel, P, S.Options.Machine, L.ReplicatedBytes);
    if (Sim.Cycles < S.VectorSim.Cycles) {
      S.VectorSim = Sim;
      S.Program = std::move(P);
      S.Final = L.TransformedKernel.clone();
      S.Layout = std::move(L);
      S.LayoutApplied = true;
    }
  }

  if (S.LayoutApplied) {
    Ctx.Stats.add("layout.blocks-transformed");
    Ctx.Stats.add("layout.scalar-packs-placed", S.Layout.ScalarPacksPlaced);
    Ctx.Stats.add("layout.array-packs-replicated",
                  S.Layout.ArrayPacksReplicated);
    Ctx.Remarks.applied(
        name(),
        "layout transformation applied: " +
            std::to_string(S.Layout.ScalarPacksPlaced) +
            " scalar pack(s) placed, " +
            std::to_string(S.Layout.ArrayPacksReplicated) +
            " array pack(s) replicated (" +
            std::to_string(static_cast<long long>(S.Layout.ReplicatedBytes)) +
            " bytes)");
  } else {
    Ctx.Remarks.missed(name(), "no layout alternative beat the default "
                               "placement; data layout unchanged");
  }
}
