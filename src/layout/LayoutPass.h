//===- layout/LayoutPass.h - Data layout stage as a pass --------*- C++ -*-===//
///
/// \file
/// The framework's second stage (paper Section 5) as a KernelPass, present
/// only in the Global+Layout pipeline: tries the paper's layout
/// alternatives — none, scalar-only (when replication's cache cost would
/// dominate), and full — regenerates the vector program for each, and
/// keeps the cheapest according to the machine simulation.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_LAYOUT_LAYOUTPASS_H
#define SLP_LAYOUT_LAYOUTPASS_H

#include "support/PassManager.h"

namespace slp {

class LayoutPass : public KernelPass {
public:
  const char *name() const override { return "layout"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_LAYOUT_LAYOUTPASS_H
