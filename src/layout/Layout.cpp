//===- layout/Layout.cpp --------------------------------------*- C++ -*-===//

#include "layout/Layout.h"

#include "analysis/Alignment.h"
#include "slp/Pack.h"

#include <algorithm>
#include <map>
#include <set>

using namespace slp;

namespace {

/// One syntactic site where a pack occurs: the group's lane statements and
/// the operand position within them.
struct PackSite {
  std::vector<unsigned> LaneStmts;
  unsigned Position;
};

/// An ordered pack harvested from the schedule, with every site it
/// occurs at.
struct PackUse {
  std::vector<Operand> Lanes;
  std::vector<PackSite> Sites;

  unsigned occurrences() const {
    return static_cast<unsigned>(Sites.size());
  }
};

/// Collects the distinct ordered packs of every superword statement
/// position satisfying \p Filter, with their occurrence sites.
template <typename FilterFn>
std::vector<PackUse> collectPacks(const Kernel &K, const Schedule &S,
                                  FilterFn Filter) {
  std::map<std::string, unsigned> Index;
  std::vector<PackUse> Packs;
  for (const ScheduleItem &Item : S.Items) {
    if (!Item.isGroup())
      continue;
    std::vector<std::vector<const Operand *>> Positions =
        positionPacks(K, Item.Lanes);
    for (unsigned P = 0, E = static_cast<unsigned>(Positions.size()); P != E;
         ++P) {
      if (!Filter(P, Positions[P]))
        continue;
      std::string Key = orderedPackKey(Positions[P]);
      auto It = Index.find(Key);
      if (It == Index.end()) {
        Index[Key] = static_cast<unsigned>(Packs.size());
        PackUse Use;
        for (const Operand *O : Positions[P])
          Use.Lanes.push_back(*O);
        Packs.push_back(std::move(Use));
        It = Index.find(Key);
      }
      Packs[It->second].Sites.push_back(PackSite{Item.Lanes, P});
    }
  }
  // Highest occurrence first; ties resolved by collection order.
  std::stable_sort(Packs.begin(), Packs.end(),
                   [](const PackUse &A, const PackUse &B) {
                     return A.occurrences() > B.occurrences();
                   });
  return Packs;
}

/// Replaces the use leaf of \p S that sits at operand position \p Position
/// (position 0 is the lhs; rhs leaves come first, then guard leaves) with
/// \p Replacement.
void rewriteLeafAt(Statement &S, unsigned Position,
                   const Operand &Replacement) {
  assert(Position >= 1 && "cannot rewrite the lhs with a replica");
  unsigned LeafIdx = 0;
  unsigned Target = Position - 1;
  bool Done = false;
  S.forEachUseMut([&](Operand &O) {
    if (LeafIdx++ == Target) {
      O = Replacement;
      Done = true;
    }
  });
  assert(Done && "operand position out of range");
  (void)Done;
}

/// Assigns slots to scalar packs (Figure 12, lines 10-22).
void assignScalarSlots(const Kernel &K, const Schedule &S, LayoutResult &R) {
  std::vector<PackUse> Packs = collectPacks(
      K, S, [](unsigned, const std::vector<const Operand *> &Lanes) {
        return std::all_of(Lanes.begin(), Lanes.end(), [](const Operand *O) {
          return O->isScalar();
        });
      });

  std::vector<int64_t> Slot(K.Scalars.size(), -1);
  int64_t NextFree = 0;
  for (const PackUse &Pack : Packs) {
    // Skip packs with repeated scalars (broadcasts) and packs sharing a
    // variable with an already-placed pack (conflicting requirements).
    std::set<SymbolId> Seen;
    bool Placeable = true;
    for (const Operand &O : Pack.Lanes) {
      if (!Seen.insert(O.symbol()).second || Slot[O.symbol()] >= 0) {
        Placeable = false;
        break;
      }
    }
    if (!Placeable)
      continue;
    int64_t Lanes = static_cast<int64_t>(Pack.Lanes.size());
    int64_t Base = (NextFree + Lanes - 1) / Lanes * Lanes; // align
    for (int64_t L = 0; L != Lanes; ++L)
      Slot[Pack.Lanes[static_cast<size_t>(L)].symbol()] = Base + L;
    NextFree = Base + Lanes;
    ++R.ScalarPacksPlaced;
  }

  // Unplaced scalars get padded slots so they never become accidentally
  // contiguous (matching the default layout's behavior).
  for (int64_t &Sl : Slot) {
    if (Sl >= 0)
      continue;
    Sl = NextFree + 1;
    NextFree += 2;
  }
  R.Scalars.Slots = std::move(Slot);
}

/// Scaled iteration-space linearization: the affine function
/// Lanes * n(i), where n(i) numbers the iterations of \p K's nest
/// 0 .. totalIterations-1 in execution order. The scaling is folded in
/// because after unrolling the innermost step typically equals the lane
/// count, making Lanes * n(i) integral even though n(i) alone is not.
/// Returns nullopt when some term does not divide evenly (non-affine).
std::optional<AffineExpr> scaledIterationNumber(const Kernel &K,
                                                int64_t Lanes) {
  AffineExpr N(0);
  unsigned Depth = static_cast<unsigned>(K.Loops.size());
  for (unsigned D = 0; D != Depth; ++D) {
    int64_t Weight = Lanes;
    for (unsigned Inner = D + 1; Inner != Depth; ++Inner)
      Weight *= K.Loops[Inner].tripCount();
    const Loop &L = K.Loops[D];
    // Term: Weight * (i_D - Lower) / Step.
    if (Weight % L.Step != 0 || (Weight * L.Lower) % L.Step != 0)
      return std::nullopt;
    AffineExpr Term =
        AffineExpr::term(D, Weight / L.Step, -(Weight * L.Lower) / L.Step);
    N = N + Term;
  }
  return N;
}

/// Replicates qualifying array packs (Figure 12, lines 23-39).
void replicateArrayPacks(const Kernel &K, const Schedule &S,
                         LayoutResult &R) {
  Kernel &Out = R.TransformedKernel;

  // Arrays written anywhere in the block are not read-only regardless of
  // their declaration.
  std::set<SymbolId> Written;
  for (const Statement &St : K.Body)
    if (St.lhs().isArray())
      Written.insert(St.lhs().symbol());

  std::vector<PackUse> Packs = collectPacks(
      K, S, [&](unsigned P, const std::vector<const Operand *> &Lanes) {
        if (P == 0)
          return false; // stores cannot be replicated
        SymbolId Array = 0;
        for (const Operand *O : Lanes) {
          if (!O->isArray())
            return false;
          Array = O->symbol();
        }
        for (const Operand *O : Lanes)
          if (O->symbol() != Array)
            return false;
        if (!K.array(Array).ReadOnly || Written.count(Array))
          return false;
        // Only packs that are not already a single aligned load benefit.
        return classifyArrayPack(K, Lanes) != PackShape::ContiguousAligned;
      });

  for (const PackUse &Pack : Packs) {
    int64_t Lanes = static_cast<int64_t>(Pack.Lanes.size());
    std::optional<AffineExpr> ScaledIter = scaledIterationNumber(K, Lanes);
    if (!ScaledIter)
      continue; // non-affine for this width: transformation does not apply

    const ArraySymbol &Src = K.array(Pack.Lanes.front().symbol());
    int64_t ReplicaElems = Lanes * K.totalIterations();
    SymbolId Replica = Out.addArray(
        "__repl" + std::to_string(R.Replications.size()) + "_" + Src.Name,
        Src.Ty, {ReplicaElems}, /*ReadOnly=*/true);

    // The replica interleaves the pack's lanes contiguously in iteration
    // order (the strided mapping/replication of Equations 4-8): lane L of
    // iteration n lives at Lanes*n + L.
    ReplicationRule Rule;
    Rule.DestArray = Replica;
    Rule.SourceArray = Pack.Lanes.front().symbol();
    std::vector<Operand> NewRefs;
    for (int64_t L = 0; L != Lanes; ++L) {
      const Operand &Ref = Pack.Lanes[static_cast<size_t>(L)];
      AffineExpr DstFlat = *ScaledIter + AffineExpr(L);
      Rule.SourceFlat.push_back(flattenArrayRef(Src, Ref.subscripts()));
      Rule.DestFlat.push_back(DstFlat);
      NewRefs.push_back(Operand::makeArray(Replica, {DstFlat}));
    }

    // Rewrite the pack's lanes at every site it occurs. Site-level
    // rewriting (rather than reference-level) lets overlapping strided
    // packs each get their own replica, at the price of replicating the
    // shared elements twice — exactly the space/time trade the paper's
    // replication makes.
    for (const PackSite &Site : Pack.Sites)
      for (unsigned L = 0; L != static_cast<unsigned>(Lanes); ++L)
        rewriteLeafAt(Out.Body.statement(Site.LaneStmts[L]), Site.Position,
                      NewRefs[L]);

    R.Replications.push_back(std::move(Rule));
    R.ReplicatedBytes +=
        static_cast<double>(ReplicaElems) * byteSizeOf(Src.Ty);
    ++R.ArrayPacksReplicated;
  }
}

} // namespace

LayoutResult slp::optimizeDataLayout(const Kernel &K, const Schedule &S,
                                     const LayoutOptions &Options) {
  LayoutResult R;
  R.TransformedKernel = K.clone();
  R.Scalars = ScalarLayout::defaultLayout(
      static_cast<unsigned>(K.Scalars.size()));
  if (Options.OptimizeScalars)
    assignScalarSlots(K, S, R);
  if (Options.OptimizeArrays)
    replicateArrayPacks(K, S, R);
  return R;
}

void slp::initializeReplicas(const Kernel &TransformedKernel,
                             const LayoutResult &R, Environment &Env) {
  for (const ReplicationRule &Rule : R.Replications) {
    const std::vector<double> &Src = Env.arrayBuffer(Rule.SourceArray);
    std::vector<double> &Dst = Env.arrayBuffer(Rule.DestArray);
    forEachIteration(TransformedKernel,
                     [&](const std::vector<int64_t> &Indices) {
                       for (unsigned L = 0,
                                     E = static_cast<unsigned>(
                                         Rule.SourceFlat.size());
                            L != E; ++L) {
                         int64_t From = Rule.SourceFlat[L].evaluate(Indices);
                         int64_t To = Rule.DestFlat[L].evaluate(Indices);
                         assert(From >= 0 &&
                                From < static_cast<int64_t>(Src.size()) &&
                                "replication source out of bounds");
                         assert(To >= 0 &&
                                To < static_cast<int64_t>(Dst.size()) &&
                                "replication destination out of bounds");
                         Dst[static_cast<size_t>(To)] =
                             Src[static_cast<size_t>(From)];
                       }
                     });
  }
}
