//===- fuzz/Corpus.h - Replayable fuzz-case corpus --------------*- C++ -*-===//
///
/// \file
/// A fuzz case is a kernel in the textual `.slp` language plus the exact
/// pipeline configuration that exposed a failure (optimizer, datapath
/// bits, grouping engine, thread count, environment seeds, and — for
/// harness mutation tests — the injected schedule corruption). Cases are
/// stored as ordinary `.slp` files with a `// fuzz:` comment header, so
/// every repro doubles as a human-readable kernel and replays through both
/// `slp-fuzz --replay` and the CorpusReplayTest ctest.
///
/// Header format (first comment lines of the file):
///   // fuzz: opt=global+layout bits=128 grouping=optimized threads=1
///   // fuzz: env-seeds=12648430,16435934
///   // fuzz: exec=reference
///   // fuzz: inject=none
///   // reason: <free text describing the original failure>
///
/// `exec=` selects the execution engine the replay runs under
/// (optimized/reference, exec/ExecEngine.h); absent means optimized, so
/// pre-existing corpus files keep their meaning. `verify-vector=off`
/// disables the static translation validator oracle for the replay;
/// absent means on, so pre-existing corpus files gain the static check
/// without being rewritten. `predication=on` marks a case found by a
/// predication campaign (guarded statements / masked vector paths);
/// absent means off. The flag is provenance — the replay semantics are
/// fully determined by the kernel source — but it lets tooling select the
/// masked-path corpus subset. `native=on` makes the replay additionally
/// cross-check the host-compiled native engine (ExecEngineKind::Native)
/// against the base engine — bit-identical values, operation counts, and
/// equivalence verdict; absent means off, and the check silently skips
/// when no host compiler is available so the corpus replays everywhere.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_FUZZ_CORPUS_H
#define SLP_FUZZ_CORPUS_H

#include "exec/ExecEngine.h"
#include "slp/Pipeline.h"

#include <string>
#include <vector>

namespace slp {

/// Schedule corruptions used to mutation-test the harness itself: a case
/// with an injection expects the *verifier to fail* after the corruption
/// is applied, pinning the safety net's ability to catch that bug shape.
enum class BugInjection : uint8_t {
  None,
  DropItem,      ///< delete the last schedule item (permutation check)
  DuplicateLane, ///< schedule one statement twice (permutation check)
  SwapDependent, ///< reorder items against a dependence (constraint 2)
};

const char *bugInjectionName(BugInjection Inject);
bool parseBugInjection(const std::string &Name, BugInjection &Out);

/// The pipeline configuration of one fuzz case.
struct FuzzCaseConfig {
  OptimizerKind Kind = OptimizerKind::GlobalLayout;
  unsigned DatapathBits = 128;
  GroupingImpl Grouping = GroupingImpl::Optimized;
  unsigned Threads = 1;
  std::vector<uint64_t> EnvSeeds = {0xC0FFEE, 0xFACADE};
  /// Execution engine the case's kernels run under.
  ExecEngineKind Exec = ExecEngineKind::Optimized;
  BugInjection Inject = BugInjection::None;
  /// Cross-check the static translation validator against the dynamic
  /// equivalence verdict when replaying (see FuzzConfig::VerifyVector).
  bool VerifyVector = true;
  /// Provenance: the case came from a predication (`--predication`)
  /// campaign and exercises guarded statements / masked vector code.
  bool Predication = false;
  /// Replay additionally cross-checks ExecEngineKind::Native against the
  /// base engine (skipped with no host compiler; see FuzzConfig::Native).
  bool Native = false;
};

/// One replayable case: configuration + kernel source + provenance.
struct FuzzCase {
  FuzzCaseConfig Config;
  std::string Source; ///< kernel in the textual language
  std::string Reason; ///< what failed when the case was recorded
};

/// Renders \p Case in the corpus file format.
std::string serializeFuzzCase(const FuzzCase &Case);

/// Parses the corpus file format. Returns false (and sets \p Error when
/// non-null) on a malformed header; unknown keys are rejected so typos in
/// hand-edited corpus files surface immediately.
bool parseFuzzCase(const std::string &Text, FuzzCase &Out,
                   std::string *Error = nullptr);

/// Lists the `.slp` files of \p Dir in lexicographic order (empty when the
/// directory does not exist).
std::vector<std::string> listCorpusFiles(const std::string &Dir);

/// Whole-file read/write helpers used by the fuzzer and the replay test.
bool readFile(const std::string &Path, std::string &Out);
bool writeFile(const std::string &Path, const std::string &Contents);

} // namespace slp

#endif // SLP_FUZZ_CORPUS_H
