//===- fuzz/Mutator.h - Structural and textual kernel mutation -*- C++ -*-===//
///
/// \file
/// Seeded mutation operators for the differential fuzzer. Structural
/// mutations rewrite a Kernel in place (swap/duplicate/permute statements,
/// perturb affine subscripts and loop bounds, retype symbols, splice
/// sub-expressions between statements, replace opcodes and constants);
/// they deliberately change the kernel's *meaning* — the fuzzer compares
/// the optimized program against scalar execution of the same mutant — but
/// must never produce an ill-formed kernel, so every mutation is followed
/// by sanitizeKernel/validateKernel. The textual mutator corrupts `.slp`
/// source to stress the parser's error paths.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_FUZZ_MUTATOR_H
#define SLP_FUZZ_MUTATOR_H

#include "ir/Kernel.h"
#include "support/Rng.h"

#include <optional>
#include <string>

namespace slp {

/// The structural mutation taxonomy (docs/fuzzing.md).
enum class MutationKind : uint8_t {
  SwapStatements,          ///< exchange two statements (breaks/creates deps)
  DuplicateStatement,      ///< clone a statement to a random position
  DeleteStatement,         ///< remove a statement (block must stay nonempty)
  PermuteStatements,       ///< shuffle a random statement subrange
  PerturbSubscriptConstant,///< nudge an array subscript's additive constant
  PerturbSubscriptCoeff,   ///< rewrite an index coefficient (stride change)
  PerturbLoopBounds,       ///< change a loop's bounds or step
  RetypeSymbol,            ///< flip a scalar/array element type
  SpliceSubexpression,     ///< graft a subtree of one rhs into another
  ReplaceOpcode,           ///< change one interior node's operation
  PerturbConstant,         ///< change a constant leaf's value
  RedirectOperand,         ///< point a leaf at a different symbol
  AddGuard,                ///< predicate an unguarded statement
  DropGuard,               ///< strip the guard off a predicated statement
  FlipComparison,          ///< negate/replace a comparison node
  ComposeGuard,            ///< and/or a new comparison into a guard
};

/// Number of structural mutation kinds (for stats arrays).
constexpr unsigned NumMutationKinds =
    static_cast<unsigned>(MutationKind::ComposeGuard) + 1;

/// Stable, human-readable name of \p Kind (used in stats and repro files).
const char *mutationKindName(MutationKind Kind);

/// Computes the [Min, Max] range of the flattened element offset of the
/// array reference \p Op over \p K's whole iteration domain. Returns false
/// when \p Op is not an array reference, references a depth outside the
/// loop nest, or the nest has a zero-trip loop (the body never runs).
bool offsetRange(const Kernel &K, const Operand &Op, int64_t &Min,
                 int64_t &Max);

/// Structural well-formedness: symbol ids in range, subscript arity
/// matching array rank, positive steps, a bounded iteration count, every
/// array reference in bounds over the whole domain, and no store to a
/// read-only array. \p Why (when non-null) receives the first violation.
/// Kernels that fail this check would trip interpreter assertions, so the
/// fuzzer never feeds them to the pipeline.
bool validateKernel(const Kernel &K, std::string *Why = nullptr);

/// Repairs the common damage mutations cause instead of rejecting the
/// mutant: clears ReadOnly on stored-to arrays, shifts 1-D subscripts with
/// negative reach, grows 1-D arrays to cover their subscript range, and
/// clamps loop bounds to a bounded iteration count. Returns
/// validateKernel(K) afterwards.
bool sanitizeKernel(Kernel &K);

/// Applies one random structural mutation drawn from \p R. Returns the
/// kind applied, or std::nullopt when the drawn mutation was inapplicable
/// (e.g. DeleteStatement on a single-statement block); the kernel is
/// unchanged in that case. The caller is responsible for sanitizing.
std::optional<MutationKind> mutateKernel(Kernel &K, Rng &R);

/// Corrupts `.slp` source text: truncation, span deletion/duplication,
/// character flips, inserted punctuation, overlong numeric literals,
/// deleted braces. \p Desc (when non-null) receives a short description of
/// the corruption. The result is fed to the parser, which must fail
/// cleanly or parse something the validator can vet — never crash.
std::string mutateSource(const std::string &Source, Rng &R,
                         std::string *Desc = nullptr);

} // namespace slp

#endif // SLP_FUZZ_MUTATOR_H
