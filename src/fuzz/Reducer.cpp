//===- fuzz/Reducer.cpp ---------------------------------------*- C++ -*-===//

#include "fuzz/Reducer.h"

#include "fuzz/Mutator.h"

#include <algorithm>

using namespace slp;

namespace {

/// Tries \p Candidate against validity + predicate; on success replaces
/// \p Best and returns true.
bool accept(Kernel &Best, Kernel Candidate, const FailurePredicate &Fails,
            ReductionStats &Stats) {
  ++Stats.CandidatesTried;
  if (!validateKernel(Candidate) || !Fails(Candidate))
    return false;
  Best = std::move(Candidate);
  ++Stats.CandidatesAccepted;
  return true;
}

/// Rebuilds \p K keeping only statements whose index satisfies \p Keep.
Kernel withStatements(const Kernel &K,
                      const std::function<bool(unsigned)> &Keep) {
  Kernel Out = K.clone();
  BasicBlock Body;
  for (unsigned I = 0; I != K.Body.size(); ++I)
    if (Keep(I))
      Body.append(K.Body.statement(I));
  Out.Body = std::move(Body);
  return Out;
}

/// Classic ddmin over the statement list: remove chunks of shrinking size
/// while the failure persists.
bool ddminStatements(Kernel &Best, const FailurePredicate &Fails,
                     ReductionStats &Stats) {
  bool Changed = false;
  unsigned Chunk = std::max(1u, Best.Body.size() / 2);
  while (Chunk >= 1) {
    bool Removed = false;
    for (unsigned Start = 0; Start < Best.Body.size();) {
      if (Best.Body.size() <= 1)
        break;
      unsigned End = std::min(Start + Chunk, Best.Body.size());
      Kernel Candidate = withStatements(
          Best, [&](unsigned I) { return I < Start || I >= End; });
      if (!Candidate.Body.empty() &&
          accept(Best, std::move(Candidate), Fails, Stats)) {
        Removed = Changed = true; // indices shifted; retry same Start
      } else {
        Start += Chunk;
      }
    }
    if (Chunk == 1)
      break;
    Chunk = Removed ? std::max(1u, Best.Body.size() / 2) : Chunk / 2;
  }
  return Changed;
}

bool shrinkLoops(Kernel &Best, const FailurePredicate &Fails,
                 ReductionStats &Stats) {
  bool Changed = false;
  for (unsigned D = 0; D != Best.Loops.size(); ++D) {
    // Halve the trip count, down to a single iteration.
    for (;;) {
      const Loop &L = Best.Loops[D];
      int64_t Trip = L.tripCount();
      if (Trip <= 1)
        break;
      Kernel Candidate = Best.clone();
      Loop &CL = Candidate.Loops[D];
      CL.Upper = CL.Lower + CL.Step * std::max<int64_t>(1, Trip / 2);
      if (!accept(Best, std::move(Candidate), Fails, Stats))
        break;
      Changed = true;
    }
    // Normalize to lower bound 0 / step 1 when possible.
    if (Best.Loops[D].Lower != 0 || Best.Loops[D].Step != 1) {
      Kernel Candidate = Best.clone();
      Loop &CL = Candidate.Loops[D];
      int64_t Trip = CL.tripCount();
      CL.Lower = 0;
      CL.Step = 1;
      CL.Upper = std::max<int64_t>(Trip, 1);
      Changed |= accept(Best, std::move(Candidate), Fails, Stats);
    }
  }
  // Drop loops no subscript references (coefficient zero everywhere).
  for (unsigned D = 0; D != Best.Loops.size();) {
    bool Used = false;
    for (const Statement &S : Best.Body) {
      auto Check = [&](const Operand &Op) {
        if (!Op.isArray())
          return;
        for (const AffineExpr &Sub : Op.subscripts())
          Used |= Sub.coeff(D) != 0;
      };
      Check(S.lhs());
      S.forEachUse(Check);
      if (Used)
        break;
    }
    if (Used) {
      ++D;
      continue;
    }
    Kernel Candidate = Best.clone();
    Candidate.Loops.erase(Candidate.Loops.begin() + D);
    // Shift coefficients above the dropped depth down by one.
    for (Statement &S : Candidate.Body) {
      auto Shift = [&](Operand &Op) {
        if (!Op.isArray())
          return;
        for (AffineExpr &Sub : Op.subscripts()) {
          AffineExpr NewSub(Sub.constant());
          for (unsigned DD = 0; DD != Sub.numDims(); ++DD) {
            if (DD == D)
              continue;
            NewSub.setCoeff(DD > D ? DD - 1 : DD, Sub.coeff(DD));
          }
          Sub = NewSub;
        }
      };
      Shift(S.lhs());
      S.forEachUseMut(Shift);
    }
    if (!accept(Best, std::move(Candidate), Fails, Stats))
      ++D;
  }
  return Changed;
}

unsigned countNodes(const Expr &E) {
  unsigned N = 1;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    N += countNodes(E.child(I));
  return N;
}

/// Rebuilds \p E with the node at pre-order index \p Target replaced by
/// \p Make(node); other nodes are cloned.
ExprPtr rebuild(const Expr &E, unsigned &Counter, unsigned Target,
                const std::function<ExprPtr(const Expr &)> &Make) {
  if (Counter++ == Target)
    return Make(E);
  if (E.isLeaf())
    return Expr::makeLeaf(E.leaf());
  if (E.numChildren() == 1)
    return Expr::makeUnary(E.opcode(),
                           rebuild(E.child(0), Counter, Target, Make));
  ExprPtr L = rebuild(E.child(0), Counter, Target, Make);
  ExprPtr R = rebuild(E.child(1), Counter, Target, Make);
  if (E.numChildren() == 3) {
    ExprPtr C = rebuild(E.child(2), Counter, Target, Make);
    return Expr::makeTernary(E.opcode(), std::move(L), std::move(R),
                             std::move(C));
  }
  return Expr::makeBinary(E.opcode(), std::move(L), std::move(R));
}

/// One fixed-point pass of node rewrites over \p Get()'s expression,
/// installing accepted rewrites with \p Set. Shared between rhs and guard
/// simplification.
bool simplifyExprOf(
    Kernel &Best, unsigned SI, const FailurePredicate &Fails,
    ReductionStats &Stats,
    const std::function<const Expr &(const Statement &)> &Get,
    const std::function<void(Statement &, ExprPtr)> &Set) {
  bool Changed = false;
  bool Retry = true;
  while (Retry) {
    Retry = false;
    const Statement &S = Best.Body.statement(SI);
    unsigned Nodes = countNodes(Get(S));
    for (unsigned Idx = 0; Idx != Nodes && !Retry; ++Idx) {
      // Candidate rewrites at this node, cheapest-first: hoist a child
      // over an interior node, or collapse a non-constant leaf to 1.0.
      for (unsigned Action = 0; Action != 3 && !Retry; ++Action) {
        unsigned Counter = 0;
        bool Applicable = true;
        ExprPtr NewExpr = rebuild(
            Get(S), Counter, Idx, [&](const Expr &Node) -> ExprPtr {
              if (!Node.isLeaf() && Action < Node.numChildren())
                return Node.child(Action).clone();
              if (Node.isLeaf() && Action == 2 && !Node.leaf().isConstant())
                return Expr::makeLeaf(Operand::makeConstant(1.0));
              Applicable = false;
              return Node.clone();
            });
        if (!Applicable)
          continue;
        Kernel Candidate = Best.clone();
        Set(Candidate.Body.statement(SI), std::move(NewExpr));
        if (accept(Best, std::move(Candidate), Fails, Stats))
          Retry = Changed = true;
      }
    }
  }
  return Changed;
}

bool simplifyExpressions(Kernel &Best, const FailurePredicate &Fails,
                         ReductionStats &Stats) {
  bool Changed = false;
  for (unsigned SI = 0; SI != Best.Body.size(); ++SI) {
    Changed |= simplifyExprOf(
        Best, SI, Fails, Stats,
        [](const Statement &S) -> const Expr & { return S.rhs(); },
        [](Statement &S, ExprPtr NewRhs) {
          S = Statement(S.lhs(), std::move(NewRhs), S.cloneGuard());
        });
    if (Best.Body.statement(SI).hasGuard())
      Changed |= simplifyExprOf(
          Best, SI, Fails, Stats,
          [](const Statement &S) -> const Expr & { return S.guard(); },
          [](Statement &S, ExprPtr NewGuard) {
            S.setGuard(std::move(NewGuard));
          });
  }
  return Changed;
}

/// Tries to delete each statement's guard outright; a repro that does not
/// depend on predication reduces to a straight-line kernel.
bool dropGuards(Kernel &Best, const FailurePredicate &Fails,
                ReductionStats &Stats) {
  bool Changed = false;
  for (unsigned SI = 0; SI != Best.Body.size(); ++SI) {
    if (!Best.Body.statement(SI).hasGuard())
      continue;
    Kernel Candidate = Best.clone();
    Candidate.Body.statement(SI).setGuard(nullptr);
    Changed |= accept(Best, std::move(Candidate), Fails, Stats);
  }
  return Changed;
}

bool simplifySubscripts(Kernel &Best, const FailurePredicate &Fails,
                        ReductionStats &Stats) {
  bool Changed = false;
  // Try zeroing additive constants and normalizing coefficients to 1,
  // one reference at a time.
  for (unsigned SI = 0; SI != Best.Body.size(); ++SI) {
    for (unsigned Which = 0;; ++Which) {
      // Enumerate array operands of statement SI: 0 = lhs, 1.. = leaves.
      Kernel Candidate = Best.clone();
      Statement &S = Candidate.Body.statement(SI);
      unsigned Seen = 0;
      bool Found = false, Mutated = false;
      auto Simplify = [&](Operand &Op) {
        if (!Op.isArray())
          return;
        if (Seen++ != Which)
          return;
        Found = true;
        for (AffineExpr &Sub : Op.subscripts()) {
          if (Sub.constant() != 0) {
            Sub.setConstant(0);
            Mutated = true;
          }
          for (unsigned D = 0; D != Sub.numDims(); ++D)
            if (Sub.coeff(D) != 0 && Sub.coeff(D) != 1) {
              Sub.setCoeff(D, 1);
              Mutated = true;
            }
        }
      };
      Simplify(S.lhs());
      S.forEachUseMut(Simplify);
      if (!Found)
        break;
      if (Mutated)
        Changed |= accept(Best, std::move(Candidate), Fails, Stats);
    }
  }
  return Changed;
}

/// Removes scalars and arrays no operand references, remapping symbol ids.
bool gcSymbols(Kernel &Best, const FailurePredicate &Fails,
               ReductionStats &Stats) {
  std::vector<char> ScalarUsed(Best.Scalars.size(), 0);
  std::vector<char> ArrayUsed(Best.Arrays.size(), 0);
  for (const Statement &S : Best.Body) {
    auto Mark = [&](const Operand &Op) {
      if (Op.isScalar())
        ScalarUsed[Op.symbol()] = 1;
      else if (Op.isArray())
        ArrayUsed[Op.symbol()] = 1;
    };
    Mark(S.lhs());
    S.forEachUse(Mark);
  }
  bool AnyUnused =
      std::count(ScalarUsed.begin(), ScalarUsed.end(), 0) > 0 ||
      std::count(ArrayUsed.begin(), ArrayUsed.end(), 0) > 0;
  if (!AnyUnused)
    return false;

  Kernel Candidate = Best.clone();
  std::vector<SymbolId> ScalarMap(Best.Scalars.size(), 0);
  std::vector<SymbolId> ArrayMap(Best.Arrays.size(), 0);
  std::vector<ScalarSymbol> NewScalars;
  std::vector<ArraySymbol> NewArrays;
  for (unsigned I = 0; I != Best.Scalars.size(); ++I)
    if (ScalarUsed[I]) {
      ScalarMap[I] = static_cast<SymbolId>(NewScalars.size());
      NewScalars.push_back(Best.Scalars[I]);
    }
  for (unsigned I = 0; I != Best.Arrays.size(); ++I)
    if (ArrayUsed[I]) {
      ArrayMap[I] = static_cast<SymbolId>(NewArrays.size());
      NewArrays.push_back(Best.Arrays[I]);
    }
  Candidate.Scalars = std::move(NewScalars);
  Candidate.Arrays = std::move(NewArrays);
  for (Statement &S : Candidate.Body) {
    auto Remap = [&](Operand &Op) {
      if (Op.isScalar())
        Op = Operand::makeScalar(ScalarMap[Op.symbol()]);
      else if (Op.isArray())
        Op = Operand::makeArray(ArrayMap[Op.symbol()], Op.subscripts());
    };
    Remap(S.lhs());
    S.forEachUseMut(Remap);
  }
  return accept(Best, std::move(Candidate), Fails, Stats);
}

/// Tightens 1-D array extents to exactly the elements referenced.
bool shrinkArrays(Kernel &Best, const FailurePredicate &Fails,
                  ReductionStats &Stats) {
  std::vector<int64_t> Needed(Best.Arrays.size(), 1);
  bool Bounded = true;
  for (const Statement &S : Best.Body) {
    auto Scan = [&](const Operand &Op) {
      if (!Op.isArray())
        return;
      int64_t Min = 0, Max = 0;
      if (!offsetRange(Best, Op, Min, Max)) {
        Bounded = false;
        return;
      }
      Needed[Op.symbol()] = std::max(Needed[Op.symbol()], Max + 1);
    };
    Scan(S.lhs());
    S.forEachUse(Scan);
  }
  if (!Bounded)
    return false;
  Kernel Candidate = Best.clone();
  bool Mutated = false;
  for (unsigned A = 0; A != Candidate.Arrays.size(); ++A)
    if (Candidate.Arrays[A].DimSizes.size() == 1 &&
        Candidate.Arrays[A].DimSizes[0] > Needed[A]) {
      Candidate.Arrays[A].DimSizes[0] = Needed[A];
      Mutated = true;
    }
  return Mutated && accept(Best, std::move(Candidate), Fails, Stats);
}

} // namespace

Kernel slp::reduceKernel(const Kernel &Seed, const FailurePredicate &Fails,
                         ReductionStats *Stats, unsigned MaxRounds) {
  ReductionStats Local;
  ReductionStats &S = Stats ? *Stats : Local;
  Kernel Best = Seed.clone();
  for (unsigned Round = 0; Round != MaxRounds; ++Round) {
    ++S.Rounds;
    bool Changed = false;
    Changed |= ddminStatements(Best, Fails, S);
    Changed |= dropGuards(Best, Fails, S);
    Changed |= shrinkLoops(Best, Fails, S);
    Changed |= simplifyExpressions(Best, Fails, S);
    Changed |= simplifySubscripts(Best, Fails, S);
    Changed |= shrinkArrays(Best, Fails, S);
    Changed |= gcSymbols(Best, Fails, S);
    if (!Changed)
      break;
  }
  return Best;
}
