//===- fuzz/Corpus.cpp ----------------------------------------*- C++ -*-===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace slp;

namespace {

const char *optName(OptimizerKind Kind) {
  switch (Kind) {
  case OptimizerKind::Scalar:
    return "scalar";
  case OptimizerKind::Native:
    return "native";
  case OptimizerKind::LarsenSlp:
    return "slp";
  case OptimizerKind::Global:
    return "global";
  case OptimizerKind::GlobalLayout:
    return "global+layout";
  }
  return "<invalid>";
}

bool parseOpt(const std::string &V, OptimizerKind &Out) {
  if (V == "scalar")
    Out = OptimizerKind::Scalar;
  else if (V == "native")
    Out = OptimizerKind::Native;
  else if (V == "slp")
    Out = OptimizerKind::LarsenSlp;
  else if (V == "global")
    Out = OptimizerKind::Global;
  else if (V == "global+layout")
    Out = OptimizerKind::GlobalLayout;
  else
    return false;
  return true;
}

bool parseUnsigned(const std::string &V, unsigned &Out) {
  char *End = nullptr;
  unsigned long N = std::strtoul(V.c_str(), &End, 10);
  if (End == V.c_str() || *End != '\0')
    return false;
  Out = static_cast<unsigned>(N);
  return true;
}

} // namespace

const char *slp::bugInjectionName(BugInjection Inject) {
  switch (Inject) {
  case BugInjection::None:
    return "none";
  case BugInjection::DropItem:
    return "drop-item";
  case BugInjection::DuplicateLane:
    return "dup-lane";
  case BugInjection::SwapDependent:
    return "swap-dependent";
  }
  return "<invalid>";
}

bool slp::parseBugInjection(const std::string &Name, BugInjection &Out) {
  if (Name == "none")
    Out = BugInjection::None;
  else if (Name == "drop-item")
    Out = BugInjection::DropItem;
  else if (Name == "dup-lane")
    Out = BugInjection::DuplicateLane;
  else if (Name == "swap-dependent")
    Out = BugInjection::SwapDependent;
  else
    return false;
  return true;
}

std::string slp::serializeFuzzCase(const FuzzCase &Case) {
  std::ostringstream Out;
  Out << "// fuzz: opt=" << optName(Case.Config.Kind)
      << " bits=" << Case.Config.DatapathBits
      << " grouping=" << groupingImplName(Case.Config.Grouping)
      << " threads=" << Case.Config.Threads << "\n";
  Out << "// fuzz: env-seeds=";
  for (unsigned I = 0; I != Case.Config.EnvSeeds.size(); ++I)
    Out << (I ? "," : "") << Case.Config.EnvSeeds[I];
  Out << "\n";
  // Defaults stay implicit so pre-engine corpus files round-trip byte-
  // identically.
  if (Case.Config.Exec != ExecEngineKind::Optimized)
    Out << "// fuzz: exec=" << execEngineName(Case.Config.Exec) << "\n";
  if (Case.Config.Inject != BugInjection::None)
    Out << "// fuzz: inject=" << bugInjectionName(Case.Config.Inject)
        << "\n";
  if (!Case.Config.VerifyVector)
    Out << "// fuzz: verify-vector=off\n";
  if (Case.Config.Predication)
    Out << "// fuzz: predication=on\n";
  if (Case.Config.Native)
    Out << "// fuzz: native=on\n";
  if (!Case.Reason.empty()) {
    // Keep the reason one comment line per source line.
    std::istringstream In(Case.Reason);
    std::string Line;
    while (std::getline(In, Line))
      Out << "// reason: " << Line << "\n";
  }
  Out << Case.Source;
  if (Case.Source.empty() || Case.Source.back() != '\n')
    Out << "\n";
  return Out.str();
}

bool slp::parseFuzzCase(const std::string &Text, FuzzCase &Out,
                        std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  Out = FuzzCase();
  bool SawSeeds = false;
  std::istringstream In(Text);
  std::string Line;
  std::ostringstream Body;
  bool InHeader = true;
  while (std::getline(In, Line)) {
    if (InHeader && Line.rfind("// reason: ", 0) == 0) {
      if (!Out.Reason.empty())
        Out.Reason += "\n";
      Out.Reason += Line.substr(11);
      continue;
    }
    if (InHeader && Line.rfind("// fuzz:", 0) == 0) {
      std::istringstream Fields(Line.substr(8));
      std::string Field;
      while (Fields >> Field) {
        size_t Eq = Field.find('=');
        if (Eq == std::string::npos)
          return Fail("malformed fuzz header field '" + Field + "'");
        std::string Key = Field.substr(0, Eq);
        std::string Value = Field.substr(Eq + 1);
        if (Key == "opt") {
          if (!parseOpt(Value, Out.Config.Kind))
            return Fail("unknown optimizer '" + Value + "'");
        } else if (Key == "bits") {
          if (!parseUnsigned(Value, Out.Config.DatapathBits) ||
              Out.Config.DatapathBits < 64)
            return Fail("bad bits value '" + Value + "'");
        } else if (Key == "grouping") {
          if (Value == "optimized")
            Out.Config.Grouping = GroupingImpl::Optimized;
          else if (Value == "reference")
            Out.Config.Grouping = GroupingImpl::Reference;
          else if (Value == "exact")
            Out.Config.Grouping = GroupingImpl::Exact;
          else
            return Fail("unknown grouping engine '" + Value + "'");
        } else if (Key == "threads") {
          if (!parseUnsigned(Value, Out.Config.Threads))
            return Fail("bad threads value '" + Value + "'");
        } else if (Key == "env-seeds") {
          Out.Config.EnvSeeds.clear();
          std::istringstream Seeds(Value);
          std::string Seed;
          while (std::getline(Seeds, Seed, ',')) {
            char *End = nullptr;
            uint64_t S = std::strtoull(Seed.c_str(), &End, 10);
            if (End == Seed.c_str() || *End != '\0')
              return Fail("bad env seed '" + Seed + "'");
            Out.Config.EnvSeeds.push_back(S);
          }
          if (Out.Config.EnvSeeds.empty())
            return Fail("env-seeds requires at least one seed");
          SawSeeds = true;
        } else if (Key == "exec") {
          std::optional<ExecEngineKind> Kind = parseExecEngineName(Value);
          if (!Kind)
            return Fail("unknown exec engine '" + Value + "'");
          Out.Config.Exec = *Kind;
        } else if (Key == "inject") {
          if (!parseBugInjection(Value, Out.Config.Inject))
            return Fail("unknown injection '" + Value + "'");
        } else if (Key == "verify-vector") {
          if (Value == "on")
            Out.Config.VerifyVector = true;
          else if (Value == "off")
            Out.Config.VerifyVector = false;
          else
            return Fail("bad verify-vector value '" + Value + "'");
        } else if (Key == "predication") {
          if (Value == "on")
            Out.Config.Predication = true;
          else if (Value == "off")
            Out.Config.Predication = false;
          else
            return Fail("bad predication value '" + Value + "'");
        } else if (Key == "native") {
          if (Value == "on")
            Out.Config.Native = true;
          else if (Value == "off")
            Out.Config.Native = false;
          else
            return Fail("bad native value '" + Value + "'");
        } else {
          return Fail("unknown fuzz header key '" + Key + "'");
        }
      }
      continue;
    }
    if (!Line.empty() && Line.rfind("//", 0) != 0)
      InHeader = false;
    Body << Line << "\n";
  }
  (void)SawSeeds;
  Out.Source = Body.str();
  if (Out.Source.find("kernel") == std::string::npos)
    return Fail("corpus file contains no kernel definition");
  return true;
}

std::vector<std::string> slp::listCorpusFiles(const std::string &Dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> Files;
  std::error_code Ec;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir, Ec)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() == ".slp")
      Files.push_back(Entry.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

bool slp::readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

bool slp::writeFile(const std::string &Path, const std::string &Contents) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::path P(Path);
  if (P.has_parent_path())
    fs::create_directories(P.parent_path(), Ec);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Contents;
  return static_cast<bool>(Out);
}
