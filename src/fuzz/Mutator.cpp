//===- fuzz/Mutator.cpp ---------------------------------------*- C++ -*-===//

#include "fuzz/Mutator.h"

#include "ir/Interpreter.h"

#include <algorithm>
#include <functional>

using namespace slp;

namespace {

/// Upper bound on the whole-nest iteration count of a fuzz kernel; keeps
/// the execution-based equivalence check fast and the reducer snappy.
constexpr int64_t MaxFuzzIterations = 4096;

/// Invokes \p Fn on every operand of \p K: each statement's lhs, every
/// rhs leaf, and every guard leaf, in statement order.
void forEachOperand(Kernel &K, const std::function<void(Operand &)> &Fn) {
  for (Statement &S : K.Body) {
    Fn(S.lhs());
    S.forEachUseMut(Fn);
  }
}

void forEachOperandConst(const Kernel &K,
                         const std::function<void(const Operand &)> &Fn) {
  for (const Statement &S : K.Body) {
    Fn(S.lhs());
    S.forEachUse(Fn);
  }
}

unsigned countNodes(const Expr &E) {
  unsigned N = 1;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    N += countNodes(E.child(I));
  return N;
}

const Expr *nthNode(const Expr &E, unsigned &Counter, unsigned Target) {
  if (Counter++ == Target)
    return &E;
  for (unsigned I = 0; I != E.numChildren(); ++I)
    if (const Expr *Found = nthNode(E.child(I), Counter, Target))
      return Found;
  return nullptr;
}

/// Rebuilds \p E, replacing the node with pre-order index \p Target by
/// whatever \p Make produces from it; all other nodes are cloned.
ExprPtr rebuildWithReplacement(
    const Expr &E, unsigned &Counter, unsigned Target,
    const std::function<ExprPtr(const Expr &)> &Make) {
  if (Counter++ == Target)
    return Make(E);
  if (E.isLeaf())
    return Expr::makeLeaf(E.leaf());
  if (E.numChildren() == 1)
    return Expr::makeUnary(
        E.opcode(), rebuildWithReplacement(E.child(0), Counter, Target, Make));
  if (E.numChildren() == 3) {
    ExprPtr C0 = rebuildWithReplacement(E.child(0), Counter, Target, Make);
    ExprPtr C1 = rebuildWithReplacement(E.child(1), Counter, Target, Make);
    ExprPtr C2 = rebuildWithReplacement(E.child(2), Counter, Target, Make);
    return Expr::makeTernary(E.opcode(), std::move(C0), std::move(C1),
                             std::move(C2));
  }
  ExprPtr L = rebuildWithReplacement(E.child(0), Counter, Target, Make);
  ExprPtr R = rebuildWithReplacement(E.child(1), Counter, Target, Make);
  return Expr::makeBinary(E.opcode(), std::move(L), std::move(R));
}

/// Replaces the pre-order node \p Target of statement \p S's rhs,
/// preserving the statement's guard.
void replaceRhsNode(Statement &S, unsigned Target,
                    const std::function<ExprPtr(const Expr &)> &Make) {
  unsigned Counter = 0;
  ExprPtr NewRhs = rebuildWithReplacement(S.rhs(), Counter, Target, Make);
  S = Statement(S.lhs(), std::move(NewRhs), S.cloneGuard());
}

/// Collects (statement index, pre-order leaf index among *operands*) for
/// every array reference, including lhs targets when \p IncludeLhs.
struct ArrayRefSite {
  unsigned Stmt;
  bool IsLhs;
  unsigned LeafIndex; ///< forEachUse index: rhs leaves, then guard leaves
};

std::vector<ArrayRefSite> collectArrayRefs(const Kernel &K, bool IncludeLhs) {
  std::vector<ArrayRefSite> Sites;
  for (unsigned SI = 0; SI != K.Body.size(); ++SI) {
    const Statement &S = K.Body.statement(SI);
    if (IncludeLhs && S.lhs().isArray())
      Sites.push_back({SI, true, 0});
    // Guard leaves are uses like any other (forEachUse order: rhs leaves
    // first, then guard leaves) — a guard's array reference must be as
    // mutable as one on the rhs, or the fuzzer never perturbs it.
    unsigned Leaf = 0;
    S.forEachUse([&](const Operand &Op) {
      if (Op.isArray())
        Sites.push_back({SI, false, Leaf});
      ++Leaf;
    });
  }
  return Sites;
}

/// Applies \p Fn to the \p LeafIndex-th use of statement \p S, counting
/// in forEachUse order (rhs leaves, then guard leaves).
void mutateUseLeaf(Statement &S, unsigned LeafIndex,
                   const std::function<void(Operand &)> &Fn) {
  unsigned Leaf = 0;
  S.forEachUseMut([&](Operand &Op) {
    if (Leaf++ == LeafIndex)
      Fn(Op);
  });
}

ScalarType randomType(Rng &R) {
  switch (R.nextBelow(4)) {
  case 0:
    return ScalarType::Int32;
  case 1:
    return ScalarType::Int64;
  case 2:
    return ScalarType::Float64;
  default:
    return ScalarType::Float32;
  }
}

} // namespace

const char *slp::mutationKindName(MutationKind Kind) {
  switch (Kind) {
  case MutationKind::SwapStatements:
    return "swap-statements";
  case MutationKind::DuplicateStatement:
    return "duplicate-statement";
  case MutationKind::DeleteStatement:
    return "delete-statement";
  case MutationKind::PermuteStatements:
    return "permute-statements";
  case MutationKind::PerturbSubscriptConstant:
    return "perturb-subscript-constant";
  case MutationKind::PerturbSubscriptCoeff:
    return "perturb-subscript-coeff";
  case MutationKind::PerturbLoopBounds:
    return "perturb-loop-bounds";
  case MutationKind::RetypeSymbol:
    return "retype-symbol";
  case MutationKind::SpliceSubexpression:
    return "splice-subexpression";
  case MutationKind::ReplaceOpcode:
    return "replace-opcode";
  case MutationKind::PerturbConstant:
    return "perturb-constant";
  case MutationKind::RedirectOperand:
    return "redirect-operand";
  case MutationKind::AddGuard:
    return "add-guard";
  case MutationKind::DropGuard:
    return "drop-guard";
  case MutationKind::FlipComparison:
    return "flip-comparison";
  case MutationKind::ComposeGuard:
    return "compose-guard";
  }
  return "<invalid>";
}

bool slp::offsetRange(const Kernel &K, const Operand &Op, int64_t &Min,
                      int64_t &Max) {
  if (!Op.isArray())
    return false;
  const ArraySymbol &A = K.array(Op.symbol());
  if (Op.subscripts().size() != A.DimSizes.size())
    return false;
  AffineExpr Flat = flattenArrayRef(A, Op.subscripts());
  if (Flat.numDims() > K.Loops.size())
    return false;
  for (const Loop &L : K.Loops)
    if (L.tripCount() == 0)
      return false; // body never executes; no meaningful range
  Min = Max = Flat.constant();
  for (unsigned D = 0; D != static_cast<unsigned>(K.Loops.size()); ++D) {
    int64_t C = Flat.coeff(D);
    if (C == 0)
      continue;
    const Loop &L = K.Loops[D];
    int64_t Lo = L.Lower;
    int64_t Hi = L.Lower + (L.tripCount() - 1) * L.Step;
    Min += C > 0 ? C * Lo : C * Hi;
    Max += C > 0 ? C * Hi : C * Lo;
  }
  return true;
}

bool slp::validateKernel(const Kernel &K, std::string *Why) {
  auto Fail = [&](const std::string &Msg) {
    if (Why)
      *Why = Msg;
    return false;
  };
  if (K.Body.empty())
    return Fail("empty body");
  for (const Loop &L : K.Loops)
    if (L.Step <= 0)
      return Fail("non-positive loop step");
  if (K.totalIterations() > MaxFuzzIterations)
    return Fail("iteration count exceeds the fuzz cap");
  for (const ArraySymbol &A : K.Arrays) {
    if (A.DimSizes.empty())
      return Fail("array '" + A.Name + "' has no dimensions");
    for (int64_t D : A.DimSizes)
      if (D <= 0)
        return Fail("array '" + A.Name + "' has a non-positive dimension");
    if (A.numElements() > (1 << 22))
      return Fail("array '" + A.Name + "' exceeds the fuzz size cap");
  }
  bool ZeroTrip = false;
  for (const Loop &L : K.Loops)
    ZeroTrip |= L.tripCount() == 0;

  bool Ok = true;
  std::string Issue;
  forEachOperandConst(K, [&](const Operand &Op) {
    if (!Ok || Op.isConstant())
      return;
    if (Op.isScalar()) {
      if (Op.symbol() >= K.Scalars.size()) {
        Ok = false;
        Issue = "scalar id out of range";
      }
      return;
    }
    if (Op.symbol() >= K.Arrays.size()) {
      Ok = false;
      Issue = "array id out of range";
      return;
    }
    const ArraySymbol &A = K.Arrays[Op.symbol()];
    if (Op.subscripts().size() != A.DimSizes.size()) {
      Ok = false;
      Issue = "subscript arity mismatch on array '" + A.Name + "'";
      return;
    }
    for (const AffineExpr &Sub : Op.subscripts())
      if (Sub.numDims() > K.Loops.size()) {
        Ok = false;
        Issue = "subscript references a loop depth outside the nest";
        return;
      }
    if (ZeroTrip)
      return; // never executed; bounds are irrelevant
    int64_t Min = 0, Max = 0;
    if (!offsetRange(K, Op, Min, Max)) {
      Ok = false;
      Issue = "cannot bound subscripts of array '" + A.Name + "'";
      return;
    }
    if (Min < 0 || Max >= A.numElements()) {
      Ok = false;
      Issue = "array '" + A.Name + "' reference out of bounds [" +
              std::to_string(Min) + ", " + std::to_string(Max) + "] of " +
              std::to_string(A.numElements()) + " elements";
    }
  });
  if (!Ok)
    return Fail(Issue);

  // Stores to read-only arrays would break the layout stage's replication
  // legality; sanitizeKernel clears the flag instead.
  for (const Statement &S : K.Body)
    if (S.lhs().isArray() && S.lhs().symbol() < K.Arrays.size() &&
        K.Arrays[S.lhs().symbol()].ReadOnly)
      return Fail("store to read-only array '" +
                  K.Arrays[S.lhs().symbol()].Name + "'");
  return true;
}

bool slp::sanitizeKernel(Kernel &K) {
  // Clamp loop bounds so the nest stays executable in bounded time.
  for (Loop &L : K.Loops) {
    if (L.Step <= 0)
      L.Step = 1;
    L.Lower = std::clamp<int64_t>(L.Lower, -64, 64);
    if (L.Upper > L.Lower + 256)
      L.Upper = L.Lower + 256;
  }
  while (K.totalIterations() > MaxFuzzIterations)
    for (Loop &L : K.Loops)
      if (L.tripCount() > 1) {
        L.Upper = L.Lower + (L.Upper - L.Lower) / 2;
        break;
      }

  // A mutated store target may sit in a read-only array.
  for (const Statement &S : K.Body)
    if (S.lhs().isArray() && S.lhs().symbol() < K.Arrays.size())
      K.array(S.lhs().symbol()).ReadOnly = false;

  // Shift 1-D references with negative reach into non-negative territory,
  // then grow 1-D arrays to cover the largest offset they receive.
  bool ZeroTrip = false;
  for (const Loop &L : K.Loops)
    ZeroTrip |= L.tripCount() == 0;
  if (!ZeroTrip) {
    forEachOperand(K, [&](Operand &Op) {
      if (!Op.isArray() || Op.symbol() >= K.Arrays.size() ||
          Op.subscripts().size() != 1 ||
          K.Arrays[Op.symbol()].DimSizes.size() != 1)
        return;
      int64_t Min = 0, Max = 0;
      if (!offsetRange(K, Op, Min, Max))
        return;
      if (Min < 0)
        Op.subscripts()[0].setConstant(Op.subscripts()[0].constant() - Min);
    });
    std::vector<int64_t> Needed(K.Arrays.size(), 0);
    bool Bounded = true;
    forEachOperandConst(K, [&](const Operand &Op) {
      if (!Op.isArray() || Op.symbol() >= K.Arrays.size())
        return;
      int64_t Min = 0, Max = 0;
      if (!offsetRange(K, Op, Min, Max)) {
        Bounded = false;
        return;
      }
      Needed[Op.symbol()] = std::max(Needed[Op.symbol()], Max + 1);
    });
    if (Bounded)
      for (unsigned A = 0; A != K.Arrays.size(); ++A)
        if (K.Arrays[A].DimSizes.size() == 1 && Needed[A] > 0 &&
            Needed[A] <= (1 << 22) &&
            K.Arrays[A].DimSizes[0] < Needed[A])
          K.Arrays[A].DimSizes[0] = Needed[A];
  }
  return validateKernel(K);
}

std::optional<MutationKind> slp::mutateKernel(Kernel &K, Rng &R) {
  if (K.Body.empty())
    return std::nullopt;
  MutationKind Kind =
      static_cast<MutationKind>(R.nextBelow(NumMutationKinds));
  unsigned N = K.Body.size();
  switch (Kind) {
  case MutationKind::SwapStatements: {
    if (N < 2)
      return std::nullopt;
    unsigned A = static_cast<unsigned>(R.nextBelow(N));
    unsigned B = static_cast<unsigned>(R.nextBelow(N));
    if (A == B)
      B = (B + 1) % N;
    std::swap(K.Body.statement(A), K.Body.statement(B));
    return Kind;
  }
  case MutationKind::DuplicateStatement: {
    if (N >= 24)
      return std::nullopt; // keep the pipeline runs small
    unsigned A = static_cast<unsigned>(R.nextBelow(N));
    K.Body.append(K.Body.statement(A));
    // Rotate the clone to a random position.
    unsigned Pos = static_cast<unsigned>(R.nextBelow(N + 1));
    for (unsigned I = N; I > Pos; --I)
      std::swap(K.Body.statement(I), K.Body.statement(I - 1));
    return Kind;
  }
  case MutationKind::DeleteStatement: {
    if (N < 2)
      return std::nullopt;
    unsigned A = static_cast<unsigned>(R.nextBelow(N));
    for (unsigned I = A; I + 1 < N; ++I)
      std::swap(K.Body.statement(I), K.Body.statement(I + 1));
    // Rebuild the block one statement shorter.
    BasicBlock NewBody;
    for (unsigned I = 0; I + 1 < N; ++I)
      NewBody.append(K.Body.statement(I));
    K.Body = std::move(NewBody);
    return Kind;
  }
  case MutationKind::PermuteStatements: {
    if (N < 3)
      return std::nullopt;
    unsigned Lo = static_cast<unsigned>(R.nextBelow(N - 1));
    unsigned Hi = Lo + 1 +
                  static_cast<unsigned>(R.nextBelow(N - Lo - 1));
    for (unsigned I = Hi; I > Lo; --I) {
      unsigned J = Lo + static_cast<unsigned>(R.nextBelow(I - Lo + 1));
      std::swap(K.Body.statement(I), K.Body.statement(J));
    }
    return Kind;
  }
  case MutationKind::PerturbSubscriptConstant:
  case MutationKind::PerturbSubscriptCoeff: {
    std::vector<ArrayRefSite> Sites = collectArrayRefs(K, /*IncludeLhs=*/true);
    if (Sites.empty())
      return std::nullopt;
    const ArrayRefSite &Site = Sites[R.nextBelow(Sites.size())];
    Statement &S = K.Body.statement(Site.Stmt);
    auto Perturb = [&](Operand &Op) {
      if (!Op.isArray() || Op.subscripts().empty())
        return;
      AffineExpr &Sub =
          Op.subscripts()[R.nextBelow(Op.subscripts().size())];
      if (Kind == MutationKind::PerturbSubscriptConstant)
        Sub.setConstant(Sub.constant() + R.nextInRange(-4, 4));
      else if (!K.Loops.empty())
        Sub.setCoeff(static_cast<unsigned>(R.nextBelow(K.Loops.size())),
                     R.nextInRange(0, 3));
    };
    if (Site.IsLhs)
      Perturb(S.lhs());
    else
      mutateUseLeaf(S, Site.LeafIndex, Perturb);
    return Kind;
  }
  case MutationKind::PerturbLoopBounds: {
    if (K.Loops.empty())
      return std::nullopt;
    Loop &L = K.Loops[R.nextBelow(K.Loops.size())];
    switch (R.nextBelow(3)) {
    case 0:
      L.Lower += R.nextInRange(-4, 4);
      break;
    case 1:
      L.Upper = L.Lower + R.nextInRange(0, 32);
      break;
    default:
      L.Step = R.nextInRange(1, 4);
      break;
    }
    return Kind;
  }
  case MutationKind::RetypeSymbol: {
    uint64_t Total = K.Scalars.size() + K.Arrays.size();
    if (Total == 0)
      return std::nullopt;
    uint64_t Pick = R.nextBelow(Total);
    if (Pick < K.Scalars.size())
      K.Scalars[Pick].Ty = randomType(R);
    else
      K.Arrays[Pick - K.Scalars.size()].Ty = randomType(R);
    return Kind;
  }
  case MutationKind::SpliceSubexpression: {
    unsigned Dst = static_cast<unsigned>(R.nextBelow(N));
    unsigned Src = static_cast<unsigned>(R.nextBelow(N));
    const Statement &From = K.Body.statement(Src);
    unsigned FromNodes = countNodes(From.rhs());
    unsigned Counter = 0;
    const Expr *Donor = nthNode(From.rhs(), Counter,
                                static_cast<unsigned>(R.nextBelow(FromNodes)));
    if (!Donor)
      return std::nullopt;
    ExprPtr DonorClone = Donor->clone();
    Statement &To = K.Body.statement(Dst);
    unsigned ToNodes = countNodes(To.rhs());
    if (ToNodes + countNodes(*DonorClone) > 64)
      return std::nullopt; // cap expression growth
    unsigned Target = static_cast<unsigned>(R.nextBelow(ToNodes));
    replaceRhsNode(To, Target,
                   [&](const Expr &) { return std::move(DonorClone); });
    return Kind;
  }
  case MutationKind::ReplaceOpcode: {
    unsigned SI = static_cast<unsigned>(R.nextBelow(N));
    Statement &S = K.Body.statement(SI);
    unsigned Nodes = countNodes(S.rhs());
    // Collect interior node indices.
    std::vector<unsigned> Interior;
    for (unsigned Idx = 0; Idx != Nodes; ++Idx) {
      unsigned C = 0;
      const Expr *Node = nthNode(S.rhs(), C, Idx);
      if (Node && !Node->isLeaf())
        Interior.push_back(Idx);
    }
    if (Interior.empty())
      return std::nullopt;
    unsigned Target = Interior[R.nextBelow(Interior.size())];
    static const OpCode Binary[] = {OpCode::Add, OpCode::Sub, OpCode::Mul,
                                    OpCode::Div, OpCode::Min, OpCode::Max};
    static const OpCode Unary[] = {OpCode::Neg, OpCode::Sqrt, OpCode::Abs};
    OpCode NewBin = Binary[R.nextBelow(6)];
    OpCode NewUn = Unary[R.nextBelow(3)];
    replaceRhsNode(S, Target, [&](const Expr &Old) -> ExprPtr {
      if (Old.numChildren() == 1)
        return Expr::makeUnary(NewUn, Old.child(0).clone());
      return Expr::makeBinary(NewBin, Old.child(0).clone(),
                              Old.child(1).clone());
    });
    return Kind;
  }
  case MutationKind::PerturbConstant: {
    unsigned SI = static_cast<unsigned>(R.nextBelow(N));
    Statement &S = K.Body.statement(SI);
    bool Mutated = false;
    S.forEachUseMut([&](Operand &Op) {
      if (Mutated || !Op.isConstant())
        return;
      if (R.nextBelow(2) == 0)
        return; // skip some constants so later ones get picked too
      double V = static_cast<double>(R.nextInRange(-16, 16)) * 0.25;
      Op = Operand::makeConstant(V);
      Mutated = true;
    });
    return Mutated ? std::optional<MutationKind>(Kind) : std::nullopt;
  }
  case MutationKind::RedirectOperand: {
    unsigned SI = static_cast<unsigned>(R.nextBelow(N));
    Statement &S = K.Body.statement(SI);
    bool Mutated = false;
    auto Redirect = [&](Operand &Op) {
      if (Mutated)
        return;
      if (Op.isScalar() && !K.Scalars.empty()) {
        Op = Operand::makeScalar(
            static_cast<SymbolId>(R.nextBelow(K.Scalars.size())));
        Mutated = true;
      } else if (Op.isArray()) {
        // Retarget to another array of the same rank.
        std::vector<SymbolId> SameRank;
        for (unsigned A = 0; A != K.Arrays.size(); ++A)
          if (K.Arrays[A].DimSizes.size() == Op.subscripts().size())
            SameRank.push_back(A);
        if (SameRank.empty())
          return;
        Op = Operand::makeArray(SameRank[R.nextBelow(SameRank.size())],
                                Op.subscripts());
        Mutated = true;
      }
    };
    S.forEachUseMut(Redirect);
    return Mutated ? std::optional<MutationKind>(Kind) : std::nullopt;
  }
  case MutationKind::AddGuard: {
    std::vector<unsigned> Cands;
    for (unsigned I = 0; I != N; ++I)
      if (!K.Body.statement(I).hasGuard())
        Cands.push_back(I);
    if (Cands.empty())
      return std::nullopt;
    Statement &S = K.Body.statement(Cands[R.nextBelow(Cands.size())]);
    // Predicate on a clone of a random rhs leaf compared against a small
    // constant; constant leaves yield constant guards, which exercises the
    // if-converter's folding paths.
    std::vector<Operand> Leaves;
    S.forEachUse([&](const Operand &Op) { Leaves.push_back(Op); });
    if (Leaves.empty())
      return std::nullopt;
    static const OpCode Cmps[] = {OpCode::CmpLT, OpCode::CmpLE,
                                  OpCode::CmpGT, OpCode::CmpGE,
                                  OpCode::CmpEQ, OpCode::CmpNE};
    double Threshold = static_cast<double>(R.nextInRange(-4, 4)) * 0.5;
    S.setGuard(Expr::makeBinary(
        Cmps[R.nextBelow(6)],
        Expr::makeLeaf(Leaves[R.nextBelow(Leaves.size())]),
        Expr::makeLeaf(Operand::makeConstant(Threshold))));
    return Kind;
  }
  case MutationKind::DropGuard: {
    std::vector<unsigned> Cands;
    for (unsigned I = 0; I != N; ++I)
      if (K.Body.statement(I).hasGuard())
        Cands.push_back(I);
    if (Cands.empty())
      return std::nullopt;
    K.Body.statement(Cands[R.nextBelow(Cands.size())]).setGuard(nullptr);
    return Kind;
  }
  case MutationKind::FlipComparison: {
    struct CmpSite {
      unsigned Stmt;
      bool InGuard;
      unsigned Node;
    };
    std::vector<CmpSite> Sites;
    for (unsigned I = 0; I != N; ++I) {
      const Statement &S = K.Body.statement(I);
      auto Collect = [&](const Expr &E, bool InGuard) {
        unsigned Nodes = countNodes(E);
        for (unsigned Idx = 0; Idx != Nodes; ++Idx) {
          unsigned C = 0;
          const Expr *Node = nthNode(E, C, Idx);
          if (Node && !Node->isLeaf() && isCompareOp(Node->opcode()))
            Sites.push_back({I, InGuard, Idx});
        }
      };
      Collect(S.rhs(), false);
      if (S.hasGuard())
        Collect(S.guard(), true);
    }
    if (Sites.empty())
      return std::nullopt;
    const CmpSite &Site = Sites[R.nextBelow(Sites.size())];
    Statement &S = K.Body.statement(Site.Stmt);
    static const OpCode Cmps[] = {OpCode::CmpLT, OpCode::CmpLE,
                                  OpCode::CmpGT, OpCode::CmpGE,
                                  OpCode::CmpEQ, OpCode::CmpNE};
    OpCode Random = Cmps[R.nextBelow(6)];
    bool Negate = R.nextBelow(2) == 0;
    auto Flip = [&](const Expr &Old) -> ExprPtr {
      OpCode NewOp = Negate ? negatedCompare(Old.opcode()) : Random;
      return Expr::makeBinary(NewOp, Old.child(0).clone(),
                              Old.child(1).clone());
    };
    if (Site.InGuard) {
      unsigned Counter = 0;
      S.setGuard(rebuildWithReplacement(S.guard(), Counter, Site.Node, Flip));
    } else {
      replaceRhsNode(S, Site.Node, Flip);
    }
    return Kind;
  }
  case MutationKind::ComposeGuard: {
    std::vector<unsigned> Cands;
    for (unsigned I = 0; I != N; ++I)
      if (K.Body.statement(I).hasGuard())
        Cands.push_back(I);
    if (Cands.empty())
      return std::nullopt;
    Statement &S = K.Body.statement(Cands[R.nextBelow(Cands.size())]);
    if (countNodes(S.guard()) > 24)
      return std::nullopt; // cap guard growth
    std::vector<Operand> Leaves;
    S.forEachUse([&](const Operand &Op) { Leaves.push_back(Op); });
    if (Leaves.empty())
      return std::nullopt;
    static const OpCode Cmps[] = {OpCode::CmpLT, OpCode::CmpLE,
                                  OpCode::CmpGT, OpCode::CmpGE,
                                  OpCode::CmpEQ, OpCode::CmpNE};
    ExprPtr Atom = Expr::makeBinary(
        Cmps[R.nextBelow(6)],
        Expr::makeLeaf(Leaves[R.nextBelow(Leaves.size())]),
        Expr::makeLeaf(Operand::makeConstant(
            static_cast<double>(R.nextInRange(-4, 4)) * 0.5)));
    // Conjunction: select(old, atom, 0); disjunction: select(old, 1, atom).
    if (R.nextBelow(2) == 0)
      S.setGuard(Expr::makeSelect(
          S.cloneGuard(), std::move(Atom),
          Expr::makeLeaf(Operand::makeConstant(0.0))));
    else
      S.setGuard(Expr::makeSelect(
          S.cloneGuard(), Expr::makeLeaf(Operand::makeConstant(1.0)),
          std::move(Atom)));
    return Kind;
  }
  }
  return std::nullopt;
}

std::string slp::mutateSource(const std::string &Source, Rng &R,
                              std::string *Desc) {
  std::string Out = Source;
  auto Describe = [&](const char *What) {
    if (Desc)
      *Desc = What;
  };
  if (Out.empty()) {
    Describe("empty-input");
    return Out;
  }
  switch (R.nextBelow(8)) {
  case 0: { // truncate at a random point (mid-token included)
    Out.resize(R.nextBelow(Out.size()));
    Describe("truncate");
    break;
  }
  case 1: { // delete a random span
    size_t Start = R.nextBelow(Out.size());
    size_t Len = 1 + R.nextBelow(16);
    Out.erase(Start, Len);
    Describe("delete-span");
    break;
  }
  case 2: { // duplicate a random span
    size_t Start = R.nextBelow(Out.size());
    size_t Len = std::min<size_t>(1 + R.nextBelow(24), Out.size() - Start);
    Out.insert(Start, Out.substr(Start, Len));
    Describe("duplicate-span");
    break;
  }
  case 3: { // flip one character to a random printable
    size_t At = R.nextBelow(Out.size());
    Out[At] = static_cast<char>(' ' + R.nextBelow(95));
    Describe("flip-char");
    break;
  }
  case 4: { // insert structural punctuation
    static const char Punct[] = "[]{}();=*+-.,";
    size_t At = R.nextBelow(Out.size() + 1);
    Out.insert(Out.begin() + static_cast<ptrdiff_t>(At),
               Punct[R.nextBelow(sizeof(Punct) - 1)]);
    Describe("insert-punct");
    break;
  }
  case 5: { // replace the first digit run with an overlong literal
    size_t At = Out.find_first_of("0123456789");
    if (At == std::string::npos) {
      Describe("overlong-literal-skip");
      break;
    }
    size_t End = Out.find_first_not_of("0123456789", At);
    static const char *Longs[] = {
        "123456789012345678901234567890",
        "99999999999999999999",
        "1e99999",
        "184467440737095516159",
    };
    Out.replace(At, End == std::string::npos ? Out.size() - At : End - At,
                Longs[R.nextBelow(4)]);
    Describe("overlong-literal");
    break;
  }
  case 6: { // strip every closing brace (unterminated nest)
    Out.erase(std::remove(Out.begin(), Out.end(), '}'), Out.end());
    Describe("strip-braces");
    break;
  }
  default: { // duplicate a whole line
    size_t LineStart = R.nextBelow(Out.size());
    LineStart = Out.rfind('\n', LineStart);
    LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
    size_t LineEnd = Out.find('\n', LineStart);
    LineEnd = LineEnd == std::string::npos ? Out.size() : LineEnd + 1;
    Out.insert(LineStart, Out.substr(LineStart, LineEnd - LineStart));
    Describe("duplicate-line");
    break;
  }
  }
  return Out;
}
