//===- fuzz/Reducer.h - Delta-debugging failure reduction ------*- C++ -*-===//
///
/// \file
/// Shrinks a failing fuzz kernel while preserving its failure predicate:
/// ddmin-style statement removal, guard dropping (a repro that does not
/// need predication reduces to a straight-line kernel), loop-bound
/// shrinking, expression simplification (rhs and guard alike), subscript
/// simplification, array-extent tightening, and unused-symbol garbage
/// collection, iterated to a fixed point. The
/// predicate re-runs whatever check failed (schedule verification,
/// execution equivalence, engine agreement), so the reducer works for any
/// failure class the fuzzer can detect.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_FUZZ_REDUCER_H
#define SLP_FUZZ_REDUCER_H

#include "ir/Kernel.h"

#include <functional>

namespace slp {

/// Returns true when the (well-formed) candidate kernel still exhibits the
/// failure being reduced.
using FailurePredicate = std::function<bool(const Kernel &)>;

/// Instrumentation of one reduction run (reported in the slp-fuzz JSON
/// summary).
struct ReductionStats {
  uint64_t CandidatesTried = 0;
  uint64_t CandidatesAccepted = 0;
  unsigned Rounds = 0;
};

/// Reduces \p Seed with respect to \p StillFails. Candidates are vetted
/// with validateKernel before the predicate runs, so the predicate only
/// ever sees kernels the pipeline can safely consume; \p Seed itself is
/// assumed to be valid and failing. Stops at a fixed point or after
/// \p MaxRounds full passes.
Kernel reduceKernel(const Kernel &Seed, const FailurePredicate &StillFails,
                    ReductionStats *Stats = nullptr, unsigned MaxRounds = 8);

} // namespace slp

#endif // SLP_FUZZ_REDUCER_H
