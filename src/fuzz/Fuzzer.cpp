//===- fuzz/Fuzzer.cpp ----------------------------------------*- C++ -*-===//

#include "fuzz/Fuzzer.h"

#include "analysis/Dependence.h"
#include "analysis/KernelVerifier.h"
#include "analysis/VectorVerifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "native/NativeBackend.h"
#include "slp/Verifier.h"
#include "workloads/Workloads.h"

#include <cctype>
#include <chrono>
#include <memory>
#include <sstream>

using namespace slp;

namespace {

/// Adds the scope's wall-clock duration to a FuzzTimings bucket (no-op
/// with a null target, e.g. inside the reducer's predicate).
class ScopedTimer {
public:
  explicit ScopedTimer(double *Acc)
      : Acc(Acc), Start(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (Acc)
      *Acc += std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  }
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

private:
  double *Acc;
  std::chrono::steady_clock::time_point Start;
};

PipelineOptions optionsFor(const FuzzCaseConfig &C) {
  PipelineOptions Options;
  Options.Machine = MachineModel::intelDunnington();
  Options.Machine.DatapathBits = C.DatapathBits;
  Options.GroupingEngine = C.Grouping;
  // The exact engine's default node budget is sized for slpc/bench runs;
  // a campaign runs thousands of pipelines, so exact configs get a small
  // deterministic budget — random kernels that exceed it just exercise
  // the fallback path, which is part of what the campaign checks.
  Options.ExactBudget = 1 << 14;
  Options.Threads = 1; // module-driver threading is checked separately
  // The campaign runs the static translation validator itself (as an
  // oracle cross-checked against dynamic equivalence), so the pipeline's
  // own verify-vector stage stays off regardless of build type.
  Options.VerifyVector = false;
  return Options;
}

/// Applies the schedule corruption \p Kind to \p S. Returns false when the
/// corruption does not apply (the injected bug cannot exist here).
bool applyInjection(BugInjection Kind, const DependenceInfo &Deps,
                    Schedule &S) {
  switch (Kind) {
  case BugInjection::None:
    return false;
  case BugInjection::DropItem:
    if (S.Items.empty())
      return false;
    S.Items.pop_back();
    return true;
  case BugInjection::DuplicateLane:
    if (S.Items.empty() || S.Items.front().Lanes.empty())
      return false;
    S.Items.push_back(ScheduleItem{{S.Items.front().Lanes.front()}});
    return true;
  case BugInjection::SwapDependent: {
    // Find a dependence crossing two schedule items and hoist the item
    // holding the destination above the one holding the source.
    std::vector<int> ItemOf;
    unsigned NumItems = static_cast<unsigned>(S.Items.size());
    for (unsigned I = 0; I != NumItems; ++I)
      for (unsigned Lane : S.Items[I].Lanes) {
        if (Lane >= ItemOf.size())
          ItemOf.resize(Lane + 1, -1);
        ItemOf[Lane] = static_cast<int>(I);
      }
    for (const Dep &D : Deps.dependences()) {
      if (D.Src >= ItemOf.size() || D.Dst >= ItemOf.size())
        continue;
      int A = ItemOf[D.Src], B = ItemOf[D.Dst];
      if (A < 0 || B < 0 || A >= B)
        continue;
      ScheduleItem Moved = S.Items[B];
      S.Items.erase(S.Items.begin() + B);
      S.Items.insert(S.Items.begin() + A, std::move(Moved));
      return true;
    }
    return false;
  }
  }
  return false;
}

/// Compares two schedules item by item.
bool sameSchedule(const Schedule &A, const Schedule &B) {
  if (A.Items.size() != B.Items.size())
    return false;
  for (unsigned I = 0; I != A.Items.size(); ++I)
    if (A.Items[I].Lanes != B.Items[I].Lanes)
      return false;
  return true;
}

/// Fourth oracle, armed by FuzzCaseConfig::Native: the host-compiled
/// native engine (real SIMD machine code) must reproduce the base engine
/// bit-for-bit — scalar values, dynamic operation counts, and the
/// equivalence verdict for \p R's vector program. Returns empty on
/// agreement, and silently skips (counted) when no host compiler exists.
std::string checkNativeAgreement(const Kernel &K, const FuzzCaseConfig &C,
                                 const PipelineResult &R, FuzzStats *Stats,
                                 ExecEngine &Base) {
  if (!nativeBackendAvailable()) {
    if (Stats)
      ++Stats->NativeSkips;
    return "";
  }
  if (Stats)
    ++Stats->NativeChecks;
  ExecEngine Native(ExecEngineKind::Native);

  // Direct scalar differential: same values AND same op counts.
  for (uint64_t Seed : C.EnvSeeds) {
    Environment EBase(K, Seed);
    Environment ENat(K, Seed);
    ScalarExecStats SBase = Base.runKernel(K, EBase);
    ScalarExecStats SNat = Native.runKernel(K, ENat);
    if (SBase.AluOps != SNat.AluOps ||
        SBase.ArrayLoads != SNat.ArrayLoads ||
        SBase.ArrayStores != SNat.ArrayStores)
      return "native engine disagrees on scalar operation counts";
    if (!EBase.matches(ENat, static_cast<unsigned>(K.Scalars.size()),
                       static_cast<unsigned>(K.Arrays.size())))
      return "native engine diverged on scalar kernel execution";
  }

  // The emitted vector program must get the same verdict from both.
  bool OkBase =
      checkEquivalenceAcrossSeeds(K, R, C.EnvSeeds, Base, nullptr);
  bool OkNat =
      checkEquivalenceAcrossSeeds(K, R, C.EnvSeeds, Native, nullptr);
  if (OkBase != OkNat)
    return std::string("native engine disagrees on the equivalence "
                       "verdict (base=") +
           (OkBase ? "pass" : "fail") + ", native=" +
           (OkNat ? "pass" : "fail") + ")";
  return "";
}

/// Runs the full check battery for one (kernel, configuration) pair.
/// Returns an empty string on pass. \p Stats (when non-null) receives
/// pipeline-run accounting and the compile/execute timing split; kernels
/// and programs execute through \p Engine. With an injection configured,
/// the expectation inverts: the corrupted schedule must be flagged by the
/// verifier.
std::string checkConfig(const Kernel &K, const FuzzCaseConfig &C,
                        FuzzStats *Stats, ExecEngine &Engine) {
  double *CompileAcc = Stats ? &Stats->Timings.CompileSeconds : nullptr;
  double *ExecuteAcc = Stats ? &Stats->Timings.ExecuteSeconds : nullptr;

  PipelineResult R = [&] {
    ScopedTimer T(CompileAcc);
    return runPipeline(K, C.Kind, optionsFor(C));
  }();
  PipelineOptions Options = optionsFor(C);
  if (Stats)
    ++Stats->PipelineRuns;
  DependenceInfo Deps(R.Preprocessed);

  if (C.Inject != BugInjection::None) {
    Schedule Corrupted = R.TheSchedule;
    if (!applyInjection(C.Inject, Deps, Corrupted))
      return std::string("injection '") + bugInjectionName(C.Inject) +
             "' not applicable to this schedule";
    if (verifySchedule(R.Preprocessed, Deps, Corrupted,
                       Options.Machine.DatapathBits)
            .empty())
      return std::string("injected bug '") + bugInjectionName(C.Inject) +
             "' NOT caught by the verifier";
    if (C.VerifyVector) {
      // The corruption must also be visible statically: lower the
      // corrupted schedule the way the pipeline would and demand the
      // translation validator rejects the resulting program.
      CodeGenOptions CG;
      CG.DatapathBits = Options.Machine.DatapathBits;
      CG.NumVectorRegisters = Options.Machine.NumVectorRegisters;
      bool Holistic = C.Kind == OptimizerKind::Global ||
                      C.Kind == OptimizerKind::GlobalLayout;
      CG.EnablePermutedReuse = Holistic;
      CG.CacheLoadedPacks = Holistic;
      VectorProgram Corrupt = generateVectorProgram(
          R.Preprocessed, Corrupted, CG,
          ScalarLayout::defaultLayout(
              static_cast<unsigned>(R.Preprocessed.Scalars.size())));
      if (Stats)
        ++Stats->StaticVerifyRuns;
      VectorVerifyOptions VO;
      VO.Lint = false;
      if (verifyVectorProgram(R.Preprocessed, Corrupt, VO).ok())
        return std::string("injected bug '") + bugInjectionName(C.Inject) +
               "' NOT caught by the static verifier";
      if (Stats)
        ++Stats->StaticVerifyRejects;
    }
    return ""; // caught, as demanded
  }

  {
    ScopedTimer T(ExecuteAcc);
    std::vector<std::string> Issues = verifySchedule(
        R.Preprocessed, Deps, R.TheSchedule, Options.Machine.DatapathBits);
    if (!Issues.empty())
      return "schedule verification failed: " + Issues.front();

    // Third oracle: static translation validation, cross-checked against
    // the dynamic equivalence verdict below. The two must agree on every
    // program — a split verdict is itself a recorded bug no matter which
    // oracle turns out to be the wrong one.
    bool StaticOk = true;
    std::string StaticError;
    if (C.VerifyVector) {
      if (Stats)
        ++Stats->StaticVerifyRuns;
      VectorVerifyOptions VO;
      VO.Lint = false;
      VectorVerifyResult V = verifyVectorProgram(R.Final, R.Program, VO);
      StaticOk = V.ok();
      if (!StaticOk) {
        StaticError = V.firstError();
        if (Stats)
          ++Stats->StaticVerifyRejects;
      }
    }

    std::string Error;
    bool DynamicOk =
        checkEquivalenceAcrossSeeds(K, R, C.EnvSeeds, Engine, &Error);
    if (!StaticOk && DynamicOk)
      return "static/dynamic oracle disagreement: the static verifier "
             "rejected a dynamically-equivalent program: " +
             StaticError;
    if (StaticOk && !DynamicOk && C.VerifyVector)
      return "static/dynamic oracle disagreement: execution mismatch not "
             "caught by the static verifier: " +
             Error;
    if (!DynamicOk)
      return "execution mismatch: " + Error;

    // Fourth oracle (injection never reaches here): the native engine.
    if (C.Native) {
      std::string NativeReason =
          checkNativeAgreement(K, C, R, Stats, Engine);
      if (!NativeReason.empty())
        return NativeReason;
    }
  }

  if (C.Threads > 1) {
    PipelineOptions MT = Options;
    MT.Threads = C.Threads;
    ModulePipelineResult Module = [&] {
      ScopedTimer T(CompileAcc);
      return runPipelineOverModule({K}, C.Kind, MT);
    }();
    if (Stats)
      ++Stats->PipelineRuns;
    if (Module.PerKernel.size() != 1 ||
        !sameSchedule(Module.PerKernel[0].TheSchedule, R.TheSchedule) ||
        Module.PerKernel[0].VectorSim.Cycles != R.VectorSim.Cycles)
      return "module driver with " + std::to_string(C.Threads) +
             " threads diverged from the serial result";
  }
  return "";
}

/// The per-iteration configuration matrix. Kept small and deterministic:
/// every optimizer at 128 bits each iteration, wider datapaths and the
/// reference/exact grouping engines on alternating iterations.
std::vector<FuzzCaseConfig> configsForIteration(uint64_t Iter,
                                                uint64_t Seed1,
                                                uint64_t Seed2) {
  std::vector<FuzzCaseConfig> Configs;
  auto Push = [&](OptimizerKind Kind, unsigned Bits, GroupingImpl Impl,
                  unsigned Threads) {
    FuzzCaseConfig C;
    C.Kind = Kind;
    C.DatapathBits = Bits;
    C.Grouping = Impl;
    C.Threads = Threads;
    C.EnvSeeds = {Seed1, Seed2};
    Configs.push_back(C);
  };
  Push(OptimizerKind::Native, 128, GroupingImpl::Optimized, 1);
  Push(OptimizerKind::LarsenSlp, 128, GroupingImpl::Optimized, 1);
  Push(OptimizerKind::Global, 128, GroupingImpl::Optimized, 1);
  Push(OptimizerKind::GlobalLayout, 128, GroupingImpl::Optimized, 1);
  if (Iter % 2 == 0) {
    Push(OptimizerKind::Global, 256, GroupingImpl::Optimized, 1);
    Push(OptimizerKind::GlobalLayout, 256, GroupingImpl::Optimized, 1);
  }
  if (Iter % 4 == 1)
    Push(OptimizerKind::Global, 128, GroupingImpl::Reference, 1);
  if (Iter % 4 == 2)
    Push(OptimizerKind::Global, 128, GroupingImpl::Exact, 1);
  if (Iter % 8 == 3)
    Push(OptimizerKind::GlobalLayout, 128, GroupingImpl::Optimized, 3);
  if (Iter % 8 == 6)
    Push(OptimizerKind::GlobalLayout, 128, GroupingImpl::Exact, 1);
  return Configs;
}

/// Small workloads usable as mutation seeds (execution-checkable fast).
const std::vector<Kernel> &smallWorkloadKernels() {
  static const std::vector<Kernel> Kernels = [] {
    std::vector<Kernel> Out;
    for (const Workload &W : standardWorkloads()) {
      int64_t Elements = 0;
      for (const ArraySymbol &A : W.TheKernel.Arrays)
        Elements += A.numElements();
      if (W.TheKernel.totalIterations() <= 4096 && Elements <= 200000)
        Out.push_back(W.TheKernel.clone());
    }
    return Out;
  }();
  return Kernels;
}

/// Branchy seed kernels for --predication campaigns.
const std::vector<Kernel> &predicatedSeedKernels() {
  static const std::vector<Kernel> Kernels = [] {
    std::vector<Kernel> Out;
    for (const Workload &W : predicatedWorkloads())
      if (W.TheKernel.totalIterations() <= 4096)
        Out.push_back(W.TheKernel.clone());
    return Out;
  }();
  return Kernels;
}

Kernel makeBaseKernel(Rng &R, bool Predication) {
  uint64_t Pick = R.nextBelow(8);
  if (Predication && Pick == 2 && !predicatedSeedKernels().empty()) {
    const std::vector<Kernel> &Pool = predicatedSeedKernels();
    return Pool[R.nextBelow(Pool.size())].clone();
  }
  if (Pick == 0) {
    SyntheticBlockOptions O;
    O.NumStatements = 12 + static_cast<unsigned>(R.nextBelow(21));
    O.ClassSize = 4;
    O.ReuseBlockClasses = 2;
    O.DepFraction = 0.25;
    O.Seed = R.next();
    return syntheticGroupingBlock(O);
  }
  if (Pick == 1 && !smallWorkloadKernels().empty()) {
    const std::vector<Kernel> &Pool = smallWorkloadKernels();
    return Pool[R.nextBelow(Pool.size())].clone();
  }
  RandomKernelOptions O;
  O.MinStatements = 2;
  O.MaxStatements = 2 + static_cast<unsigned>(R.nextBelow(9));
  O.NumArrays = 2 + static_cast<unsigned>(R.nextBelow(3));
  O.NumScalars = 2 + static_cast<unsigned>(R.nextBelow(4));
  static const int64_t Trips[] = {4, 8, 16};
  O.TripCount = Trips[R.nextBelow(3)];
  O.NumLoops = R.nextBelow(3) == 0 ? 2 : 1;
  O.AllowDoubles = R.nextBelow(2) == 0;
  O.AllowInts = R.nextBelow(2) == 0;
  if (Predication)
    O.GuardProbability = 0.4;
  return randomKernel(R, O);
}

/// Builds the predicate that re-detects a failure of \p C on a candidate
/// kernel (used by the reducer). The predicate owns its engine so reduced
/// candidates replay under the same engine kind that found the failure.
FailurePredicate makePredicate(const FuzzCaseConfig &C) {
  auto Engine = std::make_shared<ExecEngine>(C.Exec);
  return [C, Engine](const Kernel &K) {
    if (C.Inject != BugInjection::None) {
      // The demonstration is preserved only while the injection still
      // applies AND is still caught.
      return checkConfig(K, C, nullptr, *Engine).empty();
    }
    return !checkConfig(K, C, nullptr, *Engine).empty();
  };
}

/// Extra cross-engine check: both grouping engines must produce identical
/// schedules for the holistic optimizer. Returns empty on agreement.
std::string checkEngineAgreement(const Kernel &K, uint64_t Seed1,
                                 uint64_t Seed2, FuzzStats *Stats) {
  FuzzCaseConfig C;
  C.Kind = OptimizerKind::Global;
  C.EnvSeeds = {Seed1, Seed2};
  PipelineOptions Opt = optionsFor(C);
  Opt.GroupingEngine = GroupingImpl::Optimized;
  PipelineResult A = runPipeline(K, C.Kind, Opt);
  Opt.GroupingEngine = GroupingImpl::Reference;
  PipelineResult B = runPipeline(K, C.Kind, Opt);
  if (Stats)
    Stats->PipelineRuns += 2;
  if (!sameSchedule(A.TheSchedule, B.TheSchedule))
    return "grouping engines disagree on the schedule";
  return "";
}

/// Extra cross-engine check for the *execution* engines: the flat-tape
/// engine and the tree-walking reference must produce bit-identical
/// environments for scalar kernels (including identical dynamic operation
/// counts), and the same equivalence verdict for the vector program.
/// Returns empty on agreement.
std::string checkExecEngineAgreement(const Kernel &K, uint64_t Seed1,
                                     uint64_t Seed2, FuzzStats *Stats) {
  ExecEngine Opt(ExecEngineKind::Optimized);
  ExecEngine Ref(ExecEngineKind::Reference);

  // Direct scalar differential: same values AND same op counts.
  for (uint64_t Seed : {Seed1, Seed2}) {
    Environment EOpt(K, Seed);
    Environment ERef(K, Seed);
    ScalarExecStats SOpt = Opt.runKernel(K, EOpt);
    ScalarExecStats SRef = Ref.runKernel(K, ERef);
    if (SOpt.AluOps != SRef.AluOps ||
        SOpt.ArrayLoads != SRef.ArrayLoads ||
        SOpt.ArrayStores != SRef.ArrayStores)
      return "exec engines disagree on scalar operation counts";
    if (!EOpt.matches(ERef, static_cast<unsigned>(K.Scalars.size()),
                      static_cast<unsigned>(K.Arrays.size())))
      return "exec engines diverged on scalar kernel execution";
  }

  // The emitted vector program must get the same verdict from both.
  FuzzCaseConfig C;
  C.Kind = OptimizerKind::Global;
  PipelineResult R = runPipeline(K, C.Kind, optionsFor(C));
  if (Stats)
    ++Stats->PipelineRuns;
  bool OkOpt =
      checkEquivalenceAcrossSeeds(K, R, {Seed1, Seed2}, Opt, nullptr);
  bool OkRef =
      checkEquivalenceAcrossSeeds(K, R, {Seed1, Seed2}, Ref, nullptr);
  if (OkOpt != OkRef)
    return std::string("exec engines disagree on the equivalence verdict "
                       "(optimized=") +
           (OkOpt ? "pass" : "fail") + ", reference=" +
           (OkRef ? "pass" : "fail") + ")";
  return "";
}

std::string sanitizeFileStem(const std::string &Name) {
  std::string Out;
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '-' ||
            C == '_')
               ? C
               : '_';
  return Out.empty() ? std::string("case") : Out;
}

} // namespace

std::string FuzzStats::toJson() const {
  std::ostringstream Out;
  Out << "{\n";
  Out << "  \"iterations\": " << Iterations << ",\n";
  Out << "  \"kernels_tested\": " << KernelsTested << ",\n";
  Out << "  \"mutations_applied\": " << MutationsApplied << ",\n";
  Out << "  \"mutants_rejected\": " << MutantsRejected << ",\n";
  Out << "  \"pipeline_runs\": " << PipelineRuns << ",\n";
  Out << "  \"configs_exercised\": " << ConfigsExercised << ",\n";
  Out << "  \"text_cases\": " << TextCases << ",\n";
  Out << "  \"parser_errors\": " << ParserErrors << ",\n";
  Out << "  \"parser_accepts\": " << ParserAccepts << ",\n";
  Out << "  \"verifier_failures\": " << VerifierFailures << ",\n";
  Out << "  \"equivalence_failures\": " << EquivalenceFailures << ",\n";
  Out << "  \"determinism_failures\": " << DeterminismFailures << ",\n";
  Out << "  \"static_verify_runs\": " << StaticVerifyRuns << ",\n";
  Out << "  \"static_verify_rejects\": " << StaticVerifyRejects << ",\n";
  Out << "  \"oracle_disagreements\": " << OracleDisagreements << ",\n";
  Out << "  \"engine_disagreements\": " << EngineDisagreements << ",\n";
  Out << "  \"exec_disagreements\": " << ExecDisagreements << ",\n";
  Out << "  \"native_checks\": " << NativeChecks << ",\n";
  Out << "  \"native_disagreements\": " << NativeDisagreements << ",\n";
  Out << "  \"native_skips\": " << NativeSkips << ",\n";
  Out << "  \"injected_caught\": " << InjectedCaught << ",\n";
  Out << "  \"injected_missed\": " << InjectedMissed << ",\n";
  Out << "  \"injection_inapplicable\": " << InjectionInapplicable << ",\n";
  Out << "  \"range_checks\": " << RangeChecks << ",\n";
  Out << "  \"range_skips\": " << RangeSkips << ",\n";
  Out << "  \"range_violations\": " << RangeViolations << ",\n";
  Out << "  \"failures_recorded\": " << FailuresRecorded << ",\n";
  Out << "  \"reduction\": {\"tried\": " << Reduction.CandidatesTried
      << ", \"accepted\": " << Reduction.CandidatesAccepted
      << ", \"rounds\": " << Reduction.Rounds << "},\n";
  Out << "  \"elapsed_seconds\": " << ElapsedSeconds << ",\n";
  Out << "  \"iters_per_sec\": " << ItersPerSec << ",\n";
  Out << "  \"exec_engine\": \"" << ExecEngine << "\",\n";
  Out << "  \"timing_seconds\": {\"mutate\": " << Timings.MutateSeconds
      << ", \"compile\": " << Timings.CompileSeconds
      << ", \"execute\": " << Timings.ExecuteSeconds
      << ", \"reduce\": " << Timings.ReduceSeconds << "},\n";
  Out << "  \"env_reuses\": " << EnvReuses << ",\n";
  Out << "  \"env_constructions\": " << EnvConstructions << ",\n";
  Out << "  \"mutations\": {";
  bool First = true;
  for (const auto &[Name, Count] : MutationCounts) {
    Out << (First ? "" : ", ") << "\"" << Name << "\": " << Count;
    First = false;
  }
  Out << "}\n}\n";
  return Out.str();
}

FuzzOutcome slp::runFuzzer(const FuzzConfig &Config) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  auto Elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  };

  FuzzConfig Cfg = Config;
  if (Cfg.Iterations == 0 && Cfg.TimeBudgetSeconds <= 0)
    Cfg.Iterations = 1000;

  FuzzOutcome Out;
  Rng R(Cfg.Seed);

  // One engine for the whole campaign: arenas and the environment pool
  // amortize across every iteration.
  ExecEngine Engine(Cfg.Exec);
  Out.Stats.ExecEngine = execEngineName(Cfg.Exec);

  auto RecordFailure = [&](const Kernel &K, const FuzzCaseConfig &C,
                           const std::string &Reason,
                           const FailurePredicate *CustomPredicate =
                               nullptr) {
    FuzzFailure F;
    F.Reason = Reason;
    F.OriginalStatements = K.Body.size();
    Kernel Reduced = K.clone();
    if (Cfg.Reduce) {
      ScopedTimer T(&Out.Stats.Timings.ReduceSeconds);
      Reduced = reduceKernel(K,
                             CustomPredicate ? *CustomPredicate
                                             : makePredicate(C),
                             &Out.Stats.Reduction);
    }
    F.ReducedStatements = Reduced.Body.size();
    F.Case.Config = C;
    F.Case.Source = printKernel(Reduced);
    F.Case.Reason = Reason;
    if (!Cfg.CorpusDir.empty()) {
      std::string Stem =
          sanitizeFileStem(C.Inject != BugInjection::None
                               ? std::string("inject_") +
                                     bugInjectionName(C.Inject)
                               : Reduced.Name) +
          "_" + std::to_string(Out.Stats.FailuresRecorded);
      F.FilePath = Cfg.CorpusDir + "/" + Stem + ".slp";
      writeFile(F.FilePath, serializeFuzzCase(F.Case));
    }
    ++Out.Stats.FailuresRecorded;
    Out.Failures.push_back(std::move(F));
  };

  for (uint64_t Iter = 0;; ++Iter) {
    if (Cfg.Iterations != 0 && Iter >= Cfg.Iterations)
      break;
    if (Cfg.TimeBudgetSeconds > 0 && Elapsed() >= Cfg.TimeBudgetSeconds)
      break;
    if (Out.Failures.size() >= Cfg.MaxFailures)
      break;
    ++Out.Stats.Iterations;

    // 1. Generate a base kernel and mutate it.
    Kernel K = [&] {
      ScopedTimer T(&Out.Stats.Timings.MutateSeconds);
      Kernel Base = makeBaseKernel(R, Cfg.Predication);
      unsigned Mutations =
          Cfg.MaxMutationsPerKernel == 0
              ? 0
              : static_cast<unsigned>(
                    R.nextBelow(Cfg.MaxMutationsPerKernel + 1));
      for (unsigned M = 0; M != Mutations; ++M) {
        Kernel Backup = Base.clone();
        std::optional<MutationKind> Applied = mutateKernel(Base, R);
        if (Applied && sanitizeKernel(Base)) {
          ++Out.Stats.MutationsApplied;
          ++Out.Stats.MutationCounts[mutationKindName(*Applied)];
        } else {
          Base = std::move(Backup);
          ++Out.Stats.MutantsRejected;
        }
      }
      return Base;
    }();
    if (!validateKernel(K))
      continue; // base generator emitted something out of policy (rare)
    ++Out.Stats.KernelsTested;

    // 2. Run the configuration matrix.
    uint64_t Seed1 = Cfg.Seed * 0x9E3779B97F4A7C15ULL + Iter;
    uint64_t Seed2 = Iter * 31 + 7;

    // Value-range soundness oracle: the interval analysis' predictions
    // must contain every value one scalar execution actually observes.
    // Checked once per kernel — the verdict is independent of the
    // optimizer configuration matrix below.
    if (Cfg.VerifyRanges && Out.Failures.size() < Cfg.MaxFailures) {
      bool Skipped = false;
      std::optional<std::string> V = [&] {
        ScopedTimer T(&Out.Stats.Timings.ExecuteSeconds);
        return checkRangeSoundness(K, Seed1, &Skipped);
      }();
      if (Skipped)
        ++Out.Stats.RangeSkips;
      else
        ++Out.Stats.RangeChecks;
      if (V) {
        ++Out.Stats.RangeViolations;
        FuzzCaseConfig C;
        C.Kind = OptimizerKind::Global;
        C.EnvSeeds = {Seed1};
        C.Exec = Cfg.Exec;
        C.VerifyVector = Cfg.VerifyVector;
        // Reduce against the range oracle itself, not the pipeline
        // differential (which this kernel passes).
        FailurePredicate StillViolates = [Seed1](const Kernel &Cand) {
          return checkRangeSoundness(Cand, Seed1).has_value();
        };
        RecordFailure(K, C, *V, &StillViolates);
      }
    }
    for (FuzzCaseConfig C : configsForIteration(Iter, Seed1, Seed2)) {
      if (Cfg.GroupingOverride)
        C.Grouping = *Cfg.GroupingOverride;
      C.Exec = Cfg.Exec;
      C.Inject = Cfg.Inject;
      C.VerifyVector = Cfg.VerifyVector;
      C.Predication = Cfg.Predication;
      // Native runs invoke the host compiler, so the oracle samples a
      // subset of iterations (the content-addressed object cache absorbs
      // repeats, but each fresh kernel costs two real compiles).
      C.Native = Cfg.Native && Iter % 8 == 5;
      ++Out.Stats.ConfigsExercised;
      std::string Reason = checkConfig(K, C, &Out.Stats, Engine);
      if (C.Inject != BugInjection::None) {
        if (Reason.empty()) {
          ++Out.Stats.InjectedCaught;
          // Record (and reduce) one representative demonstration so the
          // harness's catch is pinned in the corpus.
          if (Out.Stats.InjectedCaught == 1 && !Cfg.CorpusDir.empty())
            RecordFailure(K, C,
                          std::string("harness demo: injected '") +
                              bugInjectionName(C.Inject) +
                              "' caught by the verifier");
        } else if (Reason.find("not applicable") != std::string::npos) {
          ++Out.Stats.InjectionInapplicable;
        } else {
          ++Out.Stats.InjectedMissed;
          RecordFailure(K, C, Reason);
        }
        continue;
      }
      if (Reason.empty())
        continue;
      // Classify "oracle disagreement" first: those reasons embed the
      // underlying mismatch/verifier text and would misclassify below.
      if (Reason.find("oracle disagreement") != std::string::npos)
        ++Out.Stats.OracleDisagreements;
      else if (Reason.find("native engine") != std::string::npos)
        ++Out.Stats.NativeDisagreements;
      else if (Reason.find("verification failed") != std::string::npos)
        ++Out.Stats.VerifierFailures;
      else if (Reason.find("mismatch") != std::string::npos)
        ++Out.Stats.EquivalenceFailures;
      else
        ++Out.Stats.DeterminismFailures;
      RecordFailure(K, C, Reason);
      break; // one failure per kernel is enough
    }

    // 3. Cross-engine agreement (no injection: engines are bug-free by
    // definition under injection since it corrupts post-pipeline).
    if (Cfg.Inject == BugInjection::None && Iter % 4 == 1 &&
        Out.Failures.size() < Cfg.MaxFailures) {
      std::string Reason =
          checkEngineAgreement(K, Seed1, Seed2, &Out.Stats);
      if (!Reason.empty()) {
        ++Out.Stats.EngineDisagreements;
        FuzzCaseConfig C;
        C.Kind = OptimizerKind::Global;
        C.Grouping = GroupingImpl::Reference;
        C.EnvSeeds = {Seed1, Seed2};
        C.Exec = Cfg.Exec;
        C.VerifyVector = Cfg.VerifyVector;
        RecordFailure(K, C, Reason);
      }
    }

    // 3b. Execution-engine agreement: flat tapes vs tree walking, staggered
    // against the grouping-engine check so both sample distinct kernels.
    if (Cfg.Inject == BugInjection::None && Iter % 4 == 3 &&
        Out.Failures.size() < Cfg.MaxFailures) {
      std::string Reason = [&] {
        ScopedTimer T(&Out.Stats.Timings.ExecuteSeconds);
        return checkExecEngineAgreement(K, Seed1, Seed2, &Out.Stats);
      }();
      if (!Reason.empty()) {
        ++Out.Stats.ExecDisagreements;
        FuzzCaseConfig C;
        C.Kind = OptimizerKind::Global;
        C.EnvSeeds = {Seed1, Seed2};
        C.Exec = ExecEngineKind::Optimized;
        C.VerifyVector = Cfg.VerifyVector;
        RecordFailure(K, C, Reason);
      }
    }

    // 4. Textual fuzzing of the parser's error paths.
    if (Cfg.TextualEvery != 0 && Iter % Cfg.TextualEvery == 0) {
      std::string Source = [&] {
        ScopedTimer T(&Out.Stats.Timings.MutateSeconds);
        std::string S = printKernel(K);
        unsigned Rounds = 1 + static_cast<unsigned>(R.nextBelow(3));
        for (unsigned I = 0; I != Rounds; ++I)
          S = mutateSource(S, R);
        return S;
      }();
      ++Out.Stats.TextCases;
      ModuleParseResult Parsed = parseModule(Source);
      if (!Parsed.succeeded()) {
        ++Out.Stats.ParserErrors;
        if (Parsed.ErrorMessage.empty()) {
          FuzzCaseConfig C;
          RecordFailure(K, C, "parser reported failure without a message");
        }
      } else {
        ++Out.Stats.ParserAccepts;
        // Parser-accepted mutants feed one cheap pipeline config when the
        // validator can vouch for them.
        for (const Kernel &PK : Parsed.Kernels) {
          if (!validateKernel(PK))
            continue;
          FuzzCaseConfig C;
          C.Kind = OptimizerKind::Global;
          C.EnvSeeds = {Seed2};
          C.Exec = Cfg.Exec;
          C.VerifyVector = Cfg.VerifyVector;
          ++Out.Stats.ConfigsExercised;
          std::string Reason = checkConfig(PK, C, &Out.Stats, Engine);
          if (!Reason.empty()) {
            if (Reason.find("oracle disagreement") != std::string::npos)
              ++Out.Stats.OracleDisagreements;
            else
              ++Out.Stats.EquivalenceFailures;
            RecordFailure(PK, C, "textual mutant: " + Reason);
          }
        }
      }
    }
  }

  // Harness demos are successes, not failures: drop them from the failure
  // list after they were written to the corpus.
  if (Cfg.Inject != BugInjection::None) {
    std::vector<FuzzFailure> Real;
    for (FuzzFailure &F : Out.Failures)
      if (F.Reason.rfind("harness demo:", 0) != 0)
        Real.push_back(std::move(F));
      else
        Out.InjectedDemos.push_back(std::move(F));
    Out.Failures = std::move(Real);
  }

  Out.Stats.ElapsedSeconds = Elapsed();
  Out.Stats.ItersPerSec = Out.Stats.ElapsedSeconds > 0
                              ? static_cast<double>(Out.Stats.Iterations) /
                                    Out.Stats.ElapsedSeconds
                              : 0;
  Out.Stats.EnvReuses = Engine.counters().EnvReuses;
  Out.Stats.EnvConstructions = Engine.counters().EnvConstructions;
  return Out;
}

bool slp::runFuzzCase(const FuzzCase &Case, std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  ModuleParseResult Parsed = parseModule(Case.Source);
  if (!Parsed.succeeded())
    return Fail("parse error at line " + std::to_string(Parsed.ErrorLine) +
                ": " + Parsed.ErrorMessage);
  if (Parsed.Kernels.empty())
    return Fail("corpus case defines no kernel");
  ExecEngine Engine(Case.Config.Exec);
  for (const Kernel &K : Parsed.Kernels) {
    std::string Why;
    if (!validateKernel(K, &Why))
      return Fail("corpus kernel '" + K.Name + "' is invalid: " + Why);
    std::string Reason = checkConfig(K, Case.Config, nullptr, Engine);
    if (!Reason.empty())
      return Fail("kernel '" + K.Name + "': " + Reason);
    // Replays also re-assert range soundness, so a corpus case recorded
    // for a range violation stays red until the analysis is fixed.
    for (uint64_t Seed : Case.Config.EnvSeeds)
      if (std::optional<std::string> V = checkRangeSoundness(K, Seed))
        return Fail("kernel '" + K.Name + "': " + *V);
  }
  return true;
}

unsigned slp::replayCorpusDir(const std::string &Dir,
                              std::vector<std::string> &Errors) {
  unsigned Count = 0;
  for (const std::string &Path : listCorpusFiles(Dir)) {
    ++Count;
    std::string Text;
    if (!readFile(Path, Text)) {
      Errors.push_back(Path + ": cannot read");
      continue;
    }
    FuzzCase Case;
    std::string Error;
    if (!parseFuzzCase(Text, Case, &Error)) {
      Errors.push_back(Path + ": bad corpus header: " + Error);
      continue;
    }
    if (!runFuzzCase(Case, &Error))
      Errors.push_back(Path + ": " + Error);
  }
  return Count;
}
