//===- fuzz/Fuzzer.h - Differential fuzzing driver --------------*- C++ -*-===//
///
/// \file
/// The adversarial safety net around the whole pass pipeline: per
/// iteration, generate or mutate a kernel, run every optimizer under
/// several datapath/engine/thread configurations, check the schedule
/// against the paper's Section 4.1 validity constraints (slp/Verifier),
/// and execute the emitted vector program against the scalar reference
/// over multiple environments (checkEquivalence). The static translation
/// validator (analysis/VectorVerifier) runs as a third oracle whose
/// accept/reject verdict must agree with dynamic equivalence on every
/// program. Failures are shrunk by
/// the delta-debugging reducer and written to the corpus so they replay as
/// tier-1 regression tests forever. A bug-injection mode corrupts
/// schedules on purpose to mutation-test the harness itself.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_FUZZ_FUZZER_H
#define SLP_FUZZ_FUZZER_H

#include "fuzz/Corpus.h"
#include "fuzz/Mutator.h"
#include "fuzz/Reducer.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace slp {

/// Configuration of one fuzzing campaign.
struct FuzzConfig {
  uint64_t Seed = 1;
  /// Iteration count; 0 means "until the time budget expires".
  uint64_t Iterations = 1000;
  /// Wall-clock budget in seconds; 0 means "no budget". When both this
  /// and Iterations are 0, a default of 1000 iterations applies.
  double TimeBudgetSeconds = 0;
  /// Shrink failures with the delta-debugging reducer before recording.
  bool Reduce = true;
  /// Directory reduced repros are written to ("" = keep in memory only).
  std::string CorpusDir;
  /// Execution engine kernels run under (`slp-fuzz --exec-engine=`). The
  /// campaign additionally cross-checks the engines against each other on
  /// a sample of iterations regardless of this choice.
  ExecEngineKind Exec = ExecEngineKind::Optimized;
  /// Harness mutation test: corrupt every schedule this way and demand
  /// the verifier catches it.
  BugInjection Inject = BugInjection::None;
  /// Run the static translation validator (analysis/VectorVerifier.h) as a
  /// third oracle next to the schedule verifier and dynamic equivalence:
  /// any accept/reject disagreement between the static and dynamic verdicts
  /// is itself a recorded failure, and injected bugs must be flagged
  /// statically too (`slp-fuzz --no-verify-vector` opts out).
  bool VerifyVector = true;
  /// Run the value-range soundness oracle (analysis/KernelVerifier.h) on
  /// every kernel tested: the static interval analysis predicts a range
  /// for each scalar, guard, RHS, committed store and array offset, and
  /// one scalar execution asserts every dynamically observed value lies
  /// inside its predicted range (`slp-fuzz --no-verify-ranges` opts out).
  bool VerifyRanges = true;
  /// Seed the campaign with predicated kernels: base kernels draw from
  /// the branchy workload pool and the random generator emits guarded
  /// statements, so if-conversion and the masked vector path are
  /// exercised every iteration (`slp-fuzz --predication`). Guard-related
  /// mutations (add/drop/flip/compose) fire regardless of this flag.
  bool Predication = false;
  /// Cross-check the host-compiled native engine (`slp-fuzz --native`):
  /// on a sample of iterations (and on every corpus case carrying
  /// `native=on`) kernels and vector programs additionally run under
  /// `ExecEngineKind::Native`, which must reproduce the base engine
  /// bit-for-bit — values, operation counts, and the equivalence verdict.
  /// Silently skipped (counted in FuzzStats::NativeSkips) when no host
  /// compiler is available, so campaigns stay green on bare containers.
  bool Native = false;
  /// Force one grouping engine onto every configuration of the matrix
  /// (`slp-fuzz --grouping-impl=`), e.g. an exact-engine campaign. Unset
  /// runs the default mix: Optimized everywhere, Reference and Exact on
  /// alternating iterations. The Optimized-vs-Reference bit-identity
  /// cross-check is unaffected (the Exact engine may legitimately pick a
  /// different packing, so it is checked semantically, not bit-for-bit).
  std::optional<GroupingImpl> GroupingOverride;
  /// Structural mutations applied per generated kernel (0..Max).
  unsigned MaxMutationsPerKernel = 3;
  /// Every Nth iteration additionally corrupts `.slp` text and stresses
  /// the parser's error paths.
  unsigned TextualEvery = 4;
  /// Stop after this many recorded failures.
  unsigned MaxFailures = 8;
};

/// Wall-clock breakdown of where a campaign spent its time, so execution
/// regressions are visible from nightly artifacts: kernel generation and
/// mutation, pipeline compilation, kernel/program execution (verification,
/// equivalence, engine cross-checks), and failure reduction.
struct FuzzTimings {
  double MutateSeconds = 0;
  double CompileSeconds = 0;
  double ExecuteSeconds = 0;
  double ReduceSeconds = 0;
};

/// Counters of one campaign (the `slp-fuzz` JSON summary).
struct FuzzStats {
  uint64_t Iterations = 0;
  uint64_t KernelsTested = 0;
  uint64_t MutationsApplied = 0;
  uint64_t MutantsRejected = 0;
  uint64_t PipelineRuns = 0;
  uint64_t ConfigsExercised = 0;
  uint64_t TextCases = 0;
  uint64_t ParserErrors = 0;
  uint64_t ParserAccepts = 0;
  uint64_t VerifierFailures = 0;
  uint64_t EquivalenceFailures = 0;
  uint64_t DeterminismFailures = 0;
  uint64_t StaticVerifyRuns = 0;
  uint64_t StaticVerifyRejects = 0;
  uint64_t OracleDisagreements = 0;
  uint64_t EngineDisagreements = 0;
  uint64_t ExecDisagreements = 0;
  uint64_t NativeChecks = 0;
  uint64_t NativeDisagreements = 0;
  uint64_t NativeSkips = 0;
  uint64_t InjectedCaught = 0;
  uint64_t InjectedMissed = 0;
  uint64_t InjectionInapplicable = 0;
  /// Value-range soundness oracle: kernels checked, kernels skipped (the
  /// static verifier found a bounds error, so the kernel cannot execute),
  /// and observed-value-outside-predicted-range violations.
  uint64_t RangeChecks = 0;
  uint64_t RangeSkips = 0;
  uint64_t RangeViolations = 0;
  uint64_t FailuresRecorded = 0;
  ReductionStats Reduction;
  std::map<std::string, uint64_t> MutationCounts;
  double ElapsedSeconds = 0;
  /// Iterations completed per wall-clock second; the headline throughput
  /// number `--exec-engine=` choices are compared by.
  double ItersPerSec = 0;
  /// Engine the campaign ran under ("optimized"/"reference").
  std::string ExecEngine;
  FuzzTimings Timings;
  /// Environment-pool effectiveness (exec/ExecEngine.h counters).
  uint64_t EnvReuses = 0;
  uint64_t EnvConstructions = 0;

  std::string toJson() const;
};

/// One recorded (and possibly reduced) failure.
struct FuzzFailure {
  FuzzCase Case;
  std::string Reason;
  unsigned OriginalStatements = 0;
  unsigned ReducedStatements = 0;
  std::string FilePath; ///< where the repro was written ("" if not)
};

/// Everything a campaign produced.
struct FuzzOutcome {
  FuzzStats Stats;
  std::vector<FuzzFailure> Failures;
  /// In injection mode: recorded demonstrations that the harness caught
  /// the corruption (successes, kept separate from genuine failures).
  std::vector<FuzzFailure> InjectedDemos;

  /// True when no genuine failure was found (in injection mode: every
  /// applicable injected bug was caught).
  bool clean() const { return Failures.empty(); }
};

/// Runs a fuzzing campaign.
FuzzOutcome runFuzzer(const FuzzConfig &Config);

/// Replays one corpus case: parses the kernel, reruns its configuration,
/// and checks the expectation the case pins (clean verify + bit-identical
/// execution, or — for inject= cases — that the corrupted schedule is
/// caught by the verifier). Returns true on pass.
bool runFuzzCase(const FuzzCase &Case, std::string *Error = nullptr);

/// Replays every `.slp` case under \p Dir; appends "<file>: <error>" lines
/// to \p Errors for each failing case and returns the number of cases run.
unsigned replayCorpusDir(const std::string &Dir,
                         std::vector<std::string> &Errors);

} // namespace slp

#endif // SLP_FUZZ_FUZZER_H
