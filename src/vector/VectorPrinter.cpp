//===- vector/VectorPrinter.cpp -------------------------------*- C++ -*-===//

#include "vector/VectorPrinter.h"

#include "ir/Printer.h"
#include "support/Error.h"

#include <cstdio>

using namespace slp;

static std::string laneList(const Kernel &K, const VInst &I) {
  std::string Out = "<";
  for (unsigned L = 0; L != I.Lanes; ++L) {
    if (L)
      Out += ", ";
    Out += printOperand(K, I.LaneOps[L]);
  }
  Out += ">";
  return Out;
}

std::string slp::printVInst(const Kernel &K, const VInst &I) {
  char Buf[64];
  switch (I.Kind) {
  case VInstKind::LoadPack:
    std::snprintf(Buf, sizeof(Buf), "v%u <- vload.%-13s ", I.Dst,
                  packModeName(I.Mode));
    return Buf + laneList(K, I);
  case VInstKind::StorePack:
    std::snprintf(Buf, sizeof(Buf), "vstore.%s v%u -> ",
                  packModeName(I.Mode), I.Src0);
    return Buf + laneList(K, I);
  case VInstKind::Shuffle: {
    std::snprintf(Buf, sizeof(Buf), "v%u <- vshuffle v%u, [", I.Dst,
                  I.Src0);
    std::string Out = Buf;
    for (unsigned L = 0; L != I.Lanes; ++L) {
      if (L)
        Out += ",";
      Out += std::to_string(I.Perm[L]);
    }
    return Out + "]";
  }
  case VInstKind::VectorOp:
    if (I.UnaryOp) {
      std::snprintf(Buf, sizeof(Buf), "v%u <- v%s v%u", I.Dst,
                    opcodeName(I.Op), I.Src0);
      return Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "v%u <- v%s v%u, v%u", I.Dst,
                  opcodeName(I.Op), I.Src0, I.Src1);
    return Buf;
  case VInstKind::ScalarExec:
    return "scalar " + printStatement(K, K.Body.statement(I.StmtId));
  case VInstKind::MaskedLoadPack:
    std::snprintf(Buf, sizeof(Buf), "v%u <- vmload.%s v%u, ", I.Dst,
                  packModeName(I.Mode), I.Src1);
    return Buf + laneList(K, I);
  case VInstKind::MaskedStorePack:
    std::snprintf(Buf, sizeof(Buf), "vmstore.%s v%u ? v%u -> ",
                  packModeName(I.Mode), I.Src1, I.Src0);
    return Buf + laneList(K, I);
  case VInstKind::Blend:
    std::snprintf(Buf, sizeof(Buf), "v%u <- vblend v%u ? v%u : v%u", I.Dst,
                  I.Src0, I.Src1, I.Src2);
    return Buf;
  }
  slpUnreachable("invalid instruction kind");
}

std::string slp::printVectorProgram(const Kernel &K,
                                    const VectorProgram &P) {
  std::string Out;
  unsigned Idx = 0;
  for (const VInst &I : P.Insts) {
    char Buf[16];
    std::snprintf(Buf, sizeof(Buf), "  [%3u] ", Idx++);
    Out += Buf;
    Out += printVInst(K, I);
    Out += "\n";
  }
  char Stats[160];
  std::snprintf(Stats, sizeof(Stats),
                "  ; %u superword stmt(s), %u scalar stmt(s), "
                "%u direct + %u permuted reuse(s), %u pack(s) materialized\n",
                P.Stats.SuperwordStatements, P.Stats.ScalarStatements,
                P.Stats.DirectReuses, P.Stats.PermutedReuses,
                P.Stats.MaterializedPacks);
  return Out + Stats;
}
