//===- vector/CodeGen.cpp -------------------------------------*- C++ -*-===//

#include "vector/CodeGen.h"

#include "analysis/Alignment.h"
#include "analysis/Dependence.h"
#include "slp/Pack.h"

#include <algorithm>

using namespace slp;

const char *slp::packModeName(PackMode Mode) {
  switch (Mode) {
  case PackMode::ContiguousAligned:
    return "contig";
  case PackMode::ContiguousUnaligned:
    return "contig.u";
  case PackMode::PermutedContiguous:
    return "contig.perm";
  case PackMode::Broadcast:
    return "bcast";
  case PackMode::GatherScalar:
    return "gather";
  case PackMode::LayoutContiguous:
    return "contig.layout";
  case PackMode::AllConstant:
    return "const";
  }
  return "<invalid>";
}

bool ScalarLayout::contiguousAligned(
    const std::vector<const Operand *> &LaneOperands) const {
  if (LaneOperands.empty())
    return false;
  for (const Operand *O : LaneOperands)
    if (!O->isScalar())
      return false;
  int64_t First = Slots[LaneOperands.front()->symbol()];
  if (First % static_cast<int64_t>(LaneOperands.size()) != 0)
    return false;
  for (unsigned L = 1, E = static_cast<unsigned>(LaneOperands.size()); L != E;
       ++L)
    if (Slots[LaneOperands[L]->symbol()] !=
        First + static_cast<int64_t>(L))
      return false;
  return true;
}

namespace {

/// A pack currently held in a vector register.
struct LiveReg {
  unsigned VReg = 0;
  std::string OrderedKey;
  std::string MultisetKey;
  std::vector<Operand> LaneOps;
  uint64_t LastUse = 0;
  /// True for superword-statement results (def-use forwarding), false for
  /// packs materialized from memory.
  bool IsResult = false;
};

class CodeGenerator {
public:
  CodeGenerator(const Kernel &K, const CodeGenOptions &Options,
                const ScalarLayout &Layout)
      : K(K), Options(Options), Layout(Layout) {}

  VectorProgram generate(const Schedule &S);

private:
  unsigned freshReg() { return Program.NumVRegs++; }

  /// Returns the vreg holding the ordered pack \p Lanes, reusing or
  /// shuffling a live register when possible, otherwise materializing the
  /// pack from memory/immediates.
  unsigned getPack(const std::vector<const Operand *> &Lanes);

  /// Chooses the PackMode for materializing \p Lanes.
  PackMode classify(const std::vector<const Operand *> &Lanes) const;

  /// Registers \p VReg as holding \p Lanes, evicting LRU on overflow.
  void registerPack(unsigned VReg, const std::vector<const Operand *> &Lanes,
                    bool IsResult = false);

  /// Removes live packs whose lanes may alias the written operand \p Lhs.
  void invalidateWrites(const std::vector<const Operand *> &WrittenLanes);

  unsigned genExprPack(const std::vector<const Expr *> &Nodes);
  void genGroup(const ScheduleItem &Item);
  void genSingle(unsigned StmtId);

  const Kernel &K;
  const CodeGenOptions &Options;
  const ScalarLayout &Layout;
  VectorProgram Program;
  std::vector<LiveReg> LiveRegs;
  uint64_t Clock = 0;
};

PackMode
CodeGenerator::classify(const std::vector<const Operand *> &Lanes) const {
  bool AllConst = std::all_of(Lanes.begin(), Lanes.end(),
                              [](const Operand *O) { return O->isConstant(); });
  if (AllConst)
    return PackMode::AllConstant;

  bool AllSame = std::all_of(Lanes.begin(), Lanes.end(),
                             [&Lanes](const Operand *O) {
                               return *O == *Lanes.front();
                             });
  if (AllSame)
    return PackMode::Broadcast;

  bool AllArray = std::all_of(Lanes.begin(), Lanes.end(),
                              [](const Operand *O) { return O->isArray(); });
  if (AllArray) {
    switch (classifyArrayPack(K, Lanes)) {
    case PackShape::ContiguousAligned:
      return PackMode::ContiguousAligned;
    case PackShape::ContiguousUnaligned:
      return PackMode::ContiguousUnaligned;
    case PackShape::PermutedContiguous:
      return PackMode::PermutedContiguous;
    case PackShape::AllConstant:
    case PackShape::Gather:
      return PackMode::GatherScalar;
    }
  }

  if (Layout.contiguousAligned(Lanes))
    return PackMode::LayoutContiguous;
  return PackMode::GatherScalar;
}

void CodeGenerator::registerPack(unsigned VReg,
                                 const std::vector<const Operand *> &Lanes,
                                 bool IsResult) {
  LiveReg R;
  R.VReg = VReg;
  R.IsResult = IsResult;
  R.OrderedKey = orderedPackKey(Lanes);
  R.MultisetKey = multisetPackKey(Lanes);
  for (const Operand *O : Lanes)
    R.LaneOps.push_back(*O);
  R.LastUse = ++Clock;

  // Replace any register already holding the same ordered pack.
  std::erase_if(LiveRegs, [&R](const LiveReg &L) {
    return L.OrderedKey == R.OrderedKey;
  });
  if (LiveRegs.size() >= Options.NumVectorRegisters) {
    auto Oldest =
        std::min_element(LiveRegs.begin(), LiveRegs.end(),
                         [](const LiveReg &A, const LiveReg &B) {
                           return A.LastUse < B.LastUse;
                         });
    LiveRegs.erase(Oldest);
  }
  LiveRegs.push_back(std::move(R));
}

void CodeGenerator::invalidateWrites(
    const std::vector<const Operand *> &WrittenLanes) {
  std::erase_if(LiveRegs, [&](const LiveReg &L) {
    for (const Operand &Held : L.LaneOps)
      for (const Operand *W : WrittenLanes)
        if (DependenceInfo::mayAlias(K, Held, *W))
          return true;
    return false;
  });
}

unsigned CodeGenerator::getPack(const std::vector<const Operand *> &Lanes) {
  std::string OrderedKey = orderedPackKey(Lanes);
  std::string MultisetKey = multisetPackKey(Lanes);

  // Direct reuse: the pack is live in exactly this lane order.
  for (LiveReg &L : LiveRegs) {
    if (L.OrderedKey == OrderedKey) {
      L.LastUse = ++Clock;
      ++Program.Stats.DirectReuses;
      return L.VReg;
    }
  }

  // Permuted reuse: live with the same contents; one shuffle suffices.
  // The original SLP algorithm does not exploit this indirect reuse, so
  // the baselines run with it disabled.
  for (LiveReg &L : LiveRegs) {
    if (!Options.EnablePermutedReuse)
      break;
    if (L.MultisetKey != MultisetKey)
      continue;
    std::vector<unsigned> Perm;
    std::vector<bool> Used(L.LaneOps.size(), false);
    bool Ok = true;
    for (const Operand *Want : Lanes) {
      bool Found = false;
      for (unsigned S = 0, E = static_cast<unsigned>(L.LaneOps.size());
           S != E; ++S) {
        if (Used[S] || !(L.LaneOps[S] == *Want))
          continue;
        Perm.push_back(S);
        Used[S] = true;
        Found = true;
        break;
      }
      if (!Found) {
        Ok = false;
        break;
      }
    }
    if (!Ok)
      continue;
    L.LastUse = ++Clock;
    VInst Shuf;
    Shuf.Kind = VInstKind::Shuffle;
    Shuf.Lanes = static_cast<unsigned>(Lanes.size());
    Shuf.Src0 = L.VReg;
    Shuf.Dst = freshReg();
    Shuf.Perm = std::move(Perm);
    Program.Insts.push_back(std::move(Shuf));
    ++Program.Stats.PermutedReuses;
    registerPack(Program.Insts.back().Dst, Lanes);
    return Program.Insts.back().Dst;
  }

  // Materialize from memory / immediates.
  VInst Load;
  Load.Kind = VInstKind::LoadPack;
  Load.Lanes = static_cast<unsigned>(Lanes.size());
  Load.Dst = freshReg();
  Load.Mode = classify(Lanes);
  for (const Operand *O : Lanes)
    Load.LaneOps.push_back(*O);
  Program.Insts.push_back(std::move(Load));
  ++Program.Stats.MaterializedPacks;
  // Loaded packs are always visible within the current superword
  // statement (a repeated operand uses the same register); whether they
  // stay live across statements depends on CacheLoadedPacks (see
  // CodeGenOptions).
  registerPack(Program.Insts.back().Dst, Lanes);
  return Program.Insts.back().Dst;
}

unsigned CodeGenerator::genExprPack(const std::vector<const Expr *> &Nodes) {
  if (Nodes.front()->isLeaf()) {
    std::vector<const Operand *> Lanes;
    Lanes.reserve(Nodes.size());
    for (const Expr *N : Nodes) {
      assert(N->isLeaf() && "isomorphism violated during code generation");
      Lanes.push_back(&N->leaf());
    }
    return getPack(Lanes);
  }

  OpCode Op = Nodes.front()->opcode();
  unsigned NumChildren = Nodes.front()->numChildren();
  std::vector<unsigned> ChildRegs;
  for (unsigned C = 0; C != NumChildren; ++C) {
    std::vector<const Expr *> Children;
    Children.reserve(Nodes.size());
    for (const Expr *N : Nodes)
      Children.push_back(&N->child(C));
    ChildRegs.push_back(genExprPack(Children));
  }

  if (Op == OpCode::Select) {
    VInst BlendInst;
    BlendInst.Kind = VInstKind::Blend;
    BlendInst.Lanes = static_cast<unsigned>(Nodes.size());
    BlendInst.Src0 = ChildRegs[0];
    BlendInst.Src1 = ChildRegs[1];
    BlendInst.Src2 = ChildRegs[2];
    BlendInst.Dst = freshReg();
    Program.Insts.push_back(std::move(BlendInst));
    return Program.Insts.back().Dst;
  }

  VInst OpInst;
  OpInst.Kind = VInstKind::VectorOp;
  OpInst.Lanes = static_cast<unsigned>(Nodes.size());
  OpInst.Op = Op;
  OpInst.UnaryOp = isUnaryOp(Op);
  OpInst.Src0 = ChildRegs[0];
  if (ChildRegs.size() > 1)
    OpInst.Src1 = ChildRegs[1];
  OpInst.Dst = freshReg();
  Program.Insts.push_back(std::move(OpInst));
  return Program.Insts.back().Dst;
}

void CodeGenerator::genGroup(const ScheduleItem &Item) {
  std::vector<const Expr *> Roots;
  std::vector<const Operand *> LhsLanes;
  for (unsigned S : Item.Lanes) {
    Roots.push_back(&K.Body.statement(S).rhs());
    LhsLanes.push_back(&K.Body.statement(S).lhs());
  }

  // Grouping only packs statements with identical isomorphism signatures,
  // and the signature includes the guard shape — so either every lane is
  // guarded or none is. The guard lanes become an ordinary mask vector
  // (0.0/1.0 per lane) computed before the RHS, so it can gate a masked
  // load of the RHS as well as the store.
  bool Guarded = K.Body.statement(Item.Lanes.front()).hasGuard();
  unsigned MaskReg = 0;
  if (Guarded) {
    std::vector<const Expr *> GuardRoots;
    GuardRoots.reserve(Item.Lanes.size());
    for (unsigned S : Item.Lanes)
      GuardRoots.push_back(&K.Body.statement(S).guard());
    MaskReg = genExprPack(GuardRoots);
  }

  // Guarded copy shape (`if (m) dst[i] = src[i];`): the whole RHS is one
  // array pack, so fold the mask into the load itself. The masked load
  // zeroes untaken lanes; the masked store below discards exactly those
  // lanes, so memory semantics are unchanged. The result is deliberately
  // NOT registered in the pack cache — its untaken lanes differ from
  // memory.
  unsigned Result;
  if (Guarded && Roots.front()->isLeaf() &&
      std::all_of(Roots.begin(), Roots.end(),
                  [](const Expr *N) { return N->leaf().isArray(); })) {
    std::vector<const Operand *> RhsLanes;
    RhsLanes.reserve(Roots.size());
    for (const Expr *N : Roots)
      RhsLanes.push_back(&N->leaf());
    VInst Load;
    Load.Kind = VInstKind::MaskedLoadPack;
    Load.Lanes = Item.width();
    Load.Dst = freshReg();
    Load.Src1 = MaskReg;
    Load.Mode = classify(RhsLanes);
    for (const Operand *O : RhsLanes)
      Load.LaneOps.push_back(*O);
    Program.Insts.push_back(std::move(Load));
    ++Program.Stats.MaterializedPacks;
    Result = Program.Insts.back().Dst;
  } else {
    Result = genExprPack(Roots);
  }

  VInst Store;
  Store.Kind = Guarded ? VInstKind::MaskedStorePack : VInstKind::StorePack;
  Store.Lanes = Item.width();
  Store.Src0 = Result;
  if (Guarded)
    Store.Src1 = MaskReg;
  Store.Mode = classify(LhsLanes);
  // Broadcast makes no sense for a store destination; distinct dependent
  // lanes were excluded by grouping, so same-location lanes degrade to a
  // scatter.
  if (Store.Mode == PackMode::Broadcast ||
      Store.Mode == PackMode::AllConstant)
    Store.Mode = PackMode::GatherScalar;
  for (const Operand *O : LhsLanes)
    Store.LaneOps.push_back(*O);
  Store.StmtIds.assign(Item.Lanes.begin(), Item.Lanes.end());
  Program.Insts.push_back(std::move(Store));
  ++Program.Stats.SuperwordStatements;

  // The store may overwrite data cached in live registers.
  invalidateWrites(LhsLanes);
  // Without the register-file-as-cache treatment, packs loaded from
  // memory die at the end of the superword statement; only results are
  // forwarded (def-use chains). Constant splats survive for everyone —
  // any code generator hoists those out of the loop.
  if (!Options.CacheLoadedPacks)
    std::erase_if(LiveRegs, [](const LiveReg &L) {
      if (L.IsResult)
        return false;
      for (const Operand &O : L.LaneOps)
        if (!O.isConstant())
          return true;
      return false;
    });
  // A masked store leaves untaken lanes' memory at its prior contents, so
  // the result register does NOT match what a load of the lhs would see;
  // never forward it.
  if (Guarded)
    return;
  // The freshly computed result is live and reusable under its lhs name —
  // unless a lane stores to an integer-typed location: those truncate the
  // value on the way to memory, so the register no longer matches what a
  // load would see and forwarding it would resurrect the untruncated
  // float (found by slp-fuzz, pinned in tests/fuzz/corpus).
  bool TruncatingStore = false;
  for (const Operand *O : LhsLanes) {
    ScalarType Ty =
        O->isScalar() ? K.scalar(O->symbol()).Ty : K.array(O->symbol()).Ty;
    if (!isFloatType(Ty)) {
      TruncatingStore = true;
      break;
    }
  }
  if (!TruncatingStore)
    registerPack(Result, LhsLanes, /*IsResult=*/true);
}

void CodeGenerator::genSingle(unsigned StmtId) {
  VInst Exec;
  Exec.Kind = VInstKind::ScalarExec;
  Exec.StmtId = StmtId;
  Program.Insts.push_back(std::move(Exec));
  ++Program.Stats.ScalarStatements;
  const Operand &Lhs = K.Body.statement(StmtId).lhs();
  std::vector<const Operand *> Written{&Lhs};
  invalidateWrites(Written);
}

VectorProgram CodeGenerator::generate(const Schedule &S) {
  for (const ScheduleItem &Item : S.Items) {
    if (Item.isGroup())
      genGroup(Item);
    else
      genSingle(Item.Lanes.front());
  }
  return std::move(Program);
}

} // namespace

VectorProgram slp::generateVectorProgram(const Kernel &K, const Schedule &S,
                                         const CodeGenOptions &Options,
                                         const ScalarLayout &Layout) {
  CodeGenerator Gen(K, Options, Layout);
  return Gen.generate(S);
}
