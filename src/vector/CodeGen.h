//===- vector/CodeGen.h - Superword code generation -------------*- C++ -*-===//
///
/// \file
/// Lowers a valid schedule (Section 4 output) to a VectorProgram. The
/// generator tracks the vector register file as a compiler-controlled cache
/// of live packs: a pack already live in lane order is reused for free, a
/// pack live in another order costs one shuffle, and anything else is
/// materialized with the cheapest PackMode the alignment analysis (plus the
/// scalar data layout) allows. Stores invalidate aliasing live packs.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_VECTOR_CODEGEN_H
#define SLP_VECTOR_CODEGEN_H

#include "slp/Scheduling.h"
#include "vector/VectorIR.h"

namespace slp {

/// Memory placement of the kernel's scalars, produced by the data layout
/// stage (Section 5.1). The default placement spaces scalars two element
/// slots apart so that no pack is accidentally contiguous.
struct ScalarLayout {
  std::vector<int64_t> Slots;

  /// Default (unoptimized) placement for \p NumScalars scalars.
  static ScalarLayout defaultLayout(unsigned NumScalars) {
    ScalarLayout L;
    L.Slots.resize(NumScalars);
    for (unsigned I = 0; I != NumScalars; ++I)
      L.Slots[I] = static_cast<int64_t>(I) * 2;
    return L;
  }

  /// True when the all-scalar pack \p LaneOperands occupies consecutive
  /// ascending slots starting at a multiple of the lane count.
  bool contiguousAligned(const std::vector<const Operand *> &LaneOperands)
      const;
};

/// Code generation parameters.
struct CodeGenOptions {
  unsigned DatapathBits = 128;
  /// Architected vector registers available as a pack cache (16 XMM
  /// registers in 64-bit SSE).
  unsigned NumVectorRegisters = 16;
  /// Reuse a live pack that holds the right data in a different lane
  /// order by emitting one permutation. The paper's framework exploits
  /// this "indirect" superword reuse; the original SLP algorithm neglects
  /// it (Section 4.3), so the baselines run with this disabled.
  bool EnablePermutedReuse = true;
  /// Keep packs materialized from memory live for later reuse (treating
  /// the vector register file as a compiler-controlled cache). The
  /// original SLP algorithm only forwards pack *results* along def-use
  /// chains and re-loads memory packs at every use — caching loads is the
  /// Shin et al. technique the paper builds its reuse analysis around —
  /// so the baselines run with this disabled.
  bool CacheLoadedPacks = true;
};

/// Lowers \p S (a valid schedule for \p K's block) to vector instructions.
VectorProgram generateVectorProgram(const Kernel &K, const Schedule &S,
                                    const CodeGenOptions &Options,
                                    const ScalarLayout &Layout);

} // namespace slp

#endif // SLP_VECTOR_CODEGEN_H
