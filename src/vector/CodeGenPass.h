//===- vector/CodeGenPass.h - Vector code generation as a pass --*- C++ -*-===//
///
/// \file
/// Lowers the scheduled superword statements to the vector program
/// (VectorIR), treating the vector register file as a compiler-controlled
/// cache of live packs. Reports the reuse bookkeeping the paper's figures
/// are built on: direct reuses, permuted (indirect) reuses, materialized
/// packs, and permutation instructions emitted.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_VECTOR_CODEGENPASS_H
#define SLP_VECTOR_CODEGENPASS_H

#include "support/PassManager.h"

namespace slp {

class CodeGenPass : public KernelPass {
public:
  const char *name() const override { return "codegen"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_VECTOR_CODEGENPASS_H
