//===- vector/VectorPrinter.h - Vector program disassembly ------*- C++ -*-===//
///
/// \file
/// Human-readable rendering of VectorPrograms, one instruction per line,
/// e.g.:
/// \code
///   v3 <- vload.contig   <A[4*i], A[4*i + 1], A[4*i + 2], A[4*i + 3]>
///   v4 <- vmul           v3, v1
///   vstore.gather v4 -> <B[2*i], B[2*i + 2], ...>
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SLP_VECTOR_VECTORPRINTER_H
#define SLP_VECTOR_VECTORPRINTER_H

#include "ir/Kernel.h"
#include "vector/VectorIR.h"

#include <string>

namespace slp {

/// Renders one instruction.
std::string printVInst(const Kernel &K, const VInst &I);

/// Renders the whole program with instruction indices and a trailing
/// statistics line.
std::string printVectorProgram(const Kernel &K, const VectorProgram &P);

} // namespace slp

#endif // SLP_VECTOR_VECTORPRINTER_H
