//===- vector/CodeGenPass.cpp ---------------------------------*- C++ -*-===//

#include "vector/CodeGenPass.h"

#include "slp/PipelineState.h"
#include "vector/CodeGen.h"

using namespace slp;

void CodeGenPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  const Kernel &K = S.ensurePreprocessed();

  S.Final = K.clone();
  S.Program =
      generateVectorProgram(K, S.ensureSchedule(), S.CG,
                            S.defaultScalarLayout());
  S.ProgramReady = true;
  S.TransformationApplied = true;

  unsigned Permutes = 0;
  for (const VInst &I : S.Program.Insts)
    Permutes += I.Kind == VInstKind::Shuffle;
  const CodeGenStats &CS = S.Program.Stats;
  Ctx.Stats.add("codegen.direct-reuses", CS.DirectReuses);
  Ctx.Stats.add("codegen.permuted-reuses", CS.PermutedReuses);
  Ctx.Stats.add("codegen.materialized-packs", CS.MaterializedPacks);
  Ctx.Stats.add("codegen.permutes-emitted", Permutes);
  Ctx.Stats.add("codegen.vector-insts", S.Program.Insts.size());

  unsigned Reuses = CS.DirectReuses + CS.PermutedReuses;
  if (CS.SuperwordStatements > 0)
    Ctx.Remarks.applied(
        name(), "emitted " + std::to_string(CS.SuperwordStatements) +
                    " superword statement(s), exploiting " +
                    std::to_string(Reuses) + " superword reuse(s) (" +
                    std::to_string(CS.PermutedReuses) + " via permutation)");
}
