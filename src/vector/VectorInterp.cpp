//===- vector/VectorInterp.cpp --------------------------------*- C++ -*-===//

#include "vector/VectorInterp.h"

#include "support/Error.h"

#include <cmath>

using namespace slp;

static double applyOp(OpCode Op, double A, double B) {
  switch (Op) {
  case OpCode::Add:
    return A + B;
  case OpCode::Sub:
    return A - B;
  case OpCode::Mul:
    return A * B;
  case OpCode::Div:
    return A / B;
  case OpCode::Min:
    return std::fmin(A, B);
  case OpCode::Max:
    return std::fmax(A, B);
  case OpCode::Neg:
    return -A;
  case OpCode::Sqrt:
    // Must match the scalar interpreter exactly (sqrt of magnitude).
    return std::sqrt(std::fabs(A));
  case OpCode::Abs:
    return std::fabs(A);
  case OpCode::CmpLT:
    return A < B ? 1.0 : 0.0;
  case OpCode::CmpLE:
    return A <= B ? 1.0 : 0.0;
  case OpCode::CmpGT:
    return A > B ? 1.0 : 0.0;
  case OpCode::CmpGE:
    return A >= B ? 1.0 : 0.0;
  case OpCode::CmpEQ:
    return A == B ? 1.0 : 0.0;
  case OpCode::CmpNE:
    return A != B ? 1.0 : 0.0;
  case OpCode::Select:
    break; // ternary: lowered to Blend, never a VectorOp
  }
  slpUnreachable("invalid opcode");
}

namespace {

/// Shared body of the two entry points: executes one iteration using the
/// caller-provided register scratch (so the whole-nest runner reuses one
/// set of registers across iterations).
void runOnceWithScratch(const Kernel &K, const VectorProgram &Program,
                        Environment &Env,
                        const std::vector<int64_t> &Indices,
                        std::vector<std::vector<double>> &Regs) {
  if (Regs.size() < Program.NumVRegs)
    Regs.resize(Program.NumVRegs);

  for (const VInst &I : Program.Insts) {
    switch (I.Kind) {
    case VInstKind::LoadPack: {
      std::vector<double> &Dst = Regs[I.Dst];
      Dst.resize(I.Lanes);
      for (unsigned L = 0; L != I.Lanes; ++L)
        Dst[L] = evalOperandValue(K, Env, I.LaneOps[L], Indices);
      break;
    }
    case VInstKind::StorePack: {
      const std::vector<double> &Src = Regs[I.Src0];
      assert(Src.size() == I.Lanes && "register width mismatch");
      for (unsigned L = 0; L != I.Lanes; ++L)
        storeToOperand(K, Env, I.LaneOps[L], Src[L], Indices);
      break;
    }
    case VInstKind::Shuffle: {
      const std::vector<double> Src = Regs[I.Src0]; // copy: dst may alias
      std::vector<double> &Dst = Regs[I.Dst];
      Dst.resize(I.Lanes);
      for (unsigned L = 0; L != I.Lanes; ++L) {
        assert(I.Perm[L] < Src.size() && "shuffle lane out of range");
        Dst[L] = Src[I.Perm[L]];
      }
      break;
    }
    case VInstKind::VectorOp: {
      const std::vector<double> &A = Regs[I.Src0];
      std::vector<double> Result(I.Lanes);
      if (I.UnaryOp) {
        for (unsigned L = 0; L != I.Lanes; ++L)
          Result[L] = applyOp(I.Op, A[L], 0);
      } else {
        const std::vector<double> &B = Regs[I.Src1];
        for (unsigned L = 0; L != I.Lanes; ++L)
          Result[L] = applyOp(I.Op, A[L], B[L]);
      }
      Regs[I.Dst] = std::move(Result);
      break;
    }
    case VInstKind::ScalarExec:
      execStatementScalar(K, Env, K.Body.statement(I.StmtId), Indices);
      break;
    case VInstKind::MaskedLoadPack: {
      const std::vector<double> &Mask = Regs[I.Src1];
      assert(Mask.size() == I.Lanes && "mask width mismatch");
      std::vector<double> &Dst = Regs[I.Dst];
      Dst.resize(I.Lanes);
      // The load happens on every lane (addresses are in bounds by
      // construction); the mask zeroes the untaken lanes' values.
      for (unsigned L = 0; L != I.Lanes; ++L)
        Dst[L] = Mask[L] != 0.0
                     ? evalOperandValue(K, Env, I.LaneOps[L], Indices)
                     : 0.0;
      break;
    }
    case VInstKind::MaskedStorePack: {
      const std::vector<double> &Src = Regs[I.Src0];
      const std::vector<double> &Mask = Regs[I.Src1];
      assert(Src.size() == I.Lanes && "register width mismatch");
      assert(Mask.size() == I.Lanes && "mask width mismatch");
      for (unsigned L = 0; L != I.Lanes; ++L)
        if (Mask[L] != 0.0)
          storeToOperand(K, Env, I.LaneOps[L], Src[L], Indices);
      break;
    }
    case VInstKind::Blend: {
      const std::vector<double> &Cond = Regs[I.Src0];
      const std::vector<double> &A = Regs[I.Src1];
      const std::vector<double> &B = Regs[I.Src2];
      std::vector<double> Result(I.Lanes);
      for (unsigned L = 0; L != I.Lanes; ++L)
        Result[L] = Cond[L] != 0.0 ? A[L] : B[L];
      Regs[I.Dst] = std::move(Result);
      break;
    }
    }
  }
}

} // namespace

void slp::runVectorProgramOnce(const Kernel &K, const VectorProgram &Program,
                               Environment &Env,
                               const std::vector<int64_t> &Indices) {
  std::vector<std::vector<double>> Regs;
  runOnceWithScratch(K, Program, Env, Indices, Regs);
}

void slp::runVectorProgram(const Kernel &K, const VectorProgram &Program,
                           Environment &Env) {
  std::vector<std::vector<double>> Regs;
  forEachIteration(K, [&](const std::vector<int64_t> &Indices) {
    runOnceWithScratch(K, Program, Env, Indices, Regs);
  });
}
