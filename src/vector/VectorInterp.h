//===- vector/VectorInterp.h - Vector program execution ---------*- C++ -*-===//
///
/// \file
/// Executes a VectorProgram over a concrete Environment, lane-faithfully:
/// loads fill virtual vector registers, shuffles permute them, vector ops
/// combine them element-wise, and stores scatter them back. Running this
/// against the scalar reference interpreter validates the entire SLP
/// pipeline end to end, including the register-reuse and invalidation logic
/// of the code generator (a stale reused register produces a miscompare).
///
//===----------------------------------------------------------------------===//

#ifndef SLP_VECTOR_VECTORINTERP_H
#define SLP_VECTOR_VECTORINTERP_H

#include "ir/Interpreter.h"
#include "vector/VectorIR.h"

namespace slp {

/// Executes \p Program once per iteration of \p K's loop nest, mutating
/// \p Env.
void runVectorProgram(const Kernel &K, const VectorProgram &Program,
                      Environment &Env);

/// Executes \p Program for a single iteration \p Indices. Register
/// scratch is interpreter-owned; callers that execute a program many
/// times should go through an ExecEngine (exec/ExecEngine.h), whose
/// pooled arena amortizes the scratch across runs.
void runVectorProgramOnce(const Kernel &K, const VectorProgram &Program,
                          Environment &Env,
                          const std::vector<int64_t> &Indices);

} // namespace slp

#endif // SLP_VECTOR_VECTORINTERP_H
