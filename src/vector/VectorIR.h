//===- vector/VectorIR.h - Vectorized basic-block programs ------*- C++ -*-===//
///
/// \file
/// The instruction stream produced by the vector code generator for one
/// execution of a vectorized basic block. Instructions carry both exact
/// lane semantics (so the vector interpreter can execute them and be checked
/// against the scalar reference) and a PackMode classification (so the
/// machine cost model can price the packing/unpacking work exactly as the
/// paper's cost discussion requires).
///
//===----------------------------------------------------------------------===//

#ifndef SLP_VECTOR_VECTORIR_H
#define SLP_VECTOR_VECTORIR_H

#include "ir/Kernel.h"

#include <vector>

namespace slp {

/// How a LoadPack/StorePack instruction touches memory.
enum class PackMode : uint8_t {
  /// One aligned vector memory operation.
  ContiguousAligned,
  /// One unaligned vector memory operation (or a split pair on older
  /// microarchitectures; the machine model decides the price).
  ContiguousUnaligned,
  /// One unaligned vector memory operation plus one in-register permute.
  PermutedContiguous,
  /// All lanes read the same location: one scalar load plus a broadcast
  /// shuffle.
  Broadcast,
  /// Element-wise gather/scatter: N scalar memory ops plus N-1 (N) lane
  /// insert (extract) operations — the paper's expensive packing/unpacking.
  GatherScalar,
  /// Scalars made adjacent and aligned by the data layout stage: one
  /// vector memory operation (the Section 5.1 payoff).
  LayoutContiguous,
  /// Lanes are literal constants; materialized without memory traffic.
  AllConstant,
};

/// Returns a short mnemonic for \p Mode.
const char *packModeName(PackMode Mode);

enum class VInstKind : uint8_t {
  LoadPack,  ///< Dst <- the lane locations in LaneOps
  StorePack, ///< lane locations in LaneOps <- Src0
  Shuffle,   ///< Dst[l] <- Src0[Perm[l]]
  VectorOp,  ///< Dst <- Op(Src0 [, Src1]) lane-wise
  ScalarExec, ///< execute block statement StmtId with scalar semantics
  /// Dst[l] <- Src1[l] != 0 ? load(LaneOps[l]) : 0.0. The mask register
  /// (Src1) suppresses the untaken lanes' loaded values; the memory access
  /// itself still happens on every lane (if-converted semantics — all
  /// addresses are in bounds by construction).
  MaskedLoadPack,
  /// lane locations in LaneOps <- Src0[l] where Src1[l] != 0; lanes with a
  /// zero mask keep their prior memory contents.
  MaskedStorePack,
  /// Dst[l] <- Src0[l] != 0 ? Src1[l] : Src2[l] (vector select).
  Blend,
};

/// One vector instruction. Fields are meaningful per VInstKind.
struct VInst {
  VInstKind Kind = VInstKind::ScalarExec;
  unsigned Lanes = 1;
  unsigned Dst = 0;
  unsigned Src0 = 0;
  unsigned Src1 = 0;
  /// Blend only: the false-arm vector register.
  unsigned Src2 = 0;
  OpCode Op = OpCode::Add;
  bool UnaryOp = false;
  PackMode Mode = PackMode::GatherScalar;
  std::vector<Operand> LaneOps;
  std::vector<unsigned> Perm;
  unsigned StmtId = 0;
  /// StorePack only: the block statement each lane implements, parallel to
  /// LaneOps. A provenance hint for the static verifier; empty on
  /// hand-built programs, in which case the verifier matches lanes to
  /// statements by location and value instead.
  std::vector<unsigned> StmtIds;
};

/// Book-keeping from code generation, reported in the paper's figures.
struct CodeGenStats {
  /// Packs satisfied directly from a live vector register (free).
  unsigned DirectReuses = 0;
  /// Packs satisfied from a live register via one permutation.
  unsigned PermutedReuses = 0;
  /// Packs materialized from memory.
  unsigned MaterializedPacks = 0;
  /// Superword statements emitted.
  unsigned SuperwordStatements = 0;
  /// Statements executed scalarly.
  unsigned ScalarStatements = 0;
};

/// A vectorized basic-block program (one execution of the block).
struct VectorProgram {
  std::vector<VInst> Insts;
  unsigned NumVRegs = 0;
  CodeGenStats Stats;
};

} // namespace slp

#endif // SLP_VECTOR_VECTORIR_H
