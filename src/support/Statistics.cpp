//===- support/Statistics.cpp ---------------------------------*- C++ -*-===//

#include "support/Statistics.h"

#include <cstdio>

using namespace slp;

void Statistics::add(const std::string &Name, uint64_t Delta) {
  for (Statistic &S : Counters)
    if (S.Name == Name) {
      S.Value += Delta;
      return;
    }
  Counters.push_back(Statistic{Name, Delta});
}

void Statistics::set(const std::string &Name, uint64_t Value) {
  for (Statistic &S : Counters)
    if (S.Name == Name) {
      S.Value = Value;
      return;
    }
  Counters.push_back(Statistic{Name, Value});
}

uint64_t Statistics::get(const std::string &Name) const {
  for (const Statistic &S : Counters)
    if (S.Name == Name)
      return S.Value;
  return 0;
}

bool Statistics::has(const std::string &Name) const {
  for (const Statistic &S : Counters)
    if (S.Name == Name)
      return true;
  return false;
}

void Statistics::merge(const Statistics &Other) {
  for (const Statistic &S : Other.Counters)
    add(S.Name, S.Value);
}

std::string Statistics::str(const std::string &Title) const {
  std::string Out = "=== " + Title + " ===\n";
  char Line[160];
  for (const Statistic &S : Counters) {
    std::snprintf(Line, sizeof(Line), "  %8llu  %s\n",
                  static_cast<unsigned long long>(S.Value), S.Name.c_str());
    Out += Line;
  }
  return Out;
}
