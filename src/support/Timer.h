//===- support/Timer.h - Wall-clock timing utilities ------------*- C++ -*-===//
///
/// \file
/// Small wall-clock timing helpers used by the pass manager (per-pass
/// timing, `--time-passes`) and the benches (per-stage compile time in the
/// BENCH_*.json output). A Timer accumulates elapsed seconds over any
/// number of start/stop intervals; TimeRegion is the RAII wrapper; and
/// TimingReport is a named, ordered collection of accumulated timings that
/// can be merged across kernels and across worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SUPPORT_TIMER_H
#define SLP_SUPPORT_TIMER_H

#include <cassert>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace slp {

/// Accumulating wall-clock timer.
class Timer {
public:
  /// Starts an interval. Must not already be running.
  void start() {
    assert(!Running && "timer already running");
    Running = true;
    Begin = std::chrono::steady_clock::now();
  }

  /// Ends the current interval, adding its duration to the total.
  void stop() {
    assert(Running && "timer not running");
    Running = false;
    TotalSeconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - Begin)
                        .count();
  }

  bool isRunning() const { return Running; }

  /// Accumulated seconds over all completed intervals.
  double seconds() const { return TotalSeconds; }

  void reset() {
    TotalSeconds = 0;
    Running = false;
  }

private:
  std::chrono::steady_clock::time_point Begin;
  double TotalSeconds = 0;
  bool Running = false;
};

/// RAII region: starts \p T on construction, stops it on destruction.
class TimeRegion {
public:
  explicit TimeRegion(Timer &T) : TheTimer(T) { TheTimer.start(); }
  ~TimeRegion() { TheTimer.stop(); }
  TimeRegion(const TimeRegion &) = delete;
  TimeRegion &operator=(const TimeRegion &) = delete;

private:
  Timer &TheTimer;
};

/// One named entry of a timing report.
struct TimingEntry {
  std::string Name;
  double Seconds = 0;
  uint64_t Invocations = 0;
};

/// A named, insertion-ordered collection of accumulated wall-clock
/// timings. Merging preserves the order of first appearance, so reports
/// merged across kernels keep the canonical pass order.
class TimingReport {
public:
  /// Adds \p Seconds (one invocation) to the entry named \p Name,
  /// creating it at the end when new.
  void record(const std::string &Name, double Seconds,
              uint64_t Invocations = 1);

  /// Folds every entry of \p Other into this report.
  void merge(const TimingReport &Other);

  /// Total seconds across all entries.
  double totalSeconds() const;

  /// Seconds recorded under \p Name (0 when absent).
  double secondsFor(const std::string &Name) const;

  bool empty() const { return Entries.empty(); }
  const std::vector<TimingEntry> &entries() const { return Entries; }

  /// Renders the report as an `--time-passes`-style table.
  std::string str(const std::string &Title = "pass timing") const;

private:
  std::vector<TimingEntry> Entries;
};

} // namespace slp

#endif // SLP_SUPPORT_TIMER_H
