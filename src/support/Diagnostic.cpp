//===- support/Diagnostic.cpp ---------------------------------*- C++ -*-===//

#include "support/Diagnostic.h"

#include <cstdio>
#include <sstream>

using namespace slp;

const char *slp::diagSeverityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "<invalid>";
}

std::string DiagLocation::str() const {
  std::string Out;
  auto Append = [&Out](const char *Name, int Value) {
    if (Value < 0)
      return;
    if (!Out.empty())
      Out += ", ";
    Out += Name;
    Out += ' ';
    Out += std::to_string(Value);
  };
  Append("inst", Inst);
  Append("lane", Lane);
  Append("vreg", VReg);
  Append("statement", Stmt);
  Append("item", Item);
  return Out;
}

std::string Diagnostic::render() const {
  std::string Out = diagSeverityName(Severity);
  Out += " [";
  Out += Code;
  Out += ']';
  std::string Where = Loc.str();
  if (!Where.empty()) {
    Out += " (";
    Out += Where;
    Out += ')';
  }
  Out += ": ";
  Out += Message;
  return Out;
}

/// JSON string escaping for message text (codes and severities are plain
/// identifiers and need none).
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Diagnostic::toJson() const {
  std::ostringstream Out;
  Out << "{\"code\":\"" << Code << "\",\"severity\":\""
      << diagSeverityName(Severity) << "\",\"message\":\""
      << jsonEscape(Message) << "\"";
  if (!Loc.empty()) {
    Out << ",\"loc\":{";
    bool First = true;
    auto Field = [&](const char *Name, int Value) {
      if (Value < 0)
        return;
      if (!First)
        Out << ',';
      First = false;
      Out << '"' << Name << "\":" << Value;
    };
    Field("stmt", Loc.Stmt);
    Field("inst", Loc.Inst);
    Field("vreg", Loc.VReg);
    Field("lane", Loc.Lane);
    Field("item", Loc.Item);
    Out << '}';
  }
  Out << '}';
  return Out.str();
}

Diagnostic &DiagnosticEngine::report(std::string Code, DiagSeverity Severity,
                                     std::string Message) {
  Diagnostic D;
  D.Code = std::move(Code);
  D.Severity = Severity;
  D.Message = std::move(Message);
  add(std::move(D));
  return Diags.back();
}

void DiagnosticEngine::add(Diagnostic Diag) {
  if (WarningsAsErrors && Diag.Severity == DiagSeverity::Warning)
    Diag.Severity = DiagSeverity::Error;
  Diags.push_back(std::move(Diag));
}

unsigned DiagnosticEngine::count(DiagSeverity Severity) const {
  return countDiagnostics(Diags, Severity);
}

std::string slp::renderDiagnostics(const std::vector<Diagnostic> &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.render();
    Out += '\n';
  }
  return Out;
}

std::string slp::diagnosticsToJson(const std::vector<Diagnostic> &Diags) {
  std::string Out = "[";
  for (unsigned I = 0; I != Diags.size(); ++I) {
    if (I)
      Out += ',';
    Out += Diags[I].toJson();
  }
  Out += ']';
  return Out;
}

unsigned slp::countDiagnostics(const std::vector<Diagnostic> &Diags,
                               DiagSeverity Severity) {
  unsigned N = 0;
  for (const Diagnostic &D : Diags)
    N += D.Severity == Severity;
  return N;
}
