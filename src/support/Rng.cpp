//===- support/Rng.cpp ----------------------------------------*- C++ -*-===//

#include "support/Rng.h"

#include <cassert>

using namespace slp;

uint64_t Rng::next() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1DULL;
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  return next() % Bound;
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(nextBelow(
                  static_cast<uint64_t>(Hi - Lo + 1)));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}
