//===- support/Error.h - Assertion and fatal-error helpers -----*- C++ -*-===//
//
// Part of the holistic-slp project. See README.md for details.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers for reporting programmatic errors. Library code in this
/// project does not use exceptions; invariant violations abort with a
/// message, and user-input errors are reported through std::optional /
/// ParseResult-style returns at the API boundary.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SUPPORT_ERROR_H
#define SLP_SUPPORT_ERROR_H

#include <cassert>
#include <string>

namespace slp {

/// Prints \p Message to stderr and aborts. Used for invariant violations
/// that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in control flow that must never be reached if the program
/// invariants hold.
[[noreturn]] void slpUnreachable(const char *Message);

} // namespace slp

#endif // SLP_SUPPORT_ERROR_H
