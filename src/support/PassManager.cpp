//===- support/PassManager.cpp --------------------------------*- C++ -*-===//

#include "support/PassManager.h"

using namespace slp;

std::string Remark::str() const {
  const char *Prefix = "note";
  switch (Kind) {
  case RemarkKind::Applied:
    Prefix = "remark";
    break;
  case RemarkKind::Missed:
    Prefix = "missed";
    break;
  case RemarkKind::Note:
    Prefix = "note";
    break;
  }
  std::string Out = Prefix;
  Out += ": ";
  if (!Kernel.empty()) {
    Out += Kernel;
    Out += ": ";
  }
  Out += "[";
  Out += Pass;
  Out += "] ";
  Out += Message;
  return Out;
}

void RemarkStream::emit(RemarkKind Kind, const std::string &Pass,
                        std::string Message) {
  Remarks.push_back(Remark{Kind, Pass, Subject, std::move(Message)});
}

KernelPass::~KernelPass() = default;

void PassPipeline::addPass(std::unique_ptr<KernelPass> Pass) {
  if (Pass)
    Passes.push_back(std::move(Pass));
}

std::vector<std::string> PassPipeline::passNames() const {
  std::vector<std::string> Names;
  Names.reserve(Passes.size());
  for (const auto &P : Passes)
    Names.push_back(P->name());
  return Names;
}

void PassPipeline::run(PassContext &Ctx, TimingReport &Timing) {
  for (const auto &P : Passes) {
    Timer T;
    {
      TimeRegion R(T);
      P->run(Ctx);
    }
    Timing.record(P->name(), T.seconds());
  }
}
