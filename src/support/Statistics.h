//===- support/Statistics.h - Named statistic counters ----------*- C++ -*-===//
///
/// \file
/// Named, insertion-ordered statistic counters collected by the pass
/// manager (`--stats`): packs formed, reuses exploited, permutes emitted,
/// cost-model rejections, and anything else a pass wants to report. A
/// Statistics object is private to one pipeline run (so the parallel
/// module driver needs no locking while kernels are in flight); per-kernel
/// sets are merged deterministically afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SUPPORT_STATISTICS_H
#define SLP_SUPPORT_STATISTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace slp {

/// One named counter.
struct Statistic {
  std::string Name;
  uint64_t Value = 0;
};

/// An insertion-ordered set of named counters.
class Statistics {
public:
  /// Adds \p Delta to the counter named \p Name, creating it (at the end)
  /// when new.
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Sets \p Name to \p Value exactly (creating it when new).
  void set(const std::string &Name, uint64_t Value);

  /// Current value of \p Name (0 when the counter does not exist).
  uint64_t get(const std::string &Name) const;

  bool has(const std::string &Name) const;

  /// Folds every counter of \p Other into this set. Merge order is the
  /// caller's iteration order, so merging per-kernel sets in kernel order
  /// is deterministic regardless of worker-thread interleaving.
  void merge(const Statistics &Other);

  bool empty() const { return Counters.empty(); }
  const std::vector<Statistic> &counters() const { return Counters; }

  /// Renders the counters as an LLVM-`-stats`-style block.
  std::string str(const std::string &Title = "statistics") const;

private:
  std::vector<Statistic> Counters;
};

} // namespace slp

#endif // SLP_SUPPORT_STATISTICS_H
