//===- support/Diagnostic.h - Structured analysis diagnostics ---*- C++ -*-===//
///
/// \file
/// Structured diagnostics for the static analyses (schedule verifier,
/// lane-provenance vector verifier, lint pass). Each diagnostic carries a
/// stable code ("SV01", "VV04", "VL02", ...), a severity, a free-text
/// message, and an optional location naming the block statement, vector
/// instruction, register and lane it is about. Diagnostics render both as
/// human-readable text and as JSON, and a DiagnosticEngine collects them
/// with severity counting and warnings-as-errors promotion.
///
/// The code table lives in docs/static-analysis.md; codes are part of the
/// stable interface (tests and downstream tooling match on them), so codes
/// are never renumbered or reused.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SUPPORT_DIAGNOSTIC_H
#define SLP_SUPPORT_DIAGNOSTIC_H

#include <cstdint>
#include <string>
#include <vector>

namespace slp {

/// Severity of a diagnostic, from advisory to correctness-relevant.
enum class DiagSeverity : uint8_t {
  Note,    ///< neutral information attached to another diagnostic
  Warning, ///< lint tier: suspicious but not incorrect
  Error,   ///< the analyzed artifact is provably wrong
};

/// Returns "note"/"warning"/"error".
const char *diagSeverityName(DiagSeverity Severity);

/// Where a diagnostic points. All fields are optional (-1 = absent); a
/// diagnostic may name any combination of a block statement, a vector
/// instruction index, a virtual register, a lane within it, and a schedule
/// item.
struct DiagLocation {
  int Stmt = -1; ///< block statement id
  int Inst = -1; ///< vector-program instruction index
  int VReg = -1; ///< virtual vector register number
  int Lane = -1; ///< lane within the instruction/register
  int Item = -1; ///< schedule item index

  bool empty() const {
    return Stmt < 0 && Inst < 0 && VReg < 0 && Lane < 0 && Item < 0;
  }

  /// "inst 4, lane 2, vreg 7, statement 3" (present fields only; "" when
  /// empty).
  std::string str() const;
};

/// One structured diagnostic.
struct Diagnostic {
  std::string Code; ///< stable code, e.g. "VV04"
  DiagSeverity Severity = DiagSeverity::Error;
  std::string Message; ///< human text without location or severity prefix
  DiagLocation Loc;

  /// "error [VV04] (inst 4, lane 2): message".
  std::string render() const;

  /// One JSON object: {"code":..,"severity":..,"message":..,"loc":{..}}.
  std::string toJson() const;
};

/// Collects diagnostics for one analysis run: severity counters, a
/// warnings-as-errors switch, and whole-set rendering.
class DiagnosticEngine {
public:
  /// Promote warnings to errors (`--werror`). Affects subsequently
  /// reported diagnostics, not already-collected ones.
  void setWarningsAsErrors(bool Enable) { WarningsAsErrors = Enable; }

  /// Reports a diagnostic and returns a reference for attaching a
  /// location. Warnings are promoted to errors under warnings-as-errors.
  Diagnostic &report(std::string Code, DiagSeverity Severity,
                     std::string Message);

  /// Appends an already-built diagnostic (applying promotion).
  void add(Diagnostic Diag);

  unsigned count(DiagSeverity Severity) const;
  unsigned errorCount() const { return count(DiagSeverity::Error); }
  unsigned warningCount() const { return count(DiagSeverity::Warning); }
  bool hasErrors() const { return errorCount() != 0; }

  bool empty() const { return Diags.empty(); }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Takes the collected diagnostics out of the engine.
  std::vector<Diagnostic> take() { return std::move(Diags); }

private:
  bool WarningsAsErrors = false;
  std::vector<Diagnostic> Diags;
};

/// Renders every diagnostic of \p Diags, one per line.
std::string renderDiagnostics(const std::vector<Diagnostic> &Diags);

/// Renders \p Diags as a JSON array.
std::string diagnosticsToJson(const std::vector<Diagnostic> &Diags);

/// Number of diagnostics in \p Diags with exactly severity \p Severity.
unsigned countDiagnostics(const std::vector<Diagnostic> &Diags,
                          DiagSeverity Severity);

} // namespace slp

#endif // SLP_SUPPORT_DIAGNOSTIC_H
