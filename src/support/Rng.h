//===- support/Rng.h - Deterministic random number generator ---*- C++ -*-===//
///
/// \file
/// A small deterministic PRNG (xorshift64*) used by the random-kernel
/// generator and the tie-breaking step of the grouping algorithm. We avoid
/// std::mt19937 so that results are bit-identical across standard library
/// implementations, which keeps the benchmark tables reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SUPPORT_RNG_H
#define SLP_SUPPORT_RNG_H

#include <cstdint>

namespace slp {

/// Deterministic xorshift64* generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) {
    // Scramble the seed (splitmix64 finalizer) so that nearby seeds yield
    // unrelated streams, then force the nonzero state xorshift requires.
    Seed += 0x9E3779B97F4A7C15ULL;
    Seed = (Seed ^ (Seed >> 30)) * 0xBF58476D1CE4E5B9ULL;
    Seed = (Seed ^ (Seed >> 27)) * 0x94D049BB133111EBULL;
    State = (Seed ^ (Seed >> 31)) | 1;
  }

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns an integer in [0, Bound) by reducing next() modulo Bound.
  /// \p Bound must be nonzero.
  ///
  /// The reduction carries modulo bias: values below 2^64 mod Bound are
  /// selected with probability ceil(2^64/Bound)/2^64, the rest with
  /// floor(2^64/Bound)/2^64. For the small bounds used here (< 2^20) the
  /// skew is under 2^-44 per value — far below anything the generator's
  /// consumers can observe. We deliberately do NOT switch to rejection
  /// sampling: it would consume a data-dependent number of raw draws and
  /// thereby shift every downstream stream, invalidating the seeds baked
  /// into tests, benchmarks, and the fuzz corpus. The exact stream is
  /// pinned by tests/support/RngTest.cpp; treat any change here as a
  /// breaking change to all recorded seeds.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns an integer in the inclusive range [Lo, Hi].
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a double in [0, 1).
  double nextDouble();

private:
  uint64_t State;
};

} // namespace slp

#endif // SLP_SUPPORT_RNG_H
