//===- support/Timer.cpp --------------------------------------*- C++ -*-===//

#include "support/Timer.h"

#include <cstdio>

using namespace slp;

void TimingReport::record(const std::string &Name, double Seconds,
                          uint64_t Invocations) {
  for (TimingEntry &E : Entries)
    if (E.Name == Name) {
      E.Seconds += Seconds;
      E.Invocations += Invocations;
      return;
    }
  Entries.push_back(TimingEntry{Name, Seconds, Invocations});
}

void TimingReport::merge(const TimingReport &Other) {
  for (const TimingEntry &E : Other.Entries)
    record(E.Name, E.Seconds, E.Invocations);
}

double TimingReport::totalSeconds() const {
  double Total = 0;
  for (const TimingEntry &E : Entries)
    Total += E.Seconds;
  return Total;
}

double TimingReport::secondsFor(const std::string &Name) const {
  for (const TimingEntry &E : Entries)
    if (E.Name == Name)
      return E.Seconds;
  return 0;
}

std::string TimingReport::str(const std::string &Title) const {
  double Total = totalSeconds();
  std::string Out = "=== " + Title + " ===\n";
  char Line[160];
  for (const TimingEntry &E : Entries) {
    double Pct = Total > 0 ? 100.0 * E.Seconds / Total : 0.0;
    std::snprintf(Line, sizeof(Line),
                  "  %-14s %10.3f ms  %5.1f%%  (%llu run%s)\n",
                  E.Name.c_str(), E.Seconds * 1e3, Pct,
                  static_cast<unsigned long long>(E.Invocations),
                  E.Invocations == 1 ? "" : "s");
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line), "  %-14s %10.3f ms\n", "total",
                Total * 1e3);
  Out += Line;
  return Out;
}
