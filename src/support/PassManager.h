//===- support/PassManager.h - Instrumented kernel pass manager -*- C++ -*-===//
///
/// \file
/// The pass-manager subsystem behind the SLP pipelines. The paper's
/// Figure 3 framework used to be hard-wired as one opaque call; here every
/// stage is a KernelPass with a name, run by a PassPipeline that owns the
/// ordered pass list, times each pass (Timer), collects named statistic
/// counters (Statistics), and records optimization remarks explaining why
/// a block was or wasn't vectorized.
///
/// This layer is deliberately IR-agnostic: the mutable pipeline state
/// (kernel, dependences, schedule, vector program, simulations) is the
/// opaque `PipelineState`, defined by the SLP layer in
/// `slp/PipelineState.h`. Support code only moves the pointer around, so
/// the pass manager stays at the bottom of the library stack and every
/// layer above it can define passes.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_SUPPORT_PASSMANAGER_H
#define SLP_SUPPORT_PASSMANAGER_H

#include "support/Statistics.h"
#include "support/Timer.h"

#include <memory>
#include <string>
#include <vector>

namespace slp {

struct PipelineState; // defined in slp/PipelineState.h

/// Severity of an optimization remark, mirroring LLVM's taxonomy.
enum class RemarkKind : uint8_t {
  Applied, ///< an optimization fired
  Missed,  ///< an optimization was possible but rejected (cost model, ...)
  Note,    ///< neutral analysis information
};

/// One optimization remark: which pass, about which kernel, and why.
struct Remark {
  RemarkKind Kind = RemarkKind::Note;
  std::string Pass;
  std::string Kernel;
  std::string Message;

  /// "remark: <kernel>: [<pass>] <message>" with a kind-specific prefix.
  std::string str() const;
};

/// Collects remarks during one pipeline run. Collection is cheap and
/// always on; whether the stream is shown is the front end's choice
/// (`--remarks`).
class RemarkStream {
public:
  /// Sets the kernel name stamped onto subsequently emitted remarks.
  void setSubject(std::string KernelName) { Subject = std::move(KernelName); }
  const std::string &subject() const { return Subject; }

  void applied(const std::string &Pass, std::string Message) {
    emit(RemarkKind::Applied, Pass, std::move(Message));
  }
  void missed(const std::string &Pass, std::string Message) {
    emit(RemarkKind::Missed, Pass, std::move(Message));
  }
  void note(const std::string &Pass, std::string Message) {
    emit(RemarkKind::Note, Pass, std::move(Message));
  }

  void emit(RemarkKind Kind, const std::string &Pass, std::string Message);

  const std::vector<Remark> &remarks() const { return Remarks; }
  bool empty() const { return Remarks.empty(); }

  /// Takes the collected remarks out of the stream.
  std::vector<Remark> take() { return std::move(Remarks); }

private:
  std::string Subject;
  std::vector<Remark> Remarks;
};

/// Everything a pass may read and write while running.
struct PassContext {
  PipelineState &State;
  Statistics &Stats;
  RemarkStream &Remarks;
};

/// One stage of a kernel pipeline. Passes are stateless between kernels:
/// all per-kernel data lives in the PassContext's PipelineState.
class KernelPass {
public:
  virtual ~KernelPass();

  /// Stable, CLI-addressable pass name (`--passes=unroll,grouping,...`).
  virtual const char *name() const = 0;

  /// Runs the pass over \p Ctx's state.
  virtual void run(PassContext &Ctx) = 0;
};

/// An ordered, owning list of passes plus the instrumentation around
/// running them: per-pass wall-clock timing and a run counter statistic.
class PassPipeline {
public:
  PassPipeline() = default;
  PassPipeline(PassPipeline &&) = default;
  PassPipeline &operator=(PassPipeline &&) = default;

  /// Appends \p Pass (ignores null).
  void addPass(std::unique_ptr<KernelPass> Pass);

  size_t size() const { return Passes.size(); }
  bool empty() const { return Passes.empty(); }

  /// Names of the passes in execution order.
  std::vector<std::string> passNames() const;

  /// Runs every pass in order over \p Ctx, timing each. The accumulated
  /// per-pass timing of this run is appended to \p Timing (per pass
  /// *instance*, in pipeline order — two instances of the same pass merge
  /// into one entry).
  void run(PassContext &Ctx, TimingReport &Timing);

private:
  std::vector<std::unique_ptr<KernelPass>> Passes;
};

} // namespace slp

#endif // SLP_SUPPORT_PASSMANAGER_H
