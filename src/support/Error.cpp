//===- support/Error.cpp --------------------------------------*- C++ -*-===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace slp;

void slp::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "holistic-slp fatal error: %s\n", Message.c_str());
  std::abort();
}

void slp::slpUnreachable(const char *Message) {
  std::fprintf(stderr, "holistic-slp unreachable: %s\n", Message);
  std::abort();
}
