//===- machine/CostGuardPass.cpp ------------------------------*- C++ -*-===//

#include "machine/CostGuardPass.h"

#include "machine/CostModel.h"
#include "machine/SimulatePass.h"
#include "slp/PipelineState.h"
#include "vector/CodeGen.h"

#include <algorithm>

using namespace slp;

namespace {

/// The holistic framework's cost model, applied at superword-statement
/// granularity: demote any group whose vectorization makes the block more
/// expensive (packing overheads exceeding the SIMD gains, Section 4.3's
/// closing paragraph). Demotion is greedy-iterative because dropping one
/// group changes the reuse available to the others.
Schedule pruneUnprofitableGroups(const Kernel &K, Schedule S,
                                 const CodeGenOptions &CG,
                                 const ScalarLayout &Layout,
                                 const MachineModel &M, unsigned &Demotions) {
  auto CostOf = [&](const Schedule &Sch) {
    VectorProgram P = generateVectorProgram(K, Sch, CG, Layout);
    return costVectorProgram(K, P, M).Cycles;
  };
  auto Demoted = [](const Schedule &In, unsigned Item) {
    Schedule Out;
    for (unsigned I = 0, E = static_cast<unsigned>(In.Items.size()); I != E;
         ++I) {
      if (I != Item) {
        Out.Items.push_back(In.Items[I]);
        continue;
      }
      std::vector<unsigned> Lanes = In.Items[I].Lanes;
      std::sort(Lanes.begin(), Lanes.end());
      for (unsigned S : Lanes)
        Out.Items.push_back(ScheduleItem{{S}});
    }
    return Out;
  };

  double Current = CostOf(S);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I != S.Items.size(); ++I) {
      if (!S.Items[I].isGroup())
        continue;
      Schedule Trial = Demoted(S, I);
      double TrialCost = CostOf(Trial);
      if (TrialCost + 1e-9 < Current) {
        S = std::move(Trial);
        Current = TrialCost;
        ++Demotions;
        Changed = true;
        break; // restart the scan over the new schedule
      }
    }
  }
  return S;
}

} // namespace

void GroupPrunePass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  const PipelineOptions &Options = S.Options;

  // Per-superword-statement profitability check. Every scheme had one:
  // Larsen's algorithm estimates each pack's savings, and this paper's
  // framework applies its cost model before committing (Section 4.3).
  bool Prune = Options.CostModelGuard &&
               (!S.isHolistic() || Options.Ablation.GroupPruning);
  if (!Prune || S.Kind == OptimizerKind::Scalar)
    return;

  unsigned Before = S.ensureSchedule().numGroups();
  unsigned Demotions = 0;
  S.TheSchedule = pruneUnprofitableGroups(
      S.ensurePreprocessed(), std::move(S.TheSchedule), S.CG,
      S.defaultScalarLayout(), Options.Machine, Demotions);
  if (Demotions) {
    Ctx.Stats.add("cost-model.groups-demoted", Demotions);
    Ctx.Remarks.missed(
        name(), "cost model demoted " + std::to_string(Demotions) + " of " +
                    std::to_string(Before) +
                    " superword statement(s) to scalar code (packing "
                    "overhead exceeded the SIMD gain)");
  }
}

void CostGuardPass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  ensureSimulated(S);
  if (!S.Options.CostModelGuard)
    return;
  if (S.VectorSim.Cycles < S.ScalarSim.Cycles)
    return;

  // The transformation would slow this block down: keep the scalar code
  // (Section 4.3, final paragraph).
  const Kernel &K = S.ensurePreprocessed();
  S.TheSchedule = scalarSchedule(K);
  S.Final = K.clone();
  S.Program =
      generateVectorProgram(K, S.TheSchedule, S.CG, S.defaultScalarLayout());
  S.VectorSim = simulateVectorKernel(K, S.Program, S.Options.Machine);
  S.LayoutApplied = false;
  S.Layout = LayoutResult();
  S.TransformationApplied = false;

  // The scalar "optimizer" trivially ties with the scalar reference; only
  // report a rejection when a real scheme was guarded away.
  if (S.Kind != OptimizerKind::Scalar) {
    Ctx.Stats.add("cost-model.blocks-rejected");
    Ctx.Remarks.missed(name(),
                       "block not vectorized: cost model predicts no "
                       "speedup over scalar code; transformation reverted");
  }
}
