//===- machine/Simulator.h - Whole-kernel performance simulation -*- C++ -*-===//
///
/// \file
/// Combines the per-block instruction costs with a memory-traffic term to
/// estimate whole-kernel execution time. The traffic term charges the
/// unique bytes the block touches per iteration against the machine's
/// sustained bandwidth, scaled by a cache-pressure factor derived from the
/// total data footprint; it is (deliberately) almost identical for scalar
/// and vectorized code, which is why the paper's execution-time reductions
/// (~12-15%, Figures 16/19/20) are far smaller than its dynamic-instruction
/// reductions (~49%, Figure 18) on these bandwidth-hungry FP codes.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_MACHINE_SIMULATOR_H
#define SLP_MACHINE_SIMULATOR_H

#include "machine/CostModel.h"

namespace slp {

/// Result of simulating one kernel end to end.
struct KernelSimResult {
  double Cycles = 0;        ///< compute + traffic + one-time costs
  double ComputeCycles = 0; ///< instruction stream only
  double TrafficCycles = 0; ///< bandwidth-limited portion
  double OneTimeCycles = 0; ///< layout replication setup, etc.
  uint64_t CoreInstrs = 0;
  uint64_t PackUnpackInstrs = 0;
  uint64_t MemOps = 0;

  uint64_t totalInstrs() const { return CoreInstrs + PackUnpackInstrs; }
};

/// Fractional execution-time reduction of \p Opt relative to \p Base
/// (the y-axis of Figures 16, 19, 20, 21).
inline double timeReduction(const KernelSimResult &Base,
                            const KernelSimResult &Opt) {
  return 1.0 - Opt.Cycles / Base.Cycles;
}

/// Unique bytes of array data the block touches in one iteration
/// (distinct symbolic references x element size).
double uniqueBytesPerIteration(const Kernel &K);

/// Total bytes of all arrays declared by \p K plus \p ExtraBytes; used for
/// the cache-pressure factor.
double dataFootprintBytes(const Kernel &K, double ExtraBytes = 0);

/// Cache-pressure multiplier applied to traffic (1.0 fits in L2).
double cachePressureFactor(const MachineModel &M, double FootprintBytes);

/// Simulates \p K executed with scalar semantics.
KernelSimResult simulateScalarKernel(const Kernel &K, const MachineModel &M);

/// Simulates the vectorized kernel. \p ReplicatedBytes is the extra data
/// footprint created by the layout stage's replication (0 when unused);
/// its one-time initialization traffic is charged to the result,
/// amortized over \p KernelInvocations executions of the kernel (the
/// enclosing application re-runs its hot loops every timestep while the
/// replicas persist).
KernelSimResult simulateVectorKernel(const Kernel &K,
                                     const VectorProgram &Program,
                                     const MachineModel &M,
                                     double ReplicatedBytes = 0,
                                     double KernelInvocations = 100);

} // namespace slp

#endif // SLP_MACHINE_SIMULATOR_H
