//===- machine/Multicore.h - Multi-core scaling model -----------*- C++ -*-===//
///
/// \file
/// The Figure 21 substrate: an analytic model of running a (scalar or
/// vectorized) kernel on C cores. Compute parallelizes across cores minus a
/// serial fraction; memory transactions contend for shared bandwidth, so
/// their effective cost grows with the core count; a per-core
/// synchronization overhead is charged to both versions. Because SLP (with
/// superword reuse) removes proportionally more memory transactions than
/// compute, the *relative* improvement grows slightly with the core count —
/// the paper attributes this to the less-than-perfect scalability of the
/// original applications, which is exactly the contention this model
/// charges them.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_MACHINE_MULTICORE_H
#define SLP_MACHINE_MULTICORE_H

#include "machine/Simulator.h"

namespace slp {

/// Per-application parallelization characteristics (OpenMP-style NAS
/// codes).
struct MulticoreParams {
  /// Fraction of the kernel's work that does not parallelize.
  double SerialFraction = 0.02;
  /// Synchronization/bookkeeping cycles per core, as a fraction of the
  /// single-core total time.
  double SyncFractionPerCore = 0.002;
};

/// Predicted execution time (cycles) of a simulated kernel on \p Cores
/// cores of machine \p M.
double multicoreCycles(const KernelSimResult &R, const MachineModel &M,
                       unsigned Cores, const MulticoreParams &P);

/// Execution-time reduction of the optimized over the scalar version with
/// both running on \p Cores cores (the y-axis of Figure 21).
double multicoreTimeReduction(const KernelSimResult &Scalar,
                              const KernelSimResult &Optimized,
                              const MachineModel &M, unsigned Cores,
                              const MulticoreParams &P);

} // namespace slp

#endif // SLP_MACHINE_MULTICORE_H
