//===- machine/CostModel.h - Block-level instruction costing ----*- C++ -*-===//
///
/// \file
/// Prices one execution of a basic block — scalar or vectorized — on a
/// MachineModel, following the cost model of Larsen's thesis that the paper
/// adopts: the number of SIMD instructions, the number of memory
/// operations, and the number of register reshuffling/permutation
/// instructions. Packing/unpacking work is accounted separately so the
/// paper's Figure 17 split can be reported.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_MACHINE_COSTMODEL_H
#define SLP_MACHINE_COSTMODEL_H

#include "ir/Kernel.h"
#include "machine/MachineModel.h"
#include "vector/VectorIR.h"

namespace slp {

/// Cost and instruction-mix of one basic-block execution.
struct BlockCost {
  double Cycles = 0;
  /// Dynamic instructions excluding packing/unpacking work.
  uint64_t CoreInstrs = 0;
  /// Packing/unpacking operations: gather loads/inserts, scatter
  /// extracts/stores, register permutations, broadcasts.
  uint64_t PackUnpackInstrs = 0;
  /// Memory transactions issued (scalar or vector, any kind).
  uint64_t MemOps = 0;

  uint64_t totalInstrs() const { return CoreInstrs + PackUnpackInstrs; }
};

/// Cost of executing \p K's block with original scalar semantics.
BlockCost costScalarBlock(const Kernel &K, const MachineModel &M);

/// Cost of executing the vectorized block \p Program.
BlockCost costVectorProgram(const Kernel &K, const VectorProgram &Program,
                            const MachineModel &M);

} // namespace slp

#endif // SLP_MACHINE_COSTMODEL_H
