//===- machine/MachineModel.cpp -------------------------------*- C++ -*-===//

#include "machine/MachineModel.h"

using namespace slp;

MachineModel MachineModel::intelDunnington() {
  MachineModel M;
  M.Name = "Intel Dunnington (2x6 Xeon E7450, 2.40GHz)";
  M.DatapathBits = 128;
  M.NumVectorRegisters = 16;
  M.NumCores = 12;
  M.ScalarAlu = 1.0;
  M.ScalarLoad = 1.0;
  M.ScalarStore = 1.0;
  M.SimdAlu = 1.0;
  M.SimdLoadAligned = 1.0;
  M.SimdLoadUnaligned = 2.0;
  M.SimdStoreAligned = 1.0;
  M.SimdStoreUnaligned = 2.5;
  M.Shuffle = 1.0;
  M.InsertElem = 0.7;
  M.ExtractElem = 0.7;
  M.ConstMaterialize = 0.5;
  M.DivCostMultiplier = 7.0;
  M.BytesPerCycle = 0.45; // FSB-era Dunnington, all cores active
  M.L1DataKB = 32;
  M.L2TotalKB = 3 * 1024;  // 3MB per 2-core cluster
  M.L3TotalKB = 12 * 1024; // 12MB per socket
  M.MemContentionPerCore = 0.035;
  M.SyncCyclesPerCore = 0.0;
  return M;
}

MachineModel MachineModel::amdPhenomII() {
  MachineModel M;
  M.Name = "AMD Phenom II X4 945 (4 cores, 3.00GHz)";
  M.DatapathBits = 128;
  M.NumVectorRegisters = 16;
  M.NumCores = 4;
  M.ScalarAlu = 1.0;
  M.ScalarLoad = 1.0;
  M.ScalarStore = 1.0;
  M.SimdAlu = 1.1; // 128-bit ops crack into two 64-bit macro-ops on K10
  M.SimdLoadAligned = 1.0;
  M.SimdLoadUnaligned = 3.0;
  M.SimdStoreAligned = 1.2;
  M.SimdStoreUnaligned = 3.5;
  M.Shuffle = 1.5;       // higher packing/unpacking cost than the Intel box
  M.InsertElem = 1.4;
  M.ExtractElem = 1.4;
  M.ConstMaterialize = 0.5;
  M.DivCostMultiplier = 6.5;
  M.BytesPerCycle = 0.44; // K10 northbridge, per 3GHz core
  M.L1DataKB = 64;
  M.L2TotalKB = 512;      // 512KB per core
  M.L3TotalKB = 6 * 1024; // 6MB shared
  M.MemContentionPerCore = 0.05;
  M.SyncCyclesPerCore = 0.0;
  return M;
}

MachineModel MachineModel::hypothetical(unsigned DatapathBits) {
  MachineModel M = intelDunnington();
  M.Name = "hypothetical " + std::to_string(DatapathBits) + "-bit machine";
  M.DatapathBits = DatapathBits;
  return M;
}
