//===- machine/Simulator.cpp ----------------------------------*- C++ -*-===//

#include "machine/Simulator.h"

#include <set>

using namespace slp;

double slp::uniqueBytesPerIteration(const Kernel &K) {
  std::set<std::string> Seen;
  double Bytes = 0;
  auto Visit = [&](const Operand &O) {
    if (!O.isArray())
      return;
    if (Seen.insert(O.key()).second)
      Bytes += byteSizeOf(K.array(O.symbol()).Ty);
  };
  for (const Statement &S : K.Body) {
    Visit(S.lhs());
    S.forEachUse(Visit); // rhs leaves plus guard leaves
  }
  return Bytes;
}

double slp::dataFootprintBytes(const Kernel &K, double ExtraBytes) {
  double Bytes = ExtraBytes;
  for (const ArraySymbol &A : K.Arrays)
    Bytes += static_cast<double>(A.numElements()) * byteSizeOf(A.Ty);
  return Bytes;
}

double slp::cachePressureFactor(const MachineModel &M,
                                double FootprintBytes) {
  double KB = FootprintBytes / 1024.0;
  if (KB <= M.L2TotalKB)
    return 1.0;
  if (KB <= M.L3TotalKB)
    return 1.25;
  return 1.6;
}

namespace {

KernelSimResult combine(const Kernel &K, const MachineModel &M,
                        const BlockCost &Block, double ExtraFootprint,
                        double OneTimeCycles) {
  KernelSimResult R;
  double Iters = static_cast<double>(K.totalIterations());
  double Pressure =
      cachePressureFactor(M, dataFootprintBytes(K, ExtraFootprint));
  R.ComputeCycles = Block.Cycles * Iters;
  R.TrafficCycles =
      uniqueBytesPerIteration(K) / M.BytesPerCycle * Pressure * Iters;
  R.OneTimeCycles = OneTimeCycles;
  R.Cycles = R.ComputeCycles + R.TrafficCycles + R.OneTimeCycles;
  R.CoreInstrs = Block.CoreInstrs * static_cast<uint64_t>(Iters);
  R.PackUnpackInstrs = Block.PackUnpackInstrs * static_cast<uint64_t>(Iters);
  R.MemOps = Block.MemOps * static_cast<uint64_t>(Iters);
  return R;
}

} // namespace

KernelSimResult slp::simulateScalarKernel(const Kernel &K,
                                          const MachineModel &M) {
  return combine(K, M, costScalarBlock(K, M), /*ExtraFootprint=*/0,
                 /*OneTimeCycles=*/0);
}

KernelSimResult slp::simulateVectorKernel(const Kernel &K,
                                          const VectorProgram &Program,
                                          const MachineModel &M,
                                          double ReplicatedBytes,
                                          double KernelInvocations) {
  // Replication setup: read the source once and write the replica once,
  // amortized over the application's repeated kernel invocations.
  double OneTime = ReplicatedBytes > 0
                       ? 2.0 * ReplicatedBytes / M.BytesPerCycle /
                             KernelInvocations
                       : 0.0;
  return combine(K, M, costVectorProgram(K, Program, M), ReplicatedBytes,
                 OneTime);
}
