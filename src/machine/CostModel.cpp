//===- machine/CostModel.cpp ----------------------------------*- C++ -*-===//

#include "machine/CostModel.h"

#include "support/Error.h"

using namespace slp;

namespace {

/// Cycle cost of an ALU operation, scalar (\p Simd false) or SIMD.
double aluCost(const MachineModel &M, OpCode Op, bool Simd) {
  double Base = Simd ? M.SimdAlu : M.ScalarAlu;
  if (Op == OpCode::Div || Op == OpCode::Sqrt)
    return Base * M.DivCostMultiplier;
  return Base;
}

/// Adds the cost of one statement executed with scalar semantics.
///
/// Scalars are memory-resident, as in the paper's SUIF-based model: the
/// unit of data layout optimization for scalar superwords (Section 5.1) is
/// their memory placement, so scalar reads and writes are priced like the
/// loads/stores the generated code performs.
void addScalarStatement(const Kernel &K, const Statement &S,
                        const MachineModel &M, BlockCost &Cost) {
  struct Walker {
    const MachineModel &M;
    BlockCost &Cost;
    void walk(const Expr &E) {
      if (E.isLeaf()) {
        if (!E.leaf().isConstant()) {
          Cost.Cycles += M.ScalarLoad;
          ++Cost.CoreInstrs;
          ++Cost.MemOps;
        }
        return;
      }
      Cost.Cycles += aluCost(M, E.opcode(), /*Simd=*/false);
      ++Cost.CoreInstrs;
      for (unsigned C = 0, N = E.numChildren(); C != N; ++C)
        walk(E.child(C));
    }
  } W{M, Cost};
  if (S.hasGuard()) {
    // The guard is evaluated every iteration (if-converted semantics),
    // plus one compare-and-branch-free predicated-store overhead.
    W.walk(S.guard());
    Cost.Cycles += M.ScalarAlu;
    ++Cost.CoreInstrs;
  }
  W.walk(S.rhs());
  Cost.Cycles += M.ScalarStore;
  ++Cost.CoreInstrs;
  ++Cost.MemOps;
  (void)K;
}

void addLoadPack(const VInst &I, const MachineModel &M, BlockCost &Cost) {
  switch (I.Mode) {
  case PackMode::ContiguousAligned:
    Cost.Cycles += M.SimdLoadAligned;
    ++Cost.CoreInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::ContiguousUnaligned:
    Cost.Cycles += M.SimdLoadUnaligned;
    ++Cost.CoreInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::PermutedContiguous:
    Cost.Cycles += M.SimdLoadUnaligned + M.Shuffle;
    ++Cost.CoreInstrs; // the load itself
    ++Cost.PackUnpackInstrs; // the permutation
    ++Cost.MemOps;
    return;
  case PackMode::Broadcast:
    // One element load plus a broadcast shuffle.
    if (!I.LaneOps.front().isConstant()) {
      Cost.Cycles += M.ScalarLoad;
      ++Cost.MemOps;
      ++Cost.CoreInstrs;
    }
    Cost.Cycles += M.Shuffle;
    ++Cost.PackUnpackInstrs;
    return;
  case PackMode::LayoutContiguous:
    // The Section 5.1 payoff: the scalars were placed adjacently and
    // aligned, so one vector memory operation suffices.
    Cost.Cycles += M.SimdLoadAligned;
    ++Cost.CoreInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::AllConstant:
    Cost.Cycles += M.ConstMaterialize;
    ++Cost.CoreInstrs;
    return;
  case PackMode::GatherScalar:
    // Element-wise packing: N loads plus N-1 merges (the first element
    // lands in the register directly) — the expensive case the paper
    // minimizes. The loads are ordinary memory instructions (the scalar
    // code performs them too); the merges are packing operations.
    for (unsigned L = 0; L != I.Lanes; ++L) {
      const Operand &O = I.LaneOps[L];
      if (!O.isConstant()) {
        Cost.Cycles += M.ScalarLoad;
        ++Cost.MemOps;
        ++Cost.CoreInstrs;
      }
      if (L != 0) {
        Cost.Cycles += M.InsertElem;
        ++Cost.PackUnpackInstrs;
      }
    }
    return;
  }
  slpUnreachable("invalid pack mode");
}

void addStorePack(const VInst &I, const MachineModel &M, BlockCost &Cost) {
  switch (I.Mode) {
  case PackMode::ContiguousAligned:
    Cost.Cycles += M.SimdStoreAligned;
    ++Cost.CoreInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::ContiguousUnaligned:
    Cost.Cycles += M.SimdStoreUnaligned;
    ++Cost.CoreInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::PermutedContiguous:
    Cost.Cycles += M.Shuffle + M.SimdStoreUnaligned;
    ++Cost.CoreInstrs;
    ++Cost.PackUnpackInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::LayoutContiguous:
    Cost.Cycles += M.SimdStoreAligned;
    ++Cost.CoreInstrs;
    ++Cost.MemOps;
    return;
  case PackMode::Broadcast:
  case PackMode::AllConstant:
  case PackMode::GatherScalar:
    // Element-wise unpacking: N-1 extracts (lane 0 stores directly) plus
    // one ordinary store per lane.
    for (unsigned L = 0; L != I.Lanes; ++L) {
      if (L != 0) {
        Cost.Cycles += M.ExtractElem;
        ++Cost.PackUnpackInstrs;
      }
      Cost.Cycles += M.ScalarStore;
      ++Cost.MemOps;
      ++Cost.CoreInstrs;
      (void)I.LaneOps[L];
    }
    return;
  }
  slpUnreachable("invalid pack mode");
}

} // namespace

BlockCost slp::costScalarBlock(const Kernel &K, const MachineModel &M) {
  BlockCost Cost;
  for (const Statement &S : K.Body)
    addScalarStatement(K, S, M, Cost);
  return Cost;
}

BlockCost slp::costVectorProgram(const Kernel &K,
                                 const VectorProgram &Program,
                                 const MachineModel &M) {
  BlockCost Cost;
  for (const VInst &I : Program.Insts) {
    switch (I.Kind) {
    case VInstKind::LoadPack:
      addLoadPack(I, M, Cost);
      break;
    case VInstKind::StorePack:
      addStorePack(I, M, Cost);
      break;
    case VInstKind::Shuffle:
      Cost.Cycles += M.Shuffle;
      ++Cost.PackUnpackInstrs;
      break;
    case VInstKind::VectorOp:
      Cost.Cycles += aluCost(M, I.Op, /*Simd=*/true);
      ++Cost.CoreInstrs;
      break;
    case VInstKind::ScalarExec:
      addScalarStatement(K, K.Body.statement(I.StmtId), M, Cost);
      break;
    case VInstKind::MaskedLoadPack:
      // Priced like the unmasked load plus one lane-wise mask merge.
      addLoadPack(I, M, Cost);
      Cost.Cycles += M.SimdAlu;
      ++Cost.CoreInstrs;
      break;
    case VInstKind::MaskedStorePack:
      // Priced like the unmasked store; the mask rides along for free on
      // hardware with predicated stores (the model's simplification).
      addStorePack(I, M, Cost);
      break;
    case VInstKind::Blend:
      Cost.Cycles += M.SimdAlu;
      ++Cost.CoreInstrs;
      break;
    }
  }
  return Cost;
}
