//===- machine/SimulatePass.h - Performance simulation as a pass -*- C++ -*-===//
///
/// \file
/// Prices the generated vector program and the scalar reference on the
/// target MachineModel (compute + memory-traffic simulation). The results
/// feed the layout stage's alternative comparison and the final cost-model
/// guard, and are what `PipelineResult::improvement()` reports.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_MACHINE_SIMULATEPASS_H
#define SLP_MACHINE_SIMULATEPASS_H

#include "support/PassManager.h"

namespace slp {

struct PipelineState;

class SimulatePass : public KernelPass {
public:
  const char *name() const override { return "simulate"; }
  void run(PassContext &Ctx) override;
};

/// Simulates \p State's scalar and vector executions if not already done
/// (shared with the layout pass and the cost guard, which need baselines
/// even in hand-built pipelines that skipped the simulate pass).
void ensureSimulated(PipelineState &State);

} // namespace slp

#endif // SLP_MACHINE_SIMULATEPASS_H
