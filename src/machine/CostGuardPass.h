//===- machine/CostGuardPass.h - Cost-model guards as passes ----*- C++ -*-===//
///
/// \file
/// The two applications of the framework's cost model (Section 4.3's
/// closing paragraph, following Larsen's thesis) as passes:
///
/// * GroupPrunePass ("group-prune") runs before code generation and
///   greedily demotes any superword statement whose vectorization makes
///   the whole block more expensive (packing overheads exceeding the SIMD
///   gains). Demotion is iterative because dropping one group changes the
///   reuse available to the others.
///
/// * CostGuardPass ("cost-guard") runs last and reverts the entire
///   transformation when the simulated vectorized block is no faster than
///   the scalar one — the block then keeps its scalar code.
///
/// Both emit `missed` optimization remarks and count their rejections
/// under `cost-model.*` statistics.
///
//===----------------------------------------------------------------------===//

#ifndef SLP_MACHINE_COSTGUARDPASS_H
#define SLP_MACHINE_COSTGUARDPASS_H

#include "support/PassManager.h"

namespace slp {

class GroupPrunePass : public KernelPass {
public:
  const char *name() const override { return "group-prune"; }
  void run(PassContext &Ctx) override;
};

class CostGuardPass : public KernelPass {
public:
  const char *name() const override { return "cost-guard"; }
  void run(PassContext &Ctx) override;
};

} // namespace slp

#endif // SLP_MACHINE_COSTGUARDPASS_H
