//===- machine/Multicore.cpp ----------------------------------*- C++ -*-===//

#include "machine/Multicore.h"

#include <cassert>

using namespace slp;

double slp::multicoreCycles(const KernelSimResult &R, const MachineModel &M,
                            unsigned Cores, const MulticoreParams &P) {
  assert(Cores >= 1 && "need at least one core");
  double C = static_cast<double>(Cores);
  double Total = R.ComputeCycles + R.TrafficCycles + R.OneTimeCycles;

  // Serial portion runs on one core; parallel portion splits across cores.
  double Serial = Total * P.SerialFraction;
  double Parallel = Total * (1.0 - P.SerialFraction) / C;

  // Shared-memory contention: every memory transaction queues behind the
  // other cores' transactions, so its effective latency grows with the
  // active core count. Vectorized code issues far fewer transactions
  // (contiguous superword loads/stores plus register reuse), which is why
  // its *relative* advantage grows slightly with the core count.
  double ContentionPerOp = M.MemContentionPerCore * (C - 1.0);
  double Contention =
      static_cast<double>(R.MemOps) * ContentionPerOp / C;

  double Sync = Total * P.SyncFractionPerCore * (C - 1.0);
  return Serial + Parallel + Contention + Sync;
}

double slp::multicoreTimeReduction(const KernelSimResult &Scalar,
                                   const KernelSimResult &Optimized,
                                   const MachineModel &M, unsigned Cores,
                                   const MulticoreParams &P) {
  double Ts = multicoreCycles(Scalar, M, Cores, P);
  double To = multicoreCycles(Optimized, M, Cores, P);
  return 1.0 - To / Ts;
}
