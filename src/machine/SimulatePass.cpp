//===- machine/SimulatePass.cpp -------------------------------*- C++ -*-===//

#include "machine/SimulatePass.h"

#include "machine/Simulator.h"
#include "slp/PipelineState.h"
#include "vector/CodeGen.h"

using namespace slp;

void slp::ensureSimulated(PipelineState &S) {
  if (S.Simulated)
    return;
  const Kernel &K = S.ensurePreprocessed();
  if (!S.ProgramReady) {
    S.Final = K.clone();
    S.Program = generateVectorProgram(K, S.ensureSchedule(), S.CG,
                                      S.defaultScalarLayout());
    S.ProgramReady = true;
  }
  S.ScalarSim = simulateScalarKernel(K, S.Options.Machine);
  S.VectorSim = simulateVectorKernel(K, S.Program, S.Options.Machine);
  S.Simulated = true;
}

void SimulatePass::run(PassContext &Ctx) {
  PipelineState &S = Ctx.State;
  ensureSimulated(S);
  Ctx.Stats.add("simulate.scalar-instrs", S.ScalarSim.totalInstrs());
  Ctx.Stats.add("simulate.vector-instrs", S.VectorSim.totalInstrs());
}
