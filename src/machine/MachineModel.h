//===- machine/MachineModel.h - Target machine descriptions -----*- C++ -*-===//
///
/// \file
/// Cycle-cost descriptions of the paper's two evaluation machines (Table 1:
/// Intel Dunnington Xeon E7450; Table 2: AMD Phenom II X4 945) plus the
/// hypothetical wider-datapath machines of Figure 18. The AMD model charges
/// more for element inserts/extracts and shuffles, reproducing the paper's
/// observation that its savings are lower "mainly due to the higher
/// packing/unpacking costs".
///
//===----------------------------------------------------------------------===//

#ifndef SLP_MACHINE_MACHINEMODEL_H
#define SLP_MACHINE_MACHINEMODEL_H

#include <cstdint>
#include <string>

namespace slp {

/// Per-instruction-class cycle costs and memory-system parameters of a
/// simulated machine.
struct MachineModel {
  std::string Name;
  unsigned DatapathBits = 128;
  unsigned NumVectorRegisters = 16;
  unsigned NumCores = 1;

  // Instruction costs (cycles, amortized throughput).
  double ScalarAlu = 1.0;
  double ScalarLoad = 1.0;
  double ScalarStore = 1.0;
  double SimdAlu = 1.0;
  double SimdLoadAligned = 1.0;
  double SimdLoadUnaligned = 2.0;
  double SimdStoreAligned = 1.0;
  double SimdStoreUnaligned = 2.0;
  double Shuffle = 1.0;
  double InsertElem = 1.5;
  double ExtractElem = 1.5;
  double ConstMaterialize = 0.5;
  /// Division and square root cost this many times the base ALU cost.
  double DivCostMultiplier = 10.0;

  // Memory system (Tables 1 and 2).
  double BytesPerCycle = 6.0; ///< sustained streaming bandwidth per core
  unsigned L1DataKB = 32;
  unsigned L2TotalKB = 3072;
  unsigned L3TotalKB = 12288;
  /// Bandwidth contention growth per extra core (Figure 21 model).
  double MemContentionPerCore = 0.03;
  /// Per-core synchronization cycles per block execution.
  double SyncCyclesPerCore = 0.0;

  /// Table 1 machine: 2-socket, 12-core Xeon E7450 @2.40GHz, SSE2.
  static MachineModel intelDunnington();
  /// Table 2 machine: 4-core AMD Phenom II X4 945 @3.00GHz, SSE2.
  static MachineModel amdPhenomII();
  /// Figure 18's hypothetical machines with wider datapaths.
  static MachineModel hypothetical(unsigned DatapathBits);
};

} // namespace slp

#endif // SLP_MACHINE_MACHINEMODEL_H
