//===- tools/slp-fuzz.cpp - Differential fuzzing driver ----------*- C++ -*-===//
//
// Command-line front end for the differential fuzzer: generates and mutates
// kernels, runs every optimizer pipeline under several configurations,
// cross-checks schedules against the Section 4.1 verifier and vector
// execution against the scalar reference, shrinks failures with the
// delta-debugging reducer, and maintains the replayable regression corpus.
//
//   slp-fuzz [options]
//     --seed N            campaign seed (default 1)
//     --iters N           iteration count; 0 = run until the time budget
//     --time-budget S     wall-clock budget in seconds (0 = none)
//     --corpus-dir DIR    where reduced repros are written
//     --replay DIR        replay every corpus case under DIR and exit
//     --exec-engine E     optimized|reference — execution engine kernels
//                         run under (default: optimized, or the
//                         SLP_EXEC_ENGINE environment variable)
//     --grouping-impl E   optimized|reference|exact — force one grouping
//                         engine onto every configuration of the matrix
//                         (e.g. a dedicated exact-engine campaign)
//     --inject-bug KIND   none|drop-item|dup-lane|swap-dependent —
//                         mutation-test the harness: corrupt each schedule
//                         and demand the verifier catches it
//     --verify-vector     run the static translation validator as a third
//                         oracle next to dynamic equivalence (default on);
//                         --no-verify-vector opts out
//     --verify-ranges     assert every dynamically observed value lies in
//                         its statically predicted interval (default on);
//                         --no-verify-ranges opts out
//     --predication       seed base kernels from the predicated workload
//                         pool and generate guarded statements, so
//                         if-conversion and the masked vector path are
//                         exercised every iteration
//     --native            cross-check the host-compiled native engine on
//                         a sample of iterations (skipped with a counter
//                         when no host compiler is available)
//     --no-reduce         record failures without delta-debugging them
//     --max-failures N    stop after N recorded failures (default 8)
//     --quiet             suppress the JSON stats summary
//
// Options accept both `--flag value` and `--flag=value`. Exit status: 0 on
// a clean campaign or replay, 1 on recorded failures, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

using namespace slp;

namespace {

void printUsage() {
  std::fprintf(
      stderr,
      "usage: slp-fuzz [options]\n"
      "  --seed N           campaign seed (default 1)\n"
      "  --iters N          iterations; 0 = run until --time-budget\n"
      "  --time-budget S    wall-clock budget in seconds (0 = none)\n"
      "  --corpus-dir DIR   write reduced repros into DIR\n"
      "  --replay DIR       replay every .slp case under DIR and exit\n"
      "  --exec-engine E    optimized|reference execution engine\n"
      "                     (default: optimized, or $SLP_EXEC_ENGINE)\n"
      "  --grouping-impl E  optimized|reference|exact — force one grouping\n"
      "                     engine onto every configuration (default: the\n"
      "                     mixed matrix)\n"
      "  --inject-bug KIND  none|drop-item|dup-lane|swap-dependent\n"
      "                     corrupt schedules on purpose and demand the\n"
      "                     verifier catches every applicable corruption\n"
      "  --verify-vector    cross-check the static translation validator\n"
      "                     against dynamic equivalence (default on)\n"
      "  --no-verify-vector disable the static verifier oracle\n"
      "  --verify-ranges    value-range soundness oracle: every observed\n"
      "                     value inside its predicted interval (default\n"
      "                     on)\n"
      "  --no-verify-ranges disable the value-range oracle\n"
      "  --predication      seed predicated kernels and emit guarded\n"
      "                     statements (masked vector path every iteration)\n"
      "  --native           cross-check the host-compiled native engine\n"
      "                     on a sample of iterations\n"
      "  --no-reduce        skip delta-debugging reduction of failures\n"
      "  --max-failures N   stop after N recorded failures (default 8)\n"
      "  --quiet            suppress the JSON stats summary\n");
}

/// Splits `--flag=value` / `--flag value` argument forms. Returns false
/// when the flag needs a value and none is present.
bool argValue(int Argc, char **Argv, int &I, const char *Flag,
              std::string &Out, bool &Matched) {
  Matched = false;
  size_t FlagLen = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, FlagLen) != 0)
    return true;
  const char *Rest = Argv[I] + FlagLen;
  if (*Rest == '=') {
    Out = Rest + 1;
    Matched = true;
    return true;
  }
  if (*Rest != '\0')
    return true; // a longer flag sharing the prefix
  if (I + 1 >= Argc) {
    std::fprintf(stderr, "slp-fuzz: %s requires a value\n", Flag);
    return false;
  }
  Out = Argv[++I];
  Matched = true;
  return true;
}

bool parseU64(const std::string &V, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(V.c_str(), &End, 10);
  return End != V.c_str() && *End == '\0';
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzConfig Config;
  Config.Iterations = 1000;
  Config.Exec = defaultExecEngineKind();
  std::string ReplayDir;
  bool Quiet = false;
  bool IterationsSet = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    std::string Value;
    bool Matched = false;
    if (!argValue(Argc, Argv, I, "--seed", Value, Matched))
      return 2;
    if (Matched) {
      if (!parseU64(Value, Config.Seed)) {
        std::fprintf(stderr, "slp-fuzz: bad --seed '%s'\n", Value.c_str());
        return 2;
      }
      continue;
    }
    if (!argValue(Argc, Argv, I, "--iters", Value, Matched))
      return 2;
    if (Matched) {
      if (!parseU64(Value, Config.Iterations)) {
        std::fprintf(stderr, "slp-fuzz: bad --iters '%s'\n", Value.c_str());
        return 2;
      }
      IterationsSet = true;
      continue;
    }
    if (!argValue(Argc, Argv, I, "--time-budget", Value, Matched))
      return 2;
    if (Matched) {
      char *End = nullptr;
      Config.TimeBudgetSeconds = std::strtod(Value.c_str(), &End);
      if (End == Value.c_str() || *End != '\0' ||
          Config.TimeBudgetSeconds < 0) {
        std::fprintf(stderr, "slp-fuzz: bad --time-budget '%s'\n",
                     Value.c_str());
        return 2;
      }
      // A budget without an explicit --iters means "run until the budget".
      if (!IterationsSet)
        Config.Iterations = 0;
      continue;
    }
    if (!argValue(Argc, Argv, I, "--corpus-dir", Value, Matched))
      return 2;
    if (Matched) {
      Config.CorpusDir = Value;
      continue;
    }
    if (!argValue(Argc, Argv, I, "--replay", Value, Matched))
      return 2;
    if (Matched) {
      ReplayDir = Value;
      continue;
    }
    if (!argValue(Argc, Argv, I, "--exec-engine", Value, Matched))
      return 2;
    if (Matched) {
      std::optional<ExecEngineKind> Kind = parseExecEngineName(Value);
      if (!Kind) {
        std::fprintf(stderr, "slp-fuzz: unknown --exec-engine '%s'\n",
                     Value.c_str());
        return 2;
      }
      Config.Exec = *Kind;
      continue;
    }
    if (!argValue(Argc, Argv, I, "--grouping-impl", Value, Matched))
      return 2;
    if (Matched) {
      if (Value == "optimized")
        Config.GroupingOverride = GroupingImpl::Optimized;
      else if (Value == "reference")
        Config.GroupingOverride = GroupingImpl::Reference;
      else if (Value == "exact")
        Config.GroupingOverride = GroupingImpl::Exact;
      else {
        std::fprintf(stderr, "slp-fuzz: unknown --grouping-impl '%s'\n",
                     Value.c_str());
        return 2;
      }
      continue;
    }
    if (!argValue(Argc, Argv, I, "--inject-bug", Value, Matched))
      return 2;
    if (Matched) {
      if (!parseBugInjection(Value, Config.Inject)) {
        std::fprintf(stderr, "slp-fuzz: unknown --inject-bug '%s'\n",
                     Value.c_str());
        return 2;
      }
      continue;
    }
    if (!argValue(Argc, Argv, I, "--max-failures", Value, Matched))
      return 2;
    if (Matched) {
      uint64_t N = 0;
      if (!parseU64(Value, N) || N == 0) {
        std::fprintf(stderr, "slp-fuzz: bad --max-failures '%s'\n",
                     Value.c_str());
        return 2;
      }
      Config.MaxFailures = static_cast<unsigned>(N);
      continue;
    }
    if (Arg == "--verify-vector") {
      Config.VerifyVector = true;
      continue;
    }
    if (Arg == "--no-verify-vector") {
      Config.VerifyVector = false;
      continue;
    }
    if (Arg == "--verify-ranges") {
      Config.VerifyRanges = true;
      continue;
    }
    if (Arg == "--no-verify-ranges") {
      Config.VerifyRanges = false;
      continue;
    }
    if (Arg == "--predication") {
      Config.Predication = true;
      continue;
    }
    if (Arg == "--native") {
      Config.Native = true;
      continue;
    }
    if (Arg == "--no-reduce") {
      Config.Reduce = false;
      continue;
    }
    if (Arg == "--quiet") {
      Quiet = true;
      continue;
    }
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    }
    std::fprintf(stderr, "slp-fuzz: unknown option '%s'\n", Arg.c_str());
    printUsage();
    return 2;
  }

  if (!ReplayDir.empty()) {
    std::vector<std::string> Errors;
    unsigned Count = replayCorpusDir(ReplayDir, Errors);
    for (const std::string &E : Errors)
      std::fprintf(stderr, "FAIL %s\n", E.c_str());
    if (!Quiet)
      std::printf("{\n  \"replayed\": %u,\n  \"failed\": %zu\n}\n", Count,
                  Errors.size());
    return Errors.empty() ? 0 : 1;
  }

  FuzzOutcome Outcome = runFuzzer(Config);

  for (const FuzzFailure &F : Outcome.Failures) {
    std::fprintf(stderr, "FAILURE: %s\n", F.Reason.c_str());
    std::fprintf(stderr, "  statements: %u -> %u (reduced)\n",
                 F.OriginalStatements, F.ReducedStatements);
    if (!F.FilePath.empty())
      std::fprintf(stderr, "  repro: %s\n", F.FilePath.c_str());
  }
  for (const FuzzFailure &F : Outcome.InjectedDemos)
    if (!F.FilePath.empty())
      std::fprintf(stderr, "injected-bug demo recorded: %s\n",
                   F.FilePath.c_str());

  if (!Quiet)
    std::printf("%s", Outcome.Stats.toJson().c_str());

  if (Config.Inject != BugInjection::None && !Quiet)
    std::fprintf(stderr,
                 "injection '%s': %llu caught, %llu missed, %llu "
                 "inapplicable\n",
                 bugInjectionName(Config.Inject),
                 static_cast<unsigned long long>(Outcome.Stats.InjectedCaught),
                 static_cast<unsigned long long>(Outcome.Stats.InjectedMissed),
                 static_cast<unsigned long long>(
                     Outcome.Stats.InjectionInapplicable));

  return Outcome.clean() ? 0 : 1;
}
