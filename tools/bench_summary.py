#!/usr/bin/env python3
"""Merge google-benchmark --benchmark_out JSONs into one trajectory file.

Usage:
  bench_summary.py --out BENCH_native.json [--label pr7] \
      bench_native.json [more.json ...]

Each input is the --benchmark_out JSON of a bench_* binary. The output is
a compact machine-readable summary: one record per benchmark entry with
its real_time (in seconds) and every user counter (measured_speedup,
predicted_speedup, ...), plus the reporting context (host, CPU count,
library build type) of the run that produced it.

When --out already exists and is a trajectory file, the new run is
APPENDED to its "runs" list instead of replacing it — so committing the
file across PRs (or uploading it as a CI artifact keyed by commit)
accumulates a perf history that plotting/regression tooling can consume
without re-parsing raw benchmark dumps.
"""

import argparse
import json
import os
import sys

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

# Keys of a benchmark entry that are structural, not user counters.
_STRUCTURAL = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
    "label", "error_occurred", "error_message",
}


def summarize(path):
    with open(path) as f:
        report = json.load(f)
    context = report.get("context", {})
    entries = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = _TIME_UNIT_SECONDS.get(bench.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"{path}: unknown time_unit in "
                     f"'{bench.get('name')}': {bench.get('time_unit')!r}")
        entry = {
            "name": bench["name"],
            "real_time_s": bench["real_time"] * unit,
            "cpu_time_s": bench.get("cpu_time", 0) * unit,
            "iterations": bench.get("iterations", 0),
        }
        counters = {k: v for k, v in bench.items()
                    if k not in _STRUCTURAL and isinstance(v, (int, float))}
        if counters:
            entry["counters"] = counters
        entries.append(entry)
    return {
        "source": os.path.basename(path),
        "date": context.get("date"),
        "host": context.get("host_name"),
        "num_cpus": context.get("num_cpus"),
        "build_type": context.get("library_build_type"),
        "benchmarks": entries,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="trajectory file to create or append to")
    parser.add_argument("--label",
                        help="tag for this run (e.g. a PR number or commit)")
    parser.add_argument("inputs", nargs="+",
                        help="--benchmark_out JSON files to merge")
    args = parser.parse_args()

    run = {"inputs": [summarize(p) for p in args.inputs]}
    if args.label:
        run["label"] = args.label

    trajectory = {"format": "slp-bench-trajectory-v1", "runs": []}
    if os.path.exists(args.out):
        with open(args.out) as f:
            existing = json.load(f)
        if existing.get("format") == "slp-bench-trajectory-v1":
            trajectory = existing
        else:
            sys.exit(f"{args.out} exists but is not a trajectory file; "
                     f"refusing to overwrite")
    trajectory["runs"].append(run)

    with open(args.out, "w") as f:
        json.dump(trajectory, f, indent=1)
        f.write("\n")
    total = sum(len(i["benchmarks"]) for i in run["inputs"])
    print(f"{args.out}: appended run with {total} benchmark entries "
          f"from {len(args.inputs)} file(s) "
          f"({len(trajectory['runs'])} run(s) total)")


if __name__ == "__main__":
    main()
