//===- tools/slpc.cpp - SLP compiler driver ----------------------*- C++ -*-===//
//
// Command-line front end for the framework: reads a kernel in the textual
// kernel language, runs a chosen optimizer, and reports the schedule, the
// generated vector program, the predicted performance, and (optionally)
// an execution-based verification against scalar semantics.
//
//   slpc [options] <kernel-file | -> (reads stdin for "-")
//     --opt=scalar|native|slp|global|global+layout   (default global+layout)
//     --machine=intel|amd                            (default intel)
//     --bits=N             override the SIMD datapath width
//     --dump-kernel        print the pre-processed (unrolled) kernel
//     --dump-schedule      print the superword statement schedule
//     --dump-vector        print the generated vector program
//     --no-verify          skip the execution-based equivalence check
//     --quiet              only print the performance summary
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "slp/Pipeline.h"
#include "vector/VectorPrinter.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace slp;

namespace {

struct CliOptions {
  std::string InputPath;
  OptimizerKind Kind = OptimizerKind::GlobalLayout;
  MachineModel Machine = MachineModel::intelDunnington();
  bool DumpKernel = false;
  bool DumpSchedule = false;
  bool DumpVector = false;
  bool Verify = true;
  bool Quiet = false;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: slpc [options] <kernel-file | ->\n"
      "  --opt=scalar|native|slp|global|global+layout  optimizer "
      "(default global+layout)\n"
      "  --machine=intel|amd   target machine model (default intel)\n"
      "  --bits=N              override the SIMD datapath width\n"
      "  --dump-kernel         print the unrolled kernel\n"
      "  --dump-schedule       print the superword statement schedule\n"
      "  --dump-vector         print the generated vector program\n"
      "  --no-verify           skip the equivalence check\n"
      "  --quiet               only print the performance summary\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--opt=", 0) == 0) {
      std::string V = Arg.substr(6);
      if (V == "scalar")
        Opts.Kind = OptimizerKind::Scalar;
      else if (V == "native")
        Opts.Kind = OptimizerKind::Native;
      else if (V == "slp")
        Opts.Kind = OptimizerKind::LarsenSlp;
      else if (V == "global")
        Opts.Kind = OptimizerKind::Global;
      else if (V == "global+layout")
        Opts.Kind = OptimizerKind::GlobalLayout;
      else {
        std::fprintf(stderr, "slpc: unknown optimizer '%s'\n", V.c_str());
        return false;
      }
    } else if (Arg.rfind("--machine=", 0) == 0) {
      std::string V = Arg.substr(10);
      if (V == "intel")
        Opts.Machine = MachineModel::intelDunnington();
      else if (V == "amd")
        Opts.Machine = MachineModel::amdPhenomII();
      else {
        std::fprintf(stderr, "slpc: unknown machine '%s'\n", V.c_str());
        return false;
      }
    } else if (Arg.rfind("--bits=", 0) == 0) {
      int Bits = std::atoi(Arg.c_str() + 7);
      if (Bits < 64 || Bits % 64 != 0) {
        std::fprintf(stderr,
                     "slpc: --bits must be a positive multiple of 64\n");
        return false;
      }
      Opts.Machine.DatapathBits = static_cast<unsigned>(Bits);
    } else if (Arg == "--dump-kernel") {
      Opts.DumpKernel = true;
    } else if (Arg == "--dump-schedule") {
      Opts.DumpSchedule = true;
    } else if (Arg == "--dump-vector") {
      Opts.DumpVector = true;
    } else if (Arg == "--no-verify") {
      Opts.Verify = false;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "slpc: unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::fprintf(stderr, "slpc: multiple input files\n");
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    printUsage();
    return false;
  }
  return true;
}

std::string readInput(const std::string &Path, bool &Ok) {
  Ok = true;
  std::ostringstream Buffer;
  if (Path == "-") {
    Buffer << std::cin.rdbuf();
    return Buffer.str();
  }
  std::ifstream In(Path);
  if (!In) {
    Ok = false;
    return "";
  }
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  bool ReadOk = true;
  std::string Source = readInput(Opts.InputPath, ReadOk);
  if (!ReadOk) {
    std::fprintf(stderr, "slpc: cannot read '%s'\n",
                 Opts.InputPath.c_str());
    return 2;
  }

  ModuleParseResult Parsed = parseModule(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "slpc: %s:%u: error: %s\n", Opts.InputPath.c_str(),
                 Parsed.ErrorLine, Parsed.ErrorMessage.c_str());
    return 1;
  }

  PipelineOptions Options;
  Options.Machine = Opts.Machine;
  ModulePipelineResult Module;
  for (const Kernel &K : Parsed.Kernels) {
    PipelineResult R = runPipeline(K, Opts.Kind, Options);
    Module.ScalarCycles += R.ScalarSim.Cycles;
    Module.OptimizedCycles += R.VectorSim.Cycles;
    Module.PerKernel.push_back(std::move(R));
  }

  for (unsigned KI = 0; KI != Parsed.Kernels.size(); ++KI) {
    const Kernel &K = Parsed.Kernels[KI];
    const PipelineResult &R = Module.PerKernel[KI];

  if (Opts.DumpKernel && !Opts.Quiet)
    std::printf("== unrolled kernel ==\n%s\n",
                printKernel(R.Preprocessed).c_str());

  if (Opts.DumpSchedule && !Opts.Quiet) {
    std::printf("== schedule (%u superword statement(s)) ==\n",
                R.TheSchedule.numGroups());
    for (const ScheduleItem &Item : R.TheSchedule.Items) {
      std::printf("  %s<", Item.isGroup() ? "superword " : "scalar    ");
      for (unsigned L = 0; L != Item.width(); ++L)
        std::printf("%sS%u", L ? ", " : "", Item.Lanes[L]);
      std::printf(">\n");
    }
    std::printf("\n");
  }

  if (Opts.DumpVector && !Opts.Quiet) {
    std::printf("== vector program ==\n%s\n",
                printVectorProgram(R.Final, R.Program).c_str());
    if (R.LayoutApplied)
      std::printf("  ; layout: %u scalar pack(s) placed, %u array pack(s) "
                  "replicated (%.0f bytes)\n\n",
                  R.Layout.ScalarPacksPlaced,
                  R.Layout.ArrayPacksReplicated, R.Layout.ReplicatedBytes);
  }

  if (Opts.Verify) {
    std::string Error;
    if (!checkEquivalence(K, R, /*Seed=*/0xC0FFEE, &Error)) {
      std::fprintf(stderr, "slpc: VERIFICATION FAILED: %s\n", Error.c_str());
      return 1;
    }
  }

  std::printf("%s: %s: %.2f%% predicted improvement over scalar on %s "
              "(%u superword statement(s)%s%s)\n",
              K.Name.c_str(), optimizerName(Opts.Kind),
              100.0 * R.improvement(), Options.Machine.Name.c_str(),
              R.TheSchedule.numGroups(),
              R.TransformationApplied ? "" : ", transformation skipped",
              Opts.Verify ? ", verified" : "");
  }

  if (Parsed.Kernels.size() > 1)
    std::printf("module: %.2f%% predicted improvement over scalar across "
                "%zu kernels\n",
                100.0 * Module.improvement(), Parsed.Kernels.size());
  return 0;
}
