//===- tools/slpc.cpp - SLP compiler driver ----------------------*- C++ -*-===//
//
// Command-line front end for the framework: reads a module of kernels in
// the textual kernel language, runs a chosen optimizer pipeline over every
// kernel, and reports the schedules, the generated vector programs, the
// predicted performance, per-pass timing/statistics/remarks, and
// (optionally) an execution-based verification against scalar semantics.
//
//   slpc [options] <kernel-file | -> (reads stdin for "-")
//     --opt=scalar|native|slp|global|global+layout   (default global+layout)
//     --machine=intel|amd                            (default intel)
//     --bits=N             override the SIMD datapath width
//     --grouping-impl=optimized|reference|exact  grouping engine
//     --exact-budget=N    per-round node budget of the exact engine
//     --exec-engine=optimized|reference|native
//                          execution engine used by the equivalence check
//                          (default optimized, or $SLP_EXEC_ENGINE);
//                          'native' runs host-compiled SIMD shared objects
//     --emit-c             print the C the native backend emits (scalar
//                          baseline + vector program) for every kernel
//     --passes=<list>      run a custom comma-separated pass list
//     --time-passes        print per-pass wall-clock timing
//     --stats              print the named statistic counters
//     --remarks            print the optimization remarks
//     -j N | --threads=N   optimize kernels on N worker threads (0 = auto)
//     --dump-kernel        print the pre-processed (unrolled) kernel
//     --dump-schedule      print the superword statement schedule
//     --dump-vector        print the generated vector program
//     --no-verify          skip the execution-based equivalence check
//     --verify-vector      statically verify the vector program (lane
//                          provenance translation validation)
//     --no-verify-vector   force the static verifier off
//     --verify-kernel      statically verify the source kernel: value-
//                          range analysis proves every array reference in
//                          bounds, or compilation stops with the exact
//                          offending iteration interval (SK* diagnostics)
//     --no-verify-kernel   force the kernel verifier off
//     --analyze            static-analysis mode: verifier + lint tier,
//                          print every diagnostic, skip execution
//     --werror             treat analyzer warnings as errors
//     --quiet              only print the performance summary
//
//===----------------------------------------------------------------------===//

#include "analysis/KernelVerifier.h"
#include "exec/ExecEngine.h"
#include "ir/Parser.h"
#include "native/CEmitter.h"
#include "ir/Printer.h"
#include "service/Client.h"
#include "slp/Passes.h"
#include "slp/Pipeline.h"
#include "vector/VectorPrinter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace slp;

namespace {

struct CliOptions {
  std::string InputPath;
  std::string Server; ///< empty = compile in-process
  OptimizerKind Kind = OptimizerKind::GlobalLayout;
  MachineModel Machine = MachineModel::intelDunnington();
  ServiceMachine ServerMachine = ServiceMachine::Intel;
  unsigned BitsOverride = 0; ///< 0 = the machine's default datapath
  GroupingImpl GroupingEngine = GroupingImpl::Optimized;
  uint64_t ExactBudget = DefaultExactNodeBudget;
  ExecEngineKind ExecEngine = defaultExecEngineKind();
  std::vector<std::string> Passes; ///< empty = canonical pipeline
  unsigned Threads = 1;
  bool TimePasses = false;
  bool Stats = false;
  bool Remarks = false;
  bool DumpKernel = false;
  bool DumpSchedule = false;
  bool DumpVector = false;
  bool EmitC = false;
  bool Verify = true;
  std::optional<bool> VerifyVector; ///< unset = build-type default
  std::optional<bool> VerifyKernel; ///< unset = build-type default
  bool Analyze = false;
  bool Werror = false;
  bool Quiet = false;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: slpc [options] <kernel-file | ->\n"
      "  --opt=scalar|native|slp|global|global+layout  optimizer "
      "(default global+layout)\n"
      "  --machine=intel|amd   target machine model (default intel)\n"
      "  --bits=N              override the SIMD datapath width\n"
      "  --server=SPEC         compile through a running slpd daemon\n"
      "                        (Unix socket path or host:port; falls back\n"
      "                        to a local compile when unreachable; see\n"
      "                        docs/service.md)\n"
      "  --grouping-impl=optimized|reference|exact\n"
      "                        grouping engine; 'optimized' and 'reference'\n"
      "                        give identical groupings ('reference' is the\n"
      "                        slow Figure 10 transcription), 'exact' solves\n"
      "                        each round's pack selection to proven\n"
      "                        optimality (default optimized)\n"
      "  --exact-budget=N      branch-and-bound nodes allowed per grouping\n"
      "                        round before 'exact' falls back to the\n"
      "                        greedy selection (0 = always fall back)\n"
      "  --exec-engine=optimized|reference|native\n"
      "                        execution engine for the equivalence check;\n"
      "                        'optimized' compiles kernels to flat tapes,\n"
      "                        'reference' walks the expression trees,\n"
      "                        'native' emits C, compiles it with the host\n"
      "                        compiler, and runs real SIMD (falls back to\n"
      "                        'optimized' when no host compiler exists)\n"
      "                        (default optimized, or $SLP_EXEC_ENGINE)\n"
      "  --emit-c              print the native backend's C for every\n"
      "                        kernel (scalar baseline + vector program)\n"
      "  --passes=<list>       run a custom comma-separated pass list\n"
      "                        (see docs/pass-pipeline.md for pass names)\n"
      "  --time-passes         print per-pass wall-clock timing\n"
      "  --stats               print the named statistic counters\n"
      "  --remarks             print the optimization remarks\n"
      "  -j N, --threads=N     optimize kernels on N worker threads "
      "(0 = one per hardware thread)\n"
      "  --dump-kernel         print the unrolled kernel\n"
      "  --dump-schedule       print the superword statement schedule\n"
      "  --dump-vector         print the generated vector program\n"
      "  --no-verify           skip the equivalence check\n"
      "  --verify-vector       statically verify the vector program against\n"
      "                        the kernel's scalar semantics (lane\n"
      "                        provenance translation validation; on by\n"
      "                        default in debug builds)\n"
      "  --no-verify-vector    force the static verifier off\n"
      "  --verify-kernel       statically verify the source kernel (bounds\n"
      "                        proof via value-range analysis; on by\n"
      "                        default in debug builds)\n"
      "  --no-verify-kernel    force the kernel verifier off\n"
      "  --analyze             static-analysis mode: run the verifier with\n"
      "                        its lint tier, print every diagnostic, and\n"
      "                        skip the execution-based check\n"
      "  --werror              treat analyzer warnings as errors\n"
      "  --quiet               only print the performance summary\n");
}

bool parseBits(const std::string &Value, unsigned &BitsOut) {
  char *End = nullptr;
  long Bits = std::strtol(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0') {
    std::fprintf(stderr, "slpc: --bits expects an integer, got '%s'\n",
                 Value.c_str());
    return false;
  }
  if (Bits <= 0) {
    std::fprintf(stderr,
                 "slpc: --bits must be positive, got %ld (a machine "
                 "with no datapath cannot hold a superword)\n",
                 Bits);
    return false;
  }
  if ((Bits & (Bits - 1)) != 0) {
    std::fprintf(stderr,
                 "slpc: --bits must be a power of two, got %ld (SIMD "
                 "datapaths hold 2^k lanes)\n",
                 Bits);
    return false;
  }
  if (Bits < 64) {
    std::fprintf(stderr,
                 "slpc: --bits must be at least 64 (one 64-bit scalar "
                 "element), got %ld\n",
                 Bits);
    return false;
  }
  BitsOut = static_cast<unsigned>(Bits);
  return true;
}

bool parseThreadCount(const std::string &Value, unsigned &ThreadsOut) {
  char *End = nullptr;
  long Threads = std::strtol(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0' || Threads < 0) {
    std::fprintf(stderr,
                 "slpc: thread count must be a non-negative integer "
                 "(0 = one per hardware thread), got '%s'\n",
                 Value.c_str());
    return false;
  }
  ThreadsOut = static_cast<unsigned>(Threads);
  return true;
}

std::vector<std::string> splitList(const std::string &List) {
  std::vector<std::string> Out;
  std::string Item;
  std::istringstream In(List);
  while (std::getline(In, Item, ','))
    if (!Item.empty())
      Out.push_back(Item);
  return Out;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--opt=", 0) == 0) {
      std::string V = Arg.substr(6);
      if (V == "scalar")
        Opts.Kind = OptimizerKind::Scalar;
      else if (V == "native")
        Opts.Kind = OptimizerKind::Native;
      else if (V == "slp")
        Opts.Kind = OptimizerKind::LarsenSlp;
      else if (V == "global")
        Opts.Kind = OptimizerKind::Global;
      else if (V == "global+layout")
        Opts.Kind = OptimizerKind::GlobalLayout;
      else {
        std::fprintf(stderr, "slpc: unknown optimizer '%s'\n", V.c_str());
        return false;
      }
    } else if (Arg.rfind("--machine=", 0) == 0) {
      std::string V = Arg.substr(10);
      if (V == "intel") {
        Opts.Machine = MachineModel::intelDunnington();
        Opts.ServerMachine = ServiceMachine::Intel;
      } else if (V == "amd") {
        Opts.Machine = MachineModel::amdPhenomII();
        Opts.ServerMachine = ServiceMachine::Amd;
      } else {
        std::fprintf(stderr, "slpc: unknown machine '%s'\n", V.c_str());
        return false;
      }
      // Re-apply an earlier --bits: the override outlives machine choice.
      if (Opts.BitsOverride)
        Opts.Machine.DatapathBits = Opts.BitsOverride;
    } else if (Arg.rfind("--bits=", 0) == 0) {
      unsigned Bits = 0;
      if (!parseBits(Arg.substr(7), Bits))
        return false;
      Opts.Machine.DatapathBits = Bits;
      Opts.BitsOverride = Bits;
    } else if (Arg.rfind("--server=", 0) == 0) {
      Opts.Server = Arg.substr(9);
      if (Opts.Server.empty()) {
        std::fprintf(stderr,
                     "slpc: --server needs a socket path or host:port\n");
        return false;
      }
    } else if (Arg.rfind("--grouping-impl=", 0) == 0) {
      std::string V = Arg.substr(16);
      if (V == "optimized")
        Opts.GroupingEngine = GroupingImpl::Optimized;
      else if (V == "reference")
        Opts.GroupingEngine = GroupingImpl::Reference;
      else if (V == "exact")
        Opts.GroupingEngine = GroupingImpl::Exact;
      else {
        std::fprintf(stderr, "slpc: unknown grouping engine '%s'\n",
                     V.c_str());
        return false;
      }
    } else if (Arg.rfind("--exact-budget=", 0) == 0) {
      std::string V = Arg.substr(15);
      char *End = nullptr;
      uint64_t Budget = std::strtoull(V.c_str(), &End, 10);
      if (End == V.c_str() || *End != '\0') {
        std::fprintf(stderr,
                     "slpc: --exact-budget expects an integer, got '%s'\n",
                     V.c_str());
        return false;
      }
      Opts.ExactBudget = Budget;
    } else if (Arg.rfind("--exec-engine=", 0) == 0) {
      std::string V = Arg.substr(14);
      std::optional<ExecEngineKind> Kind = parseExecEngineName(V);
      if (!Kind) {
        std::fprintf(stderr, "slpc: unknown exec engine '%s'\n", V.c_str());
        return false;
      }
      Opts.ExecEngine = *Kind;
    } else if (Arg.rfind("--passes=", 0) == 0) {
      Opts.Passes = splitList(Arg.substr(9));
      if (Opts.Passes.empty()) {
        std::fprintf(stderr, "slpc: --passes needs at least one pass\n");
        return false;
      }
    } else if (Arg.rfind("--threads=", 0) == 0) {
      if (!parseThreadCount(Arg.substr(10), Opts.Threads))
        return false;
    } else if (Arg == "-j") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "slpc: -j needs a thread count\n");
        return false;
      }
      if (!parseThreadCount(Argv[++I], Opts.Threads))
        return false;
    } else if (Arg.rfind("-j", 0) == 0 && Arg.size() > 2) {
      if (!parseThreadCount(Arg.substr(2), Opts.Threads))
        return false;
    } else if (Arg == "--time-passes") {
      Opts.TimePasses = true;
    } else if (Arg == "--stats") {
      Opts.Stats = true;
    } else if (Arg == "--remarks") {
      Opts.Remarks = true;
    } else if (Arg == "--dump-kernel") {
      Opts.DumpKernel = true;
    } else if (Arg == "--dump-schedule") {
      Opts.DumpSchedule = true;
    } else if (Arg == "--dump-vector") {
      Opts.DumpVector = true;
    } else if (Arg == "--emit-c") {
      Opts.EmitC = true;
    } else if (Arg == "--no-verify") {
      Opts.Verify = false;
    } else if (Arg == "--verify-vector") {
      Opts.VerifyVector = true;
    } else if (Arg == "--no-verify-vector") {
      Opts.VerifyVector = false;
    } else if (Arg == "--verify-kernel") {
      Opts.VerifyKernel = true;
    } else if (Arg == "--no-verify-kernel") {
      Opts.VerifyKernel = false;
    } else if (Arg == "--analyze") {
      Opts.Analyze = true;
    } else if (Arg == "--werror") {
      Opts.Werror = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "slpc: unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::fprintf(stderr, "slpc: multiple input files\n");
      return false;
    }
  }
  if (Opts.InputPath.empty()) {
    printUsage();
    return false;
  }
  return true;
}

/// Compiles the module through the daemon at Opts.Server, printing the
/// same output a local run would (byte-identical modulo the execution
/// stage running server-side). Returns true when the request was fully
/// served remotely, with \p ExitCode set; false means the daemon was
/// unreachable or answered garbage and the caller should compile locally
/// (transparent fallback — nothing has been printed to stdout yet).
bool runServerMode(const CliOptions &Opts, const ModuleParseResult &Parsed,
                   int &ExitCode) {
  std::string Err;
  std::optional<ServiceClient> Client =
      ServiceClient::connect(Opts.Server, &Err);
  if (!Client) {
    std::fprintf(stderr, "slpc: warning: %s; compiling locally\n",
                 Err.c_str());
    return false;
  }

  ServiceRequest Request;
  Request.Type = ServiceRequestType::Compile;
  ServiceOptions &S = Request.Options;
  S.Kind = Opts.Kind;
  S.Machine = Opts.ServerMachine;
  S.Bits = Opts.BitsOverride;
  S.GroupingEngine = Opts.GroupingEngine;
  S.ExactBudget = Opts.ExactBudget;
  S.Exec = Opts.ExecEngine;
  // Resolve the build-type default client-side: the cache key must name
  // the behavior, never "whatever the daemon defaults to".
  S.VerifyVector = Opts.Analyze      ? true
                   : Opts.VerifyVector ? *Opts.VerifyVector
                                       : defaultVerifyVector();
  S.VerifyLint = Opts.Analyze;
  S.VerifyWerror = Opts.Werror;
  S.Equivalence = Opts.Verify && !Opts.Analyze;
  // Canonical printing of the locally parsed kernels: whitespace and
  // comment variants of the same kernel share one cache entry, and the
  // daemon compiles exactly what a local run would.
  for (const Kernel &K : Parsed.Kernels)
    Request.Kernels.push_back(printKernel(K));

  ServiceReply Reply;
  if (!Client->roundTrip(Request, Reply, &Err)) {
    std::fprintf(stderr,
                 "slpc: warning: server '%s' failed (%s); compiling "
                 "locally\n",
                 Opts.Server.c_str(), Err.c_str());
    return false;
  }
  if (!Reply.Ok) {
    // The daemon understood the request and rejected it (e.g. a kernel
    // its parser refuses). That verdict is final, not a fallback case.
    std::fprintf(stderr, "slpc: server error: %s\n", Reply.Error.c_str());
    ExitCode = 1;
    return true;
  }
  if (Reply.Results.size() != Parsed.Kernels.size()) {
    std::fprintf(stderr,
                 "slpc: warning: server returned %zu result(s) for %zu "
                 "kernel(s); compiling locally\n",
                 Reply.Results.size(), Parsed.Kernels.size());
    return false;
  }
  // Parse every artifact before printing anything, so a malformed one can
  // still fall back without duplicating output.
  std::vector<ServiceArtifact> Artifacts(Reply.Results.size());
  for (size_t I = 0; I != Reply.Results.size(); ++I) {
    if (!parseArtifact(Reply.Results[I].Artifact, Artifacts[I], &Err)) {
      std::fprintf(stderr,
                   "slpc: warning: malformed artifact from '%s' (%s); "
                   "compiling locally\n",
                   Opts.Server.c_str(), Err.c_str());
      return false;
    }
  }

  double ScalarCycles = 0, VectorCycles = 0;
  bool VerifyErrors = false;
  for (const ServiceArtifact &A : Artifacts) {
    ScalarCycles += A.ScalarCycles;
    VectorCycles += A.VectorCycles;

    for (const std::string &D : A.Diags) {
      bool IsError = D.rfind("error ", 0) == 0;
      VerifyErrors |= IsError;
      if (Opts.Analyze || IsError)
        std::fprintf(stderr, "slpc: %s: %s\n", A.KernelName.c_str(),
                     D.c_str());
    }

    if (Opts.DumpKernel && !Opts.Quiet)
      std::printf("== unrolled kernel ==\n%s\n", A.PreprocessedText.c_str());

    if (Opts.DumpSchedule && !Opts.Quiet)
      std::printf("%s\n", A.ScheduleText.c_str());

    if (Opts.DumpVector && !Opts.Quiet) {
      std::printf("== vector program ==\n%s\n", A.ProgramText.c_str());
      if (A.LayoutApplied)
        std::printf("  ; layout: %u scalar pack(s) placed, %u array pack(s) "
                    "replicated (%.0f bytes)\n\n",
                    A.LayoutScalarPacks, A.LayoutArrayPacks,
                    A.LayoutReplicatedBytes);
    }

    if (Opts.Verify && !Opts.Analyze) {
      if (!A.Simulated) {
        std::fprintf(stderr,
                     "slpc: note: skipping verification for '%s' (the "
                     "pass list emitted no vector program)\n",
                     A.KernelName.c_str());
      } else if (!A.EquivOk) {
        std::fprintf(stderr,
                     "slpc: VERIFICATION FAILED: %s: the server-side "
                     "equivalence check found a scalar/vector mismatch\n",
                     A.KernelName.c_str());
        ExitCode = 1;
        return true;
      }
    }

    if (A.Simulated)
      std::printf("%s: %s: %.2f%% predicted improvement over scalar on %s "
                  "(%u superword statement(s)%s%s)\n",
                  A.KernelName.c_str(), A.Optimizer.c_str(),
                  100.0 * A.improvement(), Opts.Machine.Name.c_str(),
                  A.Groups, A.Transformed ? "" : ", transformation skipped",
                  Opts.Verify ? ", verified" : "");
    else
      std::printf("%s: %s: pipeline ran without the simulate stage "
                  "(%u superword statement(s))\n",
                  A.KernelName.c_str(), A.Optimizer.c_str(), A.Groups);
  }

  if (Artifacts.size() > 1)
    std::printf("module: %.2f%% predicted improvement over scalar across "
                "%zu kernels\n",
                100.0 * (ScalarCycles > 0 ? 1.0 - VectorCycles / ScalarCycles
                                          : 0.0),
                Artifacts.size());

  if (Opts.Stats) {
    Statistics Stats;
    for (const auto &C : Reply.Counters)
      Stats.set(C.first, C.second);
    std::printf("%s", Stats.str("statistics").c_str());
  }

  if (VerifyErrors) {
    std::fprintf(stderr,
                 "slpc: STATIC VERIFICATION FAILED: the vector program "
                 "does not provably implement the kernel\n");
    ExitCode = 1;
    return true;
  }
  ExitCode = 0;
  return true;
}

std::string readInput(const std::string &Path, bool &Ok) {
  Ok = true;
  std::ostringstream Buffer;
  if (Path == "-") {
    Buffer << std::cin.rdbuf();
    return Buffer.str();
  }
  std::ifstream In(Path);
  if (!In) {
    Ok = false;
    return "";
  }
  Buffer << In.rdbuf();
  return Buffer.str();
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  bool ReadOk = true;
  std::string Source = readInput(Opts.InputPath, ReadOk);
  if (!ReadOk) {
    std::fprintf(stderr, "slpc: cannot read '%s'\n",
                 Opts.InputPath.c_str());
    return 2;
  }

  ModuleParseResult Parsed = parseModule(Source);
  if (!Parsed.succeeded()) {
    std::fprintf(stderr, "slpc: %s:%u: error: %s\n", Opts.InputPath.c_str(),
                 Parsed.ErrorLine, Parsed.ErrorMessage.c_str());
    return 1;
  }

  // Static kernel verification runs before anything executes (locally or
  // on a daemon): an out-of-bounds kernel must never reach the
  // interpreter or the native backend. --analyze forces it on with the
  // lint tier; otherwise --verify-kernel/--no-verify-kernel override the
  // build-type default.
  bool DoVerifyKernel =
      Opts.Analyze ||
      (Opts.VerifyKernel ? *Opts.VerifyKernel : defaultVerifyKernel());
  if (DoVerifyKernel) {
    KernelVerifyOptions VO;
    VO.Lints = Opts.Analyze;
    VO.WarningsAsErrors = Opts.Werror;
    bool KernelErrors = false;
    for (const Kernel &K : Parsed.Kernels) {
      KernelVerifyResult KR = verifyKernel(K, VO);
      for (const Diagnostic &D : KR.Diags) {
        bool IsError = D.Severity == DiagSeverity::Error;
        KernelErrors |= IsError;
        if (Opts.Analyze || IsError)
          std::fprintf(stderr, "slpc: %s: %s\n", K.Name.c_str(),
                       D.render().c_str());
      }
    }
    if (KernelErrors) {
      std::fprintf(stderr,
                   "slpc: KERNEL VERIFICATION FAILED: an array reference "
                   "is not provably in bounds\n");
      return 1;
    }
  }

  if (!Opts.Server.empty()) {
    if (!Opts.Passes.empty() || Opts.EmitC || Opts.TimePasses ||
        Opts.Remarks) {
      std::fprintf(stderr,
                   "slpc: note: --passes, --emit-c, --time-passes and "
                   "--remarks need the in-process pipeline; ignoring "
                   "--server\n");
    } else {
      int ExitCode = 0;
      if (runServerMode(Opts, Parsed, ExitCode))
        return ExitCode;
      // Unreachable or misbehaving daemon: fall through to the ordinary
      // local compile below.
    }
  }

  ExecEngine Engine(Opts.ExecEngine);

  PipelineOptions Options;
  Options.Machine = Opts.Machine;
  Options.Threads = Opts.Threads;
  Options.GroupingEngine = Opts.GroupingEngine;
  Options.ExactBudget = Opts.ExactBudget;
  Options.Exec = Opts.ExecEngine;
  if (Opts.Analyze)
    Options.VerifyVector = true;
  else if (Opts.VerifyVector)
    Options.VerifyVector = *Opts.VerifyVector;
  // The up-front check above already reported kernel diagnostics; keep
  // the in-pipeline stage consistent so verify-kernel.* statistics and
  // remarks reflect the requested mode.
  Options.VerifyKernel = DoVerifyKernel;
  Options.VerifyLint = Opts.Analyze;
  Options.VerifyWerror = Opts.Werror;

  ModulePipelineResult Module;
  if (Opts.Passes.empty()) {
    Module = runPipelineOverModule(Parsed.Kernels, Opts.Kind, Options);
  } else {
    // Custom pass lists run through the same engine, one kernel at a time.
    PassPipeline Pipeline;
    std::string Error;
    if (!buildPipelineFromNames(Opts.Passes, Pipeline, &Error)) {
      std::fprintf(stderr, "slpc: %s\n", Error.c_str());
      return 2;
    }
    for (const Kernel &K : Parsed.Kernels) {
      PipelineResult R = runPassPipeline(K, Opts.Kind, Options, Pipeline);
      Module.ScalarCycles += R.ScalarSim.Cycles;
      Module.OptimizedCycles += R.VectorSim.Cycles;
      Module.Stats.merge(R.Stats);
      Module.PassTimings.merge(R.PassTimings);
      Module.PerKernel.push_back(std::move(R));
    }
  }

  bool VerifyErrors = false;
  for (unsigned KI = 0; KI != Parsed.Kernels.size(); ++KI) {
    const Kernel &K = Parsed.Kernels[KI];
    const PipelineResult &R = Module.PerKernel[KI];

    // Static-verifier diagnostics: all of them in --analyze mode, errors
    // always.
    for (const Diagnostic &D : R.VerifyDiags) {
      bool IsError = D.Severity == DiagSeverity::Error;
      VerifyErrors |= IsError;
      if (Opts.Analyze || IsError)
        std::fprintf(stderr, "slpc: %s: %s\n", K.Name.c_str(),
                     D.render().c_str());
    }

    if (Opts.DumpKernel && !Opts.Quiet)
      std::printf("== unrolled kernel ==\n%s\n",
                  printKernel(R.Preprocessed).c_str());

    if (Opts.DumpSchedule && !Opts.Quiet) {
      std::printf("== schedule (%u superword statement(s)) ==\n",
                  R.TheSchedule.numGroups());
      for (const ScheduleItem &Item : R.TheSchedule.Items) {
        std::printf("  %s<", Item.isGroup() ? "superword " : "scalar    ");
        for (unsigned L = 0; L != Item.width(); ++L)
          std::printf("%sS%u", L ? ", " : "", Item.Lanes[L]);
        std::printf(">\n");
      }
      std::printf("\n");
    }

    if (Opts.DumpVector && !Opts.Quiet) {
      std::printf("== vector program ==\n%s\n",
                  printVectorProgram(R.Final, R.Program).c_str());
      if (R.LayoutApplied)
        std::printf("  ; layout: %u scalar pack(s) placed, %u array pack(s) "
                    "replicated (%.0f bytes)\n\n",
                    R.Layout.ScalarPacksPlaced,
                    R.Layout.ArrayPacksReplicated, R.Layout.ReplicatedBytes);
    }

    if (Opts.Remarks && !Opts.Quiet)
      for (const Remark &Rem : R.Remarks)
        std::printf("%s\n", Rem.str().c_str());

    if (Opts.EmitC && !Opts.Quiet) {
      std::printf("== native C: scalar baseline ==\n%s\n",
                  emitScalarKernelC(K).c_str());
      if (R.TransformationApplied)
        std::printf("== native C: vector program ==\n%s\n",
                    emitVectorProgramC(R.Final, R.Program).c_str());
      else
        std::printf("== native C: vector program ==\n"
                    "/* transformation skipped: no vector program */\n\n");
    }

    if (Opts.Verify && !Opts.Analyze) {
      if (!R.Simulated) {
        std::fprintf(stderr,
                     "slpc: note: skipping verification for '%s' (the "
                     "pass list emitted no vector program)\n",
                     K.Name.c_str());
      } else {
        std::string Error;
        if (!checkEquivalence(K, R, /*Seed=*/0xC0FFEE, &Error, &Engine)) {
          std::fprintf(stderr, "slpc: VERIFICATION FAILED: %s\n",
                       Error.c_str());
          return 1;
        }
      }
    }

    if (R.Simulated)
      std::printf("%s: %s: %.2f%% predicted improvement over scalar on %s "
                  "(%u superword statement(s)%s%s)\n",
                  K.Name.c_str(), optimizerName(Opts.Kind),
                  100.0 * R.improvement(), Options.Machine.Name.c_str(),
                  R.TheSchedule.numGroups(),
                  R.TransformationApplied ? "" : ", transformation skipped",
                  Opts.Verify ? ", verified" : "");
    else
      std::printf("%s: %s: pipeline ran without the simulate stage "
                  "(%u superword statement(s))\n",
                  K.Name.c_str(), optimizerName(Opts.Kind),
                  R.TheSchedule.numGroups());
  }

  if (Parsed.Kernels.size() > 1)
    std::printf("module: %.2f%% predicted improvement over scalar across "
                "%zu kernels\n",
                100.0 * Module.improvement(), Parsed.Kernels.size());

  if (Engine.kind() == ExecEngineKind::Native &&
      !Engine.nativeDiagnostic().empty())
    std::fprintf(stderr,
                 "slpc: warning: native engine fell back to the tape: %s\n",
                 Engine.nativeDiagnostic().c_str());

  if (Opts.Stats) {
    reportExecCounters(Engine.counters(), Module.Stats);
    std::printf("%s", Module.Stats.str("statistics").c_str());
  }
  if (Opts.TimePasses)
    std::printf("%s", Module.PassTimings.str("pass timing (wall clock)")
                          .c_str());
  if (VerifyErrors) {
    std::fprintf(stderr,
                 "slpc: STATIC VERIFICATION FAILED: the vector program "
                 "does not provably implement the kernel\n");
    return 1;
  }
  return 0;
}
