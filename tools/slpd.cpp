//===- tools/slpd.cpp - SLP compilation-service daemon ----------*- C++ -*-===//
//
// The long-running compilation server (docs/service.md): listens on a
// Unix-domain socket (and optionally a localhost TCP port), compiles
// batches of kernels sent by `slpc --server=`, shards each batch across a
// worker pool, and memoizes artifacts in a content-addressed two-tier
// cache so repeated builds of the same kernels are served without running
// the pipeline — warm across restarts via the persistent tier.
//
//   slpd --socket=PATH [options]       run the daemon (Ctrl-C to stop)
//     --tcp=PORT            also listen on 127.0.0.1:PORT
//     -j N | --threads=N    worker threads per compile batch (0 = auto)
//     --cache-dir=DIR       persistent artifact tier (default
//                           $TMPDIR/slpd-cache; --no-disk-cache disables)
//     --cache-bytes=N       in-memory tier byte budget (default 64 MiB)
//     --cache-entries=N     in-memory tier entry budget (default 4096)
//   slpd --ping --socket=PATH          readiness probe (exit 0 when up)
//   slpd --stop --socket=PATH          ask a running daemon to exit
//   slpd --dump-workloads              print the 16-workload suite as a
//                                      module (the CI smoke input)
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "service/Client.h"
#include "service/Server.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

using namespace slp;

namespace {

std::atomic<bool> SignalStop{false};

void onSignal(int) { SignalStop.store(true); }

struct DaemonOptions {
  std::string SocketPath;
  int TcpPort = -1;
  unsigned Threads = 0;
  std::string CacheDir;
  bool DiskCache = true;
  size_t CacheBytes = 64u << 20;
  size_t CacheEntries = 4096;
  bool Ping = false;
  bool Stop = false;
  bool DumpWorkloads = false;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: slpd --socket=PATH [options]\n"
      "  --socket=PATH        Unix-domain socket to listen on\n"
      "  --tcp=PORT           also listen on 127.0.0.1:PORT\n"
      "  -j N, --threads=N    worker threads per compile batch (0 = one\n"
      "                       per hardware thread; default 0)\n"
      "  --cache-dir=DIR      persistent artifact cache directory\n"
      "                       (default $TMPDIR/slpd-cache)\n"
      "  --no-disk-cache      keep the cache in memory only\n"
      "  --cache-bytes=N      memory-tier byte budget (default 67108864)\n"
      "  --cache-entries=N    memory-tier entry budget (default 4096)\n"
      "  --ping               probe a running daemon and exit\n"
      "  --stop               ask a running daemon to shut down\n"
      "  --dump-workloads     print the 16-workload suite as a module\n");
}

bool parseUnsigned(const std::string &Value, const char *Flag,
                  uint64_t &Out) {
  char *End = nullptr;
  errno = 0;
  Out = std::strtoull(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "slpd: %s expects a non-negative integer, got '%s'\n",
                 Flag, Value.c_str());
    return false;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, DaemonOptions &Opts) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    uint64_t N = 0;
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(9);
    } else if (Arg.rfind("--tcp=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(6), "--tcp", N) || N == 0 || N > 65535) {
        std::fprintf(stderr, "slpd: --tcp expects a port (1-65535)\n");
        return false;
      }
      Opts.TcpPort = static_cast<int>(N);
    } else if (Arg.rfind("--threads=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(10), "--threads", N))
        return false;
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg == "-j") {
      if (I + 1 >= Argc || !parseUnsigned(Argv[++I], "-j", N))
        return false;
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg.rfind("-j", 0) == 0 && Arg.size() > 2) {
      if (!parseUnsigned(Arg.substr(2), "-j", N))
        return false;
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg.rfind("--cache-dir=", 0) == 0) {
      Opts.CacheDir = Arg.substr(12);
    } else if (Arg == "--no-disk-cache") {
      Opts.DiskCache = false;
    } else if (Arg.rfind("--cache-bytes=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(14), "--cache-bytes", N))
        return false;
      Opts.CacheBytes = N;
    } else if (Arg.rfind("--cache-entries=", 0) == 0) {
      if (!parseUnsigned(Arg.substr(16), "--cache-entries", N))
        return false;
      Opts.CacheEntries = N;
    } else if (Arg == "--ping") {
      Opts.Ping = true;
    } else if (Arg == "--stop") {
      Opts.Stop = true;
    } else if (Arg == "--dump-workloads") {
      Opts.DumpWorkloads = true;
    } else if (Arg == "--help" || Arg == "-h") {
      printUsage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "slpd: unknown option '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (!Opts.DumpWorkloads && Opts.SocketPath.empty()) {
    printUsage();
    return false;
  }
  return true;
}

std::string defaultCacheDir() {
  std::error_code Ec;
  std::filesystem::path Tmp = std::filesystem::temp_directory_path(Ec);
  if (Ec)
    Tmp = "/tmp";
  return (Tmp / "slpd-cache").string();
}

} // namespace

int main(int Argc, char **Argv) {
  DaemonOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 2;

  if (Opts.DumpWorkloads) {
    // The paper's Table 3 suite as one parseable module — the standing
    // input of the CI service smoke and a handy local load generator.
    std::printf("// The 16-workload evaluation suite (Table 3), printed\n"
                "// canonically; feed to `slpc --server=` or `slpc`.\n");
    for (const Workload &W : standardWorkloads())
      std::printf("%s\n", printKernel(W.TheKernel).c_str());
    return 0;
  }

  if (Opts.Ping || Opts.Stop) {
    std::string Err;
    auto Client = ServiceClient::connect(Opts.SocketPath, &Err);
    if (!Client) {
      std::fprintf(stderr, "slpd: %s\n", Err.c_str());
      return 1;
    }
    bool Ok = Opts.Stop ? Client->shutdownServer(&Err) : Client->ping(&Err);
    if (!Ok) {
      std::fprintf(stderr, "slpd: %s failed: %s\n",
                   Opts.Stop ? "--stop" : "--ping", Err.c_str());
      return 1;
    }
    if (Opts.Stop)
      std::printf("slpd: daemon at '%s' shutting down\n",
                  Opts.SocketPath.c_str());
    return 0;
  }

  ServerConfig Config;
  Config.SocketPath = Opts.SocketPath;
  Config.TcpPort = Opts.TcpPort;
  Config.Threads = Opts.Threads;
  Config.Cache.DiskDir =
      Opts.DiskCache ? (Opts.CacheDir.empty() ? defaultCacheDir()
                                              : Opts.CacheDir)
                     : std::string();
  Config.Cache.MaxMemoryBytes = Opts.CacheBytes;
  Config.Cache.MaxMemoryEntries = Opts.CacheEntries;

  ServiceServer Server(Config);
  std::string Err;
  if (!Server.start(&Err)) {
    std::fprintf(stderr, "slpd: %s\n", Err.c_str());
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::printf("slpd: listening on '%s'%s (cache: %s)\n",
              Config.SocketPath.c_str(),
              Config.TcpPort >= 0
                  ? (" and 127.0.0.1:" + std::to_string(Config.TcpPort))
                        .c_str()
                  : "",
              Config.Cache.DiskDir.empty() ? "memory only"
                                           : Config.Cache.DiskDir.c_str());
  std::fflush(stdout);

  Server.wait(&SignalStop);
  Server.stop();

  ServerCounters C = Server.counters();
  ArtifactCacheCounters Cache = Server.cache().counters();
  std::printf("slpd: served %llu request(s), %llu kernel(s): "
              "%llu memory hit(s), %llu disk hit(s), %llu coalesced, "
              "%llu compile(s)\n",
              static_cast<unsigned long long>(C.Requests),
              static_cast<unsigned long long>(C.Kernels),
              static_cast<unsigned long long>(Cache.MemoryHits),
              static_cast<unsigned long long>(Cache.DiskHits),
              static_cast<unsigned long long>(Cache.Coalesced),
              static_cast<unsigned long long>(Cache.Misses));
  return 0;
}
