#!/usr/bin/env python3
"""Gate a google-benchmark JSON result against a checked-in baseline.

Usage:
  check_bench_regression.py --current BENCH.json --baseline BASELINE.json \
      --benchmark grouping/optimized/1024 [--max-ratio 2.0]
  check_bench_regression.py --current BENCH.json --baseline BASELINE.json \
      --benchmark native/vector/gromacs --counter measured_speedup \
      --min-ratio 0.5

BENCH.json is the --benchmark_out JSON of a bench_* binary. BASELINE.json
maps benchmark names to wall-clock seconds (keys starting with "_" are
ignored). Without --counter, the gate compares the benchmark's real_time:
exiting non-zero when current/baseline exceeds --max-ratio, so CI fails on
large compile-time regressions while absorbing ordinary runner-speed
variance.

With --counter NAME, the gate reads the named user counter of the
benchmark entry instead (baseline key "<benchmark>:<counter>") and
--min-ratio applies: the run fails when current/baseline falls BELOW the
floor. That is the shape for gauges where bigger is better — e.g. the
native backend's measured_speedup must stay at least half its checked-in
baseline (--min-ratio 0.5). --max-ratio may be combined to bound the
ratio from above too; when --min-ratio is given, the upper bound is only
enforced if --max-ratio was passed explicitly.
"""

import argparse
import json
import sys

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def find_benchmark(report, name):
    for bench in report.get("benchmarks", []):
        if bench.get("name") == name:
            return bench
    sys.exit(f"benchmark '{name}' not found in the current results "
             f"(ran with the wrong --benchmark_filter?)")


def current_seconds(report, name):
    bench = find_benchmark(report, name)
    unit = _TIME_UNIT_SECONDS.get(bench.get("time_unit", "ns"))
    if unit is None:
        sys.exit(f"unknown time_unit in '{name}': "
                 f"{bench.get('time_unit')!r}")
    return bench["real_time"] * unit


def current_counter(report, name, counter):
    bench = find_benchmark(report, name)
    if counter not in bench:
        sys.exit(f"benchmark '{name}' carries no counter '{counter}'")
    return float(bench[counter])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--benchmark", required=True)
    parser.add_argument("--counter",
                        help="gate this user counter instead of real_time "
                             "(baseline key '<benchmark>:<counter>')")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="fail when current/baseline exceeds this "
                             "(default 2.0 unless --min-ratio is given)")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail when current/baseline falls below this "
                             "(for bigger-is-better counters)")
    args = parser.parse_args()

    with open(args.current) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.counter:
        key = f"{args.benchmark}:{args.counter}"
        cur = current_counter(report, args.benchmark, args.counter)
        what = args.counter
        fmt = lambda v: f"{v:.3f}"
    else:
        key = args.benchmark
        cur = current_seconds(report, args.benchmark)
        what = "real_time"
        fmt = lambda v: f"{v * 1e3:.1f} ms"

    if key not in baseline:
        sys.exit(f"'{key}' has no baseline entry in {args.baseline}")

    max_ratio = args.max_ratio
    if max_ratio is None and args.min_ratio is None:
        max_ratio = 2.0

    base = float(baseline[key])
    ratio = cur / base
    ok = True
    limits = []
    if max_ratio is not None:
        limits.append(f"<= {max_ratio:.2f}x")
        ok = ok and ratio <= max_ratio
    if args.min_ratio is not None:
        limits.append(f">= {args.min_ratio:.2f}x")
        ok = ok and ratio >= args.min_ratio
    verdict = "OK" if ok else "REGRESSION"
    print(f"{args.benchmark} [{what}]: current {fmt(cur)}, baseline "
          f"{fmt(base)}, ratio {ratio:.2f}x "
          f"(limit {', '.join(limits)}) -> {verdict}")
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
