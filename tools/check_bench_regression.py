#!/usr/bin/env python3
"""Gate a google-benchmark JSON result against a checked-in baseline.

Usage:
  check_bench_regression.py --current BENCH.json --baseline BASELINE.json \
      --benchmark grouping/optimized/1024 [--max-ratio 2.0]
  check_bench_regression.py --current BENCH.json --baseline BASELINE.json \
      --benchmark native/vector/gromacs --counter measured_speedup \
      --min-ratio 0.5
  check_bench_regression.py --current BENCH.json --baseline BASELINE.json \
      --benchmark service/latency --counter warm_p99_us --max-ratio 4.0

BENCH.json is the --benchmark_out JSON of a bench_* binary. BASELINE.json
maps benchmark names to wall-clock seconds (keys starting with "_" are
ignored). --benchmark may be repeated to gate several entries of the same
shape in one invocation; every named benchmark is checked and the exit
status is non-zero if any of them regressed.

Without --counter, the gate compares the benchmark's real_time: exiting
non-zero when current/baseline exceeds --max-ratio, so CI fails on large
compile-time regressions while absorbing ordinary runner-speed variance.

With --counter NAME, the gate reads the named user counter of the
benchmark entry instead (baseline key "<benchmark>:<counter>"). Counters
come in two polarities, selected by which ratio flag you pass:

  * Bigger is better (speedups, QPS, hit rates): --min-ratio FLOOR fails
    the run when current/baseline falls BELOW the floor — e.g. the native
    backend's measured_speedup must stay at least half its checked-in
    baseline (--min-ratio 0.5).
  * Lower is better (latency percentiles like a p99, byte counts):
    --max-ratio CAP fails the run when current/baseline rises ABOVE the
    cap — e.g. the service bench's warm_p99_us may not quadruple
    (--max-ratio 4.0).

The two may be combined to bound the ratio from both sides. The 2.0
default max-ratio applies only when neither flag is given (the plain
real_time mode).
"""

import argparse
import json
import sys

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def find_benchmark(report, name):
    for bench in report.get("benchmarks", []):
        if bench.get("name") == name:
            return bench
    sys.exit(f"benchmark '{name}' not found in the current results "
             f"(ran with the wrong --benchmark_filter?)")


def current_seconds(report, name):
    bench = find_benchmark(report, name)
    unit = _TIME_UNIT_SECONDS.get(bench.get("time_unit", "ns"))
    if unit is None:
        sys.exit(f"unknown time_unit in '{name}': "
                 f"{bench.get('time_unit')!r}")
    return bench["real_time"] * unit


def current_counter(report, name, counter):
    bench = find_benchmark(report, name)
    if counter not in bench:
        sys.exit(f"benchmark '{name}' carries no counter '{counter}'")
    return float(bench[counter])


def check_one(report, baseline, name, args, max_ratio):
    """Gates one benchmark entry; returns True when it is within limits."""
    if args.counter:
        key = f"{name}:{args.counter}"
        cur = current_counter(report, name, args.counter)
        what = args.counter
        fmt = lambda v: f"{v:.3f}"
    else:
        key = name
        cur = current_seconds(report, name)
        what = "real_time"
        fmt = lambda v: f"{v * 1e3:.1f} ms"

    if key not in baseline:
        sys.exit(f"'{key}' has no baseline entry in {args.baseline}")

    base = float(baseline[key])
    ratio = cur / base
    ok = True
    limits = []
    if max_ratio is not None:
        limits.append(f"<= {max_ratio:.2f}x")
        ok = ok and ratio <= max_ratio
    if args.min_ratio is not None:
        limits.append(f">= {args.min_ratio:.2f}x")
        ok = ok and ratio >= args.min_ratio
    verdict = "OK" if ok else "REGRESSION"
    print(f"{name} [{what}]: current {fmt(cur)}, baseline "
          f"{fmt(base)}, ratio {ratio:.2f}x "
          f"(limit {', '.join(limits)}) -> {verdict}")
    return ok


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--benchmark", required=True, action="append",
                        help="benchmark entry to gate; repeatable — every "
                             "named entry is checked against the shared "
                             "--counter/ratio configuration")
    parser.add_argument("--counter",
                        help="gate this user counter instead of real_time "
                             "(baseline key '<benchmark>:<counter>')")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="fail when current/baseline exceeds this — "
                             "the lower-is-better direction, e.g. latency "
                             "counters (default 2.0 when no ratio flag is "
                             "given)")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail when current/baseline falls below this "
                             "(for bigger-is-better counters)")
    args = parser.parse_args()

    with open(args.current) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    max_ratio = args.max_ratio
    if max_ratio is None and args.min_ratio is None:
        max_ratio = 2.0

    ok = True
    for name in args.benchmark:
        ok = check_one(report, baseline, name, args, max_ratio) and ok
    if not ok:
        sys.exit(1)


if __name__ == "__main__":
    main()
