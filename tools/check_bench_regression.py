#!/usr/bin/env python3
"""Gate a google-benchmark JSON result against a checked-in baseline.

Usage:
  check_bench_regression.py --current BENCH.json --baseline BASELINE.json \
      --benchmark grouping/optimized/1024 [--max-ratio 2.0]

BENCH.json is the --benchmark_out JSON of a bench_* binary. BASELINE.json
maps benchmark names to wall-clock seconds (keys starting with "_" are
ignored). Exits non-zero when current/baseline exceeds --max-ratio for the
named benchmark, so CI fails on large compile-time regressions while
absorbing ordinary runner-speed variance.
"""

import argparse
import json
import sys

_TIME_UNIT_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def current_seconds(report, name):
    for bench in report.get("benchmarks", []):
        if bench.get("name") == name:
            unit = _TIME_UNIT_SECONDS.get(bench.get("time_unit", "ns"))
            if unit is None:
                sys.exit(f"unknown time_unit in '{name}': "
                         f"{bench.get('time_unit')!r}")
            return bench["real_time"] * unit
    sys.exit(f"benchmark '{name}' not found in the current results "
             f"(ran with the wrong --benchmark_filter?)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--benchmark", required=True)
    parser.add_argument("--max-ratio", type=float, default=2.0)
    args = parser.parse_args()

    with open(args.current) as f:
        report = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.benchmark not in baseline:
        sys.exit(f"benchmark '{args.benchmark}' has no baseline entry in "
                 f"{args.baseline}")

    base = float(baseline[args.benchmark])
    cur = current_seconds(report, args.benchmark)
    ratio = cur / base
    verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
    print(f"{args.benchmark}: current {cur * 1e3:.1f} ms, baseline "
          f"{base * 1e3:.1f} ms, ratio {ratio:.2f}x "
          f"(limit {args.max_ratio:.2f}x) -> {verdict}")
    if ratio > args.max_ratio:
        sys.exit(1)


if __name__ == "__main__":
    main()
