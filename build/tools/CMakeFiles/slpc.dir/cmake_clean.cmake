file(REMOVE_RECURSE
  "CMakeFiles/slpc.dir/slpc.cpp.o"
  "CMakeFiles/slpc.dir/slpc.cpp.o.d"
  "slpc"
  "slpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
