# Empty compiler generated dependencies file for slpc.
# This may be replaced when dependencies are built.
