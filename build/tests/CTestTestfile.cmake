# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/slp_test[1]_include.cmake")
include("/root/repo/build/tests/vector_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
