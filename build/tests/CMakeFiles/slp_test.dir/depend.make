# Empty dependencies file for slp_test.
# This may be replaced when dependencies are built.
