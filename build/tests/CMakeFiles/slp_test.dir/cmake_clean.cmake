file(REMOVE_RECURSE
  "CMakeFiles/slp_test.dir/slp/BaselineTest.cpp.o"
  "CMakeFiles/slp_test.dir/slp/BaselineTest.cpp.o.d"
  "CMakeFiles/slp_test.dir/slp/GroupingTest.cpp.o"
  "CMakeFiles/slp_test.dir/slp/GroupingTest.cpp.o.d"
  "CMakeFiles/slp_test.dir/slp/PackTest.cpp.o"
  "CMakeFiles/slp_test.dir/slp/PackTest.cpp.o.d"
  "CMakeFiles/slp_test.dir/slp/PaperExampleTest.cpp.o"
  "CMakeFiles/slp_test.dir/slp/PaperExampleTest.cpp.o.d"
  "CMakeFiles/slp_test.dir/slp/SchedulingTest.cpp.o"
  "CMakeFiles/slp_test.dir/slp/SchedulingTest.cpp.o.d"
  "CMakeFiles/slp_test.dir/slp/VerifierTest.cpp.o"
  "CMakeFiles/slp_test.dir/slp/VerifierTest.cpp.o.d"
  "slp_test"
  "slp_test.pdb"
  "slp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
