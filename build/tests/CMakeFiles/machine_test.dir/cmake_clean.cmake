file(REMOVE_RECURSE
  "CMakeFiles/machine_test.dir/machine/CostModelTest.cpp.o"
  "CMakeFiles/machine_test.dir/machine/CostModelTest.cpp.o.d"
  "CMakeFiles/machine_test.dir/machine/SimulatorTest.cpp.o"
  "CMakeFiles/machine_test.dir/machine/SimulatorTest.cpp.o.d"
  "machine_test"
  "machine_test.pdb"
  "machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
