file(REMOVE_RECURSE
  "CMakeFiles/vector_test.dir/vector/CodeGenTest.cpp.o"
  "CMakeFiles/vector_test.dir/vector/CodeGenTest.cpp.o.d"
  "CMakeFiles/vector_test.dir/vector/VectorInterpTest.cpp.o"
  "CMakeFiles/vector_test.dir/vector/VectorInterpTest.cpp.o.d"
  "CMakeFiles/vector_test.dir/vector/VectorPrinterTest.cpp.o"
  "CMakeFiles/vector_test.dir/vector/VectorPrinterTest.cpp.o.d"
  "vector_test"
  "vector_test.pdb"
  "vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
