file(REMOVE_RECURSE
  "CMakeFiles/ir_test.dir/ir/AffineExprTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/AffineExprTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/ExprTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/ExprTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/IntSemanticsTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/IntSemanticsTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/InterpreterTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/InterpreterTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/ParserTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/ParserTest.cpp.o.d"
  "CMakeFiles/ir_test.dir/ir/RoundTripTest.cpp.o"
  "CMakeFiles/ir_test.dir/ir/RoundTripTest.cpp.o.d"
  "ir_test"
  "ir_test.pdb"
  "ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
