
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slp/Baseline.cpp" "src/slp/CMakeFiles/slp_core.dir/Baseline.cpp.o" "gcc" "src/slp/CMakeFiles/slp_core.dir/Baseline.cpp.o.d"
  "/root/repo/src/slp/Grouping.cpp" "src/slp/CMakeFiles/slp_core.dir/Grouping.cpp.o" "gcc" "src/slp/CMakeFiles/slp_core.dir/Grouping.cpp.o.d"
  "/root/repo/src/slp/Pack.cpp" "src/slp/CMakeFiles/slp_core.dir/Pack.cpp.o" "gcc" "src/slp/CMakeFiles/slp_core.dir/Pack.cpp.o.d"
  "/root/repo/src/slp/Scheduling.cpp" "src/slp/CMakeFiles/slp_core.dir/Scheduling.cpp.o" "gcc" "src/slp/CMakeFiles/slp_core.dir/Scheduling.cpp.o.d"
  "/root/repo/src/slp/Verifier.cpp" "src/slp/CMakeFiles/slp_core.dir/Verifier.cpp.o" "gcc" "src/slp/CMakeFiles/slp_core.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/slp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/slp_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/slp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
