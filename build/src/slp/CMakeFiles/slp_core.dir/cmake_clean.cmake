file(REMOVE_RECURSE
  "CMakeFiles/slp_core.dir/Baseline.cpp.o"
  "CMakeFiles/slp_core.dir/Baseline.cpp.o.d"
  "CMakeFiles/slp_core.dir/Grouping.cpp.o"
  "CMakeFiles/slp_core.dir/Grouping.cpp.o.d"
  "CMakeFiles/slp_core.dir/Pack.cpp.o"
  "CMakeFiles/slp_core.dir/Pack.cpp.o.d"
  "CMakeFiles/slp_core.dir/Scheduling.cpp.o"
  "CMakeFiles/slp_core.dir/Scheduling.cpp.o.d"
  "CMakeFiles/slp_core.dir/Verifier.cpp.o"
  "CMakeFiles/slp_core.dir/Verifier.cpp.o.d"
  "libslp_core.a"
  "libslp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
