# Empty dependencies file for slp_pipeline.
# This may be replaced when dependencies are built.
