file(REMOVE_RECURSE
  "libslp_pipeline.a"
)
