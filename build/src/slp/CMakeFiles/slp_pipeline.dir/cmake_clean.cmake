file(REMOVE_RECURSE
  "CMakeFiles/slp_pipeline.dir/Pipeline.cpp.o"
  "CMakeFiles/slp_pipeline.dir/Pipeline.cpp.o.d"
  "libslp_pipeline.a"
  "libslp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
