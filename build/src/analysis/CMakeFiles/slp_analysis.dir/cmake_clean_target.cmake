file(REMOVE_RECURSE
  "libslp_analysis.a"
)
