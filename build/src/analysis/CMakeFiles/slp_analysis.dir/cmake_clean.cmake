file(REMOVE_RECURSE
  "CMakeFiles/slp_analysis.dir/Alignment.cpp.o"
  "CMakeFiles/slp_analysis.dir/Alignment.cpp.o.d"
  "CMakeFiles/slp_analysis.dir/Dependence.cpp.o"
  "CMakeFiles/slp_analysis.dir/Dependence.cpp.o.d"
  "CMakeFiles/slp_analysis.dir/Isomorphism.cpp.o"
  "CMakeFiles/slp_analysis.dir/Isomorphism.cpp.o.d"
  "libslp_analysis.a"
  "libslp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
