
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Alignment.cpp" "src/analysis/CMakeFiles/slp_analysis.dir/Alignment.cpp.o" "gcc" "src/analysis/CMakeFiles/slp_analysis.dir/Alignment.cpp.o.d"
  "/root/repo/src/analysis/Dependence.cpp" "src/analysis/CMakeFiles/slp_analysis.dir/Dependence.cpp.o" "gcc" "src/analysis/CMakeFiles/slp_analysis.dir/Dependence.cpp.o.d"
  "/root/repo/src/analysis/Isomorphism.cpp" "src/analysis/CMakeFiles/slp_analysis.dir/Isomorphism.cpp.o" "gcc" "src/analysis/CMakeFiles/slp_analysis.dir/Isomorphism.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/slp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
