# Empty compiler generated dependencies file for slp_analysis.
# This may be replaced when dependencies are built.
