file(REMOVE_RECURSE
  "CMakeFiles/slp_layout.dir/Layout.cpp.o"
  "CMakeFiles/slp_layout.dir/Layout.cpp.o.d"
  "libslp_layout.a"
  "libslp_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
