
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/Layout.cpp" "src/layout/CMakeFiles/slp_layout.dir/Layout.cpp.o" "gcc" "src/layout/CMakeFiles/slp_layout.dir/Layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/slp/CMakeFiles/slp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vector/CMakeFiles/slp_vector.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/slp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/slp_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/slp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/slp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
