file(REMOVE_RECURSE
  "libslp_layout.a"
)
