# Empty compiler generated dependencies file for slp_layout.
# This may be replaced when dependencies are built.
