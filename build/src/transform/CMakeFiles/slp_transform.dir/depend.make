# Empty dependencies file for slp_transform.
# This may be replaced when dependencies are built.
