file(REMOVE_RECURSE
  "CMakeFiles/slp_transform.dir/Unroll.cpp.o"
  "CMakeFiles/slp_transform.dir/Unroll.cpp.o.d"
  "libslp_transform.a"
  "libslp_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
