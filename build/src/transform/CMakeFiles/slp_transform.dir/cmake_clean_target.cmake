file(REMOVE_RECURSE
  "libslp_transform.a"
)
