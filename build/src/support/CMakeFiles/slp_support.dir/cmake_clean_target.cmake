file(REMOVE_RECURSE
  "libslp_support.a"
)
