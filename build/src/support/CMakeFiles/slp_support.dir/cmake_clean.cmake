file(REMOVE_RECURSE
  "CMakeFiles/slp_support.dir/Error.cpp.o"
  "CMakeFiles/slp_support.dir/Error.cpp.o.d"
  "CMakeFiles/slp_support.dir/Rng.cpp.o"
  "CMakeFiles/slp_support.dir/Rng.cpp.o.d"
  "libslp_support.a"
  "libslp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
