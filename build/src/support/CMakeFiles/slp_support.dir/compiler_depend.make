# Empty compiler generated dependencies file for slp_support.
# This may be replaced when dependencies are built.
