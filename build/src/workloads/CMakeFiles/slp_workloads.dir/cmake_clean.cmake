file(REMOVE_RECURSE
  "CMakeFiles/slp_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/slp_workloads.dir/Workloads.cpp.o.d"
  "libslp_workloads.a"
  "libslp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
