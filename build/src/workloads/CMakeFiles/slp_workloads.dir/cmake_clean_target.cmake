file(REMOVE_RECURSE
  "libslp_workloads.a"
)
