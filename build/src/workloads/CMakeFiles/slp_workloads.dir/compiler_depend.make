# Empty compiler generated dependencies file for slp_workloads.
# This may be replaced when dependencies are built.
