file(REMOVE_RECURSE
  "libslp_vector.a"
)
