# Empty dependencies file for slp_vector.
# This may be replaced when dependencies are built.
