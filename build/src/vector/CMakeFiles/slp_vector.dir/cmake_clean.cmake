file(REMOVE_RECURSE
  "CMakeFiles/slp_vector.dir/CodeGen.cpp.o"
  "CMakeFiles/slp_vector.dir/CodeGen.cpp.o.d"
  "CMakeFiles/slp_vector.dir/VectorInterp.cpp.o"
  "CMakeFiles/slp_vector.dir/VectorInterp.cpp.o.d"
  "CMakeFiles/slp_vector.dir/VectorPrinter.cpp.o"
  "CMakeFiles/slp_vector.dir/VectorPrinter.cpp.o.d"
  "libslp_vector.a"
  "libslp_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
