file(REMOVE_RECURSE
  "CMakeFiles/slp_machine.dir/CostModel.cpp.o"
  "CMakeFiles/slp_machine.dir/CostModel.cpp.o.d"
  "CMakeFiles/slp_machine.dir/MachineModel.cpp.o"
  "CMakeFiles/slp_machine.dir/MachineModel.cpp.o.d"
  "CMakeFiles/slp_machine.dir/Multicore.cpp.o"
  "CMakeFiles/slp_machine.dir/Multicore.cpp.o.d"
  "CMakeFiles/slp_machine.dir/Simulator.cpp.o"
  "CMakeFiles/slp_machine.dir/Simulator.cpp.o.d"
  "libslp_machine.a"
  "libslp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
