# Empty compiler generated dependencies file for slp_machine.
# This may be replaced when dependencies are built.
