file(REMOVE_RECURSE
  "libslp_machine.a"
)
