file(REMOVE_RECURSE
  "libslp_experiments.a"
)
