file(REMOVE_RECURSE
  "CMakeFiles/slp_experiments.dir/Experiments.cpp.o"
  "CMakeFiles/slp_experiments.dir/Experiments.cpp.o.d"
  "libslp_experiments.a"
  "libslp_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
