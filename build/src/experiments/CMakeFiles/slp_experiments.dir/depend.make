# Empty dependencies file for slp_experiments.
# This may be replaced when dependencies are built.
