
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/AffineExpr.cpp" "src/ir/CMakeFiles/slp_ir.dir/AffineExpr.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/AffineExpr.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/ir/CMakeFiles/slp_ir.dir/Builder.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Builder.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/slp_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/ir/CMakeFiles/slp_ir.dir/Interpreter.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Kernel.cpp" "src/ir/CMakeFiles/slp_ir.dir/Kernel.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Kernel.cpp.o.d"
  "/root/repo/src/ir/Operand.cpp" "src/ir/CMakeFiles/slp_ir.dir/Operand.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Operand.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/ir/CMakeFiles/slp_ir.dir/Parser.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/slp_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Statement.cpp" "src/ir/CMakeFiles/slp_ir.dir/Statement.cpp.o" "gcc" "src/ir/CMakeFiles/slp_ir.dir/Statement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/slp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
