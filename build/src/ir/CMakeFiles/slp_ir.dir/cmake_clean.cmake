file(REMOVE_RECURSE
  "CMakeFiles/slp_ir.dir/AffineExpr.cpp.o"
  "CMakeFiles/slp_ir.dir/AffineExpr.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Builder.cpp.o"
  "CMakeFiles/slp_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Expr.cpp.o"
  "CMakeFiles/slp_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Interpreter.cpp.o"
  "CMakeFiles/slp_ir.dir/Interpreter.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Kernel.cpp.o"
  "CMakeFiles/slp_ir.dir/Kernel.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Operand.cpp.o"
  "CMakeFiles/slp_ir.dir/Operand.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Parser.cpp.o"
  "CMakeFiles/slp_ir.dir/Parser.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Printer.cpp.o"
  "CMakeFiles/slp_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/slp_ir.dir/Statement.cpp.o"
  "CMakeFiles/slp_ir.dir/Statement.cpp.o.d"
  "libslp_ir.a"
  "libslp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
