# Empty dependencies file for slp_ir.
# This may be replaced when dependencies are built.
