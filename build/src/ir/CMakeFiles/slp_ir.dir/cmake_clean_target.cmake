file(REMOVE_RECURSE
  "libslp_ir.a"
)
