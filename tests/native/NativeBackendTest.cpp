//===- tests/native/NativeBackendTest.cpp ---------------------*- C++ -*-===//
//
// Holds the host-compiled native engine (native/CEmitter.h +
// native/NativeBackend.h, ExecEngineKind::Native) to the same bit-identity
// contract the tape/reference differential enforces: identical environment
// contents and dynamic operation counts over the full 16-workload suite,
// the predicated workloads, every recorded fuzz repro, and a random-kernel
// sweep. Also pins the backend's operational contract — a second lowering
// of an identical kernel is served from the content-addressed object cache
// without invoking the host compiler, a missing compiler degrades to the
// tape with a diagnostic (never a crash), and a corrupted cached object is
// rebuilt transparently.
//
// Tests run against a private cache directory (SLP_NATIVE_CACHE_DIR is
// pointed at a per-process temp dir) so they neither see nor pollute the
// user's cache. Functional tests GTEST_SKIP with an explicit line when the
// container has no host compiler; the missing-compiler test runs anywhere.
//
// SLP_FUZZ_CORPUS_DIR is injected by CMake (same as CorpusReplayTest).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecEngine.h"
#include "fuzz/Fuzzer.h"
#include "ir/Parser.h"
#include "layout/Layout.h"
#include "native/NativeBackend.h"
#include "slp/Pipeline.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>

using namespace slp;

#ifndef SLP_FUZZ_CORPUS_DIR
#error "CMake must define SLP_FUZZ_CORPUS_DIR"
#endif

namespace {

/// Points SLP_NATIVE_CACHE_DIR at a per-process directory (ctest runs each
/// test in its own process, so tests stay hermetic) and clears the
/// in-process handle map so every test starts from a known cache state.
class NativeBackendTest : public ::testing::Test {
protected:
  void SetUp() override {
    CacheDir = (std::filesystem::temp_directory_path() /
                ("slp-native-test-" + std::to_string(getpid())))
                   .string();
    setenv("SLP_NATIVE_CACHE_DIR", CacheDir.c_str(), /*overwrite=*/1);
    unsetenv("SLP_NATIVE_CC");
    nativeClearMemoryCacheForTesting();
  }

  void TearDown() override {
    unsetenv("SLP_NATIVE_CC");
    std::error_code Ec;
    std::filesystem::remove_all(CacheDir, Ec);
  }

  /// Skips the test (with the backend's own explanation) when the
  /// container has no host C compiler.
  void requireHostCompiler() {
    std::string Why;
    if (!nativeBackendAvailable(&Why))
      GTEST_SKIP() << "native backend unavailable: " << Why;
  }

  std::string CacheDir;
};

/// Runs \p K under scalar semantics on the native and flat-tape engines
/// from identical environments and demands bit-identical results and
/// identical dynamic operation counts. Also demands the native lowering
/// actually produced machine code (no silent tape fallback).
void expectScalarAgreement(const Kernel &K, uint64_t Seed,
                           const std::string &Label) {
  ExecEngine Tape(ExecEngineKind::Optimized);
  ExecEngine Native(ExecEngineKind::Native);
  Environment TapeEnv(K, Seed);
  Environment NativeEnv(K, Seed);
  ScalarExecStats TS = Tape.runKernel(K, TapeEnv);
  ScalarExecStats NS = Native.runKernel(K, NativeEnv);
  EXPECT_EQ(Native.counters().NativeFallbacks, 0u)
      << Label << ": lowering fell back: " << Native.nativeDiagnostic();
  EXPECT_TRUE(NativeEnv.matches(TapeEnv,
                                static_cast<unsigned>(K.Scalars.size()),
                                static_cast<unsigned>(K.Arrays.size())))
      << Label << " seed " << Seed
      << ": native engine diverged on scalar execution";
  EXPECT_EQ(TS.AluOps, NS.AluOps) << Label << " seed " << Seed;
  EXPECT_EQ(TS.ArrayLoads, NS.ArrayLoads) << Label << " seed " << Seed;
  EXPECT_EQ(TS.ArrayStores, NS.ArrayStores) << Label << " seed " << Seed;
}

/// The equivalence check's candidate environment for vector execution.
Environment makeVectorEnv(const Kernel &Source, const PipelineResult &R,
                          uint64_t Seed) {
  Environment Env(Source, Seed);
  for (unsigned S = static_cast<unsigned>(Source.Scalars.size()),
                E = static_cast<unsigned>(R.Final.Scalars.size());
       S != E; ++S)
    Env.addScalarStorage(0);
  for (unsigned A = static_cast<unsigned>(Source.Arrays.size()),
                E = static_cast<unsigned>(R.Final.Arrays.size());
       A != E; ++A)
    Env.addArrayStorage(R.Final.Arrays[A].numElements());
  if (R.LayoutApplied)
    initializeReplicas(R.Final, R.Layout, Env);
  return Env;
}

/// Runs \p R's vector program on the native and flat-tape engines from
/// identical environments and demands bit-identical final contents.
void expectVectorAgreement(const Kernel &Source, const PipelineResult &R,
                           uint64_t Seed, const std::string &Label) {
  ExecEngine Tape(ExecEngineKind::Optimized);
  ExecEngine Native(ExecEngineKind::Native);
  Environment TapeEnv = makeVectorEnv(Source, R, Seed);
  Environment NativeEnv = makeVectorEnv(Source, R, Seed);
  Tape.runProgram(R.Final, R.Program, TapeEnv);
  Native.runProgram(R.Final, R.Program, NativeEnv);
  EXPECT_EQ(Native.counters().NativeFallbacks, 0u)
      << Label << ": lowering fell back: " << Native.nativeDiagnostic();
  EXPECT_TRUE(NativeEnv.matches(TapeEnv,
                                static_cast<unsigned>(R.Final.Scalars.size()),
                                static_cast<unsigned>(R.Final.Arrays.size())))
      << Label << " seed " << Seed
      << ": native engine diverged on vector execution";
}

Kernel parse(const std::string &Src) {
  ParseResult P = parseKernel(Src);
  EXPECT_TRUE(P.succeeded()) << P.ErrorMessage;
  return *P.TheKernel;
}

} // namespace

TEST_F(NativeBackendTest, WorkloadScalarBitIdentity) {
  requireHostCompiler();
  for (const Workload &W : standardWorkloads())
    for (uint64_t Seed : {uint64_t(1), uint64_t(0xC0FFEE)})
      expectScalarAgreement(W.TheKernel, Seed, W.Name);
}

TEST_F(NativeBackendTest, WorkloadVectorBitIdentity) {
  requireHostCompiler();
  for (const Workload &W : standardWorkloads()) {
    for (OptimizerKind Kind :
         {OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, PipelineOptions());
      expectVectorAgreement(W.TheKernel, R, /*Seed=*/1234,
                            W.Name + "/" + optimizerName(Kind));
    }
  }
}

TEST_F(NativeBackendTest, WorkloadEquivalenceUnderNativeEngine) {
  requireHostCompiler();
  for (const Workload &W : standardWorkloads()) {
    PipelineResult R = runPipeline(W.TheKernel, OptimizerKind::GlobalLayout,
                                   PipelineOptions());
    ExecEngine Engine(ExecEngineKind::Native);
    std::string Error;
    EXPECT_TRUE(checkEquivalence(W.TheKernel, R, /*Seed=*/42, &Error,
                                 &Engine))
        << W.Name << " under native: " << Error;
    EXPECT_EQ(Engine.counters().NativeFallbacks, 0u)
        << W.Name << ": " << Engine.nativeDiagnostic();
  }
}

TEST_F(NativeBackendTest, PredicatedWorkloadBitIdentity) {
  // The guarded suite flows through the masked lowering: per-lane selects
  // for vmload, prior-memory-preserving lane stores for vmstore, and
  // guard blocks in the scalar baseline.
  requireHostCompiler();
  for (const Workload &W : predicatedWorkloads()) {
    for (uint64_t Seed : {uint64_t(1), uint64_t(0xC0FFEE)})
      expectScalarAgreement(W.TheKernel, Seed, W.Name);
    for (OptimizerKind Kind :
         {OptimizerKind::Global, OptimizerKind::GlobalLayout}) {
      PipelineResult R = runPipeline(W.TheKernel, Kind, PipelineOptions());
      expectVectorAgreement(W.TheKernel, R, /*Seed=*/1234,
                            W.Name + "/" + optimizerName(Kind));
    }
  }
}

TEST_F(NativeBackendTest, CorpusReplaysUnderNativeEngine) {
  // Every recorded repro — NaN propagation, int-store truncation,
  // aliasing, masked stores — must replay cleanly with the native engine
  // executing all kernels and programs.
  requireHostCompiler();
  std::vector<std::string> Files = listCorpusFiles(SLP_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(Files.empty())
      << "no corpus cases under " << SLP_FUZZ_CORPUS_DIR;
  for (const std::string &Path : Files) {
    std::string Text;
    ASSERT_TRUE(readFile(Path, Text)) << Path;
    FuzzCase Case;
    std::string Error;
    ASSERT_TRUE(parseFuzzCase(Text, Case, &Error)) << Path << ": " << Error;
    Case.Config.Exec = ExecEngineKind::Native;
    EXPECT_TRUE(runFuzzCase(Case, &Error))
        << Path << " under native: " << Error;
  }
}

TEST_F(NativeBackendTest, RandomKernelSweep) {
  requireHostCompiler();
  Rng R(20260808);
  RandomKernelOptions Options;
  Options.MaxStatements = 10;
  Options.GuardProbability = 0.3;
  for (unsigned I = 0; I != 12; ++I) {
    Options.NumLoops = 1 + (I % 2);
    Kernel K = randomKernel(R, Options);
    std::string Label = "native-random#" + std::to_string(I);
    expectScalarAgreement(K, /*Seed=*/99, Label);
    PipelineResult Res =
        runPipeline(K, OptimizerKind::GlobalLayout, PipelineOptions());
    expectVectorAgreement(K, Res, /*Seed=*/1234, Label);
  }
}

TEST_F(NativeBackendTest, ZeroTripAndIntSemantics) {
  requireHostCompiler();
  // A zero-trip nest lowers to a body-less entry; the environment must
  // stay untouched.
  Kernel ZeroTrip = parse(R"(
    kernel zerotrip { array float A[8]; scalar float s;
      loop i = 4 .. 4 { A[i] = 2.0; s = A[i] + 1.0; }
    })");
  expectScalarAgreement(ZeroTrip, /*Seed=*/7, "zerotrip");
  // Truncating integer stores with reuse of the truncated value.
  Kernel IntReuse = parse(R"(
    kernel intreuse { array int I[16]; array float B[16];
      loop i = 0 .. 16 {
        I[i] = I[i] / 3.0;
        B[i] = I[i] * 0.5;
      }
    })");
  expectScalarAgreement(IntReuse, /*Seed=*/1, "intreuse");
  PipelineResult R =
      runPipeline(IntReuse, OptimizerKind::Global, PipelineOptions());
  expectVectorAgreement(IntReuse, R, /*Seed=*/1234, "intreuse");
}

TEST_F(NativeBackendTest, WarmCacheSkipsHostCompiler) {
  // The acceptance criterion of the object cache: a second lowering of an
  // identical kernel must NOT invoke the host compiler. The first engine
  // populates the disk cache; dropping the in-process handle map then
  // forces the second engine through the disk path, where it must count
  // cache hits and zero compiles.
  requireHostCompiler();
  Kernel K = workloadByName("milc").TheKernel;

  ExecEngine First(ExecEngineKind::Native);
  Environment Env1(K, 1);
  First.runKernel(K, Env1);
  ASSERT_EQ(First.counters().NativeFallbacks, 0u)
      << First.nativeDiagnostic();
  EXPECT_EQ(First.counters().NativeCompiles, 1u);
  EXPECT_EQ(First.counters().NativeCacheHits, 0u);

  nativeClearMemoryCacheForTesting();

  ExecEngine Second(ExecEngineKind::Native);
  Environment Env2(K, 1);
  Second.runKernel(K, Env2);
  ASSERT_EQ(Second.counters().NativeFallbacks, 0u)
      << Second.nativeDiagnostic();
  EXPECT_EQ(Second.counters().NativeCompiles, 0u)
      << "second lowering of an identical kernel invoked the compiler";
  EXPECT_GE(Second.counters().NativeCacheHits, 1u);
  EXPECT_TRUE(Env2.matches(Env1, static_cast<unsigned>(K.Scalars.size()),
                           static_cast<unsigned>(K.Arrays.size())));

  // Within one engine, the in-process map short-circuits even the disk
  // path: recompiling the same kernel is a memory hit.
  CompiledScalarKernel Again = Second.compileScalar(K);
  EXPECT_TRUE(Again.Native);
  EXPECT_GE(Second.counters().NativeMemoryHits, 1u);
}

TEST_F(NativeBackendTest, ConcurrentLoweringsRaceSafely) {
  // Several engines lowering the same kernel at once exercise the object
  // cache's tmp-name+rename discipline: every thread must get a working
  // entry with bit-identical execution results, no fallbacks, and the
  // cache must end up with exactly one published object — no torn or
  // leftover files from racing producers.
  requireHostCompiler();
  Kernel K = workloadByName("milc").TheKernel;
  constexpr unsigned N = 4;
  std::deque<Environment> Envs;
  for (unsigned I = 0; I != N; ++I)
    Envs.emplace_back(K, /*Seed=*/7);

  std::vector<uint64_t> Fallbacks(N, ~0ull);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I != N; ++I)
    Threads.emplace_back([&, I] {
      ExecEngine Engine(ExecEngineKind::Native); // one engine per thread
      Engine.runKernel(K, Envs[I]);
      Fallbacks[I] = Engine.counters().NativeFallbacks;
    });
  for (std::thread &T : Threads)
    T.join();

  for (unsigned I = 0; I != N; ++I) {
    EXPECT_EQ(Fallbacks[I], 0u) << "thread " << I << " fell back";
    EXPECT_TRUE(Envs[I].matches(Envs[0],
                                static_cast<unsigned>(K.Scalars.size()),
                                static_cast<unsigned>(K.Arrays.size())))
        << "thread " << I << " diverged";
  }

  unsigned Objects = 0, Leftovers = 0;
  for (const auto &E : std::filesystem::directory_iterator(CacheDir)) {
    std::string Name = E.path().filename().string();
    if (Name.size() > 3 && Name.rfind(".so") == Name.size() - 3)
      ++Objects;
    else if (Name.rfind(".c") == std::string::npos &&
             !(Name.size() > 4 && Name.rfind(".log") == Name.size() - 4))
      ++Leftovers; // temp files a losing producer failed to clean up
  }
  EXPECT_EQ(Objects, 1u);
  EXPECT_EQ(Leftovers, 0u);
}

TEST_F(NativeBackendTest, MissingCompilerFallsBackToTape) {
  // With SLP_NATIVE_CC pointing at a nonexistent binary the engine must
  // degrade to the tape — correct results, a diagnostic, a fallback
  // counter, and no crash. This test runs even on compiler-less hosts.
  setenv("SLP_NATIVE_CC", "/nonexistent/slp-no-such-cc", /*overwrite=*/1);
  std::string Why;
  EXPECT_FALSE(nativeBackendAvailable(&Why));
  EXPECT_FALSE(Why.empty());

  Kernel K = workloadByName("milc").TheKernel;
  ExecEngine Native(ExecEngineKind::Native);
  ExecEngine Tape(ExecEngineKind::Optimized);
  Environment NativeEnv(K, 5);
  Environment TapeEnv(K, 5);
  ScalarExecStats NS = Native.runKernel(K, NativeEnv);
  ScalarExecStats TS = Tape.runKernel(K, TapeEnv);
  EXPECT_GE(Native.counters().NativeFallbacks, 1u);
  EXPECT_EQ(Native.counters().NativeCompiles, 0u);
  EXPECT_FALSE(Native.nativeDiagnostic().empty());
  EXPECT_TRUE(NativeEnv.matches(TapeEnv,
                                static_cast<unsigned>(K.Scalars.size()),
                                static_cast<unsigned>(K.Arrays.size())))
      << "tape fallback diverged from the tape engine";
  EXPECT_EQ(NS.AluOps, TS.AluOps);

  // The full equivalence check must also pass through the fallback.
  PipelineResult R =
      runPipeline(K, OptimizerKind::Global, PipelineOptions());
  std::string Error;
  EXPECT_TRUE(checkEquivalence(K, R, /*Seed=*/42, &Error, &Native))
      << Error;
}

TEST_F(NativeBackendTest, CorruptedCacheObjectIsRebuilt) {
  // Truncate every cached .so, drop the handle map, and demand the next
  // lowering recovers by rebuilding — correct results, no crash.
  requireHostCompiler();
  Kernel K = workloadByName("milc").TheKernel;

  ExecEngine First(ExecEngineKind::Native);
  Environment Env1(K, 1);
  First.runKernel(K, Env1);
  ASSERT_EQ(First.counters().NativeFallbacks, 0u)
      << First.nativeDiagnostic();

  // Drop the handle map first: truncating a still-mapped object would
  // make the dlclose inside the clear fault on the vanished pages.
  nativeClearMemoryCacheForTesting();
  unsigned Truncated = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(CacheDir)) {
    if (Entry.path().extension() != ".so")
      continue;
    std::ofstream Out(Entry.path(), std::ios::trunc);
    ++Truncated;
  }
  ASSERT_GE(Truncated, 1u) << "no cached objects under " << CacheDir;

  ExecEngine Second(ExecEngineKind::Native);
  Environment Env2(K, 1);
  Second.runKernel(K, Env2);
  EXPECT_EQ(Second.counters().NativeFallbacks, 0u)
      << Second.nativeDiagnostic();
  EXPECT_GE(Second.counters().NativeCompiles, 1u)
      << "corrupt cached object was not rebuilt";
  EXPECT_TRUE(Env2.matches(Env1, static_cast<unsigned>(K.Scalars.size()),
                           static_cast<unsigned>(K.Arrays.size())))
      << "rebuild after corruption diverged";
}

TEST_F(NativeBackendTest, CountersAccountForNativeWork) {
  requireHostCompiler();
  Kernel K = workloadByName("milc").TheKernel;
  ExecEngine Engine(ExecEngineKind::Native);
  CompiledScalarKernel C = Engine.compileScalar(K);
  ASSERT_TRUE(C.Native);
  Environment EnvA(K, 1);
  Environment EnvB(K, 1);
  Engine.runScalar(C, EnvA);
  Engine.runScalar(C, EnvB);
  const ExecCounters &EC = Engine.counters();
  EXPECT_EQ(EC.NativeCompiles, 1u);
  EXPECT_EQ(EC.NativeRuns, 2u);
  EXPECT_EQ(EC.NativeFallbacks, 0u);
  // The tape is still compiled (it is the fallback and the stats source)
  // but native runs never execute it.
  EXPECT_EQ(EC.ScalarTapesCompiled, 1u);
  EXPECT_EQ(EC.TapeRuns, 0u);
}
