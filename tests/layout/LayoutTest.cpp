//===- tests/layout/LayoutTest.cpp ----------------------------*- C++ -*-===//

#include "layout/Layout.h"

#include "analysis/Alignment.h"
#include "ir/Parser.h"
#include "slp/Scheduling.h"

#include <gtest/gtest.h>

using namespace slp;

namespace {

Kernel parse(const std::string &Src) {
  ParseResult R = parseKernel(Src);
  EXPECT_TRUE(R.succeeded()) << R.ErrorMessage;
  return std::move(*R.TheKernel);
}

Schedule make(std::vector<std::vector<unsigned>> Items) {
  Schedule S;
  for (auto &I : Items)
    S.Items.push_back(ScheduleItem{std::move(I)});
  return S;
}

} // namespace

TEST(ScalarLayoutOpt, AssignsConsecutiveAlignedSlots) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c, d; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      c = A[2] * 2.0;
      d = A[3] * 2.0;
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1, 2, 3}}), LO);
  EXPECT_EQ(R.ScalarPacksPlaced, 1u);
  // Slots a..d consecutive ascending from an aligned base.
  EXPECT_EQ(R.Scalars.Slots[0] % 4, 0);
  for (unsigned I = 1; I != 4; ++I)
    EXPECT_EQ(R.Scalars.Slots[I], R.Scalars.Slots[0] + I);
  Operand SA = Operand::makeScalar(0), SB = Operand::makeScalar(1),
          SC = Operand::makeScalar(2), SD = Operand::makeScalar(3);
  EXPECT_TRUE(R.Scalars.contiguousAligned({&SA, &SB, &SC, &SD}));
}

TEST(ScalarLayoutOpt, SlotOrderFollowsLaneOrder) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[8] readonly;
      a = A[0] * 2.0;
      b = A[1] * 2.0;
    })");
  LayoutOptions LO;
  // Lane order (b, a): b must get the lower slot.
  LayoutResult R = optimizeDataLayout(K, make({{1, 0}}), LO);
  EXPECT_LT(R.Scalars.Slots[1], R.Scalars.Slots[0]);
}

TEST(ScalarLayoutOpt, ConflictingPacksResolvedByFrequency) {
  // Pack <a,b> occurs twice, <b,c> once; they share b so only <a,b> is
  // placed.
  Kernel K = parse(R"(
    kernel k { scalar float a, b, c; array float A[16] readonly;
      array float B[16];
      a = A[0] * 2.0;
      b = A[1] * 2.0;
      B[0] = a + 1.0;
      B[1] = b + 1.0;
      B[4] = b - 1.0;
      B[5] = c - 1.0;
      c = A[2] * 4.0;
    })");
  // Groups: (0,1) lhs <a,b>; (2,3) operands <a,b>; (4,5) operands <b,c>.
  LayoutOptions LO;
  LayoutResult R =
      optimizeDataLayout(K, make({{0, 1}, {2, 3}, {4, 5}, {6}}), LO);
  EXPECT_EQ(R.ScalarPacksPlaced, 1u);
  EXPECT_EQ(R.Scalars.Slots[1], R.Scalars.Slots[0] + 1); // a,b adjacent
  Operand SB = Operand::makeScalar(1), SC = Operand::makeScalar(2);
  EXPECT_FALSE(R.Scalars.contiguousAligned({&SB, &SC}));
}

TEST(ScalarLayoutOpt, BroadcastPacksSkipped) {
  Kernel K = parse(R"(
    kernel k { scalar float p; array float A[8] readonly; array float B[8];
      B[0] = A[0] * p;
      B[1] = A[1] * p;
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}}), LO);
  EXPECT_EQ(R.ScalarPacksPlaced, 0u);
}

TEST(ArrayLayoutOpt, ReplicatesStridedReadOnlyPack) {
  Kernel K = parse(R"(
    kernel k { array float A[64] readonly; array float B[16];
      loop i = 0 .. 8 {
        B[2*i]   = A[4*i] * 2.0;
        B[2*i+1] = A[4*i+2] * 2.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}}), LO);
  ASSERT_EQ(R.ArrayPacksReplicated, 1u);
  ASSERT_EQ(R.Replications.size(), 1u);
  // Replica holds 2 lanes x 8 iterations.
  const ArraySymbol &Replica =
      R.TransformedKernel.array(R.Replications[0].DestArray);
  EXPECT_EQ(Replica.numElements(), 16);
  EXPECT_TRUE(Replica.ReadOnly);
  EXPECT_DOUBLE_EQ(R.ReplicatedBytes, 16 * 4.0);
  // The rewritten refs form a contiguous aligned pack.
  std::vector<const Operand *> NewPack{
      K.Body.statement(0).operandPositions().size() > 1
          ? R.TransformedKernel.Body.statement(0).operandPositions()[1]
          : nullptr,
      R.TransformedKernel.Body.statement(1).operandPositions()[1]};
  ASSERT_TRUE(NewPack[0] && NewPack[1]);
  EXPECT_EQ(classifyArrayPack(R.TransformedKernel, NewPack),
            PackShape::ContiguousAligned);
}

TEST(ArrayLayoutOpt, ReplicaInitializationMatchesMapping) {
  Kernel K = parse(R"(
    kernel k { array float A[64] readonly; array float B[16];
      loop i = 0 .. 8 {
        B[2*i]   = A[4*i] * 2.0;
        B[2*i+1] = A[4*i+3] * 2.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}}), LO);
  ASSERT_EQ(R.Replications.size(), 1u);

  Environment Env(K, 77);
  Env.addArrayStorage(
      R.TransformedKernel.array(R.Replications[0].DestArray).numElements());
  initializeReplicas(R.TransformedKernel, R, Env);
  const std::vector<double> &A = Env.arrayBuffer(0);
  const std::vector<double> &Repl = Env.arrayBuffer(2);
  for (int64_t I = 0; I != 8; ++I) {
    EXPECT_DOUBLE_EQ(Repl[static_cast<size_t>(2 * I)],
                     A[static_cast<size_t>(4 * I)]);
    EXPECT_DOUBLE_EQ(Repl[static_cast<size_t>(2 * I + 1)],
                     A[static_cast<size_t>(4 * I + 3)]);
  }
}

TEST(ArrayLayoutOpt, WrittenArraysNotReplicated) {
  Kernel K = parse(R"(
    kernel k { array float A[64]; array float B[16];
      loop i = 0 .. 8 {
        B[2*i]   = A[4*i] * 2.0;
        B[2*i+1] = A[4*i+2] * 2.0;
        A[4*i+1] = 0.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}, {2}}), LO);
  EXPECT_EQ(R.ArrayPacksReplicated, 0u);
}

TEST(ArrayLayoutOpt, NonReadonlyDeclarationNotReplicated) {
  Kernel K = parse(R"(
    kernel k { array float A[64]; array float B[16];
      loop i = 0 .. 8 {
        B[2*i]   = A[4*i] * 2.0;
        B[2*i+1] = A[4*i+2] * 2.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}}), LO);
  EXPECT_EQ(R.ArrayPacksReplicated, 0u);
}

TEST(ArrayLayoutOpt, ContiguousAlignedPackNotReplicated) {
  Kernel K = parse(R"(
    kernel k { array float A[32] readonly; array float B[32];
      loop i = 0 .. 8 {
        B[4*i]   = A[4*i] * 2.0;
        B[4*i+1] = A[4*i+1] * 2.0;
        B[4*i+2] = A[4*i+2] * 2.0;
        B[4*i+3] = A[4*i+3] * 2.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1, 2, 3}}), LO);
  EXPECT_EQ(R.ArrayPacksReplicated, 0u);
}

TEST(ArrayLayoutOpt, OverlappingPacksGetSeparateReplicas) {
  // The Figure 15 situation: two packs share the reference A[4i+2].
  Kernel K = parse(R"(
    kernel k { array float A[64] readonly; array float B[32];
      loop i = 0 .. 8 {
        B[2*i]   = A[4*i] + A[4*i+2];
        B[2*i+1] = A[4*i+2] + A[4*i+4];
      }
    })");
  // Group lanes (0,1): position packs <A[4i],A[4i+2]> and
  // <A[4i+2],A[4i+4]> overlap on A[4i+2].
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}}), LO);
  EXPECT_EQ(R.ArrayPacksReplicated, 2u);
  EXPECT_EQ(R.TransformedKernel.Arrays.size(), 4u);
}

TEST(ArrayLayoutOpt, SamePackTwiceReplicatedOnce) {
  Kernel K = parse(R"(
    kernel k { array float A[64] readonly; array float B[32]; array float C[32];
      loop i = 0 .. 8 {
        B[2*i]   = A[4*i] * 2.0;
        B[2*i+1] = A[4*i+2] * 2.0;
        C[2*i]   = A[4*i] * 3.0;
        C[2*i+1] = A[4*i+2] * 3.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}, {2, 3}}), LO);
  EXPECT_EQ(R.ArrayPacksReplicated, 1u);
  // Both statement pairs now reference the same replica.
  const Operand *Ref1 =
      R.TransformedKernel.Body.statement(0).operandPositions()[1];
  const Operand *Ref2 =
      R.TransformedKernel.Body.statement(2).operandPositions()[1];
  EXPECT_EQ(Ref1->symbol(), Ref2->symbol());
}

TEST(ArrayLayoutOpt, DisabledOptionsProduceNoChanges) {
  Kernel K = parse(R"(
    kernel k { scalar float a, b; array float A[64] readonly; array float B[16];
      loop i = 0 .. 8 {
        a = A[4*i] * 2.0;
        b = A[4*i+2] * 2.0;
        B[2*i]   = a + 1.0;
        B[2*i+1] = b + 1.0;
      }
    })");
  LayoutOptions Off;
  Off.OptimizeScalars = false;
  Off.OptimizeArrays = false;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}, {2, 3}}), Off);
  EXPECT_EQ(R.ScalarPacksPlaced, 0u);
  EXPECT_EQ(R.ArrayPacksReplicated, 0u);
  EXPECT_EQ(R.ReplicatedBytes, 0.0);
}

TEST(ArrayLayoutOpt, MultiDimSourceFlattened) {
  Kernel K = parse(R"(
    kernel k { array float M[8][8] readonly; array float B[16];
      loop i = 0 .. 8 {
        B[2*i]   = M[i][0] * 2.0;
        B[2*i+1] = M[i][4] * 2.0;
      }
    })");
  LayoutOptions LO;
  LayoutResult R = optimizeDataLayout(K, make({{0, 1}}), LO);
  ASSERT_EQ(R.ArrayPacksReplicated, 1u);
  Environment Env(K, 5);
  Env.addArrayStorage(16);
  initializeReplicas(R.TransformedKernel, R, Env);
  const std::vector<double> &M = Env.arrayBuffer(0);
  const std::vector<double> &Repl = Env.arrayBuffer(2);
  // Row-major: M[i][0] = flat 8i; M[i][4] = flat 8i+4.
  for (int64_t I = 0; I != 8; ++I) {
    EXPECT_DOUBLE_EQ(Repl[static_cast<size_t>(2 * I)],
                     M[static_cast<size_t>(8 * I)]);
    EXPECT_DOUBLE_EQ(Repl[static_cast<size_t>(2 * I + 1)],
                     M[static_cast<size_t>(8 * I + 4)]);
  }
}
